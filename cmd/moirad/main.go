// Command moirad runs the Moira server daemon.
//
// In --demo mode it boots the complete assembled system — database
// populated with a synthetic Athena workload, Kerberos KDC, registration
// server, DCM, and the managed hosts with their update agents — and
// prints the listening addresses, then serves until interrupted. This is
// the easiest way to get a live system to point mrtest or userreg at.
//
// Without --demo it serves an empty (or restored) database without an
// authenticator verifier: only unauthenticated queries work, because the
// Kerberos simulation is in-process and cannot be shared across OS
// processes. The assembled system (core.Boot) is the supported way to
// run the authenticated stack.
package main

import (
	"expvar"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"moira/internal/clock"
	"moira/internal/core"
	"moira/internal/db"
	"moira/internal/health"
	"moira/internal/mrerr"
	"moira/internal/queries"
	"moira/internal/replica"
	"moira/internal/server"
	"moira/internal/stats"
	"moira/internal/trace"
	"moira/internal/workload"
)

func main() {
	var (
		addr    = flag.String("addr", fmt.Sprintf("127.0.0.1:%d", 7760), "TCP address to listen on")
		demo    = flag.Bool("demo", false, "boot the full assembled system with a synthetic workload")
		users   = flag.Int("users", 500, "synthetic population size for --demo")
		restore = flag.String("restore", "", "restore the database from an mrbackup directory")
		journal = flag.String("journal", "", "append the change journal to this file")
		dataDir = flag.String("data-dir", "", "durable data directory: recover on boot, journal with CRCs, checkpoint on an interval")

		journalSync  = flag.String("journal-sync", "commit", "journal sync policy with -data-dir: commit, interval, or none")
		syncInterval = flag.Duration("journal-sync-interval", time.Second, "group-commit period for -journal-sync=interval")
		ckptInterval = flag.Duration("checkpoint-interval", time.Hour, "background checkpoint period with -data-dir (0 = never)")
		ckptKeep     = flag.Int("checkpoint-keep", db.DefaultCheckpointKeep, "snapshot generations to retain with -data-dir")

		replListen = flag.String("repl-listen", "", "with -data-dir: serve the journal-shipping replication stream on this address")
		replFrom   = flag.String("replicate-from", "", "with -data-dir: run as a read-only replica tailing the primary's -repl-listen address")
		promote    = flag.Bool("promote", false, "with -replicate-from or -election: promote to primary immediately at boot (SIGUSR1 promotes at runtime)")

		election        = flag.String("election", "", "with -data-dir and -repl-listen: run as a failover cluster node; comma-separated peer replication addresses")
		leaseInterval   = flag.Duration("lease-interval", 2*time.Second, "cluster mode: primary lease heartbeat period")
		leaseTimeout    = flag.Duration("lease-timeout", 0, "cluster mode: lease expiry (0 = 3x -lease-interval)")
		advertiseRepl   = flag.String("advertise-repl", "", "cluster mode: replication address peers dial this node at (default -repl-listen)")
		advertiseClient = flag.String("advertise-client", "", "cluster mode: client address handed out in primary redirects (default -addr)")
		dcmEvery        = flag.Duration("dcm-interval", 15*time.Minute, "wall-clock DCM pass interval in --demo mode")
		verbose         = flag.Bool("v", false, "log requests")
		debug           = flag.String("debug-addr", "", "serve /metrics, /healthz, /readyz, expvar, and pprof on this HTTP address")

		traceSlow   = flag.Duration("trace-slow", trace.DefaultSlow, "always keep traces at least this slow and count them in trace.slowops (negative = keep all)")
		traceSample = flag.Int("trace-sample", trace.DefaultSampleN, "keep 1 in N ordinary traces (1 = keep everything)")
		replLagMax  = flag.Duration("repl-lag-max", 5*time.Minute, "replica mode: /readyz fails when replication lag exceeds this")

		idleTimeout  = flag.Duration("idle-timeout", 5*time.Minute, "drop a client connection idle for this long (0 = never)")
		writeTimeout = flag.Duration("write-timeout", 30*time.Second, "per-reply write deadline (0 = none)")
		maxConns     = flag.Int("max-conns", 0, "shed connections beyond this many with MR_BUSY (0 = unlimited)")
		maxBatch     = flag.Int("max-batch", 0, "refuse v4 batch requests with more items than this (0 = default)")
		drainTimeout = flag.Duration("drain-timeout", server.DefaultDrainTimeout, "how long shutdown waits for in-flight requests before force-closing")
	)
	flag.Parse()

	logf := func(string, ...any) {}
	if *verbose {
		logf = log.Printf
	}

	lifecycle := lifecycleKnobs{
		idle: *idleTimeout, write: *writeTimeout, maxConns: *maxConns,
		maxBatch: *maxBatch, drain: *drainTimeout,
	}
	if *demo {
		runDemo(*users, *dcmEvery, *debug, *traceSlow, *traceSample, lifecycle, logf)
		return
	}

	var d *db.DB
	var err error
	var rep *replica.Replica
	var cl *replica.Cluster
	var du *core.Durability
	var policy db.SyncPolicy
	reg := stats.NewRegistry()
	trc := trace.New(trace.Options{Process: "moirad", Slow: *traceSlow, SampleN: *traceSample, Stats: reg})
	hc := health.NewChecker()
	// The cluster's role callback flips the server's write gate; the
	// server does not exist yet when the cluster opens, so it arrives
	// through this indirection (set before cl.Start).
	var onRole func(role string, readonly bool)
	switch {
	case *election != "":
		if *dataDir == "" || *replListen == "" {
			log.Fatalf("moirad: -election needs -data-dir and -repl-listen")
		}
		if *replFrom != "" || *restore != "" || *journal != "" {
			log.Fatalf("moirad: -election cannot be combined with -replicate-from, -restore, or -journal")
		}
		if policy, err = db.ParseSyncPolicy(*journalSync); err != nil {
			log.Fatalf("moirad: %v", err)
		}
		var peers []string
		for _, p := range strings.Split(*election, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peers = append(peers, p)
			}
		}
		advClient := *advertiseClient
		if advClient == "" {
			advClient = *addr
		}
		var info *queries.RecoverInfo
		cl, info, err = replica.OpenCluster(replica.ClusterConfig{
			Root:               *dataDir,
			ListenRepl:         *replListen,
			AdvertiseRepl:      *advertiseRepl,
			AdvertiseClient:    advClient,
			Peers:              peers,
			LeaseInterval:      *leaseInterval,
			LeaseTimeout:       *leaseTimeout,
			Journal:            db.JournalOptions{Policy: policy, Interval: *syncInterval},
			CheckpointInterval: *ckptInterval,
			CheckpointKeep:     *ckptKeep,
			Logf:               log.Printf,
			Stats:              reg,
			Tracer:             trc,
			OnRole: func(role string, readonly bool) {
				if onRole != nil {
					onRole(role, readonly)
				}
			},
		})
		if err != nil {
			log.Fatalf("moirad: cluster recovery: %v", err)
		}
		if n := len(info.Fsck); n > 0 {
			for _, inc := range info.Fsck {
				log.Printf("moirad: fsck: %s", inc)
			}
			log.Fatalf("moirad: recovered database has %d integrity violations; refusing to serve it (run mrfsck)", n)
		}
		defer cl.Close()
		d = cl.DB()
	case *replFrom != "":
		if *dataDir == "" {
			log.Fatalf("moirad: -replicate-from needs -data-dir for the mirrored journal and snapshots")
		}
		if *replListen != "" || *restore != "" || *journal != "" {
			log.Fatalf("moirad: -replicate-from cannot be combined with -repl-listen, -restore, or -journal")
		}
		if policy, err = db.ParseSyncPolicy(*journalSync); err != nil {
			log.Fatalf("moirad: %v", err)
		}
		var info *queries.RecoverInfo
		rep, info, err = replica.Open(replica.Config{
			Root:   *dataDir,
			From:   *replFrom,
			Logf:   log.Printf,
			Stats:  reg,
			Tracer: trc,
		})
		if err != nil {
			log.Fatalf("moirad: replica recovery: %v", err)
		}
		if n := len(info.Fsck); n > 0 {
			for _, inc := range info.Fsck {
				log.Printf("moirad: fsck: %s", inc)
			}
			log.Fatalf("moirad: recovered replica has %d integrity violations; refusing to serve it (run mrfsck)", n)
		}
		defer rep.Close()
		d = rep.DB()
	case *dataDir != "":
		if *restore != "" || *journal != "" {
			log.Fatalf("moirad: -data-dir manages its own snapshots and journal; it cannot be combined with -restore or -journal")
		}
		policy, err := db.ParseSyncPolicy(*journalSync)
		if err != nil {
			log.Fatalf("moirad: %v", err)
		}
		du, err = core.OpenDurable(core.DurabilityOptions{
			DataDir:            *dataDir,
			Logf:               log.Printf,
			Stats:              reg,
			SyncPolicy:         policy,
			SyncInterval:       *syncInterval,
			CheckpointInterval: *ckptInterval,
			CheckpointKeep:     *ckptKeep,
		})
		if err != nil {
			log.Fatalf("moirad: recovery: %v", err)
		}
		if n := len(du.Info.Fsck); n > 0 {
			for _, inc := range du.Info.Fsck {
				log.Printf("moirad: fsck: %s", inc)
			}
			log.Fatalf("moirad: recovered database has %d integrity violations; refusing to serve it (run mrfsck)", n)
		}
		defer du.Close()
		d = du.DB
		if *replListen != "" {
			prim := replica.NewPrimary(replica.PrimaryConfig{
				Journal:    du.Journal,
				Store:      du.Store,
				Checkpoint: du.Checkpoint,
				Logf:       log.Printf,
				Stats:      reg,
			})
			paddr, err := prim.Listen(*replListen)
			if err != nil {
				log.Fatalf("moirad: repl-listen: %v", err)
			}
			defer prim.Close()
			log.Printf("moirad: replication stream on %s", paddr)
		}
	case *restore != "":
		d, err = db.Restore(*restore, clock.System)
		if err != nil {
			log.Fatalf("moirad: restore: %v", err)
		}
		log.Printf("moirad: restored database from %s", *restore)
	default:
		d = queries.NewBootstrappedDB(clock.System)
	}
	if *journal != "" {
		f, err := os.OpenFile(*journal, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			log.Fatalf("moirad: journal: %v", err)
		}
		defer f.Close()
		d.SetJournal(f)
	}
	if *replListen != "" && *dataDir == "" {
		log.Fatalf("moirad: -repl-listen needs -data-dir (the replication stream ships the durable journal)")
	}

	scfg := server.Config{
		DB:           d,
		Stats:        reg,
		Logf:         logf,
		Tracer:       trc,
		Health:       hc,
		IdleTimeout:  lifecycle.idle,
		WriteTimeout: lifecycle.write,
		MaxConns:     lifecycle.maxConns,
		MaxBatch:     lifecycle.maxBatch,
		DrainTimeout: lifecycle.drain,
		ReadOnly:     rep != nil || cl != nil,
	}
	if cl != nil {
		scfg.Failover = cl
	}
	srv := server.New(scfg)
	bound, err := srv.Listen(*addr)
	if err != nil {
		log.Fatalf("moirad: listen: %v", err)
	}

	hc.AddFunc("journal", func() (bool, string) {
		if d.JournalWedged() {
			return false, "wedged: a journal append failed; mutations refused"
		}
		return true, "ok"
	})
	hc.Add(srv.HealthProbe)
	if rep != nil {
		maxLag := int64(replLagMax.Seconds())
		hc.AddFunc("replication", func() (bool, string) {
			if !srv.ReadOnly() {
				return true, "promoted to primary"
			}
			lag := rep.LagSeconds()
			detail := fmt.Sprintf("replica: connected=%v lag=%ds", rep.Connected(), lag)
			if maxLag > 0 && lag > maxLag {
				return false, detail + fmt.Sprintf(" exceeds -repl-lag-max=%s", *replLagMax)
			}
			return true, detail
		})
	}
	if cl != nil {
		cl.BindHealth(hc)
	}
	if du != nil {
		interval := *ckptInterval
		hc.AddFunc("checkpoint", func() (bool, string) {
			age, ok := du.CheckpointAge()
			if !ok {
				return true, "no checkpoint yet this run"
			}
			if interval > 0 && age > 3*interval {
				return false, fmt.Sprintf("last checkpoint %s ago (interval %s)", age.Round(time.Second), interval)
			}
			return true, fmt.Sprintf("last checkpoint %s ago", age.Round(time.Second))
		})
	}
	serveDebug(*debug, srv.Registry(), hc)

	var promoteFn func()
	if cl != nil {
		onRole = func(role string, readonly bool) {
			srv.SetReadOnly(readonly)
			log.Printf("moirad: cluster role: %s (readonly=%v)", role, readonly)
		}
		promoteFn = func() {
			if err := cl.ForcePromote("operator"); err != nil {
				log.Printf("moirad: promote: %v", err)
			}
		}
		cl.Start()
		if *promote {
			promoteFn()
			if srv.ReadOnly() {
				log.Fatalf("moirad: -promote failed; refusing to serve")
			}
		}
		log.Printf("moirad: failover cluster node on %s (epoch %d; SIGUSR1 forces promotion)", cl.Addr(), cl.Epoch())
	} else if rep != nil {
		jopts := db.JournalOptions{Policy: policy, Interval: *syncInterval}
		promoteFn = func() {
			jw, err := rep.Promote(jopts)
			if err != nil {
				log.Printf("moirad: promote: %v", err)
				return
			}
			srv.SetReadOnly(false)
			log.Printf("moirad: promoted to primary; journal segment %d, accepting writes", jw.Seq())
		}
		if *promote {
			promoteFn()
			if srv.ReadOnly() {
				log.Fatalf("moirad: -promote failed; refusing to serve")
			}
		} else {
			rep.Start()
			log.Printf("moirad: replicating from %s (read-only; SIGUSR1 promotes)", *replFrom)
		}
	} else if *promote {
		log.Fatalf("moirad: -promote only applies with -replicate-from or -election")
	}

	log.Printf("moirad: serving %d query handles on %s (unauthenticated mode)", queries.Count(), bound)
	waitForSignalOrPromote(promoteFn)
	srv.Close()
}

// lifecycleKnobs carries the connection-lifecycle flags to the server.
type lifecycleKnobs struct {
	idle, write, drain time.Duration
	maxConns           int
	maxBatch           int
}

func runDemo(users int, dcmEvery time.Duration, debug string, traceSlow time.Duration, traceSample int, lifecycle lifecycleKnobs, logf func(string, ...any)) {
	cfg := workload.Scaled(users)
	sys, err := core.Boot(core.Options{
		Workload:           &cfg,
		EnableReg:          true,
		Logf:               logf,
		TraceSlow:          traceSlow,
		TraceSampleN:       traceSample,
		ServerIdleTimeout:  lifecycle.idle,
		ServerWriteTimeout: lifecycle.write,
		ServerMaxConns:     lifecycle.maxConns,
		ServerMaxBatch:     lifecycle.maxBatch,
		ServerDrainTimeout: lifecycle.drain,
	})
	if err != nil {
		log.Fatalf("moirad: boot: %v", err)
	}
	defer sys.Close()
	serveDebug(debug, sys.Registry, sys.Health)

	log.Printf("moirad: demo system up")
	log.Printf("  moira server: %s", sys.ServerAddr)
	log.Printf("  registration: %s", sys.RegAddr)
	log.Printf("  %d managed hosts with update agents", len(sys.Agents))

	stats, err := sys.RunDCM()
	if err != nil {
		log.Fatalf("moirad: initial dcm pass: %v", err)
	}
	log.Printf("  initial propagation: %d services generated, %d hosts updated, %d files (%d bytes)",
		stats.Generated, stats.HostsUpdated, stats.FilesGenerated, stats.BytesGenerated)

	stop := make(chan struct{})
	trigger := make(chan struct{}, 1)
	go func() {
		runner := dcmRunner{sys: sys}
		runner.loop(dcmEvery, trigger, stop)
	}()

	waitForSignal()
	close(stop)
}

type dcmRunner struct{ sys *core.System }

func (r dcmRunner) loop(interval time.Duration, trigger <-chan struct{}, stop <-chan struct{}) {
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
		case <-trigger:
		}
		if stats, err := r.sys.RunDCM(); err != nil && err != mrerr.MrDCMDisabled {
			log.Printf("moirad: dcm: %v", err)
		} else if err == nil && (stats.Generated > 0 || stats.HostsUpdated > 0) {
			log.Printf("moirad: dcm: generated %d, updated %d hosts", stats.Generated, stats.HostsUpdated)
		}
	}
}

// serveDebug exposes Prometheus text on /metrics, liveness and
// readiness probes on /healthz and /readyz, the registry as the expvar
// "moira" variable, and the stdlib pprof handlers on addr; empty addr
// disables it.
func serveDebug(addr string, reg *stats.Registry, hc *health.Checker) {
	if addr == "" {
		return
	}
	expvar.Publish("moira", expvar.Func(func() any { return reg.Snapshot() }))
	http.Handle("/metrics", stats.PromHandler(reg))
	http.HandleFunc("/healthz", hc.Healthz)
	http.HandleFunc("/readyz", hc.Readyz)
	go func() {
		if err := http.ListenAndServe(addr, nil); err != nil {
			log.Printf("moirad: debug server: %v", err)
		}
	}()
	log.Printf("moirad: metrics+health+pprof on http://%s/", addr)
}

// waitForSignal blocks until SIGINT or SIGTERM.
func waitForSignal() {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGINT, syscall.SIGTERM)
	<-ch
	log.Printf("moirad: shutting down")
}

// waitForSignalOrPromote blocks until SIGINT or SIGTERM; SIGUSR1 runs
// the promote hook (replica mode) and keeps serving.
func waitForSignalOrPromote(promote func()) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGINT, syscall.SIGTERM, syscall.SIGUSR1)
	for sig := range ch {
		if sig == syscall.SIGUSR1 {
			if promote != nil {
				log.Printf("moirad: SIGUSR1: promoting")
				promote()
			} else {
				log.Printf("moirad: SIGUSR1 ignored (not a replica)")
			}
			continue
		}
		break
	}
	log.Printf("moirad: shutting down")
}
