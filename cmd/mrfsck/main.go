// Command mrfsck checks a Moira database's referential integrity: every
// list member, ACL, machine/cluster mapping, filesystem, quota, and
// index entry must point at a row that exists and agrees with it. It is
// the consistency check boot-time recovery runs before trusting a
// recovered store, available standalone for operators.
//
// Point it at either a durable data directory (-data-dir: performs the
// full recovery sequence — newest valid snapshot plus journal replay —
// then checks the result) or a single backup/snapshot directory (-in:
// verifies the MANIFEST, restores, then checks). Exit status 0 means
// clean; 1 means inconsistencies were found or the store could not be
// recovered.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"moira/internal/db"
	"moira/internal/queries"
)

func main() {
	var (
		dataDir = flag.String("data-dir", "", "recover this durable data directory, then check it")
		in      = flag.String("in", "", "restore this backup/snapshot directory, then check it")
		verbose = flag.Bool("v", false, "log the recovery sequence")
	)
	flag.Parse()

	logf := func(string, ...any) {}
	if *verbose {
		logf = log.Printf
	}

	var incons []db.Inconsistency
	switch {
	case *dataDir != "" && *in != "":
		log.Fatal("mrfsck: -data-dir and -in are mutually exclusive")
	case *dataDir != "":
		d, info, err := queries.Recover(*dataDir, nil, logf)
		if err != nil {
			log.Fatalf("mrfsck: recovery: %v", err)
		}
		fmt.Printf("recovery: %s\n", info.Summary())
		incons = info.Fsck
		_ = d
	case *in != "":
		d, err := db.Restore(*in, nil)
		if err != nil {
			log.Fatalf("mrfsck: restore: %v", err)
		}
		incons = d.Fsck()
	default:
		log.Fatal("mrfsck: one of -data-dir or -in is required")
	}

	for _, inc := range incons {
		fmt.Println(inc)
	}
	if len(incons) > 0 {
		fmt.Printf("mrfsck: %d inconsistencies\n", len(incons))
		os.Exit(1)
	}
	fmt.Println("mrfsck: clean")
}
