// Command mrbackup dumps a Moira database to the colon-escaped ASCII
// backup format (section 5.2.2), one file per relation plus a MANIFEST
// recording each table's SHA-256 and row count. The dump is atomic:
// it is staged in a temporary directory and renamed into place only
// once complete, so a crash mid-backup never damages the previous
// backup. Like the original's nightly.sh, it can rotate the last three
// backups.
//
// Standing in for a live database connection, --users populates a
// synthetic Athena workload first, which makes the tool double as the
// harness for the paper's "the ascii files take up about 3.2 MB" claim:
//
//	mrbackup --users 10000 --out /site/sms/backup_1
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"moira/internal/db"
	"moira/internal/queries"
	"moira/internal/workload"
)

func main() {
	var (
		out    = flag.String("out", "backup_1", "output directory")
		users  = flag.Int("users", 1000, "synthetic population size")
		rotate = flag.Bool("rotate", false, "keep the last three backups (dir, dir.2, dir.3)")
	)
	flag.Parse()

	d := queries.NewBootstrappedDB(nil)
	if *users > 0 {
		if _, _, err := workload.Populate(d, workload.Scaled(*users)); err != nil {
			log.Fatalf("mrbackup: populate: %v", err)
		}
	}

	if *rotate {
		os.RemoveAll(*out + ".3")
		os.Rename(*out+".2", *out+".3")
		os.Rename(*out, *out+".2")
	}
	if err := d.Backup(*out); err != nil {
		log.Fatalf("mrbackup: %v", err)
	}

	var total int64
	d.LockShared()
	defer d.UnlockShared()
	fmt.Printf("%-14s %10s\n", "relation", "bytes")
	for _, t := range db.AllTables {
		fi, err := os.Stat(filepath.Join(*out, t))
		if err != nil {
			log.Fatalf("mrbackup: %v", err)
		}
		fmt.Printf("%-14s %10d\n", t, fi.Size())
		total += fi.Size()
	}
	fmt.Printf("%-14s %10d  (%.1f MB)\n", "TOTAL", total, float64(total)/1e6)
	if m, err := db.ReadManifest(*out); err == nil {
		fmt.Printf("manifest: %d tables checksummed (SHA-256)\n", len(m.Tables))
	}
}
