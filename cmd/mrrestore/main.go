// Command mrrestore rebuilds a Moira database from an mrbackup directory
// and verifies its integrity, printing per-relation row counts. When the
// backup carries a MANIFEST (every backup written by this code does),
// each table file's SHA-256 and row count are verified before anything
// loads — a flipped byte refuses to restore. Like the original it
// demands explicit confirmation before acting (--yes skips the prompt
// for scripted use). With --journal it rolls the restored database
// forward by replaying the server's change journal, closing the
// "roughly a day's transactions" gap of section 5.2.2; a torn final
// journal line (crash signature) is tolerated and reported.
package main

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"moira/internal/db"
	"moira/internal/queries"
)

func main() {
	var (
		in      = flag.String("in", "backup_1", "backup directory to restore from")
		journal = flag.String("journal", "", "replay this change journal after restoring")
		yes     = flag.Bool("yes", false, "skip the confirmation prompts")
	)
	flag.Parse()

	if !*yes {
		if !confirm("Do you *REALLY* want to load the Moira database from a backup?") ||
			!confirm("Have you initialized an empty database?") {
			fmt.Println("aborted")
			return
		}
	}
	fmt.Printf("Prefix of backup to restore: %s\n", *in)
	fmt.Println("Opening database...done")

	d, err := db.Restore(*in, nil)
	if err != nil {
		log.Fatalf("mrrestore: %v", err)
	}

	if *journal != "" {
		f, err := os.Open(*journal)
		if err != nil {
			log.Fatalf("mrrestore: %v", err)
		}
		stats, err := queries.ReplayJournal(d, f, 0, log.Printf)
		f.Close()
		if err != nil {
			log.Fatalf("mrrestore: replay: %v", err)
		}
		fmt.Printf("journal replay: %d applied, %d already present, %d failed, %d torn\n",
			stats.Applied, stats.Skipped, stats.Failed, stats.Torn)
	}

	d.LockShared()
	defer d.UnlockShared()
	fmt.Printf("%-14s %8s\n", "relation", "rows")
	total := 0
	for _, t := range db.AllTables {
		fmt.Printf("Working on %s\n", t)
		var buf bytes.Buffer
		if err := d.DumpTable(t, &buf); err != nil {
			log.Fatalf("mrrestore: verify %s: %v", t, err)
		}
		rows := bytes.Count(buf.Bytes(), []byte{'\n'})
		fmt.Printf("%-14s %8d\n", t, rows)
		total += rows
	}
	fmt.Printf("restore complete: %d rows across %d relations\n", total, len(db.AllTables))
}

func confirm(prompt string) bool {
	fmt.Printf("%s (yes or no): ", prompt)
	sc := bufio.NewScanner(os.Stdin)
	if !sc.Scan() {
		return false
	}
	return strings.TrimSpace(sc.Text()) == "yes"
}
