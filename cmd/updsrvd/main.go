// Command updsrvd runs a standalone update agent: the daemon that lives
// on every Moira-managed server host, receives file pushes from the DCM
// over the update protocol, and executes installation scripts against
// the host's file tree. Run without a verifier it accepts
// unauthenticated pushes (for protocol experiments only).
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"

	"moira/internal/update"
)

func main() {
	var (
		addr = flag.String("addr", "127.0.0.1:7762", "TCP address to listen on")
		host = flag.String("host", "HOST.MIT.EDU", "canonical host name")
		root = flag.String("root", "", "host file tree root (default: a temp dir)")
	)
	flag.Parse()

	dir := *root
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "updsrvd-*")
		if err != nil {
			log.Fatalf("updsrvd: %v", err)
		}
		log.Printf("updsrvd: host tree at %s", dir)
	}

	a := update.NewAgent(*host, dir, nil)
	// A standalone agent still supports the generic instructions
	// (extract/install/revert/signal); exec commands log and succeed so
	// scripts written for the simulated services can be replayed.
	for _, cmd := range []string{"restart_hesiod", "install_nfs", "stage_aliases", "reload_zephyr_acls"} {
		name := cmd
		a.RegisterCommand(name, func(ag *update.Agent, args []string) error {
			log.Printf("updsrvd: exec %s %v", name, args)
			return nil
		})
	}
	bound, err := a.Listen(*addr)
	if err != nil {
		log.Fatalf("updsrvd: %v", err)
	}
	log.Printf("updsrvd: %s serving update protocol on %s", *host, bound)

	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGINT, syscall.SIGTERM)
	<-ch
	a.Close()
}
