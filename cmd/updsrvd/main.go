// Command updsrvd runs a standalone update agent: the daemon that lives
// on every Moira-managed server host, receives file pushes from the DCM
// over the update protocol, and executes installation scripts against
// the host's file tree. Run without a verifier it accepts
// unauthenticated pushes (for protocol experiments only).
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"moira/internal/health"
	"moira/internal/stats"
	"moira/internal/trace"
	"moira/internal/update"
)

func main() {
	var (
		addr = flag.String("addr", "127.0.0.1:7762", "TCP address to listen on")
		host = flag.String("host", "HOST.MIT.EDU", "canonical host name")
		root = flag.String("root", "", "host file tree root (default: a temp dir)")

		debug = flag.String("debug-addr", "", "serve /metrics, /healthz, /readyz, and pprof on this HTTP address")

		readTimeout  = flag.Duration("read-timeout", 30*time.Second, "per-frame read deadline; a stalled DCM connection is dropped after this (0 = never)")
		writeTimeout = flag.Duration("write-timeout", 30*time.Second, "per-reply write deadline (0 = none)")
		drainTimeout = flag.Duration("drain-timeout", update.DefaultDrainTimeout, "how long shutdown waits for an in-flight update before force-closing")
		busyWait     = flag.Duration("busy-wait", 5*time.Second, "how long a second concurrent update waits for the host lock before UPD_BUSY")
	)
	flag.Parse()

	dir := *root
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "updsrvd-*")
		if err != nil {
			log.Fatalf("updsrvd: %v", err)
		}
		log.Printf("updsrvd: host tree at %s", dir)
	}

	reg := stats.NewRegistry()
	a := update.NewAgent(*host, dir, nil)
	a.BindStats(reg)
	a.SetTracer(trace.New(trace.Options{Process: "updsrvd", Stats: reg}))
	a.ReadTimeout = *readTimeout
	a.WriteTimeout = *writeTimeout
	a.DrainTimeout = *drainTimeout
	a.BusyWait = *busyWait
	// A standalone agent still supports the generic instructions
	// (extract/install/revert/signal); exec commands log and succeed so
	// scripts written for the simulated services can be replayed.
	for _, cmd := range []string{"restart_hesiod", "install_nfs", "stage_aliases", "reload_zephyr_acls"} {
		name := cmd
		a.RegisterCommand(name, func(ag *update.Agent, args []string) error {
			log.Printf("updsrvd: exec %s %v", name, args)
			return nil
		})
	}
	bound, err := a.Listen(*addr)
	if err != nil {
		log.Fatalf("updsrvd: %v", err)
	}
	log.Printf("updsrvd: %s serving update protocol on %s", *host, bound)

	if *debug != "" {
		hc := health.NewChecker()
		hc.AddFunc("agent", func() (bool, string) {
			return true, fmt.Sprintf("%s listening on %s", *host, bound)
		})
		http.Handle("/metrics", stats.PromHandler(reg))
		http.HandleFunc("/healthz", hc.Healthz)
		http.HandleFunc("/readyz", hc.Readyz)
		go func() {
			if err := http.ListenAndServe(*debug, nil); err != nil {
				log.Printf("updsrvd: debug server: %v", err)
			}
		}()
		log.Printf("updsrvd: metrics+health+pprof on http://%s/", *debug)
	}

	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGINT, syscall.SIGTERM)
	<-ch
	a.Close()
}
