// Command mrtest is the interactive Moira client (the original's test
// and administrative shell). It connects to a moirad and offers both a
// command line and the classic menu interface:
//
//	mrtest -addr 127.0.0.1:7760
//	> query get_machine *
//	> access add_user x 1 /bin/csh l f m 0 id STAFF
//	> help get_user_by_login
//	> noop
//
// A single query can also be run non-interactively:
//
//	mrtest -addr ... -q get_machine '*'
//
// The closed-loop load driver measures a server's sustainable
// throughput over pipelined v4 connections (or the serial baseline):
//
//	mrtest -addr ... -load -load-conns 4 -load-inflight 16 -load-duration 10s
//	mrtest -addr ... -load -load-serial               # 1 call in flight
//	mrtest -addr ... -load -load-batch 64             # batched mutations
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"moira/internal/client"
	"moira/internal/mrerr"
	"moira/internal/util"
)

func main() {
	var (
		addr  = flag.String("addr", "127.0.0.1:7760", "moirad address")
		oneQ  = flag.String("q", "", "run one query (remaining args are its arguments) and exit")
		menus = flag.Bool("menu", false, "use the classic menu interface")

		load         = flag.Bool("load", false, "run the closed-loop load driver and exit")
		loadConns    = flag.Int("load-conns", 4, "pipelined connections for -load")
		loadInflight = flag.Int("load-inflight", 16, "concurrent calls in flight per connection for -load")
		loadDur      = flag.Duration("load-duration", 5*time.Second, "measurement window for -load")
		loadSerial   = flag.Bool("load-serial", false, "baseline mode for -load: one serial client, one call in flight")
		loadBatch    = flag.Int("load-batch", 0, "with -load: submit batches of this many mutations instead of queries")
		loadQuery    = flag.String("load-query", "get_value", "query for -load query mode (remaining args are its arguments)")
		loadJSON     = flag.String("load-json", "", "write -load results as JSON to this file (- = stdout)")
	)
	flag.Parse()

	if *load {
		args := flag.Args()
		if *loadQuery == "get_value" && len(args) == 0 {
			args = []string{"def_quota"}
		}
		err := runLoad(loadOptions{
			addr: *addr, conns: *loadConns, inflight: *loadInflight,
			duration: *loadDur, serial: *loadSerial, batch: *loadBatch,
			query: *loadQuery, args: args, jsonPath: *loadJSON,
		})
		if err != nil {
			log.Fatalf("mrtest: %v", err)
		}
		return
	}

	c, err := client.Dial(*addr)
	if err != nil {
		log.Fatalf("mrtest: %s", mrerr.ErrorMessage(mrerr.CodeOf(err)))
	}
	defer c.Disconnect()

	if *oneQ != "" {
		if err := runQuery(c, *oneQ, flag.Args()); err != nil {
			mrerr.ComErr("mrtest", mrerr.CodeOf(err), "%s", *oneQ)
			os.Exit(1)
		}
		return
	}

	if *menus {
		runMenus(c)
		return
	}
	repl(c)
}

func runQuery(c *client.Client, name string, args []string) error {
	n := 0
	err := c.Query(name, args, func(tuple []string) error {
		n++
		fmt.Println(strings.Join(tuple, " | "))
		return nil
	})
	if err != nil {
		return err
	}
	fmt.Printf("(%d tuples)\n", n)
	return nil
}

func repl(c *client.Client) {
	fmt.Println("mrtest: connected; commands: query|q, access, help, listq, noop, quit")
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("moira> ")
		if !sc.Scan() {
			return
		}
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "quit", "exit":
			return
		case "noop":
			report(c.Noop())
		case "listq":
			report(runQuery(c, "_list_queries", nil))
		case "help":
			if len(fields) != 2 {
				fmt.Println("usage: help <query>")
				continue
			}
			report(runQuery(c, "_help", fields[1:]))
		case "query", "q":
			if len(fields) < 2 {
				fmt.Println("usage: query <name> [args...]")
				continue
			}
			report(runQuery(c, fields[1], fields[2:]))
		case "access":
			if len(fields) < 2 {
				fmt.Println("usage: access <name> [args...]")
				continue
			}
			report(c.Access(fields[1], fields[2:]))
		default:
			fmt.Printf("unknown command %q\n", fields[0])
		}
	}
}

func report(err error) {
	if err != nil {
		fmt.Printf("error: %s\n", mrerr.ErrorMessage(mrerr.CodeOf(err)))
	} else {
		fmt.Println("ok")
	}
}

// runMenus drives the classic menu package over the same client.
func runMenus(c *client.Client) {
	top := util.NewMenu("Moira Test Menu", os.Stdin, os.Stdout)
	top.Add("users", "user queries", func(m *util.Menu) error {
		login, ok := m.Prompt("login (wildcards ok): ")
		if !ok {
			return nil
		}
		return runQuery(c, "get_user_by_login", []string{login})
	})
	top.Add("machines", "machine queries", func(m *util.Menu) error {
		name, ok := m.Prompt("machine name: ")
		if !ok {
			return nil
		}
		return runQuery(c, "get_machine", []string{name})
	})
	top.Add("lists", "list queries", func(m *util.Menu) error {
		name, ok := m.Prompt("list name: ")
		if !ok {
			return nil
		}
		if err := runQuery(c, "get_list_info", []string{name}); err != nil {
			return err
		}
		return runQuery(c, "get_members_of_list", []string{name})
	})
	top.Add("stats", "table statistics", func(m *util.Menu) error {
		return runQuery(c, "get_all_table_stats", nil)
	})
	top.Add("noop", "ping the server", func(m *util.Menu) error {
		return c.Noop()
	})
	if err := top.Run(); err != nil {
		log.Fatal(err)
	}
}
