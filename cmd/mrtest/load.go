package main

// The closed-loop load driver: N pipelined connections, each with K
// calls kept in flight by K worker goroutines that issue the next call
// the moment the previous one completes. Closed-loop means offered load
// tracks service rate — the driver measures sustainable throughput and
// the latency the server actually delivers at that concurrency, rather
// than queueing unboundedly like an open-loop generator.

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"moira/internal/client"
	"moira/internal/mrerr"
)

type loadOptions struct {
	addr     string
	conns    int           // pipelined connections (0 or serial mode: one serial client)
	inflight int           // concurrent calls per connection
	duration time.Duration // measurement window
	serial   bool          // baseline mode: one classic client, one call in flight
	batch    int           // >0: drive OpBatch with this many items per call
	query    string        // query name for query mode
	args     []string      // its arguments
	jsonPath string        // write the results JSON here ("" = none, "-" = stdout)
}

// loadResult is the JSON shape written by -load-json (and committed as
// BENCH_protocol_v4.json by the release benchmark run).
type loadResult struct {
	Mode       string         `json:"mode"` // "serial", "pipelined", or "batch"
	Query      string         `json:"query,omitempty"`
	Conns      int            `json:"conns"`
	Inflight   int            `json:"inflight"`
	BatchSize  int            `json:"batch_size,omitempty"`
	DurationMS int64          `json:"duration_ms"`
	Ops        int64          `json:"ops"`   // completed calls (batch items count individually)
	Calls      int64          `json:"calls"` // round trips issued
	OpsPerSec  float64        `json:"ops_per_sec"`
	P50us      int64          `json:"p50_us"`
	P95us      int64          `json:"p95_us"`
	P99us      int64          `json:"p99_us"`
	Errors     int64          `json:"errors"`
	ItemCodes  map[string]int `json:"item_codes,omitempty"` // batch mode: per-item code histogram
}

// loadConn is the slice of the client API the workers need, satisfied
// by both *client.Client (serial baseline) and *client.Pipeline.
type loadConn interface {
	Query(name string, args []string, cb client.TupleFunc) error
	Batch(items []client.BatchItem) ([]mrerr.Code, error)
}

func runLoad(o loadOptions) error {
	nconns := o.conns
	if o.serial {
		nconns = 1
	}
	if nconns < 1 || o.inflight < 1 {
		return fmt.Errorf("load: conns and inflight must be positive")
	}

	conns := make([]loadConn, nconns)
	for i := range conns {
		if o.serial {
			c, err := client.Dial(o.addr)
			if err != nil {
				return fmt.Errorf("load: dial: %w", err)
			}
			defer c.Disconnect()
			conns[i] = c
		} else {
			p, err := client.DialPipeline(o.addr, 5*time.Second, nil)
			if err != nil {
				return fmt.Errorf("load: dial pipeline: %w", err)
			}
			defer p.Close()
			conns[i] = p
		}
	}

	var (
		ops, calls, errs atomic.Int64
		seq              atomic.Int64
		stop             atomic.Bool
		histMu           sync.Mutex
		codeHist         = map[string]int{}
		latMu            sync.Mutex
		lats             []time.Duration
	)
	inflight := o.inflight
	if o.serial {
		inflight = 1
	}

	worker := func(c loadConn) {
		local := make([]time.Duration, 0, 4096)
		for !stop.Load() {
			t0 := time.Now()
			if o.batch > 0 {
				items := make([]client.BatchItem, o.batch)
				for j := range items {
					n := seq.Add(1)
					items[j] = client.BatchItem{Name: "add_machine",
						Args: []string{fmt.Sprintf("LOAD-%d.MIT.EDU", n), "VAX"}}
				}
				codes, err := c.Batch(items)
				calls.Add(1)
				if err != nil {
					errs.Add(1)
				} else {
					ops.Add(int64(len(codes)))
					histMu.Lock()
					for _, code := range codes {
						codeHist[fmt.Sprintf("%d", int32(code))]++
					}
					histMu.Unlock()
				}
			} else {
				err := c.Query(o.query, o.args, func([]string) error { return nil })
				calls.Add(1)
				if err != nil {
					errs.Add(1)
				} else {
					ops.Add(1)
				}
			}
			local = append(local, time.Since(t0))
		}
		latMu.Lock()
		lats = append(lats, local...)
		latMu.Unlock()
	}

	var wg sync.WaitGroup
	start := time.Now()
	for _, c := range conns {
		for k := 0; k < inflight; k++ {
			wg.Add(1)
			go func(c loadConn) {
				defer wg.Done()
				worker(c)
			}(c)
		}
	}
	time.Sleep(o.duration)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(p float64) int64 {
		if len(lats) == 0 {
			return 0
		}
		i := int(p * float64(len(lats)-1))
		return lats[i].Microseconds()
	}
	mode := "pipelined"
	if o.serial {
		mode = "serial"
	}
	res := loadResult{
		Mode: mode, Query: o.query, Conns: nconns, Inflight: inflight,
		DurationMS: elapsed.Milliseconds(),
		Ops:        ops.Load(), Calls: calls.Load(),
		OpsPerSec: float64(ops.Load()) / elapsed.Seconds(),
		P50us:     pct(0.50), P95us: pct(0.95), P99us: pct(0.99),
		Errors: errs.Load(),
	}
	if o.batch > 0 {
		res.Mode, res.Query, res.BatchSize, res.ItemCodes = "batch", "", o.batch, codeHist
	}

	fmt.Printf("load: %s conns=%d inflight=%d: %d ops in %v (%.0f ops/sec), p50=%dus p95=%dus p99=%dus, %d errors\n",
		res.Mode, res.Conns, res.Inflight, res.Ops, elapsed.Round(time.Millisecond),
		res.OpsPerSec, res.P50us, res.P95us, res.P99us, res.Errors)

	if o.jsonPath != "" {
		blob, err := json.MarshalIndent(&res, "", "  ")
		if err != nil {
			return err
		}
		blob = append(blob, '\n')
		if o.jsonPath == "-" {
			os.Stdout.Write(blob)
		} else if err := os.WriteFile(o.jsonPath, blob, 0644); err != nil {
			return err
		}
	}
	if res.Ops == 0 {
		return fmt.Errorf("load: no calls completed")
	}
	return nil
}
