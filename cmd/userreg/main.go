// Command userreg is the self-service registration client of section
// 5.10: a student walks up, types their name and MIT ID number, picks a
// login name, and sets an initial password — no user-accounts staff
// involved. Point it at the registration address printed by
// `moirad --demo`.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"moira/internal/mrerr"
	"moira/internal/reg"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7761", "registration server address")
	flag.Parse()

	in := bufio.NewScanner(os.Stdin)
	prompt := func(what string) string {
		fmt.Printf("%s: ", what)
		if !in.Scan() {
			os.Exit(0)
		}
		return strings.TrimSpace(in.Text())
	}

	fmt.Println("Welcome to Athena user registration.")
	first := prompt("First name")
	mi := prompt("Middle initial (optional)")
	last := prompt("Last name")
	id := prompt("MIT ID number")
	_ = mi

	timeout := 5 * time.Second
	code, status, err := reg.VerifyUser(*addr, first, last, id, timeout)
	if err != nil {
		log.Fatalf("userreg: %v", err)
	}
	switch code {
	case mrerr.Success:
		fmt.Println("You are eligible to register.")
	case mrerr.RegAlreadyRegistered:
		log.Fatalf("userreg: you are already registered (status %d)", status)
	default:
		log.Fatalf("userreg: %s", mrerr.ErrorMessage(code))
	}

	var login string
	for {
		login = prompt("Desired login name (3-8 characters)")
		code, err = reg.GrabLogin(*addr, first, last, id, login, timeout)
		if err != nil {
			log.Fatalf("userreg: %v", err)
		}
		switch code {
		case mrerr.Success:
			fmt.Printf("Login name %q is yours.\n", login)
		case mrerr.RegLoginTaken:
			fmt.Println("That login name is already taken; try another.")
			continue
		case mrerr.RegBadLogin:
			fmt.Println("That login name is badly formed; try another.")
			continue
		default:
			log.Fatalf("userreg: %s", mrerr.ErrorMessage(code))
		}
		break
	}

	password := prompt("Initial password")
	code, err = reg.SetPassword(*addr, first, last, id, password, timeout)
	if err != nil {
		log.Fatalf("userreg: %v", err)
	}
	if code != mrerr.Success {
		log.Fatalf("userreg: %s", mrerr.ErrorMessage(code))
	}
	fmt.Printf("Registration complete. Your account %q will be usable on all\n", login)
	fmt.Println("workstations after the next propagation (up to 6 hours).")
}
