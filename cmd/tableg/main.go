// Command tableg reproduces the paper's File Organization table (section
// 5.1.G): it builds the synthetic 10,000-user Athena deployment, runs
// every DCM generator, and prints each propagated file's size next to
// the published figure.
//
//	tableg            # the paper's 10,000-user scale
//	tableg -users 500 # scaled-down run
package main

import (
	"flag"
	"fmt"
	"log"

	"moira/internal/experiments"
)

func main() {
	users := flag.Int("users", 10000, "population size (the paper's deployment is 10000)")
	flag.Parse()

	fmt.Printf("File Organization (section 5.1.G) at %d users\n\n", *users)
	res, err := experiments.TableG(*users)
	if err != nil {
		log.Fatalf("tableg: %v", err)
	}
	fmt.Print(res.Format())
}
