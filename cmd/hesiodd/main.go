// Command hesiodd runs the hesiod nameserver over a directory of .db
// files (the set Moira propagates), or performs one lookup against a
// running server:
//
//	hesiodd -dir /etc/athena/hesiod -addr 127.0.0.1:7763
//	hesiodd -lookup babette.passwd -addr 127.0.0.1:7763
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"moira/internal/hesiod"
)

func main() {
	var (
		addr   = flag.String("addr", "127.0.0.1:7763", "UDP address")
		dir    = flag.String("dir", "", "directory of .db files to serve")
		lookup = flag.String("lookup", "", "resolve one name against -addr and exit")
	)
	flag.Parse()

	if *lookup != "" {
		vals, err := hesiod.Lookup(*addr, *lookup, 3*time.Second)
		if err != nil {
			log.Fatalf("hesiodd: %v", err)
		}
		for _, v := range vals {
			fmt.Println(v)
		}
		return
	}

	if *dir == "" {
		log.Fatal("hesiodd: -dir is required in server mode")
	}
	files := make(map[string][]byte)
	entries, err := os.ReadDir(*dir)
	if err != nil {
		log.Fatalf("hesiodd: %v", err)
	}
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".db" {
			continue
		}
		data, err := os.ReadFile(filepath.Join(*dir, e.Name()))
		if err != nil {
			log.Fatalf("hesiodd: %v", err)
		}
		files[e.Name()] = data
	}

	s := hesiod.NewServer()
	if err := s.LoadFiles(files); err != nil {
		log.Fatalf("hesiodd: %v", err)
	}
	bound, err := s.Listen(*addr)
	if err != nil {
		log.Fatalf("hesiodd: %v", err)
	}
	log.Printf("hesiodd: serving %d records from %d files on %s", s.NumRecords(), len(files), bound)

	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGINT, syscall.SIGTERM)
	<-ch
	s.Close()
}
