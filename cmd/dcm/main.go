// Command dcm runs Data Control Manager passes over an assembled demo
// system, playing a simulated clock forward so the 6/12/24-hour service
// schedules of section 5.1.G unfold in seconds. It prints per-pass
// statistics: which services generated files, which reported no change,
// and which hosts were updated.
//
//	dcm --users 2000 --passes 8 --advance 3h
package main

import (
	"expvar"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof"
	"time"

	"moira/internal/clock"
	"moira/internal/core"
	"moira/internal/db"
	"moira/internal/dcm"
	"moira/internal/gen"
	"moira/internal/stats"
	"moira/internal/workload"
)

func main() {
	var (
		users    = flag.Int("users", 1000, "synthetic population size")
		passes   = flag.Int("passes", 6, "number of DCM passes to run")
		advance  = flag.Duration("advance", 3*time.Hour, "simulated time between passes")
		mutate   = flag.Bool("mutate", true, "apply a database change before every other pass")
		check    = flag.Bool("check", false, "dcm_maint mode: verify every enabled service has a generator and script, then exit")
		parSvc   = flag.Int("parallel-services", 0, "concurrent service cycles (0 = default, 1 = sequential)")
		parHosts = flag.Int("parallel-hosts", 0, "concurrent host pushes per service (0 = default, 1 = sequential)")
		retries  = flag.Int("retries", 0, "in-pass soft-failure retries per host (0 = default, negative = none)")
		pushTO   = flag.Duration("push-timeout", 0, "per-host update deadline; a slower host counts as a soft failure (0 = default 30s)")
		latency  = flag.Duration("host-latency", 0, "inject this much real service delay into every update agent (demo of the parallel push)")
		incr     = flag.Bool("incremental", false, "journal-delta extraction: patch keyed models from the durable journal instead of rebuilding from scratch")
		fullEv   = flag.Int("full-every", 0, "with -incremental, force a full rebuild every N generating passes per service (0 = never)")
		whole    = flag.Bool("whole-file", false, "disable the content-chunked diff transport; push whole files")
		verbose  = flag.Bool("v", false, "log every DCM action")
		debug    = flag.String("debug-addr", "", "serve /metrics, /healthz, /readyz, expvar, and pprof on this HTTP address")
	)
	flag.Parse()

	clk := clock.NewFake(time.Unix(600000000, 0))
	cfg := workload.Scaled(*users)
	opts := core.Options{
		Clock:               clk,
		Workload:            &cfg,
		DCMParallelServices: *parSvc,
		DCMParallelHosts:    *parHosts,
		DCMMaxRetries:       *retries,
		DCMPushTimeout:      *pushTO,
		DCMIncremental:      *incr,
		DCMFullEvery:        *fullEv,
		DCMWholeFilePush:    *whole,
	}
	if *verbose {
		opts.Logf = log.Printf
	}
	sys, err := core.Boot(opts)
	if err != nil {
		log.Fatalf("dcm: boot: %v", err)
	}
	defer sys.Close()

	if *debug != "" {
		expvar.Publish("moira", expvar.Func(func() any { return sys.Registry.Snapshot() }))
		http.Handle("/metrics", stats.PromHandler(sys.Registry))
		http.HandleFunc("/healthz", sys.Health.Healthz)
		http.HandleFunc("/readyz", sys.Health.Readyz)
		go func() {
			if err := http.ListenAndServe(*debug, nil); err != nil {
				log.Printf("dcm: debug server: %v", err)
			}
		}()
		log.Printf("dcm: metrics+health+pprof on http://%s/", *debug)
	}

	if *check {
		runCheck(sys)
		return
	}
	if *latency > 0 {
		for _, a := range sys.Agents {
			a.SetLatency(*latency)
		}
	}

	fmt.Printf("dcm: %d users, %d managed hosts, advancing %v per pass\n\n",
		*users, len(sys.Agents), *advance)
	fmt.Printf("%4s  %-9s %9s %9s %6s %6s %7s %8s %10s %9s\n",
		"pass", "sim-time", "generated", "no-change", "hosts", "fails", "retries", "files", "bytes", "wall")

	mutator := newMutator(sys)
	for i := 0; i < *passes; i++ {
		if *mutate && i%2 == 1 {
			mutator.mutate(i)
		}
		start := time.Now()
		stats, err := sys.RunDCM()
		if err != nil {
			log.Fatalf("dcm: pass %d: %v", i+1, err)
		}
		wall := time.Since(start)
		fmt.Printf("%4d  %-9s %9d %9d %6d %6d %7d %8d %10d %9s\n",
			i+1, clk.Now().UTC().Format("15:04:05"),
			stats.Generated, stats.NoChange, stats.HostsUpdated,
			stats.HostSoftFails+stats.HostHardFails, stats.Retries,
			stats.FilesPropagated, stats.BytesPropagated,
			wall.Round(time.Millisecond))
		if *incr {
			fmt.Printf("      delta: full=%d delta=%d noop=%d fallback=%d records=%d keys=%d pushed=%dB skipped=%dB\n",
				stats.FullBuilds, stats.DeltaBuilds, stats.NoopPasses, stats.Fallbacks,
				stats.DeltaRecords, stats.DeltaKeys, stats.BytesPushed, stats.BytesSkipped)
		}
		if stats.HostsConsidered > 0 {
			fmt.Printf("      push latency: %s\n", stats.PushLatency.String())
		}
		clk.Advance(*advance)
	}
}

// runCheck is the dcm_maint role from section 5.8: the original checked
// each generator module in; here we audit that every enabled service
// record is backed by a registered generator and install-script builder,
// and that its hosts resolve.
func runCheck(sys *core.System) {
	problems := 0
	sys.DB.LockShared()
	defer sys.DB.UnlockShared()
	fmt.Printf("%-16s %-9s %-10s %-10s %-7s %s\n",
		"service", "interval", "generator", "script", "hosts", "status")
	sys.DB.EachServer(func(s *db.Server) bool {
		_, hasGen := gen.Registry[s.Name]
		_, hasScript := dcm.DefaultScripts[s.Name]
		hosts := sys.DB.ServerHostsOf(s.Name)
		unresolved := 0
		for _, sh := range hosts {
			if m, ok := sys.DB.MachineByID(sh.MachID); ok {
				if _, ok := sys.HostAddrs[m.Name]; !ok {
					unresolved++
				}
			} else {
				unresolved++
			}
		}
		status := "ok"
		switch {
		case !s.Enable || s.UpdateInt == 0:
			status = "disabled (sloc only)"
		case !hasGen:
			status = "MISSING GENERATOR"
			problems++
		case !hasScript:
			status = "MISSING SCRIPT"
			problems++
		case unresolved > 0:
			status = fmt.Sprintf("%d UNRESOLVED HOSTS", unresolved)
			problems++
		}
		fmt.Printf("%-16s %6dmin %-10v %-10v %-7d %s\n",
			s.Name, s.UpdateInt, hasGen, hasScript, len(hosts), status)
		return true
	})
	if problems > 0 {
		log.Fatalf("dcm: check found %d problems", problems)
	}
	fmt.Println("dcm: check passed")
}

type mutator struct {
	sys *core.System
	n   int
}

func newMutator(sys *core.System) *mutator { return &mutator{sys: sys} }

// mutate applies one administrative change so the next pass has work.
func (m *mutator) mutate(pass int) {
	m.n++
	login := fmt.Sprintf("late%04d", m.n)
	dc := m.sys.Direct("dcm-tool")
	err := dc.Query("add_user",
		[]string{login, "-1", "/bin/csh", "Comer", "Late", "", "1", "", "STAFF"}, nil)
	if err != nil {
		log.Printf("dcm: mutate: %v", err)
		return
	}
	fmt.Printf("      -- added user %s --\n", login)
	_ = pass
}
