// Command moirastat inspects a running Moira server's observability
// surface over the ordinary query protocol: the `_stats` admin handle
// (the metric registry: request, error, and latency series from the
// server, per-table op counts from the database, cumulative DCM and
// update-agent series) and the `_trace` handle (the recent-request
// ring, for following one trace ID through the system).
//
//	moirastat -addr 127.0.0.1:7760              # one-shot dump
//	moirastat -addr ... -interval 2s -count 10  # watch counter deltas
//	moirastat -addr ... -trace '*'              # recent requests
//	moirastat -addr ... -trace t1a2b3c4d-7      # one trace ID
//	moirastat -addr ... -spans '*'              # kept span trees (tail-sampled)
//	moirastat -addr ... -spans T00ab12cd-3      # one trace's span tree
//	moirastat -addr ... -health                 # readiness probes; exit 1 if failing
//	moirastat -addr replica1:7760 -repl         # replication role and lag
//
// -addr accepts a comma-separated list; moirastat connects to the
// first reachable address and fails over read queries to the rest.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"moira/internal/client"
	"moira/internal/clock"
	"moira/internal/mrerr"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7760", "Moira server address (comma-separated list for read failover)")
		interval = flag.Duration("interval", 0, "watch mode: poll every interval and print counter deltas")
		count    = flag.Int("count", 0, "watch mode: stop after this many polls (0 = forever)")
		trace    = flag.String("trace", "", "dump the request trace ring instead ('*' for all, or one trace ID)")
		spans    = flag.String("spans", "", "dump kept span trees ('*' for all, or one trace ID)")
		healthy  = flag.Bool("health", false, "one-shot health view: print every probe, exit nonzero when any fails")
		repl     = flag.Bool("repl", false, "one-shot replication view: role, last applied position, lag")
		dcmView  = flag.Bool("dcm", false, "one-shot DCM view: per-service journal position and backlog, pass modes, bytes pushed vs skipped")
	)
	flag.Parse()

	c, err := client.DialFailover(strings.Split(*addr, ","), 10*time.Second, clock.System)
	if err != nil {
		log.Fatalf("moirastat: %v", err)
	}
	defer c.Disconnect()

	switch {
	case *trace != "":
		dumpTrace(c, *trace)
	case *spans != "":
		dumpSpans(c, *spans)
	case *healthy:
		checkHealth(c)
	case *dcmView:
		rows, err := fetch(c)
		if err != nil {
			log.Fatalf("moirastat: _stats: %v", err)
		}
		printDCM(rows)
	case *repl:
		rows, err := fetch(c)
		if err != nil {
			log.Fatalf("moirastat: _stats: %v", err)
		}
		// A failover cluster node answers _whois (even read-only or
		// fenced); anything older falls back to the plain stats view.
		if who, err := c.QueryAll("_whois"); err == nil && len(who) == 1 &&
			len(who[0]) >= 8 && who[0][0] != "standalone" {
			printCluster(who[0], rows)
		} else {
			printRepl(rows)
		}
	case *interval > 0:
		watch(c, *interval, *count)
	default:
		rows, err := fetch(c)
		if err != nil {
			log.Fatalf("moirastat: _stats: %v", err)
		}
		printGrouped(rows)
	}
}

// row is one `_stats` tuple.
type row struct {
	kind, name, value string
}

func fetch(c *client.Client) ([]row, error) {
	var rows []row
	err := c.Query("_stats", nil, func(t []string) error {
		if len(t) == 3 {
			rows = append(rows, row{t[0], t[1], t[2]})
		}
		return nil
	})
	return rows, err
}

// printGrouped prints the metrics grouped by their first dotted segment
// (server, db, dcm, update), counters and gauges in columns, histograms
// on their own lines.
func printGrouped(rows []row) {
	groups := make(map[string][]row)
	var order []string
	for _, r := range rows {
		g := r.name
		if i := strings.IndexByte(g, '.'); i >= 0 {
			g = g[:i]
		}
		if _, ok := groups[g]; !ok {
			order = append(order, g)
		}
		groups[g] = append(groups[g], r)
	}
	sort.Strings(order)
	for _, g := range order {
		fmt.Printf("%s:\n", g)
		width := 0
		for _, r := range groups[g] {
			if len(r.name) > width {
				width = len(r.name)
			}
		}
		for _, r := range groups[g] {
			switch r.kind {
			case "histogram":
				fmt.Printf("  %-*s  %s\n", width, r.name, r.value)
			case "gauge":
				fmt.Printf("  %-*s  %s (gauge)\n", width, r.name, r.value)
			default:
				fmt.Printf("  %-*s  %s\n", width, r.name, r.value)
			}
		}
	}
}

// printRepl renders the replication view from the repl.* series: the
// server's role, the last applied journal position, and how far behind
// the primary's advertised head it is.
// printCluster renders the failover-cluster view from a _whois tuple
// ([role, epoch, primary, primary_repl, segment, record,
// lease_remaining_ms, last_election_cause]) plus the election and
// lease series from _stats.
func printCluster(w []string, rows []row) {
	m := make(map[string]int64)
	for _, r := range rows {
		if strings.HasPrefix(r.name, "repl.") || strings.HasPrefix(r.name, "election.") ||
			strings.HasPrefix(r.name, "lease.") {
			if v, err := strconv.ParseInt(r.value, 10, 64); err == nil {
				m[r.name] = v
			}
		}
	}
	fmt.Printf("role: %s (epoch %s)\n", w[0], w[1])
	if w[2] != "" {
		fmt.Printf("primary: %s (replication %s)\n", w[2], w[3])
	} else {
		fmt.Printf("primary: unknown\n")
	}
	fmt.Printf("position: segment %s record %s\n", w[4], w[5])
	held := "expired"
	if m["lease.held"] == 1 || w[0] == "replica" {
		held = "held"
	}
	fmt.Printf("lease: %s, %s ms remaining (%d renewals, %d expiries)\n",
		held, w[6], m["lease.renewals"], m["lease.expiries"])
	fmt.Printf("elections: %d run, %d won, %d aborted; %d role changes in 5m",
		m["election.count"], m["election.won"], m["election.aborted"], m["election.flaps"])
	if w[7] != "" {
		fmt.Printf("; last cause: %s", w[7])
	}
	fmt.Println()
	if w[0] == "primary" {
		fmt.Printf("commits: %d gated on replication, %d gate failures\n",
			m["repl.commit.gated"], m["repl.commit.gatefail"])
		fmt.Printf("leases: %d sent, %d acked\n", m["lease.sent"], m["lease.acks"])
	}
}

// printDCM renders the incremental-DCM view from the dcm.* and
// update.chunks.* series: cumulative pass modes and transfer savings,
// then a per-service table of committed journal position, last-pass
// backlog, and last pass mode from the dcm.delta.*.<service> gauges.
func printDCM(rows []row) {
	m := make(map[string]int64)
	type svcRow struct{ seg, idx, backlog, mode int64 }
	services := make(map[string]*svcRow)
	var order []string
	svc := func(name string) *svcRow {
		s, ok := services[name]
		if !ok {
			s = &svcRow{}
			services[name] = s
			order = append(order, name)
		}
		return s
	}
	for _, r := range rows {
		if !strings.HasPrefix(r.name, "dcm.") && !strings.HasPrefix(r.name, "update.chunks.") &&
			!strings.HasPrefix(r.name, "journal.") {
			continue
		}
		v, err := strconv.ParseInt(r.value, 10, 64)
		if err != nil {
			continue
		}
		switch {
		case strings.HasPrefix(r.name, "dcm.delta.pos.seg."):
			svc(strings.TrimPrefix(r.name, "dcm.delta.pos.seg.")).seg = v
		case strings.HasPrefix(r.name, "dcm.delta.pos.idx."):
			svc(strings.TrimPrefix(r.name, "dcm.delta.pos.idx.")).idx = v
		case strings.HasPrefix(r.name, "dcm.delta.backlog."):
			svc(strings.TrimPrefix(r.name, "dcm.delta.backlog.")).backlog = v
		case strings.HasPrefix(r.name, "dcm.delta.lastmode."):
			svc(strings.TrimPrefix(r.name, "dcm.delta.lastmode.")).mode = v
		default:
			m[r.name] = v
		}
	}
	fmt.Printf("passes: %d total (%d full, %d delta, %d no-op; %d fallbacks to full)\n",
		m["dcm.passes"],
		m["dcm.delta.passes.full"], m["dcm.delta.passes.delta"], m["dcm.delta.passes.noop"],
		m["dcm.delta.fallbacks"])
	fmt.Printf("deltas: %d journal records consumed, %d keys recomputed\n",
		m["dcm.delta.records"], m["dcm.delta.keys"])
	pushed, skipped := m["dcm.bytes.pushed"], m["dcm.bytes.skipped"]
	pct := 0.0
	if pushed+skipped > 0 {
		pct = 100 * float64(skipped) / float64(pushed+skipped)
	}
	fmt.Printf("transfer: %d bytes pushed, %d bytes reused by agents (%.1f%% saved); %d whole-file downgrades\n",
		pushed, skipped, pct, m["update.chunks.downgrades"])
	fmt.Printf("chunks: %d manifests exchanged, %d chunks pushed, %d reused\n",
		m["update.chunks.manifests"], m["update.chunks.pushed"], m["update.chunks.reused"])
	if hs, ok := m["journal.segment"]; ok {
		fmt.Printf("journal: head segment %d\n", hs)
	}
	if len(order) == 0 {
		fmt.Println("no incremental services (DCM running without -incremental?)")
		return
	}
	sort.Strings(order)
	modes := []string{"full", "delta", "no-op"}
	fmt.Printf("\n%-12s %10s %10s %8s %s\n", "service", "pos.seg", "pos.idx", "backlog", "last-pass")
	for _, name := range order {
		s := services[name]
		mode := "?"
		if s.mode >= 0 && int(s.mode) < len(modes) {
			mode = modes[s.mode]
		}
		fmt.Printf("%-12s %10d %10d %8d %s\n", name, s.seg, s.idx, s.backlog, mode)
	}
}

func printRepl(rows []row) {
	m := make(map[string]int64)
	for _, r := range rows {
		if strings.HasPrefix(r.name, "repl.") {
			if v, err := strconv.ParseInt(r.value, 10, 64); err == nil {
				m[r.name] = v
			}
		}
	}
	role := "standalone"
	switch m["repl.role"] {
	case 1:
		role = "replica"
	case 2:
		role = "primary"
	}
	fmt.Printf("role: %s\n", role)
	switch m["repl.role"] {
	case 1:
		state := "disconnected"
		if m["repl.connected"] == 1 {
			state = "connected"
		}
		fmt.Printf("upstream: %s (%d reconnects, %d bootstraps)\n",
			state, m["repl.reconnects"], m["repl.bootstraps"])
		fmt.Printf("applied: segment %d record %d (%d applied, %d skipped, %d failed)\n",
			m["repl.applied.seg"], m["repl.applied.idx"],
			m["repl.applied.records"], m["repl.skipped.records"], m["repl.failed.records"])
		fmt.Printf("head: segment %d record %d\n", m["repl.head.seg"], m["repl.head.idx"])
		fmt.Printf("lag: %d segments, %d records, %d bytes, %d seconds behind\n",
			m["repl.lag.segments"], m["repl.lag.records"], m["repl.lag.bytes"],
			m["repl.lag.seconds"])
	case 2:
		if _, ok := m["repl.primary.conns"]; ok {
			fmt.Printf("replicas: %d connected, %d served, %d snapshots shipped\n",
				m["repl.primary.conns"], m["repl.primary.served"], m["repl.primary.snapshots"])
			fmt.Printf("sent: %d records, %d bytes\n",
				m["repl.primary.sent.records"], m["repl.primary.sent.bytes"])
			fmt.Printf("subscribers: %d tailing, worst ship lag %d records\n",
				m["repl.primary.subscribers"], m["repl.primary.shiplag.records"])
		} else {
			fmt.Printf("promoted from replica; applied segment %d record %d\n",
				m["repl.applied.seg"], m["repl.applied.idx"])
		}
	}
}

// watch polls `_stats` and prints, for each interval, the counters that
// moved and current gauge values.
func watch(c *client.Client, interval time.Duration, count int) {
	prev := map[string]int64{}
	first := true
	for n := 0; count == 0 || n < count; n++ {
		rows, err := fetch(c)
		if err != nil {
			log.Fatalf("moirastat: _stats: %v", err)
		}
		cur := map[string]int64{}
		var lines []string
		for _, r := range rows {
			if r.kind == "histogram" {
				continue
			}
			v, err := strconv.ParseInt(r.value, 10, 64)
			if err != nil {
				continue
			}
			cur[r.name] = v
			if r.kind == "gauge" {
				lines = append(lines, fmt.Sprintf("  %s = %d", r.name, v))
				continue
			}
			if d := v - prev[r.name]; !first && d != 0 {
				lines = append(lines, fmt.Sprintf("  %s +%d", r.name, d))
			}
		}
		if !first {
			fmt.Printf("-- %s --\n", time.Now().Format("15:04:05"))
			sort.Strings(lines)
			for _, l := range lines {
				fmt.Println(l)
			}
		}
		prev = cur
		first = false
		if count != 0 && n == count-1 {
			break
		}
		time.Sleep(interval)
	}
}

// spanRow is one `_spans` tuple.
type spanRow struct {
	trace, span, parent, process, name, detail, dur, status string
	start                                                   int64
}

// dumpSpans prints the span store's kept traces as indented trees, one
// per trace ID, children ordered by start time under their parents.
func dumpSpans(c *client.Client, id string) {
	var rows []spanRow
	err := c.Query("_spans", []string{id}, func(t []string) error {
		if len(t) != 9 {
			return nil
		}
		start, _ := strconv.ParseInt(t[6], 10, 64)
		rows = append(rows, spanRow{
			trace: t[0], span: t[1], parent: t[2], process: t[3],
			name: t[4], detail: t[5], dur: t[7], status: t[8], start: start,
		})
		return nil
	})
	if err == mrerr.MrNoMatch {
		fmt.Fprintf(os.Stderr, "moirastat: no kept traces match %q (the store tail-samples: slow and errored traces are always kept)\n", id)
		os.Exit(1)
	}
	if err != nil {
		log.Fatalf("moirastat: _spans: %v", err)
	}

	byTrace := make(map[string][]spanRow)
	var order []string
	for _, r := range rows {
		if _, ok := byTrace[r.trace]; !ok {
			order = append(order, r.trace)
		}
		byTrace[r.trace] = append(byTrace[r.trace], r)
	}
	for i, tid := range order {
		if i > 0 {
			fmt.Println()
		}
		fmt.Printf("trace %s (%d spans):\n", tid, len(byTrace[tid]))
		printSpanTree(byTrace[tid])
	}
}

// printSpanTree indents children under parents; spans whose parent is
// not in the set (a remote parent from another process's store) print
// as roots.
func printSpanTree(rows []spanRow) {
	ids := make(map[string]bool, len(rows))
	for _, r := range rows {
		ids[r.span] = true
	}
	children := make(map[string][]spanRow)
	var roots []spanRow
	for _, r := range rows {
		if r.parent != "" && ids[r.parent] {
			children[r.parent] = append(children[r.parent], r)
		} else {
			roots = append(roots, r)
		}
	}
	byStart := func(s []spanRow) {
		sort.Slice(s, func(i, j int) bool { return s[i].start < s[j].start })
	}
	byStart(roots)
	for _, s := range children {
		byStart(s)
	}
	var walk func(r spanRow, depth int)
	walk = func(r spanRow, depth int) {
		line := fmt.Sprintf("%s%s", strings.Repeat("  ", depth+1), r.name)
		if r.detail != "" {
			line += " [" + r.detail + "]"
		}
		line += fmt.Sprintf("  %s  (%s)", r.dur, r.process)
		if r.status != "0" {
			line += "  status=" + r.status
		}
		fmt.Println(line)
		for _, ch := range children[r.span] {
			walk(ch, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}
}

// checkHealth runs the in-band `_health` handle and prints each probe;
// the exit status is 1 when any probe fails, so it scripts as a
// readiness check over the RPC port.
func checkHealth(c *client.Client) {
	failed := false
	err := c.Query("_health", nil, func(t []string) error {
		if len(t) != 3 {
			return nil
		}
		state := "ok  "
		if t[1] != "1" {
			state = "FAIL"
			failed = true
		}
		fmt.Printf("%s  %-12s %s\n", state, t[0], t[2])
		return nil
	})
	if err != nil {
		log.Fatalf("moirastat: _health: %v", err)
	}
	if failed {
		fmt.Fprintln(os.Stderr, "moirastat: not ready")
		os.Exit(1)
	}
	fmt.Println("ready")
}

// dumpTrace prints the server's recent-request ring, oldest first.
func dumpTrace(c *client.Client, id string) {
	fmt.Printf("%-19s  %-16s  %-12s  %-24s  %-12s  %6s  %s\n",
		"time", "trace", "op", "handle", "principal", "status", "latency")
	err := c.Query("_trace", []string{id}, func(t []string) error {
		if len(t) != 7 {
			return nil
		}
		ts := t[0]
		if sec, err := strconv.ParseInt(t[0], 10, 64); err == nil {
			ts = time.Unix(sec, 0).Format("2006-01-02 15:04:05")
		}
		fmt.Printf("%-19s  %-16s  %-12s  %-24s  %-12s  %6s  %s\n",
			ts, t[1], t[2], t[3], t[4], t[5], t[6])
		return nil
	})
	if err == mrerr.MrNoMatch {
		fmt.Fprintf(os.Stderr, "moirastat: no trace entries match %q\n", id)
		os.Exit(1)
	}
	if err != nil {
		log.Fatalf("moirastat: _trace: %v", err)
	}
}
