module moira

go 1.22
