package nfshost

import (
	"testing"

	"moira/internal/update"
)

func TestParseCredentials(t *testing.T) {
	data := []byte("mtalford:14956:5904:689\nmstai:9296:5899\n\n")
	creds, err := ParseCredentials(data)
	if err != nil {
		t.Fatal(err)
	}
	c := creds["mtalford"]
	if c.UID != 14956 || len(c.GIDs) != 2 || c.GIDs[0] != 5904 {
		t.Errorf("credential = %+v", c)
	}
	for _, bad := range []string{"nouid\n", "x:notanint\n", "x:1:notagid\n"} {
		if _, err := ParseCredentials([]byte(bad)); err == nil {
			t.Errorf("ParseCredentials(%q) succeeded", bad)
		}
	}
}

func TestParseQuotas(t *testing.T) {
	q, err := parseQuotas([]byte("6530 300\n6531 500\n"))
	if err != nil {
		t.Fatal(err)
	}
	if q[6530] != 300 || q[6531] != 500 {
		t.Errorf("quotas = %v", q)
	}
	if _, err := parseQuotas([]byte("garbage\n")); err == nil {
		t.Error("bad quota line accepted")
	}
}

// installFixture stages the NFS files on an agent and runs install_nfs.
func installFixture(t *testing.T) (*update.Agent, *Host) {
	t.Helper()
	a := update.NewAgent("FS-01.MIT.EDU", t.TempDir(), nil)
	h := NewHost("FS-01.MIT.EDU")
	AttachToAgent(a, h)

	write := func(p string, content string) {
		t.Helper()
		if err := a.WriteHostFile(p, []byte(content)); err != nil {
			t.Fatal(err)
		}
	}
	write("/etc/athena/nfs/credentials", "babette:6530:10914\nkazimi:6533:10923:800\n")
	write("/etc/athena/nfs/u1.quotas", "6530 300\n6533 450\n")
	write("/etc/athena/nfs/u1.dirs",
		"/u1/babette 6530 10914 HOMEDIR\n/u1/proj 6533 800 PROJECT\n")
	return a, h
}

func TestInstallAppliesState(t *testing.T) {
	a, h := installFixture(t)
	if err := a.ExecCommand("install_nfs", []string{"/etc/athena/nfs", "/u1"}); err != nil {
		t.Fatal(err)
	}
	// Credentials loaded.
	if h.NumCredentials() != 2 {
		t.Errorf("credentials = %d", h.NumCredentials())
	}
	if c, ok := h.CredentialOf("kazimi"); !ok || c.UID != 6533 || len(c.GIDs) != 2 {
		t.Errorf("kazimi credential = %+v, %v", c, ok)
	}
	// Quotas applied per partition.
	if q, ok := h.QuotaOf("/u1", 6530); !ok || q != 300 {
		t.Errorf("quota 6530 = %d, %v", q, ok)
	}
	if _, ok := h.QuotaOf("/u2", 6530); ok {
		t.Error("quota on wrong partition")
	}
	// Lockers created; HOMEDIR got init files.
	l, ok := h.LockerAt("/u1/babette")
	if !ok || l.UID != 6530 || l.GID != 10914 || !l.Inits {
		t.Errorf("babette locker = %+v, %v", l, ok)
	}
	if data, err := a.ReadHostFile("/u1/babette/.cshrc"); err != nil || len(data) == 0 {
		t.Errorf("HOMEDIR init files missing: %v", err)
	}
	l, ok = h.LockerAt("/u1/proj")
	if !ok || l.Inits {
		t.Errorf("proj locker = %+v, %v", l, ok)
	}
	if h.Installs() != 1 {
		t.Errorf("installs = %d", h.Installs())
	}
}

func TestInstallIsIdempotentAndPreservesLockers(t *testing.T) {
	a, h := installFixture(t)
	if err := a.ExecCommand("install_nfs", []string{"/etc/athena/nfs", "/u1"}); err != nil {
		t.Fatal(err)
	}
	// User writes something into their locker.
	if err := a.WriteHostFile("/u1/babette/thesis.tex", []byte("draft")); err != nil {
		t.Fatal(err)
	}
	// Quota change arrives with the next propagation.
	if err := a.WriteHostFile("/etc/athena/nfs/u1.quotas", []byte("6530 800\n6533 450\n")); err != nil {
		t.Fatal(err)
	}
	if err := a.ExecCommand("install_nfs", []string{"/etc/athena/nfs", "/u1"}); err != nil {
		t.Fatal(err)
	}
	if q, _ := h.QuotaOf("/u1", 6530); q != 800 {
		t.Errorf("updated quota = %d", q)
	}
	// The locker contents survived: updates never clobber lockers.
	if data, err := a.ReadHostFile("/u1/babette/thesis.tex"); err != nil || string(data) != "draft" {
		t.Errorf("locker contents = %q, %v", data, err)
	}
	if h.NumLockers() != 2 {
		t.Errorf("lockers = %d", h.NumLockers())
	}
}

func TestInstallMissingFiles(t *testing.T) {
	a := update.NewAgent("FS-02.MIT.EDU", t.TempDir(), nil)
	h := NewHost("FS-02.MIT.EDU")
	AttachToAgent(a, h)
	if err := a.ExecCommand("install_nfs", []string{"/nowhere", "/u1"}); err == nil {
		t.Error("install with missing files succeeded")
	}
	if err := a.ExecCommand("install_nfs", []string{"/only-one-arg"}); err == nil {
		t.Error("install with wrong arity succeeded")
	}
}
