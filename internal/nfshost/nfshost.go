// Package nfshost simulates an Athena NFS file server host: the consumer
// of the credentials, quotas, and directories files the DCM propagates.
// Its installer command reproduces the shell script of section 5.8.2 —
// "mkdir <username>, chown, chgrp, chmod — using directories file;
// setquota <quota> — using quotas file" — against the host's private
// file tree, and keeps queryable state for quotas and credentials.
package nfshost

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"moira/internal/update"
)

// Credential is one parsed line of the credentials file.
type Credential struct {
	Login string
	UID   int
	GIDs  []int
}

// Locker records a directory created by the installer.
type Locker struct {
	Path  string
	UID   int
	GID   int
	Type  string
	Inits bool // HOMEDIR lockers get the default init files
}

// Host is the simulated NFS server state.
type Host struct {
	Name string

	mu          sync.RWMutex
	credentials map[string]Credential  // by login
	quotas      map[string]map[int]int // partition -> uid -> quota
	lockers     map[string]Locker      // by path
	installs    int
}

// NewHost creates an empty NFS host simulation.
func NewHost(name string) *Host {
	return &Host{
		Name:        name,
		credentials: make(map[string]Credential),
		quotas:      make(map[string]map[int]int),
		lockers:     make(map[string]Locker),
	}
}

// ParseCredentials parses the credentials file: one
// login:uid:gid[:gid...] entry per line.
func ParseCredentials(data []byte) (map[string]Credential, error) {
	out := make(map[string]Credential)
	for lineno, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		parts := strings.Split(line, ":")
		if len(parts) < 2 {
			return nil, fmt.Errorf("nfshost: credentials line %d malformed: %q", lineno+1, line)
		}
		uid, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, fmt.Errorf("nfshost: credentials line %d: bad uid %q", lineno+1, parts[1])
		}
		c := Credential{Login: parts[0], UID: uid}
		for _, g := range parts[2:] {
			gid, err := strconv.Atoi(g)
			if err != nil {
				return nil, fmt.Errorf("nfshost: credentials line %d: bad gid %q", lineno+1, g)
			}
			c.GIDs = append(c.GIDs, gid)
		}
		out[c.Login] = c
	}
	return out, nil
}

// parseQuotas parses "uid quota" lines.
func parseQuotas(data []byte) (map[int]int, error) {
	out := make(map[int]int)
	for lineno, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		var uid, quota int
		if _, err := fmt.Sscanf(line, "%d %d", &uid, &quota); err != nil {
			return nil, fmt.Errorf("nfshost: quotas line %d malformed: %q", lineno+1, line)
		}
		out[uid] = quota
	}
	return out, nil
}

// CredentialOf looks up a login in the installed credentials file.
func (h *Host) CredentialOf(login string) (Credential, bool) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	c, ok := h.credentials[login]
	return c, ok
}

// NumCredentials reports the credential count.
func (h *Host) NumCredentials() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return len(h.credentials)
}

// QuotaOf returns the quota for a uid on a partition.
func (h *Host) QuotaOf(partition string, uid int) (int, bool) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	q, ok := h.quotas[partition][uid]
	return q, ok
}

// LockerAt returns the locker created at path, if any.
func (h *Host) LockerAt(path string) (Locker, bool) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	l, ok := h.lockers[path]
	return l, ok
}

// NumLockers reports how many directories have been created.
func (h *Host) NumLockers() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return len(h.lockers)
}

// Installs reports how many install_nfs runs completed.
func (h *Host) Installs() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.installs
}

// AttachToAgent registers "install_nfs <destDir> <partition>" on the
// host's update agent. It loads the credentials file, applies the
// partition's quotas file, and creates the lockers named by the
// directories file — creating real directories under the agent root,
// with HOMEDIR lockers receiving the default init files.
func AttachToAgent(a *update.Agent, h *Host) {
	a.RegisterCommand("install_nfs", func(ag *update.Agent, args []string) error {
		if len(args) != 2 {
			return fmt.Errorf("install_nfs: want 2 args, got %d", len(args))
		}
		destDir, partition := args[0], args[1]
		base := strings.ReplaceAll(strings.TrimPrefix(partition, "/"), "/", "_")

		credData, err := ag.ReadHostFile(destDir + "/credentials")
		if err != nil {
			return err
		}
		creds, err := ParseCredentials(credData)
		if err != nil {
			return err
		}

		quotaData, err := ag.ReadHostFile(destDir + "/" + base + ".quotas")
		if err != nil {
			return err
		}
		quotas, err := parseQuotas(quotaData)
		if err != nil {
			return err
		}

		dirData, err := ag.ReadHostFile(destDir + "/" + base + ".dirs")
		if err != nil {
			return err
		}

		h.mu.Lock()
		defer h.mu.Unlock()
		h.credentials = creds
		h.quotas[partition] = quotas

		for lineno, line := range strings.Split(string(dirData), "\n") {
			line = strings.TrimSpace(line)
			if line == "" {
				continue
			}
			fields := strings.Fields(line)
			if len(fields) != 4 {
				return fmt.Errorf("install_nfs: dirs line %d malformed: %q", lineno+1, line)
			}
			uid, err1 := strconv.Atoi(fields[1])
			gid, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil {
				return fmt.Errorf("install_nfs: dirs line %d: bad ids", lineno+1)
			}
			path := fields[0]
			if _, exists := h.lockers[path]; exists {
				continue // already created; updates never clobber lockers
			}
			locker := Locker{Path: path, UID: uid, GID: gid, Type: fields[3]}
			if locker.Type == "HOMEDIR" {
				locker.Inits = true
				if err := ag.WriteHostFile(path+"/.cshrc", defaultCshrc); err != nil {
					return err
				}
				if err := ag.WriteHostFile(path+"/.login", defaultLogin); err != nil {
					return err
				}
			} else if err := ag.WriteHostFile(path+"/.keep", nil); err != nil {
				return err
			}
			h.lockers[path] = locker
		}
		h.installs++
		return nil
	})
}

var (
	defaultCshrc = []byte("# Athena default .cshrc\nsource /usr/athena/lib/init/cshrc\n")
	defaultLogin = []byte("# Athena default .login\nsource /usr/athena/lib/init/login\n")
)
