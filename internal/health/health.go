// Package health aggregates per-subsystem readiness probes into the
// machine-readable health surface the failover roadmap item will elect
// on. Each probe answers "can this process currently do its job?" with
// a one-line detail; the checker renders them three ways: the /healthz
// and /readyz HTTP endpoints on -debug-addr, and the in-band _health
// query handle (so a client that can reach the RPC port can ask even
// when no debug address is configured).
//
// Probe semantics: /healthz is liveness — it answers 200 whenever the
// process can run HTTP handlers at all, regardless of probe state (a
// wedged journal is a reason to fail over, not to restart the
// process). /readyz is readiness — 503 unless every registered probe
// passes, so a load balancer or failover controller stops routing to a
// wedged, lagging, or draining node.
package health

import (
	"fmt"
	"net/http"
	"sync"
)

// Status is one probe's answer.
type Status struct {
	Name   string
	OK     bool
	Detail string
}

// Probe reports one subsystem's readiness. It must not block: probes
// run on every /readyz hit and inside the _health query handle.
type Probe func() Status

// Checker is a named collection of probes.
type Checker struct {
	mu     sync.RWMutex
	probes []Probe
}

// NewChecker creates an empty checker (always ready).
func NewChecker() *Checker { return &Checker{} }

// Add registers a probe returning a full Status.
func (c *Checker) Add(p Probe) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.probes = append(c.probes, p)
}

// AddFunc registers a probe from a name and a condition function.
func (c *Checker) AddFunc(name string, fn func() (ok bool, detail string)) {
	c.Add(func() Status {
		ok, detail := fn()
		return Status{Name: name, OK: ok, Detail: detail}
	})
}

// Check runs every probe and returns the statuses in registration
// order. A nil checker reports no probes (vacuously ready).
func (c *Checker) Check() []Status {
	if c == nil {
		return nil
	}
	c.mu.RLock()
	probes := c.probes
	c.mu.RUnlock()
	out := make([]Status, 0, len(probes))
	for _, p := range probes {
		out = append(out, p())
	}
	return out
}

// Ready reports whether every probe passes, with the statuses.
func (c *Checker) Ready() (bool, []Status) {
	sts := c.Check()
	for _, st := range sts {
		if !st.OK {
			return false, sts
		}
	}
	return true, sts
}

// writeStatuses renders probe results one per line: "ok|fail name detail".
func writeStatuses(w http.ResponseWriter, sts []Status) {
	for _, st := range sts {
		state := "ok"
		if !st.OK {
			state = "fail"
		}
		fmt.Fprintf(w, "%s %s %s\n", state, st.Name, st.Detail)
	}
}

// Healthz is the liveness endpoint: 200 with per-probe detail.
func (c *Checker) Healthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
	writeStatuses(w, c.Check())
}

// Readyz is the readiness endpoint: 200 when all probes pass, 503
// otherwise, either way with per-probe detail.
func (c *Checker) Readyz(w http.ResponseWriter, _ *http.Request) {
	ready, sts := c.Ready()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if ready {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ready")
	} else {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "not ready")
	}
	writeStatuses(w, sts)
}
