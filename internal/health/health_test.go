package health

import (
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
)

func TestEmptyCheckerIsReady(t *testing.T) {
	c := NewChecker()
	ready, sts := c.Ready()
	if !ready || len(sts) != 0 {
		t.Errorf("empty checker: ready=%v statuses=%v", ready, sts)
	}
}

func TestNilCheckerIsSafe(t *testing.T) {
	var c *Checker
	if sts := c.Check(); sts != nil {
		t.Errorf("nil checker Check = %v, want nil", sts)
	}
}

func TestProbesRunInRegistrationOrder(t *testing.T) {
	c := NewChecker()
	c.AddFunc("first", func() (bool, string) { return true, "a" })
	c.Add(func() Status { return Status{Name: "second", OK: true, Detail: "b"} })
	c.AddFunc("third", func() (bool, string) { return false, "broken" })

	sts := c.Check()
	if len(sts) != 3 {
		t.Fatalf("statuses = %d, want 3", len(sts))
	}
	for i, want := range []string{"first", "second", "third"} {
		if sts[i].Name != want {
			t.Errorf("status[%d] = %s, want %s", i, sts[i].Name, want)
		}
	}
	if ready, _ := c.Ready(); ready {
		t.Error("checker with a failing probe reported ready")
	}
}

// TestReadyzFlips drives the readiness endpoint through a probe state
// change: 200 while passing, 503 with the failing probe named once it
// fails, and back.
func TestReadyzFlips(t *testing.T) {
	var wedged atomic.Bool
	c := NewChecker()
	c.AddFunc("journal", func() (bool, string) {
		if wedged.Load() {
			return false, "wedged"
		}
		return true, "ok"
	})

	get := func() (int, string) {
		rec := httptest.NewRecorder()
		c.Readyz(rec, nil)
		return rec.Code, rec.Body.String()
	}
	if code, body := get(); code != 200 || !strings.HasPrefix(body, "ready\n") {
		t.Errorf("healthy: %d %q", code, body)
	}
	wedged.Store(true)
	code, body := get()
	if code != 503 {
		t.Errorf("wedged: code = %d, want 503", code)
	}
	if !strings.Contains(body, "fail journal wedged") {
		t.Errorf("wedged body missing probe line: %q", body)
	}
	wedged.Store(false)
	if code, _ := get(); code != 200 {
		t.Errorf("recovered: code = %d, want 200", code)
	}
}

// TestHealthzAlwaysOK pins liveness semantics: a failing probe is a
// reason to fail over, not to restart the process, so /healthz stays
// 200 and just reports the detail.
func TestHealthzAlwaysOK(t *testing.T) {
	c := NewChecker()
	c.AddFunc("journal", func() (bool, string) { return false, "wedged" })
	rec := httptest.NewRecorder()
	c.Healthz(rec, nil)
	if rec.Code != 200 {
		t.Errorf("healthz with failing probe = %d, want 200", rec.Code)
	}
	if body := rec.Body.String(); !strings.Contains(body, "fail journal wedged") {
		t.Errorf("healthz body missing detail: %q", body)
	}
}
