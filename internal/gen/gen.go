// Package gen contains the DCM's generator sub-programs (section 5.7.1):
// for each supported service, the code that extracts Moira data and
// converts it to the server-specific file formats of section 5.8 —
// Hesiod BIND files, NFS credentials/quota/directory files, the sendmail
// aliases file, and Zephyr ACL files.
//
// Every generator is written as a keyed emitter over an extract.Model:
// the full build enumerates the domain and emits each logical key; an
// incremental pass (driven by the extract.Planner from journal deltas)
// deletes the dirty keys and re-emits just those. Both paths share the
// per-key emit functions, which is what makes an incremental extract
// byte-identical to a from-scratch one by construction.
package gen

import (
	"fmt"
	"sort"
	"strings"

	"moira/internal/acl"
	"moira/internal/db"
	"moira/internal/extract"
	"moira/internal/update"
)

// Result is the output of one generator run.
type Result struct {
	// Common is the bundle propagated identically to every host of the
	// service (hesiod, mail, zephyr). nil when the service is per-host.
	Common []byte
	// PerHost maps canonical machine name to that host's bundle (NFS).
	PerHost map[string][]byte
	// Files flattens every generated file (per-host files are prefixed
	// "HOST/") for inspection, sizing, and the Table G harness.
	Files map[string][]byte
	// NumFiles counts generated files; TotalBytes their summed size.
	NumFiles   int
	TotalBytes int
}

func (r *Result) finish() {
	r.NumFiles = len(r.Files)
	r.TotalBytes = 0
	for _, f := range r.Files {
		r.TotalBytes += len(f)
	}
}

// Func is a generator: it reads the database (taking its own shared
// lock) and produces the service's files. Deciding whether anything
// changed since the last pass is the driver's job (the extract planner
// or the DCM's sequence check), not the generator's.
type Func func(d *db.DB) (*Result, error)

// Registry maps DCM service names to their generators, the equivalent of
// the /u1/sms/bin/<service>.gen modules.
var Registry = map[string]Func{
	"HESIOD": Hesiod,
	"NFS":    NFS,
	"SMTP":   Mail,
	"ZEPHYR": ZephyrACL,
}

// Tables maps DCM service names to the relations their extracts read,
// for the driver-side "did anything change" sequence check that
// replaced the old in-generator unchanged() short-circuit.
var Tables = map[string][]string{
	"HESIOD": hesiodTables,
	"NFS":    nfsTables,
	"SMTP":   mailTables,
	"ZEPHYR": zephyrTables,
}

// Incremental is a keyed generator: the full build, the journal-record
// dependency map, and the per-key emit, packaged for the extract
// planner. Emit must produce exactly the entries the full build would
// produce for that key against current database state.
type Incremental struct {
	TablesList []string
	BuildFn    func(d *db.DB) (*extract.Model, error)
	DepsFn     func(d *db.DB, rec *db.JournalRecord) ([]string, bool)
	EmitFn     func(d *db.DB, m *extract.Model, key string)
}

// Tables implements extract.Generator.
func (g *Incremental) Tables() []string { return g.TablesList }

// Build implements extract.Generator.
func (g *Incremental) Build(d *db.DB) (*extract.Model, error) { return g.BuildFn(d) }

// Deps implements extract.Generator.
func (g *Incremental) Deps(d *db.DB, rec *db.JournalRecord) ([]string, bool) {
	return g.DepsFn(d, rec)
}

// Apply implements extract.Generator: delete each dirty key, re-emit it.
func (g *Incremental) Apply(d *db.DB, m *extract.Model, keys []string) error {
	for _, k := range keys {
		m.DeleteKey(k)
		g.EmitFn(d, m, k)
	}
	return nil
}

// Incrementals maps service names to their keyed generators. Services
// absent here (custom test generators) always regenerate fully.
var Incrementals = map[string]*Incremental{
	"HESIOD": HesiodIncremental,
	"NFS":    NFSIncremental,
	"SMTP":   MailIncremental,
	"ZEPHYR": ZephyrIncremental,
}

// Scratch holds one service's reusable bundle buffers between DCM
// passes. Rebuilding a service's tar bundles allocates tens of
// megabytes per pass; recycling the previous pass's buffers keeps an
// incremental pass's allocation proportional to the delta. A Scratch
// must not be shared across services generating concurrently, and the
// previous pass's bundles must be fully consumed (pushed) before the
// next render overwrites them.
type Scratch struct {
	bufs map[string][]byte
}

// NewScratch returns an empty bundle-buffer cache.
func NewScratch() *Scratch { return &Scratch{bufs: map[string][]byte{}} }

// FromModel converts a rendered model into a generator Result: files
// named "HOST/path" group into per-host tar bundles, files without a
// slash form the common bundle.
func FromModel(m *extract.Model) (*Result, error) {
	return FromModelInto(m, nil)
}

// FromModelInto is FromModel rendering the bundles into s's recycled
// buffers (s may be nil for plain allocation).
func FromModelInto(m *extract.Model, s *Scratch) (*Result, error) {
	files := m.Files()
	common := map[string][]byte{}
	perHost := map[string]map[string][]byte{}
	r := &Result{Files: map[string][]byte{}}
	for name, data := range files {
		if host, rest, ok := strings.Cut(name, "/"); ok {
			if perHost[host] == nil {
				perHost[host] = map[string][]byte{}
			}
			perHost[host][rest] = data
		} else {
			common[name] = data
		}
		r.Files[name] = data
	}
	bundleInto := func(key string, fs map[string][]byte) ([]byte, error) {
		var prev []byte
		if s != nil {
			prev = s.bufs[key]
		}
		tarball, err := update.BuildTarInto(prev, fs)
		if err == nil && s != nil {
			s.bufs[key] = tarball
		}
		return tarball, err
	}
	if len(common) > 0 {
		tarball, err := bundleInto("", common)
		if err != nil {
			return nil, err
		}
		r.Common = tarball
	}
	if len(perHost) > 0 {
		r.PerHost = map[string][]byte{}
		for host, hf := range perHost {
			tarball, err := bundleInto("/"+host, hf)
			if err != nil {
				return nil, err
			}
			r.PerHost[host] = tarball
		}
	}
	r.finish()
	return r, nil
}

// runFull is the legacy full-generation path: build the keyed model
// from scratch under a shared lock and render it.
func runFull(d *db.DB, build func(*db.DB) (*extract.Model, error)) (*Result, error) {
	d.LockShared()
	m, err := build(d)
	d.UnlockShared()
	if err != nil {
		return nil, err
	}
	return FromModel(m)
}

// shortHost returns the lowercase first label of a hostname, the form
// the hesiod filsys data uses ("charon" for CHARON.MIT.EDU).
func shortHost(name string) string {
	name = strings.ToLower(name)
	if i := strings.IndexByte(name, '.'); i >= 0 {
		return name[:i]
	}
	return name
}

// hsLine renders one hesiod record: `name HS UNSPECA "data"`.
func hsLine(b *strings.Builder, name, data string) {
	fmt.Fprintf(b, "%s HS UNSPECA \"%s\"\n", name, data)
}

// cnameLine renders a hesiod CNAME record.
func cnameLine(b *strings.Builder, name, target string) {
	fmt.Fprintf(b, "%s HS CNAME %s\n", name, target)
}

// listLess orders group lists by (GID, ListID) — GID first for the
// paper's ordering, ListID to break GID ties deterministically (the
// old sort.Slice by GID alone left tie order unstable, which an
// incremental re-insert could never reproduce).
func listLess(a, b *db.List) bool {
	if a.GID != b.GID {
		return a.GID < b.GID
	}
	return a.ListID < b.ListID
}

// activeGroups returns the active group lists, sorted by (GID, ListID).
func activeGroups(d *db.DB) []*db.List {
	var out []*db.List
	d.EachList(func(l *db.List) bool {
		if l.Active && l.Group {
			out = append(out, l)
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool { return listLess(out[i], out[j]) })
	return out
}

// upLists returns the IDs of every list transitively containing the
// member (mtype, mid): the upward closure through LIST memberships,
// cycle-safe. It is the inverse walk of acl.ExpandMembers — a member
// is in ExpandMembers(L) exactly when L is in upLists(member).
func upLists(d *db.DB, mtype string, mid int) map[int]bool {
	seen := map[int]bool{}
	queue := append([]int(nil), d.ListsContaining(mtype, mid)...)
	for len(queue) > 0 {
		lid := queue[0]
		queue = queue[1:]
		if seen[lid] {
			continue
		}
		seen[lid] = true
		queue = append(queue, d.ListsContaining(db.ACEList, lid)...)
	}
	return seen
}

// activeGroupsOfUser returns the active group lists containing the user
// (directly or through sublists) in (GID, ListID) order with the user's
// namesake group first — the ordering visible in the paper's grplist.db
// example.
func activeGroupsOfUser(d *db.DB, u *db.User) []*db.List {
	var gs []*db.List
	for lid := range upLists(d, db.ACEUser, u.UsersID) {
		if l, ok := d.ListByID(lid); ok && l.Active && l.Group {
			gs = append(gs, l)
		}
	}
	sort.Slice(gs, func(i, j int) bool { return listLess(gs[i], gs[j]) })
	var own *db.List
	var rest []*db.List
	for _, g := range gs {
		if g.Name == u.Login && own == nil {
			own = g
		} else {
			rest = append(rest, g)
		}
	}
	if own != nil {
		return append([]*db.List{own}, rest...)
	}
	return rest
}

// upListKeys renders the upward closure of (mtype, mid) as "list:" keys
// for dependency maps: a change inside a list is visible to every list
// that (transitively) contains it.
func upListKeys(d *db.DB, mtype string, mid int) []string {
	var keys []string
	for lid := range upLists(d, mtype, mid) {
		if l, ok := d.ListByID(lid); ok {
			keys = append(keys, "list:"+l.Name)
		}
	}
	return keys
}

// userKeysUnder renders "user:" keys for every user in the downward
// expansion of a list — the users whose derived lines change when the
// list's membership or flags change.
func userKeysUnder(d *db.DB, listID int) []string {
	var keys []string
	for _, m := range acl.ExpandMembers(d, listID) {
		if m.MemberType == db.ACEUser {
			if u, ok := d.UserByID(m.MemberID); ok {
				keys = append(keys, "user:"+u.Login)
			}
		}
	}
	return keys
}

// bundle tars a file set.
func bundle(files map[string][]byte) ([]byte, error) {
	return update.BuildTar(files)
}
