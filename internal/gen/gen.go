// Package gen contains the DCM's generator sub-programs (section 5.7.1):
// for each supported service, the code that extracts Moira data and
// converts it to the server-specific file formats of section 5.8 —
// Hesiod BIND files, NFS credentials/quota/directory files, the sendmail
// aliases file, and Zephyr ACL files.
//
// A generator returns MR_NO_CHANGE when none of the relations it reads
// were modified since the last generation, which is what makes the
// 15-minute DCM wakeups cheap (section 5.1.E).
package gen

import (
	"fmt"
	"sort"
	"strings"

	"moira/internal/db"
	"moira/internal/update"
)

// Result is the output of one generator run.
type Result struct {
	// Common is the bundle propagated identically to every host of the
	// service (hesiod, mail, zephyr). nil when the service is per-host.
	Common []byte
	// PerHost maps canonical machine name to that host's bundle (NFS).
	PerHost map[string][]byte
	// Files flattens every generated file (per-host files are prefixed
	// "HOST/") for inspection, sizing, and the Table G harness.
	Files map[string][]byte
	// NumFiles counts generated files; TotalBytes their summed size.
	NumFiles   int
	TotalBytes int
	// Seq is the database change sequence the generator observed; the
	// DCM stores it and passes it back as `since` on the next run.
	Seq int64
}

func (r *Result) finish() {
	r.NumFiles = len(r.Files)
	r.TotalBytes = 0
	for _, f := range r.Files {
		r.TotalBytes += len(f)
	}
}

// Func is a generator: it reads the database (taking its own shared
// lock) and produces the service's files, or MR_NO_CHANGE if nothing
// relevant changed since the given change sequence.
type Func func(d *db.DB, since int64) (*Result, error)

// Registry maps DCM service names to their generators, the equivalent of
// the /u1/sms/bin/<service>.gen modules.
var Registry = map[string]Func{
	"HESIOD": Hesiod,
	"NFS":    NFS,
	"SMTP":   Mail,
	"ZEPHYR": ZephyrACL,
}

// unchanged reports whether none of the tables changed since the change
// sequence `since`. A zero `since` means "never generated": always
// regenerate. Sequences, not wall times, drive this so a change landing
// in the same second as a generation is never lost.
func unchanged(d *db.DB, since int64, tables ...string) bool {
	return since > 0 && d.SeqOf(tables...) <= since
}

// shortHost returns the lowercase first label of a hostname, the form
// the hesiod filsys data uses ("charon" for CHARON.MIT.EDU).
func shortHost(name string) string {
	name = strings.ToLower(name)
	if i := strings.IndexByte(name, '.'); i >= 0 {
		return name[:i]
	}
	return name
}

// hsLine renders one hesiod record: `name HS UNSPECA "data"`.
func hsLine(b *strings.Builder, name, data string) {
	fmt.Fprintf(b, "%s HS UNSPECA \"%s\"\n", name, data)
}

// cnameLine renders a hesiod CNAME record.
func cnameLine(b *strings.Builder, name, target string) {
	fmt.Fprintf(b, "%s HS CNAME %s\n", name, target)
}

// activeGroups returns the active group lists, sorted by GID.
func activeGroups(d *db.DB) []*db.List {
	var out []*db.List
	d.EachList(func(l *db.List) bool {
		if l.Active && l.Group {
			out = append(out, l)
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].GID < out[j].GID })
	return out
}

// groupsOfUser returns the active group lists containing the user,
// directly or through sublists, with the user's namesake group first —
// the ordering visible in the paper's grplist.db example.
func groupsOfUser(d *db.DB, u *db.User, groups []*db.List, memberOf func(listID, usersID int) bool) []*db.List {
	var own *db.List
	var rest []*db.List
	for _, g := range groups {
		if !memberOf(g.ListID, u.UsersID) {
			continue
		}
		if g.Name == u.Login && own == nil {
			own = g
		} else {
			rest = append(rest, g)
		}
	}
	if own != nil {
		return append([]*db.List{own}, rest...)
	}
	return rest
}

// bundle tars a file set.
func bundle(files map[string][]byte) ([]byte, error) {
	return update.BuildTar(files)
}
