package gen

import (
	"strings"

	"moira/internal/acl"
	"moira/internal/db"
	"moira/internal/mrerr"
)

var zephyrTables = []string{
	db.TZephyr, db.TList, db.TMembers, db.TUsers, db.TStrings,
}

// ZephyrACL generates the access control list files for controlled
// zephyr classes (section 5.8.2, service ZEPHYR): for each existing ACE
// (even if it is empty) the membership is output, one entry per line,
// with recursive lists expanded. All zephyr servers receive the same tar.
func ZephyrACL(d *db.DB, since int64) (*Result, error) {
	d.LockShared()
	defer d.UnlockShared()
	if unchanged(d, since, zephyrTables...) {
		return nil, mrerr.MrNoChange
	}
	observedSeq := d.SeqOf(zephyrTables...)

	files := map[string][]byte{}

	renderACE := func(aceType string, aceID int) ([]byte, bool) {
		switch aceType {
		case db.ACEUser:
			if u, ok := d.UserByID(aceID); ok {
				return []byte(u.Login + "\n"), true
			}
			return []byte{}, true
		case db.ACEList:
			var b strings.Builder
			for _, m := range acl.ExpandMembers(d, aceID) {
				switch m.MemberType {
				case db.ACEUser:
					if u, ok := d.UserByID(m.MemberID); ok {
						b.WriteString(u.Login + "\n")
					}
				case db.ACEString:
					if s, ok := d.StringByID(m.MemberID); ok {
						b.WriteString(s.String + "\n")
					}
				}
			}
			return []byte(b.String()), true
		default:
			return nil, false // NONE: no ACL file, function unrestricted
		}
	}

	d.EachZephyr(func(z *db.ZephyrClass) bool {
		for _, fn := range []struct {
			suffix string
			typ    string
			id     int
		}{
			{"xmt", z.XmtType, z.XmtID},
			{"sub", z.SubType, z.SubID},
			{"iws", z.IwsType, z.IwsID},
			{"iui", z.IuiType, z.IuiID},
		} {
			if data, ok := renderACE(fn.typ, fn.id); ok {
				files[z.Class+"."+fn.suffix+".acl"] = data
			}
		}
		return true
	})

	tarball, err := bundle(files)
	if err != nil {
		return nil, err
	}
	r := &Result{Common: tarball, Files: files}
	r.Seq = observedSeq
	r.finish()
	return r, nil
}

// ZephyrInstallScript extracts every ACL file and reloads the server.
// The member list is derived from the bundle on the agent side via the
// registered reload command, so the script stays fixed.
func ZephyrInstallScript(target, destDir string, aclFiles []string) []string {
	var script []string
	for _, f := range aclFiles {
		script = append(script,
			"extract "+f+" "+destDir+"/"+f,
			"install "+destDir+"/"+f,
		)
	}
	script = append(script, "exec reload_zephyr_acls "+destDir)
	return script
}
