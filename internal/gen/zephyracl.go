package gen

import (
	"strings"

	"moira/internal/acl"
	"moira/internal/db"
	"moira/internal/extract"
)

var zephyrTables = []string{
	db.TZephyr, db.TList, db.TMembers, db.TUsers, db.TStrings,
}

// ZephyrACL generates the access control list files for controlled
// zephyr classes (section 5.8.2, service ZEPHYR): for each existing ACE
// (even if it is empty) the membership is output, one entry per line,
// with recursive lists expanded. All zephyr servers receive the same tar.
func ZephyrACL(d *db.DB) (*Result, error) {
	return runFull(d, zephyrBuild)
}

// ZephyrIncremental is the keyed form of the zephyr generator. The key
// space is simply "class:<class>": each class owns its (up to four)
// ACL files outright.
var ZephyrIncremental = &Incremental{
	TablesList: zephyrTables,
	BuildFn:    zephyrBuild,
	DepsFn:     zephyrDeps,
	EmitFn:     zephyrEmit,
}

// zephyrBuild enumerates the whole key domain and emits each key.
func zephyrBuild(d *db.DB) (*extract.Model, error) {
	m := extract.NewModel()
	d.EachZephyr(func(z *db.ZephyrClass) bool {
		zephyrEmit(d, m, "class:"+z.Class)
		return true
	})
	return m, nil
}

// zephyrEmit renders one class's ACL files into the model.
func zephyrEmit(d *db.DB, m *extract.Model, key string) {
	_, name, ok := strings.Cut(key, ":")
	if !ok {
		return
	}
	z, ok := d.ZephyrByClass(name)
	if !ok {
		return
	}
	renderACE := func(aceType string, aceID int) ([]byte, bool) {
		switch aceType {
		case db.ACEUser:
			if u, ok := d.UserByID(aceID); ok {
				return []byte(u.Login + "\n"), true
			}
			return []byte{}, true
		case db.ACEList:
			var b strings.Builder
			for _, mem := range acl.ExpandMembers(d, aceID) {
				switch mem.MemberType {
				case db.ACEUser:
					if u, ok := d.UserByID(mem.MemberID); ok {
						b.WriteString(u.Login + "\n")
					}
				case db.ACEString:
					if s, ok := d.StringByID(mem.MemberID); ok {
						b.WriteString(s.String + "\n")
					}
				}
			}
			return []byte(b.String()), true
		default:
			return nil, false // NONE: no ACL file, function unrestricted
		}
	}
	for _, fn := range []struct {
		suffix string
		typ    string
		id     int
	}{
		{"xmt", z.XmtType, z.XmtID},
		{"sub", z.SubType, z.SubID},
		{"iws", z.IwsType, z.IwsID},
		{"iui", z.IuiType, z.IuiID},
	} {
		if data, ok := renderACE(fn.typ, fn.id); ok {
			m.Emit(z.Class+"."+fn.suffix+".acl", "", key, data)
		}
	}
}

// zephyrClassKeysForLists returns the keys of classes whose ACEs name
// any list in the given id set.
func zephyrClassKeysForLists(d *db.DB, ids map[int]bool) []string {
	var keys []string
	d.EachZephyr(func(z *db.ZephyrClass) bool {
		for _, ace := range [][2]any{
			{z.XmtType, z.XmtID}, {z.SubType, z.SubID},
			{z.IwsType, z.IwsID}, {z.IuiType, z.IuiID},
		} {
			if ace[0].(string) == db.ACEList && ids[ace[1].(int)] {
				keys = append(keys, "class:"+z.Class)
				break
			}
		}
		return true
	})
	return keys
}

// zephyrDeps maps one journal record to the zephyr keys it dirties.
func zephyrDeps(d *db.DB, rec *db.JournalRecord) ([]string, bool) {
	a := rec.Args
	switch rec.Query {
	case "add_zephyr_class", "delete_zephyr_class":
		return []string{"class:" + a[0]}, true
	case "update_zephyr_class":
		return []string{"class:" + a[0], "class:" + a[1]}, true

	case "update_user":
		if a[0] == a[1] {
			// ACL files render logins only; nothing else matters.
			return nil, true
		}
		u, ok := d.UserByLogin(a[1])
		if !ok {
			return nil, true
		}
		lists := upLists(d, db.ACEUser, u.UsersID)
		keys := zephyrClassKeysForLists(d, lists)
		d.EachZephyr(func(z *db.ZephyrClass) bool {
			for _, ace := range [][2]any{
				{z.XmtType, z.XmtID}, {z.SubType, z.SubID},
				{z.IwsType, z.IwsID}, {z.IuiType, z.IuiID},
			} {
				if ace[0].(string) == db.ACEUser && ace[1].(int) == u.UsersID {
					keys = append(keys, "class:"+z.Class)
					break
				}
			}
			return true
		})
		return keys, true

	case "add_member_to_list", "delete_member_from_list":
		l, ok := d.ListByName(a[0])
		if !ok {
			return nil, true
		}
		ids := upLists(d, db.ACEList, l.ListID)
		ids[l.ListID] = true
		return zephyrClassKeysForLists(d, ids), true

	case "add_user", "register_user", "update_user_shell", "update_user_status",
		"update_finger_by_login", "set_pobox", "set_pobox_pop", "delete_pobox",
		"delete_user",
		"add_list", "update_list", "delete_list",
		"add_machine", "update_machine", "delete_machine",
		"add_cluster", "update_cluster", "delete_cluster",
		"add_machine_to_cluster", "delete_machine_from_cluster",
		"add_cluster_data", "delete_cluster_data",
		"add_filesys", "update_filesys", "delete_filesys",
		"add_nfsphys", "update_nfsphys", "delete_nfsphys", "adjust_nfsphys_allocation",
		"add_nfs_quota", "update_nfs_quota", "delete_nfs_quota",
		"add_service", "delete_service", "add_printcap", "delete_printcap",
		"add_alias", "delete_alias",
		"add_server_host_access", "update_server_host_access", "delete_server_host_access",
		"add_server_info", "update_server_info", "delete_server_info",
		"reset_server_error", "set_server_internal_flags",
		"add_server_host_info", "update_server_host_info", "delete_server_host_info",
		"reset_server_host_error", "set_server_host_override", "set_server_host_internal",
		"add_value", "update_value", "delete_value":
		return nil, true
	}
	return nil, false
}

// ZephyrInstallScript extracts every ACL file and reloads the server.
// The member list is derived from the bundle on the agent side via the
// registered reload command, so the script stays fixed.
func ZephyrInstallScript(target, destDir string, aclFiles []string) []string {
	var script []string
	for _, f := range aclFiles {
		script = append(script,
			"extract "+f+" "+destDir+"/"+f,
			"install "+destDir+"/"+f,
		)
	}
	script = append(script, "exec reload_zephyr_acls "+destDir)
	return script
}
