package gen

import (
	"fmt"
	"sort"
	"strings"

	"moira/internal/acl"
	"moira/internal/db"
	"moira/internal/mrerr"
)

var nfsTables = []string{
	db.TUsers, db.TList, db.TMembers, db.TFilesys, db.TNFSPhys,
	db.TNFSQuota, db.TServerHosts, db.TMachine,
}

// partFileBase converts a partition mount point to the base of its
// quotas/directories file names: "/u1" -> "u1".
func partFileBase(dir string) string {
	return strings.ReplaceAll(strings.TrimPrefix(dir, "/"), "/", "_")
}

// NFS generates, per NFS server host, the credentials file, and a
// .quotas and .dirs file for each exported partition on that host
// (section 5.8.2, service NFS). Which users appear in a host's
// credentials file is controlled by the value3 field of its serverhost
// row: a list name, or blank for all active users.
func NFS(d *db.DB, since int64) (*Result, error) {
	d.LockShared()
	defer d.UnlockShared()
	if unchanged(d, since, nfsTables...) {
		return nil, mrerr.MrNoChange
	}
	observedSeq := d.SeqOf(nfsTables...)

	groups := activeGroups(d)
	idx := userGroupIndex(d, groups)

	credLine := func(u *db.User) string {
		parts := []string{u.Login, fmt.Sprintf("%d", u.UID)}
		for _, g := range groupsOfUser(d, u, idx[u.UsersID], func(int, int) bool { return true }) {
			parts = append(parts, fmt.Sprintf("%d", g.GID))
		}
		return strings.Join(parts, ":") + "\n"
	}

	// The master credentials file contains all active users.
	var master strings.Builder
	d.EachUser(func(u *db.User) bool {
		if u.Status == db.UserActive {
			master.WriteString(credLine(u))
		}
		return true
	})

	r := &Result{PerHost: map[string][]byte{}, Files: map[string][]byte{}}

	for _, sh := range d.ServerHostsOf("NFS") {
		if !sh.Enable {
			continue
		}
		m, ok := d.MachineByID(sh.MachID)
		if !ok {
			continue
		}
		files := map[string][]byte{}

		// Credentials: the named list's membership, or the master file.
		if sh.Value3 != "" {
			var creds strings.Builder
			if l, ok := d.ListByName(sh.Value3); ok {
				for _, mem := range acl.ExpandMembers(d, l.ListID) {
					if mem.MemberType != db.ACEUser {
						continue
					}
					if u, ok := d.UserByID(mem.MemberID); ok && u.Status == db.UserActive {
						creds.WriteString(credLine(u))
					}
				}
			}
			files["credentials"] = []byte(creds.String())
		} else {
			files["credentials"] = []byte(master.String())
		}

		// Per-partition quotas and directories files.
		d.EachNFSPhys(func(p *db.NFSPhys) bool {
			if p.MachID != sh.MachID {
				return true
			}
			base := partFileBase(p.Dir)

			var quotas strings.Builder
			var qlines []string
			d.EachQuota(func(q *db.NFSQuota) bool {
				if q.PhysID != p.NFSPhysID {
					return true
				}
				if u, ok := d.UserByID(q.UsersID); ok {
					qlines = append(qlines, fmt.Sprintf("%d %d\n", u.UID, q.Quota))
				}
				return true
			})
			sort.Strings(qlines)
			for _, l := range qlines {
				quotas.WriteString(l)
			}

			var dirs strings.Builder
			d.EachFilesys(func(f *db.Filesys) bool {
				if f.Type != db.FSTypeNFS || f.PhysID != p.NFSPhysID || !f.CreateFlg {
					return true
				}
				ownerUID := 0
				if u, ok := d.UserByID(f.Owner); ok {
					ownerUID = u.UID
				}
				ownerGID := 0
				if l, ok := d.ListByID(f.Owners); ok {
					ownerGID = l.GID
				}
				fmt.Fprintf(&dirs, "%s %d %d %s\n", f.Name, ownerUID, ownerGID, f.LockerType)
				return true
			})

			files[base+".quotas"] = []byte(quotas.String())
			files[base+".dirs"] = []byte(dirs.String())
			return true
		})

		tarball, err := bundle(files)
		if err != nil {
			return nil, err
		}
		r.PerHost[m.Name] = tarball
		for name, data := range files {
			r.Files[m.Name+"/"+name] = data
		}
	}
	r.Seq = observedSeq
	r.finish()
	return r, nil
}

// NFSInstallScript is the instruction sequence run on an NFS server: it
// installs the credentials file and hands the quota/directory files to
// the host's installer command, which applies quotas and creates lockers
// (the "mkdir/chown/chgrp/chmod + setquota" shell script of the paper).
func NFSInstallScript(target, destDir string, partitions []string) []string {
	script := []string{
		"extract credentials " + destDir + "/credentials",
		"install " + destDir + "/credentials",
	}
	for _, p := range partitions {
		base := partFileBase(p)
		script = append(script,
			"extract "+base+".quotas "+destDir+"/"+base+".quotas",
			"install "+destDir+"/"+base+".quotas",
			"extract "+base+".dirs "+destDir+"/"+base+".dirs",
			"install "+destDir+"/"+base+".dirs",
			"exec install_nfs "+destDir+" "+p,
		)
	}
	return script
}
