package gen

import (
	"fmt"
	"strings"

	"moira/internal/acl"
	"moira/internal/db"
	"moira/internal/extract"
)

var nfsTables = []string{
	db.TUsers, db.TList, db.TMembers, db.TFilesys, db.TNFSPhys,
	db.TNFSQuota, db.TServerHosts, db.TMachine,
}

// partFileBase converts a partition mount point to the base of its
// quotas/directories file names: "/u1" -> "u1".
func partFileBase(dir string) string {
	return strings.ReplaceAll(strings.TrimPrefix(dir, "/"), "/", "_")
}

// NFS generates, per NFS server host, the credentials file, and a
// .quotas and .dirs file for each exported partition on that host
// (section 5.8.2, service NFS). Which users appear in a host's
// credentials file is controlled by the value3 field of its serverhost
// row: a list name, or blank for all active users.
func NFS(d *db.DB) (*Result, error) {
	return runFull(d, nfsBuild)
}

// NFSIncremental is the keyed form of the NFS generator. The key space:
// "host:<machine>" (file presence per enabled host), "user:<login>"
// (master credentials lines), "shcred:<machine>" (a scoped host's whole
// credentials), "quota:<label>:<login>", "filesys:<label>" (dirs lines).
var NFSIncremental = &Incremental{
	TablesList: nfsTables,
	BuildFn:    nfsBuild,
	DepsFn:     nfsDeps,
	EmitFn:     nfsEmit,
}

// nfsHostRow pairs an enabled NFS serverhost row with its machine.
type nfsHostRow struct {
	sh   *db.ServerHost
	mach *db.Machine
}

// nfsHostRows lists the enabled NFS server hosts whose machine exists.
func nfsHostRows(d *db.DB) []nfsHostRow {
	var out []nfsHostRow
	for _, sh := range d.ServerHostsOf("NFS") {
		if !sh.Enable {
			continue
		}
		if mach, ok := d.MachineByID(sh.MachID); ok {
			out = append(out, nfsHostRow{sh, mach})
		}
	}
	return out
}

// nfsHostByName finds an enabled NFS host row by canonical machine name.
func nfsHostByName(d *db.DB, name string) (nfsHostRow, bool) {
	for _, h := range nfsHostRows(d) {
		if h.mach.Name == name {
			return h, true
		}
	}
	return nfsHostRow{}, false
}

// nfsHostOfMach reports the enabled NFS host row for a machine id.
func nfsHostOfMach(d *db.DB, machID int) (nfsHostRow, bool) {
	for _, h := range nfsHostRows(d) {
		if h.mach.MachID == machID {
			return h, true
		}
	}
	return nfsHostRow{}, false
}

// nfsCredLine renders one credentials line: login:uid:gid:gid...
func nfsCredLine(d *db.DB, u *db.User) string {
	parts := []string{u.Login, fmt.Sprintf("%d", u.UID)}
	for _, g := range activeGroupsOfUser(d, u) {
		parts = append(parts, fmt.Sprintf("%d", g.GID))
	}
	return strings.Join(parts, ":") + "\n"
}

// nfsBuild enumerates the whole key domain and emits each key.
func nfsBuild(d *db.DB) (*extract.Model, error) {
	m := extract.NewModel()
	for _, h := range nfsHostRows(d) {
		nfsEmit(d, m, "host:"+h.mach.Name)
		if h.sh.Value3 != "" {
			nfsEmit(d, m, "shcred:"+h.mach.Name)
		}
	}
	d.EachUser(func(u *db.User) bool {
		nfsEmit(d, m, "user:"+u.Login)
		return true
	})
	d.EachQuota(func(q *db.NFSQuota) bool {
		u, uok := d.UserByID(q.UsersID)
		f, fok := d.FilesysByID(q.FilsysID)
		if uok && fok {
			nfsEmit(d, m, "quota:"+f.Label+":"+u.Login)
		}
		return true
	})
	seenLabel := map[string]bool{}
	d.EachFilesys(func(f *db.Filesys) bool {
		if !seenLabel[f.Label] {
			seenLabel[f.Label] = true
			nfsEmit(d, m, "filesys:"+f.Label)
		}
		return true
	})
	return m, nil
}

// nfsEmit renders one logical key into the model.
func nfsEmit(d *db.DB, m *extract.Model, key string) {
	kind, name, _ := strings.Cut(key, ":")
	switch kind {
	case "host":
		// Presence: the credentials file and both per-partition files
		// exist (possibly empty) on every enabled host.
		h, ok := nfsHostByName(d, name)
		if !ok {
			return
		}
		m.Emit(name+"/credentials", "", key, nil)
		d.EachNFSPhys(func(p *db.NFSPhys) bool {
			if p.MachID == h.sh.MachID {
				base := partFileBase(p.Dir)
				m.Emit(name+"/"+base+".quotas", "", key, nil)
				m.Emit(name+"/"+base+".dirs", "", key, nil)
			}
			return true
		})

	case "user":
		// One master-credentials line on every unscoped host.
		u, ok := d.UserByLogin(name)
		if !ok || u.Status != db.UserActive {
			return
		}
		line := []byte(nfsCredLine(d, u))
		sk := extract.K(u.UsersID)
		for _, h := range nfsHostRows(d) {
			if h.sh.Value3 == "" {
				m.Emit(h.mach.Name+"/credentials", sk, key, line)
			}
		}

	case "shcred":
		// A scoped host's whole credentials file: the named list's
		// active users, in expansion order.
		h, ok := nfsHostByName(d, name)
		if !ok || h.sh.Value3 == "" {
			return
		}
		l, ok := d.ListByName(h.sh.Value3)
		if !ok {
			return
		}
		i := 0
		for _, mem := range acl.ExpandMembers(d, l.ListID) {
			if mem.MemberType != db.ACEUser {
				continue
			}
			if u, ok := d.UserByID(mem.MemberID); ok && u.Status == db.UserActive {
				m.Emit(name+"/credentials", extract.K(i), key, []byte(nfsCredLine(d, u)))
				i++
			}
		}

	case "quota":
		label, login, ok := strings.Cut(name, ":")
		if !ok {
			return
		}
		u, uok := d.UserByLogin(login)
		if !uok {
			return
		}
		for _, f := range d.FilesysByLabel(label) {
			q, ok := d.QuotaOf(u.UsersID, f.FilsysID)
			if !ok {
				continue
			}
			p, ok := d.NFSPhysByID(q.PhysID)
			if !ok {
				continue
			}
			h, ok := nfsHostOfMach(d, p.MachID)
			if !ok {
				continue
			}
			line := fmt.Sprintf("%d %d\n", u.UID, q.Quota)
			// The file is plain-sorted lines; the line leads the sort
			// key, ids break ties between identical lines.
			m.Emit(h.mach.Name+"/"+partFileBase(p.Dir)+".quotas",
				extract.K(line, u.UsersID, f.FilsysID), key, []byte(line))
		}

	case "filesys":
		// Directory (locker) lines for auto-created NFS filesystems.
		for _, f := range d.FilesysByLabel(name) {
			if f.Type != db.FSTypeNFS || !f.CreateFlg {
				continue
			}
			p, ok := d.NFSPhysByID(f.PhysID)
			if !ok {
				continue
			}
			h, ok := nfsHostOfMach(d, p.MachID)
			if !ok {
				continue
			}
			ownerUID := 0
			if u, ok := d.UserByID(f.Owner); ok {
				ownerUID = u.UID
			}
			ownerGID := 0
			if l, ok := d.ListByID(f.Owners); ok {
				ownerGID = l.GID
			}
			line := fmt.Sprintf("%s %d %d %s\n", f.Name, ownerUID, ownerGID, f.LockerType)
			m.Emit(h.mach.Name+"/"+partFileBase(p.Dir)+".dirs",
				extract.K(f.FilsysID), key, []byte(line))
		}
	}
}

// nfsDeps maps one journal record to the NFS keys it dirties.
func nfsDeps(d *db.DB, rec *db.JournalRecord) ([]string, bool) {
	a := rec.Args
	switch rec.Query {
	case "add_user", "delete_user":
		return []string{"user:" + a[0]}, true
	case "update_user_status":
		// Credentials lines gate on active status, scoped ones too.
		return []string{"user:" + a[0], "shcred:*"}, true
	case "update_user":
		// Rename and uid change reach credentials lines, quota lines
		// (by uid), and owned-locker dirs lines.
		keys := []string{"user:" + a[0], "user:" + a[1], "shcred:*"}
		if u, ok := d.UserByLogin(a[1]); ok {
			for _, q := range d.QuotasOfUser(u.UsersID) {
				if f, ok := d.FilesysByID(q.FilsysID); ok {
					keys = append(keys, "quota:"+f.Label+":"+a[0], "quota:"+f.Label+":"+a[1])
				}
			}
			d.EachFilesys(func(f *db.Filesys) bool {
				if f.Owner == u.UsersID {
					keys = append(keys, "filesys:"+f.Label)
				}
				return true
			})
		}
		return keys, true
	case "register_user":
		// uid, login, fstype: renames the user, creates the home locker
		// and its default quota.
		return []string{"user:" + a[1], "quota:" + a[1] + ":" + a[1],
			"filesys:" + a[1], "shcred:*"}, true
	case "delete_user_by_uid":
		return nil, false
	case "update_user_shell", "update_finger_by_login",
		"set_pobox", "set_pobox_pop", "delete_pobox":
		return nil, true

	case "add_list":
		return nil, true
	case "update_list":
		// GID changes reach the credentials lines of users under it.
		keys := []string{"shcred:*"}
		if l, ok := d.ListByName(a[1]); ok {
			keys = append(keys, userKeysUnder(d, l.ListID)...)
			// Owner-group gid renders into dirs lines.
			d.EachFilesys(func(f *db.Filesys) bool {
				if f.Owners == l.ListID {
					keys = append(keys, "filesys:"+f.Label)
				}
				return true
			})
		}
		return keys, true
	case "delete_list":
		return []string{"shcred:*"}, true
	case "add_member_to_list", "delete_member_from_list":
		switch a[1] {
		case db.ACEUser:
			return []string{"user:" + a[2], "shcred:*"}, true
		case db.ACEList:
			if sub, ok := d.ListByName(a[2]); ok {
				return append(userKeysUnder(d, sub.ListID), "shcred:*"), true
			}
			return []string{"shcred:*"}, true
		default:
			return nil, true
		}

	case "add_filesys":
		return []string{"filesys:" + a[0]}, true
	case "update_filesys":
		keys := []string{"filesys:" + a[0], "filesys:" + a[1]}
		// Quota lines live in the partition the quota row names, but a
		// relabel changes their keys: enumerate rows under both labels.
		for _, label := range []string{a[0], a[1]} {
			for _, f := range d.FilesysByLabel(label) {
				d.EachQuota(func(q *db.NFSQuota) bool {
					if q.FilsysID == f.FilsysID {
						if u, ok := d.UserByID(q.UsersID); ok {
							keys = append(keys, "quota:"+a[0]+":"+u.Login,
								"quota:"+a[1]+":"+u.Login)
						}
					}
					return true
				})
			}
		}
		return keys, true
	case "delete_filesys":
		return []string{"filesys:" + a[0], "quota:" + a[0] + ":*"}, true

	case "add_nfs_quota", "update_nfs_quota", "delete_nfs_quota":
		return []string{"quota:" + a[0] + ":" + a[1]}, true

	case "add_nfsphys":
		return []string{"host:" + canonMachine(d, a[0])}, true
	case "update_nfsphys", "adjust_nfsphys_allocation":
		// Device/status/allocation fields are not rendered.
		return nil, true
	case "delete_nfsphys":
		return nil, false

	case "add_machine":
		return nil, true
	case "update_machine", "delete_machine":
		// Machine names are the per-host bundle paths.
		return nil, false

	case "add_server_host_info", "update_server_host_info", "delete_server_host_info",
		"reset_server_host_error", "set_server_host_override", "set_server_host_internal":
		if strings.ToUpper(a[0]) == "NFS" {
			// Host set or scoping changed: every key fans across hosts.
			return nil, false
		}
		return nil, true

	case "add_cluster", "update_cluster", "delete_cluster",
		"add_machine_to_cluster", "delete_machine_from_cluster",
		"add_cluster_data", "delete_cluster_data",
		"add_service", "delete_service", "add_printcap", "delete_printcap",
		"add_alias", "delete_alias",
		"add_zephyr_class", "update_zephyr_class", "delete_zephyr_class",
		"add_server_host_access", "update_server_host_access", "delete_server_host_access",
		"add_server_info", "update_server_info", "delete_server_info",
		"reset_server_error", "set_server_internal_flags",
		"add_value", "update_value", "delete_value":
		return nil, true
	}
	return nil, false
}

// NFSInstallScript is the instruction sequence run on an NFS server: it
// installs the credentials file and hands the quota/directory files to
// the host's installer command, which applies quotas and creates lockers
// (the "mkdir/chown/chgrp/chmod + setquota" shell script of the paper).
func NFSInstallScript(target, destDir string, partitions []string) []string {
	script := []string{
		"extract credentials " + destDir + "/credentials",
		"install " + destDir + "/credentials",
	}
	for _, p := range partitions {
		base := partFileBase(p)
		script = append(script,
			"extract "+base+".quotas "+destDir+"/"+base+".quotas",
			"install "+destDir+"/"+base+".quotas",
			"extract "+base+".dirs "+destDir+"/"+base+".dirs",
			"install "+destDir+"/"+base+".dirs",
			"exec install_nfs "+destDir+" "+p,
		)
	}
	return script
}
