package gen

import (
	"strings"

	"moira/internal/acl"
	"moira/internal/db"
)

var kloginTables = []string{
	db.THostAccess, db.TMachine, db.TUsers, db.TList, db.TMembers,
}

// KLogin generates per-host /.klogin files from the HOSTACCESS relation
// (section 7.0.7: "This will be used to load the /.klogin file on that
// machine"). Each named principal — the ACE user, or the recursive
// expansion of the ACE list — gets one `principal.@REALM` line granting
// root access on that host. The paper defines the relation and its
// queries but describes no generator; this completes the pipeline the
// schema was built for.
func KLogin(realm string) Func {
	return func(d *db.DB) (*Result, error) {
		d.LockShared()
		defer d.UnlockShared()

		r := &Result{PerHost: map[string][]byte{}, Files: map[string][]byte{}}
		d.EachHostAccess(func(h *db.HostAccess) bool {
			m, ok := d.MachineByID(h.MachID)
			if !ok {
				return true
			}
			var b strings.Builder
			line := func(login string) {
				b.WriteString(login + ".@" + realm + "\n")
			}
			switch h.ACLType {
			case db.ACEUser:
				if u, ok := d.UserByID(h.ACLID); ok && u.Status == db.UserActive {
					line(u.Login)
				}
			case db.ACEList:
				for _, mem := range acl.ExpandMembers(d, h.ACLID) {
					if mem.MemberType != db.ACEUser {
						continue
					}
					if u, ok := d.UserByID(mem.MemberID); ok && u.Status == db.UserActive {
						line(u.Login)
					}
				}
			}
			files := map[string][]byte{".klogin": []byte(b.String())}
			tarball, err := bundle(files)
			if err != nil {
				return true
			}
			r.PerHost[m.Name] = tarball
			r.Files[m.Name+"/.klogin"] = files[".klogin"]
			return true
		})
		r.finish()
		return r, nil
	}
}

// KLoginTables are the relations feeding the klogin extract, for the
// driver-side change check.
func KLoginTables() []string { return kloginTables }

// KLoginInstallScript installs the .klogin file at the host root.
func KLoginInstallScript(target, destDir string) []string {
	return []string{
		"extract .klogin " + destDir + "/.klogin",
		"install " + destDir + "/.klogin",
	}
}
