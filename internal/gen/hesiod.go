package gen

import (
	"fmt"
	"strings"

	"moira/internal/db"
	"moira/internal/extract"
)

// hesiodTables are the relations feeding the hesiod extract.
var hesiodTables = []string{
	db.TUsers, db.TList, db.TMembers, db.TMachine, db.TCluster, db.TMCMap,
	db.TSvc, db.TFilesys, db.TPrintcap, db.TServices, db.TServerHosts,
	db.TAlias, db.TStrings,
}

// hesiodFiles are the eleven .db files every hesiod server receives.
var hesiodFiles = []string{
	"cluster.db", "filsys.db", "gid.db", "group.db", "grplist.db",
	"passwd.db", "pobox.db", "printcap.db", "service.db", "sloc.db", "uid.db",
}

// Hesiod generates the eleven hesiod .db files (section 5.8.2) as one
// tar bundle: every hesiod server receives the same set.
func Hesiod(d *db.DB) (*Result, error) {
	return runFull(d, hesiodBuild)
}

// HesiodIncremental is the keyed form of the hesiod generator. The key
// space: "static" (file presence), "user:<login>", "list:<name>",
// "filesys:<label>", "fsalias", "cluster:<name>", "machine:<name>",
// "printer:<name>", "service:<name>", "svcalias", "sloc:<svc>:<host>".
var HesiodIncremental = &Incremental{
	TablesList: hesiodTables,
	BuildFn:    hesiodBuild,
	DepsFn:     hesiodDeps,
	EmitFn:     hesiodEmit,
}

// hesiodBuild enumerates the whole key domain and emits each key.
func hesiodBuild(d *db.DB) (*extract.Model, error) {
	m := extract.NewModel()
	hesiodEmit(d, m, "static")
	d.EachUser(func(u *db.User) bool {
		hesiodEmit(d, m, "user:"+u.Login)
		return true
	})
	d.EachList(func(l *db.List) bool {
		if l.Active && l.Group {
			hesiodEmit(d, m, "list:"+l.Name)
		}
		return true
	})
	seenLabel := map[string]bool{}
	d.EachFilesys(func(f *db.Filesys) bool {
		if !seenLabel[f.Label] {
			seenLabel[f.Label] = true
			hesiodEmit(d, m, "filesys:"+f.Label)
		}
		return true
	})
	hesiodEmit(d, m, "fsalias")
	d.EachCluster(func(c *db.Cluster) bool {
		hesiodEmit(d, m, "cluster:"+c.Name)
		return true
	})
	d.EachMachine(func(mach *db.Machine) bool {
		hesiodEmit(d, m, "machine:"+mach.Name)
		return true
	})
	d.EachPrintcap(func(p *db.Printcap) bool {
		hesiodEmit(d, m, "printer:"+p.Name)
		return true
	})
	d.EachService(func(s *db.Service) bool {
		hesiodEmit(d, m, "service:"+s.Name)
		return true
	})
	hesiodEmit(d, m, "svcalias")
	d.EachServerHost(func(sh *db.ServerHost) bool {
		if mach, ok := d.MachineByID(sh.MachID); ok {
			hesiodEmit(d, m, "sloc:"+sh.Service+":"+mach.Name)
		}
		return true
	})
	return m, nil
}

// hesiodEmit renders one logical key into the model. Keys naming
// entities that no longer exist (or no longer qualify) emit nothing,
// which after DeleteKey is exactly the deletion of their lines.
func hesiodEmit(d *db.DB, m *extract.Model, key string) {
	kind, name, _ := strings.Cut(key, ":")
	switch kind {
	case "static":
		for _, f := range hesiodFiles {
			m.Emit(f, "", key, nil)
		}

	case "user":
		u, ok := d.UserByLogin(name)
		if !ok || u.Status != db.UserActive {
			return
		}
		sk := extract.K(u.UsersID)
		var b strings.Builder
		hsLine(&b, u.Login+".passwd", fmt.Sprintf("%s:*:%d:101:%s,,,,:/mit/%s:%s",
			u.Login, u.UID, u.Fullname, u.Login, u.Shell))
		m.Emit("passwd.db", sk, key, []byte(b.String()))
		b.Reset()
		cnameLine(&b, fmt.Sprintf("%d.uid", u.UID), u.Login+".passwd")
		m.Emit("uid.db", sk, key, []byte(b.String()))
		if u.PoType == db.PoboxPOP {
			if mach, ok := d.MachineByID(u.PopID); ok {
				b.Reset()
				hsLine(&b, u.Login+".pobox", fmt.Sprintf("POP %s %s", mach.Name, u.Login))
				m.Emit("pobox.db", sk, key, []byte(b.String()))
			}
		}
		if gs := activeGroupsOfUser(d, u); len(gs) > 0 {
			parts := make([]string, 0, len(gs))
			for _, g := range gs {
				parts = append(parts, fmt.Sprintf("%s:%d", g.Name, g.GID))
			}
			b.Reset()
			hsLine(&b, u.Login+".grplist", strings.Join(parts, ":"))
			m.Emit("grplist.db", sk, key, []byte(b.String()))
		}

	case "list":
		g, ok := d.ListByName(name)
		if !ok || !g.Active || !g.Group {
			return
		}
		sk := extract.K(g.GID, g.ListID)
		var b strings.Builder
		hsLine(&b, g.Name+".group", fmt.Sprintf("%s:*:%d:", g.Name, g.GID))
		m.Emit("group.db", sk, key, []byte(b.String()))
		b.Reset()
		cnameLine(&b, fmt.Sprintf("%d.gid", g.GID), g.Name+".group")
		m.Emit("gid.db", sk, key, []byte(b.String()))

	case "filesys":
		for _, f := range d.FilesysByLabel(name) {
			mach, ok := d.MachineByID(f.MachID)
			if !ok {
				continue
			}
			var b strings.Builder
			hsLine(&b, f.Label+".filsys", fmt.Sprintf("%s %s %s %s %s",
				f.Type, f.Name, shortHost(mach.Name), f.Access, f.Mount))
			m.Emit("filsys.db", extract.K(0, f.FilsysID), key, []byte(b.String()))
		}

	case "fsalias":
		// Filesystem aliases resolve to the real filesystem's data; the
		// whole alias section is one key, ordered after the real entries.
		i := 0
		for _, a := range d.Aliases() {
			if a.Type != "FILESYS" {
				continue
			}
			for _, f := range d.FilesysByLabel(a.Trans) {
				mach, ok := d.MachineByID(f.MachID)
				if !ok {
					continue
				}
				var b strings.Builder
				hsLine(&b, a.Name+".filsys", fmt.Sprintf("%s %s %s %s %s",
					f.Type, f.Name, shortHost(mach.Name), f.Access, f.Mount))
				m.Emit("filsys.db", extract.K(1, i), key, []byte(b.String()))
				i++
			}
		}

	case "cluster":
		c, ok := d.ClusterByName(name)
		if !ok {
			return
		}
		i := 0
		for _, s := range d.SvcRows() {
			if s.CluID == c.CluID {
				var b strings.Builder
				hsLine(&b, c.Name+".cluster", s.ServLabel+" "+s.ServCluster)
				m.Emit("cluster.db", extract.K(0, c.CluID, i), key, []byte(b.String()))
				i++
			}
		}

	case "machine":
		// Machine CNAMEs into cluster.db; machines in several clusters
		// get a union pseudo-cluster block (section 5.8.2).
		mach, ok := d.MachineByName(name)
		if !ok {
			return
		}
		clusters := d.ClustersOfMachine(mach.MachID)
		var b strings.Builder
		switch len(clusters) {
		case 0:
		case 1:
			if c, ok := d.ClusterByID(clusters[0]); ok {
				cnameLine(&b, mach.Name+".cluster", c.Name+".cluster")
				m.Emit("cluster.db", extract.K(1, mach.MachID, 0), key, []byte(b.String()))
			}
		default:
			pseudo := shortHost(mach.Name) + "-pseudo"
			i := 0
			for _, cid := range clusters {
				if c, ok := d.ClusterByID(cid); ok {
					for _, s := range d.SvcRows() {
						if s.CluID == c.CluID {
							b.Reset()
							hsLine(&b, pseudo+".cluster", s.ServLabel+" "+s.ServCluster)
							m.Emit("cluster.db", extract.K(1, mach.MachID, i), key, []byte(b.String()))
							i++
						}
					}
				}
			}
			b.Reset()
			cnameLine(&b, mach.Name+".cluster", pseudo+".cluster")
			m.Emit("cluster.db", extract.K(1, mach.MachID, i), key, []byte(b.String()))
		}

	case "printer":
		p, ok := d.PrintcapByName(name)
		if !ok {
			return
		}
		mach, ok := d.MachineByID(p.MachID)
		if !ok {
			return
		}
		var b strings.Builder
		hsLine(&b, p.Name+".pcap", fmt.Sprintf("%s:rp=%s:rm=%s:sd=%s",
			p.Name, p.RP, mach.Name, p.Dir))
		m.Emit("printcap.db", extract.K(p.Name), key, []byte(b.String()))

	case "service":
		s, ok := d.ServiceByName(name)
		if !ok {
			return
		}
		var b strings.Builder
		hsLine(&b, s.Name+".service", fmt.Sprintf("%s %s %d",
			s.Name, strings.ToLower(s.Protocol), s.Port))
		m.Emit("service.db", extract.K(0, s.Name), key, []byte(b.String()))

	case "svcalias":
		i := 0
		for _, a := range d.Aliases() {
			if a.Type != "SERVICE" {
				continue
			}
			if s, ok := d.ServiceByName(a.Trans); ok {
				var b strings.Builder
				hsLine(&b, a.Name+".service", fmt.Sprintf("%s %s %d",
					s.Name, strings.ToLower(s.Protocol), s.Port))
				m.Emit("service.db", extract.K(1, i), key, []byte(b.String()))
				i++
			}
		}

	case "sloc":
		svc, machName, ok := cutSlocKey(name)
		if !ok {
			return
		}
		for _, sh := range d.ServerHostsOf(svc) {
			mach, ok := d.MachineByID(sh.MachID)
			if !ok || mach.Name != machName {
				continue
			}
			line := fmt.Sprintf("%s.sloc HS UNSPECA %s\n", sh.Service, mach.Name)
			// The file is plain-sorted lines; the line is its own sort key.
			m.Emit("sloc.db", line, key, []byte(line))
		}
	}
}

// cutSlocKey splits the "<svc>:<host>" remainder of a sloc key.
func cutSlocKey(rest string) (svc, host string, ok bool) {
	return strings.Cut(rest, ":")
}

// machineKey canonicalizes a machine-name query argument into the key
// form (machine names are stored upper case).
func machineKey(d *db.DB, arg string) string {
	if m, ok := d.MachineByName(arg); ok {
		return "machine:" + m.Name
	}
	return "machine:" + strings.ToUpper(arg)
}

// canonMachine resolves a machine-name argument to the stored canonical
// name.
func canonMachine(d *db.DB, arg string) string {
	if m, ok := d.MachineByName(arg); ok {
		return m.Name
	}
	return strings.ToUpper(arg)
}

// hesiodDeps maps one journal record to the hesiod keys it dirties.
func hesiodDeps(d *db.DB, rec *db.JournalRecord) ([]string, bool) {
	a := rec.Args
	switch rec.Query {
	case "add_user", "update_user_shell", "update_user_status",
		"update_finger_by_login", "set_pobox", "set_pobox_pop",
		"delete_pobox", "delete_user":
		return []string{"user:" + a[0]}, true
	case "update_user":
		return []string{"user:" + a[0], "user:" + a[1]}, true
	case "register_user":
		// uid, login, fstype: renames the user, creates the namesake
		// group and home filesystem.
		return []string{"user:" + a[1], "list:" + a[1], "filesys:" + a[1]}, true
	case "delete_user_by_uid":
		return nil, false

	case "add_list", "delete_list":
		return []string{"list:" + a[0]}, true
	case "update_list":
		// Flags/gid/name changes reach the grplist lines of every user
		// under the list.
		keys := []string{"list:" + a[0], "list:" + a[1]}
		if l, ok := d.ListByName(a[1]); ok {
			keys = append(keys, userKeysUnder(d, l.ListID)...)
		}
		return keys, true
	case "add_member_to_list", "delete_member_from_list":
		switch a[1] {
		case db.ACEUser:
			return []string{"user:" + a[2]}, true
		case db.ACEList:
			if sub, ok := d.ListByName(a[2]); ok {
				return userKeysUnder(d, sub.ListID), true
			}
			return nil, true
		default:
			return nil, true
		}

	case "add_machine":
		return []string{machineKey(d, a[0])}, true
	case "update_machine", "delete_machine", "update_cluster", "delete_cluster":
		// Renames/deletions fan out through filsys, cluster, printcap,
		// and sloc data; not worth chasing incrementally.
		return nil, false
	case "add_cluster":
		return []string{"cluster:" + a[0]}, true
	case "add_machine_to_cluster", "delete_machine_from_cluster":
		return []string{machineKey(d, a[0])}, true
	case "add_cluster_data", "delete_cluster_data":
		keys := []string{"cluster:" + a[0]}
		if c, ok := d.ClusterByName(a[0]); ok {
			// Pseudo-cluster blocks repeat the cluster's data lines.
			d.EachMachine(func(mach *db.Machine) bool {
				for _, cid := range d.ClustersOfMachine(mach.MachID) {
					if cid == c.CluID {
						keys = append(keys, "machine:"+mach.Name)
						break
					}
				}
				return true
			})
		}
		return keys, true

	case "add_filesys":
		return []string{"filesys:" + a[0], "fsalias"}, true
	case "update_filesys":
		return []string{"filesys:" + a[0], "filesys:" + a[1], "fsalias"}, true
	case "delete_filesys":
		return []string{"filesys:" + a[0], "fsalias"}, true

	case "add_service", "delete_service":
		return []string{"service:" + a[0], "svcalias"}, true
	case "add_printcap", "delete_printcap":
		return []string{"printer:" + a[0]}, true
	case "add_alias", "delete_alias":
		switch a[1] {
		case "FILESYS":
			return []string{"fsalias"}, true
		case "SERVICE":
			return []string{"svcalias"}, true
		default:
			return nil, true
		}

	case "add_server_host_info", "delete_server_host_info":
		return []string{"sloc:" + strings.ToUpper(a[0]) + ":" + canonMachine(d, a[1])}, true
	case "update_server_host_info", "reset_server_host_error",
		"set_server_host_override", "set_server_host_internal",
		"add_server_info", "update_server_info", "delete_server_info",
		"reset_server_error", "set_server_internal_flags":
		// Flag churn on existing rows; sloc only lists the tuples.
		return nil, true

	case "add_zephyr_class", "update_zephyr_class", "delete_zephyr_class",
		"add_server_host_access", "update_server_host_access", "delete_server_host_access",
		"add_nfsphys", "update_nfsphys", "delete_nfsphys", "adjust_nfsphys_allocation",
		"add_nfs_quota", "update_nfs_quota", "delete_nfs_quota",
		"add_value", "update_value", "delete_value":
		return nil, true
	}
	return nil, false
}

// HesiodInstallScript is the instruction sequence the DCM runs on a
// hesiod server after delivering the bundle: extract and atomically
// install each file, then restart the server so it reloads into memory.
func HesiodInstallScript(target, destDir string) []string {
	var script []string
	for _, f := range hesiodFiles {
		script = append(script,
			"extract "+f+" "+destDir+"/"+f,
			"install "+destDir+"/"+f,
		)
	}
	script = append(script, "exec restart_hesiod "+destDir)
	return script
}
