package gen

import (
	"fmt"
	"sort"
	"strings"

	"moira/internal/acl"
	"moira/internal/db"
	"moira/internal/mrerr"
)

// hesiodTables are the relations feeding the hesiod extract.
var hesiodTables = []string{
	db.TUsers, db.TList, db.TMembers, db.TMachine, db.TCluster, db.TMCMap,
	db.TSvc, db.TFilesys, db.TPrintcap, db.TServices, db.TServerHosts,
	db.TAlias, db.TStrings,
}

// userGroupIndex expands every active group once and returns, for each
// user id, the active groups containing it (directly or via sublists).
func userGroupIndex(d *db.DB, groups []*db.List) map[int][]*db.List {
	idx := make(map[int][]*db.List)
	for _, g := range groups {
		for _, m := range acl.ExpandMembers(d, g.ListID) {
			if m.MemberType == db.ACEUser {
				idx[m.MemberID] = append(idx[m.MemberID], g)
			}
		}
	}
	return idx
}

// Hesiod generates the eleven hesiod .db files (section 5.8.2) as one
// tar bundle: every hesiod server receives the same set.
func Hesiod(d *db.DB, since int64) (*Result, error) {
	d.LockShared()
	defer d.UnlockShared()
	if unchanged(d, since, hesiodTables...) {
		return nil, mrerr.MrNoChange
	}
	observedSeq := d.SeqOf(hesiodTables...)

	var passwd, uid, group, gid, grplist, pobox, filsys, cluster, pcap, service, sloc strings.Builder

	groups := activeGroups(d)
	idx := userGroupIndex(d, groups)

	// passwd.db, uid.db, pobox.db, grplist.db walk the active users once.
	d.EachUser(func(u *db.User) bool {
		if u.Status != db.UserActive {
			return true
		}
		entry := fmt.Sprintf("%s:*:%d:101:%s,,,,:/mit/%s:%s",
			u.Login, u.UID, u.Fullname, u.Login, u.Shell)
		hsLine(&passwd, u.Login+".passwd", entry)
		cnameLine(&uid, fmt.Sprintf("%d.uid", u.UID), u.Login+".passwd")

		if u.PoType == db.PoboxPOP {
			if m, ok := d.MachineByID(u.PopID); ok {
				hsLine(&pobox, u.Login+".pobox", fmt.Sprintf("POP %s %s", m.Name, u.Login))
			}
		}

		if gs := idx[u.UsersID]; len(gs) > 0 {
			// Namesake group first, then the rest in GID order.
			ordered := groupsOfUser(d, u, gs, func(listID, usersID int) bool { return true })
			parts := make([]string, 0, len(ordered))
			for _, g := range ordered {
				parts = append(parts, fmt.Sprintf("%s:%d", g.Name, g.GID))
			}
			hsLine(&grplist, u.Login+".grplist", strings.Join(parts, ":"))
		}
		return true
	})

	// group.db and gid.db from the active groups.
	for _, g := range groups {
		hsLine(&group, g.Name+".group", fmt.Sprintf("%s:*:%d:", g.Name, g.GID))
		cnameLine(&gid, fmt.Sprintf("%d.gid", g.GID), g.Name+".group")
	}

	// filsys.db.
	d.EachFilesys(func(f *db.Filesys) bool {
		m, ok := d.MachineByID(f.MachID)
		if !ok {
			return true
		}
		hsLine(&filsys, f.Label+".filsys", fmt.Sprintf("%s %s %s %s %s",
			f.Type, f.Name, shortHost(m.Name), f.Access, f.Mount))
		return true
	})
	// Filesystem aliases resolve to the real filesystem's data.
	for _, a := range d.Aliases() {
		if a.Type != "FILESYS" {
			continue
		}
		for _, f := range d.FilesysByLabel(a.Trans) {
			m, ok := d.MachineByID(f.MachID)
			if !ok {
				continue
			}
			hsLine(&filsys, a.Name+".filsys", fmt.Sprintf("%s %s %s %s %s",
				f.Type, f.Name, shortHost(m.Name), f.Access, f.Mount))
		}
	}

	// cluster.db: per-cluster data lines, then machine CNAMEs. Machines
	// in several clusters get a union pseudo-cluster (section 5.8.2).
	d.EachCluster(func(c *db.Cluster) bool {
		for _, s := range d.SvcRows() {
			if s.CluID == c.CluID {
				hsLine(&cluster, c.Name+".cluster", s.ServLabel+" "+s.ServCluster)
			}
		}
		return true
	})
	d.EachMachine(func(m *db.Machine) bool {
		clusters := d.ClustersOfMachine(m.MachID)
		switch len(clusters) {
		case 0:
		case 1:
			if c, ok := d.ClusterByID(clusters[0]); ok {
				cnameLine(&cluster, m.Name+".cluster", c.Name+".cluster")
			}
		default:
			pseudo := shortHost(m.Name) + "-pseudo"
			for _, cid := range clusters {
				if c, ok := d.ClusterByID(cid); ok {
					for _, s := range d.SvcRows() {
						if s.CluID == c.CluID {
							hsLine(&cluster, pseudo+".cluster", s.ServLabel+" "+s.ServCluster)
						}
					}
				}
			}
			cnameLine(&cluster, m.Name+".cluster", pseudo+".cluster")
		}
		return true
	})

	// printcap.db.
	d.EachPrintcap(func(p *db.Printcap) bool {
		m, ok := d.MachineByID(p.MachID)
		if !ok {
			return true
		}
		hsLine(&pcap, p.Name+".pcap", fmt.Sprintf("%s:rp=%s:rm=%s:sd=%s",
			p.Name, p.RP, m.Name, p.Dir))
		return true
	})

	// service.db, including SERVICE aliases.
	d.EachService(func(s *db.Service) bool {
		hsLine(&service, s.Name+".service", fmt.Sprintf("%s %s %d",
			s.Name, strings.ToLower(s.Protocol), s.Port))
		return true
	})
	for _, a := range d.Aliases() {
		if a.Type != "SERVICE" {
			continue
		}
		if s, ok := d.ServiceByName(a.Trans); ok {
			hsLine(&service, a.Name+".service", fmt.Sprintf("%s %s %d",
				s.Name, strings.ToLower(s.Protocol), s.Port))
		}
	}

	// sloc.db: DCM service/host tuples.
	var slocLines []string
	d.EachServerHost(func(sh *db.ServerHost) bool {
		if m, ok := d.MachineByID(sh.MachID); ok {
			slocLines = append(slocLines, fmt.Sprintf("%s.sloc HS UNSPECA %s\n", sh.Service, m.Name))
		}
		return true
	})
	sort.Strings(slocLines)
	for _, l := range slocLines {
		sloc.WriteString(l)
	}

	files := map[string][]byte{
		"cluster.db":  []byte(cluster.String()),
		"filsys.db":   []byte(filsys.String()),
		"gid.db":      []byte(gid.String()),
		"group.db":    []byte(group.String()),
		"grplist.db":  []byte(grplist.String()),
		"passwd.db":   []byte(passwd.String()),
		"pobox.db":    []byte(pobox.String()),
		"printcap.db": []byte(pcap.String()),
		"service.db":  []byte(service.String()),
		"sloc.db":     []byte(sloc.String()),
		"uid.db":      []byte(uid.String()),
	}
	tarball, err := bundle(files)
	if err != nil {
		return nil, err
	}
	r := &Result{Common: tarball, Files: files}
	r.Seq = observedSeq
	r.finish()
	return r, nil
}

// HesiodInstallScript is the instruction sequence the DCM runs on a
// hesiod server after delivering the bundle: extract and atomically
// install each file, then restart the server so it reloads into memory.
func HesiodInstallScript(target, destDir string) []string {
	var script []string
	for _, f := range []string{
		"cluster.db", "filsys.db", "gid.db", "group.db", "grplist.db",
		"passwd.db", "pobox.db", "printcap.db", "service.db", "sloc.db", "uid.db",
	} {
		script = append(script,
			"extract "+f+" "+destDir+"/"+f,
			"install "+destDir+"/"+f,
		)
	}
	script = append(script, "exec restart_hesiod "+destDir)
	return script
}
