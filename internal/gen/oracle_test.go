package gen

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"testing"

	"moira/internal/db"
	"moira/internal/extract"
	"moira/internal/queries"
)

// TestIncrementalEquivalenceOracle is the equivalence oracle for the
// incremental extract path: across randomized interleavings of database
// mutations and per-service planner passes — services deliberately skip
// rounds so deltas batch up — every incremental model must render
// byte-identical to a from-scratch Build of the same database state.
// The mutation vocabulary includes non-incremental queries
// (delete_user_by_uid) so the full-regeneration fallback path is
// exercised and verified too.
func TestIncrementalEquivalenceOracle(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runOracle(t, seed)
		})
	}
}

func runOracle(t *testing.T, seed int64) {
	d, _ := popDB(t, 120)
	jw, err := db.OpenJournalWriter(t.TempDir(), db.JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { jw.Close() })
	d.SetJournal(jw)

	planner := extract.NewPlanner(d, jw, 0)
	priv := &queries.Context{DB: d, Privileged: true, App: "oracle"}
	rng := rand.New(rand.NewSource(seed))

	services := make([]string, 0, len(Incrementals))
	for name := range Incrementals {
		services = append(services, name)
	}
	sort.Strings(services)

	var deltas, fulls, fallbacks int
	pass := func(svc string) *extract.Model {
		t.Helper()
		g := Incrementals[svc]
		m, plan, err := planner.Run(svc, g)
		if err != nil {
			t.Fatalf("%s: planner.Run: %v", svc, err)
		}
		d.LockExclusive()
		planner.Commit(svc, plan)
		d.UnlockExclusive()
		switch plan.Mode {
		case extract.ModeDelta:
			deltas++
		case extract.ModeFull:
			fulls++
			if plan.Reason != "cold start" {
				fallbacks++
			}
		}
		return m
	}

	verify := func(round int) {
		t.Helper()
		for _, svc := range services {
			got := pass(svc)
			d.LockShared()
			want, err := Incrementals[svc].Build(d)
			d.UnlockShared()
			if err != nil {
				t.Fatalf("%s: oracle build: %v", svc, err)
			}
			gotFiles, wantFiles := got.Files(), want.Files()
			if len(gotFiles) != len(wantFiles) {
				t.Fatalf("round %d %s: %d files, oracle has %d",
					round, svc, len(gotFiles), len(wantFiles))
			}
			for name, wantData := range wantFiles {
				gotData, ok := gotFiles[name]
				if !ok {
					t.Fatalf("round %d %s: file %s missing from incremental model", round, svc, name)
				}
				if !bytes.Equal(gotData, wantData) {
					t.Fatalf("round %d %s: %s diverged (%d vs %d bytes)\nincremental:\n%.400s\noracle:\n%.400s",
						round, svc, name, len(gotData), len(wantData), gotData, wantData)
				}
			}
		}
	}

	run := func(name string, args ...string) {
		t.Helper()
		if err := queries.Execute(priv, name, args, func([]string) error { return nil }); err != nil {
			t.Fatalf("%s %v: %v", name, args, err)
		}
	}

	// Entities the mutator owns. The workload's own population is the
	// static backdrop; the churn happens on these.
	var logins []string
	var lists []string
	var classes []string
	nextID := 0

	mutations := []func(){
		func() { // add a user
			nextID++
			login := fmt.Sprintf("ouser%04d", nextID)
			run("add_user", login, "-1", "/bin/csh", "Oracle", "User", "", "1", "", "STAFF")
			logins = append(logins, login)
		},
		func() { // change a shell
			if len(logins) == 0 {
				return
			}
			run("update_user_shell", logins[rng.Intn(len(logins))], "/bin/sh"+strconv.Itoa(rng.Intn(5)))
		},
		func() { // flip a status (deactivated users drop out of extracts)
			if len(logins) == 0 {
				return
			}
			run("update_user_status", logins[rng.Intn(len(logins))], strconv.Itoa(rng.Intn(2)))
		},
		func() { // add a list
			nextID++
			name := fmt.Sprintf("olist%04d", nextID)
			run("add_list", name, "1", "1", "0", "1", "0", "0", "USER", "root", "Oracle List")
			lists = append(lists, name)
		},
		func() { // membership churn
			if len(lists) == 0 || len(logins) == 0 {
				return
			}
			list := lists[rng.Intn(len(lists))]
			login := logins[rng.Intn(len(logins))]
			if err := queries.Execute(priv, "add_member_to_list",
				[]string{list, "USER", login}, func([]string) error { return nil }); err != nil {
				// Already a member: drop them instead.
				run("delete_member_from_list", list, "USER", login)
			}
		},
		func() { // zephyr class churn
			if len(classes) < 3 {
				nextID++
				name := fmt.Sprintf("OCLASS%04d", nextID)
				run("add_zephyr_class", name, "LIST", queries.AdminList,
					"NONE", "NONE", "NONE", "NONE", "NONE", "NONE")
				classes = append(classes, name)
				return
			}
			run("delete_zephyr_class", classes[0])
			classes = classes[1:]
		},
		func() { // the non-incremental fallback: delete a user by uid
			if len(logins) == 0 {
				return
			}
			login := logins[len(logins)-1]
			d.LockShared()
			u, ok := d.UserByLogin(login)
			d.UnlockShared()
			if !ok {
				return
			}
			if err := queries.Execute(priv, "delete_user_by_uid",
				[]string{strconv.Itoa(u.UID)}, func([]string) error { return nil }); err != nil {
				return // still referenced somewhere; fine
			}
			logins = logins[:len(logins)-1]
		},
	}

	verify(0) // cold-start builds for every service

	for round := 1; round <= 25; round++ {
		for n := 1 + rng.Intn(3); n > 0; n-- {
			mutations[rng.Intn(len(mutations))]()
		}
		// An interleaved subset of services passes this round; the rest
		// accumulate backlog and consume several rounds' records at once.
		for _, svc := range services {
			if rng.Intn(2) == 0 {
				pass(svc)
			}
		}
		if round%5 == 0 {
			verify(round)
		}
	}
	verify(26)

	if deltas == 0 {
		t.Error("oracle never took a delta pass; the interleaving is broken")
	}
	if fallbacks == 0 {
		t.Error("oracle never hit the non-incremental fallback")
	}
	t.Logf("seed done: %d deltas, %d fulls (%d fallbacks)", deltas, fulls, fallbacks)
}
