package gen

import (
	"strings"
	"testing"
	"time"

	"moira/internal/clock"
	"moira/internal/db"
	"moira/internal/extract"
	"moira/internal/queries"
	"moira/internal/update"
	"moira/internal/workload"
)

func popDB(t *testing.T, users int) (*db.DB, *clock.Fake) {
	t.Helper()
	clk := clock.NewFake(time.Unix(600000000, 0))
	d := queries.NewBootstrappedDB(clk)
	if _, _, err := workload.Populate(d, workload.Scaled(users)); err != nil {
		t.Fatal(err)
	}
	return d, clk
}

func TestHesiodGeneratesElevenFiles(t *testing.T) {
	d, _ := popDB(t, 100)
	res, err := Hesiod(d)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumFiles != 11 {
		t.Errorf("NumFiles = %d, want 11", res.NumFiles)
	}
	names, err := update.ListTar(res.Common)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"cluster.db": true, "filsys.db": true, "gid.db": true, "group.db": true,
		"grplist.db": true, "passwd.db": true, "pobox.db": true,
		"printcap.db": true, "service.db": true, "sloc.db": true, "uid.db": true,
	}
	for _, n := range names {
		delete(want, n)
	}
	if len(want) != 0 {
		t.Errorf("missing files: %v", want)
	}
}

func TestHesiodFileFormats(t *testing.T) {
	d, _ := popDB(t, 60)
	res, err := Hesiod(d)
	if err != nil {
		t.Fatal(err)
	}
	passwd := string(res.Files["passwd.db"])
	if !strings.Contains(passwd, ".passwd HS UNSPECA \"") {
		t.Errorf("passwd.db format:\n%s", firstLines(passwd, 2))
	}
	// Every active user appears once in passwd.db and once in uid.db.
	d.LockShared()
	active := 0
	d.EachUser(func(u *db.User) bool {
		if u.Status == db.UserActive {
			active++
		}
		return true
	})
	d.UnlockShared()
	if got := strings.Count(passwd, "\n"); got != active {
		t.Errorf("passwd.db lines = %d, active users = %d", got, active)
	}
	uidDB := string(res.Files["uid.db"])
	if strings.Count(uidDB, " HS CNAME ") != active {
		t.Errorf("uid.db CNAME count = %d, want %d", strings.Count(uidDB, " HS CNAME "), active)
	}
	// pobox entries name POP machines.
	if !strings.Contains(string(res.Files["pobox.db"]), "\"POP ATHENA-PO-") {
		t.Errorf("pobox.db format:\n%s", firstLines(string(res.Files["pobox.db"]), 2))
	}
	// filsys entries use the short lowercase server name.
	if !strings.Contains(string(res.Files["filsys.db"]), " fs-") {
		t.Errorf("filsys.db format:\n%s", firstLines(string(res.Files["filsys.db"]), 2))
	}
	// sloc holds service/host tuples without quotes.
	sloc := string(res.Files["sloc.db"])
	if !strings.Contains(sloc, "HESIOD.sloc HS UNSPECA SUOMI.MIT.EDU") {
		t.Errorf("sloc.db:\n%s", firstLines(sloc, 8))
	}
	// grplist puts the namesake group first.
	grplist := string(res.Files["grplist.db"])
	line := strings.SplitN(grplist, "\n", 2)[0]
	// form: <login>.grplist HS UNSPECA "<login>:<gid>..."
	loginPart := strings.SplitN(line, ".", 2)[0]
	if !strings.Contains(line, "\""+loginPart+":") {
		t.Errorf("grplist first line does not start with namesake group: %s", line)
	}
}

func TestHesiodPseudoCluster(t *testing.T) {
	d, _ := popDB(t, 2000)
	res, err := Hesiod(d)
	if err != nil {
		t.Fatal(err)
	}
	cluster := string(res.Files["cluster.db"])
	// The workload puts every 97th workstation in two clusters.
	if !strings.Contains(cluster, "-pseudo.cluster") {
		t.Errorf("no pseudo-cluster generated:\n%s", firstLines(cluster, 5))
	}
	if !strings.Contains(cluster, "W0001.MIT.EDU.cluster HS CNAME w0001-pseudo.cluster") {
		// W0001 (index 0) is the first dual-cluster machine.
		t.Errorf("dual-homed machine not CNAMEd to pseudo-cluster:\n%s", grepLines(cluster, "W0001"))
	}
}

// TestNoChangeDetection exercises the driver-side change check that
// replaced the generators' internal short-circuit: a journal-less
// planner compares the table sequence against the persisted value and
// only runs the generator when it advanced.
func TestNoChangeDetection(t *testing.T) {
	d, clk := popDB(t, 50)
	p := extract.NewPlanner(d, nil, 0)
	run := func(service string, g extract.Generator) (*Result, *extract.Plan) {
		t.Helper()
		model, plan, err := p.Run(service, g)
		if err != nil {
			t.Fatal(err)
		}
		if plan.Mode == extract.ModeNoChange {
			return nil, plan
		}
		res, err := FromModel(model)
		if err != nil {
			t.Fatal(err)
		}
		d.LockExclusive()
		p.Commit(service, plan)
		d.UnlockExclusive()
		return res, plan
	}

	res, plan := run("HESIOD", HesiodIncremental)
	if res == nil || plan.Mode != extract.ModeFull {
		t.Fatalf("first pass: res=%v mode=%v", res != nil, plan.Mode)
	}
	clk.Advance(time.Hour)

	// Nothing changed: a no-change plan, zero generator work.
	if res, plan := run("HESIOD", HesiodIncremental); res != nil {
		t.Errorf("unchanged pass regenerated (mode=%v)", plan.Mode)
	}
	// A user modification invalidates it.
	priv := &queries.Context{DB: d, Privileged: true, App: "test"}
	if err := queries.Execute(priv, "add_user",
		[]string{"newbie", "-1", "/bin/csh", "New", "Bie", "", "1", "", "STAFF"},
		func([]string) error { return nil }); err != nil {
		t.Fatal(err)
	}
	res2, _ := run("HESIOD", HesiodIncremental)
	if res2 == nil {
		t.Fatal("pass after change did not regenerate")
	}
	if !strings.Contains(string(res2.Files["passwd.db"]), "newbie.passwd") {
		t.Error("new user missing from regenerated passwd.db")
	}
	// All four standard keyed generators implement the same contract.
	for name, inc := range Incrementals {
		if res, _ := run(name, inc); res == nil && name != "HESIOD" {
			t.Errorf("%s first pass did not generate", name)
		}
		if res, plan := run(name, inc); res != nil {
			t.Errorf("%s unchanged pass regenerated (mode=%v)", name, plan.Mode)
		}
	}
}

func TestNFSPerHostBundles(t *testing.T) {
	d, _ := popDB(t, 200)
	res, err := NFS(d)
	if err != nil {
		t.Fatal(err)
	}
	if res.Common != nil {
		t.Error("NFS should be per-host")
	}
	if len(res.PerHost) == 0 {
		t.Fatal("no per-host bundles")
	}
	for host, data := range res.PerHost {
		names, err := update.ListTar(data)
		if err != nil {
			t.Fatal(err)
		}
		hasCreds, hasQuotas, hasDirs := false, false, false
		for _, n := range names {
			switch {
			case n == "credentials":
				hasCreds = true
			case strings.HasSuffix(n, ".quotas"):
				hasQuotas = true
			case strings.HasSuffix(n, ".dirs"):
				hasDirs = true
			}
		}
		if !hasCreds || !hasQuotas || !hasDirs {
			t.Errorf("%s bundle = %v", host, names)
		}
	}
	// The master credentials file covers all active users.
	var anyCreds []byte
	for host := range res.PerHost {
		anyCreds = res.Files[host+"/credentials"]
		break
	}
	d.LockShared()
	active := 0
	d.EachUser(func(u *db.User) bool {
		if u.Status == db.UserActive {
			active++
		}
		return true
	})
	d.UnlockShared()
	if got := strings.Count(string(anyCreds), "\n"); got != active {
		t.Errorf("credentials lines = %d, active = %d", got, active)
	}
}

func TestNFSCredentialsRestrictedByValue3(t *testing.T) {
	d, clk := popDB(t, 50)
	_ = clk
	// Restrict one NFS host's credentials to the dbadmin list.
	d.LockExclusive()
	hosts := d.ServerHostsOf("NFS")
	hosts[0].Value3 = "dbadmin"
	d.NoteUpdate(db.TServerHosts)
	m, _ := d.MachineByID(hosts[0].MachID)
	d.UnlockExclusive()

	res, err := NFS(d)
	if err != nil {
		t.Fatal(err)
	}
	creds := string(res.Files[m.Name+"/credentials"])
	// dbadmin contains root and moira (both active).
	if !strings.HasPrefix(creds, "root:0") && !strings.Contains(creds, "\nroot:0") {
		t.Errorf("restricted credentials missing root:\n%s", creds)
	}
	if lines := strings.Count(creds, "\n"); lines != 2 {
		t.Errorf("restricted credentials has %d lines, want 2", lines)
	}
}

func TestMailAliasesFormat(t *testing.T) {
	d, _ := popDB(t, 80)
	res, err := Mail(d)
	if err != nil {
		t.Fatal(err)
	}
	aliases := string(res.Files["aliases"])
	// Pobox routing to the .LOCAL post office form.
	if !strings.Contains(aliases, "@ATHENA-PO-1.LOCAL") {
		t.Errorf("aliases missing pobox routing:\n%s", firstLines(aliases, 5))
	}
	// Owner lines for mailing lists.
	if !strings.Contains(aliases, "owner-") {
		t.Error("aliases missing owner- entries")
	}
	// The passwd file knows everybody active.
	passwd := string(res.Files["passwd"])
	if !strings.Contains(passwd, "root:*:0:101:") {
		t.Errorf("mailhub passwd:\n%s", firstLines(passwd, 3))
	}
}

func TestZephyrACLFiles(t *testing.T) {
	d, _ := popDB(t, 30)
	res, err := ZephyrACL(d)
	if err != nil {
		t.Fatal(err)
	}
	// Six classes, each with one non-NONE ACE (xmt) = six files,
	// matching the paper's Table G count for zephyr.
	if res.NumFiles != 6 {
		t.Errorf("zephyr files = %d, want 6", res.NumFiles)
	}
	moira := string(res.Files["MOIRA.xmt.acl"])
	// The zephyr-operators expansion: every line is a real login that is
	// recursively a member of the list.
	if strings.Count(moira, "\n") == 0 {
		t.Fatalf("MOIRA.xmt.acl is empty")
	}
	d.LockShared()
	defer d.UnlockShared()
	ops, ok := d.ListByName("zephyr-operators")
	if !ok {
		t.Fatal("zephyr-operators missing")
	}
	for _, line := range strings.Split(strings.TrimSpace(moira), "\n") {
		u, ok := d.UserByLogin(line)
		if !ok {
			t.Errorf("acl line %q is not a login", line)
			continue
		}
		if !d.HasMember(ops.ListID, db.ACEUser, u.UsersID) {
			t.Errorf("acl line %q is not an operator", line)
		}
	}
}

func TestGeneratorScaling(t *testing.T) {
	small, _ := popDB(t, 50)
	large, _ := popDB(t, 500)
	rs, err := Hesiod(small)
	if err != nil {
		t.Fatal(err)
	}
	rl, err := Hesiod(large)
	if err != nil {
		t.Fatal(err)
	}
	if rl.TotalBytes < 5*rs.TotalBytes {
		t.Errorf("hesiod output does not scale with users: %d vs %d bytes", rs.TotalBytes, rl.TotalBytes)
	}
}

func firstLines(s string, n int) string {
	lines := strings.SplitN(s, "\n", n+1)
	if len(lines) > n {
		lines = lines[:n]
	}
	return strings.Join(lines, "\n")
}

func grepLines(s, substr string) string {
	var out []string
	for _, l := range strings.Split(s, "\n") {
		if strings.Contains(l, substr) {
			out = append(out, l)
		}
	}
	return strings.Join(out, "\n")
}
