package gen

import (
	"strings"
	"testing"

	"moira/internal/db"
	"moira/internal/queries"
)

func TestKLoginGenerator(t *testing.T) {
	d, _ := popDB(t, 40)
	priv := &queries.Context{DB: d, Privileged: true, App: "test"}
	run := func(name string, args ...string) {
		t.Helper()
		if err := queries.Execute(priv, name, args, func([]string) error { return nil }); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	// root may log in on the hesiod server; dbadmin on the mailhub.
	run("add_server_host_access", "SUOMI.MIT.EDU", "USER", "root")
	run("add_server_host_access", "ATHENA.MIT.EDU", "LIST", "dbadmin")

	gen := KLogin("ATHENA.MIT.EDU")
	res, err := gen(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerHost) != 2 {
		t.Fatalf("per-host bundles = %d", len(res.PerHost))
	}
	suomi := string(res.Files["SUOMI.MIT.EDU/.klogin"])
	if suomi != "root.@ATHENA.MIT.EDU\n" {
		t.Errorf("suomi .klogin = %q", suomi)
	}
	hub := string(res.Files["ATHENA.MIT.EDU/.klogin"])
	if !strings.Contains(hub, "root.@ATHENA.MIT.EDU\n") ||
		!strings.Contains(hub, "moira.@ATHENA.MIT.EDU\n") {
		t.Errorf("mailhub .klogin = %q", hub)
	}

	// The driver-side change check sees the klogin tables.
	d.LockShared()
	seq0 := d.SeqOf(KLoginTables()...)
	d.UnlockShared()
	// Membership change regenerates.
	run("add_user", "newop", "-1", "/bin/csh", "New", "Op", "", "1", "", "STAFF")
	run("add_member_to_list", "dbadmin", "USER", "newop")
	d.LockShared()
	seq1 := d.SeqOf(KLoginTables()...)
	d.UnlockShared()
	if seq1 <= seq0 {
		t.Errorf("klogin table sequence did not advance: %d -> %d", seq0, seq1)
	}
	res2, err := gen(d)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(res2.Files["ATHENA.MIT.EDU/.klogin"]), "newop.@") {
		t.Error("new operator missing from regenerated .klogin")
	}

	// Inactive principals are excluded.
	run("update_user_status", "newop", "0")
	res3, err := gen(d)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(res3.Files["ATHENA.MIT.EDU/.klogin"]), "newop.@") {
		t.Error("inactive principal in .klogin")
	}
	_ = db.UserActive
}

func TestKLoginInstallScript(t *testing.T) {
	s := KLoginInstallScript("/tmp/klogin.out", "/")
	if len(s) != 2 || !strings.HasPrefix(s[0], "extract .klogin") || !strings.HasPrefix(s[1], "install") {
		t.Errorf("script = %v", s)
	}
}
