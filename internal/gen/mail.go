package gen

import (
	"fmt"
	"strings"

	"moira/internal/acl"
	"moira/internal/db"
	"moira/internal/extract"
)

var mailTables = []string{
	db.TUsers, db.TList, db.TMembers, db.TStrings, db.TMachine,
}

// localPO converts a post office machine name to the .LOCAL form the
// aliases file uses: ATHENA-PO-2.MIT.EDU -> ATHENA-PO-2.LOCAL.
func localPO(machine string) string {
	if i := strings.IndexByte(machine, '.'); i >= 0 {
		machine = machine[:i]
	}
	return machine + ".LOCAL"
}

// Mail generates the mailhub files (section 5.8.2, service Mail): the
// /usr/lib/aliases file holding mailing lists and post office boxes, and
// a complete /etc/passwd so the mailhub's finger server knows everybody.
func Mail(d *db.DB) (*Result, error) {
	return runFull(d, mailBuild)
}

// MailIncremental is the keyed form of the mail generator. The key
// space: "static" (file presence), "list:<name>" (one maillist's alias
// block), "user:<login>" (pobox alias line plus passwd line).
var MailIncremental = &Incremental{
	TablesList: mailTables,
	BuildFn:    mailBuild,
	DepsFn:     mailDeps,
	EmitFn:     mailEmit,
}

// mailBuild enumerates the whole key domain and emits each key.
func mailBuild(d *db.DB) (*extract.Model, error) {
	m := extract.NewModel()
	mailEmit(d, m, "static")
	d.EachList(func(l *db.List) bool {
		if l.Active && l.Maillist {
			mailEmit(d, m, "list:"+l.Name)
		}
		return true
	})
	d.EachUser(func(u *db.User) bool {
		mailEmit(d, m, "user:"+u.Login)
		return true
	})
	return m, nil
}

// mailMemberAddr renders one alias-file address for a member row.
func mailMemberAddr(d *db.DB, mem db.Member) string {
	switch mem.MemberType {
	case db.ACEUser:
		if u, ok := d.UserByID(mem.MemberID); ok {
			return u.Login
		}
	case db.ACEList:
		if l, ok := d.ListByID(mem.MemberID); ok {
			return l.Name
		}
	case db.ACEString:
		if s, ok := d.StringByID(mem.MemberID); ok {
			return s.String
		}
	}
	return ""
}

// mailEmit renders one logical key into the model.
func mailEmit(d *db.DB, m *extract.Model, key string) {
	kind, name, _ := strings.Cut(key, ":")
	switch kind {
	case "static":
		m.Emit("aliases", "", key, nil)
		m.Emit("passwd", "", key, nil)

	case "list":
		// One maillist's alias block: comment, owner alias, member
		// line. Sublists are named, not expanded — sendmail chases them
		// through their own alias lines; sublists that are not
		// themselves maillists are expanded.
		l, ok := d.ListByName(name)
		if !ok || !l.Active || !l.Maillist {
			return
		}
		var b strings.Builder
		fmt.Fprintf(&b, "# %s\n", l.Desc)
		switch l.ACLType {
		case db.ACEUser:
			if u, ok := d.UserByID(l.ACLID); ok {
				fmt.Fprintf(&b, "owner-%s: %s\n", l.Name, u.Login)
			}
		case db.ACEList:
			if owner, ok := d.ListByID(l.ACLID); ok && owner.ListID != l.ListID {
				fmt.Fprintf(&b, "owner-%s: %s\n", l.Name, owner.Name)
			}
		}
		var addrs []string
		for _, mem := range d.MembersOf(l.ListID) {
			if mem.MemberType == db.ACEList {
				if sub, ok := d.ListByID(mem.MemberID); ok && !(sub.Active && sub.Maillist) {
					// Flatten a non-maillist sublist.
					for _, em := range acl.ExpandMembers(d, sub.ListID) {
						if a := mailMemberAddr(d, em); a != "" {
							addrs = append(addrs, a)
						}
					}
					continue
				}
			}
			if a := mailMemberAddr(d, mem); a != "" {
				addrs = append(addrs, a)
			}
		}
		fmt.Fprintf(&b, "%s: %s\n", l.Name, strings.Join(addrs, ", "))
		m.Emit("aliases", extract.K(0, l.ListID), key, []byte(b.String()))

	case "user":
		u, ok := d.UserByLogin(name)
		if !ok || u.Status != db.UserActive {
			return
		}
		switch u.PoType {
		case db.PoboxPOP:
			if mach, ok := d.MachineByID(u.PopID); ok {
				line := fmt.Sprintf("%s: %s@%s\n", u.Login, u.Login, localPO(mach.Name))
				m.Emit("aliases", extract.K(1, u.UsersID), key, []byte(line))
			}
		case db.PoboxSMTP:
			if s, ok := d.StringByID(u.BoxID); ok {
				line := fmt.Sprintf("%s: %s\n", u.Login, s.String)
				m.Emit("aliases", extract.K(1, u.UsersID), key, []byte(line))
			}
		}
		line := fmt.Sprintf("%s:*:%d:101:%s,,,:/mit/%s:%s\n",
			u.Login, u.UID, u.Fullname, u.Login, u.Shell)
		m.Emit("passwd", extract.K(u.UsersID), key, []byte(line))
	}
}

// mailListKeysReferencing returns the keys of maillists that render the
// given user by name: lists containing it (directly or through flattened
// sublists) and lists owned by it.
func mailListKeysReferencing(d *db.DB, u *db.User) []string {
	keys := upListKeys(d, db.ACEUser, u.UsersID)
	d.EachList(func(l *db.List) bool {
		if l.ACLType == db.ACEUser && l.ACLID == u.UsersID {
			keys = append(keys, "list:"+l.Name)
		}
		return true
	})
	return keys
}

// mailDeps maps one journal record to the mail keys it dirties.
func mailDeps(d *db.DB, rec *db.JournalRecord) ([]string, bool) {
	a := rec.Args
	switch rec.Query {
	case "add_user", "update_user_status", "delete_user",
		"update_user_shell", "update_finger_by_login",
		"set_pobox", "set_pobox_pop", "delete_pobox":
		return []string{"user:" + a[0]}, true
	case "update_user":
		keys := []string{"user:" + a[0], "user:" + a[1]}
		if a[0] != a[1] {
			// A rename changes the login rendered inside alias blocks.
			if u, ok := d.UserByLogin(a[1]); ok {
				keys = append(keys, mailListKeysReferencing(d, u)...)
			}
		}
		return keys, true
	case "register_user":
		return []string{"user:" + a[1], "list:" + a[1]}, true
	case "delete_user_by_uid":
		return nil, false

	case "add_list", "delete_list":
		return []string{"list:" + a[0]}, true
	case "update_list":
		keys := []string{"list:" + a[0], "list:" + a[1]}
		if l, ok := d.ListByName(a[1]); ok {
			// Parents flatten non-maillist sublists and name maillist
			// ones; flag or name changes reach every ancestor.
			keys = append(keys, upListKeys(d, db.ACEList, l.ListID)...)
			d.EachList(func(o *db.List) bool {
				if o.ACLType == db.ACEList && o.ACLID == l.ListID {
					keys = append(keys, "list:"+o.Name)
				}
				return true
			})
		}
		return keys, true
	case "add_member_to_list", "delete_member_from_list":
		keys := []string{"list:" + a[0]}
		if l, ok := d.ListByName(a[0]); ok {
			keys = append(keys, upListKeys(d, db.ACEList, l.ListID)...)
		}
		return keys, true

	case "add_machine":
		return nil, true
	case "update_machine", "delete_machine":
		// Pobox lines render the machine name.
		return nil, false

	case "add_cluster", "update_cluster", "delete_cluster",
		"add_machine_to_cluster", "delete_machine_from_cluster",
		"add_cluster_data", "delete_cluster_data",
		"add_filesys", "update_filesys", "delete_filesys",
		"add_nfsphys", "update_nfsphys", "delete_nfsphys", "adjust_nfsphys_allocation",
		"add_nfs_quota", "update_nfs_quota", "delete_nfs_quota",
		"add_service", "delete_service", "add_printcap", "delete_printcap",
		"add_alias", "delete_alias",
		"add_zephyr_class", "update_zephyr_class", "delete_zephyr_class",
		"add_server_host_access", "update_server_host_access", "delete_server_host_access",
		"add_server_info", "update_server_info", "delete_server_info",
		"reset_server_error", "set_server_internal_flags",
		"add_server_host_info", "update_server_host_info", "delete_server_host_info",
		"reset_server_host_error", "set_server_host_override", "set_server_host_internal",
		"add_value", "update_value", "delete_value":
		return nil, true
	}
	return nil, false
}

// MailInstallScript installs the aliases and passwd files on the
// mailhub. The aliases file is deliberately staged, not swapped in
// automatically — "the mail spool must be disabled during the
// switchover" — so the final activation is a registered command the
// hub's operators control.
func MailInstallScript(target, destDir string) []string {
	return []string{
		"extract aliases " + destDir + "/aliases",
		"extract passwd " + destDir + "/passwd",
		"install " + destDir + "/passwd",
		"exec stage_aliases " + destDir,
	}
}
