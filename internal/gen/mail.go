package gen

import (
	"fmt"
	"strings"

	"moira/internal/acl"
	"moira/internal/db"
	"moira/internal/mrerr"
)

var mailTables = []string{
	db.TUsers, db.TList, db.TMembers, db.TStrings, db.TMachine,
}

// localPO converts a post office machine name to the .LOCAL form the
// aliases file uses: ATHENA-PO-2.MIT.EDU -> ATHENA-PO-2.LOCAL.
func localPO(machine string) string {
	if i := strings.IndexByte(machine, '.'); i >= 0 {
		machine = machine[:i]
	}
	return machine + ".LOCAL"
}

// Mail generates the mailhub files (section 5.8.2, service Mail): the
// /usr/lib/aliases file holding mailing lists and post office boxes, and
// a complete /etc/passwd so the mailhub's finger server knows everybody.
func Mail(d *db.DB, since int64) (*Result, error) {
	d.LockShared()
	defer d.UnlockShared()
	if unchanged(d, since, mailTables...) {
		return nil, mrerr.MrNoChange
	}
	observedSeq := d.SeqOf(mailTables...)

	var aliases strings.Builder

	memberAddr := func(m db.Member) string {
		switch m.MemberType {
		case db.ACEUser:
			if u, ok := d.UserByID(m.MemberID); ok {
				return u.Login
			}
		case db.ACEList:
			if l, ok := d.ListByID(m.MemberID); ok {
				return l.Name
			}
		case db.ACEString:
			if s, ok := d.StringByID(m.MemberID); ok {
				return s.String
			}
		}
		return ""
	}

	// Mailing lists: only lists marked active and maillist. Sublists are
	// named, not expanded — sendmail chases them through their own alias
	// lines; sublists that are not themselves maillists are expanded.
	d.EachList(func(l *db.List) bool {
		if !l.Active || !l.Maillist {
			return true
		}
		fmt.Fprintf(&aliases, "# %s\n", l.Desc)
		switch l.ACLType {
		case db.ACEUser:
			if u, ok := d.UserByID(l.ACLID); ok {
				fmt.Fprintf(&aliases, "owner-%s: %s\n", l.Name, u.Login)
			}
		case db.ACEList:
			if owner, ok := d.ListByID(l.ACLID); ok && owner.ListID != l.ListID {
				fmt.Fprintf(&aliases, "owner-%s: %s\n", l.Name, owner.Name)
			}
		}
		var addrs []string
		for _, m := range d.MembersOf(l.ListID) {
			if m.MemberType == db.ACEList {
				if sub, ok := d.ListByID(m.MemberID); ok && !(sub.Active && sub.Maillist) {
					// Flatten a non-maillist sublist.
					for _, em := range acl.ExpandMembers(d, sub.ListID) {
						if a := memberAddr(em); a != "" {
							addrs = append(addrs, a)
						}
					}
					continue
				}
			}
			if a := memberAddr(m); a != "" {
				addrs = append(addrs, a)
			}
		}
		fmt.Fprintf(&aliases, "%s: %s\n", l.Name, strings.Join(addrs, ", "))
		return true
	})

	// Post office boxes for active users.
	var passwd strings.Builder
	d.EachUser(func(u *db.User) bool {
		if u.Status != db.UserActive {
			return true
		}
		switch u.PoType {
		case db.PoboxPOP:
			if m, ok := d.MachineByID(u.PopID); ok {
				fmt.Fprintf(&aliases, "%s: %s@%s\n", u.Login, u.Login, localPO(m.Name))
			}
		case db.PoboxSMTP:
			if s, ok := d.StringByID(u.BoxID); ok {
				fmt.Fprintf(&aliases, "%s: %s\n", u.Login, s.String)
			}
		}
		fmt.Fprintf(&passwd, "%s:*:%d:101:%s,,,:/mit/%s:%s\n",
			u.Login, u.UID, u.Fullname, u.Login, u.Shell)
		return true
	})

	files := map[string][]byte{
		"aliases": []byte(aliases.String()),
		"passwd":  []byte(passwd.String()),
	}
	tarball, err := bundle(files)
	if err != nil {
		return nil, err
	}
	r := &Result{Common: tarball, Files: files}
	r.Seq = observedSeq
	r.finish()
	return r, nil
}

// MailInstallScript installs the aliases and passwd files on the
// mailhub. The aliases file is deliberately staged, not swapped in
// automatically — "the mail spool must be disabled during the
// switchover" — so the final activation is a registered command the
// hub's operators control.
func MailInstallScript(target, destDir string) []string {
	return []string{
		"extract aliases " + destDir + "/aliases",
		"extract passwd " + destDir + "/passwd",
		"install " + destDir + "/passwd",
		"exec stage_aliases " + destDir,
	}
}
