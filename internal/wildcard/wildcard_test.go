package wildcard

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestMatch(t *testing.T) {
	cases := []struct {
		pattern, name string
		want          bool
	}{
		{"*", "", true},
		{"*", "anything", true},
		{"", "", true},
		{"", "x", false},
		{"abc", "abc", true},
		{"abc", "abd", false},
		{"a*c", "abc", true},
		{"a*c", "ac", true},
		{"a*c", "abdc", true},
		{"a*c", "abcd", false},
		{"?", "x", true},
		{"?", "", false},
		{"?", "xy", false},
		{"a?c", "abc", true},
		{"a?c", "ac", false},
		{"*mit*", "e40-po.mit.edu", true},
		{"*.mit.edu", "bitsy.mit.edu", true},
		{"*.mit.edu", "bitsy.mit.com", false},
		{"ab*cd*ef", "abXcdYefZef", true},
		{"ab*cd*ef", "abXcdYef", true},
		{"ab*cd*ef", "abXef", false},
		{"**", "x", true},
		{"*?", "", false},
		{"*?", "a", true},
	}
	for _, c := range cases {
		if got := Match(c.pattern, c.name); got != c.want {
			t.Errorf("Match(%q, %q) = %v, want %v", c.pattern, c.name, got, c.want)
		}
	}
}

func TestHasWildcards(t *testing.T) {
	if HasWildcards("plain.name") {
		t.Error("plain.name should have no wildcards")
	}
	if !HasWildcards("a*b") || !HasWildcards("a?b") {
		t.Error("wildcards not detected")
	}
}

func TestFilter(t *testing.T) {
	names := []string{"alpha", "beta", "alphabet", "gamma"}
	got := Filter("alpha*", names)
	if len(got) != 2 || got[0] != "alpha" || got[1] != "alphabet" {
		t.Errorf("Filter = %v", got)
	}
	if Filter("zzz", names) != nil {
		t.Error("Filter of no matches should be nil")
	}
}

// Property: every literal string matches itself.
func TestPropertySelfMatch(t *testing.T) {
	f := func(s string) bool {
		if strings.ContainsAny(s, "*?") {
			return true // skip strings containing metacharacters
		}
		return Match(s, s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: "*" matches everything and prefix-star patterns match
// anything with that prefix.
func TestPropertyStar(t *testing.T) {
	f := func(s string) bool {
		if !Match("*", s) {
			return false
		}
		if strings.ContainsAny(s, "*?") {
			return true
		}
		return Match(s+"*", s) && Match(s+"*", s+"suffix") && Match("*"+s, "prefix"+s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkMatchBacktrack(b *testing.B) {
	pattern := "a*a*a*a*b"
	name := strings.Repeat("a", 60)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Match(pattern, name)
	}
}
