// Package wildcard implements the QUEL-style wildcard matching used by
// Moira's retrieval queries. A pattern may contain '*' (match any run of
// characters, including empty) and '?' (match exactly one character); all
// other characters match themselves. Matching is case sensitive; callers
// that need case-insensitive matching (machine names, service names)
// upper-case both sides first.
package wildcard

// HasWildcards reports whether the pattern contains any wildcard
// metacharacters. Queries that forbid wildcards for unprivileged callers
// use this to decide whether to reject the argument.
func HasWildcards(pattern string) bool {
	for i := 0; i < len(pattern); i++ {
		if pattern[i] == '*' || pattern[i] == '?' {
			return true
		}
	}
	return false
}

// Match reports whether name matches pattern. The implementation is the
// standard two-pointer glob algorithm: linear in len(name) with
// backtracking only to the most recent '*'.
func Match(pattern, name string) bool {
	var pi, ni int
	star := -1
	mark := 0
	for ni < len(name) {
		switch {
		case pi < len(pattern) && (pattern[pi] == '?' || pattern[pi] == name[ni]):
			pi++
			ni++
		case pi < len(pattern) && pattern[pi] == '*':
			star = pi
			mark = ni
			pi++
		case star >= 0:
			pi = star + 1
			mark++
			ni = mark
		default:
			return false
		}
	}
	for pi < len(pattern) && pattern[pi] == '*' {
		pi++
	}
	return pi == len(pattern)
}

// Filter returns the elements of names matching pattern, in order.
func Filter(pattern string, names []string) []string {
	var out []string
	for _, n := range names {
		if Match(pattern, n) {
			out = append(out, n)
		}
	}
	return out
}
