package stats

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestConcurrentExactCounts hammers one counter, one gauge, and one
// histogram from many goroutines and asserts the exact totals; the CI
// race-detector pass makes this a memory-model check too.
func TestConcurrentExactCounts(t *testing.T) {
	const goroutines = 16
	const perG = 2000
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				r.Counter("c").Inc()
				r.Gauge("g").Add(2)
				r.Histogram("h").Observe(3 * time.Millisecond)
			}
		}()
	}
	wg.Wait()
	const want = goroutines * perG
	if got := r.Counter("c").Value(); got != want {
		t.Errorf("counter = %d, want %d", got, want)
	}
	if got := r.Gauge("g").Value(); got != 2*want {
		t.Errorf("gauge = %d, want %d", got, 2*want)
	}
	h := r.Histogram("h").Snapshot()
	if h.N != want || h.Sum != want*3*time.Millisecond {
		t.Errorf("histogram n=%d sum=%v, want n=%d sum=%v", h.N, h.Sum, want, want*3*time.Millisecond)
	}
	// 3ms lands in the ≤5ms bucket (index 1 of the defaults).
	if h.Counts[1] != want {
		t.Errorf("bucket counts = %v", h.Counts)
	}
}

func TestHistogramMinMaxAvgAndOverflow(t *testing.T) {
	h := NewHistogram(nil)
	for _, d := range []time.Duration{
		500 * time.Microsecond, 30 * time.Millisecond, 3 * time.Second,
	} {
		h.Observe(d)
	}
	s := h.Snapshot()
	if s.Min != 500*time.Microsecond || s.Max != 3*time.Second || s.N != 3 {
		t.Errorf("snapshot = %+v", s)
	}
	// 3s exceeds the last bound and lands in the overflow bucket.
	if s.Counts[len(s.Counts)-1] != 1 {
		t.Errorf("overflow bucket = %v", s.Counts)
	}
	if got := h.String(); !strings.Contains(got, "n=3") || !strings.Contains(got, ">2s:1") {
		t.Errorf("String() = %q", got)
	}
}

func TestSnapshotDeltaMath(t *testing.T) {
	r := NewRegistry()
	r.Counter("reqs").Add(10)
	r.Gauge("sessions").Set(4)
	r.Histogram("lat").Observe(2 * time.Millisecond)
	before := r.Snapshot()

	r.Counter("reqs").Add(7)
	r.Counter("fresh").Add(3) // born after the first snapshot
	r.Gauge("sessions").Set(9)
	r.Histogram("lat").Observe(40 * time.Millisecond)
	r.Histogram("lat").Observe(60 * time.Millisecond)
	after := r.Snapshot()

	d := after.Delta(before)
	if d.Counters["reqs"] != 7 {
		t.Errorf("reqs delta = %d", d.Counters["reqs"])
	}
	if d.Counters["fresh"] != 3 {
		t.Errorf("fresh delta = %d", d.Counters["fresh"])
	}
	if d.Gauges["sessions"] != 9 { // gauges report the current value
		t.Errorf("sessions = %d", d.Gauges["sessions"])
	}
	lat := d.Histograms["lat"]
	if lat.N != 2 || lat.Sum != 100*time.Millisecond {
		t.Errorf("lat delta n=%d sum=%v", lat.N, lat.Sum)
	}
	// 40ms → ≤50ms bucket (index 3); 60ms → ≤100ms bucket (index 4);
	// the 2ms observation from before the first snapshot cancels out.
	if lat.Counts[1] != 0 || lat.Counts[3] != 1 || lat.Counts[4] != 1 {
		t.Errorf("lat bucket delta = %v", lat.Counts)
	}
}

func TestGroupValuesJoinSnapshots(t *testing.T) {
	r := NewRegistry()
	calls := 0
	r.AddGroup(func(emit func(string, int64)) {
		calls++
		emit("db.users.appends", int64(10*calls))
	})
	first := r.Snapshot()
	second := r.Snapshot()
	if first.Counters["db.users.appends"] != 10 || second.Counters["db.users.appends"] != 20 {
		t.Errorf("group values = %d, %d",
			first.Counters["db.users.appends"], second.Counters["db.users.appends"])
	}
	if d := second.Delta(first); d.Counters["db.users.appends"] != 10 {
		t.Errorf("group delta = %d", d.Counters["db.users.appends"])
	}
}

// TestRenderGolden pins the exact text format: it is what `_stats`
// serves and what cmd/moirastat and the integration smoke test parse.
func TestRenderGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("server.requests.query").Add(42)
	r.Gauge("server.sessions.active").Set(3)
	h := r.Histogram("server.latency.query")
	h.Observe(2 * time.Millisecond)
	h.Observe(2 * time.Millisecond)

	var b strings.Builder
	if err := r.Snapshot().Render(&b); err != nil {
		t.Fatal(err)
	}
	want := "histogram server.latency.query n=2 min=2ms avg=2ms max=2ms " +
		"[≤1ms:0 ≤5ms:2 ≤20ms:0 ≤50ms:0 ≤100ms:0 ≤500ms:0 ≤2s:0 >2s:0]\n" +
		"counter server.requests.query 42\n" +
		"gauge server.sessions.active 3\n"
	if b.String() != want {
		t.Errorf("Render:\n got: %q\nwant: %q", b.String(), want)
	}
}

// TestHistogramStringEmptyCase pins the empty rendering cmd/dcm relies
// on ("no pushes", the original LatencyHistogram wording).
func TestHistogramStringEmptyCase(t *testing.T) {
	var h Histogram
	if got := h.String(); got != "no pushes" {
		t.Errorf("empty String() = %q", got)
	}
}

func TestTraceLogRingEviction(t *testing.T) {
	l := NewTraceLog(3)
	for i := 1; i <= 5; i++ {
		l.Add(TraceEntry{Trace: string(rune('0' + i))})
	}
	got := l.Entries()
	if len(got) != 3 || got[0].Trace != "3" || got[2].Trace != "5" {
		t.Errorf("entries = %+v", got)
	}
}
