package stats

import "strings"

// The series-name registry: every metric name the tree may emit is
// declared here, either exactly or as a "prefix.*" family. The
// Prometheus exposition needs collision-free names, and a flat
// get-or-create registry makes it too easy for two call sites to
// invent overlapping or misspelled series — so CI walks a fully-booted
// system's snapshot and fails on any name this list does not know
// (TestStatsNamesRegistered), and fails here on duplicate or shadowed
// declarations. Adding a metric means adding its name to this table.
var KnownNames = []string{
	// server (internal/server)
	"server.requests.*", // per-opcode request counts
	"server.latency.*",  // per-opcode latency histograms
	"server.handle.*",   // per-query-handle counts
	"server.errors.*",   // per-mrerr-code counts
	"server.auth.failures",
	"server.sessions.active",
	"server.conns.shed",
	"server.conns.idleclosed",
	"server.conns.forceclosed",
	"server.panics.recovered",
	"server.readonly.refused",
	"server.stale.refused",

	// database (internal/db)
	"db.*", // per-table append/update/delete mirrors
	"snap.reads",
	"snap.rebuilds",
	"snap.freeze.duration",

	// durable journal (internal/db jwriter)
	"journal.appends",
	"journal.bytes",
	"journal.syncs",
	"journal.rotations",
	"journal.writeerrors",
	"journal.segment",
	"journal.errors",
	"journal.wedged",
	"journal.sync.wait",    // group-commit flush duration histogram
	"journal.sync.batched", // appends riding already-started flushes

	// replication (internal/replica)
	"repl.role",
	"repl.applied.seg",
	"repl.applied.idx",
	"repl.applied.records",
	"repl.skipped.records",
	"repl.failed.records",
	"repl.head.seg",
	"repl.head.idx",
	"repl.lag.segments",
	"repl.lag.records",
	"repl.lag.bytes",
	"repl.lag.seconds",
	"repl.reconnects",
	"repl.bootstraps",
	"repl.connected",
	"repl.primary.conns",
	"repl.primary.served",
	"repl.primary.snapshots",
	"repl.primary.sent.records",
	"repl.primary.sent.bytes",
	"repl.primary.subscribers",
	"repl.primary.shiplag.records",

	// failover cluster (internal/replica cluster)
	"election.epoch",
	"election.count",
	"election.won",
	"election.aborted",
	"election.flaps",
	"lease.held",
	"lease.remaining.ms",
	"lease.renewals",
	"lease.expiries",
	"lease.acks",
	"lease.sent",
	"repl.commit.gated",
	"repl.commit.gatefail",
	"repl.commit.waived",

	// DCM (internal/dcm)
	"dcm.passes",
	"dcm.services.scanned",
	"dcm.services.due",
	"dcm.services.generated",
	"dcm.services.nochange",
	"dcm.services.genfail",
	"dcm.hosts.considered",
	"dcm.hosts.updated",
	"dcm.hosts.softfail",
	"dcm.hosts.hardfail",
	"dcm.hosts.busy",
	"dcm.hosts.retries",
	"dcm.files.generated",
	"dcm.files.propagated",
	"dcm.bytes.generated",
	"dcm.bytes.propagated",
	"dcm.bytes.pushed",
	"dcm.bytes.skipped",
	"dcm.pass.duration",
	"dcm.push.latency",

	// incremental DCM (internal/dcm + internal/extract)
	"dcm.delta.passes.full",
	"dcm.delta.passes.delta",
	"dcm.delta.passes.noop",
	"dcm.delta.fallbacks",
	"dcm.delta.records",
	"dcm.delta.keys",
	"dcm.delta.pos.seg.*",  // per-service committed journal segment
	"dcm.delta.pos.idx.*",  // per-service committed record index
	"dcm.delta.backlog.*",  // per-service records consumed by the last pass
	"dcm.delta.lastmode.*", // per-service last pass mode (0 full, 1 delta, 2 noop)

	// update agents (internal/update)
	"update.installs",
	"update.xfers",
	"update.bytes",
	"update.chunks.manifests",
	"update.chunks.pushed",
	"update.chunks.reused",
	"update.chunks.bytes.pushed",
	"update.chunks.bytes.reused",
	"update.chunks.downgrades",
	"update.conns.busy",
	"update.conns.forceclosed",
	"update.panics.recovered",

	// span store (internal/trace)
	"trace.spans",
	"trace.kept",
	"trace.sampled.out",
	"trace.slowops",
	"trace.errored",
	"span.*", // per-phase duration histograms, one per span name
}

// KnownName reports whether a series name is declared in KnownNames,
// exactly or under a "prefix.*" family.
func KnownName(name string) bool {
	for _, pat := range KnownNames {
		if fam, ok := strings.CutSuffix(pat, "*"); ok {
			if strings.HasPrefix(name, fam) {
				return true
			}
		} else if name == pat {
			return true
		}
	}
	return false
}
