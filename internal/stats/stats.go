// Package stats is the shared observability layer: lock-cheap counters,
// gauges, and duration histograms collected in a named registry, with
// point-in-time snapshots, snapshot deltas, and a stable text rendering.
//
// Every layer of the reproduction publishes into one registry — the
// Moira server records per-opcode and per-query-handle request counts
// and latencies, the database its per-table operation counts, the DCM
// its cumulative pass series, the update agents their transfer tallies —
// and the `_stats` admin query handle plus cmd/moirastat read it back
// out. The paper's operational story (one server, one DCM, all of
// Athena) only works if that one server can be asked what it is doing;
// this package is that answer for the reproduction.
package stats

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing count. The zero value is ready
// to use; all methods are safe for concurrent use. A nil *Counter
// discards updates, so callers can hold an optional handle without
// guarding every increment.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous value that can move both ways (active
// sessions, queue depth). The zero value is ready to use.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// GroupFunc supplies a batch of named cumulative values at snapshot
// time; it is how a subsystem with its own internal tallies (the
// database's per-table op counts) joins a registry without routing
// every increment through it. The values it emits are treated as
// counters for delta purposes. It must not block and must be safe to
// call from any goroutine.
type GroupFunc func(emit func(name string, value int64))

// Registry is a named collection of metrics. Metric constructors are
// get-or-create, so independent call sites may name the same metric;
// names are conventionally dotted paths ("server.requests.query").
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	groups   []GroupFunc
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c := r.counters[name]; c != nil {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g := r.gauges[name]; g != nil {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the named duration histogram with the default
// buckets, creating it if needed.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h := r.hists[name]; h != nil {
		return h
	}
	h = &Histogram{}
	r.hists[name] = h
	return h
}

// HistogramWith returns the named duration histogram, creating it over
// the given bucket edges if needed. An already-created histogram keeps
// its original edges (first registration wins), so independent call
// sites must agree on the buckets for a series — which the names
// registry test enforces by convention, one creation site per series.
func (r *Registry) HistogramWith(name string, buckets []time.Duration) *Histogram {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h := r.hists[name]; h != nil {
		return h
	}
	h = NewHistogram(buckets)
	r.hists[name] = h
	return h
}

// AddGroup registers a snapshot-time value source.
func (r *Registry) AddGroup(fn GroupFunc) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.groups = append(r.groups, fn)
}

// Snapshot captures every metric's current value. Group values land in
// Counters. The snapshot is a plain value: safe to keep, diff, or
// marshal (expvar publishes it as JSON).
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	r.mu.RLock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	groups := r.groups
	r.mu.RUnlock()
	for _, fn := range groups {
		fn(func(name string, v int64) { s.Counters[name] = v })
	}
	return s
}

// Snapshot is the state of a registry at one instant.
type Snapshot struct {
	Counters   map[string]int64
	Gauges     map[string]int64
	Histograms map[string]HistogramSnapshot
}

// Delta returns the change from prev to s: counters and histograms are
// subtracted (a counter absent from prev counts from zero), gauges keep
// their current value (an instantaneous reading has no meaningful
// difference).
func (s *Snapshot) Delta(prev *Snapshot) *Snapshot {
	d := &Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	for name, v := range s.Counters {
		d.Counters[name] = v - prev.Counters[name]
	}
	for name, v := range s.Gauges {
		d.Gauges[name] = v
	}
	for name, h := range s.Histograms {
		d.Histograms[name] = h.Sub(prev.Histograms[name])
	}
	return d
}

// Line is one rendered metric: its kind ("counter", "gauge",
// "histogram"), name, and value rendered as a string.
type Line struct {
	Kind, Name, Value string
}

// Lines renders the snapshot as one Line per metric, sorted by name.
// This is the `_stats` query handle's tuple set.
func (s *Snapshot) Lines() []Line {
	out := make([]Line, 0, len(s.Counters)+len(s.Gauges)+len(s.Histograms))
	for name, v := range s.Counters {
		out = append(out, Line{"counter", name, strconv.FormatInt(v, 10)})
	}
	for name, v := range s.Gauges {
		out = append(out, Line{"gauge", name, strconv.FormatInt(v, 10)})
	}
	for name, h := range s.Histograms {
		out = append(out, Line{"histogram", name, h.String()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Render writes the snapshot as "kind name value" lines sorted by name.
func (s *Snapshot) Render(w io.Writer) error {
	for _, ln := range s.Lines() {
		if _, err := fmt.Fprintf(w, "%s %s %s\n", ln.Kind, ln.Name, ln.Value); err != nil {
			return err
		}
	}
	return nil
}
