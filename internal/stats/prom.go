package stats

// Prometheus text exposition (format version 0.0.4) for a Registry
// snapshot, served as /metrics on -debug-addr. The registry's dotted
// names map to Prometheus-legal names by prefixing "moira_" and
// mapping every non-alphanumeric byte to '_': "server.requests.query"
// becomes moira_server_requests_query. The mapping must be injective
// over the emitted name set — names.go's registry test enforces that
// no two series collide after sanitization.

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"
)

// PromName sanitizes a registry series name into a Prometheus metric
// name.
func PromName(name string) string {
	b := make([]byte, 0, len(name)+6)
	b = append(b, "moira_"...)
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
			b = append(b, c)
		default:
			b = append(b, '_')
		}
	}
	return string(b)
}

func promFloat(d time.Duration) string {
	return fmt.Sprintf("%g", d.Seconds())
}

// WritePrometheus renders the snapshot in Prometheus text format:
// counters as <name>_total, gauges as <name>, histograms as cumulative
// <name>_seconds histograms (buckets in seconds), sorted by name for a
// stable scrape.
func (s *Snapshot) WritePrometheus(w io.Writer) error {
	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := PromName(name) + "_total"
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, s.Counters[name]); err != nil {
			return err
		}
	}

	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := PromName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", pn, pn, s.Gauges[name]); err != nil {
			return err
		}
	}

	names = names[:0]
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := s.Histograms[name]
		pn := PromName(name) + "_seconds"
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
			return err
		}
		cum := int64(0)
		for i, bound := range h.Buckets {
			if i < len(h.Counts) {
				cum += h.Counts[i]
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", pn, promFloat(bound), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", pn, h.N); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", pn, promFloat(h.Sum), pn, h.N); err != nil {
			return err
		}
	}
	return nil
}

// PromHandler serves the registry as a Prometheus /metrics endpoint.
func PromHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.Snapshot().WritePrometheus(w)
	})
}
