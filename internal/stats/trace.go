package stats

import (
	"sync"
	"time"
)

// TraceEntry is one recorded request: who asked for what, with which
// trace ID, and how it went. The Moira server records one per RPC; the
// update agents record one per install. The `_trace` admin handle and
// cmd/moirastat read them back.
type TraceEntry struct {
	Time      int64  // unix seconds
	Trace     string // trace ID stamped by the client ("" if none)
	Op        string // protocol opcode name, or "install" on an agent
	Handle    string // query handle (or install target)
	Principal string // authenticated principal ("" if anonymous)
	Code      int32  // final mrerr code
	Latency   time.Duration
}

// DefaultTraceLogSize bounds the per-server request trace ring.
const DefaultTraceLogSize = 256

// TraceLog is a fixed-size ring of recent TraceEntries, safe for
// concurrent use.
type TraceLog struct {
	mu   sync.Mutex
	buf  []TraceEntry
	next int
	full bool
}

// NewTraceLog creates a ring holding the last n entries; n <= 0 means
// DefaultTraceLogSize.
func NewTraceLog(n int) *TraceLog {
	if n <= 0 {
		n = DefaultTraceLogSize
	}
	return &TraceLog{buf: make([]TraceEntry, n)}
}

// Add records one entry, evicting the oldest when full.
func (l *TraceLog) Add(e TraceEntry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.buf[l.next] = e
	l.next++
	if l.next == len(l.buf) {
		l.next = 0
		l.full = true
	}
}

// Entries returns the recorded entries, oldest first.
func (l *TraceLog) Entries() []TraceEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.full {
		return append([]TraceEntry(nil), l.buf[:l.next]...)
	}
	out := make([]TraceEntry, 0, len(l.buf))
	out = append(out, l.buf[l.next:]...)
	out = append(out, l.buf[:l.next]...)
	return out
}
