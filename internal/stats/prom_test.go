package stats

import (
	"bufio"
	"io"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

var (
	promMetricRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promLineRe   = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (\S+)$`)
)

// checkPromText validates Prometheus text-format invariants: every
// sample line parses, metric names are legal and prefixed, every metric
// has a preceding # TYPE, histogram buckets are cumulative and end at
// +Inf matching _count.
func checkPromText(t *testing.T, r io.Reader) (metrics map[string]bool) {
	t.Helper()
	metrics = make(map[string]bool)
	typed := make(map[string]string)
	type histState struct {
		last  int64
		inf   int64
		count int64
		seen  bool
	}
	hists := make(map[string]*histState)

	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Errorf("malformed TYPE line: %q", line)
				continue
			}
			if !promMetricRe.MatchString(f[2]) {
				t.Errorf("illegal metric name in TYPE: %q", f[2])
			}
			typed[f[2]] = f[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		m := promLineRe.FindStringSubmatch(line)
		if m == nil {
			t.Errorf("unparseable sample line: %q", line)
			continue
		}
		name, labels, value := m[1], m[2], m[3]
		if !strings.HasPrefix(name, "moira_") {
			t.Errorf("metric %q not in the moira_ namespace", name)
		}
		v, err := strconv.ParseFloat(value, 64)
		if err != nil {
			t.Errorf("metric %q has non-numeric value %q", name, value)
		}
		base := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if b, ok := strings.CutSuffix(name, suf); ok && typed[b] == "histogram" {
				base = b
			}
		}
		if _, ok := typed[base]; !ok {
			t.Errorf("sample %q has no preceding # TYPE", name)
		}
		metrics[base] = true
		if typed[base] == "histogram" {
			h := hists[base]
			if h == nil {
				h = &histState{}
				hists[base] = h
			}
			switch {
			case strings.HasSuffix(name, "_bucket"):
				if labels == `{le="+Inf"}` {
					h.inf = int64(v)
					h.seen = true
				} else {
					if int64(v) < h.last {
						t.Errorf("%s: non-cumulative bucket %q", base, line)
					}
					h.last = int64(v)
				}
			case strings.HasSuffix(name, "_count"):
				h.count = int64(v)
			}
		}
	}
	for name, h := range hists {
		if !h.seen {
			t.Errorf("histogram %s has no +Inf bucket", name)
		}
		if h.inf != h.count {
			t.Errorf("histogram %s: +Inf bucket %d != count %d", name, h.inf, h.count)
		}
		if h.last > h.inf {
			t.Errorf("histogram %s: finite bucket %d exceeds +Inf %d", name, h.last, h.inf)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return metrics
}

func TestPrometheusExposition(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("server.requests.query").Add(41)
	reg.Gauge("server.sessions.active").Set(3)
	h := reg.HistogramWith("server.latency.query", FastBuckets)
	for _, d := range []time.Duration{time.Microsecond, time.Millisecond, 50 * time.Millisecond, 3 * time.Second} {
		h.Observe(d)
	}
	reg.AddGroup(func(emit func(name string, v int64)) {
		emit("repl.lag.seconds", 7)
	})

	srv := httptest.NewServer(PromHandler(reg))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("content type = %q", ct)
	}
	metrics := checkPromText(t, resp.Body)
	for _, want := range []string{
		"moira_server_requests_query_total",
		"moira_server_sessions_active",
		"moira_server_latency_query_seconds",
		"moira_repl_lag_seconds_total",
	} {
		if !metrics[want] {
			t.Errorf("missing metric %s (got %v)", want, metrics)
		}
	}
}
