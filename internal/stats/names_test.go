package stats

import (
	"strings"
	"testing"
)

// TestKnownNamesWellFormed is the registry's own CI gate: no duplicate
// declarations, no exact name shadowed by a family, no family nested
// inside another, and every name sanitizes to a distinct Prometheus
// metric name (the exposition mapping must stay injective).
func TestKnownNamesWellFormed(t *testing.T) {
	seen := make(map[string]string) // entry -> ""
	var families []string
	var exacts []string
	for _, pat := range KnownNames {
		if _, dup := seen[pat]; dup {
			t.Errorf("duplicate declaration: %q", pat)
		}
		seen[pat] = ""
		if fam, ok := strings.CutSuffix(pat, "*"); ok {
			if fam == "" || !strings.HasSuffix(fam, ".") {
				t.Errorf("family %q must end in '.*'", pat)
			}
			families = append(families, fam)
		} else {
			exacts = append(exacts, pat)
		}
	}
	for _, name := range exacts {
		for _, fam := range families {
			if strings.HasPrefix(name, fam) {
				t.Errorf("exact name %q is shadowed by family %q*", name, fam)
			}
		}
	}
	for _, a := range families {
		for _, b := range families {
			if a != b && strings.HasPrefix(a, b) {
				t.Errorf("family %q* is nested inside family %q*", a, b)
			}
		}
	}
	prom := make(map[string]string)
	for _, name := range exacts {
		pn := PromName(name)
		if prev, clash := prom[pn]; clash {
			t.Errorf("names %q and %q collide as Prometheus name %q", prev, name, pn)
		}
		prom[pn] = name
	}
}

func TestKnownNameMatching(t *testing.T) {
	cases := []struct {
		name string
		want bool
	}{
		{"journal.appends", true},
		{"server.requests.query", true}, // family match
		{"span.server.request", true},
		{"repl.lag.seconds", true},
		{"journal.apends", false}, // misspelled
		{"made.up.series", false},
		{"", false},
	}
	for _, c := range cases {
		if got := KnownName(c.name); got != c.want {
			t.Errorf("KnownName(%q) = %v, want %v", c.name, got, c.want)
		}
	}
}
