package stats

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultBuckets are the upper bounds of a duration histogram;
// observations above the last bound land in an overflow bucket. They
// were chosen for host-push latencies (the DCM's original histogram)
// and suit RPC latencies equally well.
var DefaultBuckets = []time.Duration{
	time.Millisecond,
	5 * time.Millisecond,
	20 * time.Millisecond,
	50 * time.Millisecond,
	100 * time.Millisecond,
	500 * time.Millisecond,
	2 * time.Second,
}

// FastBuckets resolve the post-index fast path: an indexed point lookup
// completes in well under a microsecond, and DefaultBuckets would lump
// every such request — and everything else up to a millisecond — into
// one bucket. Server and db latency series use these edges.
var FastBuckets = []time.Duration{
	500 * time.Nanosecond,
	2 * time.Microsecond,
	10 * time.Microsecond,
	50 * time.Microsecond,
	200 * time.Microsecond,
	time.Millisecond,
	5 * time.Millisecond,
	20 * time.Millisecond,
	100 * time.Millisecond,
	500 * time.Millisecond,
	2 * time.Second,
}

// Histogram accumulates a duration distribution: per-bucket tallies plus
// count, sum, min, and max. The zero value is a histogram over
// DefaultBuckets; all methods are safe for concurrent use. Observe is
// lock-free after initialization — it sits on the traced request path
// several times per request, where a mutex pair per observation is
// measurable — at the cost of Snapshot seeing a near-instant rather
// than instant cut: its N is derived from the bucket tallies so the
// cumulative-bucket invariant (+Inf == count) always holds.
type Histogram struct {
	mu      sync.Mutex // serializes init
	ready   atomic.Bool
	buckets []time.Duration // immutable once ready
	counts  []atomic.Int64  // len(buckets)+1; last is overflow
	sum     atomic.Int64    // nanoseconds
	min     atomic.Int64    // math.MaxInt64 until the first observation
	max     atomic.Int64
}

// NewHistogram creates a histogram over the given bucket upper bounds
// (which must be ascending); nil means DefaultBuckets.
func NewHistogram(buckets []time.Duration) *Histogram {
	h := &Histogram{}
	if buckets == nil {
		buckets = DefaultBuckets
	}
	h.buckets = buckets
	h.counts = make([]atomic.Int64, len(buckets)+1)
	h.min.Store(math.MaxInt64)
	h.ready.Store(true)
	return h
}

// init installs the default buckets on first use of a zero-value
// histogram.
func (h *Histogram) init() {
	if h.ready.Load() {
		return
	}
	h.mu.Lock()
	if !h.ready.Load() {
		h.buckets = DefaultBuckets
		h.counts = make([]atomic.Int64, len(DefaultBuckets)+1)
		h.min.Store(math.MaxInt64)
		h.ready.Store(true)
	}
	h.mu.Unlock()
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	h.init()
	b := h.buckets
	i := 0
	for i < len(b) && d > b[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(int64(d))
	for {
		cur := h.min.Load()
		if int64(d) >= cur || h.min.CompareAndSwap(cur, int64(d)) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if int64(d) <= cur || h.max.CompareAndSwap(cur, int64(d)) {
			break
		}
	}
}

// Merge folds a snapshot's observations into h bucket-for-bucket (the
// bucket bounds must match); it is how a per-pass histogram joins a
// cumulative series.
func (h *Histogram) Merge(s HistogramSnapshot) {
	if s.N == 0 {
		return
	}
	h.init()
	for i, c := range s.Counts {
		if i < len(h.counts) {
			h.counts[i].Add(c)
		}
	}
	for {
		cur := h.min.Load()
		if int64(s.Min) >= cur || h.min.CompareAndSwap(cur, int64(s.Min)) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if int64(s.Max) <= cur || h.max.CompareAndSwap(cur, int64(s.Max)) {
			break
		}
	}
	h.sum.Add(int64(s.Sum))
}

// Count returns the number of observations so far (the count lives in
// the bucket tallies; there is no separate counter to keep hot).
func (h *Histogram) Count() int64 {
	h.init()
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Snapshot copies the histogram's current state. N is the sum of the
// copied bucket tallies, so buckets and count are mutually consistent
// even while observations race the copy.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.init()
	s := HistogramSnapshot{
		Buckets: h.buckets,
		Counts:  make([]int64, len(h.counts)),
		Sum:     time.Duration(h.sum.Load()),
		Min:     time.Duration(h.min.Load()),
		Max:     time.Duration(h.max.Load()),
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.N += c
	}
	if s.N == 0 {
		s.Min = 0
	}
	return s
}

// String renders the histogram for logs; see HistogramSnapshot.String.
func (h *Histogram) String() string { return h.Snapshot().String() }

// HistogramSnapshot is a histogram's state at one instant, as plain
// copyable data.
type HistogramSnapshot struct {
	Buckets []time.Duration
	Counts  []int64
	N       int64
	Sum     time.Duration
	Min     time.Duration
	Max     time.Duration
}

// Sub returns the observations recorded between prev and s: counts, N,
// and Sum are subtracted; Min and Max keep s's cumulative values (the
// extremes of an interval are not recoverable from two snapshots).
func (s HistogramSnapshot) Sub(prev HistogramSnapshot) HistogramSnapshot {
	d := HistogramSnapshot{
		Buckets: s.Buckets,
		Counts:  append([]int64(nil), s.Counts...),
		N:       s.N - prev.N,
		Sum:     s.Sum - prev.Sum,
		Min:     s.Min,
		Max:     s.Max,
	}
	for i := range d.Counts {
		if i < len(prev.Counts) {
			d.Counts[i] -= prev.Counts[i]
		}
	}
	return d
}

// String renders the snapshot on one line: count, min/avg/max, and the
// per-bucket tallies. The format — including the "no pushes" empty
// case — is kept byte-identical to the DCM's original LatencyHistogram
// so cmd/dcm's pass report is stable across the migration.
func (s HistogramSnapshot) String() string {
	if s.N == 0 {
		return "no pushes"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d min=%v avg=%v max=%v [",
		s.N, s.Min.Round(time.Microsecond),
		(s.Sum / time.Duration(s.N)).Round(time.Microsecond),
		s.Max.Round(time.Microsecond))
	for i, c := range s.Counts {
		if i > 0 {
			b.WriteByte(' ')
		}
		if i < len(s.Buckets) {
			fmt.Fprintf(&b, "≤%v:%d", s.Buckets[i], c)
		} else {
			fmt.Fprintf(&b, ">%v:%d", s.Buckets[len(s.Buckets)-1], c)
		}
	}
	b.WriteByte(']')
	return b.String()
}
