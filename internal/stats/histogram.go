package stats

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// DefaultBuckets are the upper bounds of a duration histogram;
// observations above the last bound land in an overflow bucket. They
// were chosen for host-push latencies (the DCM's original histogram)
// and suit RPC latencies equally well.
var DefaultBuckets = []time.Duration{
	time.Millisecond,
	5 * time.Millisecond,
	20 * time.Millisecond,
	50 * time.Millisecond,
	100 * time.Millisecond,
	500 * time.Millisecond,
	2 * time.Second,
}

// Histogram accumulates a duration distribution: per-bucket tallies plus
// count, sum, min, and max. The zero value is a histogram over
// DefaultBuckets; all methods are safe for concurrent use.
type Histogram struct {
	mu      sync.Mutex
	buckets []time.Duration
	counts  []int64
	n       int64
	sum     time.Duration
	min     time.Duration
	max     time.Duration
}

// NewHistogram creates a histogram over the given bucket upper bounds
// (which must be ascending); nil means DefaultBuckets.
func NewHistogram(buckets []time.Duration) *Histogram {
	h := &Histogram{}
	if buckets != nil {
		h.buckets = buckets
		h.counts = make([]int64, len(buckets)+1)
	}
	return h
}

// init installs the default buckets on first use of a zero-value
// histogram; the caller holds h.mu.
func (h *Histogram) init() {
	if h.buckets == nil {
		h.buckets = DefaultBuckets
		h.counts = make([]int64, len(DefaultBuckets)+1)
	}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.init()
	i := 0
	for i < len(h.buckets) && d > h.buckets[i] {
		i++
	}
	h.counts[i]++
	h.n++
	h.sum += d
	if h.n == 1 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
}

// Merge folds a snapshot's observations into h bucket-for-bucket (the
// bucket bounds must match); it is how a per-pass histogram joins a
// cumulative series.
func (h *Histogram) Merge(s HistogramSnapshot) {
	if s.N == 0 {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.init()
	for i, c := range s.Counts {
		if i < len(h.counts) {
			h.counts[i] += c
		}
	}
	if h.n == 0 || s.Min < h.min {
		h.min = s.Min
	}
	if s.Max > h.max {
		h.max = s.Max
	}
	h.n += s.N
	h.sum += s.Sum
}

// Count returns the number of observations so far.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.init()
	s := HistogramSnapshot{
		Buckets: h.buckets,
		Counts:  append([]int64(nil), h.counts...),
		N:       h.n,
		Sum:     h.sum,
		Min:     h.min,
		Max:     h.max,
	}
	return s
}

// String renders the histogram for logs; see HistogramSnapshot.String.
func (h *Histogram) String() string { return h.Snapshot().String() }

// HistogramSnapshot is a histogram's state at one instant, as plain
// copyable data.
type HistogramSnapshot struct {
	Buckets []time.Duration
	Counts  []int64
	N       int64
	Sum     time.Duration
	Min     time.Duration
	Max     time.Duration
}

// Sub returns the observations recorded between prev and s: counts, N,
// and Sum are subtracted; Min and Max keep s's cumulative values (the
// extremes of an interval are not recoverable from two snapshots).
func (s HistogramSnapshot) Sub(prev HistogramSnapshot) HistogramSnapshot {
	d := HistogramSnapshot{
		Buckets: s.Buckets,
		Counts:  append([]int64(nil), s.Counts...),
		N:       s.N - prev.N,
		Sum:     s.Sum - prev.Sum,
		Min:     s.Min,
		Max:     s.Max,
	}
	for i := range d.Counts {
		if i < len(prev.Counts) {
			d.Counts[i] -= prev.Counts[i]
		}
	}
	return d
}

// String renders the snapshot on one line: count, min/avg/max, and the
// per-bucket tallies. The format — including the "no pushes" empty
// case — is kept byte-identical to the DCM's original LatencyHistogram
// so cmd/dcm's pass report is stable across the migration.
func (s HistogramSnapshot) String() string {
	if s.N == 0 {
		return "no pushes"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d min=%v avg=%v max=%v [",
		s.N, s.Min.Round(time.Microsecond),
		(s.Sum / time.Duration(s.N)).Round(time.Microsecond),
		s.Max.Round(time.Microsecond))
	for i, c := range s.Counts {
		if i > 0 {
			b.WriteByte(' ')
		}
		if i < len(s.Buckets) {
			fmt.Fprintf(&b, "≤%v:%d", s.Buckets[i], c)
		} else {
			fmt.Fprintf(&b, ">%v:%d", s.Buckets[len(s.Buckets)-1], c)
		}
	}
	b.WriteByte(']')
	return b.String()
}
