package hesiod

import (
	"testing"
	"time"
)

func TestParsePasswd(t *testing.T) {
	p, err := ParsePasswd("babette:*:6530:101:Harmon C Fowler,,,,:/mit/babette:/bin/csh")
	if err != nil {
		t.Fatal(err)
	}
	if p.Login != "babette" || p.UID != 6530 || p.GID != 101 ||
		p.Fullname != "Harmon C Fowler" || p.HomeDir != "/mit/babette" || p.Shell != "/bin/csh" {
		t.Errorf("parsed = %+v", p)
	}
	for _, bad := range []string{"", "a:b", "a:*:x:101:n:/h:/s"} {
		if _, err := ParsePasswd(bad); err == nil {
			t.Errorf("ParsePasswd(%q) succeeded", bad)
		}
	}
}

func TestParsePobox(t *testing.T) {
	p, err := ParsePobox("POP ATHENA-PO-2.MIT.EDU babette")
	if err != nil {
		t.Fatal(err)
	}
	if p.Type != "POP" || p.Machine != "ATHENA-PO-2.MIT.EDU" || p.Login != "babette" {
		t.Errorf("parsed = %+v", p)
	}
	if _, err := ParsePobox("POP only-two"); err == nil {
		t.Error("short pobox accepted")
	}
}

func TestParseFilsys(t *testing.T) {
	f, err := ParseFilsys("NFS /mit/aab charon w /mit/aab")
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != "NFS" || f.Name != "/mit/aab" || f.Server != "charon" ||
		f.Access != "w" || f.Mount != "/mit/aab" {
		t.Errorf("parsed = %+v", f)
	}
	if _, err := ParseFilsys("RVD too short"); err == nil {
		t.Error("short filsys accepted")
	}
}

func TestTypedNetworkResolvers(t *testing.T) {
	s := NewServer()
	err := s.LoadFiles(map[string][]byte{
		"passwd.db": []byte(`babette.passwd HS UNSPECA "babette:*:6530:101:Harmon C Fowler,,,,:/mit/babette:/bin/csh"` + "\n"),
		"uid.db":    []byte("6530.uid HS CNAME babette.passwd\n"),
		"pobox.db":  []byte(`babette.pobox HS UNSPECA "POP ATHENA-PO-2.MIT.EDU babette"` + "\n"),
		"filsys.db": []byte(`aab.filsys HS UNSPECA "NFS /mit/aab charon w /mit/aab"` + "\n"),
		"sloc.db":   []byte("HESIOD.sloc HS UNSPECA SUOMI.MIT.EDU\nHESIOD.sloc HS UNSPECA KIWI.MIT.EDU\n"),
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	a := addr.String()
	timeout := 2 * time.Second

	pw, err := GetPasswd(a, "babette", timeout)
	if err != nil || pw.UID != 6530 {
		t.Errorf("GetPasswd = %+v, %v", pw, err)
	}
	pw, err = GetPasswdByUID(a, 6530, timeout)
	if err != nil || pw.Login != "babette" {
		t.Errorf("GetPasswdByUID = %+v, %v", pw, err)
	}
	pb, err := GetPobox(a, "babette", timeout)
	if err != nil || pb.Machine != "ATHENA-PO-2.MIT.EDU" {
		t.Errorf("GetPobox = %+v, %v", pb, err)
	}
	fs, err := GetFilsys(a, "aab", timeout)
	if err != nil || len(fs) != 1 || fs[0].Server != "charon" {
		t.Errorf("GetFilsys = %+v, %v", fs, err)
	}
	locs, err := GetServiceLocations(a, "HESIOD", timeout)
	if err != nil || len(locs) != 2 {
		t.Errorf("GetServiceLocations = %+v, %v", locs, err)
	}
	if _, err := GetPasswd(a, "ghost", timeout); err == nil {
		t.Error("ghost lookup succeeded")
	}
}
