package hesiod

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Typed resolver helpers, the equivalents of the hesiod C library's
// hes_getpwnam / hes_getmailhost / hes_resolve family that the paper's
// client programs (login, attach, inc, lpr) linked against. Each parses
// one of the propagated record formats into a struct.

// Passwd is a parsed passwd.db record.
type Passwd struct {
	Login    string
	UID      int
	GID      int
	Fullname string
	HomeDir  string
	Shell    string
}

// ParsePasswd parses "login:*:uid:gid:Full Name,,,,:/mit/login:/bin/csh".
func ParsePasswd(s string) (*Passwd, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 7 {
		return nil, fmt.Errorf("hesiod: malformed passwd entry %q", s)
	}
	uid, err := strconv.Atoi(parts[2])
	if err != nil {
		return nil, fmt.Errorf("hesiod: bad uid in %q", s)
	}
	gid, err := strconv.Atoi(parts[3])
	if err != nil {
		return nil, fmt.Errorf("hesiod: bad gid in %q", s)
	}
	name := parts[4]
	if i := strings.IndexByte(name, ','); i >= 0 {
		name = name[:i]
	}
	return &Passwd{
		Login: parts[0], UID: uid, GID: gid, Fullname: name,
		HomeDir: parts[5], Shell: parts[6],
	}, nil
}

// Pobox is a parsed pobox.db record.
type Pobox struct {
	Type    string // POP
	Machine string
	Login   string
}

// ParsePobox parses "POP ATHENA-PO-2.MIT.EDU babette".
func ParsePobox(s string) (*Pobox, error) {
	f := strings.Fields(s)
	if len(f) != 3 {
		return nil, fmt.Errorf("hesiod: malformed pobox entry %q", s)
	}
	return &Pobox{Type: f[0], Machine: f[1], Login: f[2]}, nil
}

// Filsys is a parsed filsys.db record: the data `attach` needs.
type Filsys struct {
	Type   string // NFS or RVD
	Name   string // server-side directory or packname
	Server string
	Access string // r or w
	Mount  string // default client mount point
}

// ParseFilsys parses "NFS /mit/aab charon w /mit/aab".
func ParseFilsys(s string) (*Filsys, error) {
	f := strings.Fields(s)
	if len(f) != 5 {
		return nil, fmt.Errorf("hesiod: malformed filsys entry %q", s)
	}
	return &Filsys{Type: f[0], Name: f[1], Server: f[2], Access: f[3], Mount: f[4]}, nil
}

// SLoc is one service-location tuple from sloc.db.
type SLoc struct {
	Service string
	Host    string
}

// --- network helpers: one UDP lookup + typed parse ---

// GetPasswd resolves login's passwd entry from the server at addr, as
// login(1) did at session start.
func GetPasswd(addr, login string, timeout time.Duration) (*Passwd, error) {
	vals, err := Lookup(addr, login+".passwd", timeout)
	if err != nil {
		return nil, err
	}
	return ParsePasswd(vals[0])
}

// GetPasswdByUID resolves a uid through the uid.db CNAME chain.
func GetPasswdByUID(addr string, uid int, timeout time.Duration) (*Passwd, error) {
	vals, err := Lookup(addr, fmt.Sprintf("%d.uid", uid), timeout)
	if err != nil {
		return nil, err
	}
	return ParsePasswd(vals[0])
}

// GetPobox resolves a user's post office box, as inc/movemail did.
func GetPobox(addr, login string, timeout time.Duration) (*Pobox, error) {
	vals, err := Lookup(addr, login+".pobox", timeout)
	if err != nil {
		return nil, err
	}
	return ParsePobox(vals[0])
}

// GetFilsys resolves a filesystem label, as attach did. A label may have
// several entries (sorted by the database's order field).
func GetFilsys(addr, label string, timeout time.Duration) ([]*Filsys, error) {
	vals, err := Lookup(addr, label+".filsys", timeout)
	if err != nil {
		return nil, err
	}
	out := make([]*Filsys, 0, len(vals))
	for _, v := range vals {
		fs, err := ParseFilsys(v)
		if err != nil {
			return nil, err
		}
		out = append(out, fs)
	}
	return out, nil
}

// GetServiceLocations resolves which hosts run a service, as zhm and
// chpobox did with sloc data.
func GetServiceLocations(addr, service string, timeout time.Duration) ([]SLoc, error) {
	vals, err := Lookup(addr, service+".sloc", timeout)
	if err != nil {
		return nil, err
	}
	out := make([]SLoc, 0, len(vals))
	for _, v := range vals {
		out = append(out, SLoc{Service: service, Host: strings.TrimSpace(v)})
	}
	return out, nil
}
