package hesiod

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"moira/internal/clock"
	"moira/internal/db"
	"moira/internal/gen"
	"moira/internal/queries"
	"moira/internal/workload"
)

// TestGeneratedFilesAlwaysParse is the cross-module contract: everything
// the DCM's hesiod generator emits must be loadable by the nameserver —
// any format drift between producer and consumer fails here.
func TestGeneratedFilesAlwaysParse(t *testing.T) {
	d := queries.NewBootstrappedDB(clock.NewFake(time.Unix(600000000, 0)))
	if _, _, err := workload.Populate(d, workload.Scaled(300)); err != nil {
		t.Fatal(err)
	}
	res, err := gen.Hesiod(d)
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer()
	if err := s.LoadFiles(res.Files); err != nil {
		t.Fatalf("nameserver rejected generated files: %v", err)
	}
	if s.NumRecords() == 0 {
		t.Fatal("no records loaded")
	}
	// Every active user resolves through both passwd and the uid CNAME.
	d.LockShared()
	defer d.UnlockShared()
	checked := 0
	d.EachUser(func(u *db.User) bool {
		if u.Status != db.UserActive {
			return true
		}
		checked++
		if _, ok := s.Resolve(u.Login + ".passwd"); !ok {
			t.Errorf("%s.passwd unresolvable", u.Login)
			return false
		}
		if vals, ok := s.Resolve(fmt.Sprintf("%d.uid", u.UID)); !ok || !strings.HasPrefix(vals[0], u.Login+":") {
			t.Errorf("%d.uid chase failed: %v %v", u.UID, vals, ok)
			return false
		}
		return true
	})
	if checked < 300 {
		t.Errorf("checked only %d users", checked)
	}
	// Every filesystem label resolves in filsys.
	d.EachFilesys(func(f *db.Filesys) bool {
		if _, ok := s.Resolve(f.Label + ".filsys"); !ok {
			t.Errorf("%s.filsys unresolvable", f.Label)
			return false
		}
		return true
	})
}
