package hesiod

import (
	"strings"
	"testing"
	"time"
)

const sampleDB = `; lines for per-cluster info
babette.passwd HS UNSPECA "babette:*:6530:101:Harmon C Fowler,,,,:/mit/babette:/bin/csh"
6530.uid HS CNAME babette.passwd
HESIOD.sloc HS UNSPECA SUOMI.MIT.EDU
HESIOD.sloc HS UNSPECA KIWI.MIT.EDU
TOTO.cluster HS CNAME bldge40-rt.cluster
bldge40-rt.cluster HS UNSPECA "lpr e40"
`

func TestParseDB(t *testing.T) {
	recs, err := ParseDB([]byte(sampleDB))
	if err != nil {
		t.Fatal(err)
	}
	if r := recs["babette.passwd"]; r == nil || len(r.values) != 1 ||
		!strings.HasPrefix(r.values[0], "babette:*:6530") {
		t.Errorf("passwd record = %+v", recs["babette.passwd"])
	}
	if r := recs["6530.uid"]; r == nil || r.cname != "babette.passwd" {
		t.Errorf("uid record = %+v", recs["6530.uid"])
	}
	// Multiple UNSPECA records for one name accumulate.
	if r := recs["HESIOD.sloc"]; r == nil || len(r.values) != 2 {
		t.Errorf("sloc record = %+v", recs["HESIOD.sloc"])
	}
}

func TestParseDBErrors(t *testing.T) {
	for _, bad := range []string{
		"name IN UNSPECA \"x\"\n", // wrong class
		"name HS MX \"x\"\n",      // unknown type
		"justonefield\n",          // too few fields
	} {
		if _, err := ParseDB([]byte(bad)); err == nil {
			t.Errorf("ParseDB(%q) succeeded", bad)
		}
	}
}

func TestResolveAndCNAMEChasing(t *testing.T) {
	s := NewServer()
	if err := s.LoadFiles(map[string][]byte{"all.db": []byte(sampleDB)}); err != nil {
		t.Fatal(err)
	}
	vals, ok := s.Resolve("6530.uid")
	if !ok || !strings.HasPrefix(vals[0], "babette:*:") {
		t.Errorf("CNAME chase = %v, %v", vals, ok)
	}
	vals, ok = s.Resolve("TOTO.cluster")
	if !ok || vals[0] != "lpr e40" {
		t.Errorf("cluster chase = %v, %v", vals, ok)
	}
	if _, ok := s.Resolve("ghost.passwd"); ok {
		t.Error("resolved a ghost")
	}
}

func TestCNAMELoopTerminates(t *testing.T) {
	s := NewServer()
	loop := "a.x HS CNAME b.x\nb.x HS CNAME a.x\n"
	if err := s.LoadFiles(map[string][]byte{"loop.db": []byte(loop)}); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Resolve("a.x"); ok {
		t.Error("CNAME loop resolved")
	}
}

func TestUDPServerLookup(t *testing.T) {
	s := NewServer()
	if err := s.LoadFiles(map[string][]byte{"all.db": []byte(sampleDB)}); err != nil {
		t.Fatal(err)
	}
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	vals, err := Lookup(addr.String(), "babette.passwd", 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 1 || !strings.HasPrefix(vals[0], "babette:*:") {
		t.Errorf("lookup = %v", vals)
	}
	// Multi-value reply.
	vals, err = Lookup(addr.String(), "HESIOD.sloc", 2*time.Second)
	if err != nil || len(vals) != 2 {
		t.Errorf("sloc lookup = %v, %v", vals, err)
	}
	// Not found.
	if _, err := Lookup(addr.String(), "nobody.passwd", 2*time.Second); err == nil {
		t.Error("ghost lookup succeeded")
	}
}

func TestLoadFilesReplacesState(t *testing.T) {
	s := NewServer()
	s.LoadFiles(map[string][]byte{"a.db": []byte("one.x HS UNSPECA \"1\"\n")})
	s.LoadFiles(map[string][]byte{"b.db": []byte("two.x HS UNSPECA \"2\"\n")})
	if _, ok := s.Resolve("one.x"); ok {
		t.Error("stale record survived reload")
	}
	if _, ok := s.Resolve("two.x"); !ok {
		t.Error("fresh record missing")
	}
}
