// Package hesiod is a from-scratch stand-in for the Athena nameserver:
// the primary consumer of Moira's data. It serves the eleven .db files
// the DCM propagates (passwd, uid, group, gid, grplist, pobox, filsys,
// cluster, printcap, service, sloc), answering lookups like
// "babette.passwd" over UDP from an in-memory copy loaded at (re)start,
// exactly as the real server "uses these files from virtual memory on
// the target machine".
package hesiod

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"moira/internal/update"
)

// record is one name's data: either values or a CNAME referral.
type record struct {
	values []string
	cname  string
}

// Server holds the in-memory database and the UDP listener.
type Server struct {
	mu      sync.RWMutex
	records map[string]*record

	conn *net.UDPConn
	wg   sync.WaitGroup
}

// NewServer returns an empty hesiod server.
func NewServer() *Server {
	return &Server{records: make(map[string]*record)}
}

// ParseDB parses one .db file in the propagated format:
//
//	name HS UNSPECA "data"
//	name HS CNAME target
//	name HS UNSPECA bare-data      (sloc.db style, no quotes)
//
// Lines starting with ';' are comments.
func ParseDB(data []byte) (map[string]*record, error) {
	out := make(map[string]*record)
	for lineno, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, ";") {
			continue
		}
		fields := strings.SplitN(line, " ", 4)
		if len(fields) < 4 || fields[1] != "HS" {
			return nil, fmt.Errorf("hesiod: line %d: malformed record %q", lineno+1, line)
		}
		name, rtype, rest := fields[0], fields[2], fields[3]
		switch rtype {
		case "CNAME":
			out[name] = &record{cname: strings.TrimSpace(rest)}
		case "UNSPECA":
			val := strings.TrimSpace(rest)
			if strings.HasPrefix(val, "\"") && strings.HasSuffix(val, "\"") && len(val) >= 2 {
				val = val[1 : len(val)-1]
			}
			r := out[name]
			if r == nil {
				r = &record{}
				out[name] = r
			}
			r.values = append(r.values, val)
		default:
			return nil, fmt.Errorf("hesiod: line %d: unknown type %q", lineno+1, rtype)
		}
	}
	return out, nil
}

// LoadFiles replaces the server's database with the union of the given
// .db file contents, the equivalent of the restart that follows a DCM
// update.
func (s *Server) LoadFiles(files map[string][]byte) error {
	merged := make(map[string]*record)
	for name, data := range files {
		recs, err := ParseDB(data)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		for k, v := range recs {
			if old, ok := merged[k]; ok && v.cname == "" && old.cname == "" {
				old.values = append(old.values, v.values...)
			} else {
				merged[k] = v
			}
		}
	}
	s.mu.Lock()
	s.records = merged
	s.mu.Unlock()
	return nil
}

// NumRecords reports the number of loaded names.
func (s *Server) NumRecords() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.records)
}

// Resolve answers one lookup, following CNAME referrals (with a chain
// limit, as the example files CNAME machines into clusters and uids
// into passwd entries).
func (s *Server) Resolve(name string) ([]string, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for depth := 0; depth < 8; depth++ {
		r, ok := s.records[name]
		if !ok {
			return nil, false
		}
		if r.cname != "" {
			name = r.cname
			continue
		}
		return r.values, true
	}
	return nil, false
}

// Listen binds a UDP port and serves lookups in the background.
func (s *Server) Listen(addr string) (net.Addr, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, err
	}
	s.conn = conn
	s.wg.Add(1)
	go s.serve()
	return conn.LocalAddr(), nil
}

// Addr returns the bound address.
func (s *Server) Addr() net.Addr {
	if s.conn == nil {
		return nil
	}
	return s.conn.LocalAddr()
}

// Close stops the server.
func (s *Server) Close() error {
	var err error
	if s.conn != nil {
		err = s.conn.Close()
	}
	s.wg.Wait()
	return err
}

// Wire format: request is the queried name in UTF-8. Reply is one byte
// of status (0 = found, 1 = not found) followed by the values joined
// with newlines.
func (s *Server) serve() {
	defer s.wg.Done()
	buf := make([]byte, 2048)
	for {
		n, peer, err := s.conn.ReadFromUDP(buf)
		if err != nil {
			return
		}
		name := string(buf[:n])
		values, ok := s.Resolve(name)
		var reply []byte
		if !ok {
			reply = []byte{1}
		} else {
			reply = append([]byte{0}, []byte(strings.Join(values, "\n"))...)
		}
		s.conn.WriteToUDP(reply, peer)
	}
}

// Lookup is the resolver client: it queries a hesiod server over UDP.
func Lookup(addr, name string, timeout time.Duration) ([]string, error) {
	conn, err := net.Dial("udp", addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(timeout))
	if _, err := conn.Write([]byte(name)); err != nil {
		return nil, err
	}
	buf := make([]byte, 64*1024)
	n, err := conn.Read(buf)
	if err != nil {
		return nil, err
	}
	if n < 1 || buf[0] != 0 {
		return nil, fmt.Errorf("hesiod: %s: not found", name)
	}
	if n == 1 {
		return []string{""}, nil
	}
	return strings.Split(string(buf[1:n]), "\n"), nil
}

// StandardFiles is the file set a hesiod server loads after an update.
var StandardFiles = []string{
	"cluster.db", "filsys.db", "gid.db", "group.db", "grplist.db",
	"passwd.db", "pobox.db", "printcap.db", "service.db", "sloc.db", "uid.db",
}

// AttachToAgent registers the "restart_hesiod <destDir>" command on an
// update agent: it reloads the server from the freshly installed files,
// mirroring the kill-and-restart shell script of the paper.
func AttachToAgent(a *update.Agent, s *Server) {
	a.RegisterCommand("restart_hesiod", func(ag *update.Agent, args []string) error {
		if len(args) != 1 {
			return fmt.Errorf("restart_hesiod: want 1 arg, got %d", len(args))
		}
		destDir := args[0]
		files := make(map[string][]byte)
		for _, f := range StandardFiles {
			data, err := ag.ReadHostFile(destDir + "/" + f)
			if err != nil {
				return err
			}
			files[f] = data
		}
		return s.LoadFiles(files)
	})
}
