// Package protocol implements the Moira wire protocol (section 5.3): a
// remote procedure call protocol layered on top of TCP/IP. Clients
// connect to a well-known port, send requests over the stream, and
// receive replies.
//
// Each request consists of a protocol version, a major request number,
// and several counted strings of bytes. Each reply consists of the
// version, a single number (an error code), and zero or more counted
// strings — the server streams one reply frame per result tuple with the
// code MR_MORE_DATA, then a final frame carrying the overall code. The
// version field in both directions allows clean handling of version skew.
package protocol

import (
	"bufio"
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"moira/internal/mrerr"
)

// Version is the protocol version this implementation speaks. Version 2
// adds a per-request trace ID, carried as an extra counted string
// prepended to the argument list — the frame layout is unchanged, so a
// version-1 peer parses a version-2 frame cleanly and can answer
// MR_VERSION_MISMATCH without desynchronizing the stream. Version 3
// adds the Replicate major request (journal-shipping replication); the
// frame layout is again unchanged, so older peers reject it cleanly
// with MR_UNKNOWN_PROC or MR_VERSION_MISMATCH.
//
// Version 4 adds pipelining and batching. A v4 request carries a
// client-assigned tag as one more counted string (2 bytes, big-endian)
// in front of the trace ID; a v4 reply echoes the tag in the two
// previously-zero padding bytes of the reply head. Both moves keep the
// frame layout unchanged, so the v1↔v2 downgrade machinery covers v4
// unmodified: an old server parses the v4 frame cleanly, sees an
// unsupported version, and answers MR_VERSION_MISMATCH on the same
// stream. Version 4 also adds the Batch major request (N mutations in
// one frame, one commit).
//
// Version 5 adds failover: the Election major request (lease/epoch
// election RPCs between cluster nodes) and read-your-writes position
// tokens. A v5 request carries a minimum-position token (possibly
// empty; see Pos) as one more counted string between the trace ID and
// the arguments; a v5 final reply may carry fields — the commit
// position token on a successful mutation, or the current primary's
// address on MR_READONLY / MR_STALE refusals. The frame layout is once
// again unchanged, so the established downgrade machinery covers v5.
const Version uint16 = 5

// MinVersion is the oldest protocol version this implementation still
// accepts; clients fall back to it when a server rejects Version.
const MinVersion uint16 = 1

// Port is the well-known Moira server port ("T.B.S." in the paper; this
// implementation settles it).
const Port = 7760

// Major request numbers.
const (
	OpNoop       uint16 = 1 // do nothing; for RPC testing and profiling
	OpAuth       uint16 = 2 // one argument: a Kerberos authenticator blob
	OpQuery      uint16 = 3 // args: query name, then query arguments
	OpAccess     uint16 = 4 // like Query but only checks permission
	OpTriggerDCM uint16 = 5 // no arguments; spawn a DCM
	OpShutdown   uint16 = 6 // no arguments; ask the server to exit
	OpReplicate  uint16 = 7 // v3: args: last applied journal (segment, record index)
	OpBatch      uint16 = 8 // v4: N mutations in one frame; see EncodeBatch
	OpElection   uint16 = 9 // v5: cluster election RPCs (info, claim, ack)
)

// OpName names an opcode for logging.
func OpName(op uint16) string {
	switch op {
	case OpNoop:
		return "noop"
	case OpAuth:
		return "auth"
	case OpQuery:
		return "query"
	case OpAccess:
		return "access"
	case OpTriggerDCM:
		return "trigger_dcm"
	case OpShutdown:
		return "shutdown"
	case OpReplicate:
		return "replicate"
	case OpBatch:
		return "batch"
	case OpElection:
		return "election"
	default:
		return fmt.Sprintf("op%d", op)
	}
}

// Limits protecting the server from malformed or malicious frames.
const (
	MaxFrame  = 16 << 20 // one frame may not exceed 16 MB
	MaxFields = 4096     // counted strings per frame
)

// Request is one client-to-server message. TraceID, when non-empty and
// Version >= 2, rides in front of Args on the wire; version-1 requests
// cannot carry one.
//
// A span-aware caller extends the field to "traceID/spanID" (see
// package trace): the same single counted string, so a v2 peer that
// knows nothing of spans round-trips it opaquely — span-aware callees
// split it, use the bare trace ID everywhere the trace ID was used
// before (journal lines, logs, rings), and parent their spans on the
// caller's span ID.
// Tag, when Version >= 4, identifies the request within its connection
// so replies to pipelined requests can be matched back to their calls;
// the server echoes it verbatim on every reply frame of the request,
// including streamed MR_MORE_DATA tuples. Tag 0 is what a synchronous
// one-at-a-time caller uses; pipelined callers assign 1..65535.
// MinPos, when Version >= 5, is the caller's read-your-writes floor: a
// position token (Pos.String) from an earlier commit. A replica that
// has not applied up to it answers MR_STALE instead of serving stale
// data. Empty means no floor.
type Request struct {
	Version uint16
	Op      uint16
	Tag     uint16
	TraceID string
	MinPos  string
	Args    [][]byte
}

// StringArgs converts the request arguments to strings.
func (r *Request) StringArgs() []string {
	out := make([]string, len(r.Args))
	for i, a := range r.Args {
		out[i] = string(a)
	}
	return out
}

// Reply is one server-to-client message. A streamed tuple carries Code
// MR_MORE_DATA and the tuple fields; the final frame carries the overall
// result code and no fields.
// Tag echoes the tag of the request this reply answers (v4; zero on
// older versions, whose head keeps the two bytes as zero padding).
type Reply struct {
	Version uint16
	Tag     uint16
	Code    int32
	Fields  [][]byte
}

// StringFields converts the reply fields to strings.
func (r *Reply) StringFields() []string {
	out := make([]string, len(r.Fields))
	for i, f := range r.Fields {
		out[i] = string(f)
	}
	return out
}

// frame layout: u32 payloadLen | u16 version | u16 opOrPad | i32 code
// (replies only) | u32 nFields | (u32 len | bytes)*
//
// Requests and replies share the counted-string tail; requests carry the
// opcode where replies carry a zero pad plus the code field.

// writeBufs recycles frame encode buffers across calls; oversized ones
// (beyond maxPooledBuf) are dropped on return so one huge frame does not
// pin its buffer in the pool forever.
var writeBufs = sync.Pool{
	New: func() any { b := make([]byte, 0, 4096); return &b },
}

const maxPooledBuf = 1 << 20

func writeFrame(w io.Writer, head []byte, fields [][]byte) error {
	total := len(head) + 4
	for _, f := range fields {
		total += 4 + len(f)
	}
	if total > MaxFrame {
		return mrerr.MrArgTooLong
	}
	bp := writeBufs.Get().(*[]byte)
	buf := (*bp)[:0]
	buf = binary.BigEndian.AppendUint32(buf, uint32(total))
	buf = append(buf, head...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(fields)))
	for _, f := range fields {
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(f)))
		buf = append(buf, f...)
	}
	_, err := w.Write(buf)
	if cap(buf) <= maxPooledBuf {
		*bp = buf
		writeBufs.Put(bp)
	}
	return err
}

// readFrameInto parses one frame into buf (grown as needed), returning
// head and fields that alias the buffer. The caller owns the lifetime
// tradeoff: FrameReader reuses the buffer across reads (zero-copy, one
// frame live at a time), while ReadRequest/ReadReply copy every field
// out so a retained field never pins the rest of the frame.
func readFrameInto(r io.Reader, headLen int, buf []byte) (head []byte, fields [][]byte, payload []byte, err error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, nil, buf, err
	}
	total := binary.BigEndian.Uint32(lenBuf[:])
	if total > MaxFrame || int(total) < headLen+4 {
		return nil, nil, buf, fmt.Errorf("protocol: bad frame length %d", total)
	}
	if uint32(cap(buf)) < total {
		buf = make([]byte, total)
	}
	buf = buf[:total]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, nil, buf, err
	}
	head = buf[:headLen]
	rest := buf[headLen:]
	n := binary.BigEndian.Uint32(rest[:4])
	if n > MaxFields {
		return nil, nil, buf, fmt.Errorf("protocol: too many fields (%d)", n)
	}
	rest = rest[4:]
	fields = make([][]byte, 0, n)
	for i := uint32(0); i < n; i++ {
		if len(rest) < 4 {
			return nil, nil, buf, fmt.Errorf("protocol: truncated field header")
		}
		fl := binary.BigEndian.Uint32(rest[:4])
		rest = rest[4:]
		if uint32(len(rest)) < fl {
			return nil, nil, buf, fmt.Errorf("protocol: truncated field body")
		}
		fields = append(fields, rest[:fl:fl])
		rest = rest[fl:]
	}
	if len(rest) != 0 {
		return nil, nil, buf, fmt.Errorf("protocol: %d trailing bytes in frame", len(rest))
	}
	return head, fields, buf, nil
}

func readFrame(r io.Reader, headLen int) (head []byte, fields [][]byte, err error) {
	head, fields, _, err = readFrameInto(r, headLen, nil)
	if err != nil {
		return nil, nil, err
	}
	// Copy every field into its own allocation: the parsed fields alias
	// the whole frame payload, and handing those aliases out means a
	// caller that keeps one small field (a journal line, a trace ring
	// entry) silently pins up to MaxFrame bytes for as long as it lives.
	hc := append([]byte(nil), head...)
	for i, f := range fields {
		fields[i] = append([]byte(nil), f...)
	}
	return hc, fields, nil
}

// WriteRequest sends one request frame. A version >= 2 request carries
// its trace ID (possibly empty) as the first counted string; a version
// >= 4 request carries its tag (2 bytes, big-endian) as one more
// counted string in front of the trace ID.
func WriteRequest(w io.Writer, req *Request) error {
	var head [4]byte
	binary.BigEndian.PutUint16(head[0:2], req.Version)
	binary.BigEndian.PutUint16(head[2:4], req.Op)
	args := req.Args
	if req.Version >= 2 {
		args = make([][]byte, 0, len(req.Args)+3)
		if req.Version >= 4 {
			var tag [2]byte
			binary.BigEndian.PutUint16(tag[:], req.Tag)
			args = append(args, tag[:])
		}
		args = append(args, []byte(req.TraceID))
		if req.Version >= 5 {
			args = append(args, []byte(req.MinPos))
		}
		args = append(args, req.Args...)
	}
	return writeFrame(w, head[:], args)
}

// parseRequest interprets a parsed frame as a request, splitting off the
// tag (v4+) and trace ID (v2+) pseudo-arguments.
func parseRequest(head []byte, fields [][]byte) (*Request, error) {
	req := &Request{
		Version: binary.BigEndian.Uint16(head[0:2]),
		Op:      binary.BigEndian.Uint16(head[2:4]),
		Args:    fields,
	}
	if req.Version >= 4 {
		switch {
		case len(fields) > 0 && len(fields[0]) == 2:
			req.Tag = binary.BigEndian.Uint16(fields[0])
			fields = fields[1:]
			req.Args = fields
		case req.Version <= Version:
			return nil, fmt.Errorf("protocol: v%d request without a tag field", req.Version)
		default:
			// A version beyond ours with an unrecognized layout: leave the
			// arguments raw so the caller can answer MR_VERSION_MISMATCH
			// instead of dropping the connection.
			return req, nil
		}
	}
	if req.Version >= 2 && len(fields) > 0 {
		req.TraceID = string(fields[0])
		fields = fields[1:]
		req.Args = fields
	}
	if req.Version >= 5 && len(fields) > 0 {
		req.MinPos = string(fields[0])
		req.Args = fields[1:]
	}
	return req, nil
}

// ReadRequest reads one request frame, splitting off the trace ID when
// the peer spoke version 2 or later and the tag for version 4. Every
// argument is its own allocation; retaining one does not retain the
// frame. Hot loops that never keep arguments past the next read should
// use FrameReader instead.
func ReadRequest(r *bufio.Reader) (*Request, error) {
	head, fields, err := readFrame(r, 4)
	if err != nil {
		return nil, err
	}
	return parseRequest(head, fields)
}

// WriteReply sends one reply frame. A version >= 4 reply carries the
// request tag in the two head bytes that older versions keep as zero
// padding — zero extra bytes on the wire, and pre-v4 peers never read
// them.
func WriteReply(w io.Writer, rep *Reply) error {
	var head [8]byte
	binary.BigEndian.PutUint16(head[0:2], rep.Version)
	if rep.Version >= 4 {
		binary.BigEndian.PutUint16(head[2:4], rep.Tag)
	}
	binary.BigEndian.PutUint32(head[4:8], uint32(rep.Code))
	return writeFrame(w, head[:], rep.Fields)
}

func parseReply(head []byte, fields [][]byte) *Reply {
	rep := &Reply{
		Version: binary.BigEndian.Uint16(head[0:2]),
		Code:    int32(binary.BigEndian.Uint32(head[4:8])),
		Fields:  fields,
	}
	if rep.Version >= 4 {
		rep.Tag = binary.BigEndian.Uint16(head[2:4])
	}
	return rep
}

// ReadReply reads one reply frame. Every field is its own allocation;
// retaining one does not retain the frame.
func ReadReply(r *bufio.Reader) (*Reply, error) {
	head, fields, err := readFrame(r, 8)
	if err != nil {
		return nil, err
	}
	return parseReply(head, fields), nil
}

// BytesArgs converts string arguments for a Request.
func BytesArgs(args []string) [][]byte {
	out := make([][]byte, len(args))
	for i, a := range args {
		out[i] = []byte(a)
	}
	return out
}

// Trace IDs: a random per-process prefix plus a sequence number keeps
// IDs globally unique without paying for crypto randomness per request.
var (
	tracePrefix = func() string {
		var b [4]byte
		if _, err := rand.Read(b[:]); err != nil {
			// Fall back to a fixed prefix; IDs stay process-unique.
			return "t00000000"
		}
		return fmt.Sprintf("t%08x", binary.BigEndian.Uint32(b[:]))
	}()
	traceSeq atomic.Uint64
)

// NewTraceID returns a fresh trace ID, unique across processes with
// overwhelming probability and cheap enough to mint per request.
func NewTraceID() string {
	return fmt.Sprintf("%s-%d", tracePrefix, traceSeq.Add(1))
}
