// Package protocol implements the Moira wire protocol (section 5.3): a
// remote procedure call protocol layered on top of TCP/IP. Clients
// connect to a well-known port, send requests over the stream, and
// receive replies.
//
// Each request consists of a protocol version, a major request number,
// and several counted strings of bytes. Each reply consists of the
// version, a single number (an error code), and zero or more counted
// strings — the server streams one reply frame per result tuple with the
// code MR_MORE_DATA, then a final frame carrying the overall code. The
// version field in both directions allows clean handling of version skew.
package protocol

import (
	"bufio"
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"io"
	"sync/atomic"

	"moira/internal/mrerr"
)

// Version is the protocol version this implementation speaks. Version 2
// adds a per-request trace ID, carried as an extra counted string
// prepended to the argument list — the frame layout is unchanged, so a
// version-1 peer parses a version-2 frame cleanly and can answer
// MR_VERSION_MISMATCH without desynchronizing the stream. Version 3
// adds the Replicate major request (journal-shipping replication); the
// frame layout is again unchanged, so older peers reject it cleanly
// with MR_UNKNOWN_PROC or MR_VERSION_MISMATCH.
const Version uint16 = 3

// MinVersion is the oldest protocol version this implementation still
// accepts; clients fall back to it when a server rejects Version.
const MinVersion uint16 = 1

// Port is the well-known Moira server port ("T.B.S." in the paper; this
// implementation settles it).
const Port = 7760

// Major request numbers.
const (
	OpNoop       uint16 = 1 // do nothing; for RPC testing and profiling
	OpAuth       uint16 = 2 // one argument: a Kerberos authenticator blob
	OpQuery      uint16 = 3 // args: query name, then query arguments
	OpAccess     uint16 = 4 // like Query but only checks permission
	OpTriggerDCM uint16 = 5 // no arguments; spawn a DCM
	OpShutdown   uint16 = 6 // no arguments; ask the server to exit
	OpReplicate  uint16 = 7 // v3: args: last applied journal (segment, record index)
)

// OpName names an opcode for logging.
func OpName(op uint16) string {
	switch op {
	case OpNoop:
		return "noop"
	case OpAuth:
		return "auth"
	case OpQuery:
		return "query"
	case OpAccess:
		return "access"
	case OpTriggerDCM:
		return "trigger_dcm"
	case OpShutdown:
		return "shutdown"
	case OpReplicate:
		return "replicate"
	default:
		return fmt.Sprintf("op%d", op)
	}
}

// Limits protecting the server from malformed or malicious frames.
const (
	MaxFrame  = 16 << 20 // one frame may not exceed 16 MB
	MaxFields = 4096     // counted strings per frame
)

// Request is one client-to-server message. TraceID, when non-empty and
// Version >= 2, rides in front of Args on the wire; version-1 requests
// cannot carry one.
//
// A span-aware caller extends the field to "traceID/spanID" (see
// package trace): the same single counted string, so a v2 peer that
// knows nothing of spans round-trips it opaquely — span-aware callees
// split it, use the bare trace ID everywhere the trace ID was used
// before (journal lines, logs, rings), and parent their spans on the
// caller's span ID.
type Request struct {
	Version uint16
	Op      uint16
	TraceID string
	Args    [][]byte
}

// StringArgs converts the request arguments to strings.
func (r *Request) StringArgs() []string {
	out := make([]string, len(r.Args))
	for i, a := range r.Args {
		out[i] = string(a)
	}
	return out
}

// Reply is one server-to-client message. A streamed tuple carries Code
// MR_MORE_DATA and the tuple fields; the final frame carries the overall
// result code and no fields.
type Reply struct {
	Version uint16
	Code    int32
	Fields  [][]byte
}

// StringFields converts the reply fields to strings.
func (r *Reply) StringFields() []string {
	out := make([]string, len(r.Fields))
	for i, f := range r.Fields {
		out[i] = string(f)
	}
	return out
}

// frame layout: u32 payloadLen | u16 version | u16 opOrPad | i32 code
// (replies only) | u32 nFields | (u32 len | bytes)*
//
// Requests and replies share the counted-string tail; requests carry the
// opcode where replies carry a zero pad plus the code field.

func writeFrame(w io.Writer, head []byte, fields [][]byte) error {
	total := len(head) + 4
	for _, f := range fields {
		total += 4 + len(f)
	}
	if total > MaxFrame {
		return mrerr.MrArgTooLong
	}
	buf := make([]byte, 0, 4+total)
	buf = binary.BigEndian.AppendUint32(buf, uint32(total))
	buf = append(buf, head...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(fields)))
	for _, f := range fields {
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(f)))
		buf = append(buf, f...)
	}
	_, err := w.Write(buf)
	return err
}

func readFrame(r io.Reader, headLen int) (head []byte, fields [][]byte, err error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, nil, err
	}
	total := binary.BigEndian.Uint32(lenBuf[:])
	if total > MaxFrame || int(total) < headLen+4 {
		return nil, nil, fmt.Errorf("protocol: bad frame length %d", total)
	}
	payload := make([]byte, total)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, nil, err
	}
	head = payload[:headLen]
	rest := payload[headLen:]
	n := binary.BigEndian.Uint32(rest[:4])
	if n > MaxFields {
		return nil, nil, fmt.Errorf("protocol: too many fields (%d)", n)
	}
	rest = rest[4:]
	fields = make([][]byte, 0, n)
	for i := uint32(0); i < n; i++ {
		if len(rest) < 4 {
			return nil, nil, fmt.Errorf("protocol: truncated field header")
		}
		fl := binary.BigEndian.Uint32(rest[:4])
		rest = rest[4:]
		if uint32(len(rest)) < fl {
			return nil, nil, fmt.Errorf("protocol: truncated field body")
		}
		fields = append(fields, rest[:fl:fl])
		rest = rest[fl:]
	}
	if len(rest) != 0 {
		return nil, nil, fmt.Errorf("protocol: %d trailing bytes in frame", len(rest))
	}
	return head, fields, nil
}

// WriteRequest sends one request frame. A version >= 2 request carries
// its trace ID (possibly empty) as the first counted string.
func WriteRequest(w io.Writer, req *Request) error {
	var head [4]byte
	binary.BigEndian.PutUint16(head[0:2], req.Version)
	binary.BigEndian.PutUint16(head[2:4], req.Op)
	args := req.Args
	if req.Version >= 2 {
		args = make([][]byte, 0, len(req.Args)+1)
		args = append(args, []byte(req.TraceID))
		args = append(args, req.Args...)
	}
	return writeFrame(w, head[:], args)
}

// ReadRequest reads one request frame, splitting off the trace ID when
// the peer spoke version 2 or later.
func ReadRequest(r *bufio.Reader) (*Request, error) {
	head, fields, err := readFrame(r, 4)
	if err != nil {
		return nil, err
	}
	req := &Request{
		Version: binary.BigEndian.Uint16(head[0:2]),
		Op:      binary.BigEndian.Uint16(head[2:4]),
		Args:    fields,
	}
	if req.Version >= 2 && len(fields) > 0 {
		req.TraceID = string(fields[0])
		req.Args = fields[1:]
	}
	return req, nil
}

// WriteReply sends one reply frame.
func WriteReply(w io.Writer, rep *Reply) error {
	var head [8]byte
	binary.BigEndian.PutUint16(head[0:2], rep.Version)
	// head[2:4] is padding, kept zero.
	binary.BigEndian.PutUint32(head[4:8], uint32(rep.Code))
	return writeFrame(w, head[:], rep.Fields)
}

// ReadReply reads one reply frame.
func ReadReply(r *bufio.Reader) (*Reply, error) {
	head, fields, err := readFrame(r, 8)
	if err != nil {
		return nil, err
	}
	return &Reply{
		Version: binary.BigEndian.Uint16(head[0:2]),
		Code:    int32(binary.BigEndian.Uint32(head[4:8])),
		Fields:  fields,
	}, nil
}

// BytesArgs converts string arguments for a Request.
func BytesArgs(args []string) [][]byte {
	out := make([][]byte, len(args))
	for i, a := range args {
		out[i] = []byte(a)
	}
	return out
}

// Trace IDs: a random per-process prefix plus a sequence number keeps
// IDs globally unique without paying for crypto randomness per request.
var (
	tracePrefix = func() string {
		var b [4]byte
		if _, err := rand.Read(b[:]); err != nil {
			// Fall back to a fixed prefix; IDs stay process-unique.
			return "t00000000"
		}
		return fmt.Sprintf("t%08x", binary.BigEndian.Uint32(b[:]))
	}()
	traceSeq atomic.Uint64
)

// NewTraceID returns a fresh trace ID, unique across processes with
// overwhelming probability and cheap enough to mint per request.
func NewTraceID() string {
	return fmt.Sprintf("%s-%d", tracePrefix, traceSeq.Add(1))
}
