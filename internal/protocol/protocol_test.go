package protocol

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"testing"
	"testing/quick"

	"moira/internal/mrerr"
)

func TestRequestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	req := &Request{Version: Version, Op: OpQuery,
		Args: [][]byte{[]byte("get_user_by_login"), []byte("babette")}}
	if err := WriteRequest(&buf, req); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRequest(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != Version || got.Op != OpQuery {
		t.Errorf("head = %+v", got)
	}
	args := got.StringArgs()
	if len(args) != 2 || args[0] != "get_user_by_login" || args[1] != "babette" {
		t.Errorf("args = %v", args)
	}
}

func TestReplyRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	rep := &Reply{Version: Version, Code: int32(mrerr.MrMoreData),
		Fields: [][]byte{[]byte("babette"), []byte("6530"), nil}}
	if err := WriteReply(&buf, rep); err != nil {
		t.Fatal(err)
	}
	got, err := ReadReply(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if got.Code != int32(mrerr.MrMoreData) {
		t.Errorf("code = %d", got.Code)
	}
	if f := got.StringFields(); len(f) != 3 || f[0] != "babette" || f[2] != "" {
		t.Errorf("fields = %v", f)
	}
}

func TestNegativeCodeSurvives(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteReply(&buf, &Reply{Version: Version, Code: -42}); err != nil {
		t.Fatal(err)
	}
	got, err := ReadReply(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if got.Code != -42 {
		t.Errorf("code = %d", got.Code)
	}
}

func TestEmptyArgsAndBinaryData(t *testing.T) {
	var buf bytes.Buffer
	bin := []byte{0, 1, 2, 255, 254, '\n', ':'}
	if err := WriteRequest(&buf, &Request{Version: Version, Op: OpAuth, Args: [][]byte{bin}}); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRequest(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Args[0], bin) {
		t.Errorf("binary arg = %v", got.Args[0])
	}

	buf.Reset()
	if err := WriteRequest(&buf, &Request{Version: Version, Op: OpNoop}); err != nil {
		t.Fatal(err)
	}
	got, err = ReadRequest(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Args) != 0 {
		t.Errorf("noop args = %v", got.Args)
	}
}

func TestPipelinedFrames(t *testing.T) {
	var buf bytes.Buffer
	for i := 0; i < 5; i++ {
		if err := WriteRequest(&buf, &Request{Version: Version, Op: OpNoop}); err != nil {
			t.Fatal(err)
		}
	}
	r := bufio.NewReader(&buf)
	for i := 0; i < 5; i++ {
		if _, err := ReadRequest(r); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
	}
}

func TestMalformedFrames(t *testing.T) {
	// Oversized declared length.
	var buf bytes.Buffer
	binary.Write(&buf, binary.BigEndian, uint32(MaxFrame+1))
	if _, err := ReadRequest(bufio.NewReader(&buf)); err == nil {
		t.Error("oversized frame accepted")
	}
	// Truncated payload.
	buf.Reset()
	binary.Write(&buf, binary.BigEndian, uint32(100))
	buf.WriteString("short")
	if _, err := ReadRequest(bufio.NewReader(&buf)); err == nil {
		t.Error("truncated frame accepted")
	}
	// Field length lies.
	buf.Reset()
	payload := make([]byte, 0)
	payload = binary.BigEndian.AppendUint16(payload, uint16(Version))
	payload = binary.BigEndian.AppendUint16(payload, OpNoop)
	payload = binary.BigEndian.AppendUint32(payload, 1)    // one field
	payload = binary.BigEndian.AppendUint32(payload, 1000) // of length 1000
	payload = append(payload, 'x')                         // but only 1 byte
	binary.Write(&buf, binary.BigEndian, uint32(len(payload)))
	buf.Write(payload)
	if _, err := ReadRequest(bufio.NewReader(&buf)); err == nil {
		t.Error("lying field length accepted")
	}
	// Trailing garbage.
	buf.Reset()
	payload = payload[:8] // version+op+nfields(=1) ... rewrite with 0 fields
	payload = payload[:0]
	payload = binary.BigEndian.AppendUint16(payload, uint16(Version))
	payload = binary.BigEndian.AppendUint16(payload, OpNoop)
	payload = binary.BigEndian.AppendUint32(payload, 0)
	payload = append(payload, 0xde, 0xad)
	binary.Write(&buf, binary.BigEndian, uint32(len(payload)))
	buf.Write(payload)
	if _, err := ReadRequest(bufio.NewReader(&buf)); err == nil {
		t.Error("trailing garbage accepted")
	}
}

func TestPropertyRequestRoundTrip(t *testing.T) {
	f := func(op uint16, args [][]byte) bool {
		if len(args) > 64 {
			args = args[:64]
		}
		total := 0
		for _, a := range args {
			total += len(a)
		}
		if total > 1<<20 {
			return true
		}
		var buf bytes.Buffer
		if err := WriteRequest(&buf, &Request{Version: Version, Op: op, Args: args}); err != nil {
			return false
		}
		got, err := ReadRequest(bufio.NewReader(&buf))
		if err != nil || got.Op != op || len(got.Args) != len(args) {
			return false
		}
		for i := range args {
			if !bytes.Equal(got.Args[i], args[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOpNames(t *testing.T) {
	for op, want := range map[uint16]string{
		OpNoop: "noop", OpAuth: "auth", OpQuery: "query",
		OpAccess: "access", OpTriggerDCM: "trigger_dcm", OpShutdown: "shutdown",
		99: "op99",
	} {
		if got := OpName(op); got != want {
			t.Errorf("OpName(%d) = %q, want %q", op, got, want)
		}
	}
}

func BenchmarkFrameRoundTrip(b *testing.B) {
	req := &Request{Version: Version, Op: OpQuery,
		Args: [][]byte{[]byte("get_user_by_login"), []byte("babette")}}
	var buf bytes.Buffer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := WriteRequest(&buf, req); err != nil {
			b.Fatal(err)
		}
		if _, err := ReadRequest(bufio.NewReader(&buf)); err != nil {
			b.Fatal(err)
		}
	}
}
