package protocol

import (
	"bufio"
	"bytes"
	"strings"
	"testing"
)

func TestTraceIDRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	req := &Request{Version: Version, Op: OpQuery, TraceID: "t1234-7",
		Args: [][]byte{[]byte("get_user_by_login"), []byte("babette")}}
	if err := WriteRequest(&buf, req); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRequest(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if got.TraceID != "t1234-7" {
		t.Errorf("trace = %q", got.TraceID)
	}
	if args := got.StringArgs(); len(args) != 2 || args[0] != "get_user_by_login" {
		t.Errorf("args = %v", args)
	}
}

// TestOldClientAgainstNewReader verifies the backward-compat story in
// one direction: a pre-trace-field (version 1) request parses cleanly
// under the new reader, with its arguments intact and no trace ID.
func TestOldClientAgainstNewReader(t *testing.T) {
	var buf bytes.Buffer
	req := &Request{Version: 1, Op: OpQuery,
		Args: [][]byte{[]byte("get_server_info"), []byte("*")}}
	if err := WriteRequest(&buf, req); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRequest(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != 1 || got.TraceID != "" {
		t.Errorf("head = %+v", got)
	}
	if args := got.StringArgs(); len(args) != 2 || args[0] != "get_server_info" || args[1] != "*" {
		t.Errorf("args = %v", args)
	}
}

// TestNewClientAgainstOldReader verifies the other direction: a
// version-2 frame is structurally valid for a version-1 parser — the
// trace ID shows up as an extra leading argument, so an old server can
// read the frame, notice the version, and reply MR_VERSION_MISMATCH
// without the connection desynchronizing.
func TestNewClientAgainstOldReader(t *testing.T) {
	var buf bytes.Buffer
	req := &Request{Version: Version, Op: OpQuery, TraceID: "trace-99",
		Args: [][]byte{[]byte("get_user_by_login"), []byte("root")}}
	if err := WriteRequest(&buf, req); err != nil {
		t.Fatal(err)
	}
	// A version-1 reader is today's reader minus the pseudo-argument
	// splits: the raw frame must parse with the v4 tag as fields[0], the
	// trace as fields[1], and the v5 position token as fields[2].
	head, fields, err := readFrame(bufio.NewReader(&buf), 4)
	if err != nil {
		t.Fatal(err)
	}
	_ = head
	if len(fields) != 5 || len(fields[0]) != 2 ||
		string(fields[1]) != "trace-99" || string(fields[2]) != "" ||
		string(fields[3]) != "get_user_by_login" {
		t.Errorf("raw fields = %q", fields)
	}
}

func TestEmptyTraceOnV2(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteRequest(&buf, &Request{Version: Version, Op: OpNoop}); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRequest(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if got.TraceID != "" || len(got.Args) != 0 {
		t.Errorf("got = %+v", got)
	}
}

func TestNewTraceIDUnique(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		id := NewTraceID()
		if seen[id] {
			t.Fatalf("duplicate trace ID %q", id)
		}
		if !strings.HasPrefix(id, "t") || !strings.Contains(id, "-") {
			t.Fatalf("malformed trace ID %q", id)
		}
		seen[id] = true
	}
}
