package protocol

import (
	"fmt"
	"strconv"
)

// BatchItem is one mutation inside an OpBatch request: a query name and
// its arguments, exactly as they would have gone into one OpQuery.
type BatchItem struct {
	Name string
	Args []string
}

// Batch wire shape (v4, inside the counted-string argument list of one
// OpBatch request, after the tag and trace pseudo-arguments):
//
//	itemCount | (name | argCount | arg...)*
//
// with itemCount and argCount as decimal strings. The per-item result
// codes come back as the fields of a single MR_MORE_DATA reply frame,
// one decimal code per item in submission order, followed by the usual
// final frame carrying the overall code.

// EncodeBatch flattens items into OpBatch request arguments.
func EncodeBatch(items []BatchItem) []string {
	out := make([]string, 0, 1+2*len(items))
	out = append(out, strconv.Itoa(len(items)))
	for _, it := range items {
		out = append(out, it.Name, strconv.Itoa(len(it.Args)))
		out = append(out, it.Args...)
	}
	return out
}

// DecodeBatch parses OpBatch request arguments back into items. Args
// may alias a transient frame buffer; every byte the items need is
// copied out by the string conversions here.
func DecodeBatch(args [][]byte) ([]BatchItem, error) {
	if len(args) == 0 {
		return nil, fmt.Errorf("protocol: empty batch")
	}
	n, err := strconv.Atoi(string(args[0]))
	if err != nil || n < 0 {
		return nil, fmt.Errorf("protocol: bad batch item count %q", args[0])
	}
	args = args[1:]
	items := make([]BatchItem, 0, n)
	for i := 0; i < n; i++ {
		if len(args) < 2 {
			return nil, fmt.Errorf("protocol: truncated batch item %d", i)
		}
		name := string(args[0])
		argc, err := strconv.Atoi(string(args[1]))
		if err != nil || argc < 0 || argc > len(args)-2 {
			return nil, fmt.Errorf("protocol: bad argument count %q in batch item %d", args[1], i)
		}
		item := BatchItem{Name: name, Args: make([]string, argc)}
		for j := 0; j < argc; j++ {
			item.Args[j] = string(args[2+j])
		}
		items = append(items, item)
		args = args[2+argc:]
	}
	if len(args) != 0 {
		return nil, fmt.Errorf("protocol: %d trailing batch arguments", len(args))
	}
	return items, nil
}

// EncodeBatchCodes renders per-item result codes as reply fields.
func EncodeBatchCodes(codes []int32) [][]byte {
	out := make([][]byte, len(codes))
	for i, c := range codes {
		out[i] = []byte(strconv.FormatInt(int64(c), 10))
	}
	return out
}

// DecodeBatchCodes parses the per-item code fields of a batch reply.
func DecodeBatchCodes(fields [][]byte) ([]int32, error) {
	out := make([]int32, len(fields))
	for i, f := range fields {
		v, err := strconv.ParseInt(string(f), 10, 32)
		if err != nil {
			return nil, fmt.Errorf("protocol: bad batch code %q", f)
		}
		out[i] = int32(v)
	}
	return out, nil
}
