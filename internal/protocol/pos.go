package protocol

import (
	"fmt"
	"strconv"
	"strings"
)

// Pos is a journal commit position token: the epoch of the primary
// that committed it plus the (segment, record-index) position the
// commit occupies in the replicated journal. Tokens are minted by the
// server on successful v5 mutations and presented back by clients on
// reads (Request.MinPos) for read-your-writes consistency: a node that
// has not applied the journal up to the token refuses the read with
// MR_STALE rather than serve data older than the caller's own write.
//
// Positions from different epochs stay comparable because replicas
// mirror the primary's segment numbering and a commit token is only
// minted once at least one replica acknowledged the position — every
// elected primary therefore holds every tokened commit.
type Pos struct {
	Epoch int64
	Seg   int64
	Idx   int64
}

// IsZero reports whether p is the zero position (no token).
func (p Pos) IsZero() bool { return p == Pos{} }

// String renders the wire form "epoch.seg.idx".
func (p Pos) String() string {
	return strconv.FormatInt(p.Epoch, 10) + "." +
		strconv.FormatInt(p.Seg, 10) + "." +
		strconv.FormatInt(p.Idx, 10)
}

// ParsePos parses a wire token. Malformed tokens report ok=false; the
// empty string is the valid "no floor" token and parses to the zero Pos.
func ParsePos(s string) (Pos, bool) {
	if s == "" {
		return Pos{}, true
	}
	parts := strings.Split(s, ".")
	if len(parts) != 3 {
		return Pos{}, false
	}
	var v [3]int64
	for i, part := range parts {
		n, err := strconv.ParseInt(part, 10, 64)
		if err != nil || n < 0 {
			return Pos{}, false
		}
		v[i] = n
	}
	return Pos{Epoch: v[0], Seg: v[1], Idx: v[2]}, true
}

// Covers reports whether a node whose applied position is (seg, idx) —
// idx being the count of applied records in segment seg, i.e. the next
// index wanted — has applied everything the token p names.
func (p Pos) Covers(seg, idx int64) bool {
	if seg > p.Seg {
		return true
	}
	return seg == p.Seg && idx > p.Idx
}

func (p Pos) GoString() string { return fmt.Sprintf("protocol.Pos{%d,%d,%d}", p.Epoch, p.Seg, p.Idx) }
