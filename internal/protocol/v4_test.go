package protocol

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"io"
	"runtime"
	"testing"

	"moira/internal/mrerr"
)

func TestTagRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	req := &Request{Version: Version, Op: OpQuery, Tag: 41799, TraceID: "t1-1",
		Args: [][]byte{[]byte("get_machine"), []byte("X")}}
	if err := WriteRequest(&buf, req); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRequest(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if got.Tag != 41799 || got.TraceID != "t1-1" {
		t.Errorf("tag=%d trace=%q", got.Tag, got.TraceID)
	}
	if args := got.StringArgs(); len(args) != 2 || args[0] != "get_machine" {
		t.Errorf("args = %v", args)
	}

	for _, rep := range []*Reply{
		{Version: Version, Tag: 7, Code: int32(mrerr.MrMoreData), Fields: [][]byte{[]byte("f")}},
		{Version: Version, Tag: 65535, Code: 0},
	} {
		buf.Reset()
		if err := WriteReply(&buf, rep); err != nil {
			t.Fatal(err)
		}
		got, err := ReadReply(bufio.NewReader(&buf))
		if err != nil {
			t.Fatal(err)
		}
		if got.Tag != rep.Tag || got.Code != rep.Code {
			t.Errorf("got tag=%d code=%d, want tag=%d code=%d", got.Tag, got.Code, rep.Tag, rep.Code)
		}
	}
}

// TestPreV4ReplyPadStaysZero pins the compat contract for the reply
// head: pre-v4 replies must keep the two pad bytes zero even if a
// confused caller sets Tag, so old readers see byte-identical frames.
func TestPreV4ReplyPadStaysZero(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteReply(&buf, &Reply{Version: 2, Tag: 99, Code: 0}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// u32 len | u16 version | u16 pad | ...
	if pad := binary.BigEndian.Uint16(raw[6:8]); pad != 0 {
		t.Errorf("v2 reply pad = %d, want 0", pad)
	}
	got, err := ReadReply(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if got.Tag != 0 {
		t.Errorf("v2 reply read back tag %d", got.Tag)
	}
}

func TestBatchRoundTrip(t *testing.T) {
	items := []BatchItem{
		{Name: "add_user", Args: []string{"babette", "501", "staff"}},
		{Name: "add_machine", Args: []string{"vax1.mit.edu", "VAX"}},
		{Name: "noargs"},
	}
	args := EncodeBatch(items)
	back, err := DecodeBatch(BytesArgs(args))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(items) {
		t.Fatalf("got %d items", len(back))
	}
	for i := range items {
		if back[i].Name != items[i].Name || len(back[i].Args) != len(items[i].Args) {
			t.Errorf("item %d = %+v, want %+v", i, back[i], items[i])
		}
		for j := range items[i].Args {
			if back[i].Args[j] != items[i].Args[j] {
				t.Errorf("item %d arg %d = %q", i, j, back[i].Args[j])
			}
		}
	}

	codes := []int32{0, int32(mrerr.MrExists), int32(mrerr.MrPerm)}
	codesBack, err := DecodeBatchCodes(EncodeBatchCodes(codes))
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range codes {
		if codesBack[i] != c {
			t.Errorf("code %d = %d, want %d", i, codesBack[i], c)
		}
	}
}

func TestDecodeBatchMalformed(t *testing.T) {
	cases := [][]string{
		{},                               // empty
		{"x"},                            // bad count
		{"-1"},                           // negative count
		{"2", "add_user", "0"},           // truncated item list
		{"1", "add_user", "3", "a"},      // argc beyond args
		{"1", "add_user", "x", "a"},      // bad argc
		{"1", "add_user", "1", "a", "b"}, // trailing args
	}
	for i, c := range cases {
		if _, err := DecodeBatch(BytesArgs(c)); err == nil {
			t.Errorf("case %d (%q): no error", i, c)
		}
	}
	if _, err := DecodeBatchCodes([][]byte{[]byte("zero")}); err == nil {
		t.Error("bad code accepted")
	}
}

// TestFieldCopyNoFramePinning is the satellite-3 regression: keeping
// one small field from a large frame must not pin the frame. Before the
// fix, fields aliased the full payload allocation, so eight retained
// 16-byte fields below would hold eight 8 MB payloads (~64 MB) live.
func TestFieldCopyNoFramePinning(t *testing.T) {
	const frames, big = 8, 8 << 20
	mkFrame := func() []byte {
		var buf bytes.Buffer
		err := WriteReply(&buf, &Reply{Version: Version, Code: int32(mrerr.MrMoreData),
			Fields: [][]byte{bytes.Repeat([]byte("k"), 16), make([]byte, big)}})
		if err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	var keep [][]byte
	heap := func() uint64 {
		runtime.GC()
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return ms.HeapAlloc
	}
	before := heap()
	for i := 0; i < frames; i++ {
		rep, err := ReadReply(bufio.NewReader(bytes.NewReader(mkFrame())))
		if err != nil {
			t.Fatal(err)
		}
		keep = append(keep, rep.Fields[0]) // tiny field only
	}
	delta := int64(heap()) - int64(before)
	if delta > 2*big {
		t.Errorf("retaining %d tiny fields holds %d bytes live; fields are pinning their frames", frames, delta)
	}
	runtime.KeepAlive(keep)
}

// TestFrameReaderZeroCopy exercises the server-side fast path: argument
// bytes alias the reused buffer and stay valid until the next read, and
// an oversized frame does not leave its buffer cached on the reader.
func TestFrameReaderZeroCopy(t *testing.T) {
	var buf bytes.Buffer
	for _, q := range []string{"first", "second"} {
		err := WriteRequest(&buf, &Request{Version: Version, Op: OpQuery, Tag: 3,
			TraceID: "t-fr", Args: [][]byte{[]byte(q)}})
		if err != nil {
			t.Fatal(err)
		}
	}
	fr := NewFrameReader(bufio.NewReader(&buf))
	r1, err := fr.ReadRequest()
	if err != nil {
		t.Fatal(err)
	}
	if r1.Tag != 3 || string(r1.Args[0]) != "first" {
		t.Fatalf("r1 = %+v", r1)
	}
	r2, err := fr.ReadRequest()
	if err != nil {
		t.Fatal(err)
	}
	if string(r2.Args[0]) != "second" {
		t.Fatalf("r2 args = %q", r2.Args)
	}
	if _, err := fr.ReadRequest(); err != io.EOF {
		t.Fatalf("EOF read: %v", err)
	}

	// A big frame must not stay cached.
	buf.Reset()
	err = WriteRequest(&buf, &Request{Version: Version, Op: OpQuery,
		Args: [][]byte{make([]byte, 1<<20)}})
	if err != nil {
		t.Fatal(err)
	}
	fr = NewFrameReader(bufio.NewReader(&buf))
	if _, err := fr.ReadRequest(); err != nil {
		t.Fatal(err)
	}
	if fr.buf != nil {
		t.Errorf("frame reader kept a %d-byte buffer past maxKeepBuf", cap(fr.buf))
	}
}

// FuzzFrameRoundTrip checks write/read canonicality for requests and
// replies across all supported versions, and that corrupted frames are
// rejected instead of desynchronizing or crashing the parser.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add(uint16(1), uint16(3), uint16(0), "", []byte("get_machine"), []byte("X"), int32(0), uint8(0))
	f.Add(uint16(4), uint16(8), uint16(17), "t1-9/s3", []byte("add_user"), []byte(""), int32(-151), uint8(3))
	f.Add(uint16(2), uint16(2), uint16(9), "t", []byte{0, 1, 2}, []byte("x"), int32(10), uint8(200))
	f.Fuzz(func(t *testing.T, version, op, tag uint16, trace string, a1, a2 []byte, code int32, chop uint8) {
		version = version%Version + 1 // 1..Version
		if version < 2 {
			trace = ""
		}
		if version < 4 {
			tag = 0
		}
		req := &Request{Version: version, Op: op, Tag: tag, TraceID: trace,
			Args: [][]byte{a1, a2}}
		var buf bytes.Buffer
		if err := WriteRequest(&buf, req); err != nil {
			t.Skip() // oversized input
		}
		raw := append([]byte(nil), buf.Bytes()...)
		got, err := ReadRequest(bufio.NewReader(&buf))
		if err != nil {
			t.Fatalf("request round trip: %v", err)
		}
		if got.Version != version || got.Op != op || got.Tag != tag || got.TraceID != trace ||
			len(got.Args) != 2 || !bytes.Equal(got.Args[0], a1) || !bytes.Equal(got.Args[1], a2) {
			t.Fatalf("request mismatch: wrote %+v, read %+v", req, got)
		}

		// A truncated stream must error, never hang or mis-parse.
		if n := int(chop); n > 0 && n < len(raw) {
			if _, err := ReadRequest(bufio.NewReader(bytes.NewReader(raw[:len(raw)-n]))); err == nil {
				t.Fatal("truncated frame accepted")
			}
		}
		// An oversized length prefix must be rejected up front.
		huge := append([]byte(nil), raw...)
		binary.BigEndian.PutUint32(huge[:4], MaxFrame+1)
		if _, err := ReadRequest(bufio.NewReader(bytes.NewReader(huge))); err == nil {
			t.Fatal("oversized frame accepted")
		}

		rep := &Reply{Version: version, Tag: tag, Code: code, Fields: [][]byte{a2, a1}}
		buf.Reset()
		if err := WriteReply(&buf, rep); err != nil {
			t.Skip()
		}
		gotRep, err := ReadReply(bufio.NewReader(&buf))
		if err != nil {
			t.Fatalf("reply round trip: %v", err)
		}
		if gotRep.Version != version || gotRep.Tag != tag || gotRep.Code != code ||
			len(gotRep.Fields) != 2 || !bytes.Equal(gotRep.Fields[0], a2) || !bytes.Equal(gotRep.Fields[1], a1) {
			t.Fatalf("reply mismatch: wrote %+v, read %+v", rep, gotRep)
		}
	})
}
