package protocol

import (
	"bufio"
)

// maxKeepBuf bounds the payload buffer a FrameReader keeps across
// reads: a connection that once saw a near-MaxFrame request should not
// hold 16 MB for the rest of its life.
const maxKeepBuf = 256 << 10

// FrameReader reads request frames into a reused payload buffer,
// handing out argument slices that alias it. This is the zero-copy fast
// path for the server's dispatch loop, which converts every argument it
// keeps (strings, journal lines) before reading the next frame.
//
// The contract: a Request returned by ReadRequest — including its Args
// backing bytes — is valid only until the next ReadRequest call. Code
// that retains raw argument bytes across reads must use the copying
// protocol.ReadRequest instead.
type FrameReader struct {
	r   *bufio.Reader
	buf []byte
}

// NewFrameReader wraps r for reuse-buffer request reads.
func NewFrameReader(r *bufio.Reader) *FrameReader {
	return &FrameReader{r: r}
}

// ReadRequest reads one request frame. The returned request aliases the
// reader's internal buffer; see the type comment for the lifetime rule.
func (fr *FrameReader) ReadRequest() (*Request, error) {
	head, fields, buf, err := readFrameInto(fr.r, 4, fr.buf)
	if cap(buf) <= maxKeepBuf {
		fr.buf = buf
	} else {
		fr.buf = nil
	}
	if err != nil {
		return nil, err
	}
	return parseRequest(head, fields)
}
