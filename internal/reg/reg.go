// Package reg implements new user registration (section 5.10): the
// special registration server process on the Moira database machine that
// listens on a UDP port for verify_user, grab_login, and set_password
// requests, plus the registrar-tape bulk load and the userreg client
// flow.
//
// The authenticator is the paper's: the student's ID number and its
// crypt() hash (and, for the second and third requests, the desired
// login or password) encrypted under a DES key derived from the hashed
// ID — so only someone who knows the full ID number can register the
// account, and the server can check it against the hash stored from the
// registrar's tape.
package reg

import (
	"bufio"
	"bytes"
	"net"
	"sync"
	"time"

	"moira/internal/clock"
	"moira/internal/db"
	"moira/internal/kerberos"
	"moira/internal/mrerr"
	"moira/internal/protocol"
	"moira/internal/queries"
)

// Request types on the registration port.
const (
	ReqVerifyUser  uint16 = 1
	ReqGrabLogin   uint16 = 2
	ReqSetPassword uint16 = 3
)

// BuildAuthenticator seals {IDnumber, hashIDnumber, extra...} under a key
// derived from hashIDnumber, per the paper's construction. The caller
// computes hashID with kerberos.HashMITID.
func BuildAuthenticator(idNumber, hashID string, extra ...string) []byte {
	var buf bytes.Buffer
	fields := append([]string{stripID(idNumber), hashID}, extra...)
	for _, f := range fields {
		var n [4]byte
		n[0] = byte(len(f) >> 24)
		n[1] = byte(len(f) >> 16)
		n[2] = byte(len(f) >> 8)
		n[3] = byte(len(f))
		buf.Write(n[:])
		buf.WriteString(f)
	}
	return kerberos.Seal(kerberos.StringToKey(hashID), buf.Bytes())
}

// openAuthenticator decrypts a blob under the stored hash and returns the
// plaintext ID and extras. Verification: the embedded hash must equal the
// stored hash, and crypt(embedded ID) must also reproduce it.
func openAuthenticator(storedHash, salt string, blob []byte) (id string, extras []string, err error) {
	plain, err := kerberos.Open(kerberos.StringToKey(storedHash), blob)
	if err != nil {
		return "", nil, mrerr.RegBadAuth
	}
	var fields []string
	for len(plain) > 0 {
		if len(plain) < 4 {
			return "", nil, mrerr.RegBadAuth
		}
		n := int(plain[0])<<24 | int(plain[1])<<16 | int(plain[2])<<8 | int(plain[3])
		plain = plain[4:]
		if n < 0 || n > len(plain) {
			return "", nil, mrerr.RegBadAuth
		}
		fields = append(fields, string(plain[:n]))
		plain = plain[n:]
	}
	if len(fields) < 2 || fields[1] != storedHash {
		return "", nil, mrerr.RegBadAuth
	}
	last7 := fields[0]
	if len(last7) > 7 {
		last7 = last7[len(last7)-7:]
	}
	if kerberos.Crypt(last7, salt) != storedHash {
		return "", nil, mrerr.RegBadAuth
	}
	return fields[0], fields[2:], nil
}

func stripID(id string) string {
	out := make([]byte, 0, len(id))
	for i := 0; i < len(id); i++ {
		if id[i] != '-' && id[i] != ' ' {
			out = append(out, id[i])
		}
	}
	return string(out)
}

// Server is the registration server.
type Server struct {
	DB  *db.DB
	KDC *kerberos.KDC
	Clk clock.Clock
	// FSType is the partition class for newly registered users' lockers
	// (util.FSStudent by default).
	FSType int
	// Logf logs registrations; nil discards.
	Logf func(format string, args ...any)

	conn *net.UDPConn
	wg   sync.WaitGroup
}

// NewServer creates a registration server over the given database and
// Kerberos admin connection.
func NewServer(d *db.DB, kdc *kerberos.KDC, clk clock.Clock) *Server {
	if clk == nil {
		clk = clock.System
	}
	return &Server{DB: d, KDC: kdc, Clk: clk, FSType: 1,
		Logf: func(string, ...any) {}}
}

// Listen binds the UDP registration port and serves in the background.
func (s *Server) Listen(addr string) (net.Addr, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, err
	}
	s.conn = conn
	s.wg.Add(1)
	go s.serve()
	return conn.LocalAddr(), nil
}

// Addr returns the bound address.
func (s *Server) Addr() net.Addr {
	if s.conn == nil {
		return nil
	}
	return s.conn.LocalAddr()
}

// Close stops the server.
func (s *Server) Close() error {
	var err error
	if s.conn != nil {
		err = s.conn.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) serve() {
	defer s.wg.Done()
	buf := make([]byte, 8192)
	for {
		n, peer, err := s.conn.ReadFromUDP(buf)
		if err != nil {
			return
		}
		req, err := protocol.ReadRequest(bufio.NewReader(bytes.NewReader(buf[:n])))
		if err != nil {
			continue
		}
		code, status := s.handle(req)
		var out bytes.Buffer
		protocol.WriteReply(&out, &protocol.Reply{
			Version: protocol.Version,
			Code:    int32(code),
			Fields:  [][]byte{[]byte{byte(status)}},
		})
		s.conn.WriteToUDP(out.Bytes(), peer)
	}
}

// findUser locates the registration candidate by name and checks the
// authenticator against the stored encrypted MIT ID.
func (s *Server) findUser(first, last string, blob []byte) (*db.User, []string, error) {
	d := s.DB
	d.LockShared()
	defer d.UnlockShared()
	salt := saltOf(first, last)
	var found *db.User
	var extras []string
	var authErr error
	d.EachUser(func(u *db.User) bool {
		if u.First != first || u.Last != last || u.MITID == "" {
			return true
		}
		if _, ex, err := openAuthenticator(u.MITID, salt, blob); err == nil {
			found = u
			extras = ex
			return false
		} else {
			authErr = err
		}
		return true
	})
	if found == nil {
		if authErr != nil {
			return nil, nil, mrerr.RegBadAuth
		}
		return nil, nil, mrerr.RegNotFound
	}
	return found, extras, nil
}

func saltOf(first, last string) string {
	f, l := byte('.'), byte('.')
	if len(first) > 0 {
		f = first[0]
	}
	if len(last) > 0 {
		l = last[0]
	}
	return string([]byte{f, l})
}

func (s *Server) handle(req *protocol.Request) (mrerr.Code, int) {
	args := req.Args
	if len(args) != 3 {
		return mrerr.MrArgs, 0
	}
	first, last, blob := string(args[0]), string(args[1]), args[2]

	u, extras, err := s.findUser(first, last, blob)
	if err != nil {
		return mrerr.CodeOf(err), 0
	}

	switch req.Op {
	case ReqVerifyUser:
		if u.Status != db.UserRegisterable {
			return mrerr.RegAlreadyRegistered, u.Status
		}
		return mrerr.Success, u.Status

	case ReqGrabLogin:
		if len(extras) != 1 {
			return mrerr.RegBadAuth, 0
		}
		login := extras[0]
		if len(login) < 3 || len(login) > 8 {
			return mrerr.RegBadLogin, 0
		}
		if u.Status != db.UserRegisterable {
			return mrerr.RegAlreadyRegistered, u.Status
		}
		// The name must be free in Kerberos as well as Moira.
		if s.KDC.Exists(login) {
			return mrerr.RegLoginTaken, 0
		}
		cx := &queries.Context{DB: s.DB, Privileged: true, App: "userreg"}
		uid := u.UID
		err := queries.Execute(cx, "register_user",
			[]string{itoa(uid), login, itoa(s.FSType)},
			func([]string) error { return nil })
		if err != nil {
			if err == mrerr.MrInUse {
				return mrerr.RegLoginTaken, 0
			}
			return mrerr.CodeOf(err), 0
		}
		// Reserve the principal with an unguessable placeholder; the
		// set_password request replaces it.
		if err := s.KDC.AddPrincipal(login, placeholderPassword()); err != nil {
			return mrerr.RegLoginTaken, 0
		}
		s.Logf("reg: %s %s registered login %s", first, last, login)
		return mrerr.Success, db.UserHalfRegistered

	case ReqSetPassword:
		if len(extras) != 1 {
			return mrerr.RegBadAuth, 0
		}
		password := extras[0]
		if u.Status != db.UserHalfRegistered {
			return mrerr.RegNotHalfRegistered, u.Status
		}
		if err := s.KDC.SetPassword(u.Login, password); err != nil {
			return mrerr.CodeOf(err), 0
		}
		// The account becomes active; the next DCM propagation makes it
		// usable on the servers (the paper's up-to-6-hour lag).
		cx := &queries.Context{DB: s.DB, Privileged: true, App: "userreg"}
		if err := queries.Execute(cx, "update_user_status",
			[]string{u.Login, itoa(db.UserActive)},
			func([]string) error { return nil }); err != nil {
			return mrerr.CodeOf(err), 0
		}
		s.Logf("reg: %s set initial password", u.Login)
		return mrerr.Success, db.UserActive

	default:
		return mrerr.RegUnknownRequest, 0
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}

func placeholderPassword() string {
	k := kerberos.RandomKey()
	const hex = "0123456789abcdef"
	out := make([]byte, 16)
	for i, b := range k {
		out[2*i] = hex[b>>4]
		out[2*i+1] = hex[b&0xf]
	}
	return string(out)
}

// --- client side (the userreg program's protocol calls) ---

// call sends one registration request and decodes the reply.
func call(addr string, op uint16, first, last string, blob []byte, timeout time.Duration) (mrerr.Code, int, error) {
	conn, err := net.Dial("udp", addr)
	if err != nil {
		return 0, 0, err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(timeout))
	var out bytes.Buffer
	err = protocol.WriteRequest(&out, &protocol.Request{
		Version: protocol.Version, Op: op,
		Args: [][]byte{[]byte(first), []byte(last), blob},
	})
	if err != nil {
		return 0, 0, err
	}
	if _, err := conn.Write(out.Bytes()); err != nil {
		return 0, 0, err
	}
	buf := make([]byte, 4096)
	n, err := conn.Read(buf)
	if err != nil {
		return 0, 0, err
	}
	rep, err := protocol.ReadReply(bufio.NewReader(bytes.NewReader(buf[:n])))
	if err != nil {
		return 0, 0, err
	}
	status := 0
	if len(rep.Fields) > 0 && len(rep.Fields[0]) > 0 {
		status = int(rep.Fields[0][0])
	}
	return mrerr.Code(rep.Code), status, nil
}

// VerifyUser asks whether the named student may register. It returns the
// user's current status on success.
func VerifyUser(addr, first, last, idNumber string, timeout time.Duration) (mrerr.Code, int, error) {
	hash := kerberos.HashMITID(idNumber, first, last)
	return call(addr, ReqVerifyUser, first, last, BuildAuthenticator(idNumber, hash), timeout)
}

// GrabLogin attempts to claim the desired login name.
func GrabLogin(addr, first, last, idNumber, login string, timeout time.Duration) (mrerr.Code, error) {
	hash := kerberos.HashMITID(idNumber, first, last)
	code, _, err := call(addr, ReqGrabLogin, first, last,
		BuildAuthenticator(idNumber, hash, login), timeout)
	return code, err
}

// SetPassword sets the student's initial Kerberos password.
func SetPassword(addr, first, last, idNumber, password string, timeout time.Duration) (mrerr.Code, error) {
	hash := kerberos.HashMITID(idNumber, first, last)
	code, _, err := call(addr, ReqSetPassword, first, last,
		BuildAuthenticator(idNumber, hash, password), timeout)
	return code, err
}
