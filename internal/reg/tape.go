package reg

import (
	"bufio"
	"io"
	"strings"

	"moira/internal/kerberos"
	"moira/internal/mrerr"
	"moira/internal/queries"
)

// TapeEntry is one student on the Registrar's list, obtained "shortly
// before registration day each term".
type TapeEntry struct {
	First  string
	Last   string
	Middle string
	ID     string // full ID number, e.g. 123-45-6789
	Class  string // academic year
}

// ParseTape reads a registrar tape in colon-separated form:
// last:first:middle:id:class, one student per line.
func ParseTape(r io.Reader) ([]TapeEntry, error) {
	var out []TapeEntry
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Split(line, ":")
		if len(parts) != 5 {
			return nil, mrerr.MrArgs
		}
		out = append(out, TapeEntry{
			Last: parts[0], First: parts[1], Middle: parts[2],
			ID: parts[3], Class: parts[4],
		})
	}
	return out, sc.Err()
}

// LoadTape adds each student who does not already have an account to the
// users relation with a unique userid, no login name, and the encrypted
// form of the ID number — exactly the pre-registration state of section
// 5.10. It returns how many entries were added and how many skipped as
// already present.
func LoadTape(cx *queries.Context, entries []TapeEntry) (added, skipped int, err error) {
	for _, e := range entries {
		hash := kerberos.HashMITID(e.ID, e.First, e.Last)
		exists := false
		err := queries.Execute(cx, "get_user_by_mitid", []string{hash},
			func([]string) error { exists = true; return nil })
		if err != nil && err != mrerr.MrNoMatch {
			return added, skipped, err
		}
		if exists {
			skipped++
			continue
		}
		err = queries.Execute(cx, "add_user", []string{
			queries.UniqueLogin, queries.UniqueUID, "/bin/csh",
			e.Last, e.First, e.Middle, "0", hash, e.Class,
		}, func([]string) error { return nil })
		if err != nil {
			return added, skipped, err
		}
		added++
	}
	return added, skipped, nil
}
