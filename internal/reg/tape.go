package reg

import (
	"bufio"
	"io"
	"strings"

	"moira/internal/kerberos"
	"moira/internal/mrerr"
	"moira/internal/protocol"
	"moira/internal/queries"
)

// TapeEntry is one student on the Registrar's list, obtained "shortly
// before registration day each term".
type TapeEntry struct {
	First  string
	Last   string
	Middle string
	ID     string // full ID number, e.g. 123-45-6789
	Class  string // academic year
}

// ParseTape reads a registrar tape in colon-separated form:
// last:first:middle:id:class, one student per line.
func ParseTape(r io.Reader) ([]TapeEntry, error) {
	var out []TapeEntry
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Split(line, ":")
		if len(parts) != 5 {
			return nil, mrerr.MrArgs
		}
		out = append(out, TapeEntry{
			Last: parts[0], First: parts[1], Middle: parts[2],
			ID: parts[3], Class: parts[4],
		})
	}
	return out, sc.Err()
}

// tapeBatchSize bounds how many add_user mutations LoadTape submits per
// batch: one lock acquisition and one journal group-commit each, while
// keeping any single batch comfortably under the server's MaxBatch.
const tapeBatchSize = 256

// LoadTape adds each student who does not already have an account to the
// users relation with a unique userid, no login name, and the encrypted
// form of the ID number — exactly the pre-registration state of section
// 5.10. It returns how many entries were added and how many skipped as
// already present.
//
// The adds go through ExecuteBatch in chunks of tapeBatchSize, so a
// whole term's tape costs one journal fsync per chunk instead of one
// per student.
func LoadTape(cx *queries.Context, entries []TapeEntry) (added, skipped int, err error) {
	seen := make(map[string]bool)
	for start := 0; start < len(entries); start += tapeBatchSize {
		end := start + tapeBatchSize
		if end > len(entries) {
			end = len(entries)
		}
		var items []protocol.BatchItem
		for _, e := range entries[start:end] {
			hash := kerberos.HashMITID(e.ID, e.First, e.Last)
			exists := seen[hash]
			if !exists {
				err := queries.Execute(cx, "get_user_by_mitid", []string{hash},
					func([]string) error { exists = true; return nil })
				if err != nil && err != mrerr.MrNoMatch {
					return added, skipped, err
				}
			}
			if exists {
				skipped++
				continue
			}
			// Within a chunk the lookups all run before the adds, so a
			// duplicate on the tape itself is deduplicated here rather
			// than by the (not yet executed) earlier add.
			seen[hash] = true
			items = append(items, protocol.BatchItem{Name: "add_user", Args: []string{
				queries.UniqueLogin, queries.UniqueUID, "/bin/csh",
				e.Last, e.First, e.Middle, "0", hash, e.Class,
			}})
		}
		if len(items) == 0 {
			continue
		}
		codes, err := queries.ExecuteBatch(cx, items)
		if err != nil {
			return added, skipped, err
		}
		for _, code := range codes {
			if code != mrerr.Success {
				return added, skipped, code
			}
			added++
		}
	}
	return added, skipped, nil
}
