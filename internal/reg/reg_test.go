package reg

import (
	"strings"
	"testing"
	"time"

	"moira/internal/clock"
	"moira/internal/db"
	"moira/internal/kerberos"
	"moira/internal/mrerr"
	"moira/internal/queries"
)

// rig builds a database with POP and NFS infrastructure (register_user's
// needs), a KDC, and a running registration server.
type rig struct {
	d    *db.DB
	kdc  *kerberos.KDC
	srv  *Server
	addr string
	priv *queries.Context
}

func newRig(t *testing.T) *rig {
	t.Helper()
	clk := clock.NewFake(time.Unix(600000000, 0))
	d := queries.NewBootstrappedDB(clk)
	priv := &queries.Context{DB: d, Privileged: true, App: "test"}
	must := func(name string, args ...string) {
		t.Helper()
		if err := queries.Execute(priv, name, args, func([]string) error { return nil }); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	must("add_machine", "athena-po-1.mit.edu", "VAX")
	must("add_machine", "fs-01.mit.edu", "VAX")
	must("add_server_info", "POP", "720", "/tmp/po", "/etc/po", "UNIQUE", "1", "NONE", "NONE")
	must("add_server_host_info", "POP", "ATHENA-PO-1.MIT.EDU", "1", "0", "1000", "")
	must("add_nfsphys", "FS-01.MIT.EDU", "/u1", "ra0c", "1", "0", "100000")

	kdc := kerberos.NewKDC("ATHENA.MIT.EDU", clk)
	srv := NewServer(d, kdc, clk)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return &rig{d: d, kdc: kdc, srv: srv, addr: addr.String(), priv: priv}
}

const tape = `# registrar tape for fall 1988
Zimmermann:Martin::123-45-6789:1990
Fowler:Harmon:C:987-65-4321:1991
Barba:Angela::111-22-3333:G
`

func (r *rig) loadTape(t *testing.T) []TapeEntry {
	t.Helper()
	entries, err := ParseTape(strings.NewReader(tape))
	if err != nil {
		t.Fatal(err)
	}
	added, skipped, err := LoadTape(r.priv, entries)
	if err != nil {
		t.Fatal(err)
	}
	if added != 3 || skipped != 0 {
		t.Fatalf("added %d skipped %d", added, skipped)
	}
	return entries
}

func TestParseTape(t *testing.T) {
	entries, err := ParseTape(strings.NewReader(tape))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("entries = %d", len(entries))
	}
	if entries[0].First != "Martin" || entries[0].Last != "Zimmermann" || entries[0].Class != "1990" {
		t.Errorf("entry = %+v", entries[0])
	}
	if _, err := ParseTape(strings.NewReader("too:few:fields\n")); err == nil {
		t.Error("malformed tape accepted")
	}
}

func TestLoadTapeIdempotent(t *testing.T) {
	r := newRig(t)
	r.loadTape(t)
	entries, _ := ParseTape(strings.NewReader(tape))
	added, skipped, err := LoadTape(r.priv, entries)
	if err != nil {
		t.Fatal(err)
	}
	if added != 0 || skipped != 3 {
		t.Errorf("second load: added %d skipped %d", added, skipped)
	}
	// Tape entries carry placeholder logins and status 0.
	r.d.LockShared()
	defer r.d.UnlockShared()
	count := 0
	r.d.EachUser(func(u *db.User) bool {
		if strings.HasPrefix(u.Login, "#") {
			count++
			if u.Status != db.UserRegisterable {
				t.Errorf("%s status = %d", u.Login, u.Status)
			}
			if u.MITID == "" {
				t.Errorf("%s has no encrypted ID", u.Login)
			}
		}
		return true
	})
	if count != 3 {
		t.Errorf("placeholder accounts = %d", count)
	}
}

func TestAuthenticatorRoundTrip(t *testing.T) {
	hash := kerberos.HashMITID("123-45-6789", "Martin", "Zimmermann")
	blob := BuildAuthenticator("123-45-6789", hash, "kazimi")
	id, extras, err := openAuthenticator(hash, "MZ", blob)
	if err != nil {
		t.Fatal(err)
	}
	if id != "123456789" || len(extras) != 1 || extras[0] != "kazimi" {
		t.Errorf("opened = %q %v", id, extras)
	}
	// Wrong hash (wrong ID knowledge) fails.
	wrong := kerberos.HashMITID("999-99-9999", "Martin", "Zimmermann")
	if _, _, err := openAuthenticator(wrong, "MZ", blob); err != mrerr.RegBadAuth {
		t.Errorf("wrong-hash err = %v", err)
	}
	// Tampered blob fails.
	blob[0] ^= 0xff
	if _, _, err := openAuthenticator(hash, "MZ", blob); err != mrerr.RegBadAuth {
		t.Errorf("tampered err = %v", err)
	}
}

func TestFullRegistrationFlow(t *testing.T) {
	r := newRig(t)
	r.loadTape(t)
	timeout := 2 * time.Second

	// 1. verify_user.
	code, status, err := VerifyUser(r.addr, "Martin", "Zimmermann", "123-45-6789", timeout)
	if err != nil || code != mrerr.Success {
		t.Fatalf("verify: %v / %v", code, err)
	}
	if status != db.UserRegisterable {
		t.Errorf("status = %d", status)
	}

	// 2. grab_login.
	code, err = GrabLogin(r.addr, "Martin", "Zimmermann", "123-45-6789", "kazimi", timeout)
	if err != nil || code != mrerr.Success {
		t.Fatalf("grab: %v / %v", code, err)
	}
	// The account is half-registered with resources allocated.
	r.d.LockShared()
	u, ok := r.d.UserByLogin("kazimi")
	r.d.UnlockShared()
	if !ok || u.Status != db.UserHalfRegistered {
		t.Fatalf("kazimi = %+v, %v", u, ok)
	}
	if u.PoType != db.PoboxPOP {
		t.Errorf("pobox type = %s", u.PoType)
	}
	// The name is reserved in Kerberos.
	if !r.kdc.Exists("kazimi") {
		t.Error("kerberos principal not reserved")
	}

	// 3. set_password.
	code, err = SetPassword(r.addr, "Martin", "Zimmermann", "123-45-6789", "mewling.quim", timeout)
	if err != nil || code != mrerr.Success {
		t.Fatalf("set_password: %v / %v", code, err)
	}
	r.d.LockShared()
	u, _ = r.d.UserByLogin("kazimi")
	r.d.UnlockShared()
	if u.Status != db.UserActive {
		t.Errorf("final status = %d", u.Status)
	}
	// The password actually works against the KDC.
	if err := r.kdc.AddPrincipal("some.service", "x"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.kdc.GetTicket("kazimi", "mewling.quim", "some.service"); err != nil {
		t.Errorf("ticket with new password: %v", err)
	}
}

func TestRegistrationErrors(t *testing.T) {
	r := newRig(t)
	r.loadTape(t)
	timeout := 2 * time.Second

	// Unknown student.
	code, _, err := VerifyUser(r.addr, "No", "Body", "000-00-0000", timeout)
	if err != nil || code != mrerr.RegNotFound {
		t.Errorf("unknown verify = %v / %v", code, err)
	}
	// Right name, wrong ID: the authenticator cannot be opened.
	code, _, err = VerifyUser(r.addr, "Martin", "Zimmermann", "999-99-9999", timeout)
	if err != nil || code != mrerr.RegBadAuth {
		t.Errorf("wrong-id verify = %v / %v", code, err)
	}
	// Login collisions: register one student, then try to take the name.
	if code, _ := GrabLogin(r.addr, "Martin", "Zimmermann", "123-45-6789", "popular", timeout); code != mrerr.Success {
		t.Fatalf("first grab = %v", code)
	}
	code, err = GrabLogin(r.addr, "Harmon", "Fowler", "987-65-4321", "popular", timeout)
	if err != nil || code != mrerr.RegLoginTaken {
		t.Errorf("collision grab = %v / %v", code, err)
	}
	// set_password before grab_login.
	code, err = SetPassword(r.addr, "Angela", "Barba", "111-22-3333", "pw", timeout)
	if err != nil || code != mrerr.RegNotHalfRegistered {
		t.Errorf("early set_password = %v / %v", code, err)
	}
	// Re-verification of a registered student.
	code, _, err = VerifyUser(r.addr, "Martin", "Zimmermann", "123-45-6789", timeout)
	if err != nil || code != mrerr.RegAlreadyRegistered {
		t.Errorf("re-verify = %v / %v", code, err)
	}
	// Bad login shapes.
	if code, _ := GrabLogin(r.addr, "Harmon", "Fowler", "987-65-4321", "xy", timeout); code != mrerr.RegBadLogin {
		t.Errorf("short login = %v", code)
	}
	if code, _ := GrabLogin(r.addr, "Harmon", "Fowler", "987-65-4321", "waytoolonglogin", timeout); code != mrerr.RegBadLogin {
		t.Errorf("long login = %v", code)
	}
}
