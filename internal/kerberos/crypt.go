package kerberos

import (
	"crypto/des"
)

// cryptAlphabet is the classic crypt(3) output alphabet.
const cryptAlphabet = "./0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz"

// Crypt is the stand-in for the UNIX C library crypt() function that Moira
// uses to hash MIT ID numbers (section 5.10): the last seven characters of
// the ID are hashed with a two-character salt taken from the student's
// initials. The output has the classic shape — the two salt characters
// followed by eleven characters drawn from the crypt alphabet — and the
// same interface contract: deterministic, one-way, salt-dependent.
//
// Internally it derives a DES key from the password, perturbs it with the
// salt, and iterates DES encryption of a zero block 25 times, echoing the
// structure (not the exact bit schedule) of the original.
func Crypt(password, salt string) string {
	if len(salt) < 2 {
		salt = (salt + "..")[:2]
	}
	salt = salt[:2]
	key := StringToKey(password)
	// Perturb the key with the salt so equal passwords under different
	// salts produce unrelated hashes. The salt is diffused the same way
	// as the password: DES masks each byte's low bit, so the raw salt
	// bytes must not land there.
	sh := (uint64(salt[0])<<8 | uint64(salt[1])) * 0x9e3779b97f4a7c15
	for i := range key {
		key[i] ^= byte(sh >> (8 * uint(i)))
	}
	setParity(&key)

	block, err := des.NewCipher(key[:])
	if err != nil {
		// A DES key is always 8 bytes; this cannot happen.
		panic("kerberos: des.NewCipher: " + err.Error())
	}
	var buf [8]byte
	for i := 0; i < 25; i++ {
		block.Encrypt(buf[:], buf[:])
	}

	// Encode 64 bits as 11 characters of 6 bits each (the last character
	// carries only 4 meaningful bits, as in crypt(3)).
	out := make([]byte, 0, 13)
	out = append(out, salt[0], salt[1])
	var acc uint
	bits := 0
	for _, b := range buf {
		acc = acc<<8 | uint(b)
		bits += 8
		for bits >= 6 {
			bits -= 6
			out = append(out, cryptAlphabet[(acc>>bits)&0x3f])
		}
	}
	if bits > 0 {
		out = append(out, cryptAlphabet[(acc<<(6-bits))&0x3f])
	}
	return string(out[:13])
}

// CryptVerify reports whether password hashes to the given crypt string.
func CryptVerify(password, hashed string) bool {
	if len(hashed) < 2 {
		return false
	}
	return Crypt(password, hashed[:2]) == hashed
}

// HashMITID produces the encrypted MIT ID stored in the users relation:
// the last seven characters of the ID number (hyphens removed) are
// crypt-hashed with a salt built from the first letters of the first and
// last names, exactly as section 5.10 specifies.
func HashMITID(id, firstName, lastName string) string {
	id = stripHyphens(id)
	if len(id) > 7 {
		id = id[len(id)-7:]
	}
	salt := saltFromNames(firstName, lastName)
	return Crypt(id, salt)
}

func stripHyphens(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		if s[i] != '-' && s[i] != ' ' {
			out = append(out, s[i])
		}
	}
	return string(out)
}

func saltFromNames(first, last string) string {
	f, l := byte('.'), byte('.')
	if len(first) > 0 {
		f = first[0]
	}
	if len(last) > 0 {
		l = last[0]
	}
	return string([]byte{f, l})
}
