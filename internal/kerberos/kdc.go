package kerberos

import (
	"bytes"
	"sync"
	"time"

	"moira/internal/clock"
	"moira/internal/mrerr"
)

// DefaultLifetime is the ticket lifetime granted by the KDC.
const DefaultLifetime = 10 * time.Hour

// MaxClockSkew is the tolerated difference between an authenticator's
// timestamp and the verifier's clock.
const MaxClockSkew = 5 * time.Minute

// Ticket is the plaintext content of a Kerberos ticket. On the wire it is
// always sealed under the service's key; clients hold it opaquely.
type Ticket struct {
	Client     string
	Service    string
	SessionKey Key
	IssuedAt   int64 // unix seconds
	Lifetime   int64 // seconds
}

func (t *Ticket) marshal() []byte {
	var buf bytes.Buffer
	putString(&buf, t.Client)
	putString(&buf, t.Service)
	buf.Write(t.SessionKey[:])
	putInt64(&buf, t.IssuedAt)
	putInt64(&buf, t.Lifetime)
	return buf.Bytes()
}

func unmarshalTicket(b []byte) (*Ticket, error) {
	r := bytes.NewReader(b)
	var t Ticket
	var err error
	if t.Client, err = getString(r); err != nil {
		return nil, err
	}
	if t.Service, err = getString(r); err != nil {
		return nil, err
	}
	if _, err = r.Read(t.SessionKey[:]); err != nil {
		return nil, mrerr.KrbBadAuthenticator
	}
	if t.IssuedAt, err = getInt64(r); err != nil {
		return nil, err
	}
	if t.Lifetime, err = getInt64(r); err != nil {
		return nil, err
	}
	return &t, nil
}

// Credentials is what a client holds after obtaining a ticket: the sealed
// ticket plus the session key to build authenticators with.
type Credentials struct {
	Client       string
	Service      string
	SessionKey   Key
	SealedTicket []byte
}

// KDC is the simulated key distribution center plus admin server. The
// principal database maps principal names to keys derived from passwords.
type KDC struct {
	Realm string

	mu         sync.RWMutex
	principals map[string]Key
	clk        clock.Clock
}

// NewKDC creates a KDC for realm using clk for timestamps (pass nil for
// the system clock).
func NewKDC(realm string, clk clock.Clock) *KDC {
	if clk == nil {
		clk = clock.System
	}
	return &KDC{Realm: realm, principals: make(map[string]Key), clk: clk}
}

// AddPrincipal registers a new principal with the given password. It
// fails with KrbPrincipalExists if the name is taken — userreg relies on
// this to detect login-name collisions.
func (k *KDC) AddPrincipal(name, password string) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	if _, ok := k.principals[name]; ok {
		return mrerr.KrbPrincipalExists
	}
	k.principals[name] = StringToKey(password)
	return nil
}

// SetPassword changes (or, for the admin path used by the registration
// server, sets) a principal's key. Unknown principals fail.
func (k *KDC) SetPassword(name, password string) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	if _, ok := k.principals[name]; !ok {
		return mrerr.KrbUnknownPrincipal
	}
	k.principals[name] = StringToKey(password)
	return nil
}

// DeletePrincipal removes a principal; unknown names fail.
func (k *KDC) DeletePrincipal(name string) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	if _, ok := k.principals[name]; !ok {
		return mrerr.KrbUnknownPrincipal
	}
	delete(k.principals, name)
	return nil
}

// Exists reports whether a principal is registered.
func (k *KDC) Exists(name string) bool {
	k.mu.RLock()
	defer k.mu.RUnlock()
	_, ok := k.principals[name]
	return ok
}

// NumPrincipals reports the size of the principal database.
func (k *KDC) NumPrincipals() int {
	k.mu.RLock()
	defer k.mu.RUnlock()
	return len(k.principals)
}

// GetTicket performs the initial-ticket exchange: the client proves
// knowledge of its password and receives credentials for service.
func (k *KDC) GetTicket(client, password, service string) (*Credentials, error) {
	k.mu.RLock()
	ck, cok := k.principals[client]
	sk, sok := k.principals[service]
	k.mu.RUnlock()
	if !cok {
		return nil, mrerr.KrbUnknownPrincipal
	}
	if ck != StringToKey(password) {
		return nil, mrerr.KrbBadPassword
	}
	if !sok {
		return nil, mrerr.KrbNoSrvtab
	}
	tkt := &Ticket{
		Client:     client,
		Service:    service,
		SessionKey: RandomKey(),
		IssuedAt:   k.clk.Now().Unix(),
		Lifetime:   int64(DefaultLifetime / time.Second),
	}
	return &Credentials{
		Client:       client,
		Service:      service,
		SessionKey:   tkt.SessionKey,
		SealedTicket: Seal(sk, tkt.marshal()),
	}, nil
}

// Srvtab extracts a service's key, the equivalent of reading /etc/srvtab
// on the service host. In production this is an offline provisioning
// step; here the caller must be the code that owns the service.
func (k *KDC) Srvtab(service string) (Key, error) {
	k.mu.RLock()
	defer k.mu.RUnlock()
	key, ok := k.principals[service]
	if !ok {
		return Key{}, mrerr.KrbNoSrvtab
	}
	return key, nil
}
