package kerberos

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"moira/internal/clock"
	"moira/internal/mrerr"
)

func TestCryptShape(t *testing.T) {
	h := Crypt("secret7", "lf")
	if len(h) != 13 {
		t.Fatalf("crypt output length = %d, want 13", len(h))
	}
	if h[:2] != "lf" {
		t.Errorf("salt prefix = %q", h[:2])
	}
	for i := 2; i < len(h); i++ {
		if !bytes.ContainsRune([]byte(cryptAlphabet), rune(h[i])) {
			t.Errorf("character %q outside crypt alphabet", h[i])
		}
	}
}

func TestCryptDeterministicSaltSensitive(t *testing.T) {
	a := Crypt("3456789", "HF")
	b := Crypt("3456789", "HF")
	c := Crypt("3456789", "AB")
	d := Crypt("3456780", "HF")
	if a != b {
		t.Error("crypt not deterministic")
	}
	if a == c {
		t.Error("crypt ignores salt")
	}
	if a == d {
		t.Error("crypt ignores password")
	}
	if !CryptVerify("3456789", a) {
		t.Error("CryptVerify rejects correct password")
	}
	if CryptVerify("wrong", a) {
		t.Error("CryptVerify accepts wrong password")
	}
}

func TestCryptShortSalt(t *testing.T) {
	if h := Crypt("pw", ""); len(h) != 13 {
		t.Errorf("short-salt output length = %d", len(h))
	}
}

func TestHashMITID(t *testing.T) {
	h := HashMITID("123-45-6789", "Harmon", "Fowler")
	if len(h) != 13 || h[:2] != "HF" {
		t.Errorf("HashMITID = %q", h)
	}
	// Hyphens are stripped, only last 7 digits participate.
	if h != HashMITID("123456789", "Harmon", "Fowler") {
		t.Error("hyphen stripping failed")
	}
	if h != HashMITID("996-54-56789"[0:4]+"56789"[0:0]+"23456789", "Harmon", "Fowler") &&
		h != HashMITID("923456789", "Harmon", "Fowler") {
		t.Error("only the last seven characters should participate")
	}
}

func TestStringToKeyParityAndVariation(t *testing.T) {
	k := StringToKey("athena")
	for i, b := range k {
		ones := 0
		for j := 0; j < 8; j++ {
			ones += int(b>>j) & 1
		}
		if ones%2 != 1 {
			t.Errorf("key byte %d lacks odd parity: %08b", i, b)
		}
	}
	if StringToKey("athena") != k {
		t.Error("StringToKey not deterministic")
	}
	if StringToKey("athenb") == k {
		t.Error("StringToKey collision on near passwords")
	}
}

// Regression: DES ignores each key byte's parity bit, so a naive
// byte-fold made passwords differing only in a low bit (e.g. sequential
// ID numbers) collide. The diffusing string-to-key must keep them apart.
func TestStringToKeyLowBitDistinct(t *testing.T) {
	if StringToKey("0000000") == StringToKey("0000001") {
		t.Error("passwords differing in one low bit collide")
	}
	if Crypt("0000000", "SD") == Crypt("0000001", "SD") {
		t.Error("crypt of low-bit-distinct passwords collide")
	}
	// Salts differing only in a low bit must perturb differently too.
	if Crypt("secret", "SD") == Crypt("secret", "RD") {
		t.Error("crypt of low-bit-distinct salts collide")
	}
	// Sweep sequential IDs; all 200 hashes must be distinct.
	seen := map[string]bool{}
	for i := 0; i < 200; i++ {
		h := Crypt(fmt.Sprintf("%07d", i), "SD")
		if seen[h] {
			t.Fatalf("collision at %d", i)
		}
		seen[h] = true
	}
}

func TestSealOpenRoundTrip(t *testing.T) {
	key := StringToKey("pw")
	msgs := [][]byte{nil, []byte("x"), []byte("exactly8"), []byte("a longer message spanning blocks")}
	for _, m := range msgs {
		got, err := Open(key, Seal(key, m))
		if err != nil {
			t.Fatalf("Open(%q): %v", m, err)
		}
		if !bytes.Equal(got, m) {
			t.Errorf("round trip of %q = %q", m, got)
		}
	}
}

func TestOpenWrongKeyAndTamper(t *testing.T) {
	k1, k2 := StringToKey("one"), StringToKey("two")
	sealed := Seal(k1, []byte("payload"))
	if _, err := Open(k2, sealed); err != mrerr.KrbBadAuthenticator {
		t.Errorf("wrong key: err = %v", err)
	}
	sealed[0] ^= 0xff
	if _, err := Open(k1, sealed); err == nil {
		t.Error("tampered blob opened successfully")
	}
	if _, err := Open(k1, []byte("odd")); err == nil {
		t.Error("non-block-sized blob opened")
	}
}

func TestPropertySealOpen(t *testing.T) {
	key := RandomKey()
	f := func(msg []byte) bool {
		out, err := Open(key, Seal(key, msg))
		return err == nil && bytes.Equal(out, msg)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func newTestKDC(t *testing.T, clk clock.Clock) *KDC {
	t.Helper()
	kdc := NewKDC("ATHENA.MIT.EDU", clk)
	for _, p := range []struct{ name, pw string }{
		{"moira.server", "srvpw"},
		{"babette", "userpw"},
	} {
		if err := kdc.AddPrincipal(p.name, p.pw); err != nil {
			t.Fatal(err)
		}
	}
	return kdc
}

func TestKDCPrincipals(t *testing.T) {
	kdc := newTestKDC(t, nil)
	if err := kdc.AddPrincipal("babette", "x"); err != mrerr.KrbPrincipalExists {
		t.Errorf("duplicate AddPrincipal err = %v", err)
	}
	if !kdc.Exists("babette") || kdc.Exists("nobody") {
		t.Error("Exists wrong")
	}
	if err := kdc.SetPassword("nobody", "x"); err != mrerr.KrbUnknownPrincipal {
		t.Errorf("SetPassword unknown err = %v", err)
	}
	if err := kdc.DeletePrincipal("babette"); err != nil {
		t.Fatal(err)
	}
	if kdc.Exists("babette") {
		t.Error("delete failed")
	}
	if err := kdc.DeletePrincipal("babette"); err != mrerr.KrbUnknownPrincipal {
		t.Errorf("double delete err = %v", err)
	}
}

func TestTicketFlow(t *testing.T) {
	clk := clock.NewFake(time.Unix(600000000, 0)) // late 1988, fittingly
	kdc := newTestKDC(t, clk)

	if _, err := kdc.GetTicket("nobody", "x", "moira.server"); err != mrerr.KrbUnknownPrincipal {
		t.Errorf("unknown client err = %v", err)
	}
	if _, err := kdc.GetTicket("babette", "wrong", "moira.server"); err != mrerr.KrbBadPassword {
		t.Errorf("bad password err = %v", err)
	}
	if _, err := kdc.GetTicket("babette", "userpw", "no.such.service"); err != mrerr.KrbNoSrvtab {
		t.Errorf("unknown service err = %v", err)
	}

	creds, err := kdc.GetTicket("babette", "userpw", "moira.server")
	if err != nil {
		t.Fatal(err)
	}
	srvKey, err := kdc.Srvtab("moira.server")
	if err != nil {
		t.Fatal(err)
	}
	ver := NewVerifier("moira.server", srvKey, clk)
	payload := BuildAuth(creds, "mrtest", clk)
	client, app, err := ver.Verify(payload)
	if err != nil {
		t.Fatal(err)
	}
	if client != "babette" || app != "mrtest" {
		t.Errorf("verified (%q, %q)", client, app)
	}

	// Replay of the same payload is rejected.
	if _, _, err := ver.Verify(payload); err != mrerr.KrbReplay {
		t.Errorf("replay err = %v", err)
	}

	// Fresh authenticator from the same credentials is fine.
	if _, _, err := ver.Verify(BuildAuth(creds, "mrtest", clk)); err != nil {
		t.Errorf("fresh authenticator: %v", err)
	}
}

func TestVerifyWrongServiceAndExpiry(t *testing.T) {
	clk := clock.NewFake(time.Unix(600000000, 0))
	kdc := newTestKDC(t, clk)
	if err := kdc.AddPrincipal("other.server", "x"); err != nil {
		t.Fatal(err)
	}
	creds, err := kdc.GetTicket("babette", "userpw", "moira.server")
	if err != nil {
		t.Fatal(err)
	}
	otherKey, _ := kdc.Srvtab("other.server")
	wrongVer := NewVerifier("other.server", otherKey, clk)
	if _, _, err := wrongVer.Verify(BuildAuth(creds, "app", clk)); err == nil {
		t.Error("ticket for moira.server accepted by other.server")
	}

	srvKey, _ := kdc.Srvtab("moira.server")
	ver := NewVerifier("moira.server", srvKey, clk)
	clk.Advance(DefaultLifetime + time.Hour)
	if _, _, err := ver.Verify(BuildAuth(creds, "app", clk)); err != mrerr.KrbTicketExpired {
		t.Errorf("expired ticket err = %v", err)
	}
}

func TestVerifyClockSkew(t *testing.T) {
	clk := clock.NewFake(time.Unix(600000000, 0))
	kdc := newTestKDC(t, clk)
	creds, err := kdc.GetTicket("babette", "userpw", "moira.server")
	if err != nil {
		t.Fatal(err)
	}
	srvKey, _ := kdc.Srvtab("moira.server")

	// Client clock far behind the server clock.
	staleClk := clock.NewFake(clk.Now().Add(-time.Hour))
	payload := BuildAuth(creds, "app", staleClk)
	ver := NewVerifier("moira.server", srvKey, clk)
	if _, _, err := ver.Verify(payload); err != mrerr.KrbClockSkew {
		t.Errorf("skew err = %v", err)
	}
}

func TestAuthPayloadMarshal(t *testing.T) {
	p := &AuthPayload{SealedTicket: []byte("ticket-bytes"), SealedAuthenticator: []byte("auth-bytes")}
	q, err := UnmarshalAuthPayload(p.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(q.SealedTicket, p.SealedTicket) || !bytes.Equal(q.SealedAuthenticator, p.SealedAuthenticator) {
		t.Error("payload round trip mismatch")
	}
	for _, bad := range [][]byte{nil, {1}, {0, 0, 0, 99, 1, 2}} {
		if _, err := UnmarshalAuthPayload(bad); err == nil {
			t.Errorf("UnmarshalAuthPayload(%v) succeeded", bad)
		}
	}
}

func BenchmarkBuildAndVerifyAuth(b *testing.B) {
	clk := clock.NewFake(time.Unix(600000000, 0))
	kdc := NewKDC("ATHENA.MIT.EDU", clk)
	kdc.AddPrincipal("moira.server", "s")
	kdc.AddPrincipal("user", "p")
	creds, _ := kdc.GetTicket("user", "p", "moira.server")
	key, _ := kdc.Srvtab("moira.server")
	ver := NewVerifier("moira.server", key, clk)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ver.Verify(BuildAuth(creds, "bench", clk)); err != nil {
			b.Fatal(err)
		}
	}
}
