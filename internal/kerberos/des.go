// Package kerberos is a from-scratch simulation of the pieces of MIT
// Kerberos (version 4 era) that Moira depends on: a key distribution
// center with a principal database, DES-CBC-sealed tickets and
// authenticators, srvtab service keys, a replay cache, and the crypt()
// hash used for MIT ID numbers.
//
// It is a functional stand-in, not a security product: the sealing uses
// single DES from the standard library (as the 1988 system did), and the
// wire formats are this package's own. What it preserves is the behaviour
// Moira's code paths need — authenticate-before-write, identity carried
// by sealed authenticators, replay and clock-skew rejection, and the
// registration server's ID-keyed encryption.
package kerberos

import (
	"bytes"
	"crypto/des"
	"crypto/rand"
	"encoding/binary"

	"moira/internal/mrerr"
)

// Key is a DES key with parity bits set.
type Key [8]byte

// setParity forces odd parity on each byte, as DES keys require.
func setParity(k *Key) {
	for i, b := range k {
		b &= 0xfe
		// Count bits of the top 7; set low bit to make the total odd.
		n := b
		n ^= n >> 4
		n ^= n >> 2
		n ^= n >> 1
		k[i] = b | (^n & 1)
	}
}

// StringToKey derives a DES key from a password, in the spirit of the
// Kerberos v4 string-to-key function. The password is diffused through a
// 64-bit multiplicative hash before landing in the key bytes: DES ignores
// each byte's low (parity) bit, so a naive byte-fold would make passwords
// differing only in a low bit collide.
func StringToKey(password string) Key {
	var k Key
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(password); i++ {
		h ^= uint64(password[i])
		h *= 0x100000001b3
		k[i%8] ^= byte(h >> 48)
	}
	// Spread the final hash across every key byte so short passwords
	// still fill the whole key.
	h *= 0x9e3779b97f4a7c15
	for i := range k {
		k[i] ^= byte(h >> (8 * uint(i)))
	}
	// One mixing pass: encrypt the key with itself.
	setParity(&k)
	blk, err := des.NewCipher(k[:])
	if err == nil {
		var tmp [8]byte
		blk.Encrypt(tmp[:], k[:])
		copy(k[:], tmp[:])
	}
	setParity(&k)
	return k
}

// RandomKey generates a random session key.
func RandomKey() Key {
	var k Key
	if _, err := rand.Read(k[:]); err != nil {
		panic("kerberos: rand.Read: " + err.Error())
	}
	setParity(&k)
	return k
}

// Seal encrypts plaintext under key using DES in CBC mode (the "error
// propagating cypher-block-chaining mode" of the paper collapses to CBC
// for our purposes). The plaintext is prefixed with its length and a
// fixed magic so tampering and wrong keys are detected on open, and
// padded to the block size. The IV is derived from the key as Kerberos
// v4 did.
func Seal(key Key, plaintext []byte) []byte {
	blk, err := des.NewCipher(key[:])
	if err != nil {
		panic("kerberos: des.NewCipher: " + err.Error())
	}
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[0:4], sealMagic)
	binary.BigEndian.PutUint32(hdr[4:8], uint32(len(plaintext)))
	buf := make([]byte, 0, 8+len(plaintext)+8)
	buf = append(buf, hdr[:]...)
	buf = append(buf, plaintext...)
	for len(buf)%8 != 0 {
		buf = append(buf, 0)
	}
	iv := ivFromKey(key)
	out := make([]byte, len(buf))
	prev := iv[:]
	for i := 0; i < len(buf); i += 8 {
		var x [8]byte
		for j := 0; j < 8; j++ {
			x[j] = buf[i+j] ^ prev[j]
		}
		blk.Encrypt(out[i:i+8], x[:])
		prev = out[i : i+8]
	}
	return out
}

const sealMagic = 0x4d4f4952 // "MOIR"

// Open decrypts and verifies a sealed blob. It returns
// mrerr.KrbBadAuthenticator if the blob was not produced under key.
func Open(key Key, sealed []byte) ([]byte, error) {
	if len(sealed) == 0 || len(sealed)%8 != 0 {
		return nil, mrerr.KrbBadAuthenticator
	}
	blk, err := des.NewCipher(key[:])
	if err != nil {
		panic("kerberos: des.NewCipher: " + err.Error())
	}
	iv := ivFromKey(key)
	out := make([]byte, len(sealed))
	prev := iv[:]
	for i := 0; i < len(sealed); i += 8 {
		var x [8]byte
		blk.Decrypt(x[:], sealed[i:i+8])
		for j := 0; j < 8; j++ {
			out[i+j] = x[j] ^ prev[j]
		}
		prev = sealed[i : i+8]
	}
	if binary.BigEndian.Uint32(out[0:4]) != sealMagic {
		return nil, mrerr.KrbBadAuthenticator
	}
	n := binary.BigEndian.Uint32(out[4:8])
	if int(n) > len(out)-8 {
		return nil, mrerr.KrbBadAuthenticator
	}
	return out[8 : 8+n], nil
}

func ivFromKey(key Key) Key {
	var iv Key
	for i := range key {
		iv[i] = key[i] ^ 0xa5
	}
	return iv
}

// --- tiny field marshalling used by tickets and authenticators ---

func putString(buf *bytes.Buffer, s string) {
	var n [4]byte
	binary.BigEndian.PutUint32(n[:], uint32(len(s)))
	buf.Write(n[:])
	buf.WriteString(s)
}

func getString(r *bytes.Reader) (string, error) {
	var n [4]byte
	if _, err := r.Read(n[:]); err != nil {
		return "", mrerr.KrbBadAuthenticator
	}
	ln := binary.BigEndian.Uint32(n[:])
	if int(ln) > r.Len() {
		return "", mrerr.KrbBadAuthenticator
	}
	b := make([]byte, ln)
	if _, err := r.Read(b); err != nil {
		return "", mrerr.KrbBadAuthenticator
	}
	return string(b), nil
}

func putInt64(buf *bytes.Buffer, v int64) {
	var n [8]byte
	binary.BigEndian.PutUint64(n[:], uint64(v))
	buf.Write(n[:])
}

func getInt64(r *bytes.Reader) (int64, error) {
	var n [8]byte
	if _, err := r.Read(n[:]); err != nil {
		return 0, mrerr.KrbBadAuthenticator
	}
	return int64(binary.BigEndian.Uint64(n[:])), nil
}
