package kerberos

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"sync"
	"time"

	"moira/internal/clock"
	"moira/internal/mrerr"
)

// Authenticator is the plaintext content of an authenticator: the client
// name (again, so the verifier can cross-check it against the ticket), the
// name of the program acting on behalf of the user, and a timestamp.
type Authenticator struct {
	Client    string
	ClientApp string // the clientname argument to mr_auth
	Timestamp int64  // unix seconds
	Nonce     int64  // distinguishes same-second authenticators
}

func (a *Authenticator) marshal() []byte {
	var buf bytes.Buffer
	putString(&buf, a.Client)
	putString(&buf, a.ClientApp)
	putInt64(&buf, a.Timestamp)
	putInt64(&buf, a.Nonce)
	return buf.Bytes()
}

func unmarshalAuthenticator(b []byte) (*Authenticator, error) {
	r := bytes.NewReader(b)
	var a Authenticator
	var err error
	if a.Client, err = getString(r); err != nil {
		return nil, err
	}
	if a.ClientApp, err = getString(r); err != nil {
		return nil, err
	}
	if a.Timestamp, err = getInt64(r); err != nil {
		return nil, err
	}
	if a.Nonce, err = getInt64(r); err != nil {
		return nil, err
	}
	return &a, nil
}

var nonceMu sync.Mutex
var nonceCounter int64

func nextNonce() int64 {
	nonceMu.Lock()
	defer nonceMu.Unlock()
	nonceCounter++
	return nonceCounter
}

// AuthPayload is the wire blob a client sends with an Authenticate
// request: the sealed ticket followed by the sealed authenticator.
type AuthPayload struct {
	SealedTicket        []byte
	SealedAuthenticator []byte
}

// Marshal flattens the payload for transmission.
func (p *AuthPayload) Marshal() []byte {
	var buf bytes.Buffer
	var n [4]byte
	binary.BigEndian.PutUint32(n[:], uint32(len(p.SealedTicket)))
	buf.Write(n[:])
	buf.Write(p.SealedTicket)
	binary.BigEndian.PutUint32(n[:], uint32(len(p.SealedAuthenticator)))
	buf.Write(n[:])
	buf.Write(p.SealedAuthenticator)
	return buf.Bytes()
}

// UnmarshalAuthPayload parses a wire blob back into its two parts.
func UnmarshalAuthPayload(b []byte) (*AuthPayload, error) {
	if len(b) < 4 {
		return nil, mrerr.KrbBadAuthenticator
	}
	n := binary.BigEndian.Uint32(b[:4])
	b = b[4:]
	if int(n) > len(b) {
		return nil, mrerr.KrbBadAuthenticator
	}
	tkt := b[:n]
	b = b[n:]
	if len(b) < 4 {
		return nil, mrerr.KrbBadAuthenticator
	}
	m := binary.BigEndian.Uint32(b[:4])
	b = b[4:]
	if int(m) != len(b) {
		return nil, mrerr.KrbBadAuthenticator
	}
	return &AuthPayload{SealedTicket: tkt, SealedAuthenticator: b}, nil
}

// BuildAuth constructs the authentication payload a client presents to a
// service, from credentials previously obtained from the KDC.
func BuildAuth(creds *Credentials, clientApp string, clk clock.Clock) *AuthPayload {
	if clk == nil {
		clk = clock.System
	}
	a := &Authenticator{
		Client:    creds.Client,
		ClientApp: clientApp,
		Timestamp: clk.Now().Unix(),
		Nonce:     nextNonce(),
	}
	return &AuthPayload{
		SealedTicket:        creds.SealedTicket,
		SealedAuthenticator: Seal(creds.SessionKey, a.marshal()),
	}
}

// Verifier checks authenticators on the service side. It holds the
// service's srvtab key, a replay cache, and a clock.
type Verifier struct {
	Service string
	key     Key
	clk     clock.Clock

	mu     sync.Mutex
	replay map[[32]byte]int64 // digest -> expiry unix seconds
}

// NewVerifier creates a verifier for service using its srvtab key.
func NewVerifier(service string, key Key, clk clock.Clock) *Verifier {
	if clk == nil {
		clk = clock.System
	}
	return &Verifier{Service: service, key: key, clk: clk, replay: make(map[[32]byte]int64)}
}

// Verify opens the ticket and authenticator and returns the authenticated
// client principal and the application name. It enforces: the ticket is
// for this service and unexpired; the authenticator is sealed under the
// ticket's session key; the client names agree; the timestamp is within
// MaxClockSkew; and the exact authenticator has not been seen before
// (replay protection against "deathgrams" and transaction replay).
func (v *Verifier) Verify(payload *AuthPayload) (client, clientApp string, err error) {
	tb, err := Open(v.key, payload.SealedTicket)
	if err != nil {
		return "", "", err
	}
	tkt, err := unmarshalTicket(tb)
	if err != nil {
		return "", "", err
	}
	if tkt.Service != v.Service {
		return "", "", mrerr.KrbWrongService
	}
	now := v.clk.Now().Unix()
	if now > tkt.IssuedAt+tkt.Lifetime {
		return "", "", mrerr.KrbTicketExpired
	}
	ab, err := Open(tkt.SessionKey, payload.SealedAuthenticator)
	if err != nil {
		return "", "", err
	}
	auth, err := unmarshalAuthenticator(ab)
	if err != nil {
		return "", "", err
	}
	if auth.Client != tkt.Client {
		return "", "", mrerr.KrbBadAuthenticator
	}
	skew := now - auth.Timestamp
	if skew < 0 {
		skew = -skew
	}
	if skew > int64(MaxClockSkew/time.Second) {
		return "", "", mrerr.KrbClockSkew
	}
	digest := sha256.Sum256(payload.SealedAuthenticator)
	v.mu.Lock()
	defer v.mu.Unlock()
	if exp, seen := v.replay[digest]; seen && exp >= now {
		return "", "", mrerr.KrbReplay
	}
	// Prune a few expired entries opportunistically to bound growth.
	pruned := 0
	for d, exp := range v.replay {
		if exp < now {
			delete(v.replay, d)
			if pruned++; pruned >= 32 {
				break
			}
		}
	}
	v.replay[digest] = now + 2*int64(MaxClockSkew/time.Second)
	return tkt.Client, auth.ClientApp, nil
}
