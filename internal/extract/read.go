package extract

import (
	"bufio"
	"errors"
	"fmt"
	"os"

	"moira/internal/db"
	"moira/internal/protocol"
)

// ErrPositionLost reports that the journal no longer holds the range a
// stored position names — the segments were pruned by a checkpoint, or
// the journal was reset under the position (promotion, adoption). The
// planner answers it with a full regeneration, never an error.
var ErrPositionLost = errors.New("extract: journal position lost")

// ErrCorrupt reports a damaged record inside the requested range: a CRC
// mismatch or an unparseable line that is not a torn tail. The planner
// treats it like a lost position (full regeneration) but counts it
// separately.
var ErrCorrupt = errors.New("extract: journal record corrupt")

// ReadRange reads the journal records in [from, to): skipping the first
// from.Idx records of segment from.Seg, through the first to.Idx
// records of segment to.Seg. Idx counts records, matching
// JournalWriter.Head. A torn final line (missing or truncated CRC on
// the last line of a segment) is tolerated and skipped, exactly as
// recovery tolerates it; damage anywhere else is ErrCorrupt.
func ReadRange(dir string, from, to protocol.Pos) ([]*db.JournalRecord, error) {
	if to.Seg < from.Seg || (to.Seg == from.Seg && to.Idx < from.Idx) {
		return nil, fmt.Errorf("%w: head %d.%d behind position %d.%d",
			ErrPositionLost, to.Seg, to.Idx, from.Seg, from.Idx)
	}
	segs, err := db.ListSegments(dir)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrPositionLost, err)
	}
	bySeq := make(map[int64]string, len(segs))
	for _, s := range segs {
		bySeq[s.Seq] = s.Path
	}
	var out []*db.JournalRecord
	for seq := from.Seg; seq <= to.Seg; seq++ {
		path, ok := bySeq[seq]
		if !ok {
			return nil, fmt.Errorf("%w: segment %d missing", ErrPositionLost, seq)
		}
		skip := int64(0)
		if seq == from.Seg {
			skip = from.Idx
		}
		limit := int64(-1)
		if seq == to.Seg {
			limit = to.Idx
		}
		recs, err := readSegment(path, skip, limit)
		if err != nil {
			return nil, err
		}
		out = append(out, recs...)
	}
	return out, nil
}

// readSegment reads one segment file, skipping the first skip records
// and stopping after limit records total (limit < 0 means all).
func readSegment(path string, skip, limit int64) ([]*db.JournalRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrPositionLost, err)
	}
	defer f.Close()

	var out []*db.JournalRecord
	idx := int64(0)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if limit >= 0 && idx >= limit {
			break
		}
		if line == "" {
			continue
		}
		rec, perr := db.ParseJournalLine(line)
		if perr != nil {
			// A damaged last line is a torn append from a crash: the
			// change it named was never acknowledged and recovery drops
			// it, so the extract can too. Damage earlier is corruption.
			if !sc.Scan() {
				break
			}
			return nil, fmt.Errorf("%w: %s: %v", ErrCorrupt, path, perr)
		}
		if idx >= skip {
			out = append(out, rec)
		}
		idx++
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrCorrupt, path, err)
	}
	if limit >= 0 && idx < limit {
		return nil, fmt.Errorf("%w: %s holds %d records, wanted %d",
			ErrPositionLost, path, idx, limit)
	}
	if idx < skip {
		return nil, fmt.Errorf("%w: %s holds %d records, position skips %d",
			ErrPositionLost, path, idx, skip)
	}
	return out, nil
}
