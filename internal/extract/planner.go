package extract

import (
	"errors"
	"fmt"
	"sync"

	"moira/internal/db"
	"moira/internal/protocol"
)

// Generator is the incremental face of one extract generator. Build and
// Apply are called with the database shared lock already held by the
// planner (unlike the legacy gen.Func, which locks for itself), so that
// the journal position captured for the pass and the database state the
// generator reads are the same instant.
type Generator interface {
	// Tables lists the relations feeding the extract, for the
	// journal-less change check.
	Tables() []string
	// Build produces the full keyed model from scratch.
	Build(d *db.DB) (*Model, error)
	// Deps maps one journal record to the logical keys it dirties. A
	// key ending in '*' dirties every current key with that prefix.
	// ok=false declares the record non-incremental: the whole service
	// falls back to a full regeneration.
	Deps(d *db.DB, rec *db.JournalRecord) (keys []string, ok bool)
	// Apply recomputes the dirty keys in place: delete each key's
	// entries, re-emit the key from current database state.
	Apply(d *db.DB, m *Model, keys []string) error
}

// Mode says what a pass did for one service.
type Mode int

// Pass modes.
const (
	ModeFull Mode = iota
	ModeDelta
	ModeNoChange
)

func (m Mode) String() string {
	switch m {
	case ModeFull:
		return "full"
	case ModeDelta:
		return "delta"
	default:
		return "nochange"
	}
}

// Plan describes the outcome of one planned pass over one service.
type Plan struct {
	Mode Mode
	// Reason explains a full pass ("cold start", "position pruned", ...)
	// or is empty.
	Reason string
	// Records is how many journal records the delta consumed; Keys how
	// many logical keys it recomputed.
	Records int
	Keys    int
	// Pos is the journal head position this pass covers; Commit
	// persists it. Zero when no journal is attached.
	Pos protocol.Pos
	// Seq is the table change sequence observed (the journal-less
	// change check); Commit persists it.
	Seq int64
	// Backlog is the record count between the stored position and the
	// head before this pass ran (0 for no-change passes).
	Backlog int

	// dirtyKeys carries the expanded key set from plan to Run.
	dirtyKeys []string
}

// GenPosSegPrefix and GenPosIdxPrefix name the values-relation keys the
// planner persists per-service journal positions under; they survive
// DCM restarts the way genseq_<service> always has.
const (
	GenPosSegPrefix = "genpos_seg_"
	GenPosIdxPrefix = "genpos_idx_"
)

// svcState is the planner's in-memory state for one service.
type svcState struct {
	model       *Model
	pos         protocol.Pos
	havePos     bool
	adoptions   int64
	sinceFull   int // delta passes since the last full build
	lastMode    Mode
	lastReason  string
	lastBacklog int
}

// Planner owns the delta plans: per-service journal positions, cached
// models, and the fallback matrix deciding full vs incremental.
type Planner struct {
	// DB is the bookkeeping database (positions persist in its values
	// relation) and the state the generators read.
	DB *db.DB
	// Journal is the durable journal the deltas come from; nil degrades
	// every decision to the table-sequence check (no-change vs full).
	Journal *db.JournalWriter
	// FullEvery forces a full rebuild every N generating passes even
	// when deltas would do, bounding drift; 0 disables.
	FullEvery int

	mu  sync.Mutex
	svc map[string]*svcState
}

// NewPlanner creates a planner.
func NewPlanner(d *db.DB, j *db.JournalWriter, fullEvery int) *Planner {
	return &Planner{DB: d, Journal: j, FullEvery: fullEvery, svc: map[string]*svcState{}}
}

func (p *Planner) state(service string) *svcState {
	p.mu.Lock()
	defer p.mu.Unlock()
	st, ok := p.svc[service]
	if !ok {
		st = &svcState{}
		p.svc[service] = st
	}
	return st
}

// storedPos loads the persisted journal position for a service; ok is
// false when none was ever stored. Caller holds at least the shared
// lock.
func (p *Planner) storedPos(service string) (protocol.Pos, bool) {
	seg, err1 := p.DB.GetValue(GenPosSegPrefix + service)
	idx, err2 := p.DB.GetValue(GenPosIdxPrefix + service)
	if err1 != nil || err2 != nil || seg <= 0 {
		return protocol.Pos{}, false
	}
	return protocol.Pos{Seg: int64(seg), Idx: int64(idx)}, true
}

// Run plans and executes one service pass under a single shared-lock
// acquisition: decide full/delta/no-change, run the generator
// accordingly, and return the resulting model plus the plan. The caller
// must follow a successful push of the results with Commit (persisting
// the advance) or, on generation failure, rely on Run's own state
// invalidation; Run never leaves a half-patched model behind.
func (p *Planner) Run(service string, g Generator) (*Model, *Plan, error) {
	st := p.state(service)
	d := p.DB

	d.LockShared()
	defer d.UnlockShared()

	plan := p.plan(service, st, g)
	switch plan.Mode {
	case ModeNoChange:
		return st.model, plan, nil

	case ModeDelta:
		keys := plan.dirtyKeys
		if err := g.Apply(d, st.model, keys); err != nil {
			// A failed patch leaves the model unusable; drop it so the
			// next pass rebuilds from scratch.
			st.model = nil
			st.havePos = false
			return nil, plan, err
		}
		return st.model, plan, nil

	default: // ModeFull
		m, err := g.Build(d)
		if err != nil {
			st.model = nil
			st.havePos = false
			return nil, plan, err
		}
		st.model = m
		st.adoptions = d.AdoptCount()
		st.sinceFull = 0
		return m, plan, nil
	}
}

// plan decides the pass mode. Caller holds the shared lock.
func (p *Planner) plan(service string, st *svcState, g Generator) *Plan {
	d := p.DB
	seq := d.SeqOf(g.Tables()...)

	if p.Journal == nil {
		// No journal: the change check is the table-sequence compare
		// that used to live inside every generator (gen.unchanged) —
		// now the planner decides and the generator does zero work.
		stored, err := d.GetValue(db.GenSeqPrefix + service)
		if err == nil && stored > 0 && seq <= int64(stored) {
			return &Plan{Mode: ModeNoChange, Seq: seq}
		}
		return &Plan{Mode: ModeFull, Reason: "no journal", Seq: seq}
	}

	headSeg, headRecs := p.Journal.Head()
	head := protocol.Pos{Seg: headSeg, Idx: headRecs}
	full := func(reason string) *Plan {
		return &Plan{Mode: ModeFull, Reason: reason, Pos: head, Seq: seq}
	}

	if st.model == nil {
		return full("cold start")
	}
	if st.adoptions != d.AdoptCount() {
		return full("snapshot adopted")
	}
	pos, ok := st.pos, st.havePos
	if !ok {
		if pos, ok = p.storedPos(service); !ok {
			return full("no stored position")
		}
	}
	if pos.Seg > head.Seg || (pos.Seg == head.Seg && pos.Idx > head.Idx) {
		return full("position ahead of journal head")
	}
	if p.FullEvery > 0 && st.sinceFull >= p.FullEvery {
		return full("scheduled full")
	}
	if pos == head {
		return &Plan{Mode: ModeNoChange, Pos: head, Seq: seq}
	}

	recs, err := ReadRange(p.Journal.Dir(), pos, head)
	if err != nil {
		switch {
		case errors.Is(err, ErrCorrupt):
			return full("journal corrupt: " + err.Error())
		default:
			return full("position lost: " + err.Error())
		}
	}
	if len(recs) == 0 {
		return &Plan{Mode: ModeNoChange, Pos: head, Seq: seq, Backlog: 0}
	}

	dirty := map[string]bool{}
	// A backlog of records tends to repeat the same wildcard families
	// (every user mutation dirties "shcred:*"); expanding a prefix once
	// per pass keeps the key-map scan out of the per-record loop.
	expanded := map[string]bool{}
	for _, rec := range recs {
		keys, incOK := g.Deps(d, rec)
		if !incOK {
			return full(fmt.Sprintf("non-incremental query %s", rec.Query))
		}
		for _, k := range keys {
			if n := len(k); n > 0 && k[n-1] == '*' {
				if expanded[k] {
					continue
				}
				expanded[k] = true
				for _, ek := range st.model.KeysWithPrefix(k[:n-1]) {
					dirty[ek] = true
				}
			} else {
				dirty[k] = true
			}
		}
	}
	if len(dirty) == 0 {
		return &Plan{Mode: ModeNoChange, Pos: head, Seq: seq, Backlog: len(recs)}
	}
	keys := make([]string, 0, len(dirty))
	for k := range dirty {
		keys = append(keys, k)
	}
	return &Plan{
		Mode: ModeDelta, Records: len(recs), Keys: len(keys),
		Pos: head, Seq: seq, Backlog: len(recs), dirtyKeys: keys,
	}
}

// Commit records a successful pass: the position and sequence advance
// both in memory and in the values relation, so the next pass (even
// after a DCM restart) resumes from here. Call it after the generation
// succeeded, in the same breath as the DCM's finishGeneration
// bookkeeping; the caller holds the exclusive lock.
func (p *Planner) Commit(service string, plan *Plan) {
	st := p.state(service)
	st.pos, st.havePos = plan.Pos, !plan.Pos.IsZero()
	st.lastMode, st.lastReason = plan.Mode, plan.Reason
	st.lastBacklog = plan.Backlog
	if plan.Mode == ModeDelta {
		st.sinceFull++
	}
	p.DB.SetValue(db.GenSeqPrefix+service, int(plan.Seq))
	if !plan.Pos.IsZero() {
		p.DB.SetValue(GenPosSegPrefix+service, int(plan.Pos.Seg))
		p.DB.SetValue(GenPosIdxPrefix+service, int(plan.Pos.Idx))
	}
}

// Invalidate drops a service's cached model (a failed push or an
// operator action); the next pass rebuilds fully.
func (p *Planner) Invalidate(service string) {
	st := p.state(service)
	st.model = nil
	st.havePos = false
}

// Model returns the cached model for a service, if any — the host-scan
// path reuses it to rebuild bundles without regenerating.
func (p *Planner) Model(service string) *Model {
	return p.state(service).model
}

// LastMode reports the most recently committed pass mode and reason.
func (p *Planner) LastMode(service string) (Mode, string) {
	st := p.state(service)
	return st.lastMode, st.lastReason
}

// Position reports the in-memory position for a service (zero when the
// service has not committed a journal-tracked pass yet).
func (p *Planner) Position(service string) protocol.Pos {
	return p.state(service).pos
}

// Status is a monitoring snapshot of one service's delta state.
type Status struct {
	// Pos is the committed journal position.
	Pos protocol.Pos
	// Mode and Reason describe the last committed pass.
	Mode   Mode
	Reason string
	// Backlog is the journal-record distance the last pass covered.
	Backlog int
	// SinceFull counts delta passes since the last full build.
	SinceFull int
}

// Status reports the last committed pass for monitoring displays.
func (p *Planner) Status(service string) Status {
	p.mu.Lock()
	st, ok := p.svc[service]
	p.mu.Unlock()
	if !ok {
		return Status{}
	}
	return Status{
		Pos: st.pos, Mode: st.lastMode, Reason: st.lastReason,
		Backlog: st.lastBacklog, SinceFull: st.sinceFull,
	}
}
