package extract

import (
	"bytes"
	"os"
	"strings"
	"testing"
	"time"

	"moira/internal/clock"
	"moira/internal/db"
	"moira/internal/protocol"
)

// kvGen is a minimal Generator over a key/value map the test mutates
// directly: every entry is one logical key "k:<name>" emitting the line
// "<name>=<value>\n" into the single file "out". Journal queries carry
// the affected names as args; the query name "bulk_import" declares
// itself non-incremental.
type kvGen struct {
	data map[string]string
}

func (g *kvGen) Tables() []string { return []string{db.TUsers} }

func (g *kvGen) Build(d *db.DB) (*Model, error) {
	m := NewModel()
	m.Emit("out", "", "static", nil)
	for k, v := range g.data {
		g.emit(m, k, v)
	}
	return m, nil
}

func (g *kvGen) emit(m *Model, k, v string) {
	m.Emit("out", K(k), "k:"+k, []byte(k+"="+v+"\n"))
}

func (g *kvGen) Deps(d *db.DB, rec *db.JournalRecord) ([]string, bool) {
	switch rec.Query {
	case "bulk_import":
		return nil, false
	case "touch_prefix":
		return []string{"k:" + rec.Args[0] + "*"}, true
	case "noop_change":
		return nil, true
	default:
		keys := make([]string, len(rec.Args))
		for i, a := range rec.Args {
			keys[i] = "k:" + a
		}
		return keys, true
	}
}

func (g *kvGen) Apply(d *db.DB, m *Model, keys []string) error {
	for _, key := range keys {
		m.DeleteKey(key)
		name := strings.TrimPrefix(key, "k:")
		if v, ok := g.data[name]; ok {
			g.emit(m, name, v)
		}
	}
	return nil
}

// harness wires a DB, a real journal writer on disk, and a planner.
type harness struct {
	t   *testing.T
	d   *db.DB
	jw  *db.JournalWriter
	p   *Planner
	gen *kvGen
}

func newHarness(t *testing.T, fullEvery int) *harness {
	t.Helper()
	d := db.New(clock.NewFake(time.Unix(600000000, 0)))
	jw, err := db.OpenJournalWriter(t.TempDir(), db.JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { jw.Close() })
	d.SetJournal(jw)
	return &harness{
		t: t, d: d, jw: jw,
		p:   NewPlanner(d, jw, fullEvery),
		gen: &kvGen{data: map[string]string{}},
	}
}

// mutate applies a change to the generator's domain and journals it as
// one record of the given query.
func (h *harness) mutate(query string, args []string, fn func()) {
	h.t.Helper()
	h.d.LockExclusive()
	defer h.d.UnlockExclusive()
	if fn != nil {
		fn()
	}
	h.d.NoteUpdate(db.TUsers)
	if err := h.d.JournalQuery("tester", "test", "", query, args); err != nil {
		h.t.Fatal(err)
	}
}

// pass runs one planner pass and commits it, returning the plan and the
// rendered output file.
func (h *harness) pass() (*Plan, []byte) {
	h.t.Helper()
	m, plan, err := h.p.Run("svc", h.gen)
	if err != nil {
		h.t.Fatalf("Run: %v", err)
	}
	h.d.LockExclusive()
	h.p.Commit("svc", plan)
	h.d.UnlockExclusive()
	if m == nil {
		return plan, nil
	}
	return plan, m.Bytes("out")
}

// fromScratch renders the oracle: a full build of the current domain.
func (h *harness) fromScratch() []byte {
	m, err := h.gen.Build(h.d)
	if err != nil {
		h.t.Fatal(err)
	}
	return m.Bytes("out")
}

func (h *harness) set(k, v string, query string) {
	h.mutate(query, []string{k}, func() { h.gen.data[k] = v })
}

func TestPlannerColdStartThenNoChange(t *testing.T) {
	h := newHarness(t, 0)
	h.set("a", "1", "add")
	plan, out := h.pass()
	if plan.Mode != ModeFull || plan.Reason != "cold start" {
		t.Fatalf("first pass: %v %q", plan.Mode, plan.Reason)
	}
	if !bytes.Equal(out, h.fromScratch()) {
		t.Fatalf("full build mismatch: %q", out)
	}
	plan, _ = h.pass()
	if plan.Mode != ModeNoChange {
		t.Fatalf("idle pass: %v %q", plan.Mode, plan.Reason)
	}
}

func TestPlannerDeltaMatchesFromScratch(t *testing.T) {
	h := newHarness(t, 0)
	h.set("a", "1", "add")
	h.set("b", "2", "add")
	h.pass()

	h.set("b", "22", "update") // change
	h.set("c", "3", "add")     // add
	h.mutate("delete", []string{"a"}, func() { delete(h.gen.data, "a") })
	plan, out := h.pass()
	if plan.Mode != ModeDelta {
		t.Fatalf("mode = %v (%s), want delta", plan.Mode, plan.Reason)
	}
	if plan.Records != 3 || plan.Keys != 3 {
		t.Errorf("records=%d keys=%d, want 3/3", plan.Records, plan.Keys)
	}
	if want := h.fromScratch(); !bytes.Equal(out, want) {
		t.Fatalf("delta output %q != from-scratch %q", out, want)
	}
}

func TestPlannerWildcardDepsExpand(t *testing.T) {
	h := newHarness(t, 0)
	h.set("fs1", "a", "add")
	h.set("fs2", "b", "add")
	h.set("other", "c", "add")
	h.pass()

	// One record dirties every key with the prefix.
	h.mutate("touch_prefix", []string{"fs"}, func() {
		h.gen.data["fs1"] = "A"
		h.gen.data["fs2"] = "B"
	})
	plan, out := h.pass()
	if plan.Mode != ModeDelta || plan.Keys != 2 {
		t.Fatalf("mode=%v keys=%d, want delta/2", plan.Mode, plan.Keys)
	}
	if want := h.fromScratch(); !bytes.Equal(out, want) {
		t.Fatalf("wildcard delta %q != %q", out, want)
	}
}

func TestPlannerRecordsWithNoKeysAdvancePosition(t *testing.T) {
	h := newHarness(t, 0)
	h.set("a", "1", "add")
	h.pass()

	h.mutate("noop_change", nil, nil)
	plan, _ := h.pass()
	if plan.Mode != ModeNoChange || plan.Backlog != 1 {
		t.Fatalf("mode=%v backlog=%d, want nochange/1", plan.Mode, plan.Backlog)
	}
	// The position advanced past the irrelevant record: the next pass
	// must not re-read it.
	plan, _ = h.pass()
	if plan.Mode != ModeNoChange || plan.Backlog != 0 {
		t.Fatalf("second pass mode=%v backlog=%d, want nochange/0", plan.Mode, plan.Backlog)
	}
}

func TestPlannerNonIncrementalQueryForcesFull(t *testing.T) {
	h := newHarness(t, 0)
	h.set("a", "1", "add")
	h.pass()

	h.mutate("bulk_import", nil, func() {
		h.gen.data["x"] = "9"
		h.gen.data["y"] = "8"
	})
	plan, out := h.pass()
	if plan.Mode != ModeFull || !strings.Contains(plan.Reason, "non-incremental query bulk_import") {
		t.Fatalf("mode=%v reason=%q", plan.Mode, plan.Reason)
	}
	if want := h.fromScratch(); !bytes.Equal(out, want) {
		t.Fatalf("fallback output %q != %q", out, want)
	}
}

func TestPlannerScheduledFullCadence(t *testing.T) {
	h := newHarness(t, 2)
	h.set("a", "1", "add")
	h.pass() // full (cold start)
	for i, want := range []struct {
		mode   Mode
		reason string
	}{
		{ModeDelta, ""},
		{ModeDelta, ""},
		{ModeFull, "scheduled full"},
		{ModeDelta, ""},
	} {
		h.set("a", strings.Repeat("x", i+2), "update")
		plan, out := h.pass()
		if plan.Mode != want.mode || plan.Reason != want.reason {
			t.Fatalf("pass %d: mode=%v reason=%q, want %v %q",
				i, plan.Mode, plan.Reason, want.mode, want.reason)
		}
		if got := h.fromScratch(); !bytes.Equal(out, got) {
			t.Fatalf("pass %d output mismatch", i)
		}
	}
}

func TestPlannerJournalPrunedFallsBackToFull(t *testing.T) {
	h := newHarness(t, 0)
	h.set("a", "1", "add")
	h.pass()
	h.set("b", "2", "add")

	// A checkpoint rotates the journal and prunes the old segment out
	// from under the stored position.
	if _, err := h.jw.Rotate(); err != nil {
		t.Fatal(err)
	}
	segs, err := db.ListSegments(h.jw.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(segs[0].Path); err != nil {
		t.Fatal(err)
	}

	plan, out := h.pass()
	if plan.Mode != ModeFull || !strings.Contains(plan.Reason, "position lost") {
		t.Fatalf("mode=%v reason=%q", plan.Mode, plan.Reason)
	}
	if want := h.fromScratch(); !bytes.Equal(out, want) {
		t.Fatalf("fallback output %q != %q", out, want)
	}
	// And the system recovers: the next delta works again.
	h.set("c", "3", "add")
	plan, out = h.pass()
	if plan.Mode != ModeDelta {
		t.Fatalf("post-fallback mode=%v (%s)", plan.Mode, plan.Reason)
	}
	if want := h.fromScratch(); !bytes.Equal(out, want) {
		t.Fatal("post-fallback delta mismatch")
	}
}

func TestPlannerCorruptJournalFallsBackToFull(t *testing.T) {
	h := newHarness(t, 0)
	h.set("a", "1", "add")
	h.pass()

	h.set("b", "2", "add")
	h.set("c", "3", "add")
	// Damage the middle record (not the tail, which reads as a torn
	// append and is tolerated).
	segs, err := db.ListSegments(h.jw.Dir())
	if err != nil {
		t.Fatal(err)
	}
	path := segs[len(segs)-1].Path
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(data, []byte("\n"))
	if len(lines) < 3 {
		t.Fatalf("segment too short: %d lines", len(lines))
	}
	lines[1] = []byte("garbage that is not a journal record")
	if err := os.WriteFile(path, bytes.Join(lines, []byte("\n")), 0o644); err != nil {
		t.Fatal(err)
	}

	plan, out := h.pass()
	if plan.Mode != ModeFull || !strings.Contains(plan.Reason, "journal corrupt") {
		t.Fatalf("mode=%v reason=%q", plan.Mode, plan.Reason)
	}
	if want := h.fromScratch(); !bytes.Equal(out, want) {
		t.Fatal("fallback output mismatch")
	}
}

func TestPlannerPositionSurvivesRestart(t *testing.T) {
	h := newHarness(t, 0)
	h.set("a", "1", "add")
	h.pass()

	// A new planner (a DCM restart) on the same DB and journal: the
	// model cache is gone, so the first pass is full, but the persisted
	// position is intact and deltas resume after it.
	p2 := NewPlanner(h.d, h.jw, 0)
	h.p = p2
	plan, _ := h.pass()
	if plan.Mode != ModeFull || plan.Reason != "cold start" {
		t.Fatalf("restart pass: %v %q", plan.Mode, plan.Reason)
	}
	h.set("b", "2", "add")
	plan, out := h.pass()
	if plan.Mode != ModeDelta || plan.Records != 1 {
		t.Fatalf("post-restart mode=%v records=%d (%s)", plan.Mode, plan.Records, plan.Reason)
	}
	if want := h.fromScratch(); !bytes.Equal(out, want) {
		t.Fatal("post-restart delta mismatch")
	}
}

func TestPlannerNoJournalUsesSequenceCheck(t *testing.T) {
	d := db.New(clock.NewFake(time.Unix(600000000, 0)))
	p := NewPlanner(d, nil, 0)
	g := &kvGen{data: map[string]string{"a": "1"}}
	d.LockExclusive()
	d.NoteUpdate(db.TUsers) // a fresh table sequence of zero can't be told from "never generated"
	d.UnlockExclusive()

	run := func() *Plan {
		t.Helper()
		_, plan, err := p.Run("svc", g)
		if err != nil {
			t.Fatal(err)
		}
		d.LockExclusive()
		p.Commit("svc", plan)
		d.UnlockExclusive()
		return plan
	}
	if plan := run(); plan.Mode != ModeFull || plan.Reason != "no journal" {
		t.Fatalf("first: %v %q", plan.Mode, plan.Reason)
	}
	if plan := run(); plan.Mode != ModeNoChange {
		t.Fatalf("idle: %v %q", plan.Mode, plan.Reason)
	}
	d.LockExclusive()
	d.NoteUpdate(db.TUsers)
	d.UnlockExclusive()
	if plan := run(); plan.Mode != ModeFull || plan.Reason != "no journal" {
		t.Fatalf("after change: %v %q", plan.Mode, plan.Reason)
	}
}

func TestPlannerInvalidateForcesRebuild(t *testing.T) {
	h := newHarness(t, 0)
	h.set("a", "1", "add")
	h.pass()
	h.p.Invalidate("svc")
	plan, out := h.pass()
	if plan.Mode != ModeFull || plan.Reason != "cold start" {
		t.Fatalf("mode=%v reason=%q", plan.Mode, plan.Reason)
	}
	if want := h.fromScratch(); !bytes.Equal(out, want) {
		t.Fatal("rebuild mismatch")
	}
}

func TestPlannerStatus(t *testing.T) {
	h := newHarness(t, 0)
	if st := h.p.Status("svc"); st.Mode != ModeFull || st.Pos.Seg != 0 {
		t.Fatalf("zero status = %+v", st)
	}
	h.set("a", "1", "add")
	h.pass()
	h.set("b", "2", "add")
	h.pass()
	st := h.p.Status("svc")
	if st.Mode != ModeDelta || st.Backlog != 1 || st.SinceFull != 1 {
		t.Fatalf("status = %+v", st)
	}
	seg, recs := h.jw.Head()
	if st.Pos.Seg != seg || st.Pos.Idx != recs {
		t.Fatalf("status pos %v != head %d.%d", st.Pos, seg, recs)
	}
}

// pos builds a journal position.
func pos(seg, idx int64) protocol.Pos { return protocol.Pos{Seg: seg, Idx: idx} }

func TestReadRangeSkipsAndLimits(t *testing.T) {
	h := newHarness(t, 0)
	for _, k := range []string{"a", "b", "c", "d"} {
		h.set(k, "v", "add")
	}
	seg, recs := h.jw.Head()
	out, err := ReadRange(h.jw.Dir(), pos(seg, 1), pos(seg, recs))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != int(recs-1) {
		t.Fatalf("got %d records, want %d", len(out), recs-1)
	}
	if out[0].Args[0] != "b" {
		t.Errorf("first record args = %v, want b", out[0].Args)
	}
	// Empty range.
	out, err = ReadRange(h.jw.Dir(), pos(seg, recs), pos(seg, recs))
	if err != nil || len(out) != 0 {
		t.Fatalf("empty range: %v %v", out, err)
	}
	// Inverted range is a lost position.
	if _, err := ReadRange(h.jw.Dir(), pos(seg, recs), pos(seg, 0)); err == nil {
		t.Fatal("inverted range did not error")
	}
}

func TestReadRangeSpansSegments(t *testing.T) {
	h := newHarness(t, 0)
	h.set("a", "1", "add")
	if _, err := h.jw.Rotate(); err != nil {
		t.Fatal(err)
	}
	h.set("b", "2", "add")
	h.set("c", "3", "add")
	seg, recs := h.jw.Head()
	from := pos(seg-1, 1) // past the only record of segment 1
	out, err := ReadRange(h.jw.Dir(), from, pos(seg, recs))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0].Args[0] != "b" || out[1].Args[0] != "c" {
		t.Fatalf("cross-segment read = %v", out)
	}
}

func TestReadRangeToleratesTornTail(t *testing.T) {
	h := newHarness(t, 0)
	h.set("a", "1", "add")
	h.set("b", "2", "add")
	seg, recs := h.jw.Head()
	segs, err := db.ListSegments(h.jw.Dir())
	if err != nil {
		t.Fatal(err)
	}
	path := segs[len(segs)-1].Path
	// Append a torn line (no trailing newline, no CRC): a crash mid-append.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("torn garbage line"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	out, err := ReadRange(h.jw.Dir(), pos(seg, 0), pos(seg, recs))
	if err != nil {
		t.Fatalf("torn tail not tolerated: %v", err)
	}
	if len(out) != int(recs) {
		t.Fatalf("got %d records, want %d", len(out), recs)
	}
}
