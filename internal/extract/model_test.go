package extract

import (
	"bytes"
	"sort"
	"testing"
)

func TestKOrdersLikeEmitOrder(t *testing.T) {
	// Numeric components zero-pad so lexical order equals numeric order.
	if K(9) >= K(10) || K(10) >= K(100) {
		t.Errorf("numeric keys out of order: %q %q %q", K(9), K(10), K(100))
	}
	// Mixed components order by component, not by concatenation: "a" as
	// a whole component sorts before "ab".
	keys := []string{K("ab", 1), K("a", 2), K("a", 10)}
	sorted := append([]string(nil), keys...)
	sort.Strings(sorted)
	want := []string{K("a", 2), K("a", 10), K("ab", 1)}
	for i := range sorted {
		if sorted[i] != want[i] {
			t.Fatalf("sorted[%d] = %q, want %q", i, sorted[i], want[i])
		}
	}
}

func TestKPanicsOnUnsupportedType(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("K(3.14) did not panic")
		}
	}()
	K(3.14)
}

func TestModelEmitRenderDelete(t *testing.T) {
	m := NewModel()
	m.Emit("f", K("b"), "user:b", []byte("bob\n"))
	m.Emit("f", K("a"), "user:a", []byte("alice\n"))
	if got := m.Bytes("f"); !bytes.Equal(got, []byte("alice\nbob\n")) {
		t.Errorf("render = %q, want entries in sort order", got)
	}

	// Deleting one key removes exactly its spans.
	m.DeleteKey("user:a")
	if got := m.Bytes("f"); !bytes.Equal(got, []byte("bob\n")) {
		t.Errorf("after delete = %q", got)
	}
	// Deleting the last key makes the file cease to exist, like a full
	// build that never emitted it.
	m.DeleteKey("user:b")
	if got := m.Bytes("f"); got != nil {
		t.Errorf("empty file still exists: %q", got)
	}
	if _, ok := m.Files()["f"]; ok {
		t.Error("Files() lists a deleted file")
	}
}

func TestModelKeySpansMultipleFiles(t *testing.T) {
	m := NewModel()
	m.Emit("passwd", K("u"), "user:u", []byte("u:pw\n"))
	m.Emit("uid", K(7), "user:u", []byte("7:u\n"))
	m.Emit("passwd", K("v"), "user:v", []byte("v:pw\n"))
	m.DeleteKey("user:u")
	if got := m.Bytes("passwd"); !bytes.Equal(got, []byte("v:pw\n")) {
		t.Errorf("passwd after delete = %q", got)
	}
	if got := m.Bytes("uid"); got != nil {
		t.Errorf("uid survived its only key: %q", got)
	}
}

func TestModelReEmitReplacesInPlace(t *testing.T) {
	m := NewModel()
	m.Emit("f", K("a"), "user:a", []byte("old\n"))
	m.Emit("f", K("a"), "user:a", []byte("new\n"))
	if got := m.Bytes("f"); !bytes.Equal(got, []byte("new\n")) {
		t.Errorf("re-emit = %q", got)
	}
	m.DeleteKey("user:a")
	if m.NumEntries() != 0 {
		t.Errorf("NumEntries = %d after deleting everything", m.NumEntries())
	}
}

func TestModelOwnershipTransfer(t *testing.T) {
	// A sort position re-emitted under a new logical key transfers
	// ownership: deleting the old key must not remove the span.
	m := NewModel()
	m.Emit("f", K("slot"), "old", []byte("v1\n"))
	m.Emit("f", K("slot"), "new", []byte("v2\n"))
	m.DeleteKey("old")
	if got := m.Bytes("f"); !bytes.Equal(got, []byte("v2\n")) {
		t.Errorf("after old-owner delete = %q", got)
	}
	m.DeleteKey("new")
	if got := m.Bytes("f"); got != nil {
		t.Errorf("after new-owner delete = %q", got)
	}
}

func TestModelPresenceEntryKeepsFileAlive(t *testing.T) {
	m := NewModel()
	m.Emit("f", "", "static", nil) // zero-length presence entry
	m.Emit("f", K("a"), "user:a", []byte("a\n"))
	m.DeleteKey("user:a")
	if got := m.Bytes("f"); got == nil || len(got) != 0 {
		t.Errorf("presence entry did not keep the file: %v", got)
	}
}

func TestKeysWithPrefix(t *testing.T) {
	m := NewModel()
	m.Emit("f", K("a"), "quota:fs1:a", []byte("x"))
	m.Emit("f", K("b"), "quota:fs1:b", []byte("x"))
	m.Emit("f", K("c"), "quota:fs2:c", []byte("x"))
	got := m.KeysWithPrefix("quota:fs1:")
	if len(got) != 2 || got[0] != "quota:fs1:a" || got[1] != "quota:fs1:b" {
		t.Errorf("KeysWithPrefix = %v", got)
	}
	if got := m.KeysWithPrefix("nothing:"); len(got) != 0 {
		t.Errorf("KeysWithPrefix(miss) = %v", got)
	}
}

func TestModelRenderCacheInvalidation(t *testing.T) {
	m := NewModel()
	m.Emit("f", K("a"), "a", []byte("1"))
	_ = m.Bytes("f") // populate the cache
	m.Emit("f", K("b"), "b", []byte("2"))
	if got := m.Bytes("f"); !bytes.Equal(got, []byte("12")) {
		t.Errorf("stale cache after emit: %q", got)
	}
	_ = m.Bytes("f")
	m.DeleteKey("a")
	if got := m.Bytes("f"); !bytes.Equal(got, []byte("2")) {
		t.Errorf("stale cache after delete: %q", got)
	}
}
