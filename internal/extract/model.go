// Package extract is the incremental extract subsystem: it turns a DCM
// pass from O(population) into O(changes). A generator builds a keyed
// Model of its extract files once; after that, the delta Planner reads
// the durable journal since the service's last successful pass, maps
// each record to the logical keys it touches, and the generator
// recomputes only those keys. Rendering a file from the model is
// byte-identical to a from-scratch generation by construction: the full
// build and the incremental patch go through the same per-key emit.
package extract

import (
	"sort"
	"strconv"
	"strings"
)

// sep joins sort-key components. It is below every printable byte, so
// K("a")-prefixed keys order exactly like Go string comparison of the
// components themselves ("a" < "ab" stays true after joining).
const sep = "\x1f"

// K builds a sort key from components: ints render zero-padded to 12
// digits so numeric order and lexical order agree, strings pass
// through. The resulting keys order entries within a file exactly the
// way the full-scan emit order would.
func K(parts ...any) string {
	var b strings.Builder
	for i, p := range parts {
		if i > 0 {
			b.WriteString(sep)
		}
		switch v := p.(type) {
		case int:
			b.WriteString(pad(int64(v)))
		case int64:
			b.WriteString(pad(v))
		case string:
			b.WriteString(v)
		default:
			panic("extract.K: unsupported component type")
		}
	}
	return b.String()
}

func pad(v int64) string {
	s := strconv.FormatInt(v, 10)
	if len(s) >= 12 {
		return s
	}
	return strings.Repeat("0", 12-len(s)) + s
}

// entry is one keyed span of bytes at one position in one file.
type entry struct {
	sort string // position within the file
	key  string // the logical key that owns the span
	data []byte
}

// File is one extract file: a sequence of entries ordered by sort key.
// Mutations that hit the middle of the sequence are buffered in an
// overlay (dirty + pending) and merged into the sorted slice in one
// pass at render time, so a delta patch of k keys against an n-entry
// file costs O(n + k log k) instead of k point insertions at O(n) each.
type File struct {
	entries []entry
	cache   []byte // rendered bytes; nil after any mutation
	scratch []byte // retired render buffer, reused by the next render
	n       int    // live entry count (entries plus overlay effects)

	// Overlay: dirty maps a sort key to its pending index, or -1 for a
	// deletion. A dirty sort key shadows any base entry with that key.
	dirty   map[string]int
	pending []entry
}

// find returns the index of sortKey in the base entry slice, or the
// insertion point and false. Overlay-blind; callers outside flush use
// lookup.
func (f *File) find(sortKey string) (int, bool) {
	i := sort.Search(len(f.entries), func(i int) bool {
		return f.entries[i].sort >= sortKey
	})
	return i, i < len(f.entries) && f.entries[i].sort == sortKey
}

// lookup returns the live entry at sortKey, seeing through the overlay.
func (f *File) lookup(sortKey string) (entry, bool) {
	if j, ok := f.dirty[sortKey]; ok {
		if j < 0 {
			return entry{}, false
		}
		return f.pending[j], true
	}
	i, ok := f.find(sortKey)
	if !ok {
		return entry{}, false
	}
	return f.entries[i], true
}

// invalidate retires the render cache on mutation. The backing array is
// kept for the next render: pass after pass, the same few big files
// change, and re-zeroing (and re-collecting) tens of megabytes per pass
// costs more than the render itself.
func (f *File) invalidate() {
	if f.cache != nil {
		f.scratch, f.cache = f.cache, nil
	}
}

func (f *File) set(e entry) {
	f.invalidate()
	// Append fast path: full builds emit in sort order, so they stay on
	// the contiguous slice and never pay for the overlay.
	if len(f.dirty) == 0 && (len(f.entries) == 0 || f.entries[len(f.entries)-1].sort < e.sort) {
		f.entries = append(f.entries, e)
		f.n++
		return
	}
	if j, ok := f.dirty[e.sort]; ok {
		if j >= 0 {
			f.pending[j] = e
			return
		}
		// Re-setting a key deleted earlier in this batch.
		f.n++
	} else if _, exists := f.find(e.sort); !exists {
		f.n++
	}
	if f.dirty == nil {
		f.dirty = map[string]int{}
	}
	f.dirty[e.sort] = len(f.pending)
	f.pending = append(f.pending, e)
}

func (f *File) del(sortKey string) {
	if _, ok := f.lookup(sortKey); !ok {
		return
	}
	f.invalidate()
	f.n--
	if f.dirty == nil {
		f.dirty = map[string]int{}
	}
	f.dirty[sortKey] = -1
}

// flush merges the overlay into the sorted base slice in one pass.
func (f *File) flush() {
	if len(f.dirty) == 0 {
		return
	}
	// Live pending entries: the ones their dirty marker still points at
	// (a later delete or re-set leaves stale pending slots behind).
	adds := f.pending[:0]
	for j := range f.pending {
		if k, ok := f.dirty[f.pending[j].sort]; ok && k == j {
			adds = append(adds, f.pending[j])
		}
	}
	sort.Slice(adds, func(a, b int) bool { return adds[a].sort < adds[b].sort })
	merged := make([]entry, 0, f.n)
	ai := 0
	for _, e := range f.entries {
		for ai < len(adds) && adds[ai].sort < e.sort {
			merged = append(merged, adds[ai])
			ai++
		}
		if _, shadowed := f.dirty[e.sort]; shadowed {
			continue // deleted, or replaced by a pending entry
		}
		merged = append(merged, e)
	}
	merged = append(merged, adds[ai:]...)
	f.entries, f.dirty, f.pending = merged, nil, nil
}

// Bytes renders the file: the concatenation of every entry's data in
// sort-key order. The result is cached until the next mutation; a
// mutation-then-render reuses the retired buffer, so the returned slice
// is only valid until the file next renders after a mutation.
func (f *File) Bytes() []byte {
	if f.cache != nil {
		return f.cache
	}
	f.flush()
	n := 0
	for i := range f.entries {
		n += len(f.entries[i].data)
	}
	out := f.scratch
	f.scratch = nil
	if out == nil || cap(out) < n {
		// A non-nil zero-length render distinguishes "empty file" from
		// "no cache", so allocate even when n is zero.
		out = make([]byte, 0, n)
	} else {
		out = out[:0]
	}
	for i := range f.entries {
		out = append(out, f.entries[i].data...)
	}
	f.cache = out
	return out
}

// loc names one entry: which file, at which position.
type loc struct {
	file, sort string
}

// Model is the keyed representation of one generator's extract files.
// Every byte of every file is owned by exactly one logical key; a full
// build emits every key of the domain, an incremental patch deletes the
// dirty keys' entries and re-emits just those keys.
type Model struct {
	files map[string]*File
	locs  map[string][]loc
}

// NewModel returns an empty model.
func NewModel() *Model {
	return &Model{files: map[string]*File{}, locs: map[string][]loc{}}
}

// Emit places data at sortKey in file, owned by the logical key. A file
// exists once anything — even a zero-length presence entry — was
// emitted into it; generators emit presence entries for files whose
// existence is unconditional.
func (m *Model) Emit(file, sortKey, key string, data []byte) {
	f := m.files[file]
	if f == nil {
		f = &File{}
		m.files[file] = f
	}
	if old, ok := f.lookup(sortKey); ok {
		// Replacing an entry: drop the old owner's location record
		// first so ownership never dangles.
		if old.key != key {
			m.dropLoc(old.key, loc{file, sortKey})
		} else {
			f.set(entry{sort: sortKey, key: key, data: data})
			return
		}
	}
	f.set(entry{sort: sortKey, key: key, data: data})
	m.locs[key] = append(m.locs[key], loc{file, sortKey})
}

func (m *Model) dropLoc(key string, l loc) {
	ls := m.locs[key]
	for i := range ls {
		if ls[i] == l {
			m.locs[key] = append(ls[:i], ls[i+1:]...)
			break
		}
	}
	if len(m.locs[key]) == 0 {
		delete(m.locs, key)
	}
}

// DeleteKey removes every entry the logical key owns, across all files.
// Files left with no entries at all cease to exist (a zephyr class
// whose last ACE went away loses its files, exactly as a full build
// would never create them).
func (m *Model) DeleteKey(key string) {
	for _, l := range m.locs[key] {
		if f := m.files[l.file]; f != nil {
			f.del(l.sort)
			if f.n == 0 {
				delete(m.files, l.file)
			}
		}
	}
	delete(m.locs, key)
}

// KeysWithPrefix lists the logical keys currently in the model that
// start with prefix, for dependency functions that dirty a whole key
// family ("shcred:*").
func (m *Model) KeysWithPrefix(prefix string) []string {
	var out []string
	for k := range m.locs {
		if strings.HasPrefix(k, prefix) {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// Bytes renders one file; nil if the file does not exist.
func (m *Model) Bytes(file string) []byte {
	f := m.files[file]
	if f == nil {
		return nil
	}
	return f.Bytes()
}

// Files renders every file. The map is freshly allocated; the byte
// slices are the model's render caches and must not be mutated. They
// stay valid until the model next renders after a mutation — consume
// (or copy) them before the next pass patches the model.
func (m *Model) Files() map[string][]byte {
	out := make(map[string][]byte, len(m.files))
	for name, f := range m.files {
		out[name] = f.Bytes()
	}
	return out
}

// NumEntries reports the total entry count, for stats and tests.
func (m *Model) NumEntries() int {
	n := 0
	for _, f := range m.files {
		n += f.n
	}
	return n
}
