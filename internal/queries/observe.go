package queries

// The observability admin handles, served like any other query handle
// (the paper's idiom: everything goes through a predefined query).
// `_stats` returns the server's metric registry as (kind, name, value)
// tuples; `_trace` returns recent requests from the server's trace ring.
// Both are retrieves, so they run under the shared lock — the registry
// snapshot must not (and does not) touch the database lock.

import (
	"strconv"

	"moira/internal/mrerr"
)

func init() {
	register(&Query{
		Name: "_stats", Short: "_sts", Kind: Retrieve,
		Returns: []string{"kind", "name", "value"},
		Access:  accessAnyone,
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			if cx.Stats == nil {
				return mrerr.MrNoMatch
			}
			for _, ln := range cx.Stats.Snapshot().Lines() {
				if err := emit([]string{ln.Kind, ln.Name, ln.Value}); err != nil {
					return err
				}
			}
			return nil
		},
	})

	register(&Query{
		Name: "_trace", Short: "_trc", Kind: Retrieve,
		Args: []string{"trace_id"},
		Returns: []string{"time", "trace_id", "op", "query_handle",
			"kerberos_principal", "status", "latency"},
		Access: accessAnyone,
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			if cx.Traces == nil {
				return mrerr.MrNoMatch
			}
			matched := false
			for _, e := range cx.Traces() {
				if args[0] != "*" && e.Trace != args[0] {
					continue
				}
				matched = true
				err := emit([]string{
					strconv.FormatInt(e.Time, 10), e.Trace, e.Op, e.Handle,
					e.Principal, strconv.FormatInt(int64(e.Code), 10),
					e.Latency.String(),
				})
				if err != nil {
					return err
				}
			}
			if !matched {
				return mrerr.MrNoMatch
			}
			return nil
		},
	})
}
