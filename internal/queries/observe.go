package queries

// The observability admin handles, served like any other query handle
// (the paper's idiom: everything goes through a predefined query).
// `_stats` returns the server's metric registry as (kind, name, value)
// tuples; `_trace` returns recent requests from the server's trace
// ring; `_spans` returns the span store's kept traces one span per
// tuple; `_health` runs the readiness probes in-band, so a client that
// can reach the RPC port can ask even without a -debug-addr. All are
// retrieves, so they run lock-free — none touches the database lock.

import (
	"strconv"

	"moira/internal/mrerr"
)

func init() {
	register(&Query{
		Name: "_stats", Short: "_sts", Kind: Retrieve,
		Returns: []string{"kind", "name", "value"},
		Access:  accessAnyone,
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			if cx.Stats == nil {
				return mrerr.MrNoMatch
			}
			for _, ln := range cx.Stats.Snapshot().Lines() {
				if err := emit([]string{ln.Kind, ln.Name, ln.Value}); err != nil {
					return err
				}
			}
			return nil
		},
	})

	register(&Query{
		Name: "_trace", Short: "_trc", Kind: Retrieve,
		Args: []string{"trace_id"},
		Returns: []string{"time", "trace_id", "op", "query_handle",
			"kerberos_principal", "status", "latency"},
		Access: accessAnyone,
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			if cx.Traces == nil {
				return mrerr.MrNoMatch
			}
			matched := false
			for _, e := range cx.Traces() {
				if args[0] != "*" && e.Trace != args[0] {
					continue
				}
				matched = true
				err := emit([]string{
					strconv.FormatInt(e.Time, 10), e.Trace, e.Op, e.Handle,
					e.Principal, strconv.FormatInt(int64(e.Code), 10),
					e.Latency.String(),
				})
				if err != nil {
					return err
				}
			}
			if !matched {
				return mrerr.MrNoMatch
			}
			return nil
		},
	})

	register(&Query{
		Name: "_spans", Short: "_spn", Kind: Retrieve,
		Args: []string{"trace_id"},
		Returns: []string{"trace_id", "span_id", "parent_span", "process",
			"name", "detail", "start_ns", "duration", "status"},
		Access: accessAnyone,
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			if cx.Spans == nil {
				return mrerr.MrNoMatch
			}
			matched := false
			for _, tr := range cx.Spans() {
				if args[0] != "*" && tr.TraceID != args[0] {
					continue
				}
				matched = true
				for _, sp := range tr.Spans {
					err := emit([]string{
						sp.TraceID, sp.SpanID, sp.Parent, sp.Process,
						sp.Name, sp.Detail,
						strconv.FormatInt(sp.Start.UnixNano(), 10),
						sp.Duration.String(),
						strconv.FormatInt(int64(sp.Code), 10),
					})
					if err != nil {
						return err
					}
				}
			}
			if !matched {
				return mrerr.MrNoMatch
			}
			return nil
		},
	})

	register(&Query{
		Name: "_health", Short: "_hlt", Kind: Retrieve,
		Returns: []string{"probe", "ok", "detail"},
		Access:  accessAnyone,
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			if cx.Health == nil {
				return mrerr.MrNoMatch
			}
			for _, st := range cx.Health() {
				ok := "0"
				if st.OK {
					ok = "1"
				}
				if err := emit([]string{st.Name, ok, st.Detail}); err != nil {
					return err
				}
			}
			return nil
		},
	})
}
