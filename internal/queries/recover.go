package queries

// Boot-time recovery: reassemble the authoritative database from a
// durable data directory after any crash. The sequence is the one the
// paper's operators performed by hand after a bad night — restore the
// newest good dump, roll the journal forward, check consistency — made
// automatic and crash-safe:
//
//  1. find the newest snapshot whose MANIFEST verifies (SHA-256 + row
//     counts per table); skip damaged ones with a report,
//  2. restore it — bootstrapping a fresh database only when the data
//     directory holds no snapshots at all (first boot); if generations
//     exist but none verifies, recovery refuses with
//     ErrNoUsableSnapshot rather than silently serving an empty store,
//  3. replay every journal segment from the snapshot's recorded
//     sequence on, tolerating exactly one torn final line and refusing
//     mid-file corruption,
//  4. run the referential-integrity checker (mrfsck).
//
// The caller then opens a fresh journal segment and serves.

import (
	"errors"
	"fmt"

	"moira/internal/clock"
	"moira/internal/db"
)

// ErrNoUsableSnapshot means snapshot generations exist but every one
// failed manifest verification. Recovery must not bootstrap a fresh
// database in that state: journal segments older than the snapshots'
// recorded sequences have been pruned, so a fresh database plus the
// retained segments would silently drop most of the store's history.
// An operator has to inspect the snapshot directory instead.
var ErrNoUsableSnapshot = errors.New("queries: no snapshot generation verifies")

// RecoverInfo reports what recovery found and did.
type RecoverInfo struct {
	// Generation is the restored snapshot's generation, 0 when no
	// usable snapshot existed and the database was bootstrapped fresh.
	Generation int64
	// SnapshotTime is the restored snapshot's manifest timestamp.
	SnapshotTime int64
	// SkippedSnapshots lists newer snapshots that failed manifest
	// verification and were passed over, with the reason.
	SkippedSnapshots []string
	// SegmentsReplayed is how many journal segments were rolled
	// forward.
	SegmentsReplayed int
	// Replay aggregates the journal replay counters.
	Replay ReplayStats
	// Fsck holds the integrity violations found in the recovered
	// database; a non-empty list means the store must not be trusted.
	Fsck []db.Inconsistency
}

// Recover rebuilds the database from the data directory rooted at
// root, creating the layout if it does not exist yet (first boot).
// clk may be nil for the system clock; logf may be nil. It returns
// ErrJournalCorrupt (wrapped) when the journal is damaged anywhere but
// a segment's expected torn tail, and ErrNoUsableSnapshot (wrapped)
// when snapshots exist but every one fails verification — such a store
// needs operator attention, not automatic recovery.
func Recover(root string, clk clock.Clock, logf func(string, ...any)) (*db.DB, *RecoverInfo, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	dd, err := db.OpenDataDir(root)
	if err != nil {
		return nil, nil, err
	}
	store, err := db.NewCheckpointStore(dd.SnapshotsDir(), 0)
	if err != nil {
		return nil, nil, err
	}
	info := &RecoverInfo{}

	// Newest manifest-valid snapshot wins; damaged ones are reported
	// and skipped, falling back toward older generations.
	gens, err := store.Generations()
	if err != nil {
		return nil, nil, err
	}
	var d *db.DB
	replayFrom := int64(0)
	for i := len(gens) - 1; i >= 0; i-- {
		gen := gens[i]
		dir := store.Path(gen)
		m, verr := db.ReadManifest(dir)
		if verr == nil {
			verr = m.Verify(dir)
		}
		if verr != nil {
			info.SkippedSnapshots = append(info.SkippedSnapshots,
				fmt.Sprintf("gen %d: %v", gen, verr))
			logf("recover: skipping snapshot generation %d: %v", gen, verr)
			continue
		}
		d, err = db.Restore(dir, clk)
		if err != nil {
			return nil, nil, err
		}
		info.Generation = gen
		info.SnapshotTime = m.Time
		replayFrom = m.JournalSeq
		break
	}
	if d == nil {
		if len(gens) > 0 {
			// Snapshots exist but none is usable. Bootstrapping fresh here
			// would replay only the retained segments — everything older
			// was pruned when those snapshots were taken — and serve a
			// near-empty store as authoritative. Recoverable corruption
			// must not become silent data loss: stop and make the
			// operator decide.
			return nil, info, fmt.Errorf(
				"%w: all %d generations under %s failed verification (%v); refusing to bootstrap fresh over existing history",
				ErrNoUsableSnapshot, len(gens), store.Dir(), info.SkippedSnapshots)
		}
		d = NewBootstrappedDB(clk)
	}

	// Roll forward through the segments the snapshot does not cover.
	segs, err := dd.Segments()
	if err != nil {
		return nil, nil, err
	}
	pending := segs[:0:0]
	for _, s := range segs {
		if s.Seq >= replayFrom {
			pending = append(pending, s)
		}
	}
	stats, err := ReplaySegments(d, pending, logf)
	if stats != nil {
		info.Replay = *stats
	}
	if err != nil {
		return nil, info, err
	}
	info.SegmentsReplayed = len(pending)

	info.Fsck = d.Fsck()
	return d, info, nil
}

// Summary renders the recovery as one log line.
func (info *RecoverInfo) Summary() string {
	src := "bootstrapped fresh database"
	if info.Generation > 0 {
		src = fmt.Sprintf("restored snapshot generation %d", info.Generation)
	}
	return fmt.Sprintf("%s, replayed %d segments (%d applied, %d skipped, %d failed, %d torn), %d skipped snapshots, %d fsck findings",
		src, info.SegmentsReplayed, info.Replay.Applied, info.Replay.Skipped,
		info.Replay.Failed, info.Replay.Torn, len(info.SkippedSnapshots), len(info.Fsck))
}
