package queries

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"moira/internal/clock"
	"moira/internal/db"
)

func TestJournalFormatIsParseable(t *testing.T) {
	f := newFixture(t)
	var journal bytes.Buffer
	f.d.SetJournal(&journal)
	// checkNameChars rejects ':' in logins, so use a legal login but
	// awkward free-text fields; the journal must escape them.
	f.mustRun(t, f.priv, "add_user", "weird", UniqueUID, "/bin/csh",
		"We:ird", "Na\nme", "", "1", "", "STAFF")
	line := strings.TrimRight(journal.String(), "\n")
	rec, err := db.ParseJournalLine(line)
	if err != nil {
		t.Fatalf("ParseJournalLine(%q): %v", line, err)
	}
	if rec.Query != "add_user" || rec.Args[0] != "weird" || rec.Args[3] != "We:ird" || rec.Args[4] != "Na\nme" {
		t.Errorf("record = %+v", rec)
	}
	if rec.Time != f.clk.Now().Unix() {
		t.Errorf("time = %d", rec.Time)
	}
}

func TestJournalSkipsRejectedWrites(t *testing.T) {
	f := newFixture(t)
	var journal bytes.Buffer
	f.d.SetJournal(&journal)
	// A failing write must not be journaled.
	f.run(f.priv, "add_machine", "x.mit.edu", "NOTATYPE")
	if journal.Len() != 0 {
		t.Errorf("failed write journaled: %q", journal.String())
	}
	// Retrieves are never journaled.
	f.mustRun(t, f.priv, "get_machine", "*")
	if journal.Len() != 0 {
		t.Errorf("retrieve journaled: %q", journal.String())
	}
}

// TestBackupPlusJournalRecovery is the full section 5.2.2 recovery story:
// nightly backup, a day of journaled changes, catastrophic loss, restore
// from the backup, replay the journal — no transactions lost.
func TestBackupPlusJournalRecovery(t *testing.T) {
	clk := clock.NewFake(time.Unix(600000000, 0))
	d := NewBootstrappedDB(clk)
	priv := &Context{DB: d, Privileged: true, App: "test"}
	run := func(name string, args ...string) {
		t.Helper()
		if err := Execute(priv, name, args, func([]string) error { return nil }); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	// Pre-backup state.
	run("add_machine", "charon.mit.edu", "VAX")
	run("add_user", "early", "-1", "/bin/csh", "Early", "Bird", "", "1", "", "STAFF")

	// Nightly backup.
	backupDir := t.TempDir()
	if err := d.Backup(backupDir); err != nil {
		t.Fatal(err)
	}

	// The day's journaled transactions.
	var journal bytes.Buffer
	d.SetJournal(&journal)
	clk.Advance(time.Hour)
	run("add_user", "daytime", "-1", "/bin/csh", "Day", "Time", "", "1", "", "STAFF")
	run("add_list", "lunchclub", "1", "1", "0", "1", "0", "0", "USER", "daytime", "lunch")
	run("add_member_to_list", "lunchclub", "USER", "daytime")
	run("update_user_shell", "early", "/bin/sh")
	run("add_machine", "new.mit.edu", "RT")
	run("delete_machine", "new.mit.edu")

	// Catastrophe: the binary database is lost. Restore + replay.
	restored, err := db.Restore(backupDir, clock.NewFake(clk.Now()))
	if err != nil {
		t.Fatal(err)
	}
	stats, err := ReplayJournal(restored, bytes.NewReader(journal.Bytes()), 0, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Failed != 0 {
		t.Fatalf("replay stats: %+v", stats)
	}
	if stats.Applied != 6 {
		t.Errorf("applied = %d, want 6", stats.Applied)
	}

	// The day's transactions survived.
	restored.LockShared()
	defer restored.UnlockShared()
	if _, ok := restored.UserByLogin("daytime"); !ok {
		t.Error("daytime user lost")
	}
	if u, _ := restored.UserByLogin("early"); u.Shell != "/bin/sh" {
		t.Errorf("early's shell = %q", u.Shell)
	}
	l, ok := restored.ListByName("lunchclub")
	if !ok {
		t.Fatal("lunchclub lost")
	}
	if len(restored.MembersOf(l.ListID)) != 1 {
		t.Error("lunchclub membership lost")
	}
	if _, ok := restored.MachineByName("NEW.MIT.EDU"); ok {
		t.Error("deleted machine resurrected")
	}
}

// TestReplayOverlapIsIdempotent replays a journal against a database that
// already contains its effects (the journal window overlapping the dump).
func TestReplayOverlapIsIdempotent(t *testing.T) {
	clk := clock.NewFake(time.Unix(600000000, 0))
	d := NewBootstrappedDB(clk)
	priv := &Context{DB: d, Privileged: true, App: "test"}
	var journal bytes.Buffer
	d.SetJournal(&journal)
	if err := Execute(priv, "add_machine", []string{"charon.mit.edu", "VAX"},
		func([]string) error { return nil }); err != nil {
		t.Fatal(err)
	}
	// Replay onto the same database: the add collides, counted skipped.
	stats, err := ReplayJournal(d, bytes.NewReader(journal.Bytes()), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Skipped != 1 || stats.Applied != 0 || stats.Failed != 0 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestReplaySinceFilter(t *testing.T) {
	clk := clock.NewFake(time.Unix(600000000, 0))
	d := NewBootstrappedDB(clk)
	priv := &Context{DB: d, Privileged: true, App: "test"}
	var journal bytes.Buffer
	d.SetJournal(&journal)
	run := func(name string, args ...string) {
		t.Helper()
		if err := Execute(priv, name, args, func([]string) error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	run("add_machine", "old.mit.edu", "VAX")
	clk.Advance(2 * time.Hour)
	cutoff := clk.Now().Unix()
	run("add_machine", "new.mit.edu", "VAX")

	fresh := NewBootstrappedDB(clock.NewFake(clk.Now()))
	stats, err := ReplayJournal(fresh, bytes.NewReader(journal.Bytes()), cutoff, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Applied != 1 {
		t.Errorf("applied = %d", stats.Applied)
	}
	fresh.LockShared()
	defer fresh.UnlockShared()
	if _, ok := fresh.MachineByName("OLD.MIT.EDU"); ok {
		t.Error("pre-cutoff record replayed")
	}
	if _, ok := fresh.MachineByName("NEW.MIT.EDU"); !ok {
		t.Error("post-cutoff record not replayed")
	}
}
