package queries

import (
	"testing"

	"moira/internal/mrerr"
)

func TestRouterResolve(t *testing.T) {
	f := newFixture(t)
	archive := NewBootstrappedDB(f.clk)
	r := NewRouter(f.d)
	r.Attach("archive", archive)

	d, q, err := r.Resolve("get_machine")
	if err != nil || d != f.d || q != "get_machine" {
		t.Errorf("unqualified resolve = %v %q %v", d == f.d, q, err)
	}
	d, q, err = r.Resolve("archive:get_machine")
	if err != nil || d != archive || q != "get_machine" {
		t.Errorf("qualified resolve = %v %q %v", d == archive, q, err)
	}
	if _, _, err := r.Resolve("nodb:get_machine"); err != mrerr.MrNoHandle {
		t.Errorf("unknown db err = %v", err)
	}
	if names := r.Names(); len(names) != 1 || names[0] != "archive" {
		t.Errorf("names = %v", names)
	}
	r.Detach("archive")
	if len(r.Names()) != 0 {
		t.Error("detach failed")
	}
}

func TestExecuteRoutedIsolatesDatabases(t *testing.T) {
	f := newFixture(t)
	archive := NewBootstrappedDB(f.clk)
	r := NewRouter(f.d)
	r.Attach("archive", archive)

	collect := func(handle string, args ...string) ([][]string, error) {
		var out [][]string
		err := ExecuteRouted(f.priv, r, handle, args, func(tp []string) error {
			cp := make([]string, len(tp))
			copy(cp, tp)
			out = append(out, cp)
			return nil
		})
		return out, err
	}

	// A machine written through the routed handle lands in the archive
	// only.
	if _, err := collect("archive:add_machine", "old-vax.mit.edu", "VAX"); err != nil {
		t.Fatal(err)
	}
	if _, err := collect("archive:get_machine", "OLD-VAX.MIT.EDU"); err != nil {
		t.Errorf("archive read: %v", err)
	}
	if _, err := collect("get_machine", "OLD-VAX.MIT.EDU"); err != mrerr.MrNoMatch {
		t.Errorf("primary read err = %v", err)
	}
	// And vice versa: the fixture's machines are invisible to the archive.
	if _, err := collect("archive:get_machine", "CHARON.MIT.EDU"); err != mrerr.MrNoMatch {
		t.Errorf("archive miss err = %v", err)
	}
	if _, err := collect("get_machine", "CHARON.MIT.EDU"); err != nil {
		t.Errorf("primary hit err = %v", err)
	}
}

func TestRoutedIdentityResolvedPerDatabase(t *testing.T) {
	f := newFixture(t)
	archive := NewBootstrappedDB(f.clk)
	r := NewRouter(f.d)
	r.Attach("archive", archive)

	// alice exists only in the primary database.
	f.addUser(t, "alice")
	alice := f.userCtx("alice")

	// Against the primary, she may change her own shell.
	if err := ExecuteRouted(alice, r, "update_user_shell",
		[]string{"alice", "/bin/sh"}, func([]string) error { return nil }); err != nil {
		t.Errorf("primary self-service: %v", err)
	}
	// Against the archive she is nobody: the self rule cannot resolve a
	// user record, so the write is refused there.
	err := ExecuteRouted(alice, r, "archive:update_user_shell",
		[]string{"alice", "/bin/sh"}, func([]string) error { return nil })
	if err == nil {
		t.Error("archive write by unknown principal succeeded")
	}
	// Privileged contexts work everywhere (the DCM's direct library).
	if err := ExecuteRouted(f.priv, r, "archive:add_machine",
		[]string{"m.mit.edu", "VAX"}, func([]string) error { return nil }); err != nil {
		t.Errorf("privileged routed write: %v", err)
	}
	// Access checks route the same way.
	if err := CheckAccessRouted(alice, r, "archive:add_machine",
		[]string{"x.mit.edu", "VAX"}); err != mrerr.MrPerm {
		t.Errorf("routed access err = %v", err)
	}
	if err := CheckAccessRouted(alice, r, "update_user_shell",
		[]string{"alice", "/bin/csh"}); err != nil {
		t.Errorf("unqualified routed access err = %v", err)
	}
}
