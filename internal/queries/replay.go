package queries

// Journal replay: roll a restored database forward by re-executing the
// mutating queries recorded since the backup was taken. Together with
// mrbackup/mrrestore this closes section 5.2.2's stated gap — the
// nightly dump alone loses "roughly a day's transactions"; the journal
// recovers them.

import (
	"bufio"
	"io"

	"moira/internal/db"
	"moira/internal/mrerr"
)

// ReplayStats summarizes a replay run.
type ReplayStats struct {
	Applied int // queries re-executed successfully
	Skipped int // already present (MR_EXISTS etc.): journal overlaps the dump
	Failed  int // other errors (logged via the logf callback)
	Lines   int
}

// ReplayJournal re-executes every journal record from r against the
// database, newest state winning. Records whose effect is already
// present (the journal overlaps the backup window) count as skipped:
// re-adding an existing object or re-deleting a missing one is the
// expected overlap signature, not a failure. since filters records
// older than the given unix time (0 replays everything). logf may be
// nil.
func ReplayJournal(d *db.DB, r io.Reader, since int64, logf func(string, ...any)) (*ReplayStats, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	stats := &ReplayStats{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	discard := func([]string) error { return nil }
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		stats.Lines++
		rec, err := db.ParseJournalLine(line)
		if err != nil {
			stats.Failed++
			logf("replay: bad line %d: %v", stats.Lines, err)
			continue
		}
		if rec.Time < since {
			continue
		}
		// Replay runs privileged: the original execution already passed
		// its access check, and list memberships may since have changed.
		// The original principal is preserved for the mod-by audit trail.
		cx := &Context{DB: d, Principal: rec.Principal, App: rec.App, TraceID: rec.Trace, Privileged: true}
		err = Execute(cx, rec.Query, rec.Args, discard)
		switch {
		case err == nil:
			stats.Applied++
		case isOverlapError(err):
			stats.Skipped++
		default:
			stats.Failed++
			logf("replay: %s %v: %v", rec.Query, rec.Args, err)
		}
	}
	if err := sc.Err(); err != nil {
		return stats, err
	}
	return stats, nil
}

// isOverlapError reports errors that signal "this change is already in
// the restored state" — the journal window overlapping the dump.
func isOverlapError(err error) bool {
	switch err {
	case mrerr.MrExists, mrerr.MrNotUnique, mrerr.MrInUse, mrerr.MrNoMatch:
		return true
	}
	return false
}
