package queries

// Journal replay: roll a restored database forward by re-executing the
// mutating queries recorded since the backup was taken. Together with
// mrbackup/mrrestore this closes section 5.2.2's stated gap — the
// nightly dump alone loses "roughly a day's transactions"; the journal
// recovers them.
//
// Replay distinguishes two kinds of damage. A *torn final line* — the
// process was killed mid-append, so the last line of a segment is
// incomplete — is the expected signature of a crash and is tolerated:
// the line is reported (ReplayStats.Torn), not executed, and replay
// succeeds. Because every process opens a fresh segment and never
// appends to an old one, any segment's tail is a legitimate crash
// point: the segment that was active when some past process died keeps
// its torn last line forever (until a checkpoint prunes it), so
// recovery stays idempotent across any number of restarts. *Mid-file
// corruption* — a line that fails its CRC or cannot be parsed anywhere
// but a segment's tail — means the journal itself was damaged after it
// was written; replaying past it would silently diverge from the real
// history, so it is a hard error.

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"

	"moira/internal/db"
	"moira/internal/mrerr"
)

// ErrJournalCorrupt marks mid-file journal corruption: recovery must
// not proceed automatically from such a journal.
var ErrJournalCorrupt = errors.New("queries: journal corrupt")

// ReplayStats summarizes a replay run.
type ReplayStats struct {
	Applied int // queries re-executed successfully
	Skipped int // already present (MR_EXISTS etc.): journal overlaps the dump
	Failed  int // other errors (logged via the logf callback)
	Torn    int // torn final lines, tolerated and not executed (at most 1 per segment)
	Lines   int
}

// add folds one segment's stats into the aggregate.
func (s *ReplayStats) add(o *ReplayStats) {
	s.Applied += o.Applied
	s.Skipped += o.Skipped
	s.Failed += o.Failed
	s.Torn += o.Torn
	s.Lines += o.Lines
}

// replayOpts tunes one replay pass.
type replayOpts struct {
	// requireCRC rejects lines without a valid CRC suffix instead of
	// attempting them as legacy records. Segments written by the
	// durable journal writer always carry CRCs, so recovery runs
	// strict; mrrestore on an arbitrary journal file stays lenient.
	requireCRC bool
	// allowTorn tolerates a damaged final line (crash signature).
	allowTorn bool
}

// ReplayJournal re-executes every journal record from r against the
// database, newest state winning. Records whose effect is already
// present (the journal overlaps the backup window) count as skipped:
// re-adding an existing object or re-deleting a missing one is the
// expected overlap signature, not a failure. since filters records
// older than the given unix time (0 replays everything). logf may be
// nil. A damaged final line is tolerated and counted in Torn; damage
// anywhere else fails with ErrJournalCorrupt.
func ReplayJournal(d *db.DB, r io.Reader, since int64, logf func(string, ...any)) (*ReplayStats, error) {
	return replayReader(d, r, since, logf, replayOpts{allowTorn: true})
}

// replayReader is the single-stream replay engine.
func replayReader(d *db.DB, r io.Reader, since int64, logf func(string, ...any), opts replayOpts) (*ReplayStats, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	stats := &ReplayStats{}
	discard := func([]string) error { return nil }

	replayLine := func(line string, final bool) error {
		stats.Lines++
		rec, err := parseLine(line, opts.requireCRC)
		if err != nil {
			if final && opts.allowTorn {
				stats.Torn++
				logf("replay: torn final line %d tolerated: %v", stats.Lines, err)
				return nil
			}
			return fmt.Errorf("%w: line %d: %v", ErrJournalCorrupt, stats.Lines, err)
		}
		if rec.Time < since {
			return nil
		}
		// Replay runs privileged: the original execution already passed
		// its access check, and list memberships may since have changed.
		// The original principal is preserved for the mod-by audit trail.
		cx := &Context{DB: d, Principal: rec.Principal, App: rec.App, TraceID: rec.Trace, Privileged: true}
		err = Execute(cx, rec.Query, rec.Args, discard)
		switch {
		case err == nil:
			stats.Applied++
		case isOverlapError(err):
			stats.Skipped++
		default:
			stats.Failed++
			logf("replay: %s %v: %v", rec.Query, rec.Args, err)
		}
		return nil
	}

	// One line of lookahead: a line is only "final" if nothing follows
	// it, and only the final line may be torn.
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var pending string
	havePending := false
	for sc.Scan() {
		if sc.Text() == "" {
			continue
		}
		if havePending {
			if err := replayLine(pending, false); err != nil {
				return stats, err
			}
		}
		pending = sc.Text()
		havePending = true
	}
	if err := sc.Err(); err != nil {
		return stats, err
	}
	if havePending {
		if err := replayLine(pending, true); err != nil {
			return stats, err
		}
	}
	return stats, nil
}

// parseLine decodes one journal line, optionally insisting on a valid
// CRC suffix.
func parseLine(line string, requireCRC bool) (*db.JournalRecord, error) {
	if requireCRC {
		if _, state := db.SplitJournalCRC(line); state != db.CRCValid {
			return nil, fmt.Errorf("missing or invalid CRC suffix")
		}
	}
	return db.ParseJournalLine(line)
}

// ReplaySegments rolls d forward through the given journal segment
// files in order. Every segment may carry a torn final line: each
// process opens a fresh segment and never appends to an old one, so
// the tail of any segment is where some past process may have died
// mid-append — and the tear persists across later boots until a
// checkpoint prunes the segment, so tolerating it everywhere is what
// keeps recovery idempotent. A torn or corrupt line anywhere but a
// segment's tail is mid-journal damage and fails with
// ErrJournalCorrupt. Segments are replayed strictly: every line must
// carry a valid CRC, so a truncated record can never be mistaken for a
// shorter legitimate one.
func ReplaySegments(d *db.DB, segs []db.Segment, logf func(string, ...any)) (*ReplayStats, error) {
	total := &ReplayStats{}
	for _, seg := range segs {
		f, err := os.Open(seg.Path)
		if err != nil {
			return total, err
		}
		stats, err := replayReader(d, f, 0, logf, replayOpts{
			requireCRC: true,
			allowTorn:  true,
		})
		f.Close()
		total.add(stats)
		if err != nil {
			return total, fmt.Errorf("segment %d (%s): %w", seg.Seq, seg.Path, err)
		}
	}
	return total, nil
}

// ApplyOutcome classifies the result of applying one journal record.
type ApplyOutcome int

// Apply outcomes, mirroring ReplayStats' counters.
const (
	ApplyApplied ApplyOutcome = iota // executed successfully
	ApplySkipped                     // effect already present (overlap)
	ApplyFailed                      // other error; record could not take effect
)

// ApplyJournalLine executes one CRC-valid journal line against d with
// replay semantics: privileged, original principal preserved, overlap
// errors (the record's effect is already present) counted as skipped
// rather than failed. Replication tailers feed received records through
// it so a replica's apply path is exactly the recovery path. A line
// that fails its CRC or cannot be parsed returns ApplyFailed and a
// wrapped ErrJournalCorrupt: the stream, not the database, is damaged.
func ApplyJournalLine(d *db.DB, line string) (ApplyOutcome, error) {
	rec, err := parseLine(line, true)
	if err != nil {
		return ApplyFailed, fmt.Errorf("%w: %v", ErrJournalCorrupt, err)
	}
	cx := &Context{DB: d, Principal: rec.Principal, App: rec.App, TraceID: rec.Trace, Privileged: true}
	err = Execute(cx, rec.Query, rec.Args, func([]string) error { return nil })
	switch {
	case err == nil:
		return ApplyApplied, nil
	case isOverlapError(err):
		return ApplySkipped, nil
	default:
		return ApplyFailed, err
	}
}

// isOverlapError reports errors that signal "this change is already in
// the restored state" — the journal window overlapping the dump.
func isOverlapError(err error) bool {
	switch err {
	case mrerr.MrExists, mrerr.MrNotUnique, mrerr.MrInUse, mrerr.MrNoMatch:
		return true
	}
	return false
}
