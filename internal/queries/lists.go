package queries

// Queries over lists and membership (section 7.0.3).

import (
	"moira/internal/acl"
	"moira/internal/db"
	"moira/internal/mrerr"
	"moira/internal/wildcard"
)

// UniqueGID is the <mr.h> sentinel asking for a fresh group ID.
const UniqueGID = "-1"

func matchLists(d *db.DB, pattern string) []*db.List {
	return d.ListsMatchingName(pattern)
}

func oneList(d *db.DB, name string) (*db.List, error) {
	ls := matchLists(d, name)
	switch len(ls) {
	case 0:
		return nil, mrerr.MrList
	case 1:
		return ls[0], nil
	default:
		return nil, mrerr.MrNotUnique
	}
}

// onListACE reports whether the caller satisfies the list's ACE.
func onListACE(cx *Context, l *db.List) bool {
	if cx.Privileged {
		return true
	}
	return acl.CheckACE(cx.DB, l.ACLType, l.ACLID, cx.UserID)
}

// listTuple renders the get_list_info return row.
func listTuple(d *db.DB, l *db.List) []string {
	return []string{
		l.Name, b2s(l.Active), b2s(l.Public), b2s(l.Hidden), b2s(l.Maillist),
		b2s(l.Group), i2s(l.GID), l.ACLType, acl.NameOfACE(d, l.ACLType, l.ACLID),
		l.Desc, i642s(l.Mod.Time), l.Mod.By, l.Mod.With,
	}
}

// memberResolve turns a (type, name) pair into a member id. When intern
// is true a STRING member is created if absent; otherwise an unknown
// string is MR_NO_MATCH.
func memberResolve(d *db.DB, mtype, name string, intern bool) (int, error) {
	switch mtype {
	case db.ACEUser:
		u, ok := d.UserByLogin(name)
		if !ok {
			return 0, mrerr.MrNoMatch
		}
		return u.UsersID, nil
	case db.ACEList:
		l, ok := d.ListByName(name)
		if !ok {
			return 0, mrerr.MrNoMatch
		}
		return l.ListID, nil
	case db.ACEString:
		if id, ok := d.StringID(name); ok {
			return id, nil
		}
		if !intern {
			return 0, mrerr.MrNoMatch
		}
		return d.InternString(name)
	default:
		return 0, mrerr.MrType
	}
}

// memberName renders a member id back to its name.
func memberName(d *db.DB, mtype string, id int) string {
	switch mtype {
	case db.ACEUser:
		if u, ok := d.UserByID(id); ok {
			return u.Login
		}
	case db.ACEList:
		if l, ok := d.ListByID(id); ok {
			return l.Name
		}
	case db.ACEString:
		if s, ok := d.StringByID(id); ok {
			return s.String
		}
	}
	return "???"
}

// resolveListACEArgs validates the (ace_type, ace_name) argument pair of
// add_list/update_list, allowing the self-referential case where the
// access list is the list being created or renamed.
func resolveListACEArgs(d *db.DB, aceType, aceName, selfName string) (string, int, bool, error) {
	if aceType == db.ACEList && aceName == selfName {
		return db.ACEList, 0, true, nil // self-referential; fix up after insert
	}
	typ, id, err := acl.ResolveACE(d, aceType, aceName)
	return typ, id, false, err
}

func init() {
	register(&Query{
		Name: "get_list_info", Short: "glin", Kind: Retrieve,
		Args: []string{"list"},
		Returns: []string{"list", "active", "public", "hidden", "maillist", "group",
			"gid", "ace_type", "ace_name", "description", "modtime", "modby", "modwith"},
		Access: accessAnyone,
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			onQueryACL := cx.onACL("get_list_info")
			if wildcard.HasWildcards(args[0]) && !onQueryACL {
				return mrerr.MrPerm
			}
			ls := matchLists(cx.DB, args[0])
			if len(ls) == 0 {
				return mrerr.MrNoMatch
			}
			var tuples [][]string
			for _, l := range ls {
				if l.Hidden && !onQueryACL && !onListACE(cx, l) {
					continue
				}
				tuples = append(tuples, listTuple(cx.DB, l))
			}
			if len(tuples) == 0 {
				return mrerr.MrPerm
			}
			return emitSorted(tuples, emit)
		},
	})

	register(&Query{
		Name: "expand_list_names", Short: "exln", Kind: Retrieve,
		Args:    []string{"list"},
		Returns: []string{"list"},
		Access:  accessAnyone,
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			var tuples [][]string
			for _, l := range matchLists(cx.DB, args[0]) {
				if l.Hidden && !cx.onACL("expand_list_names") && !onListACE(cx, l) {
					continue
				}
				tuples = append(tuples, []string{l.Name})
			}
			if len(tuples) == 0 {
				return mrerr.MrNoMatch
			}
			return emitSorted(tuples, emit)
		},
	})

	register(&Query{
		Name: "add_list", Short: "alis", Kind: Append,
		Args: []string{"list", "active", "public", "hidden", "maillist", "group",
			"gid", "ace_type", "ace_name", "description"},
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			d := cx.DB
			name := args[0]
			if err := checkNameChars(name); err != nil {
				return err
			}
			if _, dup := d.ListByName(name); dup {
				return mrerr.MrExists
			}
			active, err := parseBool(args[1])
			if err != nil {
				return err
			}
			public, err := parseBool(args[2])
			if err != nil {
				return err
			}
			hidden, err := parseBool(args[3])
			if err != nil {
				return err
			}
			maillist, err := parseBool(args[4])
			if err != nil {
				return err
			}
			group, err := parseBool(args[5])
			if err != nil {
				return err
			}
			gid, err := parseInt(args[6])
			if err != nil {
				return err
			}
			if group && args[6] == UniqueGID {
				if gid, err = d.AllocID("gid"); err != nil {
					return err
				}
			}
			aceType, aceID, selfRef, err := resolveListACEArgs(d, args[7], args[8], name)
			if err != nil {
				return err
			}
			id, err := d.AllocID("list_id")
			if err != nil {
				return err
			}
			if selfRef {
				aceID = id
			}
			l := &db.List{
				ListID: id, Name: name, Active: active, Public: public,
				Hidden: hidden, Maillist: maillist, Group: group, GID: gid,
				Desc: args[9], ACLType: aceType, ACLID: aceID, Mod: cx.modInfo(),
			}
			return d.InsertList(l)
		},
	})

	register(&Query{
		Name: "update_list", Short: "ulis", Kind: Update,
		Args: []string{"list", "newname", "active", "public", "hidden", "maillist",
			"group", "gid", "ace_type", "ace_name", "description"},
		Access: func(cx *Context, args []string) error {
			if cx.onACL("update_list") {
				return nil
			}
			l, err := oneList(cx.DB, args[0])
			if err != nil {
				return err
			}
			if onListACE(cx, l) {
				return nil
			}
			return mrerr.MrPerm
		},
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			d := cx.DB
			l, err := oneList(d, args[0])
			if err != nil {
				return err
			}
			newname := args[1]
			if err := checkNameChars(newname); err != nil {
				return err
			}
			if newname != l.Name {
				if _, dup := d.ListByName(newname); dup {
					return mrerr.MrNotUnique
				}
			}
			active, err := parseBool(args[2])
			if err != nil {
				return err
			}
			public, err := parseBool(args[3])
			if err != nil {
				return err
			}
			hidden, err := parseBool(args[4])
			if err != nil {
				return err
			}
			maillist, err := parseBool(args[5])
			if err != nil {
				return err
			}
			group, err := parseBool(args[6])
			if err != nil {
				return err
			}
			gid, err := parseInt(args[7])
			if err != nil {
				return err
			}
			if group && args[7] == UniqueGID {
				if gid, err = d.AllocID("gid"); err != nil {
					return err
				}
			}
			aceType, aceID, selfRef, err := resolveListACEArgs(d, args[8], args[9], newname)
			if err != nil {
				return err
			}
			if selfRef {
				aceID = l.ListID
			}
			if newname != l.Name {
				d.RenameList(l, newname)
			}
			l.Active, l.Public, l.Hidden = active, public, hidden
			l.Maillist, l.Group, l.GID = maillist, group, gid
			l.ACLType, l.ACLID = aceType, aceID
			l.Desc = args[10]
			l.Mod = cx.modInfo()
			d.NoteUpdate(db.TList)
			return nil
		},
	})

	register(&Query{
		Name: "delete_list", Short: "dlis", Kind: Delete,
		Args: []string{"list"},
		Access: func(cx *Context, args []string) error {
			if cx.onACL("delete_list") {
				return nil
			}
			l, err := oneList(cx.DB, args[0])
			if err != nil {
				return err
			}
			if onListACE(cx, l) {
				return nil
			}
			return mrerr.MrPerm
		},
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			d := cx.DB
			l, err := oneList(d, args[0])
			if err != nil {
				return err
			}
			if len(d.MembersOf(l.ListID)) > 0 {
				return mrerr.MrInUse
			}
			if len(d.ListsContaining(db.ACEList, l.ListID)) > 0 {
				return mrerr.MrInUse
			}
			// A self-referential ACE does not block deletion.
			for _, use := range aceUses(d, db.ACEList, l.ListID) {
				if use[0] == "LIST" && use[1] == l.Name {
					continue
				}
				return mrerr.MrInUse
			}
			d.DeleteList(l)
			return nil
		},
	})

	register(&Query{
		Name: "add_member_to_list", Short: "amtl", Kind: Append,
		Args: []string{"list", "type", "member"},
		Access: func(cx *Context, args []string) error {
			if cx.onACL("add_member_to_list") {
				return nil
			}
			l, err := oneList(cx.DB, args[0])
			if err != nil {
				return err
			}
			if onListACE(cx, l) {
				return nil
			}
			// Anyone may add themselves to a public list.
			if l.Public && args[1] == db.ACEUser && args[2] == cx.Principal && cx.UserID != 0 {
				return nil
			}
			return mrerr.MrPerm
		},
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			d := cx.DB
			l, err := oneList(d, args[0])
			if err != nil {
				return err
			}
			mtype := args[1]
			id, err := memberResolve(d, mtype, args[2], true)
			if err != nil {
				return err
			}
			if err := d.AddMember(l.ListID, mtype, id); err != nil {
				return err
			}
			l.Mod = cx.modInfo()
			d.NoteUpdate(db.TList)
			return nil
		},
	})

	register(&Query{
		Name: "delete_member_from_list", Short: "dmfl", Kind: Delete,
		Args: []string{"list", "type", "member"},
		Access: func(cx *Context, args []string) error {
			if cx.onACL("delete_member_from_list") {
				return nil
			}
			l, err := oneList(cx.DB, args[0])
			if err != nil {
				return err
			}
			if onListACE(cx, l) {
				return nil
			}
			if l.Public && args[1] == db.ACEUser && args[2] == cx.Principal && cx.UserID != 0 {
				return nil
			}
			return mrerr.MrPerm
		},
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			d := cx.DB
			l, err := oneList(d, args[0])
			if err != nil {
				return err
			}
			mtype := args[1]
			if mtype != db.ACEUser && mtype != db.ACEList && mtype != db.ACEString {
				return mrerr.MrType
			}
			id, err := memberResolve(d, mtype, args[2], false)
			if err != nil {
				return err
			}
			if err := d.DeleteMember(l.ListID, mtype, id); err != nil {
				return err
			}
			l.Mod = cx.modInfo()
			d.NoteUpdate(db.TList)
			return nil
		},
	})

	register(&Query{
		Name: "get_ace_use", Short: "gaus", Kind: Retrieve,
		Args:    []string{"ace_type", "ace_name"},
		Returns: []string{"object_type", "object_name"},
		Access: func(cx *Context, args []string) error {
			if cx.onACL("get_ace_use") {
				return nil
			}
			switch args[0] {
			case db.ACEUser, db.ACERUser:
				if cx.Principal != "" && args[1] == cx.Principal {
					return nil
				}
			case db.ACEList, db.ACERList:
				if l, ok := cx.DB.ListByName(args[1]); ok && onListACE(cx, l) {
					return nil
				}
			}
			return mrerr.MrPerm
		},
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			d := cx.DB
			var tuples [][]string
			switch args[0] {
			case db.ACEUser:
				u, ok := d.UserByLogin(args[1])
				if !ok {
					return mrerr.MrNoMatch
				}
				tuples = aceUses(d, db.ACEUser, u.UsersID)
			case db.ACEList:
				l, ok := d.ListByName(args[1])
				if !ok {
					return mrerr.MrNoMatch
				}
				tuples = aceUses(d, db.ACEList, l.ListID)
			case db.ACERUser:
				u, ok := d.UserByLogin(args[1])
				if !ok {
					return mrerr.MrNoMatch
				}
				tuples = aceUses(d, db.ACEUser, u.UsersID)
				// Recursively: every list the user is in may itself be an ACE.
				d.EachList(func(l *db.List) bool {
					if acl.IsUserInList(d, l.ListID, u.UsersID) {
						tuples = append(tuples, aceUses(d, db.ACEList, l.ListID)...)
					}
					return true
				})
			case db.ACERList:
				l, ok := d.ListByName(args[1])
				if !ok {
					return mrerr.MrNoMatch
				}
				tuples = aceUses(d, db.ACEList, l.ListID)
				d.EachList(func(outer *db.List) bool {
					if acl.IsListInList(d, outer.ListID, l.ListID) {
						tuples = append(tuples, aceUses(d, db.ACEList, outer.ListID)...)
					}
					return true
				})
			default:
				return mrerr.MrType
			}
			if len(tuples) == 0 {
				return mrerr.MrNoMatch
			}
			// Deduplicate (recursive expansion can hit an object twice).
			seen := map[string]bool{}
			var uniq [][]string
			for _, t := range tuples {
				k := t[0] + "\x00" + t[1]
				if !seen[k] {
					seen[k] = true
					uniq = append(uniq, t)
				}
			}
			return emitSorted(uniq, emit)
		},
	})

	register(&Query{
		Name: "qualified_get_lists", Short: "qgli", Kind: Retrieve,
		Args:    []string{"active", "public", "hidden", "maillist", "group"},
		Returns: []string{"list"},
		Access: func(cx *Context, args []string) error {
			if cx.onACL("qualified_get_lists") {
				return nil
			}
			// Any user may run this with active TRUE and hidden FALSE.
			a, err1 := parseTri(args[0])
			h, err2 := parseTri(args[2])
			if err1 == nil && err2 == nil && a == triTrue && h == triFalse {
				return nil
			}
			return mrerr.MrPerm
		},
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			var tri [5]triState
			for i := range tri {
				t, err := parseTri(args[i])
				if err != nil {
					return err
				}
				tri[i] = t
			}
			var tuples [][]string
			cx.DB.EachList(func(l *db.List) bool {
				if tri[0].matches(l.Active) && tri[1].matches(l.Public) &&
					tri[2].matches(l.Hidden) && tri[3].matches(l.Maillist) &&
					tri[4].matches(l.Group) {
					tuples = append(tuples, []string{l.Name})
				}
				return true
			})
			if len(tuples) == 0 {
				return mrerr.MrNoMatch
			}
			return emitSorted(tuples, emit)
		},
	})

	register(&Query{
		Name: "get_members_of_list", Short: "gmol", Kind: Retrieve,
		Args:    []string{"list"},
		Returns: []string{"type", "value"},
		Access: func(cx *Context, args []string) error {
			if cx.onACL("get_members_of_list") {
				return nil
			}
			l, err := oneList(cx.DB, args[0])
			if err != nil {
				return err
			}
			if !l.Hidden || onListACE(cx, l) {
				return nil
			}
			return mrerr.MrPerm
		},
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			d := cx.DB
			l, err := oneList(d, args[0])
			if err != nil {
				return err
			}
			var tuples [][]string
			for _, m := range d.MembersOf(l.ListID) {
				tuples = append(tuples, []string{m.MemberType, memberName(d, m.MemberType, m.MemberID)})
			}
			if len(tuples) == 0 {
				return mrerr.MrNoMatch
			}
			return emitSorted(tuples, emit)
		},
	})

	register(&Query{
		Name: "get_lists_of_member", Short: "glom", Kind: Retrieve,
		Args:    []string{"type", "member"},
		Returns: []string{"list", "active", "public", "hidden", "maillist", "group"},
		Access: func(cx *Context, args []string) error {
			if cx.onACL("get_lists_of_member") {
				return nil
			}
			switch args[0] {
			case db.ACEUser, db.ACERUser:
				if cx.Principal != "" && args[1] == cx.Principal {
					return nil
				}
			case db.ACEList, db.ACERList:
				if l, ok := cx.DB.ListByName(args[1]); ok && onListACE(cx, l) {
					return nil
				}
			}
			return mrerr.MrPerm
		},
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			d := cx.DB
			typ := args[0]
			recursive := false
			switch typ {
			case db.ACERUser:
				typ, recursive = db.ACEUser, true
			case db.ACERList:
				typ, recursive = db.ACEList, true
			case db.ACERStr:
				typ, recursive = db.ACEString, true
			case db.ACEUser, db.ACEList, db.ACEString:
			default:
				return mrerr.MrType
			}
			id, err := memberResolve(d, typ, args[1], false)
			if err != nil {
				return err
			}
			direct := d.ListsContaining(typ, id)
			seen := map[int]bool{}
			for _, lid := range direct {
				seen[lid] = true
			}
			if recursive {
				// Also lists that contain (as sublists) a list the target
				// is a member of, transitively.
				frontier := append([]int(nil), direct...)
				for len(frontier) > 0 {
					lid := frontier[0]
					frontier = frontier[1:]
					for _, outer := range d.ListsContaining(db.ACEList, lid) {
						if !seen[outer] {
							seen[outer] = true
							frontier = append(frontier, outer)
						}
					}
				}
			}
			var tuples [][]string
			for lid := range seen {
				if l, ok := d.ListByID(lid); ok {
					tuples = append(tuples, []string{
						l.Name, b2s(l.Active), b2s(l.Public), b2s(l.Hidden),
						b2s(l.Maillist), b2s(l.Group),
					})
				}
			}
			if len(tuples) == 0 {
				return mrerr.MrNoMatch
			}
			return emitSorted(tuples, emit)
		},
	})

	register(&Query{
		Name: "count_members_of_list", Short: "cmol", Kind: Retrieve,
		Args:    []string{"list"},
		Returns: []string{"count"},
		Access: func(cx *Context, args []string) error {
			if cx.onACL("count_members_of_list") {
				return nil
			}
			l, err := oneList(cx.DB, args[0])
			if err != nil {
				return err
			}
			if !l.Hidden || onListACE(cx, l) {
				return nil
			}
			return mrerr.MrPerm
		},
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			l, err := oneList(cx.DB, args[0])
			if err != nil {
				return err
			}
			return emit([]string{i2s(len(cx.DB.MembersOf(l.ListID)))})
		},
	})
}
