package queries

// Bootstrap seeds a fresh database the way the original's db creation
// scripts (db/newdb and friends) did: the type-checking aliases, the
// administrative principals, and a CAPACLS row for every query that
// needs one, pointing at the "dbadmin" list.

import (
	"moira/internal/clock"
	"moira/internal/db"
)

// Admin principals created by Bootstrap.
const (
	AdminList = "dbadmin"
	AdminUser = "moira"
	RootUser  = "root"
)

// bootstrapAliases is the seed content of the alias relation. The first
// group registers the legal alias types themselves; the TYPE entries
// validate type-checked fields; the TYPEDATA entries describe the data
// type behind each member/ACE type string.
var bootstrapAliases = [][3]string{
	// Legal alias types (self-describing, as the paper notes).
	{"alias", "TYPE", "TYPE"},
	{"alias", "TYPE", "PRINTER"},
	{"alias", "TYPE", "SERVICE"},
	{"alias", "TYPE", "FILESYS"},
	{"alias", "TYPE", "TYPEDATA"},
	// Pobox types.
	{"pobox", "TYPE", "POP"},
	{"pobox", "TYPE", "SMTP"},
	{"pobox", "TYPE", "NONE"},
	// Machine types.
	{"mach_type", "TYPE", "VAX"},
	{"mach_type", "TYPE", "RT"},
	// Academic classes.
	{"class", "TYPE", "1988"}, {"class", "TYPE", "1989"},
	{"class", "TYPE", "1990"}, {"class", "TYPE", "1991"},
	{"class", "TYPE", "1992"}, {"class", "TYPE", "1993"},
	{"class", "TYPE", "G"}, {"class", "TYPE", "STAFF"},
	{"class", "TYPE", "FACULTY"}, {"class", "TYPE", "OTHER"},
	{"class", "TYPE", "TEST"},
	// DCM service types.
	{"service", "TYPE", "UNIQUE"},
	{"service", "TYPE", "REPLICAT"},
	// Filesystem types.
	{"filesys", "TYPE", "NFS"},
	{"filesys", "TYPE", "RVD"},
	{"filesys", "TYPE", "ERR"},
	// Locker types.
	{"lockertype", "TYPE", "HOMEDIR"},
	{"lockertype", "TYPE", "PROJECT"},
	{"lockertype", "TYPE", "COURSE"},
	{"lockertype", "TYPE", "SYSTEM"},
	{"lockertype", "TYPE", "OTHER"},
	// Network protocols.
	{"protocol", "TYPE", "TCP"},
	{"protocol", "TYPE", "UDP"},
	// Service cluster labels.
	{"slabel", "TYPE", "usrlib"},
	{"slabel", "TYPE", "syslib"},
	{"slabel", "TYPE", "zephyr"},
	{"slabel", "TYPE", "lpr"},
	{"slabel", "TYPE", "mail"},
	// Boolean, used by some clients' prompting.
	{"boolean", "TYPE", "0"},
	{"boolean", "TYPE", "1"},
	// Type translations: what kind of datum each typed string carries.
	{"POP", "TYPEDATA", "machine"},
	{"SMTP", "TYPEDATA", "string"},
	{"NONE", "TYPEDATA", "none"},
	{"USER", "TYPEDATA", "user"},
	{"LIST", "TYPEDATA", "list"},
	{"STRING", "TYPEDATA", "string"},
	{"MACHINE", "TYPEDATA", "machine"},
}

// readQueriesNeedingACL lists retrieval queries whose full power is gated
// by a query ACL (unprivileged callers get the restricted behaviour
// documented per query).
var readQueriesNeedingACL = []string{
	"get_user_by_login", "get_user_by_uid", "get_user_by_name",
	"get_user_by_class", "get_user_by_mitid",
	"get_pobox", "get_list_info", "expand_list_names", "get_ace_use",
	"qualified_get_lists", "get_members_of_list", "get_lists_of_member",
	"count_members_of_list", "get_server_info", "get_server_host_info",
	"get_filesys_by_group", "get_nfs_quota",
}

// Bootstrap seeds the database. It is idempotent only on a fresh DB; call
// it once right after db.New. It creates:
//
//   - the type-checking aliases,
//   - users "root" (uid 0) and "moira",
//   - the "dbadmin" list containing both,
//   - CAPACLS rows pointing every mutating query, the ACL-gated reads,
//     and the trigger_dcm pseudo-query at dbadmin.
func Bootstrap(d *db.DB) error {
	d.LockExclusive()
	defer d.UnlockExclusive()

	for _, a := range bootstrapAliases {
		if err := d.AddAlias(a[0], a[1], a[2]); err != nil {
			return err
		}
	}

	mod := db.ModInfo{Time: d.Now(), By: RootUser, With: "bootstrap"}

	rootID, err := d.AllocID("users_id")
	if err != nil {
		return err
	}
	if err := d.InsertUser(&db.User{
		UsersID: rootID, Login: RootUser, UID: 0, Shell: "/bin/csh",
		Last: "Operator", First: "Root", Status: db.UserActive,
		Fullname: "Root Operator", PoType: db.PoboxNone, Mod: mod, FMod: mod, PMod: mod,
	}); err != nil {
		return err
	}
	adminID, err := d.AllocID("users_id")
	if err != nil {
		return err
	}
	uid, err := d.AllocID("uid")
	if err != nil {
		return err
	}
	if err := d.InsertUser(&db.User{
		UsersID: adminID, Login: AdminUser, UID: uid, Shell: "/bin/csh",
		Last: "Daemon", First: "Moira", Status: db.UserActive,
		Fullname: "Moira Daemon", PoType: db.PoboxNone, Mod: mod, FMod: mod, PMod: mod,
	}); err != nil {
		return err
	}

	listID, err := d.AllocID("list_id")
	if err != nil {
		return err
	}
	if err := d.InsertList(&db.List{
		ListID: listID, Name: AdminList, Active: true,
		Desc: "database administrators", ACLType: db.ACEList, ACLID: listID,
		Mod: mod,
	}); err != nil {
		return err
	}
	if err := d.AddMember(listID, db.ACEUser, rootID); err != nil {
		return err
	}
	if err := d.AddMember(listID, db.ACEUser, adminID); err != nil {
		return err
	}

	for _, q := range All() {
		if q.Kind != Retrieve {
			d.SetCapACL(q.Name, q.Short, listID)
		}
	}
	for _, name := range readQueriesNeedingACL {
		q, ok := Lookup(name)
		if !ok {
			continue
		}
		d.SetCapACL(q.Name, q.Short, listID)
	}
	return nil
}

// NewBootstrappedDB is a convenience for tests and tools: a fresh
// database with Bootstrap applied. It panics on bootstrap failure, which
// can only be a programming error. clk may be nil for the system clock.
func NewBootstrappedDB(clk clock.Clock) *db.DB {
	d := db.New(clk)
	if err := Bootstrap(d); err != nil {
		panic("queries: bootstrap failed: " + err.Error())
	}
	return d
}
