// Package queries implements Moira's predefined query handles (section
// 7): the named, access-controlled database operations that are the only
// way any client — administrative application or the DCM — touches the
// database. The set defined here covers every query in the paper, over
// 100 handles across users, machines, clusters, lists, servers,
// filesystems, zephyr classes, and the miscellaneous relations, plus the
// built-in _help/_list_queries/_list_users.
//
// Each query declares its argument count, its class (retrieve, append,
// update, delete), a validation/access policy, and a handler. Mutations
// run under the exclusive database lock; retrievals run lock-free
// against an immutable snapshot (db.Reader). Either way every query is
// a serializable transaction like the original's single INGRES backend.
package queries

import (
	"sort"
	"strconv"
	"strings"
	"time"

	"moira/internal/acl"
	"moira/internal/db"
	"moira/internal/health"
	"moira/internal/mrerr"
	"moira/internal/stats"
	"moira/internal/trace"
)

// Kind classifies a query; it decides the lock mode and default checks.
type Kind int

// Query kinds.
const (
	Retrieve Kind = iota
	Append
	Update
	Delete
)

// String names the kind for _help output.
func (k Kind) String() string {
	switch k {
	case Retrieve:
		return "retrieve"
	case Append:
		return "append"
	case Update:
		return "update"
	default:
		return "delete"
	}
}

// SessionInfo describes one connected client for _list_users.
type SessionInfo struct {
	Principal   string
	HostAddress string
	Port        int
	ConnectTime int64
	ClientNum   int
}

// Context carries the authenticated caller identity into a query.
type Context struct {
	DB *db.DB

	// Principal is the authenticated Kerberos principal ("" when the
	// connection has not authenticated).
	Principal string
	// UserID is the users_id matching Principal, or 0.
	UserID int
	// App is the client application name given to mr_auth; recorded in
	// modwith fields.
	App string
	// Privileged marks the direct "glue" library used by the DCM and the
	// backup tools on the database host: it bypasses access control,
	// exactly as the direct-Ingres library did.
	Privileged bool

	// Sessions, when set by the server, backs the _list_users query.
	Sessions func() []SessionInfo

	// TriggerDCM, when set by the server, is invoked by the
	// set_server_host_override query ("and start a new DCM running").
	// The argument is the trace ID of the originating request, so the
	// resulting DCM pass can be correlated with it.
	TriggerDCM func(trace string)

	// TraceID is the trace ID of the request being served, stamped by
	// the client ("" for v1 clients); journaled with mutations.
	TraceID string

	// Stats, when set by the server, backs the _stats query handle.
	Stats *stats.Registry

	// Traces, when set by the server, backs the _trace query handle.
	Traces func() []stats.TraceEntry

	// Span is the request's span; Execute hangs the snapshot-acquire,
	// handler, and journal phases off it. nil (the Direct glue, span-
	// less servers) records nothing.
	Span *trace.Span

	// PhaseStart anchors Span's first phase: the server stamps it with
	// the instant the request finished parsing, so the snapshot-acquire
	// phase starts there — covering dispatch as well — without Execute
	// reading the clock again. Zero means read the clock.
	PhaseStart time.Time

	// Spans, when set by the server, backs the _spans query handle with
	// the tracer's kept traces.
	Spans func() []*trace.TraceRecord

	// Health, when set by the server, backs the _health query handle.
	Health func() []health.Status

	// Whois, when set by the server, backs the _whois query handle with
	// the node's failover identity (role, epoch, primary address). nil
	// (a standalone server) makes _whois report a standalone role.
	Whois func() WhoisInfo

	// CommitGate, when set by the server on a cluster primary, is called
	// by Execute after a successful journal append — outside the
	// exclusive lock — with the commit's journal position. It blocks
	// until a replica acknowledges the position (semi-synchronous
	// replication) and its error fails the request: the client must not
	// treat a commit as acknowledged while the primary alone holds it,
	// or a failover could lose an "acked" write.
	CommitGate func(seg, idx int64) error

	// CommitSeg/CommitIdx/CommitOK report the journal position of the
	// mutation this Execute (or ExecuteBatch) committed; the server
	// reads them to mint the v5 position token and resets them between
	// requests. CommitOK is false when nothing was journaled.
	CommitSeg int64
	CommitIdx int64
	CommitOK  bool

	// cache memoizes successful access checks (section 5.5); see
	// accesscache.go. nil means caching is off.
	cache *accessCache
}

// ResolveUser fills UserID from Principal. Callers must not hold the
// database lock.
func (cx *Context) ResolveUser() {
	cx.DB.LockShared()
	defer cx.DB.UnlockShared()
	if u, ok := cx.DB.UserByLogin(cx.Principal); ok {
		cx.UserID = u.UsersID
	} else {
		cx.UserID = 0
	}
}

// modInfo builds the audit triple for a mutation by this caller.
func (cx *Context) modInfo() db.ModInfo {
	by := cx.Principal
	if by == "" && cx.Privileged {
		by = "root"
	}
	with := cx.App
	if with == "" {
		with = "moira"
	}
	return db.ModInfo{Time: cx.DB.Now(), By: by, With: with}
}

// onACL reports whether the caller is on the query's capability ACL.
// Privileged contexts are always on every ACL.
func (cx *Context) onACL(queryName string) bool {
	if cx.Privileged {
		return true
	}
	if cx.UserID == 0 {
		return false
	}
	return acl.CheckCapability(cx.DB, queryName, cx.UserID)
}

// EmitFunc receives one returned tuple. Returning an error aborts the
// query (e.g. the client connection died).
type EmitFunc func(tuple []string) error

// AccessFunc decides whether the caller may run the query with the given
// arguments. It runs with the shared lock held. nil means "capability ACL
// only" for mutations and "anyone" for retrieves.
type AccessFunc func(cx *Context, args []string) error

// HandlerFunc executes the query. The appropriate lock is already held.
type HandlerFunc func(cx *Context, args []string, emit EmitFunc) error

// Query is one predefined query handle.
type Query struct {
	Name    string   // long name, e.g. "get_user_by_login"
	Short   string   // short tag, e.g. "gubl"
	Kind    Kind     //
	Args    []string // argument names, for _help
	Returns []string // return field names, for _help
	// VarArgs marks queries accepting len(Args) as a minimum (unused by
	// the paper's set but kept for extension).
	VarArgs bool
	Access  AccessFunc
	Handler HandlerFunc
}

var (
	byName  = map[string]*Query{}
	ordered []*Query
)

// register installs a query in the registry; it panics on duplicate
// names, which would be a build-time bug.
func register(q *Query) {
	for _, key := range []string{q.Name, q.Short} {
		if key == "" {
			panic("queries: query with empty name")
		}
		if _, dup := byName[key]; dup {
			panic("queries: duplicate query name " + key)
		}
		byName[key] = q
	}
	ordered = append(ordered, q)
}

// Register installs an additional query handle. The paper's set is
// registered at init; extensions (and tests that need a handle with
// specific behaviour, like the server's panic-recovery test) add theirs
// here. It panics on a duplicate name, which is a build-time bug.
func Register(q *Query) { register(q) }

// Lookup finds a query by long or short name.
func Lookup(name string) (*Query, bool) {
	q, ok := byName[name]
	return q, ok
}

// All returns every query in registration order.
func All() []*Query {
	out := make([]*Query, len(ordered))
	copy(out, ordered)
	return out
}

// Count reports the number of registered query handles.
func Count() int { return len(ordered) }

// MaxArgLen is the limit over which arguments fail with MR_ARG_TOO_LONG.
const MaxArgLen = 1024

// Execute runs the named query. It performs argument-count and length
// checks, the access check, takes the database lock in the mode implied
// by the query kind, runs the handler, and journals successful mutations.
func Execute(cx *Context, name string, args []string, emit EmitFunc) error {
	q, ok := byName[name]
	if !ok {
		return mrerr.MrNoHandle
	}
	if err := checkArgs(q, args); err != nil {
		return err
	}
	if q.Kind == Retrieve {
		// Retrievals run lock-free against an immutable snapshot (MVCC-
		// lite): the reader pins one committed state for the whole query —
		// access check and handler included — so it can never observe a
		// torn multi-table view, and it never blocks the writer. The
		// shallow Context copy redirects only this query at the snapshot;
		// the access cache lives on the original context and stays
		// coherent because the snapshot's change sequence equals the live
		// database's at the moment Reader() returned it.
		scx := *cx
		// Phase timestamps share clock reads at the boundaries (tracing
		// sits on every request, and reading the clock is not free), the
		// snapshot phase starts at the server's parse-done anchor, and
		// the untraced path reads no clock at all.
		var t0 time.Time
		if cx.Span != nil {
			if t0 = cx.PhaseStart; t0.IsZero() {
				t0 = time.Now()
			}
		}
		scx.DB = cx.DB.Reader()
		if cx.Span != nil {
			t1 := time.Now()
			cx.Span.Record("server.snapshot", t0, t1.Sub(t0), 0)
			t0 = t1
		}
		if err := checkAccessLocked(&scx, q, args); err != nil {
			return err
		}
		err := q.Handler(&scx, args, emit)
		if cx.Span != nil {
			cx.Span.Record("server.handler", t0, time.Since(t0), int32(mrerr.CodeOf(err)))
		}
		return err
	}
	// Fail-stop: once a journal append has failed, the store is no
	// longer durable and its memory already diverges from disk by
	// the mutation whose commit was reported as failed. Refusing
	// further mutations (MR_DOWN) caps the divergence at that one
	// change instead of letting it grow on a wedged disk; reads keep
	// serving, and repointing the journal (SetJournal) clears the
	// latch.
	if cx.DB.JournalWedged() {
		return mrerr.MrDown
	}
	cx.CommitOK = false
	// The locked section runs in a closure so its deferred unlock fires
	// before the commit gate below: waiting on a replica ack must not
	// hold the exclusive lock, or replication lag would stall readers
	// and every other writer.
	err := func() error {
		cx.DB.LockExclusive()
		defer cx.DB.UnlockExclusive()
		if err := checkAccessLocked(cx, q, args); err != nil {
			return err
		}
		var t0 time.Time
		if cx.Span != nil {
			t0 = time.Now()
		}
		if err := q.Handler(cx, args, emit); err != nil {
			if cx.Span != nil {
				cx.Span.Record("server.handler", t0, time.Since(t0), int32(mrerr.CodeOf(err)))
			}
			return err
		}
		// A journal append failure fails the transaction: the client
		// must not believe a change committed that recovery could never
		// reproduce. The in-memory effect of this one query stands until
		// the process exits, but the failure wedges the database
		// (JournalWedged), so the gate above fail-stops every later
		// mutation — the divergence never grows past this change, and
		// the error tells the operator the store is no longer durable
		// (full disk, dead device) before more is lost.
		var t1 time.Time
		if cx.Span != nil {
			t1 = time.Now()
			cx.Span.Record("server.handler", t0, t1.Sub(t0), 0)
		}
		err := cx.DB.JournalQuery(cx.Principal, cx.App, cx.TraceID, q.Name, args)
		if cx.Span != nil {
			cx.Span.Record("server.journal", t1, time.Since(t1), int32(mrerr.CodeOf(err)))
		}
		if err == nil {
			if seg, recs, ok := cx.DB.JournalHead(); ok {
				// recs counts records appended to the current segment, so
				// the commit just written sits at recs-1. A checkpoint
				// rotation can slide in between the append and this read
				// (the journal writer has its own lock); the fresh segment
				// then reads recs == 0 and the position clamps to (seg, 0),
				// a floor one record past the commit — strictly stronger,
				// so read-your-writes still holds.
				idx := recs - 1
				if idx < 0 {
					idx = 0
				}
				cx.CommitSeg, cx.CommitIdx, cx.CommitOK = seg, idx, true
			}
		}
		return err
	}()
	if err != nil || !cx.CommitOK || cx.CommitGate == nil {
		return err
	}
	return commitGate(cx)
}

// commitGate runs the context's semi-sync replication gate for the
// commit position Execute/ExecuteBatch recorded, tracing it as its own
// phase. Callers must not hold the database lock.
func commitGate(cx *Context) error {
	var t0 time.Time
	if cx.Span != nil {
		t0 = time.Now()
	}
	err := cx.CommitGate(cx.CommitSeg, cx.CommitIdx)
	if cx.Span != nil {
		cx.Span.Record("server.replicate", t0, time.Since(t0), int32(mrerr.CodeOf(err)))
	}
	return err
}

// CheckAccess implements the protocol's Access request: it reports
// whether the query would be allowed, without running it.
func CheckAccess(cx *Context, name string, args []string) error {
	q, ok := byName[name]
	if !ok {
		return mrerr.MrNoHandle
	}
	if err := checkArgs(q, args); err != nil {
		return err
	}
	// Like retrievals, access checks run against a pinned snapshot
	// instead of holding the shared lock.
	scx := *cx
	scx.DB = cx.DB.Reader()
	return checkAccessLocked(&scx, q, args)
}

func checkArgs(q *Query, args []string) error {
	if q.VarArgs {
		if len(args) < len(q.Args) {
			return mrerr.MrArgs
		}
	} else if len(args) != len(q.Args) {
		return mrerr.MrArgs
	}
	for _, a := range args {
		if len(a) > MaxArgLen {
			return mrerr.MrArgTooLong
		}
	}
	return nil
}

func checkAccessLocked(cx *Context, q *Query, args []string) error {
	if cx.Privileged {
		return nil
	}
	if cx.cacheLookup(q.Name, args) {
		return nil
	}
	if err := rawAccessLocked(cx, q, args); err != nil {
		return err
	}
	cx.cacheStore(q.Name, args)
	return nil
}

func rawAccessLocked(cx *Context, q *Query, args []string) error {
	if q.Access != nil {
		return q.Access(cx, args)
	}
	if q.Kind == Retrieve {
		return nil
	}
	if cx.onACL(q.Name) {
		return nil
	}
	return mrerr.MrPerm
}

// --- shared access policies ---

// accessAnyone allows every caller, authenticated or not; used for the
// queries the paper marks "safe for the list containing everybody".
func accessAnyone(*Context, []string) error { return nil }

// --- small shared helpers used by the handler files ---

func i2s(i int) string { return strconv.Itoa(i) }

func i642s(i int64) string { return strconv.FormatInt(i, 10) }

func b2s(b bool) string {
	if b {
		return "1"
	}
	return "0"
}

// parseInt parses an integer argument, failing with MR_INTEGER.
func parseInt(s string) (int, error) {
	v, err := strconv.Atoi(strings.TrimSpace(s))
	if err != nil {
		return 0, mrerr.MrInteger
	}
	return v, nil
}

// parseBool parses a boolean argument (integer, 0 false / non-zero true).
func parseBool(s string) (bool, error) {
	v, err := parseInt(s)
	if err != nil {
		return false, err
	}
	return v != 0, nil
}

// TRUE/FALSE/DONTCARE tri-state used by the qualified_get_* queries.
type triState int

const (
	triFalse triState = iota
	triTrue
	triDontCare
)

func parseTri(s string) (triState, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "TRUE":
		return triTrue, nil
	case "FALSE":
		return triFalse, nil
	case "DONTCARE", "DONT-CARE", "DONT_CARE":
		return triDontCare, nil
	default:
		return 0, mrerr.MrType
	}
}

func (t triState) matches(v bool) bool {
	switch t {
	case triTrue:
		return v
	case triFalse:
		return !v
	default:
		return true
	}
}

// checkNameChars enforces the character restrictions on object names:
// non-empty, printable ASCII, and none of the characters that break the
// dump format, wildcard matching, or the downstream config files.
func checkNameChars(s string) error {
	if s == "" {
		return mrerr.MrBadChar
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c <= ' ' || c >= 0x7f {
			return mrerr.MrBadChar
		}
		switch c {
		case ':', '*', '?', '\\', '"', ',':
			return mrerr.MrBadChar
		}
	}
	return nil
}

// emitSorted is a helper for handlers that gather tuples then emit them
// in a deterministic order.
func emitSorted(tuples [][]string, emit EmitFunc) error {
	sort.Slice(tuples, func(i, j int) bool {
		a, b := tuples[i], tuples[j]
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
	for _, t := range tuples {
		if err := emit(t); err != nil {
			return err
		}
	}
	return nil
}

// noMatchIfEmpty converts "emitted nothing" into MR_NO_MATCH, the paper's
// behaviour for retrieval queries.
type countingEmit struct {
	emit EmitFunc
	n    int
}

func (c *countingEmit) fn(t []string) error {
	c.n++
	return c.emit(t)
}

func (c *countingEmit) result() error {
	if c.n == 0 {
		return mrerr.MrNoMatch
	}
	return nil
}
