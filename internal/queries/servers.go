package queries

// Queries over the SERVERS and SERVERHOSTS relations (section 7.0.4):
// the per-service and per-host state driving the DCM.

import (
	"strings"

	"moira/internal/acl"
	"moira/internal/db"
	"moira/internal/mrerr"
	"moira/internal/util"
	"moira/internal/wildcard"
)

func matchServers(d *db.DB, pattern string) []*db.Server {
	pattern = strings.ToUpper(pattern)
	var out []*db.Server
	if !wildcard.HasWildcards(pattern) {
		if s, ok := d.ServerByName(pattern); ok {
			out = append(out, s)
		}
		return out
	}
	d.EachServer(func(s *db.Server) bool {
		if wildcard.Match(pattern, s.Name) {
			out = append(out, s)
		}
		return true
	})
	return out
}

func oneServer(d *db.DB, name string) (*db.Server, error) {
	ss := matchServers(d, name)
	switch len(ss) {
	case 0:
		return nil, mrerr.MrService
	case 1:
		return ss[0], nil
	default:
		return nil, mrerr.MrNotUnique
	}
}

// onServiceACE reports whether the caller satisfies the service's ACE.
func onServiceACE(cx *Context, s *db.Server) bool {
	if cx.Privileged {
		return true
	}
	return acl.CheckACE(cx.DB, s.ACLType, s.ACLID, cx.UserID)
}

// serviceACEOrACL is the usual policy on serverhost mutations: the query
// ACL, or the ACE of the service named in args[0].
func serviceACEOrACL(queryName string) AccessFunc {
	return func(cx *Context, args []string) error {
		if cx.onACL(queryName) {
			return nil
		}
		s, err := oneServer(cx.DB, args[0])
		if err != nil {
			return err
		}
		if onServiceACE(cx, s) {
			return nil
		}
		return mrerr.MrPerm
	}
}

func serverTuple(d *db.DB, s *db.Server) []string {
	return []string{
		s.Name, i2s(s.UpdateInt), s.TargetFile, s.Script,
		i642s(s.DFGen), i642s(s.DFCheck), s.Type, b2s(s.Enable),
		b2s(s.InProgress), i2s(s.HardError), s.ErrMsg,
		s.ACLType, acl.NameOfACE(d, s.ACLType, s.ACLID),
		i642s(s.Mod.Time), s.Mod.By, s.Mod.With,
	}
}

func serverHostTuple(d *db.DB, sh *db.ServerHost) []string {
	mname := "???"
	if m, ok := d.MachineByID(sh.MachID); ok {
		mname = m.Name
	}
	return []string{
		sh.Service, mname, b2s(sh.Enable), b2s(sh.Override), b2s(sh.Success),
		b2s(sh.InProgress), i2s(sh.HostError), sh.HostErrMsg,
		i642s(sh.LastTry), i642s(sh.LastSuccess),
		i2s(sh.Value1), i2s(sh.Value2), sh.Value3,
		i642s(sh.Mod.Time), sh.Mod.By, sh.Mod.With,
	}
}

func init() {
	register(&Query{
		Name: "get_server_info", Short: "gsin", Kind: Retrieve,
		Args: []string{"service"},
		Returns: []string{"service", "interval", "target", "script", "dfgen", "dfcheck",
			"type", "enable", "inprogress", "harderror", "errmsg",
			"ace_type", "ace_name", "modtime", "modby", "modwith"},
		Access: func(cx *Context, args []string) error {
			if cx.onACL("get_server_info") {
				return nil
			}
			ss := matchServers(cx.DB, args[0])
			if len(ss) == 1 && onServiceACE(cx, ss[0]) {
				return nil
			}
			return mrerr.MrPerm
		},
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			ss := matchServers(cx.DB, args[0])
			if len(ss) == 0 {
				return mrerr.MrNoMatch
			}
			var tuples [][]string
			for _, s := range ss {
				tuples = append(tuples, serverTuple(cx.DB, s))
			}
			return emitSorted(tuples, emit)
		},
	})

	register(&Query{
		Name: "qualified_get_server", Short: "qgsv", Kind: Retrieve,
		Args:    []string{"enable", "inprogress", "harderror"},
		Returns: []string{"service"},
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			var tri [3]triState
			for i := range tri {
				t, err := parseTri(args[i])
				if err != nil {
					return err
				}
				tri[i] = t
			}
			var tuples [][]string
			cx.DB.EachServer(func(s *db.Server) bool {
				if tri[0].matches(s.Enable) && tri[1].matches(s.InProgress) &&
					tri[2].matches(s.HardError != 0) {
					tuples = append(tuples, []string{s.Name})
				}
				return true
			})
			if len(tuples) == 0 {
				return mrerr.MrNoMatch
			}
			return emitSorted(tuples, emit)
		},
	})

	register(&Query{
		Name: "add_server_info", Short: "asin", Kind: Append,
		Args: []string{"service", "interval", "target", "script", "type", "enable",
			"ace_type", "ace_name"},
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			d := cx.DB
			name := strings.ToUpper(args[0])
			if err := checkNameChars(name); err != nil {
				return err
			}
			if _, dup := d.ServerByName(name); dup {
				return mrerr.MrExists
			}
			interval, err := parseInt(args[1])
			if err != nil {
				return err
			}
			if !d.IsValidType("service", args[4]) {
				return mrerr.MrType
			}
			enable, err := parseBool(args[5])
			if err != nil {
				return err
			}
			aceType, aceID, err := acl.ResolveACE(d, args[6], args[7])
			if err != nil {
				return err
			}
			return d.InsertServer(&db.Server{
				Name: name, UpdateInt: interval, TargetFile: args[2], Script: args[3],
				Type: args[4], Enable: enable, ACLType: aceType, ACLID: aceID,
				Mod: cx.modInfo(),
			})
		},
	})

	register(&Query{
		Name: "update_server_info", Short: "usin", Kind: Update,
		Args: []string{"service", "interval", "target", "script", "type", "enable",
			"ace_type", "ace_name"},
		Access: serviceACEOrACL("update_server_info"),
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			d := cx.DB
			s, err := oneServer(d, args[0])
			if err != nil {
				return err
			}
			interval, err := parseInt(args[1])
			if err != nil {
				return err
			}
			if !d.IsValidType("service", args[4]) {
				return mrerr.MrType
			}
			enable, err := parseBool(args[5])
			if err != nil {
				return err
			}
			aceType, aceID, err := acl.ResolveACE(d, args[6], args[7])
			if err != nil {
				return err
			}
			s.UpdateInt = interval
			s.TargetFile, s.Script = args[2], args[3]
			s.Type, s.Enable = args[4], enable
			s.ACLType, s.ACLID = aceType, aceID
			s.Mod = cx.modInfo()
			d.NoteUpdate(db.TServers)
			return nil
		},
	})

	register(&Query{
		Name: "reset_server_error", Short: "rsve", Kind: Update,
		Args:   []string{"service"},
		Access: serviceACEOrACL("reset_server_error"),
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			s, err := oneServer(cx.DB, args[0])
			if err != nil {
				return err
			}
			s.HardError = 0
			s.ErrMsg = ""
			s.DFCheck = s.DFGen
			s.Mod = cx.modInfo()
			cx.DB.NoteUpdate(db.TServers)
			return nil
		},
	})

	register(&Query{
		Name: "set_server_internal_flags", Short: "ssif", Kind: Update,
		Args: []string{"service", "dfgen", "dfcheck", "inprogress", "harderr", "errmsg"},
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			d := cx.DB
			s, err := oneServer(d, args[0])
			if err != nil {
				return err
			}
			dfgen, err := parseInt(args[1])
			if err != nil {
				return err
			}
			dfcheck, err := parseInt(args[2])
			if err != nil {
				return err
			}
			inprog, err := parseBool(args[3])
			if err != nil {
				return err
			}
			harderr, err := parseInt(args[4])
			if err != nil {
				return err
			}
			s.DFGen, s.DFCheck = int64(dfgen), int64(dfcheck)
			s.InProgress = inprog
			s.HardError = harderr
			s.ErrMsg = args[5]
			// The service modtime is NOT set (paper); nor is the change
			// sequence, since this is DCM bookkeeping, not data.
			d.NoteUpdateInternal(db.TServers)
			return nil
		},
	})

	register(&Query{
		Name: "delete_server_info", Short: "dsin", Kind: Delete,
		Args: []string{"service"},
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			d := cx.DB
			s, err := oneServer(d, args[0])
			if err != nil {
				return err
			}
			if s.InProgress {
				return mrerr.MrInUse
			}
			if len(d.ServerHostsOf(s.Name)) > 0 {
				return mrerr.MrInUse
			}
			d.DeleteServer(s)
			return nil
		},
	})

	register(&Query{
		Name: "get_server_host_info", Short: "gshi", Kind: Retrieve,
		Args: []string{"service", "machine"},
		Returns: []string{"service", "machine", "enable", "override", "success",
			"inprogress", "hosterror", "errmsg", "lasttry", "lastsuccess",
			"value1", "value2", "value3", "modtime", "modby", "modwith"},
		Access: func(cx *Context, args []string) error {
			if cx.onACL("get_server_host_info") {
				return nil
			}
			ss := matchServers(cx.DB, args[0])
			if len(ss) == 1 && onServiceACE(cx, ss[0]) {
				return nil
			}
			return mrerr.MrPerm
		},
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			d := cx.DB
			spat := strings.ToUpper(args[0])
			mpat := util.CanonicalizeHostname(args[1])
			var tuples [][]string
			d.EachServerHost(func(sh *db.ServerHost) bool {
				m, ok := d.MachineByID(sh.MachID)
				if !ok {
					return true
				}
				if wildcard.Match(spat, sh.Service) && wildcard.Match(mpat, m.Name) {
					tuples = append(tuples, serverHostTuple(d, sh))
				}
				return true
			})
			if len(tuples) == 0 {
				return mrerr.MrNoMatch
			}
			return emitSorted(tuples, emit)
		},
	})

	register(&Query{
		Name: "qualified_get_server_host", Short: "qgsh", Kind: Retrieve,
		Args:    []string{"service", "enable", "override", "success", "inprogress", "hosterror"},
		Returns: []string{"service", "machine"},
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			d := cx.DB
			spat := strings.ToUpper(args[0])
			var tri [5]triState
			for i := range tri {
				t, err := parseTri(args[i+1])
				if err != nil {
					return err
				}
				tri[i] = t
			}
			var tuples [][]string
			d.EachServerHost(func(sh *db.ServerHost) bool {
				if !wildcard.Match(spat, sh.Service) {
					return true
				}
				if tri[0].matches(sh.Enable) && tri[1].matches(sh.Override) &&
					tri[2].matches(sh.Success) && tri[3].matches(sh.InProgress) &&
					tri[4].matches(sh.HostError != 0) {
					if m, ok := d.MachineByID(sh.MachID); ok {
						tuples = append(tuples, []string{sh.Service, m.Name})
					}
				}
				return true
			})
			if len(tuples) == 0 {
				return mrerr.MrNoMatch
			}
			return emitSorted(tuples, emit)
		},
	})

	register(&Query{
		Name: "add_server_host_info", Short: "ashi", Kind: Append,
		Args:   []string{"service", "machine", "enable", "value1", "value2", "value3"},
		Access: serviceACEOrACL("add_server_host_info"),
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			d := cx.DB
			s, err := oneServer(d, args[0])
			if err != nil {
				return err
			}
			m, err := oneMachine(d, args[1])
			if err != nil {
				return err
			}
			enable, err := parseBool(args[2])
			if err != nil {
				return err
			}
			v1, err := parseInt(args[3])
			if err != nil {
				return err
			}
			v2, err := parseInt(args[4])
			if err != nil {
				return err
			}
			return d.InsertServerHost(&db.ServerHost{
				Service: s.Name, MachID: m.MachID, Enable: enable,
				Value1: v1, Value2: v2, Value3: args[5], Mod: cx.modInfo(),
			})
		},
	})

	register(&Query{
		Name: "update_server_host_info", Short: "ushi", Kind: Update,
		Args:   []string{"service", "machine", "enable", "value1", "value2", "value3"},
		Access: serviceACEOrACL("update_server_host_info"),
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			d := cx.DB
			s, err := oneServer(d, args[0])
			if err != nil {
				return err
			}
			m, err := oneMachine(d, args[1])
			if err != nil {
				return err
			}
			sh, ok := d.ServerHost(s.Name, m.MachID)
			if !ok {
				return mrerr.MrNoMatch
			}
			if sh.InProgress {
				return mrerr.MrInUse
			}
			enable, err := parseBool(args[2])
			if err != nil {
				return err
			}
			v1, err := parseInt(args[3])
			if err != nil {
				return err
			}
			v2, err := parseInt(args[4])
			if err != nil {
				return err
			}
			sh.Enable = enable
			sh.Value1, sh.Value2, sh.Value3 = v1, v2, args[5]
			sh.Mod = cx.modInfo()
			d.NoteUpdate(db.TServerHosts)
			return nil
		},
	})

	register(&Query{
		Name: "reset_server_host_error", Short: "rshe", Kind: Update,
		Args:   []string{"service", "machine"},
		Access: serviceACEOrACL("reset_server_host_error"),
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			d := cx.DB
			s, err := oneServer(d, args[0])
			if err != nil {
				return err
			}
			m, err := oneMachine(d, args[1])
			if err != nil {
				return err
			}
			sh, ok := d.ServerHost(s.Name, m.MachID)
			if !ok {
				return mrerr.MrNoMatch
			}
			sh.HostError = 0
			sh.HostErrMsg = ""
			sh.Mod = cx.modInfo()
			d.NoteUpdate(db.TServerHosts)
			return nil
		},
	})

	register(&Query{
		Name: "set_server_host_override", Short: "ssho", Kind: Update,
		Args:   []string{"service", "machine"},
		Access: serviceACEOrACL("set_server_host_override"),
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			d := cx.DB
			s, err := oneServer(d, args[0])
			if err != nil {
				return err
			}
			m, err := oneMachine(d, args[1])
			if err != nil {
				return err
			}
			sh, ok := d.ServerHost(s.Name, m.MachID)
			if !ok {
				return mrerr.MrNoMatch
			}
			sh.Override = true
			sh.Mod = cx.modInfo()
			d.NoteUpdate(db.TServerHosts)
			if cx.TriggerDCM != nil {
				cx.TriggerDCM(cx.TraceID)
			}
			return nil
		},
	})

	register(&Query{
		Name: "set_server_host_internal", Short: "sshi", Kind: Update,
		Args: []string{"service", "machine", "override", "success", "inprogress",
			"hosterror", "errmsg", "lasttry", "lastsuccess"},
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			d := cx.DB
			s, err := oneServer(d, args[0])
			if err != nil {
				return err
			}
			m, err := oneMachine(d, args[1])
			if err != nil {
				return err
			}
			sh, ok := d.ServerHost(s.Name, m.MachID)
			if !ok {
				return mrerr.MrNoMatch
			}
			override, err := parseBool(args[2])
			if err != nil {
				return err
			}
			success, err := parseBool(args[3])
			if err != nil {
				return err
			}
			inprog, err := parseBool(args[4])
			if err != nil {
				return err
			}
			hosterr, err := parseInt(args[5])
			if err != nil {
				return err
			}
			lasttry, err := parseInt(args[7])
			if err != nil {
				return err
			}
			lastsuccess, err := parseInt(args[8])
			if err != nil {
				return err
			}
			sh.Override, sh.Success, sh.InProgress = override, success, inprog
			sh.HostError, sh.HostErrMsg = hosterr, args[6]
			sh.LastTry, sh.LastSuccess = int64(lasttry), int64(lastsuccess)
			// The serverhost modtime is NOT set (paper); see above.
			d.NoteUpdateInternal(db.TServerHosts)
			return nil
		},
	})

	register(&Query{
		Name: "delete_server_host_info", Short: "dshi", Kind: Delete,
		Args:   []string{"service", "machine"},
		Access: serviceACEOrACL("delete_server_host_info"),
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			d := cx.DB
			s, err := oneServer(d, args[0])
			if err != nil {
				return err
			}
			m, err := oneMachine(d, args[1])
			if err != nil {
				return err
			}
			sh, ok := d.ServerHost(s.Name, m.MachID)
			if !ok {
				return mrerr.MrNoMatch
			}
			if sh.InProgress {
				return mrerr.MrInUse
			}
			return d.DeleteServerHost(s.Name, m.MachID)
		},
	})

	register(&Query{
		Name: "get_server_locations", Short: "gslo", Kind: Retrieve,
		Args:    []string{"service"},
		Returns: []string{"service", "machine"},
		Access:  accessAnyone,
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			d := cx.DB
			spat := strings.ToUpper(args[0])
			var tuples [][]string
			d.EachServerHost(func(sh *db.ServerHost) bool {
				if !wildcard.Match(spat, sh.Service) {
					return true
				}
				if m, ok := d.MachineByID(sh.MachID); ok {
					tuples = append(tuples, []string{sh.Service, m.Name})
				}
				return true
			})
			if len(tuples) == 0 {
				return mrerr.MrNoMatch
			}
			return emitSorted(tuples, emit)
		},
	})
}
