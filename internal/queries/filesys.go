package queries

// Queries over filesystems, NFS physical partitions, and quotas
// (section 7.0.5).

import (
	"moira/internal/acl"
	"moira/internal/db"
	"moira/internal/mrerr"
	"moira/internal/wildcard"
)

func filesysTuple(d *db.DB, f *db.Filesys) []string {
	mname := "???"
	if m, ok := d.MachineByID(f.MachID); ok {
		mname = m.Name
	}
	owner := acl.NameOfACE(d, db.ACEUser, f.Owner)
	owners := acl.NameOfACE(d, db.ACEList, f.Owners)
	return []string{
		f.Label, f.Type, mname, f.Name, f.Mount, f.Access, f.Comments,
		owner, owners, b2s(f.CreateFlg), f.LockerType,
		i642s(f.Mod.Time), f.Mod.By, f.Mod.With,
	}
}

var filesysReturns = []string{
	"name", "fstype", "machine", "packname", "mountpoint", "access",
	"comments", "owner", "owners", "create", "lockertype",
	"modtime", "modby", "modwith",
}

func oneFilesys(d *db.DB, label string) (*db.Filesys, error) {
	fs := d.FilesysByLabel(label)
	switch len(fs) {
	case 0:
		return nil, mrerr.MrFilesys
	case 1:
		return fs[0], nil
	default:
		return nil, mrerr.MrNotUnique
	}
}

// validateFilesysArgs checks the shared argument block of
// add_filesys/update_filesys and resolves references.
func validateFilesysArgs(d *db.DB, args []string) (fstype string, mach *db.Machine,
	physID int, owner, owners int, create bool, lockertype string, err error) {
	fstype = args[1]
	if !d.IsValidType("filesys", fstype) {
		return "", nil, 0, 0, 0, false, "", mrerr.MrFSType
	}
	mach, merr := oneMachine(d, args[2])
	if merr != nil {
		return "", nil, 0, 0, 0, false, "", mrerr.MrMachine
	}
	packname, access := args[3], args[5]
	if fstype == db.FSTypeNFS {
		p, ok := d.NFSPhysByMachDir(mach.MachID, packname)
		if !ok {
			// The packname must live under an exported partition: exact
			// partition match or a directory beneath one.
			d.EachNFSPhys(func(q *db.NFSPhys) bool {
				if q.MachID == mach.MachID && len(packname) > len(q.Dir) &&
					packname[:len(q.Dir)] == q.Dir && packname[len(q.Dir)] == '/' {
					p, ok = q, true
					return false
				}
				return true
			})
		}
		if !ok {
			return "", nil, 0, 0, 0, false, "", mrerr.MrNFS
		}
		physID = p.NFSPhysID
		if access != "r" && access != "w" {
			return "", nil, 0, 0, 0, false, "", mrerr.MrFilesysAccess
		}
	}
	u, ok := d.UserByLogin(args[7])
	if !ok {
		return "", nil, 0, 0, 0, false, "", mrerr.MrUser
	}
	owner = u.UsersID
	l, ok := d.ListByName(args[8])
	if !ok {
		return "", nil, 0, 0, 0, false, "", mrerr.MrList
	}
	owners = l.ListID
	create, cerr := parseBool(args[9])
	if cerr != nil {
		return "", nil, 0, 0, 0, false, "", cerr
	}
	lockertype = args[10]
	if !d.IsValidType("lockertype", lockertype) {
		return "", nil, 0, 0, 0, false, "", mrerr.MrType
	}
	return fstype, mach, physID, owner, owners, create, lockertype, nil
}

func init() {
	register(&Query{
		Name: "get_filesys_by_label", Short: "gfsl", Kind: Retrieve,
		Args:    []string{"name"},
		Returns: filesysReturns,
		Access:  accessAnyone,
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			d := cx.DB
			var tuples [][]string
			d.EachFilesys(func(f *db.Filesys) bool {
				if wildcard.Match(args[0], f.Label) {
					tuples = append(tuples, filesysTuple(d, f))
				}
				return true
			})
			if len(tuples) == 0 {
				return mrerr.MrNoMatch
			}
			return emitSorted(tuples, emit)
		},
	})

	register(&Query{
		Name: "get_filesys_by_machine", Short: "gfsm", Kind: Retrieve,
		Args:    []string{"machine"},
		Returns: filesysReturns,
		Access:  accessAnyone,
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			d := cx.DB
			m, err := oneMachine(d, args[0])
			if err != nil {
				return mrerr.MrMachine
			}
			var tuples [][]string
			d.EachFilesys(func(f *db.Filesys) bool {
				if f.MachID == m.MachID {
					tuples = append(tuples, filesysTuple(d, f))
				}
				return true
			})
			if len(tuples) == 0 {
				return mrerr.MrNoMatch
			}
			return emitSorted(tuples, emit)
		},
	})

	register(&Query{
		Name: "get_filesys_by_nfsphys", Short: "gfsn", Kind: Retrieve,
		Args:    []string{"machine", "partition"},
		Returns: filesysReturns,
		Access:  accessAnyone,
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			d := cx.DB
			m, err := oneMachine(d, args[0])
			if err != nil {
				return mrerr.MrMachine
			}
			p, ok := d.NFSPhysByMachDir(m.MachID, args[1])
			if !ok {
				return mrerr.MrNoMatch
			}
			var tuples [][]string
			d.EachFilesys(func(f *db.Filesys) bool {
				if f.Type == db.FSTypeNFS && f.PhysID == p.NFSPhysID {
					tuples = append(tuples, filesysTuple(d, f))
				}
				return true
			})
			if len(tuples) == 0 {
				return mrerr.MrNoMatch
			}
			return emitSorted(tuples, emit)
		},
	})

	register(&Query{
		Name: "get_filesys_by_group", Short: "gfsg", Kind: Retrieve,
		Args:    []string{"list"},
		Returns: filesysReturns,
		Access: func(cx *Context, args []string) error {
			if cx.onACL("get_filesys_by_group") {
				return nil
			}
			l, ok := cx.DB.ListByName(args[0])
			if !ok {
				return mrerr.MrList
			}
			if cx.UserID != 0 && acl.IsUserInList(cx.DB, l.ListID, cx.UserID) {
				return nil
			}
			return mrerr.MrPerm
		},
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			d := cx.DB
			l, ok := d.ListByName(args[0])
			if !ok {
				return mrerr.MrList
			}
			var tuples [][]string
			d.EachFilesys(func(f *db.Filesys) bool {
				if f.Owners == l.ListID {
					tuples = append(tuples, filesysTuple(d, f))
				}
				return true
			})
			if len(tuples) == 0 {
				return mrerr.MrNoMatch
			}
			return emitSorted(tuples, emit)
		},
	})

	register(&Query{
		Name: "add_filesys", Short: "afil", Kind: Append,
		Args: []string{"name", "fstype", "machine", "packname", "mountpoint",
			"access", "comments", "owner", "owners", "create", "lockertype"},
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			d := cx.DB
			if err := checkNameChars(args[0]); err != nil {
				return err
			}
			if len(d.FilesysByLabel(args[0])) > 0 {
				return mrerr.MrFilesysExists
			}
			fstype, mach, physID, owner, owners, create, lockertype, err := validateFilesysArgs(d, args)
			if err != nil {
				return err
			}
			id, err := d.AllocID("filsys_id")
			if err != nil {
				return err
			}
			return d.InsertFilesys(&db.Filesys{
				FilsysID: id, Label: args[0], PhysID: physID, Type: fstype,
				MachID: mach.MachID, Name: args[3], Mount: args[4], Access: args[5],
				Comments: args[6], Owner: owner, Owners: owners,
				CreateFlg: create, LockerType: lockertype, Mod: cx.modInfo(),
			})
		},
	})

	register(&Query{
		Name: "update_filesys", Short: "ufil", Kind: Update,
		Args: []string{"name", "newname", "fstype", "machine", "packname",
			"mountpoint", "access", "comments", "owner", "owners", "create", "lockertype"},
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			d := cx.DB
			f, err := oneFilesys(d, args[0])
			if err != nil {
				return err
			}
			newname := args[1]
			if err := checkNameChars(newname); err != nil {
				return err
			}
			if newname != f.Label && len(d.FilesysByLabel(newname)) > 0 {
				return mrerr.MrNotUnique
			}
			fstype, mach, physID, owner, owners, create, lockertype, err := validateFilesysArgs(d, args[1:])
			if err != nil {
				return err
			}
			d.SetFilesysLabel(f, newname)
			f.Type, f.MachID, f.PhysID = fstype, mach.MachID, physID
			f.Name, f.Mount, f.Access = args[4], args[5], args[6]
			f.Comments = args[7]
			f.Owner, f.Owners = owner, owners
			f.CreateFlg, f.LockerType = create, lockertype
			f.Mod = cx.modInfo()
			d.NoteUpdate(db.TFilesys)
			return nil
		},
	})

	register(&Query{
		Name: "delete_filesys", Short: "dfil", Kind: Delete,
		Args: []string{"name"},
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			d := cx.DB
			f, err := oneFilesys(d, args[0])
			if err != nil {
				return err
			}
			// Drop quotas on the filesystem and return their allocation.
			var drop []*db.NFSQuota
			d.EachQuota(func(q *db.NFSQuota) bool {
				if q.FilsysID == f.FilsysID {
					drop = append(drop, q)
				}
				return true
			})
			for _, q := range drop {
				if p, ok := d.NFSPhysByID(q.PhysID); ok {
					p.Allocated -= q.Quota
					d.NoteUpdate(db.TNFSPhys)
				}
				if err := d.DeleteQuota(q.UsersID, q.FilsysID); err != nil {
					return mrerr.MrInternal
				}
			}
			d.DeleteFilesys(f)
			return nil
		},
	})

	register(&Query{
		Name: "get_all_nfsphys", Short: "ganf", Kind: Retrieve,
		Returns: []string{"machine", "dir", "device", "status", "allocated", "size",
			"modtime", "modby", "modwith"},
		Access: accessAnyone,
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			d := cx.DB
			var tuples [][]string
			d.EachNFSPhys(func(p *db.NFSPhys) bool {
				mname := "???"
				if m, ok := d.MachineByID(p.MachID); ok {
					mname = m.Name
				}
				tuples = append(tuples, []string{
					mname, p.Dir, p.Device, i2s(p.Status), i2s(p.Allocated),
					i2s(p.Size), i642s(p.Mod.Time), p.Mod.By, p.Mod.With,
				})
				return true
			})
			if len(tuples) == 0 {
				return mrerr.MrNoMatch
			}
			return emitSorted(tuples, emit)
		},
	})

	register(&Query{
		Name: "get_nfsphys", Short: "gnfp", Kind: Retrieve,
		Args: []string{"machine", "dir"},
		Returns: []string{"machine", "dir", "device", "status", "allocated", "size",
			"modtime", "modby", "modwith"},
		Access: accessAnyone,
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			d := cx.DB
			m, err := oneMachine(d, args[0])
			if err != nil {
				return mrerr.MrMachine
			}
			var tuples [][]string
			d.EachNFSPhys(func(p *db.NFSPhys) bool {
				if p.MachID == m.MachID && wildcard.Match(args[1], p.Dir) {
					tuples = append(tuples, []string{
						m.Name, p.Dir, p.Device, i2s(p.Status), i2s(p.Allocated),
						i2s(p.Size), i642s(p.Mod.Time), p.Mod.By, p.Mod.With,
					})
				}
				return true
			})
			if len(tuples) == 0 {
				return mrerr.MrNoMatch
			}
			return emitSorted(tuples, emit)
		},
	})

	register(&Query{
		Name: "add_nfsphys", Short: "anfp", Kind: Append,
		Args: []string{"machine", "dir", "device", "status", "allocated", "size"},
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			d := cx.DB
			m, err := oneMachine(d, args[0])
			if err != nil {
				return mrerr.MrMachine
			}
			status, err := parseInt(args[3])
			if err != nil {
				return err
			}
			allocated, err := parseInt(args[4])
			if err != nil {
				return err
			}
			size, err := parseInt(args[5])
			if err != nil {
				return err
			}
			id, err := d.AllocID("nfsphys_id")
			if err != nil {
				return err
			}
			return d.InsertNFSPhys(&db.NFSPhys{
				NFSPhysID: id, MachID: m.MachID, Dir: args[1], Device: args[2],
				Status: status, Allocated: allocated, Size: size, Mod: cx.modInfo(),
			})
		},
	})

	register(&Query{
		Name: "update_nfsphys", Short: "unfp", Kind: Update,
		Args: []string{"machine", "dir", "device", "status", "allocated", "size"},
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			d := cx.DB
			m, err := oneMachine(d, args[0])
			if err != nil {
				return mrerr.MrMachine
			}
			p, ok := d.NFSPhysByMachDir(m.MachID, args[1])
			if !ok {
				return mrerr.MrNFSPhys
			}
			status, err := parseInt(args[3])
			if err != nil {
				return err
			}
			allocated, err := parseInt(args[4])
			if err != nil {
				return err
			}
			size, err := parseInt(args[5])
			if err != nil {
				return err
			}
			p.Device = args[2]
			p.Status, p.Allocated, p.Size = status, allocated, size
			p.Mod = cx.modInfo()
			d.NoteUpdate(db.TNFSPhys)
			return nil
		},
	})

	register(&Query{
		Name: "adjust_nfsphys_allocation", Short: "ajnf", Kind: Update,
		Args: []string{"machine", "dir", "delta"},
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			d := cx.DB
			m, err := oneMachine(d, args[0])
			if err != nil {
				return mrerr.MrMachine
			}
			p, ok := d.NFSPhysByMachDir(m.MachID, args[1])
			if !ok {
				return mrerr.MrNFSPhys
			}
			delta, err := parseInt(args[2])
			if err != nil {
				return err
			}
			p.Allocated += delta
			p.Mod = cx.modInfo()
			d.NoteUpdate(db.TNFSPhys)
			return nil
		},
	})

	register(&Query{
		Name: "delete_nfsphys", Short: "dnfp", Kind: Delete,
		Args: []string{"machine", "dir"},
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			d := cx.DB
			m, err := oneMachine(d, args[0])
			if err != nil {
				return mrerr.MrMachine
			}
			p, ok := d.NFSPhysByMachDir(m.MachID, args[1])
			if !ok {
				return mrerr.MrNFSPhys
			}
			inUse := false
			d.EachFilesys(func(f *db.Filesys) bool {
				if f.Type == db.FSTypeNFS && f.PhysID == p.NFSPhysID {
					inUse = true
					return false
				}
				return true
			})
			if inUse {
				return mrerr.MrInUse
			}
			d.DeleteNFSPhys(p)
			return nil
		},
	})

	register(&Query{
		Name: "get_nfs_quota", Short: "gnfq", Kind: Retrieve,
		Args: []string{"filesys", "login"},
		Returns: []string{"filesys", "login", "quota", "directory", "machine",
			"modtime", "modby", "modwith"},
		Access: func(cx *Context, args []string) error {
			if cx.onACL("get_nfs_quota") {
				return nil
			}
			// The owner of the target filesystem, or the user themselves.
			if cx.Principal != "" && args[1] == cx.Principal {
				return nil
			}
			if !wildcard.HasWildcards(args[0]) {
				if f, err := oneFilesys(cx.DB, args[0]); err == nil {
					if cx.UserID != 0 && (f.Owner == cx.UserID ||
						acl.IsUserInList(cx.DB, f.Owners, cx.UserID)) {
						return nil
					}
				}
			}
			return mrerr.MrPerm
		},
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			d := cx.DB
			u, err := oneUser(d, args[1])
			if err != nil {
				return mrerr.MrUser
			}
			var tuples [][]string
			d.EachQuota(func(q *db.NFSQuota) bool {
				if q.UsersID != u.UsersID {
					return true
				}
				f, ok := d.FilesysByID(q.FilsysID)
				if !ok || !wildcard.Match(args[0], f.Label) {
					return true
				}
				dir, mname := "", "???"
				if p, ok := d.NFSPhysByID(q.PhysID); ok {
					dir = p.Dir
					if m, ok := d.MachineByID(p.MachID); ok {
						mname = m.Name
					}
				}
				tuples = append(tuples, []string{
					f.Label, u.Login, i2s(q.Quota), dir, mname,
					i642s(q.Mod.Time), q.Mod.By, q.Mod.With,
				})
				return true
			})
			if len(tuples) == 0 {
				return mrerr.MrNoMatch
			}
			return emitSorted(tuples, emit)
		},
	})

	register(&Query{
		Name: "get_nfs_quotas_by_partition", Short: "gnqp", Kind: Retrieve,
		Args:    []string{"machine", "directory"},
		Returns: []string{"filesys", "login", "quota", "directory", "machine"},
		Access:  accessAnyone,
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			d := cx.DB
			m, err := oneMachine(d, args[0])
			if err != nil {
				return mrerr.MrMachine
			}
			var tuples [][]string
			d.EachQuota(func(q *db.NFSQuota) bool {
				p, ok := d.NFSPhysByID(q.PhysID)
				if !ok || p.MachID != m.MachID || !wildcard.Match(args[1], p.Dir) {
					return true
				}
				f, fok := d.FilesysByID(q.FilsysID)
				u, uok := d.UserByID(q.UsersID)
				if !fok || !uok {
					return true
				}
				tuples = append(tuples, []string{f.Label, u.Login, i2s(q.Quota), p.Dir, m.Name})
				return true
			})
			if len(tuples) == 0 {
				return mrerr.MrNoMatch
			}
			return emitSorted(tuples, emit)
		},
	})

	register(&Query{
		Name: "add_nfs_quota", Short: "anfq", Kind: Append,
		Args: []string{"filesys", "login", "quota"},
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			d := cx.DB
			f, err := oneFilesys(d, args[0])
			if err != nil {
				return err
			}
			u, err := oneUser(d, args[1])
			if err != nil {
				return mrerr.MrUser
			}
			quota, err := parseInt(args[2])
			if err != nil {
				return err
			}
			if quota < 0 {
				return mrerr.MrInteger
			}
			if err := d.InsertQuota(&db.NFSQuota{
				UsersID: u.UsersID, FilsysID: f.FilsysID, PhysID: f.PhysID,
				Quota: quota, Mod: cx.modInfo(),
			}); err != nil {
				return err
			}
			if p, ok := d.NFSPhysByID(f.PhysID); ok {
				p.Allocated += quota
				d.NoteUpdate(db.TNFSPhys)
			}
			return nil
		},
	})

	register(&Query{
		Name: "update_nfs_quota", Short: "unfq", Kind: Update,
		Args: []string{"filesys", "login", "quota"},
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			d := cx.DB
			f, err := oneFilesys(d, args[0])
			if err != nil {
				return err
			}
			u, err := oneUser(d, args[1])
			if err != nil {
				return mrerr.MrUser
			}
			quota, err := parseInt(args[2])
			if err != nil {
				return err
			}
			if quota < 0 {
				return mrerr.MrInteger
			}
			q, ok := d.QuotaOf(u.UsersID, f.FilsysID)
			if !ok {
				return mrerr.MrNoMatch
			}
			if p, ok := d.NFSPhysByID(q.PhysID); ok {
				p.Allocated += quota - q.Quota
				d.NoteUpdate(db.TNFSPhys)
			}
			q.Quota = quota
			q.Mod = cx.modInfo()
			d.NoteUpdate(db.TNFSQuota)
			return nil
		},
	})

	register(&Query{
		Name: "delete_nfs_quota", Short: "dnfq", Kind: Delete,
		Args: []string{"filesys", "login"},
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			d := cx.DB
			f, err := oneFilesys(d, args[0])
			if err != nil {
				return err
			}
			u, err := oneUser(d, args[1])
			if err != nil {
				return mrerr.MrUser
			}
			q, ok := d.QuotaOf(u.UsersID, f.FilsysID)
			if !ok {
				return mrerr.MrNoMatch
			}
			if p, ok := d.NFSPhysByID(q.PhysID); ok {
				p.Allocated -= q.Quota
				d.NoteUpdate(db.TNFSPhys)
			}
			return d.DeleteQuota(u.UsersID, f.FilsysID)
		},
	})
}
