package queries

// The access cache of section 5.5: "Because one of the requests that the
// server supports is a request to check access to a particular query, it
// is expected that many access checks will have to be performed twice:
// once to allow the client to find out that it should prompt the user
// for information, and again when the query is actually executed. It is
// expected that some form of access caching will eventually be worked
// into the server for performance reasons."
//
// The cache is per-connection (per Context) and therefore needs no
// locking of its own. An entry records the database change sequence at
// the time of the successful check; any write to the database — which
// could have altered list memberships or CAPACLS rows — invalidates all
// entries, making the cache conservative but never stale.

import "strings"

// accessCache memoizes successful access checks.
type accessCache struct {
	entries map[string]int64 // key -> db change sequence at check time
}

// EnableAccessCache turns on access-check memoization for this context.
// The server enables it per connection; the ablation benchmark compares
// both settings.
func (cx *Context) EnableAccessCache() {
	if cx.cache == nil {
		cx.cache = &accessCache{entries: make(map[string]int64)}
	}
}

// AccessCacheLen reports the number of live cache entries (testing).
func (cx *Context) AccessCacheLen() int {
	if cx.cache == nil {
		return 0
	}
	return len(cx.cache.entries)
}

func accessCacheKey(name string, args []string) string {
	return name + "\x00" + strings.Join(args, "\x00")
}

// cacheLookup reports a previously allowed (query, args) pair, valid only
// while the database is unchanged. Caller holds at least the shared lock.
func (cx *Context) cacheLookup(name string, args []string) bool {
	if cx.cache == nil {
		return false
	}
	seq, ok := cx.cache.entries[accessCacheKey(name, args)]
	if !ok {
		return false
	}
	if seq != cx.DB.CurSeq() {
		// Anything may have changed; drop the whole cache.
		cx.cache.entries = make(map[string]int64)
		return false
	}
	return true
}

// cacheStore records a successful access check. Caller holds at least
// the shared lock.
func (cx *Context) cacheStore(name string, args []string) {
	if cx.cache == nil {
		return
	}
	if len(cx.cache.entries) >= 256 {
		// Bound per-connection memory; a full cache simply restarts.
		cx.cache.entries = make(map[string]int64)
	}
	cx.cache.entries[accessCacheKey(name, args)] = cx.DB.CurSeq()
}
