package queries

// Queries over zephyr classes, host access, network services, printers,
// aliases, values, and table statistics (sections 7.0.6 and 7.0.7).

import (
	"strings"

	"moira/internal/acl"
	"moira/internal/db"
	"moira/internal/mrerr"
	"moira/internal/wildcard"
)

// resolveFourACEs validates the four (type, name) pairs of the zephyr
// class queries.
func resolveFourACEs(d *db.DB, args []string) (types [4]string, ids [4]int, err error) {
	for i := 0; i < 4; i++ {
		t, id, e := acl.ResolveACE(d, args[2*i], args[2*i+1])
		if e != nil {
			return types, ids, e
		}
		types[i], ids[i] = t, id
	}
	return types, ids, nil
}

func zephyrTuple(d *db.DB, z *db.ZephyrClass) []string {
	return []string{
		z.Class,
		z.XmtType, acl.NameOfACE(d, z.XmtType, z.XmtID),
		z.SubType, acl.NameOfACE(d, z.SubType, z.SubID),
		z.IwsType, acl.NameOfACE(d, z.IwsType, z.IwsID),
		z.IuiType, acl.NameOfACE(d, z.IuiType, z.IuiID),
		i642s(z.Mod.Time), z.Mod.By, z.Mod.With,
	}
}

func oneZephyr(d *db.DB, class string) (*db.ZephyrClass, error) {
	if !wildcard.HasWildcards(class) {
		if z, ok := d.ZephyrByClass(class); ok {
			return z, nil
		}
		return nil, mrerr.MrNoMatch
	}
	var found []*db.ZephyrClass
	d.EachZephyr(func(z *db.ZephyrClass) bool {
		if wildcard.Match(class, z.Class) {
			found = append(found, z)
		}
		return true
	})
	switch len(found) {
	case 0:
		return nil, mrerr.MrNoMatch
	case 1:
		return found[0], nil
	default:
		return nil, mrerr.MrNotUnique
	}
}

func init() {
	register(&Query{
		Name: "get_zephyr_class", Short: "gzcl", Kind: Retrieve,
		Args: []string{"class"},
		Returns: []string{"class", "xmt_type", "xmt_name", "sub_type", "sub_name",
			"iws_type", "iws_name", "iui_type", "iui_name", "modtime", "modby", "modwith"},
		Access: accessAnyone,
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			var tuples [][]string
			cx.DB.EachZephyr(func(z *db.ZephyrClass) bool {
				if wildcard.Match(args[0], z.Class) {
					tuples = append(tuples, zephyrTuple(cx.DB, z))
				}
				return true
			})
			if len(tuples) == 0 {
				return mrerr.MrNoMatch
			}
			return emitSorted(tuples, emit)
		},
	})

	register(&Query{
		Name: "add_zephyr_class", Short: "azcl", Kind: Append,
		Args: []string{"class", "xmt_type", "xmt_name", "sub_type", "sub_name",
			"iws_type", "iws_name", "iui_type", "iui_name"},
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			d := cx.DB
			if err := checkNameChars(args[0]); err != nil {
				return err
			}
			if _, dup := d.ZephyrByClass(args[0]); dup {
				return mrerr.MrExists
			}
			types, ids, err := resolveFourACEs(d, args[1:])
			if err != nil {
				return err
			}
			return d.InsertZephyr(&db.ZephyrClass{
				Class:   args[0],
				XmtType: types[0], XmtID: ids[0],
				SubType: types[1], SubID: ids[1],
				IwsType: types[2], IwsID: ids[2],
				IuiType: types[3], IuiID: ids[3],
				Mod: cx.modInfo(),
			})
		},
	})

	register(&Query{
		Name: "update_zephyr_class", Short: "uzcl", Kind: Update,
		Args: []string{"class", "newclass", "xmt_type", "xmt_name", "sub_type",
			"sub_name", "iws_type", "iws_name", "iui_type", "iui_name"},
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			d := cx.DB
			z, err := oneZephyr(d, args[0])
			if err != nil {
				return err
			}
			newclass := args[1]
			if err := checkNameChars(newclass); err != nil {
				return err
			}
			if newclass != z.Class {
				if _, dup := d.ZephyrByClass(newclass); dup {
					return mrerr.MrNotUnique
				}
			}
			types, ids, err := resolveFourACEs(d, args[2:])
			if err != nil {
				return err
			}
			if newclass != z.Class {
				d.RenameZephyr(z, newclass)
			}
			z.XmtType, z.XmtID = types[0], ids[0]
			z.SubType, z.SubID = types[1], ids[1]
			z.IwsType, z.IwsID = types[2], ids[2]
			z.IuiType, z.IuiID = types[3], ids[3]
			z.Mod = cx.modInfo()
			d.NoteUpdate(db.TZephyr)
			return nil
		},
	})

	register(&Query{
		Name: "delete_zephyr_class", Short: "dzcl", Kind: Delete,
		Args: []string{"class"},
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			z, err := oneZephyr(cx.DB, args[0])
			if err != nil {
				return err
			}
			cx.DB.DeleteZephyr(z)
			return nil
		},
	})

	register(&Query{
		Name: "get_server_host_access", Short: "gsha", Kind: Retrieve,
		Args:    []string{"machine"},
		Returns: []string{"machine", "ace_type", "ace_name", "modtime", "modby", "modwith"},
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			d := cx.DB
			var tuples [][]string
			d.EachHostAccess(func(h *db.HostAccess) bool {
				m, ok := d.MachineByID(h.MachID)
				if !ok {
					return true
				}
				if wildcard.Match(strings.ToUpper(args[0]), m.Name) {
					tuples = append(tuples, []string{
						m.Name, h.ACLType, acl.NameOfACE(d, h.ACLType, h.ACLID),
						i642s(h.Mod.Time), h.Mod.By, h.Mod.With,
					})
				}
				return true
			})
			if len(tuples) == 0 {
				return mrerr.MrNoMatch
			}
			return emitSorted(tuples, emit)
		},
	})

	register(&Query{
		Name: "add_server_host_access", Short: "asha", Kind: Append,
		Args: []string{"machine", "ace_type", "ace_name"},
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			d := cx.DB
			m, err := oneMachine(d, args[0])
			if err != nil {
				return mrerr.MrMachine
			}
			aceType, aceID, err := acl.ResolveACE(d, args[1], args[2])
			if err != nil {
				return err
			}
			return d.InsertHostAccess(&db.HostAccess{
				MachID: m.MachID, ACLType: aceType, ACLID: aceID, Mod: cx.modInfo(),
			})
		},
	})

	register(&Query{
		Name: "update_server_host_access", Short: "usha", Kind: Update,
		Args: []string{"machine", "ace_type", "ace_name"},
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			d := cx.DB
			m, err := oneMachine(d, args[0])
			if err != nil {
				return mrerr.MrMachine
			}
			h, ok := d.HostAccessOf(m.MachID)
			if !ok {
				return mrerr.MrNoMatch
			}
			aceType, aceID, err := acl.ResolveACE(d, args[1], args[2])
			if err != nil {
				return err
			}
			h.ACLType, h.ACLID = aceType, aceID
			h.Mod = cx.modInfo()
			d.NoteUpdate(db.THostAccess)
			return nil
		},
	})

	register(&Query{
		Name: "delete_server_host_access", Short: "dsha", Kind: Delete,
		Args: []string{"machine"},
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			m, err := oneMachine(cx.DB, args[0])
			if err != nil {
				return mrerr.MrMachine
			}
			return cx.DB.DeleteHostAccess(m.MachID)
		},
	})

	register(&Query{
		Name: "add_service", Short: "asvc", Kind: Append,
		Args: []string{"service", "protocol", "port", "description"},
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			d := cx.DB
			if err := checkNameChars(args[0]); err != nil {
				return err
			}
			if _, dup := d.ServiceByName(args[0]); dup {
				return mrerr.MrExists
			}
			proto := strings.ToUpper(args[1])
			if !d.IsValidType("protocol", proto) {
				return mrerr.MrType
			}
			port, err := parseInt(args[2])
			if err != nil {
				return err
			}
			return d.InsertService(&db.Service{
				Name: args[0], Protocol: proto, Port: port, Desc: args[3],
				Mod: cx.modInfo(),
			})
		},
	})

	register(&Query{
		Name: "delete_service", Short: "dsvc", Kind: Delete,
		Args: []string{"service"},
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			s, ok := cx.DB.ServiceByName(args[0])
			if !ok {
				return mrerr.MrNoMatch
			}
			cx.DB.DeleteService(s)
			return nil
		},
	})

	register(&Query{
		Name: "get_printcap", Short: "gpcp", Kind: Retrieve,
		Args: []string{"printer"},
		Returns: []string{"printer", "spool_host", "spool_directory", "rprinter",
			"comments", "modtime", "modby", "modwith"},
		Access: accessAnyone,
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			d := cx.DB
			var tuples [][]string
			d.EachPrintcap(func(p *db.Printcap) bool {
				if !wildcard.Match(args[0], p.Name) {
					return true
				}
				mname := "???"
				if m, ok := d.MachineByID(p.MachID); ok {
					mname = m.Name
				}
				tuples = append(tuples, []string{
					p.Name, mname, p.Dir, p.RP, p.Comments,
					i642s(p.Mod.Time), p.Mod.By, p.Mod.With,
				})
				return true
			})
			if len(tuples) == 0 {
				return mrerr.MrNoMatch
			}
			return emitSorted(tuples, emit)
		},
	})

	register(&Query{
		Name: "add_printcap", Short: "apcp", Kind: Append,
		Args: []string{"printer", "spool_host", "spool_directory", "rprinter", "comments"},
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			d := cx.DB
			if err := checkNameChars(args[0]); err != nil {
				return err
			}
			if _, dup := d.PrintcapByName(args[0]); dup {
				return mrerr.MrExists
			}
			m, err := oneMachine(d, args[1])
			if err != nil {
				return mrerr.MrMachine
			}
			return d.InsertPrintcap(&db.Printcap{
				Name: args[0], MachID: m.MachID, Dir: args[2], RP: args[3],
				Comments: args[4], Mod: cx.modInfo(),
			})
		},
	})

	register(&Query{
		Name: "delete_printcap", Short: "dpcp", Kind: Delete,
		Args: []string{"printer"},
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			p, ok := cx.DB.PrintcapByName(args[0])
			if !ok {
				return mrerr.MrNoMatch
			}
			cx.DB.DeletePrintcap(p)
			return nil
		},
	})

	register(&Query{
		Name: "get_alias", Short: "gali", Kind: Retrieve,
		Args:    []string{"name", "type", "translation"},
		Returns: []string{"name", "type", "translation"},
		Access:  accessAnyone,
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			var tuples [][]string
			for _, a := range cx.DB.Aliases() {
				if wildcard.Match(args[0], a.Name) && wildcard.Match(args[1], a.Type) &&
					wildcard.Match(args[2], a.Trans) {
					tuples = append(tuples, []string{a.Name, a.Type, a.Trans})
				}
			}
			if len(tuples) == 0 {
				return mrerr.MrNoMatch
			}
			return emitSorted(tuples, emit)
		},
	})

	register(&Query{
		Name: "add_alias", Short: "aali", Kind: Append,
		Args: []string{"name", "type", "translation"},
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			d := cx.DB
			// The alias types themselves are type-checked: you cannot add
			// an alias of a type not registered under "alias".
			if !d.IsValidType("alias", args[1]) {
				return mrerr.MrType
			}
			return d.AddAlias(args[0], args[1], args[2])
		},
	})

	register(&Query{
		Name: "delete_alias", Short: "dali", Kind: Delete,
		Args: []string{"name", "type", "translation"},
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			return cx.DB.DeleteAlias(args[0], args[1], args[2])
		},
	})

	register(&Query{
		Name: "get_value", Short: "gval", Kind: Retrieve,
		Args:    []string{"variable"},
		Returns: []string{"value"},
		Access:  accessAnyone,
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			v, err := cx.DB.GetValue(args[0])
			if err != nil {
				return err
			}
			return emit([]string{i2s(v)})
		},
	})

	register(&Query{
		Name: "add_value", Short: "aval", Kind: Append,
		Args: []string{"variable", "value"},
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			v, err := parseInt(args[1])
			if err != nil {
				return err
			}
			return cx.DB.AddValue(args[0], v)
		},
	})

	register(&Query{
		Name: "update_value", Short: "uval", Kind: Update,
		Args: []string{"variable", "value"},
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			v, err := parseInt(args[1])
			if err != nil {
				return err
			}
			return cx.DB.UpdateValue(args[0], v)
		},
	})

	register(&Query{
		Name: "delete_value", Short: "dval", Kind: Delete,
		Args: []string{"variable"},
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			return cx.DB.DeleteValue(args[0])
		},
	})

	register(&Query{
		Name: "get_all_table_stats", Short: "gats", Kind: Retrieve,
		Returns: []string{"table", "retrieves", "appends", "updates", "deletes", "modtime"},
		Access:  accessAnyone,
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			for _, s := range cx.DB.AllStats() {
				err := emit([]string{
					s.Table, i2s(s.Retrieves), i2s(s.Appends), i2s(s.Updates),
					i2s(s.Deletes), i642s(s.ModTime),
				})
				if err != nil {
					return err
				}
			}
			return nil
		},
	})
}
