package queries

import (
	"testing"

	"moira/internal/mrerr"
)

func TestAccessCacheHitAndInvalidation(t *testing.T) {
	f := newFixture(t)
	f.addUser(t, "alice")
	alice := f.userCtx("alice")
	alice.EnableAccessCache()

	args := []string{"alice", "/bin/sh"}
	// First Access check populates the cache.
	if err := CheckAccess(alice, "update_user_shell", args); err != nil {
		t.Fatal(err)
	}
	if alice.AccessCacheLen() != 1 {
		t.Errorf("cache len = %d", alice.AccessCacheLen())
	}
	// Executing the query consumes the cached decision (and, being a
	// write, bumps the change sequence, invalidating the cache).
	if _, err := f.run(alice, "update_user_shell", args...); err != nil {
		t.Fatal(err)
	}
	// After the write, a stale lookup must re-check rather than reuse.
	if alice.cacheLookup("update_user_shell", args) {
		t.Error("cache served a stale entry after a database change")
	}
}

func TestAccessCacheNeverCachesDenials(t *testing.T) {
	f := newFixture(t)
	f.addUser(t, "alice")
	f.addUser(t, "bob")
	alice := f.userCtx("alice")
	alice.EnableAccessCache()

	// Denied: not cached.
	if err := CheckAccess(alice, "update_user_shell", []string{"bob", "/bin/sh"}); err != mrerr.MrPerm {
		t.Fatalf("err = %v", err)
	}
	if alice.AccessCacheLen() != 0 {
		t.Error("denial was cached")
	}
}

func TestAccessCacheDoesNotLeakAcrossRevocation(t *testing.T) {
	f := newFixture(t)
	f.addUser(t, "operator")
	f.mustRun(t, f.priv, "add_member_to_list", AdminList, "USER", "operator")
	op := f.userCtx("operator")
	op.EnableAccessCache()

	args := []string{"new.mit.edu", "VAX"}
	if err := CheckAccess(op, "add_machine", args); err != nil {
		t.Fatal(err)
	}
	// Revoke the capability before the query runs: the removal bumps the
	// change sequence, so the cached allow must not be honoured.
	f.mustRun(t, f.priv, "delete_member_from_list", AdminList, "USER", "operator")
	if _, err := f.run(op, "add_machine", args...); err != mrerr.MrPerm {
		t.Errorf("revoked capability still honoured: err = %v", err)
	}
}

func TestAccessCacheBounded(t *testing.T) {
	f := newFixture(t)
	f.addUser(t, "alice")
	alice := f.userCtx("alice")
	alice.EnableAccessCache()
	for i := 0; i < 400; i++ {
		args := []string{"alice", string(rune('a'+i%26)) + "/bin/sh"}
		CheckAccess(alice, "update_user_shell", args)
	}
	if n := alice.AccessCacheLen(); n > 256 {
		t.Errorf("cache grew unbounded: %d", n)
	}
}

// BenchmarkAccessCacheAblation measures the access cache against the
// scenario section 5.5 worries about: an access check that requires
// expanding nested lists. The operator's capability flows through a
// 200-deep chain of sublists with broad membership, so the uncached
// check walks the whole expansion every time.
func BenchmarkAccessCacheAblation(b *testing.B) {
	d := NewBootstrappedDB(nil)
	priv := &Context{DB: d, Privileged: true, App: "bench"}
	run := func(name string, args ...string) {
		if err := Execute(priv, name, args, func([]string) error { return nil }); err != nil {
			b.Fatalf("%s: %v", name, err)
		}
	}
	run("add_user", "operator", "-1", "/bin/csh", "Op", "Er", "", "1", "", "STAFF")
	// dbadmin ⊃ chain0 ⊃ chain1 ⊃ ... ⊃ chain199 ∋ operator, with filler
	// members at every level so the expansion has real width.
	prev := AdminList
	const depth = 200
	for i := 0; i < depth; i++ {
		name := "chain" + itoaBench(i)
		run("add_list", name, "1", "0", "0", "0", "0", "0", "NONE", "NONE", "")
		run("add_member_to_list", prev, "LIST", name)
		run("add_member_to_list", name, "STRING", "filler-"+itoaBench(i)+"@mit.edu")
		prev = name
	}
	run("add_member_to_list", prev, "USER", "operator")

	newCtx := func(cached bool) *Context {
		cx := &Context{DB: d, Principal: "operator", App: "bench"}
		cx.ResolveUser()
		if cached {
			cx.EnableAccessCache()
		}
		return cx
	}
	checkArgs := []string{"new.mit.edu", "VAX"}
	b.Run("uncached", func(b *testing.B) {
		cx := newCtx(false)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := CheckAccess(cx, "add_machine", checkArgs); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		cx := newCtx(true)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := CheckAccess(cx, "add_machine", checkArgs); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func itoaBench(v int) string { return i2s(v) }
