package queries

import (
	"testing"

	"moira/internal/db"
	"moira/internal/mrerr"
)

func TestFingerQueries(t *testing.T) {
	f := newFixture(t)
	f.addUser(t, "babette")
	f.mustRun(t, f.priv, "update_finger_by_login", "babette",
		"Harmon C Fowler", "Harm", "12 Oak St", "555-0100",
		"E40-342", "555-0200", "EECS", "undergraduate")
	out := f.mustRun(t, f.priv, "get_finger_by_login", "babette")
	row := out[0]
	if row[1] != "Harmon C Fowler" || row[2] != "Harm" || row[7] != "EECS" || row[8] != "undergraduate" {
		t.Errorf("finger = %v", row)
	}
	// Self-service: the target user may read and update their own record.
	babette := f.userCtx("babette")
	if _, err := f.run(babette, "get_finger_by_login", "babette"); err != nil {
		t.Errorf("self finger read: %v", err)
	}
	if _, err := f.run(babette, "update_finger_by_login", "babette",
		"B. Fowler", "", "", "", "", "", "", ""); err != nil {
		t.Errorf("self finger update: %v", err)
	}
	f.addUser(t, "other")
	if _, err := f.run(babette, "update_finger_by_login", "other",
		"x", "", "", "", "", "", "", ""); err != mrerr.MrPerm {
		t.Errorf("other finger update err = %v", err)
	}
}

func TestGetAceUseRecursiveAndObjectTypes(t *testing.T) {
	f := newFixture(t)
	f.addUser(t, "owner")
	// owner sits inside nested lists; the outer list is the ACE of
	// several object types.
	f.mustRun(t, f.priv, "add_list", "ops", "1", "0", "0", "0", "0", "0", "NONE", "NONE", "")
	f.mustRun(t, f.priv, "add_list", "ops-parent", "1", "0", "0", "0", "0", "0", "NONE", "NONE", "")
	f.mustRun(t, f.priv, "add_member_to_list", "ops", "USER", "owner")
	f.mustRun(t, f.priv, "add_member_to_list", "ops-parent", "LIST", "ops")

	f.mustRun(t, f.priv, "add_server_info", "TESTSVC", "60", "/t", "/d", "UNIQUE", "1", "LIST", "ops-parent")
	f.mustRun(t, f.priv, "add_server_host_access", "suomi.mit.edu", "LIST", "ops-parent")
	f.mustRun(t, f.priv, "add_zephyr_class", "OPSCLASS", "LIST", "ops-parent",
		"NONE", "NONE", "NONE", "NONE", "NONE", "NONE")
	f.mustRun(t, f.priv, "add_list", "guarded", "1", "0", "0", "0", "0", "0", "LIST", "ops-parent", "")

	// Direct uses of ops-parent.
	out := f.mustRun(t, f.priv, "get_ace_use", "LIST", "ops-parent")
	types := map[string]bool{}
	for _, row := range out {
		types[row[0]] = true
	}
	for _, want := range []string{"SERVICE", "HOSTACCESS", "ZEPHYR", "LIST"} {
		if !types[want] {
			t.Errorf("get_ace_use missing %s: %v", want, out)
		}
	}

	// Recursive by user: owner holds all of it through ops -> ops-parent.
	out = f.mustRun(t, f.priv, "get_ace_use", "RUSER", "owner")
	types = map[string]bool{}
	for _, row := range out {
		types[row[0]] = true
	}
	if !types["SERVICE"] || !types["ZEPHYR"] {
		t.Errorf("recursive ace use = %v", out)
	}
	// Recursive by list.
	out = f.mustRun(t, f.priv, "get_ace_use", "RLIST", "ops")
	found := false
	for _, row := range out {
		if row[0] == "SERVICE" && row[1] == "TESTSVC" {
			found = true
		}
	}
	if !found {
		t.Errorf("RLIST ace use = %v", out)
	}
}

func TestHostAccessQueries(t *testing.T) {
	f := newFixture(t)
	f.addUser(t, "operator")
	f.mustRun(t, f.priv, "add_server_host_access", "suomi.mit.edu", "USER", "operator")
	out := f.mustRun(t, f.priv, "get_server_host_access", "*")
	if len(out) != 1 || out[0][0] != "SUOMI.MIT.EDU" || out[0][2] != "operator" {
		t.Errorf("hostaccess = %v", out)
	}
	if _, err := f.run(f.priv, "add_server_host_access", "suomi.mit.edu", "USER", "operator"); err != mrerr.MrExists {
		t.Errorf("dup hostaccess err = %v", err)
	}
	f.mustRun(t, f.priv, "update_server_host_access", "suomi.mit.edu", "LIST", AdminList)
	out = f.mustRun(t, f.priv, "get_server_host_access", "SUOMI*")
	if out[0][1] != "LIST" || out[0][2] != AdminList {
		t.Errorf("updated hostaccess = %v", out)
	}
	f.mustRun(t, f.priv, "delete_server_host_access", "suomi.mit.edu")
	if _, err := f.run(f.priv, "get_server_host_access", "*"); err != mrerr.MrNoMatch {
		t.Errorf("after delete err = %v", err)
	}
}

func TestDeleteUserByUIDReturnsQuota(t *testing.T) {
	f := newFixture(t)
	f.addUser(t, "leaver")
	f.mustRun(t, f.priv, "add_list", "lgrp", "1", "0", "0", "0", "1", UniqueGID, "NONE", "NONE", "")
	f.mustRun(t, f.priv, "add_filesys", "leaverfs", "NFS", "charon.mit.edu",
		"/u1/leaver", "/mit/leaver", "w", "", "leaver", "lgrp", "1", "HOMEDIR")
	f.mustRun(t, f.priv, "add_nfs_quota", "leaverfs", "leaver", "400")
	np := f.mustRun(t, f.priv, "get_nfsphys", "charon.mit.edu", "/u1")
	if np[0][4] != "400" {
		t.Fatalf("allocated = %s", np[0][4])
	}
	uidRow := f.mustRun(t, f.priv, "get_user_by_login", "leaver")
	uid := uidRow[0][1]

	// The user still owns the filesystem: deletion refused.
	if _, err := f.run(f.priv, "delete_user_by_uid", uid); err != mrerr.MrInUse {
		t.Fatalf("owner delete err = %v", err)
	}
	f.mustRun(t, f.priv, "delete_filesys", "leaverfs")
	// delete_filesys already returned the quota allocation.
	np = f.mustRun(t, f.priv, "get_nfsphys", "charon.mit.edu", "/u1")
	if np[0][4] != "0" {
		t.Fatalf("allocated after filesys delete = %s", np[0][4])
	}
	f.mustRun(t, f.priv, "delete_user_by_uid", uid)
	if _, err := f.run(f.priv, "get_user_by_login", "leaver"); err != mrerr.MrNoMatch {
		t.Errorf("user survived uid delete: %v", err)
	}
}

func TestExpandListNames(t *testing.T) {
	f := newFixture(t)
	for _, n := range []string{"eng-all", "eng-staff", "sci-all"} {
		f.mustRun(t, f.priv, "add_list", n, "1", "0", "0", "0", "0", "0", "NONE", "NONE", "")
	}
	out := f.mustRun(t, f.priv, "expand_list_names", "eng-*")
	if len(out) != 2 {
		t.Errorf("expanded = %v", out)
	}
	// Hidden lists don't expand for outsiders.
	f.addUser(t, "pleb")
	f.mustRun(t, f.priv, "add_list", "eng-secret", "1", "0", "1", "0", "0", "0", "NONE", "NONE", "")
	pleb := f.userCtx("pleb")
	out, err := f.run(pleb, "expand_list_names", "eng-*")
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range out {
		if row[0] == "eng-secret" {
			t.Error("hidden list leaked through expand_list_names")
		}
	}
}

func TestQualifiedGetServer(t *testing.T) {
	f := newFixture(t)
	f.mustRun(t, f.priv, "add_server_info", "UP", "60", "/t", "/d", "UNIQUE", "1", "NONE", "NONE")
	f.mustRun(t, f.priv, "add_server_info", "DOWN", "60", "/t", "/d", "UNIQUE", "0", "NONE", "NONE")
	out := f.mustRun(t, f.priv, "qualified_get_server", "TRUE", "DONTCARE", "FALSE")
	names := map[string]bool{}
	for _, r := range out {
		names[r[0]] = true
	}
	if !names["UP"] || names["DOWN"] {
		t.Errorf("qualified servers = %v", out)
	}
	if _, err := f.run(f.priv, "qualified_get_server", "MAYBE", "FALSE", "FALSE"); err != mrerr.MrType {
		t.Errorf("bad tri-state err = %v", err)
	}
}

func TestUpdateUserRename(t *testing.T) {
	f := newFixture(t)
	f.addUser(t, "oldname")
	f.mustRun(t, f.priv, "add_list", "holder", "1", "0", "0", "0", "0", "0", "NONE", "NONE", "")
	f.mustRun(t, f.priv, "add_member_to_list", "holder", "USER", "oldname")

	row := f.mustRun(t, f.priv, "get_user_by_login", "oldname")[0]
	f.mustRun(t, f.priv, "update_user", "oldname", "newname", row[1], row[2],
		row[3], row[4], row[5], row[6], row[7], row[8])

	// References survive the rename (the paper: "all references to this
	// user will still exist, even if the login name is changed").
	mem := f.mustRun(t, f.priv, "get_members_of_list", "holder")
	if len(mem) != 1 || mem[0][1] != "newname" {
		t.Errorf("membership after rename = %v", mem)
	}
	if _, err := f.run(f.priv, "get_user_by_login", "oldname"); err != mrerr.MrNoMatch {
		t.Errorf("old login err = %v", err)
	}
	// Renaming onto an existing login is refused.
	f.addUser(t, "taken")
	if _, err := f.run(f.priv, "update_user", "newname", "taken", row[1], row[2],
		row[3], row[4], row[5], row[6], row[7], row[8]); err != mrerr.MrNotUnique {
		t.Errorf("rename onto taken err = %v", err)
	}
	_ = db.UserActive
}
