package queries

import (
	"time"

	"moira/internal/mrerr"
	"moira/internal/protocol"
)

// ExecuteBatch runs a v4 OpBatch: N mutations under one exclusive lock
// acquisition and one journal group commit. The items are independent
// transactions executed in submission order — a failing item does not
// roll back or skip its neighbours — but they share the lock and the
// fsync, which is where the batch wins: the per-item cost drops to the
// handler itself.
//
// The returned slice has one code per item. The error return is the
// batch-level verdict: non-nil means the batch as a whole cannot be
// acknowledged (wedged journal up front, or the shared group fsync
// failed after the handlers ran). On a group-sync failure the in-memory
// effects of the batch stand, exactly like a single mutation whose
// journal append failed, and the database wedges so the divergence
// stops growing.
//
// Retrieves are not batchable: a batch reply has one code per item and
// no per-item tuple stream, so a retrieve name gets MR_NO_HANDLE just
// like an unknown one.
func ExecuteBatch(cx *Context, items []protocol.BatchItem) ([]mrerr.Code, error) {
	codes := make([]mrerr.Code, len(items))
	if len(items) == 0 {
		return codes, nil
	}
	// Fail-stop gate, as in Execute: a wedged store refuses mutations.
	if cx.DB.JournalWedged() {
		return nil, mrerr.MrDown
	}
	var t0 time.Time
	if cx.Span != nil {
		t0 = time.Now()
	}
	cx.CommitOK = false
	// As in Execute, the locked section is a closure so the commit gate
	// below waits for the replica ack without the exclusive lock held.
	err := func() error {
		cx.DB.LockExclusive()
		defer cx.DB.UnlockExclusive()
		err := cx.DB.JournalGroup(func() error {
			for i, it := range items {
				codes[i] = batchItemLocked(cx, it)
			}
			return nil
		})
		if err == nil {
			if seg, recs, ok := cx.DB.JournalHead(); ok {
				idx := recs - 1 // clamped as in Execute: see the rotation note there
				if idx < 0 {
					idx = 0
				}
				cx.CommitSeg, cx.CommitIdx, cx.CommitOK = seg, idx, true
			}
		}
		return err
	}()
	if cx.Span != nil {
		// One phase covering the whole batch; per-item phases would swamp
		// the trace ring.
		cx.Span.Record("server.batch", t0, time.Since(t0), int32(mrerr.CodeOf(err)))
	}
	if err != nil || !cx.CommitOK || cx.CommitGate == nil {
		return codes, err
	}
	return codes, commitGate(cx)
}

// batchItemLocked runs one batch item under the already-held exclusive
// lock, mirroring Execute's mutation path: argument checks, access
// check, handler, journal append (deferred-sync, inside the group).
func batchItemLocked(cx *Context, it protocol.BatchItem) mrerr.Code {
	// An append that failed earlier in this batch wedged the store; the
	// remaining items fail fast without running their handlers, keeping
	// the memory/disk divergence at the one item that tore.
	if cx.DB.JournalWedged() {
		return mrerr.MrDown
	}
	q, ok := Lookup(it.Name)
	if !ok || q.Kind == Retrieve {
		return mrerr.MrNoHandle
	}
	if err := checkArgs(q, it.Args); err != nil {
		return mrerr.CodeOf(err)
	}
	if err := checkAccessLocked(cx, q, it.Args); err != nil {
		return mrerr.CodeOf(err)
	}
	if err := q.Handler(cx, it.Args, func([]string) error { return nil }); err != nil {
		return mrerr.CodeOf(err)
	}
	if err := cx.DB.JournalQuery(cx.Principal, cx.App, cx.TraceID, q.Name, it.Args); err != nil {
		return mrerr.CodeOf(err)
	}
	return mrerr.Success
}
