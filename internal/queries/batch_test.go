package queries

import (
	"bufio"
	"bytes"
	"strings"
	"testing"

	"moira/internal/db"
	"moira/internal/mrerr"
	"moira/internal/protocol"
)

func TestExecuteBatchPerItemCodes(t *testing.T) {
	f := newFixture(t)
	var journal bytes.Buffer
	f.d.SetJournal(&journal)

	codes, err := ExecuteBatch(f.priv, []protocol.BatchItem{
		{Name: "add_machine", Args: []string{"batch1.mit.edu", "VAX"}},
		{Name: "add_machine", Args: []string{"batch1.mit.edu", "VAX"}}, // duplicate
		{Name: "no_such_query", Args: nil},
		{Name: "get_machine", Args: []string{"*"}}, // retrieves are not batchable
		{Name: "add_machine", Args: []string{"just-one-arg"}},
		{Name: "add_machine", Args: []string{"batch2.mit.edu", "RT"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []mrerr.Code{
		mrerr.Success, mrerr.MrNotUnique, mrerr.MrNoHandle,
		mrerr.MrNoHandle, mrerr.MrArgs, mrerr.Success,
	}
	for i, w := range want {
		if codes[i] != w {
			t.Errorf("item %d: code %v, want %v", i, codes[i], w)
		}
	}

	// The successful items took effect and journaled replayable lines;
	// the failed ones left nothing behind.
	if out := f.mustRun(t, f.priv, "get_machine", "BATCH2.MIT.EDU"); len(out) != 1 {
		t.Errorf("batch2 lookup = %v", out)
	}
	var logged []string
	sc := bufio.NewScanner(&journal)
	for sc.Scan() {
		rec, err := db.ParseJournalLine(sc.Text())
		if err != nil {
			t.Fatalf("journal line %q: %v", sc.Text(), err)
		}
		logged = append(logged, rec.Query+" "+strings.Join(rec.Args, " "))
	}
	if len(logged) != 2 || !strings.Contains(logged[0], "batch1") || !strings.Contains(logged[1], "batch2") {
		t.Errorf("journaled = %q, want the two successful add_machines", logged)
	}
}

func TestExecuteBatchAccessDenied(t *testing.T) {
	f := newFixture(t)
	f.mustRun(t, f.priv, "add_user", "plebe", "900", "/bin/sh", "Person", "Plebe", "Q", "1", "900000000", "G")
	cx := f.userCtx("plebe")
	codes, err := ExecuteBatch(cx, []protocol.BatchItem{
		{Name: "add_machine", Args: []string{"denied.mit.edu", "VAX"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if codes[0] != mrerr.MrPerm {
		t.Errorf("unprivileged batch mutation: %v, want MR_PERM", codes[0])
	}
	if _, err := f.run(f.priv, "get_machine", "DENIED.MIT.EDU"); err != mrerr.MrNoMatch {
		t.Errorf("denied item applied anyway: %v", err)
	}
}

func TestExecuteBatchWedgedJournal(t *testing.T) {
	f := newFixture(t)
	f.d.SetJournal(failWriter{})
	codes, err := ExecuteBatch(f.priv, []protocol.BatchItem{
		{Name: "add_machine", Args: []string{"w1.mit.edu", "VAX"}},
		{Name: "add_machine", Args: []string{"w2.mit.edu", "VAX"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// The first item's append fails and wedges the store; the second
	// must fail fast with MR_DOWN, its handler never run.
	if codes[0] != mrerr.MrInternal || codes[1] != mrerr.MrDown {
		t.Errorf("codes = %v, want [internal, down]", codes)
	}
	if _, err := ExecuteBatch(f.priv, []protocol.BatchItem{
		{Name: "add_machine", Args: []string{"w3.mit.edu", "VAX"}},
	}); err != mrerr.MrDown {
		t.Errorf("wedged batch gate: %v, want MR_DOWN", err)
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, errBoom }

var errBoom = errFixed("boom")

type errFixed string

func (e errFixed) Error() string { return string(e) }
