package queries

// The built-in special queries (section 7.0.8): _help, _list_queries,
// and _list_users, plus the trigger_dcm pseudo-query used only for
// access checking of the Trigger_DCM protocol request.

import (
	"strings"

	"moira/internal/mrerr"
)

// TriggerDCMCapability is the pseudo-query name whose CAPACLS row governs
// the Trigger_DCM protocol request.
const TriggerDCMCapability = "trigger_dcm"

func init() {
	register(&Query{
		Name: "_help", Short: "_hlp", Kind: Retrieve,
		Args:    []string{"query"},
		Returns: []string{"help_message"},
		Access:  accessAnyone,
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			q, ok := Lookup(args[0])
			if !ok {
				return mrerr.MrNoHandle
			}
			msg := q.Short + " " + q.Name + " (" + q.Kind.String() + ")"
			if len(q.Args) > 0 {
				msg += " args: " + strings.Join(q.Args, ", ")
			}
			if len(q.Returns) > 0 {
				msg += " returns: " + strings.Join(q.Returns, ", ")
			}
			return emit([]string{msg})
		},
	})

	register(&Query{
		Name: "_list_queries", Short: "_lqu", Kind: Retrieve,
		Returns: []string{"long_query_name", "short_query_name"},
		Access:  accessAnyone,
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			var tuples [][]string
			for _, q := range All() {
				tuples = append(tuples, []string{q.Name, q.Short})
			}
			return emitSorted(tuples, emit)
		},
	})

	register(&Query{
		Name: "_list_users", Short: "_lus", Kind: Retrieve,
		Returns: []string{"kerberos_principal", "host_address", "port_number",
			"connect_time", "client_number"},
		Access: accessAnyone,
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			if cx.Sessions == nil {
				return mrerr.MrNoMatch
			}
			sessions := cx.Sessions()
			if len(sessions) == 0 {
				return mrerr.MrNoMatch
			}
			for _, s := range sessions {
				err := emit([]string{
					s.Principal, s.HostAddress, i2s(s.Port),
					i642s(s.ConnectTime), i2s(s.ClientNum),
				})
				if err != nil {
					return err
				}
			}
			return nil
		},
	})

	// trigger_dcm exists only as a capability anchor: executing it through
	// the normal Query request also works (for completeness) and simply
	// fires the server's DCM trigger.
	register(&Query{
		Name: TriggerDCMCapability, Short: "tdcm", Kind: Update,
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			if cx.TriggerDCM != nil {
				cx.TriggerDCM(cx.TraceID)
			}
			return nil
		},
	})
}
