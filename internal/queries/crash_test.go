package queries

import (
	"errors"
	"testing"

	"moira/internal/db"
)

// TestCrashRecoveryAtEveryPoint is the fault-injection harness: it kills
// the write path at every injected crash point and asserts that boot-time
// recovery reproduces exactly the state a crash at that point commits to.
//
// Timeline at every point: mutation A, checkpoint, mutation B, then
// mutation C (or a second checkpoint) dies at the injected point. The
// recovered database must match, table for table, a reference database
// that executed only the operations the crash semantics promise:
//
//	journal.midline      C's record is torn mid-line — C is lost, the
//	                     tear is reported, nothing else is damaged.
//	journal.presync      C's record fully reached the file before the
//	                     fsync died — C survives. (The client got an
//	                     error either way; an error promises nothing.)
//	checkpoint.midtables the snapshot dump died half way — the partial
//	                     snapshot is discarded, A and B recover through
//	                     the previous snapshot plus segments.
//	checkpoint.prerename the snapshot finished but was never renamed
//	                     into its generation — same outcome, and the
//	                     orphaned .tmp directory is swept at boot.
func TestCrashRecoveryAtEveryPoint(t *testing.T) {
	opA := []string{"add_machine", "alpha.mit.edu", "VAX"}
	opB := []string{"add_machine", "bravo.mit.edu", "VAX"}
	opC := []string{"add_machine", "charlie.mit.edu", "VAX"}

	cases := []struct {
		point       string
		viaJournal  bool // crash fires inside Execute(opC); else inside a checkpoint
		wantC       bool // opC's effect survives recovery
		wantTorn    int
		wantApplied int // records replayed from segments
	}{
		{point: "journal.midline", viaJournal: true, wantC: false, wantTorn: 1, wantApplied: 1},
		{point: "journal.presync", viaJournal: true, wantC: true, wantTorn: 0, wantApplied: 2},
		{point: "checkpoint.midtables", viaJournal: false, wantC: false, wantTorn: 0, wantApplied: 1},
		{point: "checkpoint.prerename", viaJournal: false, wantC: false, wantTorn: 0, wantApplied: 1},
	}
	for _, tc := range cases {
		t.Run(tc.point, func(t *testing.T) {
			f := newDurable(t)
			f.run(t, opA[0], opA[1:]...)
			f.checkpoint(t)
			f.run(t, opB[0], opB[1:]...)

			db.SetCrashHook(func(p string) error {
				if p == tc.point {
					return db.ErrCrashInjected
				}
				return nil
			})
			t.Cleanup(func() { db.SetCrashHook(nil) })

			var err error
			if tc.viaJournal {
				err = Execute(f.cx, opC[0], opC[1:], func([]string) error { return nil })
			} else {
				_, err = f.store.Take(f.d, f.jw.Rotate)
			}
			if !errors.Is(err, db.ErrCrashInjected) {
				t.Fatalf("crash at %s surfaced as %v, want ErrCrashInjected", tc.point, err)
			}
			db.SetCrashHook(nil)
			// The process is dead: nothing is closed, synced, or cleaned.

			rec, info := f.recover(t)
			if info.Generation != 1 {
				t.Errorf("recovered from generation %d, want 1", info.Generation)
			}
			if info.Replay.Torn != tc.wantTorn || info.Replay.Failed != 0 ||
				info.Replay.Applied != tc.wantApplied {
				t.Errorf("replay stats = %+v, want %d applied, %d torn, 0 failed",
					info.Replay, tc.wantApplied, tc.wantTorn)
			}
			if len(info.Fsck) != 0 {
				t.Errorf("recovered database fails fsck: %v", info.Fsck)
			}

			// Reference: a database that executed exactly the committed ops.
			ref := newDurable(t)
			ref.run(t, opA[0], opA[1:]...)
			ref.checkpoint(t)
			ref.run(t, opB[0], opB[1:]...)
			if tc.wantC {
				ref.run(t, opC[0], opC[1:]...)
			}
			assertSameTables(t, ref.d, rec)

			rec.LockShared()
			_, gotC := rec.MachineByName("CHARLIE.MIT.EDU")
			rec.UnlockShared()
			if gotC != tc.wantC {
				t.Errorf("opC survived = %v, want %v", gotC, tc.wantC)
			}

			// Index-derived results: recovery rebuilds the secondary
			// indexes from the restored rows plus journal replay, so
			// wildcard retrieval (ordered name index) and snapshot reads
			// must see exactly the committed machines, in mach_id order.
			wantNames := []string{"ALPHA.MIT.EDU", "BRAVO.MIT.EDU"}
			if tc.wantC {
				wantNames = append(wantNames, "CHARLIE.MIT.EDU")
			}
			rec.LockShared()
			ms := rec.MachinesMatchingName("*.MIT.EDU")
			rec.UnlockShared()
			var gotNames []string
			for _, m := range ms {
				gotNames = append(gotNames, m.Name)
			}
			if len(gotNames) != len(wantNames) {
				t.Fatalf("recovered wildcard match = %v, want %v", gotNames, wantNames)
			}
			for i := range wantNames {
				if gotNames[i] != wantNames[i] {
					t.Fatalf("recovered wildcard match = %v, want %v", gotNames, wantNames)
				}
			}
			snap := rec.Reader()
			if got := snap.MachinesMatchingName("*.MIT.EDU"); len(got) != len(wantNames) {
				t.Errorf("recovered snapshot wildcard match has %d rows, want %d", len(got), len(wantNames))
			}
		})
	}
}
