package queries

import (
	"math/rand"
	"strings"
	"testing"

	"moira/internal/db"
)

// TestNoQueryPanics throws adversarial junk arguments at every
// registered query handle, privileged and unprivileged: whatever the
// input, a query must return an error code, never take the server down.
// (Section 4: "Moira must be tamper-proof" / "fail gracefully".)
func TestNoQueryPanics(t *testing.T) {
	f := newFixture(t)
	f.addUser(t, "fuzzer")
	unpriv := f.userCtx("fuzzer")
	rng := rand.New(rand.NewSource(1988))

	junk := []string{
		"", "*", "?", "**?*", "-1", "0", "1", "999999999", "-999999999",
		"NONE", "USER", "LIST", "STRING", "RUSER", "TRUE", "FALSE", "DONTCARE",
		"root", "dbadmin", "moira", "fuzzer", "charon.mit.edu", "/u1",
		"POP", "SMTP", "NFS", "RVD", "HOMEDIR", "VAX",
		":", "\\", "\\:", "a:b", strings.Repeat("a", 100),
		"\x00\x01\x02", "né UTF-8 ü", " leading", "trailing ",
	}

	discard := func([]string) error { return nil }
	for _, q := range All() {
		for trial := 0; trial < 40; trial++ {
			n := len(q.Args)
			if q.VarArgs {
				n += rng.Intn(3)
			}
			// Occasionally wrong arity, which must fail cleanly too.
			if trial%10 == 9 {
				n = rng.Intn(12)
			}
			args := make([]string, n)
			for i := range args {
				args[i] = junk[rng.Intn(len(junk))]
			}
			cx := f.priv
			if trial%2 == 1 {
				cx = unpriv
			}
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("%s(%q) panicked: %v", q.Name, args, r)
					}
				}()
				Execute(cx, q.Name, args, discard)
			}()
		}
	}
}

// TestFuzzedDatabaseStaysConsistent runs a burst of random mutations and
// then checks cross-relation invariants: every index resolves, every
// membership points at an existing object, and quota accounting adds up.
func TestFuzzedDatabaseStaysConsistent(t *testing.T) {
	f := newFixture(t)
	rng := rand.New(rand.NewSource(42))
	logins := []string{"amy", "bob", "cal", "dee"}
	for _, l := range logins {
		f.addUser(t, l)
	}
	lists := []string{"l1", "l2", "l3"}
	for _, l := range lists {
		f.mustRun(t, f.priv, "add_list", l, "1", "1", "0", "1", "0", "0", "NONE", "NONE", "")
	}
	ops := []func(){
		func() {
			f.run(f.priv, "add_member_to_list",
				lists[rng.Intn(len(lists))], "USER", logins[rng.Intn(len(logins))])
		},
		func() {
			f.run(f.priv, "delete_member_from_list",
				lists[rng.Intn(len(lists))], "USER", logins[rng.Intn(len(logins))])
		},
		func() {
			f.run(f.priv, "add_member_to_list",
				lists[rng.Intn(len(lists))], "LIST", lists[rng.Intn(len(lists))])
		},
		func() {
			f.run(f.priv, "update_user_shell",
				logins[rng.Intn(len(logins))], "/bin/sh")
		},
		func() {
			l := logins[rng.Intn(len(logins))]
			f.run(f.priv, "add_filesys", l+"fs", "NFS", "charon.mit.edu",
				"/u1/"+l, "/mit/"+l, "w", "", l, lists[0], "1", "PROJECT")
		},
		func() {
			l := logins[rng.Intn(len(logins))]
			f.run(f.priv, "add_nfs_quota", l+"fs", l, "100")
		},
		func() {
			l := logins[rng.Intn(len(logins))]
			f.run(f.priv, "delete_nfs_quota", l+"fs", l)
		},
	}
	for i := 0; i < 2000; i++ {
		ops[rng.Intn(len(ops))]()
	}

	d := f.d
	d.LockShared()
	defer d.UnlockShared()
	// Memberships reference live objects.
	d.EachMembership(func(m db.Member) bool {
		if _, ok := d.ListByID(m.ListID); !ok {
			t.Errorf("membership on dead list %d", m.ListID)
		}
		switch m.MemberType {
		case db.ACEUser:
			if _, ok := d.UserByID(m.MemberID); !ok {
				t.Errorf("membership of dead user %d", m.MemberID)
			}
		case db.ACEList:
			if _, ok := d.ListByID(m.MemberID); !ok {
				t.Errorf("membership of dead list %d", m.MemberID)
			}
		}
		return true
	})
	// Quota accounting: the sum of quotas on each partition equals its
	// allocated counter, no matter what order the fuzz applied.
	perPhys := map[int]int{}
	d.EachQuota(func(q *db.NFSQuota) bool {
		perPhys[q.PhysID] += q.Quota
		return true
	})
	d.EachNFSPhys(func(p *db.NFSPhys) bool {
		if p.Allocated != perPhys[p.NFSPhysID] {
			t.Errorf("partition %d: allocated %d, quota sum %d",
				p.NFSPhysID, p.Allocated, perPhys[p.NFSPhysID])
		}
		return true
	})
	// Every filesystem's owner and server still exist.
	d.EachFilesys(func(fs *db.Filesys) bool {
		if _, ok := d.UserByID(fs.Owner); !ok {
			t.Errorf("filesys %s has dead owner", fs.Label)
		}
		if _, ok := d.MachineByID(fs.MachID); !ok {
			t.Errorf("filesys %s has dead machine", fs.Label)
		}
		return true
	})
}
