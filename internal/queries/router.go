package queries

// Multiple-database routing (section 5.2.D): "The system is designed to
// allow further expansion of the current database, with the ultimate
// capability of Moira supporting multiple databases through the same
// query mechanism ... the application merely passes a query handle to a
// function, which then resolves the database and query."
//
// The paper notes the mechanism was "not functional at this time"; this
// implementation completes it. A handle may be qualified with a database
// name — "archive:get_user_by_login" — and the router resolves the
// database before the ordinary dispatch runs. Unqualified handles go to
// the default database, so existing applications are untouched.

import (
	"sort"
	"strings"
	"sync"

	"moira/internal/db"
	"moira/internal/mrerr"
)

// Router resolves qualified query handles onto attached databases.
type Router struct {
	mu  sync.RWMutex
	def *db.DB
	dbs map[string]*db.DB
}

// NewRouter creates a router whose unqualified handles hit def.
func NewRouter(def *db.DB) *Router {
	return &Router{def: def, dbs: make(map[string]*db.DB)}
}

// Attach registers a named database. Re-attaching a name replaces it.
func (r *Router) Attach(name string, d *db.DB) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.dbs[name] = d
}

// Detach removes a named database.
func (r *Router) Detach(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.dbs, name)
}

// Names lists the attached database names, sorted.
func (r *Router) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.dbs))
	for n := range r.dbs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Resolve splits a possibly-qualified handle into its target database
// and the bare query name. Unknown database names fail with
// MR_NO_HANDLE, like unknown queries.
func (r *Router) Resolve(handle string) (*db.DB, string, error) {
	name, query, qualified := strings.Cut(handle, ":")
	if !qualified {
		return r.def, handle, nil
	}
	r.mu.RLock()
	target, ok := r.dbs[name]
	r.mu.RUnlock()
	if !ok {
		return nil, "", mrerr.MrNoHandle
	}
	return target, query, nil
}

// ExecuteRouted resolves the handle's database and runs the query there.
// The caller's identity is re-resolved against the target database —
// principals may have different ids (or not exist) in a secondary
// database, and access control must follow the data being touched.
func ExecuteRouted(cx *Context, r *Router, handle string, args []string, emit EmitFunc) error {
	target, query, err := r.Resolve(handle)
	if err != nil {
		return err
	}
	if target == cx.DB {
		return Execute(cx, query, args, emit)
	}
	routed := &Context{
		DB:         target,
		Principal:  cx.Principal,
		App:        cx.App,
		Privileged: cx.Privileged,
		Sessions:   cx.Sessions,
		TriggerDCM: cx.TriggerDCM,
		TraceID:    cx.TraceID,
		Stats:      cx.Stats,
		Traces:     cx.Traces,
	}
	routed.ResolveUser()
	return Execute(routed, query, args, emit)
}

// CheckAccessRouted is the Access request against a routed handle.
func CheckAccessRouted(cx *Context, r *Router, handle string, args []string) error {
	target, query, err := r.Resolve(handle)
	if err != nil {
		return err
	}
	if target == cx.DB {
		return CheckAccess(cx, query, args)
	}
	routed := &Context{
		DB:         target,
		Principal:  cx.Principal,
		App:        cx.App,
		Privileged: cx.Privileged,
	}
	routed.ResolveUser()
	return CheckAccess(routed, query, args)
}
