package queries

// Queries over users, finger records, and post office boxes (section
// 7.0.1).

import (
	"moira/internal/db"
	"moira/internal/mrerr"
	"moira/internal/wildcard"
)

// Sentinels from <moira.h>: passing UNIQUE_UID as a uid or UNIQUE_LOGIN
// as a login asks the server to allocate.
const (
	UniqueUID   = "-1"
	UniqueLogin = "#"
)

func userSummary(u *db.User) []string {
	return []string{u.Login, i2s(u.UID), u.Shell, u.Last, u.First, u.Middle}
}

func userFull(u *db.User) []string {
	return []string{
		u.Login, i2s(u.UID), u.Shell, u.Last, u.First, u.Middle,
		i2s(u.Status), u.MITID, u.MITYear,
		i642s(u.Mod.Time), u.Mod.By, u.Mod.With,
	}
}

// matchUsers collects users whose login matches the (possibly
// wildcarded) pattern, via the login indexes — a hash probe for exact
// patterns, an ordered-index range scan for wildcards.
func matchUsers(d *db.DB, pattern string) []*db.User {
	return d.UsersMatchingLogin(pattern)
}

// oneUser resolves an argument that "must match exactly one user".
func oneUser(d *db.DB, login string) (*db.User, error) {
	us := matchUsers(d, login)
	switch len(us) {
	case 0:
		return nil, mrerr.MrUser
	case 1:
		return us[0], nil
	default:
		return nil, mrerr.MrNotUnique
	}
}

// emitUsersSelfRestricted implements the shared rule of the get_user_by_*
// family: callers not on the query ACL may only retrieve themselves.
func emitUsersSelfRestricted(cx *Context, queryName string, users []*db.User, emit EmitFunc) error {
	if len(users) == 0 {
		return mrerr.MrNoMatch
	}
	if !cx.onACL(queryName) {
		for _, u := range users {
			if u.UsersID != cx.UserID || cx.UserID == 0 {
				return mrerr.MrPerm
			}
		}
	}
	var tuples [][]string
	for _, u := range users {
		tuples = append(tuples, userFull(u))
	}
	return emitSorted(tuples, emit)
}

// userACEUses returns descriptions of every object whose ACE is this
// user; non-empty means the user may not be deleted.
func userACEUses(d *db.DB, usersID int) [][]string {
	return aceUses(d, db.ACEUser, usersID)
}

// aceUses finds references to an ACE across all object types, as
// get_ace_use does non-recursively.
func aceUses(d *db.DB, aceType string, aceID int) [][]string {
	var out [][]string
	d.EachList(func(l *db.List) bool {
		if l.ACLType == aceType && l.ACLID == aceID {
			out = append(out, []string{"LIST", l.Name})
		}
		return true
	})
	d.EachServer(func(s *db.Server) bool {
		if s.ACLType == aceType && s.ACLID == aceID {
			out = append(out, []string{"SERVICE", s.Name})
		}
		return true
	})
	d.EachFilesys(func(f *db.Filesys) bool {
		if (aceType == db.ACEUser && f.Owner == aceID) ||
			(aceType == db.ACEList && f.Owners == aceID) {
			out = append(out, []string{"FILESYS", f.Label})
		}
		return true
	})
	d.EachCapACL(func(c *db.CapACL) bool {
		if aceType == db.ACEList && c.ListID == aceID {
			out = append(out, []string{"QUERY", c.Capability})
		}
		return true
	})
	d.EachHostAccess(func(h *db.HostAccess) bool {
		if h.ACLType == aceType && h.ACLID == aceID {
			if m, ok := d.MachineByID(h.MachID); ok {
				out = append(out, []string{"HOSTACCESS", m.Name})
			}
		}
		return true
	})
	d.EachZephyr(func(z *db.ZephyrClass) bool {
		hit := (z.XmtType == aceType && z.XmtID == aceID) ||
			(z.SubType == aceType && z.SubID == aceID) ||
			(z.IwsType == aceType && z.IwsID == aceID) ||
			(z.IuiType == aceType && z.IuiID == aceID)
		if hit {
			out = append(out, []string{"ZEPHYR", z.Class})
		}
		return true
	})
	return out
}

// poboxString renders the "box" return field for a user.
func poboxString(d *db.DB, u *db.User) string {
	switch u.PoType {
	case db.PoboxPOP:
		if m, ok := d.MachineByID(u.PopID); ok {
			return m.Name
		}
		return "???"
	case db.PoboxSMTP:
		if s, ok := d.StringByID(u.BoxID); ok {
			return s.String
		}
		return "???"
	default:
		return db.PoboxNone
	}
}

// selfOrACL builds an access policy granting the query ACL or the target
// user named by argument argIdx.
func selfOrACL(queryName string, argIdx int) AccessFunc {
	return func(cx *Context, args []string) error {
		if cx.onACL(queryName) {
			return nil
		}
		if cx.Principal != "" && argIdx < len(args) && args[argIdx] == cx.Principal {
			return nil
		}
		return mrerr.MrPerm
	}
}

func init() {
	register(&Query{
		Name: "get_all_logins", Short: "galo", Kind: Retrieve,
		Returns: []string{"login", "uid", "shell", "last", "first", "middle"},
		Access:  accessAnyone,
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			c := &countingEmit{emit: emit}
			cx.DB.EachUser(func(u *db.User) bool {
				return c.fn(userSummary(u)) == nil
			})
			return c.result()
		},
	})

	register(&Query{
		Name: "get_all_active_logins", Short: "gaal", Kind: Retrieve,
		Returns: []string{"login", "uid", "shell", "last", "first", "middle"},
		Access:  accessAnyone,
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			c := &countingEmit{emit: emit}
			cx.DB.EachUser(func(u *db.User) bool {
				if u.Status == 0 {
					return true
				}
				return c.fn(userSummary(u)) == nil
			})
			return c.result()
		},
	})

	register(&Query{
		Name: "get_user_by_login", Short: "gubl", Kind: Retrieve,
		Args:    []string{"login"},
		Returns: []string{"login", "uid", "shell", "last", "first", "middle", "state", "mitid", "class", "modtime", "modby", "modwith"},
		Access:  accessAnyone,
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			return emitUsersSelfRestricted(cx, "get_user_by_login", matchUsers(cx.DB, args[0]), emit)
		},
	})

	register(&Query{
		Name: "get_user_by_uid", Short: "gubu", Kind: Retrieve,
		Args:    []string{"uid"},
		Returns: []string{"login", "uid", "shell", "last", "first", "middle", "state", "mitid", "class", "modtime", "modby", "modwith"},
		Access:  accessAnyone,
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			uid, err := parseInt(args[0])
			if err != nil {
				return err
			}
			return emitUsersSelfRestricted(cx, "get_user_by_uid", cx.DB.UsersByUID(uid), emit)
		},
	})

	register(&Query{
		Name: "get_user_by_name", Short: "gubn", Kind: Retrieve,
		Args:    []string{"first", "last"},
		Returns: []string{"login", "uid", "shell", "last", "first", "middle", "state", "mitid", "class", "modtime", "modby", "modwith"},
		Access:  accessAnyone,
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			var matches []*db.User
			cx.DB.EachUser(func(u *db.User) bool {
				if wildcard.Match(args[0], u.First) && wildcard.Match(args[1], u.Last) {
					matches = append(matches, u)
				}
				return true
			})
			return emitUsersSelfRestricted(cx, "get_user_by_name", matches, emit)
		},
	})

	register(&Query{
		Name: "get_user_by_class", Short: "gubc", Kind: Retrieve,
		Args:    []string{"class"},
		Returns: []string{"login", "uid", "shell", "last", "first", "middle", "state", "mitid", "class", "modtime", "modby", "modwith"},
		Access:  accessAnyone,
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			var matches []*db.User
			cx.DB.EachUser(func(u *db.User) bool {
				if wildcard.Match(args[0], u.MITYear) {
					matches = append(matches, u)
				}
				return true
			})
			return emitUsersSelfRestricted(cx, "get_user_by_class", matches, emit)
		},
	})

	register(&Query{
		Name: "get_user_by_mitid", Short: "gubm", Kind: Retrieve,
		Args:    []string{"mitid"},
		Returns: []string{"login", "uid", "shell", "last", "first", "middle", "state", "mitid", "class", "modtime", "modby", "modwith"},
		Access:  accessAnyone,
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			var matches []*db.User
			cx.DB.EachUser(func(u *db.User) bool {
				if wildcard.Match(args[0], u.MITID) {
					matches = append(matches, u)
				}
				return true
			})
			return emitUsersSelfRestricted(cx, "get_user_by_mitid", matches, emit)
		},
	})

	register(&Query{
		Name: "add_user", Short: "ausr", Kind: Append,
		Args: []string{"login", "uid", "shell", "last", "first", "middle", "state", "mitid", "class"},
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			d := cx.DB
			login, uidArg := args[0], args[1]
			state, err := parseInt(args[6])
			if err != nil {
				return err
			}
			class := args[8]
			if !d.IsValidType("class", class) {
				return mrerr.MrBadClass
			}
			uid := 0
			if uidArg == UniqueUID {
				if uid, err = d.AllocID("uid"); err != nil {
					return err
				}
			} else if uid, err = parseInt(uidArg); err != nil {
				return err
			}
			if login == UniqueLogin {
				login = "#" + i2s(uid)
			} else if err := checkNameChars(login); err != nil {
				return err
			}
			if _, dup := d.UserByLogin(login); dup {
				return mrerr.MrNotUnique
			}
			id, err := d.AllocID("users_id")
			if err != nil {
				return err
			}
			mod := cx.modInfo()
			u := &db.User{
				UsersID: id, Login: login, UID: uid, Shell: args[2],
				Last: args[3], First: args[4], Middle: args[5],
				Status: state, MITID: args[7], MITYear: class,
				Mod: mod,
				// The finger record is initialized with just the full name.
				Fullname: args[4] + " " + args[3], FMod: mod,
				PoType: db.PoboxNone, PMod: mod,
			}
			return d.InsertUser(u)
		},
	})

	register(&Query{
		Name: "register_user", Short: "rusr", Kind: Update,
		Args:    []string{"uid", "login", "fstype"},
		Handler: registerUserHandler,
	})

	register(&Query{
		Name: "update_user", Short: "uusr", Kind: Update,
		Args: []string{"login", "newlogin", "uid", "shell", "last", "first", "middle", "state", "mitid", "class"},
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			d := cx.DB
			u, err := oneUser(d, args[0])
			if err != nil {
				if err == mrerr.MrNoMatch || err == mrerr.MrUser {
					return mrerr.MrUser
				}
				return err
			}
			newlogin := args[1]
			if newlogin != u.Login {
				if err := checkNameChars(newlogin); err != nil {
					return err
				}
				if _, dup := d.UserByLogin(newlogin); dup {
					return mrerr.MrNotUnique
				}
			}
			uid, err := parseInt(args[2])
			if err != nil {
				return err
			}
			state, err := parseInt(args[7])
			if err != nil {
				return err
			}
			if !d.IsValidType("class", args[9]) {
				return mrerr.MrBadClass
			}
			if newlogin != u.Login {
				d.RenameUser(u, newlogin)
			}
			d.SetUserUID(u, uid)
			u.Shell = args[3]
			u.Last, u.First, u.Middle = args[4], args[5], args[6]
			u.Status = state
			u.MITID = args[8]
			u.MITYear = args[9]
			u.Mod = cx.modInfo()
			d.NoteUpdate(db.TUsers)
			return nil
		},
	})

	register(&Query{
		Name: "update_user_shell", Short: "uush", Kind: Update,
		Args:   []string{"login", "shell"},
		Access: selfOrACL("update_user_shell", 0),
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			u, err := oneUser(cx.DB, args[0])
			if err != nil {
				return mrerr.MrUser
			}
			u.Shell = args[1]
			u.Mod = cx.modInfo()
			cx.DB.NoteUpdate(db.TUsers)
			return nil
		},
	})

	register(&Query{
		Name: "update_user_status", Short: "uust", Kind: Update,
		Args: []string{"login", "status"},
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			u, err := oneUser(cx.DB, args[0])
			if err != nil {
				return mrerr.MrUser
			}
			status, err := parseInt(args[1])
			if err != nil {
				return err
			}
			u.Status = status
			u.Mod = cx.modInfo()
			cx.DB.NoteUpdate(db.TUsers)
			return nil
		},
	})

	register(&Query{
		Name: "delete_user", Short: "dusr", Kind: Delete,
		Args: []string{"login"},
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			u, err := oneUser(cx.DB, args[0])
			if err != nil {
				return mrerr.MrUser
			}
			return deleteUser(cx, u, true)
		},
	})

	register(&Query{
		Name: "delete_user_by_uid", Short: "dubu", Kind: Delete,
		Args: []string{"uid"},
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			uid, err := parseInt(args[0])
			if err != nil {
				return err
			}
			us := cx.DB.UsersByUID(uid)
			if len(us) == 0 {
				return mrerr.MrUser
			}
			if len(us) > 1 {
				return mrerr.MrNotUnique
			}
			return deleteUser(cx, us[0], false)
		},
	})

	register(&Query{
		Name: "get_finger_by_login", Short: "gfbl", Kind: Retrieve,
		Args: []string{"login"},
		Returns: []string{"login", "fullname", "nickname", "home_addr", "home_phone",
			"office_addr", "office_phone", "department", "affiliation",
			"modtime", "modby", "modwith"},
		Access: accessAnyone,
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			u, err := oneUser(cx.DB, args[0])
			if err != nil {
				return mrerr.MrUser
			}
			return emit([]string{
				u.Login, u.Fullname, u.Nickname, u.HomeAddr, u.HomePhone,
				u.OfficeAddr, u.OfficePhone, u.MITDept, u.MITAffil,
				i642s(u.FMod.Time), u.FMod.By, u.FMod.With,
			})
		},
	})

	register(&Query{
		Name: "update_finger_by_login", Short: "ufbl", Kind: Update,
		Args: []string{"login", "fullname", "nickname", "home_addr", "home_phone",
			"office_addr", "office_phone", "department", "affiliation"},
		Access: selfOrACL("update_finger_by_login", 0),
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			u, err := oneUser(cx.DB, args[0])
			if err != nil {
				return mrerr.MrUser
			}
			u.Fullname, u.Nickname = args[1], args[2]
			u.HomeAddr, u.HomePhone = args[3], args[4]
			u.OfficeAddr, u.OfficePhone = args[5], args[6]
			u.MITDept, u.MITAffil = args[7], args[8]
			u.FMod = cx.modInfo()
			cx.DB.NoteUpdate(db.TUsers)
			return nil
		},
	})

	register(&Query{
		Name: "get_pobox", Short: "gpob", Kind: Retrieve,
		Args:    []string{"login"},
		Returns: []string{"login", "type", "box", "modtime", "modby", "modwith"},
		Access:  selfOrACL("get_pobox", 0),
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			u, err := oneUser(cx.DB, args[0])
			if err != nil {
				return mrerr.MrUser
			}
			return emit([]string{u.Login, u.PoType, poboxString(cx.DB, u),
				i642s(u.PMod.Time), u.PMod.By, u.PMod.With})
		},
	})

	register(&Query{
		Name: "get_all_poboxes", Short: "gapo", Kind: Retrieve,
		Returns: []string{"login", "type", "box"},
		Access:  accessAnyone,
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			c := &countingEmit{emit: emit}
			cx.DB.EachUser(func(u *db.User) bool {
				return c.fn([]string{u.Login, u.PoType, poboxString(cx.DB, u)}) == nil
			})
			return c.result()
		},
	})

	register(&Query{
		Name: "get_poboxes_pop", Short: "gpop", Kind: Retrieve,
		Returns: []string{"login", "type", "machine"},
		Access:  accessAnyone,
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			c := &countingEmit{emit: emit}
			cx.DB.EachUser(func(u *db.User) bool {
				if u.PoType != db.PoboxPOP {
					return true
				}
				return c.fn([]string{u.Login, u.PoType, poboxString(cx.DB, u)}) == nil
			})
			return c.result()
		},
	})

	register(&Query{
		Name: "get_poboxes_smtp", Short: "gpos", Kind: Retrieve,
		Returns: []string{"login", "type", "box"},
		Access:  accessAnyone,
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			c := &countingEmit{emit: emit}
			cx.DB.EachUser(func(u *db.User) bool {
				if u.PoType != db.PoboxSMTP {
					return true
				}
				return c.fn([]string{u.Login, u.PoType, poboxString(cx.DB, u)}) == nil
			})
			return c.result()
		},
	})

	register(&Query{
		Name: "set_pobox", Short: "spob", Kind: Update,
		Args:   []string{"login", "type", "box"},
		Access: selfOrACL("set_pobox", 0),
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			d := cx.DB
			u, err := oneUser(d, args[0])
			if err != nil {
				return mrerr.MrUser
			}
			typ := args[1]
			if !d.IsValidType("pobox", typ) {
				return mrerr.MrType
			}
			switch typ {
			case db.PoboxPOP:
				m, ok := d.MachineByName(args[2])
				if !ok {
					return mrerr.MrMachine
				}
				u.PoType, u.PopID = db.PoboxPOP, m.MachID
			case db.PoboxSMTP:
				id, err := d.InternString(args[2])
				if err != nil {
					return err
				}
				u.PoType, u.BoxID = db.PoboxSMTP, id
			case db.PoboxNone:
				u.PoType = db.PoboxNone
			default:
				return mrerr.MrType
			}
			u.PMod = cx.modInfo()
			d.NoteUpdate(db.TUsers)
			return nil
		},
	})

	register(&Query{
		Name: "set_pobox_pop", Short: "spop", Kind: Update,
		Args:   []string{"login"},
		Access: selfOrACL("set_pobox_pop", 0),
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			u, err := oneUser(cx.DB, args[0])
			if err != nil {
				return mrerr.MrUser
			}
			if u.PoType == db.PoboxPOP {
				return nil
			}
			if u.PopID == 0 {
				return mrerr.MrMachine
			}
			if _, ok := cx.DB.MachineByID(u.PopID); !ok {
				return mrerr.MrMachine
			}
			u.PoType = db.PoboxPOP
			u.PMod = cx.modInfo()
			cx.DB.NoteUpdate(db.TUsers)
			return nil
		},
	})

	register(&Query{
		Name: "delete_pobox", Short: "dpob", Kind: Update,
		Args:   []string{"login"},
		Access: selfOrACL("delete_pobox", 0),
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			u, err := oneUser(cx.DB, args[0])
			if err != nil {
				return mrerr.MrUser
			}
			u.PoType = db.PoboxNone
			u.PMod = cx.modInfo()
			cx.DB.NoteUpdate(db.TUsers)
			return nil
		},
	})
}

// deleteUser implements delete_user / delete_user_by_uid. requireStatus0
// distinguishes the two (only delete_user documents the status check).
func deleteUser(cx *Context, u *db.User, requireStatus0 bool) error {
	d := cx.DB
	if requireStatus0 && u.Status != 0 {
		return mrerr.MrInUse
	}
	if len(d.ListsContaining(db.ACEUser, u.UsersID)) > 0 {
		return mrerr.MrInUse
	}
	if len(userACEUses(d, u.UsersID)) > 0 {
		return mrerr.MrInUse
	}
	if requireStatus0 && len(d.QuotasOfUser(u.UsersID)) > 0 {
		return mrerr.MrInUse
	}
	// delete_user_by_uid deletes associated quotas silently.
	for _, q := range d.QuotasOfUser(u.UsersID) {
		if p, ok := d.NFSPhysByID(q.PhysID); ok {
			p.Allocated -= q.Quota
			d.NoteUpdate(db.TNFSPhys)
		}
		if err := d.DeleteQuota(q.UsersID, q.FilsysID); err != nil {
			return mrerr.MrInternal
		}
	}
	d.DeleteUser(u)
	return nil
}

// registerUserHandler implements register_user (section 7.0.1): assign
// the login, create a pobox on the least loaded post office, a group
// list, a filesystem on the least loaded fileserver of the right type,
// and a default quota. The user ends up half-registered (status 2).
func registerUserHandler(cx *Context, args []string, emit EmitFunc) error {
	d := cx.DB
	uid, err := parseInt(args[0])
	if err != nil {
		return err
	}
	login := args[1]
	fstype, err := parseInt(args[2])
	if err != nil {
		return err
	}
	us := d.UsersByUID(uid)
	if len(us) == 0 {
		return mrerr.MrNoMatch
	}
	if len(us) > 1 {
		return mrerr.MrNotUnique
	}
	u := us[0]
	if u.Status != db.UserRegisterable {
		return mrerr.MrInUse
	}
	if err := checkNameChars(login); err != nil {
		return err
	}
	if _, taken := d.UserByLogin(login); taken && login != u.Login {
		return mrerr.MrInUse
	}
	if _, taken := d.ListByName(login); taken {
		return mrerr.MrInUse
	}

	// Least-loaded POP server: smallest value1 (box count) among POP
	// serverhosts with headroom (value2 is the maximum, 0 = unlimited).
	var po *db.ServerHost
	for _, sh := range d.ServerHostsOf("POP") {
		if !sh.Enable {
			continue
		}
		if sh.Value2 > 0 && sh.Value1 >= sh.Value2 {
			continue
		}
		if po == nil || sh.Value1 < po.Value1 {
			po = sh
		}
	}
	if po == nil {
		return mrerr.MrMachine
	}

	// Least-loaded fileserver partition supporting fstype: most free
	// quota units among partitions with the right status bit.
	defQuota, err := d.GetValue("def_quota")
	if err != nil {
		return mrerr.MrNoFilesys
	}
	var part *db.NFSPhys
	d.EachNFSPhys(func(p *db.NFSPhys) bool {
		if p.Status&fstype == 0 {
			return true
		}
		if p.Allocated+defQuota > p.Size {
			return true
		}
		if part == nil || p.Size-p.Allocated > part.Size-part.Allocated {
			part = p
		}
		return true
	})
	if part == nil {
		return mrerr.MrNoFilesys
	}

	mod := cx.modInfo()

	// Group list named after the user, with a fresh GID; the user is both
	// the ACE and the first member.
	gid, err := d.AllocID("gid")
	if err != nil {
		return err
	}
	lid, err := d.AllocID("list_id")
	if err != nil {
		return err
	}
	group := &db.List{
		ListID: lid, Name: login, Active: true, Group: true, GID: gid,
		Desc: "group of user " + login, ACLType: db.ACEUser, ACLID: u.UsersID,
		Mod: mod,
	}
	if err := d.InsertList(group); err != nil {
		return err
	}
	if err := d.AddMember(lid, db.ACEUser, u.UsersID); err != nil {
		return err
	}

	// Home filesystem on the chosen partition.
	fid, err := d.AllocID("filsys_id")
	if err != nil {
		return err
	}
	fs := &db.Filesys{
		FilsysID: fid, Label: login, PhysID: part.NFSPhysID, Type: db.FSTypeNFS,
		MachID: part.MachID, Name: part.Dir + "/" + login, Mount: "/mit/" + login,
		Access: "w", Owner: u.UsersID, Owners: lid, CreateFlg: true,
		LockerType: db.LockerHomedir, Mod: mod,
	}
	if err := d.InsertFilesys(fs); err != nil {
		return err
	}
	if err := d.InsertQuota(&db.NFSQuota{
		UsersID: u.UsersID, FilsysID: fid, PhysID: part.NFSPhysID,
		Quota: defQuota, Mod: mod,
	}); err != nil {
		return err
	}
	part.Allocated += defQuota
	d.NoteUpdate(db.TNFSPhys)

	// Pobox and account state.
	if login != u.Login {
		d.RenameUser(u, login)
	}
	u.PoType = db.PoboxPOP
	u.PopID = po.MachID
	u.PMod = mod
	u.Status = db.UserHalfRegistered
	u.Mod = mod
	po.Value1++
	d.NoteUpdate(db.TServerHosts)
	d.NoteUpdate(db.TUsers)
	return nil
}
