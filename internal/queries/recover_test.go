package queries

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"moira/internal/clock"
	"moira/internal/db"
	"moira/internal/mrerr"
)

// durable is a test fixture for the crash-safe pipeline: a bootstrapped
// database writing CRC'd journal segments into a data directory, with a
// checkpoint store over the same layout. The clock is static so that a
// recovered database is byte-identical to the original (replay stamps
// mod-times at replay-time Now()).
type durable struct {
	root  string
	clk   *clock.Fake
	d     *db.DB
	jw    *db.JournalWriter
	store *db.CheckpointStore
	cx    *Context
}

func newDurable(t *testing.T) *durable {
	t.Helper()
	root := t.TempDir()
	clk := clock.NewFake(time.Unix(600000000, 0))
	dd, err := db.OpenDataDir(root)
	if err != nil {
		t.Fatal(err)
	}
	jw, err := db.OpenJournalWriter(dd.JournalDir(), db.JournalOptions{Policy: db.SyncEveryCommit})
	if err != nil {
		t.Fatal(err)
	}
	d := NewBootstrappedDB(clk)
	d.SetJournal(jw)
	store, err := db.NewCheckpointStore(dd.SnapshotsDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	return &durable{
		root: root, clk: clk, d: d, jw: jw, store: store,
		cx: &Context{DB: d, Principal: "ops", App: "test", Privileged: true},
	}
}

func (f *durable) run(t *testing.T, name string, args ...string) {
	t.Helper()
	if err := Execute(f.cx, name, args, func([]string) error { return nil }); err != nil {
		t.Fatalf("%s %v: %v", name, args, err)
	}
}

func (f *durable) checkpoint(t *testing.T) int64 {
	t.Helper()
	gen, err := f.store.Take(f.d, f.jw.Rotate)
	if err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	return gen
}

// recover recovers the fixture's data directory as a crashed process
// would find it, using a fresh clock at the same static instant.
func (f *durable) recover(t *testing.T) (*db.DB, *RecoverInfo) {
	t.Helper()
	d, info, err := Recover(f.root, clock.NewFake(f.clk.Now()), t.Logf)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	return d, info
}

// assertSameTables compares every relation of the two databases
// byte-for-byte through the dump format.
func assertSameTables(t *testing.T, want, got *db.DB) {
	t.Helper()
	want.LockShared()
	got.LockShared()
	defer want.UnlockShared()
	defer got.UnlockShared()
	for _, tbl := range db.AllTables {
		var a, b bytes.Buffer
		if err := want.DumpTable(tbl, &a); err != nil {
			t.Fatal(err)
		}
		if err := got.DumpTable(tbl, &b); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Errorf("table %s differs after recovery:\nwant:\n%s\ngot:\n%s", tbl, a.String(), b.String())
		}
	}
}

func TestRecoverFirstBoot(t *testing.T) {
	root := t.TempDir()
	d, info, err := Recover(root, clock.NewFake(time.Unix(600000000, 0)), t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if info.Generation != 0 || info.SegmentsReplayed != 0 {
		t.Errorf("first boot info = %+v, want fresh bootstrap", info)
	}
	if len(info.Fsck) != 0 {
		t.Errorf("bootstrapped database fails fsck: %v", info.Fsck)
	}
	d.LockShared()
	defer d.UnlockShared()
	var buf bytes.Buffer
	if err := d.DumpTable(db.TUsers, &buf); err != nil {
		t.Fatal(err)
	}
}

func TestRecoverSnapshotPlusSegments(t *testing.T) {
	f := newDurable(t)
	f.run(t, "add_machine", "alpha.mit.edu", "VAX")
	f.checkpoint(t)
	f.run(t, "add_machine", "bravo.mit.edu", "VAX")
	f.run(t, "add_user", "daytime", "-1", "/bin/csh", "Day", "Time", "", "1", "", "STAFF")
	// The process "crashes" here: nothing is closed or flushed further.

	rec, info := f.recover(t)
	if info.Generation != 1 {
		t.Errorf("recovered from generation %d, want 1", info.Generation)
	}
	if info.Replay.Applied != 2 || info.Replay.Failed != 0 || info.Replay.Torn != 0 {
		t.Errorf("replay stats = %+v, want 2 applied", info.Replay)
	}
	if len(info.Fsck) != 0 {
		t.Errorf("recovered database fails fsck: %v", info.Fsck)
	}
	assertSameTables(t, f.d, rec)
}

func TestRecoverToleratesTornFinalLine(t *testing.T) {
	f := newDurable(t)
	f.run(t, "add_machine", "alpha.mit.edu", "VAX")
	f.checkpoint(t)
	f.run(t, "add_machine", "bravo.mit.edu", "VAX")
	f.run(t, "add_machine", "charlie.mit.edu", "VAX")
	f.jw.Close()

	// Tear the tail: the crash cut the last append short.
	segs, err := db.ListSegments(f.jw.Dir())
	if err != nil || len(segs) == 0 {
		t.Fatalf("segments: %v %v", segs, err)
	}
	last := segs[len(segs)-1]
	fi, err := os.Stat(last.Path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(last.Path, fi.Size()-4); err != nil {
		t.Fatal(err)
	}

	rec, info := f.recover(t)
	if info.Replay.Torn != 1 || info.Replay.Failed != 0 {
		t.Fatalf("replay stats = %+v, want exactly 1 torn and 0 failed", info.Replay)
	}
	if info.Replay.Applied != 1 {
		t.Errorf("applied = %d, want 1 (bravo)", info.Replay.Applied)
	}
	rec.LockShared()
	if _, ok := rec.MachineByName("BRAVO.MIT.EDU"); !ok {
		t.Error("intact record lost")
	}
	if _, ok := rec.MachineByName("CHARLIE.MIT.EDU"); ok {
		t.Error("torn record was executed")
	}
	rec.UnlockShared()
	if len(info.Fsck) != 0 {
		t.Errorf("recovered database fails fsck: %v", info.Fsck)
	}
}

// TestRecoverIdempotentAcrossBoots is the torn-tail persistence case:
// a crash tears the active segment, boot 1 recovers and opens a fresh
// segment, and the torn line is still on disk at boot 2 — in what is
// now a non-final segment. Recovery must tolerate it there too, not
// mistake it for mid-journal corruption and refuse a healthy store.
func TestRecoverIdempotentAcrossBoots(t *testing.T) {
	f := newDurable(t)
	f.run(t, "add_machine", "alpha.mit.edu", "VAX")
	f.checkpoint(t)
	f.run(t, "add_machine", "bravo.mit.edu", "VAX")
	f.jw.Close()

	// The crash cut the last append short.
	segs, err := db.ListSegments(f.jw.Dir())
	if err != nil || len(segs) == 0 {
		t.Fatalf("segments: %v %v", segs, err)
	}
	last := segs[len(segs)-1]
	fi, err := os.Stat(last.Path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(last.Path, fi.Size()-4); err != nil {
		t.Fatal(err)
	}

	// Boot 1: recover, open a fresh segment as moirad does, serve a
	// mutation, and "crash" again (nothing flushed further).
	d1, info1, err := Recover(f.root, clock.NewFake(f.clk.Now()), t.Logf)
	if err != nil {
		t.Fatalf("first boot: %v", err)
	}
	if info1.Replay.Torn != 1 {
		t.Fatalf("first boot replay stats = %+v, want 1 torn", info1.Replay)
	}
	dd, err := db.OpenDataDir(f.root)
	if err != nil {
		t.Fatal(err)
	}
	jw2, err := db.OpenJournalWriter(dd.JournalDir(), db.JournalOptions{Policy: db.SyncEveryCommit})
	if err != nil {
		t.Fatal(err)
	}
	d1.SetJournal(jw2)
	cx := &Context{DB: d1, Principal: "ops", App: "test", Privileged: true}
	if err := Execute(cx, "add_machine", []string{"charlie.mit.edu", "VAX"},
		func([]string) error { return nil }); err != nil {
		t.Fatal(err)
	}
	jw2.Close()

	// Boot 2: the tear now sits at the tail of an older segment.
	d2, info2, err := Recover(f.root, clock.NewFake(f.clk.Now()), t.Logf)
	if err != nil {
		t.Fatalf("second boot refused a healthy store: %v", err)
	}
	if info2.Replay.Torn != 1 || info2.Replay.Failed != 0 {
		t.Errorf("second boot replay stats = %+v, want 1 torn and 0 failed", info2.Replay)
	}
	d2.LockShared()
	for _, m := range []string{"ALPHA.MIT.EDU", "CHARLIE.MIT.EDU"} {
		if _, ok := d2.MachineByName(m); !ok {
			t.Errorf("second boot lost %s", m)
		}
	}
	d2.UnlockShared()
	assertSameTables(t, d1, d2)
}

func TestRecoverRefusesWhenAllSnapshotsDamaged(t *testing.T) {
	f := newDurable(t)
	f.run(t, "add_machine", "alpha.mit.edu", "VAX")
	f.checkpoint(t)

	// The only generation rots on disk. Bootstrapping fresh here would
	// replay just the retained segments and silently shed the history
	// the snapshot held; recovery must stop for an operator instead.
	path := filepath.Join(f.store.Path(1), db.TMachine)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[0] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, _, err = Recover(f.root, clock.NewFake(f.clk.Now()), t.Logf)
	if !errors.Is(err, ErrNoUsableSnapshot) {
		t.Fatalf("recovery with all snapshots damaged returned %v, want ErrNoUsableSnapshot", err)
	}
}

func TestRecoverRefusesMidFileCorruption(t *testing.T) {
	f := newDurable(t)
	f.checkpoint(t)
	f.run(t, "add_machine", "alpha.mit.edu", "VAX")
	f.run(t, "add_machine", "bravo.mit.edu", "VAX")
	f.jw.Close()

	// Flip a byte in the first line of the active segment: this is not
	// a torn tail, it is damage, and automatic recovery must refuse it.
	segs, err := db.ListSegments(f.jw.Dir())
	if err != nil {
		t.Fatal(err)
	}
	last := segs[len(segs)-1]
	data, err := os.ReadFile(last.Path)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Count(data, []byte{'\n'}) < 2 {
		t.Fatalf("segment %s has too few lines for a mid-file flip", last.Path)
	}
	data[5] ^= 0x01
	if err := os.WriteFile(last.Path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, _, err = Recover(f.root, clock.NewFake(f.clk.Now()), t.Logf)
	if !errors.Is(err, ErrJournalCorrupt) {
		t.Fatalf("recovery of a mid-corrupt journal returned %v, want ErrJournalCorrupt", err)
	}
}

func TestRecoverFallsBackPastDamagedSnapshot(t *testing.T) {
	f := newDurable(t)
	f.run(t, "add_machine", "alpha.mit.edu", "VAX")
	f.checkpoint(t)
	f.run(t, "add_machine", "bravo.mit.edu", "VAX")
	f.checkpoint(t)

	// Generation 2 rots on disk; recovery must fall back to generation 1
	// and reach the same state through the retained segments.
	path := filepath.Join(f.store.Path(2), db.TMachine)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[0] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	rec, info := f.recover(t)
	if info.Generation != 1 {
		t.Fatalf("recovered from generation %d, want fallback to 1", info.Generation)
	}
	if len(info.SkippedSnapshots) != 1 {
		t.Errorf("skipped snapshots = %v, want the damaged generation 2", info.SkippedSnapshots)
	}
	rec.LockShared()
	_, ok := rec.MachineByName("BRAVO.MIT.EDU")
	rec.UnlockShared()
	if !ok {
		t.Error("fallback recovery lost the post-gen-1 record")
	}
	assertSameTables(t, f.d, rec)
}

// failJournal fails every append, like a full disk.
type failJournal struct{}

func (failJournal) Write([]byte) (int, error) { return 0, errors.New("disk full") }

// TestJournalFailureFailStopsMutations: the first journal write error
// wedges the store — the failed query's in-memory effect is the only
// divergence that ever exists, because every later mutation is refused
// with MR_DOWN while reads keep serving. Repointing the journal clears
// the latch.
func TestJournalFailureFailStopsMutations(t *testing.T) {
	d := NewBootstrappedDB(clock.NewFake(time.Unix(600000000, 0)))
	d.SetJournal(failJournal{})
	cx := &Context{DB: d, Principal: "ops", App: "test", Privileged: true}
	discard := func([]string) error { return nil }

	if err := Execute(cx, "add_machine", []string{"alpha.mit.edu", "VAX"}, discard); err == nil {
		t.Fatal("journal write failure did not fail the transaction")
	}
	if !d.JournalWedged() {
		t.Fatal("journal failure did not wedge the database")
	}
	if err := Execute(cx, "add_machine", []string{"bravo.mit.edu", "VAX"}, discard); !errors.Is(err, mrerr.MrDown) {
		t.Fatalf("mutation on wedged store = %v, want MR_DOWN", err)
	}
	if err := Execute(cx, "get_machine", []string{"*"}, discard); err != nil {
		t.Errorf("retrieve on wedged store = %v, want reads to keep serving", err)
	}

	// Operator repoints the journal: the store is durable again.
	var buf bytes.Buffer
	d.SetJournal(&buf)
	if err := Execute(cx, "add_machine", []string{"bravo.mit.edu", "VAX"}, discard); err != nil {
		t.Fatalf("mutation after journal repoint = %v", err)
	}
	if buf.Len() == 0 {
		t.Error("repointed journal received no record")
	}
}

// TestRecoverRoundTripUnderConcurrentMutation is the satellite round-trip
// check: checkpoints race live mutations, then recovery must reproduce
// the final state byte-for-byte — part from the snapshot, part replayed.
func TestRecoverRoundTripUnderConcurrentMutation(t *testing.T) {
	f := newDurable(t)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cx := &Context{DB: f.d, Principal: "ops", App: "test", Privileged: true}
			for i := 0; i < 25; i++ {
				name := fmt.Sprintf("host-%d-%d.mit.edu", g, i)
				if err := Execute(cx, "add_machine", []string{name, "VAX"},
					func([]string) error { return nil }); err != nil {
					t.Errorf("add_machine %s: %v", name, err)
				}
			}
		}(g)
	}
	for i := 0; i < 3; i++ {
		f.checkpoint(t)
		time.Sleep(time.Millisecond)
	}
	wg.Wait()

	rec, info := f.recover(t)
	if info.Replay.Failed != 0 || info.Replay.Torn != 0 {
		t.Errorf("replay stats = %+v", info.Replay)
	}
	if len(info.Fsck) != 0 {
		t.Errorf("recovered database fails fsck: %v", info.Fsck)
	}
	rec.LockShared()
	n := 0
	for g := 0; g < 4; g++ {
		for i := 0; i < 25; i++ {
			if _, ok := rec.MachineByName(fmt.Sprintf("HOST-%d-%d.MIT.EDU", g, i)); ok {
				n++
			}
		}
	}
	rec.UnlockShared()
	if n != 100 {
		t.Errorf("recovered %d of 100 concurrently added machines", n)
	}
	assertSameTables(t, f.d, rec)
}
