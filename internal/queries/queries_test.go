package queries

import (
	"testing"
	"time"

	"moira/internal/clock"
	"moira/internal/db"
	"moira/internal/mrerr"
)

// fixture builds a bootstrapped database with a small Athena-like world:
// machines (a POP server, an NFS server, a hesiod server), an NFS
// partition, and the POP serverhost row register_user needs.
type fixture struct {
	d    *db.DB
	clk  *clock.Fake
	priv *Context
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	clk := clock.NewFake(time.Unix(600000000, 0))
	d := NewBootstrappedDB(clk)
	priv := &Context{DB: d, Privileged: true, App: "test"}
	f := &fixture{d: d, clk: clk, priv: priv}

	f.mustRun(t, priv, "add_machine", "e40-po.mit.edu", "VAX")
	f.mustRun(t, priv, "add_machine", "charon.mit.edu", "VAX")
	f.mustRun(t, priv, "add_machine", "suomi.mit.edu", "RT")
	f.mustRun(t, priv, "add_server_info", "POP", "720", "/tmp/po", "po.sh", "UNIQUE", "1", "NONE", "NONE")
	f.mustRun(t, priv, "add_server_host_info", "POP", "E40-PO.MIT.EDU", "1", "0", "1000", "")
	f.mustRun(t, priv, "add_nfsphys", "CHARON.MIT.EDU", "/u1", "ra0c", "1", "0", "100000")
	return f
}

func (f *fixture) run(cx *Context, name string, args ...string) ([][]string, error) {
	var out [][]string
	err := Execute(cx, name, args, func(t []string) error {
		cp := make([]string, len(t))
		copy(cp, t)
		out = append(out, cp)
		return nil
	})
	return out, err
}

func (f *fixture) mustRun(t *testing.T, cx *Context, name string, args ...string) [][]string {
	t.Helper()
	out, err := f.run(cx, name, args...)
	if err != nil {
		t.Fatalf("%s(%v): %v", name, args, err)
	}
	return out
}

func (f *fixture) userCtx(login string) *Context {
	cx := &Context{DB: f.d, Principal: login, App: "test"}
	cx.ResolveUser()
	return cx
}

func (f *fixture) addUser(t *testing.T, login string) {
	t.Helper()
	f.mustRun(t, f.priv, "add_user", login, UniqueUID, "/bin/csh", "Last"+login, "First", "M", "1", "xx", "STAFF")
}

func TestRegistryIsLarge(t *testing.T) {
	if Count() < 100 {
		t.Errorf("paper promises over 100 query handles; registry has %d", Count())
	}
}

func TestLookupByShortAndLongName(t *testing.T) {
	long, ok := Lookup("get_user_by_login")
	if !ok {
		t.Fatal("long name lookup failed")
	}
	short, ok := Lookup("gubl")
	if !ok || short != long {
		t.Fatal("short name lookup failed")
	}
}

func TestUnknownQuery(t *testing.T) {
	f := newFixture(t)
	if _, err := f.run(f.priv, "no_such_query"); err != mrerr.MrNoHandle {
		t.Errorf("err = %v", err)
	}
}

func TestArgCountAndLength(t *testing.T) {
	f := newFixture(t)
	if _, err := f.run(f.priv, "get_user_by_login"); err != mrerr.MrArgs {
		t.Errorf("missing args err = %v", err)
	}
	if _, err := f.run(f.priv, "get_user_by_login", "a", "b"); err != mrerr.MrArgs {
		t.Errorf("extra args err = %v", err)
	}
	long := make([]byte, MaxArgLen+1)
	for i := range long {
		long[i] = 'a'
	}
	if _, err := f.run(f.priv, "get_user_by_login", string(long)); err != mrerr.MrArgTooLong {
		t.Errorf("long arg err = %v", err)
	}
}

func TestAddAndGetUser(t *testing.T) {
	f := newFixture(t)
	f.addUser(t, "babette")
	out := f.mustRun(t, f.priv, "get_user_by_login", "babette")
	if len(out) != 1 {
		t.Fatalf("got %d tuples", len(out))
	}
	row := out[0]
	if row[0] != "babette" || row[2] != "/bin/csh" || row[6] != "1" || row[8] != "STAFF" {
		t.Errorf("tuple = %v", row)
	}
	// Wildcard retrieval by privileged caller.
	out = f.mustRun(t, f.priv, "get_user_by_login", "bab*")
	if len(out) != 1 {
		t.Errorf("wildcard got %d tuples", len(out))
	}
	// Duplicate login.
	if _, err := f.run(f.priv, "add_user", "babette", UniqueUID, "/bin/sh", "x", "y", "", "0", "", "STAFF"); err != mrerr.MrNotUnique {
		t.Errorf("dup login err = %v", err)
	}
	// Bad class.
	if _, err := f.run(f.priv, "add_user", "other", UniqueUID, "/bin/sh", "x", "y", "", "0", "", "NOCLASS"); err != mrerr.MrBadClass {
		t.Errorf("bad class err = %v", err)
	}
}

func TestUniqueLoginSentinel(t *testing.T) {
	f := newFixture(t)
	f.mustRun(t, f.priv, "add_user", UniqueLogin, UniqueUID, "/bin/csh", "Doe", "Jane", "", "0", "crypt", "1990")
	out := f.mustRun(t, f.priv, "get_user_by_name", "Jane", "Doe")
	if len(out) != 1 {
		t.Fatalf("got %d tuples", len(out))
	}
	login, uid := out[0][0], out[0][1]
	if login != "#"+uid {
		t.Errorf("UNIQUE_LOGIN login = %q, uid = %q", login, uid)
	}
}

func TestSelfRestrictedReads(t *testing.T) {
	f := newFixture(t)
	f.addUser(t, "alice")
	f.addUser(t, "bob")
	alice := f.userCtx("alice")
	// Alice can read herself.
	if _, err := f.run(alice, "get_user_by_login", "alice"); err != nil {
		t.Errorf("self read: %v", err)
	}
	// But not bob, and not wildcards covering others.
	if _, err := f.run(alice, "get_user_by_login", "bob"); err != mrerr.MrPerm {
		t.Errorf("other read err = %v", err)
	}
	if _, err := f.run(alice, "get_user_by_login", "*"); err != mrerr.MrPerm {
		t.Errorf("wildcard read err = %v", err)
	}
	// Unknown login is NO_MATCH before permission.
	if _, err := f.run(alice, "get_user_by_login", "zzz"); err != mrerr.MrNoMatch {
		t.Errorf("missing read err = %v", err)
	}
}

func TestUpdateUserShellAccess(t *testing.T) {
	f := newFixture(t)
	f.addUser(t, "alice")
	f.addUser(t, "bob")
	alice := f.userCtx("alice")
	if _, err := f.run(alice, "update_user_shell", "alice", "/bin/sh"); err != nil {
		t.Errorf("self shell update: %v", err)
	}
	if _, err := f.run(alice, "update_user_shell", "bob", "/bin/sh"); err != mrerr.MrPerm {
		t.Errorf("other shell update err = %v", err)
	}
	out := f.mustRun(t, f.priv, "get_user_by_login", "alice")
	if out[0][2] != "/bin/sh" {
		t.Errorf("shell = %q", out[0][2])
	}
	// modby records alice.
	if out[0][10] != "alice" {
		t.Errorf("modby = %q", out[0][10])
	}
}

func TestAccessRequest(t *testing.T) {
	f := newFixture(t)
	f.addUser(t, "alice")
	alice := f.userCtx("alice")
	if err := CheckAccess(alice, "add_user", []string{"x", "1", "s", "l", "f", "m", "0", "id", "STAFF"}); err != mrerr.MrPerm {
		t.Errorf("unprivileged add_user access = %v", err)
	}
	if err := CheckAccess(f.priv, "add_user", []string{"x", "1", "s", "l", "f", "m", "0", "id", "STAFF"}); err != nil {
		t.Errorf("privileged add_user access = %v", err)
	}
	if err := CheckAccess(alice, "update_user_shell", []string{"alice", "/bin/sh"}); err != nil {
		t.Errorf("self shell access = %v", err)
	}
	// Access does not execute: shell unchanged.
	out := f.mustRun(t, f.priv, "get_user_by_login", "alice")
	if out[0][2] != "/bin/csh" {
		t.Errorf("Access executed the query; shell = %q", out[0][2])
	}
}

func TestCapabilityGrantViaDBAdminList(t *testing.T) {
	f := newFixture(t)
	f.addUser(t, "operator")
	op := f.userCtx("operator")
	if _, err := f.run(op, "add_machine", "new.mit.edu", "VAX"); err != mrerr.MrPerm {
		t.Fatalf("pre-grant err = %v", err)
	}
	// Put operator on dbadmin; the capability flows through CAPACLS.
	f.mustRun(t, f.priv, "add_member_to_list", AdminList, "USER", "operator")
	if _, err := f.run(op, "add_machine", "new.mit.edu", "VAX"); err != nil {
		t.Fatalf("post-grant err = %v", err)
	}
}

func TestRegisterUserFlow(t *testing.T) {
	f := newFixture(t)
	f.mustRun(t, f.priv, "add_user", UniqueLogin, UniqueUID, "/bin/csh", "Zimmermann", "Martin", "", "0", "hash", "1990")
	out := f.mustRun(t, f.priv, "get_user_by_name", "Martin", "Zimmermann")
	uid := out[0][1]

	f.mustRun(t, f.priv, "register_user", uid, "kazimi", "1")

	// Status is half-registered, login assigned.
	out = f.mustRun(t, f.priv, "get_user_by_login", "kazimi")
	if out[0][6] != "2" {
		t.Errorf("status = %q, want 2 (half-registered)", out[0][6])
	}
	// Pobox on the POP server.
	pb := f.mustRun(t, f.priv, "get_pobox", "kazimi")
	if pb[0][1] != "POP" || pb[0][2] != "E40-PO.MIT.EDU" {
		t.Errorf("pobox = %v", pb[0])
	}
	// Group list exists with the user as member.
	gl := f.mustRun(t, f.priv, "get_list_info", "kazimi")
	if gl[0][5] != "1" {
		t.Errorf("group flag = %q", gl[0][5])
	}
	mem := f.mustRun(t, f.priv, "get_members_of_list", "kazimi")
	if len(mem) != 1 || mem[0][0] != "USER" || mem[0][1] != "kazimi" {
		t.Errorf("members = %v", mem)
	}
	// Filesystem and quota created; allocation accounted.
	fs := f.mustRun(t, f.priv, "get_filesys_by_label", "kazimi")
	if fs[0][1] != "NFS" || fs[0][2] != "CHARON.MIT.EDU" || fs[0][4] != "/mit/kazimi" {
		t.Errorf("filesys = %v", fs[0])
	}
	q := f.mustRun(t, f.priv, "get_nfs_quota", "kazimi", "kazimi")
	if q[0][2] != "300" {
		t.Errorf("quota = %v", q[0])
	}
	np := f.mustRun(t, f.priv, "get_nfsphys", "CHARON.MIT.EDU", "/u1")
	if np[0][4] != "300" {
		t.Errorf("allocated = %q, want 300", np[0][4])
	}
	// POP box count incremented.
	sh := f.mustRun(t, f.priv, "get_server_host_info", "POP", "*")
	if sh[0][10] != "1" {
		t.Errorf("POP value1 = %q, want 1", sh[0][10])
	}
	// Re-registration fails: no longer status 0.
	if _, err := f.run(f.priv, "register_user", uid, "kazimi2", "1"); err != mrerr.MrInUse {
		t.Errorf("re-register err = %v", err)
	}
}

func TestRegisterUserLoginTaken(t *testing.T) {
	f := newFixture(t)
	f.addUser(t, "taken")
	f.mustRun(t, f.priv, "add_user", UniqueLogin, UniqueUID, "/bin/csh", "New", "Person", "", "0", "h", "1990")
	out := f.mustRun(t, f.priv, "get_user_by_name", "Person", "New")
	if _, err := f.run(f.priv, "register_user", out[0][1], "taken", "1"); err != mrerr.MrInUse {
		t.Errorf("taken login err = %v", err)
	}
}

func TestDeleteUserConstraints(t *testing.T) {
	f := newFixture(t)
	f.addUser(t, "doomed")
	// Active user cannot be deleted.
	if _, err := f.run(f.priv, "delete_user", "doomed"); err != mrerr.MrInUse {
		t.Errorf("active delete err = %v", err)
	}
	f.mustRun(t, f.priv, "update_user_status", "doomed", "0")
	// Member of a list: still refused.
	f.mustRun(t, f.priv, "add_list", "holder", "1", "0", "0", "0", "0", "0", "NONE", "NONE", "d")
	f.mustRun(t, f.priv, "add_member_to_list", "holder", "USER", "doomed")
	if _, err := f.run(f.priv, "delete_user", "doomed"); err != mrerr.MrInUse {
		t.Errorf("member delete err = %v", err)
	}
	f.mustRun(t, f.priv, "delete_member_from_list", "holder", "USER", "doomed")
	f.mustRun(t, f.priv, "delete_user", "doomed")
	if _, err := f.run(f.priv, "get_user_by_login", "doomed"); err != mrerr.MrNoMatch {
		t.Errorf("after delete err = %v", err)
	}
}

func TestPoboxQueries(t *testing.T) {
	f := newFixture(t)
	f.addUser(t, "alice")
	f.mustRun(t, f.priv, "set_pobox", "alice", "POP", "E40-PO.MIT.EDU")
	out := f.mustRun(t, f.priv, "get_pobox", "alice")
	if out[0][1] != "POP" || out[0][2] != "E40-PO.MIT.EDU" {
		t.Errorf("pobox = %v", out[0])
	}
	// SMTP pobox interns a string.
	f.mustRun(t, f.priv, "set_pobox", "alice", "SMTP", "alice@media-lab.mit.edu")
	out = f.mustRun(t, f.priv, "get_pobox", "alice")
	if out[0][1] != "SMTP" || out[0][2] != "alice@media-lab.mit.edu" {
		t.Errorf("smtp pobox = %v", out[0])
	}
	// set_pobox_pop restores the previous POP machine.
	f.mustRun(t, f.priv, "set_pobox_pop", "alice")
	out = f.mustRun(t, f.priv, "get_pobox", "alice")
	if out[0][1] != "POP" || out[0][2] != "E40-PO.MIT.EDU" {
		t.Errorf("restored pobox = %v", out[0])
	}
	// delete_pobox sets NONE.
	f.mustRun(t, f.priv, "delete_pobox", "alice")
	out = f.mustRun(t, f.priv, "get_pobox", "alice")
	if out[0][1] != "NONE" {
		t.Errorf("deleted pobox = %v", out[0])
	}
	// Bad pobox type and unknown machine.
	if _, err := f.run(f.priv, "set_pobox", "alice", "CARRIER-PIGEON", "x"); err != mrerr.MrType {
		t.Errorf("bad type err = %v", err)
	}
	if _, err := f.run(f.priv, "set_pobox", "alice", "POP", "e40-p0"); err != mrerr.MrMachine {
		t.Errorf("bad machine err = %v", err)
	}
	// A user with no POP history can't set_pobox_pop.
	f.addUser(t, "fresh")
	if _, err := f.run(f.priv, "set_pobox_pop", "fresh"); err != mrerr.MrMachine {
		t.Errorf("no-history err = %v", err)
	}
}

func TestMachineQueries(t *testing.T) {
	f := newFixture(t)
	// Case-insensitive lookup, canonical uppercase storage.
	out := f.mustRun(t, f.priv, "get_machine", "E40-po.MIT.edu")
	if out[0][0] != "E40-PO.MIT.EDU" || out[0][1] != "VAX" {
		t.Errorf("machine = %v", out[0])
	}
	if _, err := f.run(f.priv, "add_machine", "dup.mit.edu", "PDP-11"); err != mrerr.MrType {
		t.Errorf("bad type err = %v", err)
	}
	f.mustRun(t, f.priv, "update_machine", "suomi.mit.edu", "suomi2.mit.edu", "RT")
	if _, err := f.run(f.priv, "get_machine", "SUOMI.MIT.EDU"); err != mrerr.MrNoMatch {
		t.Errorf("old name err = %v", err)
	}
	// In-use machine cannot be deleted (E40-PO is a POP serverhost).
	if _, err := f.run(f.priv, "delete_machine", "e40-po.mit.edu"); err != mrerr.MrInUse {
		t.Errorf("in-use delete err = %v", err)
	}
	f.mustRun(t, f.priv, "delete_machine", "suomi2.mit.edu")
}

func TestClusterQueries(t *testing.T) {
	f := newFixture(t)
	f.mustRun(t, f.priv, "add_cluster", "bldge40-vs", "E40 vaxstations", "E40")
	f.mustRun(t, f.priv, "add_machine_to_cluster", "e40-po.mit.edu", "bldge40-vs")
	out := f.mustRun(t, f.priv, "get_machine_to_cluster_map", "*", "*")
	if len(out) != 1 || out[0][0] != "E40-PO.MIT.EDU" || out[0][1] != "bldge40-vs" {
		t.Errorf("mcmap = %v", out)
	}
	// Cluster with machines cannot be deleted.
	if _, err := f.run(f.priv, "delete_cluster", "bldge40-vs"); err != mrerr.MrInUse {
		t.Errorf("in-use cluster delete err = %v", err)
	}
	// Cluster data requires a registered slabel.
	if _, err := f.run(f.priv, "add_cluster_data", "bldge40-vs", "bogus", "x"); err != mrerr.MrType {
		t.Errorf("bad slabel err = %v", err)
	}
	f.mustRun(t, f.priv, "add_cluster_data", "bldge40-vs", "zephyr", "neskaya.mit.edu")
	cd := f.mustRun(t, f.priv, "get_cluster_data", "bldge40-vs", "*")
	if len(cd) != 1 || cd[0][2] != "neskaya.mit.edu" {
		t.Errorf("cluster data = %v", cd)
	}
	f.mustRun(t, f.priv, "delete_cluster_data", "bldge40-vs", "zephyr", "neskaya.mit.edu")
	f.mustRun(t, f.priv, "delete_machine_from_cluster", "e40-po.mit.edu", "bldge40-vs")
	f.mustRun(t, f.priv, "delete_cluster", "bldge40-vs")
}

func TestListLifecycleAndACEs(t *testing.T) {
	f := newFixture(t)
	f.addUser(t, "owner")
	f.addUser(t, "member")
	f.addUser(t, "outsider")

	// Self-referential ACE.
	f.mustRun(t, f.priv, "add_list", "selfref", "1", "0", "0", "0", "0", "0", "LIST", "selfref", "self-owned")
	gl := f.mustRun(t, f.priv, "get_list_info", "selfref")
	if gl[0][7] != "LIST" || gl[0][8] != "selfref" {
		t.Errorf("selfref ace = %v", gl[0])
	}

	// Owner-controlled public mailing list.
	f.mustRun(t, f.priv, "add_list", "video-users", "1", "1", "0", "1", "0", "0", "USER", "owner", "Video Users")
	owner := f.userCtx("owner")
	member := f.userCtx("member")
	outsider := f.userCtx("outsider")

	// Owner may add anyone.
	if _, err := f.run(owner, "add_member_to_list", "video-users", "USER", "member"); err != nil {
		t.Fatalf("owner add: %v", err)
	}
	// A user may add themselves to a public list.
	if _, err := f.run(outsider, "add_member_to_list", "video-users", "USER", "outsider"); err != nil {
		t.Fatalf("public self-add: %v", err)
	}
	// But not someone else.
	if _, err := f.run(member, "add_member_to_list", "video-users", "USER", "owner"); err != mrerr.MrPerm {
		t.Errorf("non-owner add err = %v", err)
	}
	// STRING members are interned.
	f.mustRun(t, f.priv, "add_member_to_list", "video-users", "STRING", "rubin@media-lab.mit.edu")
	mem := f.mustRun(t, f.priv, "get_members_of_list", "video-users")
	if len(mem) != 3 {
		t.Errorf("members = %v", mem)
	}
	cnt := f.mustRun(t, f.priv, "count_members_of_list", "video-users")
	if cnt[0][0] != "3" {
		t.Errorf("count = %v", cnt)
	}
	// get_lists_of_member.
	lom := f.mustRun(t, member, "get_lists_of_member", "USER", "member")
	if len(lom) != 1 || lom[0][0] != "video-users" {
		t.Errorf("lists of member = %v", lom)
	}
	// get_ace_use for the owner.
	gau := f.mustRun(t, owner, "get_ace_use", "USER", "owner")
	if len(gau) != 1 || gau[0][0] != "LIST" || gau[0][1] != "video-users" {
		t.Errorf("ace use = %v", gau)
	}
	// Non-empty list cannot be deleted.
	if _, err := f.run(owner, "delete_list", "video-users"); err != mrerr.MrInUse {
		t.Errorf("non-empty delete err = %v", err)
	}
	// Public self-removal.
	if _, err := f.run(outsider, "delete_member_from_list", "video-users", "USER", "outsider"); err != nil {
		t.Fatalf("public self-remove: %v", err)
	}
}

func TestHiddenLists(t *testing.T) {
	f := newFixture(t)
	f.addUser(t, "insider")
	f.addUser(t, "outsider")
	f.mustRun(t, f.priv, "add_list", "secret", "1", "0", "1", "0", "0", "0", "USER", "insider", "hidden list")
	insider := f.userCtx("insider")
	outsider := f.userCtx("outsider")
	if _, err := f.run(outsider, "get_list_info", "secret"); err != mrerr.MrPerm {
		t.Errorf("outsider glin err = %v", err)
	}
	if _, err := f.run(insider, "get_list_info", "secret"); err != nil {
		t.Errorf("insider glin err = %v", err)
	}
	if _, err := f.run(outsider, "get_members_of_list", "secret"); err != mrerr.MrPerm {
		t.Errorf("outsider gmol err = %v", err)
	}
	// qualified_get_lists with hidden TRUE requires the ACL.
	if _, err := f.run(outsider, "qualified_get_lists", "TRUE", "DONTCARE", "TRUE", "DONTCARE", "DONTCARE"); err != mrerr.MrPerm {
		t.Errorf("qgli hidden err = %v", err)
	}
	// hidden FALSE active TRUE is open to all.
	if _, err := f.run(outsider, "qualified_get_lists", "TRUE", "DONTCARE", "FALSE", "DONTCARE", "DONTCARE"); err != nil {
		t.Errorf("qgli open err = %v", err)
	}
}

func TestRecursiveListsOfMember(t *testing.T) {
	f := newFixture(t)
	f.addUser(t, "deep")
	f.mustRun(t, f.priv, "add_list", "leaf", "1", "0", "0", "0", "0", "0", "NONE", "NONE", "")
	f.mustRun(t, f.priv, "add_list", "mid", "1", "0", "0", "0", "0", "0", "NONE", "NONE", "")
	f.mustRun(t, f.priv, "add_list", "top", "1", "0", "0", "0", "0", "0", "NONE", "NONE", "")
	f.mustRun(t, f.priv, "add_member_to_list", "leaf", "USER", "deep")
	f.mustRun(t, f.priv, "add_member_to_list", "mid", "LIST", "leaf")
	f.mustRun(t, f.priv, "add_member_to_list", "top", "LIST", "mid")

	direct := f.mustRun(t, f.priv, "get_lists_of_member", "USER", "deep")
	if len(direct) != 1 {
		t.Errorf("direct = %v", direct)
	}
	rec := f.mustRun(t, f.priv, "get_lists_of_member", "RUSER", "deep")
	if len(rec) != 3 {
		t.Errorf("recursive = %v", rec)
	}
}

func TestServerQueries(t *testing.T) {
	f := newFixture(t)
	f.mustRun(t, f.priv, "add_server_info", "hesiod", "360", "/tmp/hesiod.out", "hesiod.sh", "REPLICAT", "1", "LIST", AdminList)
	out := f.mustRun(t, f.priv, "get_server_info", "HESIOD")
	if out[0][0] != "HESIOD" || out[0][1] != "360" || out[0][6] != "REPLICAT" {
		t.Errorf("server = %v", out[0])
	}
	f.mustRun(t, f.priv, "add_server_host_info", "HESIOD", "SUOMI.MIT.EDU", "1", "0", "0", "")
	// qualified_get_server_host: never updated successfully.
	q := f.mustRun(t, f.priv, "qualified_get_server_host", "HESIOD", "TRUE", "DONTCARE", "FALSE", "DONTCARE", "DONTCARE")
	if len(q) != 1 || q[0][1] != "SUOMI.MIT.EDU" {
		t.Errorf("qgsh = %v", q)
	}
	// get_server_locations is public.
	f.addUser(t, "anyone")
	anyone := f.userCtx("anyone")
	loc := f.mustRun(t, anyone, "get_server_locations", "hesiod")
	if len(loc) != 1 || loc[0][1] != "SUOMI.MIT.EDU" {
		t.Errorf("locations = %v", loc)
	}
	// Internal flags via the DCM-only query.
	f.mustRun(t, f.priv, "set_server_internal_flags", "HESIOD", "600000100", "600000200", "0", "0", "")
	out = f.mustRun(t, f.priv, "get_server_info", "HESIOD")
	if out[0][4] != "600000100" || out[0][5] != "600000200" {
		t.Errorf("dfgen/dfcheck = %v", out[0])
	}
	// Service with hosts cannot be deleted.
	if _, err := f.run(f.priv, "delete_server_info", "HESIOD"); err != mrerr.MrInUse {
		t.Errorf("in-use service delete err = %v", err)
	}
	f.mustRun(t, f.priv, "delete_server_host_info", "HESIOD", "SUOMI.MIT.EDU")
	f.mustRun(t, f.priv, "delete_server_info", "HESIOD")
}

func TestServerHostOverrideTriggersDCM(t *testing.T) {
	f := newFixture(t)
	triggered := false
	f.priv.TriggerDCM = func(string) { triggered = true }
	f.mustRun(t, f.priv, "set_server_host_override", "POP", "E40-PO.MIT.EDU")
	if !triggered {
		t.Error("set_server_host_override did not trigger the DCM")
	}
	out := f.mustRun(t, f.priv, "get_server_host_info", "POP", "*")
	if out[0][3] != "1" {
		t.Errorf("override flag = %q", out[0][3])
	}
}

func TestFilesysQuotaAccounting(t *testing.T) {
	f := newFixture(t)
	f.addUser(t, "alice")
	f.mustRun(t, f.priv, "add_list", "alicegrp", "1", "0", "0", "0", "1", UniqueGID, "USER", "alice", "")
	f.mustRun(t, f.priv, "add_filesys", "aliceproj", "NFS", "charon.mit.edu", "/u1/proj", "/mit/proj", "w", "", "alice", "alicegrp", "1", "PROJECT")
	f.mustRun(t, f.priv, "add_nfs_quota", "aliceproj", "alice", "500")
	np := f.mustRun(t, f.priv, "get_nfsphys", "charon.mit.edu", "/u1")
	if np[0][4] != "500" {
		t.Errorf("allocated after add = %q", np[0][4])
	}
	f.mustRun(t, f.priv, "update_nfs_quota", "aliceproj", "alice", "800")
	np = f.mustRun(t, f.priv, "get_nfsphys", "charon.mit.edu", "/u1")
	if np[0][4] != "800" {
		t.Errorf("allocated after update = %q", np[0][4])
	}
	// Deleting the filesystem returns the allocation.
	f.mustRun(t, f.priv, "delete_filesys", "aliceproj")
	np = f.mustRun(t, f.priv, "get_nfsphys", "charon.mit.edu", "/u1")
	if np[0][4] != "0" {
		t.Errorf("allocated after delete = %q", np[0][4])
	}
	// Partition with filesystems cannot be deleted.
	f.mustRun(t, f.priv, "add_filesys", "keeper", "NFS", "charon.mit.edu", "/u1/keeper", "/mit/keeper", "r", "", "alice", "alicegrp", "0", "PROJECT")
	if _, err := f.run(f.priv, "delete_nfsphys", "charon.mit.edu", "/u1"); err != mrerr.MrInUse {
		t.Errorf("in-use nfsphys delete err = %v", err)
	}
}

func TestFilesysValidation(t *testing.T) {
	f := newFixture(t)
	f.addUser(t, "alice")
	f.mustRun(t, f.priv, "add_list", "grp", "1", "0", "0", "0", "1", UniqueGID, "NONE", "NONE", "")
	base := []string{"fs1", "NFS", "charon.mit.edu", "/u1/fs1", "/mit/fs1", "w", "", "alice", "grp", "0", "PROJECT"}
	bad := func(idx int, val string, want error) {
		t.Helper()
		args := append([]string(nil), base...)
		args[idx] = val
		if _, err := f.run(f.priv, "add_filesys", args...); err != want {
			t.Errorf("arg %d=%q err = %v, want %v", idx, val, err, want)
		}
	}
	bad(1, "AFS", mrerr.MrFSType)
	bad(2, "nowhere.mit.edu", mrerr.MrMachine)
	bad(3, "/u9/fs1", mrerr.MrNFS)
	bad(5, "x", mrerr.MrFilesysAccess)
	bad(7, "ghost", mrerr.MrUser)
	bad(8, "ghostgrp", mrerr.MrList)
	bad(10, "CLOSET", mrerr.MrType)
	// RVD filesystems skip the NFS-specific checks.
	if _, err := f.run(f.priv, "add_filesys", "ade", "RVD", "charon.mit.edu", "ade-pack", "/mnt/ade", "r", "", "alice", "grp", "0", "OTHER"); err != nil {
		t.Errorf("rvd add: %v", err)
	}
}

func TestZephyrQueries(t *testing.T) {
	f := newFixture(t)
	f.mustRun(t, f.priv, "add_zephyr_class", "MOIRA", "LIST", AdminList, "NONE", "NONE", "NONE", "NONE", "NONE", "NONE")
	out := f.mustRun(t, f.priv, "get_zephyr_class", "MOIRA")
	if out[0][1] != "LIST" || out[0][2] != AdminList {
		t.Errorf("zephyr = %v", out[0])
	}
	f.mustRun(t, f.priv, "update_zephyr_class", "MOIRA", "MOIRA2", "NONE", "NONE", "NONE", "NONE", "NONE", "NONE", "NONE", "NONE")
	if _, err := f.run(f.priv, "get_zephyr_class", "MOIRA"); err != mrerr.MrNoMatch {
		t.Errorf("old class err = %v", err)
	}
	f.mustRun(t, f.priv, "delete_zephyr_class", "MOIRA2")
}

func TestServiceAndPrintcap(t *testing.T) {
	f := newFixture(t)
	f.mustRun(t, f.priv, "add_service", "smtp", "tcp", "25", "mail")
	if _, err := f.run(f.priv, "add_service", "smtp", "TCP", "25", "dup"); err != mrerr.MrExists {
		t.Errorf("dup service err = %v", err)
	}
	if _, err := f.run(f.priv, "add_service", "x25", "DECNET", "1", ""); err != mrerr.MrType {
		t.Errorf("bad protocol err = %v", err)
	}
	f.mustRun(t, f.priv, "add_printcap", "linus", "charon.mit.edu", "/usr/spool/printer/linus", "linus", "")
	out := f.mustRun(t, f.priv, "get_printcap", "lin*")
	if out[0][0] != "linus" || out[0][1] != "CHARON.MIT.EDU" {
		t.Errorf("printcap = %v", out[0])
	}
	f.mustRun(t, f.priv, "delete_printcap", "linus")
	f.mustRun(t, f.priv, "delete_service", "smtp")
}

func TestAliasAndValueQueries(t *testing.T) {
	f := newFixture(t)
	f.mustRun(t, f.priv, "add_alias", "ade", "FILESYS", "ade-real")
	out := f.mustRun(t, f.priv, "get_alias", "ade", "*", "*")
	if len(out) != 1 || out[0][2] != "ade-real" {
		t.Errorf("alias = %v", out)
	}
	if _, err := f.run(f.priv, "add_alias", "x", "NOTATYPE", "y"); err != mrerr.MrType {
		t.Errorf("bad alias type err = %v", err)
	}
	f.mustRun(t, f.priv, "delete_alias", "ade", "FILESYS", "ade-real")

	f.mustRun(t, f.priv, "add_value", "test_val", "7")
	v := f.mustRun(t, f.priv, "get_value", "test_val")
	if v[0][0] != "7" {
		t.Errorf("value = %v", v)
	}
	f.mustRun(t, f.priv, "update_value", "test_val", "8")
	f.mustRun(t, f.priv, "delete_value", "test_val")
	if _, err := f.run(f.priv, "get_value", "test_val"); err != mrerr.MrNoMatch {
		t.Errorf("deleted value err = %v", err)
	}
}

func TestTableStatsQuery(t *testing.T) {
	f := newFixture(t)
	f.addUser(t, "statuser")
	out := f.mustRun(t, f.priv, "get_all_table_stats")
	found := false
	for _, row := range out {
		if row[0] == db.TUsers {
			found = true
			if row[2] == "0" {
				t.Errorf("users appends = %v", row)
			}
		}
	}
	if !found {
		t.Error("users table missing from stats")
	}
}

func TestBuiltinQueries(t *testing.T) {
	f := newFixture(t)
	out := f.mustRun(t, f.priv, "_list_queries")
	if len(out) != Count() {
		t.Errorf("_list_queries returned %d rows, registry has %d", len(out), Count())
	}
	h := f.mustRun(t, f.priv, "_help", "gubl")
	if len(h) != 1 {
		t.Errorf("_help = %v", h)
	}
	if _, err := f.run(f.priv, "_help", "nonsense"); err != mrerr.MrNoHandle {
		t.Errorf("_help unknown err = %v", err)
	}
	// _list_users with a session lister installed.
	f.priv.Sessions = func() []SessionInfo {
		return []SessionInfo{{Principal: "alice", HostAddress: "18.72.0.1", Port: 999, ConnectTime: 600000000, ClientNum: 1}}
	}
	lu := f.mustRun(t, f.priv, "_list_users")
	if len(lu) != 1 || lu[0][0] != "alice" {
		t.Errorf("_list_users = %v", lu)
	}
}

func TestJournalRecordsWrites(t *testing.T) {
	f := newFixture(t)
	var journal journalBuffer
	f.d.SetJournal(&journal)
	f.addUser(t, "journaled")
	if !journal.contains("add_user:journaled") {
		t.Errorf("journal = %q", journal.String())
	}
	// Retrieves are not journaled.
	journal.reset()
	f.mustRun(t, f.priv, "get_user_by_login", "journaled")
	if journal.String() != "" {
		t.Errorf("retrieve journaled: %q", journal.String())
	}
}

type journalBuffer struct{ buf []byte }

func (j *journalBuffer) Write(p []byte) (int, error) {
	j.buf = append(j.buf, p...)
	return len(p), nil
}
func (j *journalBuffer) String() string { return string(j.buf) }
func (j *journalBuffer) reset()         { j.buf = nil }
func (j *journalBuffer) contains(s string) bool {
	return len(s) == 0 || stringsContains(j.String(), s)
}

func stringsContains(haystack, needle string) bool {
	for i := 0; i+len(needle) <= len(haystack); i++ {
		if haystack[i:i+len(needle)] == needle {
			return true
		}
	}
	return false
}
