package queries

// Queries over machines, clusters, the machine-cluster map, and cluster
// service data (section 7.0.2).

import (
	"moira/internal/db"
	"moira/internal/mrerr"
	"moira/internal/util"
	"moira/internal/wildcard"
)

// matchMachines collects machines whose canonical name matches the
// pattern (names are case insensitive; both sides are upper-cased),
// via the name indexes.
func matchMachines(d *db.DB, pattern string) []*db.Machine {
	return d.MachinesMatchingName(util.CanonicalizeHostname(pattern))
}

// oneMachine resolves an argument that must match exactly one machine.
func oneMachine(d *db.DB, name string) (*db.Machine, error) {
	ms := matchMachines(d, name)
	switch len(ms) {
	case 0:
		return nil, mrerr.MrMachine
	case 1:
		return ms[0], nil
	default:
		return nil, mrerr.MrNotUnique
	}
}

func matchClusters(d *db.DB, pattern string) []*db.Cluster {
	return d.ClustersMatchingName(pattern)
}

func oneCluster(d *db.DB, name string) (*db.Cluster, error) {
	cs := matchClusters(d, name)
	switch len(cs) {
	case 0:
		return nil, mrerr.MrCluster
	case 1:
		return cs[0], nil
	default:
		return nil, mrerr.MrNotUnique
	}
}

// machineInUse reports whether a machine is referenced as a post office,
// filesystem server, printer spooling host, hostaccess entry, NFS
// partition home, or DCM-updated server host.
func machineInUse(d *db.DB, machID int) bool {
	inUse := false
	d.EachUser(func(u *db.User) bool {
		if u.PoType == db.PoboxPOP && u.PopID == machID {
			inUse = true
			return false
		}
		return true
	})
	if inUse {
		return true
	}
	d.EachFilesys(func(f *db.Filesys) bool {
		if f.MachID == machID {
			inUse = true
			return false
		}
		return true
	})
	if inUse {
		return true
	}
	d.EachNFSPhys(func(p *db.NFSPhys) bool {
		if p.MachID == machID {
			inUse = true
			return false
		}
		return true
	})
	if inUse {
		return true
	}
	d.EachPrintcap(func(p *db.Printcap) bool {
		if p.MachID == machID {
			inUse = true
			return false
		}
		return true
	})
	if inUse {
		return true
	}
	if _, ok := d.HostAccessOf(machID); ok {
		return true
	}
	d.EachServerHost(func(sh *db.ServerHost) bool {
		if sh.MachID == machID {
			inUse = true
			return false
		}
		return true
	})
	return inUse
}

func init() {
	register(&Query{
		Name: "get_machine", Short: "gmac", Kind: Retrieve,
		Args:    []string{"name"},
		Returns: []string{"name", "type", "modtime", "modby", "modwith"},
		Access:  accessAnyone,
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			ms := matchMachines(cx.DB, args[0])
			if len(ms) == 0 {
				return mrerr.MrNoMatch
			}
			var tuples [][]string
			for _, m := range ms {
				tuples = append(tuples, []string{m.Name, m.Type, i642s(m.Mod.Time), m.Mod.By, m.Mod.With})
			}
			return emitSorted(tuples, emit)
		},
	})

	register(&Query{
		Name: "add_machine", Short: "amac", Kind: Append,
		Args: []string{"name", "type"},
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			d := cx.DB
			name := util.CanonicalizeHostname(args[0])
			if err := checkNameChars(name); err != nil {
				return err
			}
			if !d.IsValidType("mach_type", args[1]) {
				return mrerr.MrType
			}
			if _, dup := d.MachineByName(name); dup {
				return mrerr.MrNotUnique
			}
			id, err := d.AllocID("mach_id")
			if err != nil {
				return err
			}
			return d.InsertMachine(&db.Machine{MachID: id, Name: name, Type: args[1], Mod: cx.modInfo()})
		},
	})

	register(&Query{
		Name: "update_machine", Short: "umac", Kind: Update,
		Args: []string{"name", "newname", "type"},
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			d := cx.DB
			m, err := oneMachine(d, args[0])
			if err != nil {
				return err
			}
			newname := util.CanonicalizeHostname(args[1])
			if err := checkNameChars(newname); err != nil {
				return err
			}
			if !d.IsValidType("mach_type", args[2]) {
				return mrerr.MrType
			}
			if newname != m.Name {
				if _, dup := d.MachineByName(newname); dup {
					return mrerr.MrNotUnique
				}
				d.RenameMachine(m, newname)
			}
			m.Type = args[2]
			m.Mod = cx.modInfo()
			d.NoteUpdate(db.TMachine)
			return nil
		},
	})

	register(&Query{
		Name: "delete_machine", Short: "dmac", Kind: Delete,
		Args: []string{"name"},
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			d := cx.DB
			m, err := oneMachine(d, args[0])
			if err != nil {
				return err
			}
			if machineInUse(d, m.MachID) {
				return mrerr.MrInUse
			}
			// Remove cluster assignments silently.
			for _, cid := range d.ClustersOfMachine(m.MachID) {
				if err := d.DeleteMCMap(m.MachID, cid); err != nil {
					return mrerr.MrInternal
				}
			}
			d.DeleteMachine(m)
			return nil
		},
	})

	register(&Query{
		Name: "get_cluster", Short: "gclu", Kind: Retrieve,
		Args:    []string{"name"},
		Returns: []string{"name", "description", "location", "modtime", "modby", "modwith"},
		Access:  accessAnyone,
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			cs := matchClusters(cx.DB, args[0])
			if len(cs) == 0 {
				return mrerr.MrNoMatch
			}
			var tuples [][]string
			for _, c := range cs {
				tuples = append(tuples, []string{c.Name, c.Desc, c.Location, i642s(c.Mod.Time), c.Mod.By, c.Mod.With})
			}
			return emitSorted(tuples, emit)
		},
	})

	register(&Query{
		Name: "add_cluster", Short: "aclu", Kind: Append,
		Args: []string{"name", "description", "location"},
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			d := cx.DB
			if err := checkNameChars(args[0]); err != nil {
				return err
			}
			if _, dup := d.ClusterByName(args[0]); dup {
				return mrerr.MrNotUnique
			}
			id, err := d.AllocID("clu_id")
			if err != nil {
				return err
			}
			return d.InsertCluster(&db.Cluster{CluID: id, Name: args[0], Desc: args[1], Location: args[2], Mod: cx.modInfo()})
		},
	})

	register(&Query{
		Name: "update_cluster", Short: "uclu", Kind: Update,
		Args: []string{"name", "newname", "description", "location"},
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			d := cx.DB
			c, err := oneCluster(d, args[0])
			if err != nil {
				return err
			}
			if err := checkNameChars(args[1]); err != nil {
				return err
			}
			if args[1] != c.Name {
				if _, dup := d.ClusterByName(args[1]); dup {
					return mrerr.MrNotUnique
				}
				d.RenameCluster(c, args[1])
			}
			c.Desc, c.Location = args[2], args[3]
			c.Mod = cx.modInfo()
			d.NoteUpdate(db.TCluster)
			return nil
		},
	})

	register(&Query{
		Name: "delete_cluster", Short: "dclu", Kind: Delete,
		Args: []string{"name"},
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			d := cx.DB
			c, err := oneCluster(d, args[0])
			if err != nil {
				return err
			}
			for _, m := range d.MCMaps() {
				if m.CluID == c.CluID {
					return mrerr.MrInUse
				}
			}
			d.DeleteSvcOfCluster(c.CluID)
			d.DeleteCluster(c)
			return nil
		},
	})

	register(&Query{
		Name: "get_machine_to_cluster_map", Short: "gmcm", Kind: Retrieve,
		Args:    []string{"machine", "cluster"},
		Returns: []string{"machine", "cluster"},
		Access:  accessAnyone,
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			d := cx.DB
			mpat := util.CanonicalizeHostname(args[0])
			var tuples [][]string
			for _, mc := range d.MCMaps() {
				m, mok := d.MachineByID(mc.MachID)
				c, cok := d.ClusterByID(mc.CluID)
				if !mok || !cok {
					continue
				}
				if wildcard.Match(mpat, m.Name) && wildcard.Match(args[1], c.Name) {
					tuples = append(tuples, []string{m.Name, c.Name})
				}
			}
			if len(tuples) == 0 {
				return mrerr.MrNoMatch
			}
			return emitSorted(tuples, emit)
		},
	})

	register(&Query{
		Name: "add_machine_to_cluster", Short: "amtc", Kind: Append,
		Args: []string{"machine", "cluster"},
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			d := cx.DB
			m, err := oneMachine(d, args[0])
			if err != nil {
				return err
			}
			c, err := oneCluster(d, args[1])
			if err != nil {
				return err
			}
			if err := d.AddMCMap(m.MachID, c.CluID); err != nil {
				return err
			}
			m.Mod = cx.modInfo()
			d.NoteUpdate(db.TMachine)
			return nil
		},
	})

	register(&Query{
		Name: "delete_machine_from_cluster", Short: "dmfc", Kind: Delete,
		Args: []string{"machine", "cluster"},
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			d := cx.DB
			m, err := oneMachine(d, args[0])
			if err != nil {
				return err
			}
			c, err := oneCluster(d, args[1])
			if err != nil {
				return err
			}
			if err := d.DeleteMCMap(m.MachID, c.CluID); err != nil {
				return err
			}
			m.Mod = cx.modInfo()
			d.NoteUpdate(db.TMachine)
			return nil
		},
	})

	register(&Query{
		Name: "get_cluster_data", Short: "gcld", Kind: Retrieve,
		Args:    []string{"cluster", "label"},
		Returns: []string{"cluster", "label", "data"},
		Access:  accessAnyone,
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			d := cx.DB
			var tuples [][]string
			for _, s := range d.SvcRows() {
				c, ok := d.ClusterByID(s.CluID)
				if !ok {
					continue
				}
				if wildcard.Match(args[0], c.Name) && wildcard.Match(args[1], s.ServLabel) {
					tuples = append(tuples, []string{c.Name, s.ServLabel, s.ServCluster})
				}
			}
			if len(tuples) == 0 {
				return mrerr.MrNoMatch
			}
			return emitSorted(tuples, emit)
		},
	})

	register(&Query{
		Name: "add_cluster_data", Short: "acld", Kind: Append,
		Args: []string{"cluster", "label", "data"},
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			d := cx.DB
			c, err := oneCluster(d, args[0])
			if err != nil {
				return err
			}
			if !d.IsValidType("slabel", args[1]) {
				return mrerr.MrType
			}
			if err := d.AddSvc(db.SvcData{CluID: c.CluID, ServLabel: args[1], ServCluster: args[2]}); err != nil {
				return err
			}
			c.Mod = cx.modInfo()
			d.NoteUpdate(db.TCluster)
			return nil
		},
	})

	register(&Query{
		Name: "delete_cluster_data", Short: "dcld", Kind: Delete,
		Args: []string{"cluster", "label", "data"},
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			d := cx.DB
			c, err := oneCluster(d, args[0])
			if err != nil {
				return err
			}
			if err := d.DeleteSvc(db.SvcData{CluID: c.CluID, ServLabel: args[1], ServCluster: args[2]}); err != nil {
				return mrerr.MrNotUnique
			}
			c.Mod = cx.modInfo()
			d.NoteUpdate(db.TCluster)
			return nil
		},
	})
}
