package queries

// The failover discovery handle. `_whois` reports the serving node's
// cluster identity — role, election epoch, applied journal position,
// and the current primary's addresses — so clients (DialFailover) and
// operators (moirastat -repl) can find the primary without an external
// coordinator. It is a retrieve served even by a read-only or fenced
// node: discovery must keep working exactly when the cluster is
// degraded.

import (
	"strconv"
	"time"
)

// WhoisInfo is the node identity reported by the _whois handle,
// supplied by the server via Context.Whois.
type WhoisInfo struct {
	Role  string // "primary", "replica", "fenced", or "standalone"
	Epoch int64  // election epoch the node currently honours
	Seg   int64  // journal position: current/next segment sequence
	Idx   int64  // journal position: records applied in Seg

	// Primary is the current primary's client (query) address as this
	// node believes it, "" when unknown; PrimaryRepl is its replication
	// address.
	Primary     string
	PrimaryRepl string

	// LeaseRemain is how much lease time remains from this node's view
	// (on the primary: until it must fence; on a replica: until it may
	// call an election). Negative or zero means expired or not tracked.
	LeaseRemain time.Duration

	// LastCause names what triggered the node's last role change:
	// "boot", "lease-expired", "operator", "deposed", "rejoin", or ""
	// when the role has never changed.
	LastCause string
}

func init() {
	register(&Query{
		Name: "_whois", Short: "_who", Kind: Retrieve,
		Returns: []string{"role", "epoch", "primary", "primary_repl",
			"segment", "record", "lease_remaining_ms", "last_election_cause"},
		Access: accessAnyone,
		Handler: func(cx *Context, args []string, emit EmitFunc) error {
			w := WhoisInfo{Role: "standalone"}
			if cx.Whois != nil {
				w = cx.Whois()
			}
			ms := w.LeaseRemain.Milliseconds()
			if ms < 0 {
				ms = 0
			}
			return emit([]string{
				w.Role,
				strconv.FormatInt(w.Epoch, 10),
				w.Primary,
				w.PrimaryRepl,
				strconv.FormatInt(w.Seg, 10),
				strconv.FormatInt(w.Idx, 10),
				strconv.FormatInt(ms, 10),
				w.LastCause,
			})
		},
	})
}
