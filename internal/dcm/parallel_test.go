package dcm

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"

	"moira/internal/db"
	"moira/internal/gen"
	"moira/internal/workload"
)

// TestStressManyHostsParallel runs one pass over ~50 hosts with
// randomized (seeded) agent latencies and checks that every eligible
// host is updated exactly once and the counters balance.
func TestStressManyHostsParallel(t *testing.T) {
	cfg := workload.Scaled(150)
	cfg.NFSServers = 45 // 45 NFS + 1 hesiod + 3 zephyr + 1 mailhub = 50 hosts
	w := newWorldCfg(t, cfg)

	names := make([]string, 0, len(w.agents))
	for name := range w.agents {
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) != 50 {
		t.Fatalf("managed hosts = %d, want 50", len(names))
	}
	rng := rand.New(rand.NewSource(7))
	for _, name := range names {
		w.agents[name].SetLatency(time.Duration(rng.Intn(8)) * time.Millisecond)
	}

	stats := w.run()
	if stats.HostsUpdated != 50 {
		t.Errorf("hosts updated = %d, want 50", stats.HostsUpdated)
	}
	if got := stats.HostsUpdated + stats.HostSoftFails + stats.HostHardFails + stats.HostsSkippedBusy; got != stats.HostsConsidered {
		t.Errorf("counters do not balance: considered=%d, outcomes sum to %d (%+v)",
			stats.HostsConsidered, got, stats)
	}
	if n := stats.PushLatency.Count(); n < 50 {
		t.Errorf("latency histogram observed %d pushes, want >= 50", n)
	}
	for name, host := range w.nfsHosts {
		if host.Installs() != 1 {
			t.Errorf("%s: installs = %d, want exactly 1", name, host.Installs())
		}
	}
	if w.hub.Swaps() != 1 {
		t.Errorf("mailhub swaps = %d, want exactly 1", w.hub.Swaps())
	}

	// No host is left claimed, and every row records the success.
	w.d.LockShared()
	for _, svc := range []string{"HESIOD", "NFS", "SMTP", "ZEPHYR"} {
		for _, sh := range w.d.ServerHostsOf(svc) {
			if sh.InProgress {
				t.Errorf("%s host %d left InProgress", svc, sh.MachID)
			}
			if !sh.Success || sh.LastSuccess == 0 {
				t.Errorf("%s host %d not recorded as updated: %+v", svc, sh.MachID, sh)
			}
		}
	}
	w.d.UnlockShared()

	// The following pass is idle: nothing is pushed twice.
	w.clk.Advance(10 * time.Minute)
	stats = w.run()
	if stats.HostsUpdated != 0 {
		t.Errorf("idle pass updated %d hosts", stats.HostsUpdated)
	}
	for name, host := range w.nfsHosts {
		if host.Installs() != 1 {
			t.Errorf("%s: installs after idle pass = %d", name, host.Installs())
		}
	}
}

// TestClaimClosesTOCTOU reproduces the check-then-act window directly:
// a host that passes the eligibility scan but is claimed by a
// concurrent worker before the push must be skipped, not pushed twice.
func TestClaimClosesTOCTOU(t *testing.T) {
	w := newWorld(t, 40)
	w.run()
	if w.hub.Swaps() != 1 {
		t.Fatalf("setup: swaps = %d", w.hub.Swaps())
	}

	machID := machIDByName(w.d, "ATHENA.MIT.EDU")
	w.d.LockExclusive()
	sh, _ := w.d.ServerHost("SMTP", machID)
	sh.Override = true
	w.d.NoteUpdate(db.TServerHosts)
	var snap serviceSnapshot
	svc, _ := w.d.ServerByName("SMTP")
	snap.Server = *svc
	w.d.UnlockExclusive()

	// The eligibility scan sees the host as due.
	hosts := w.dcm.hostsNeedingUpdate(&snap)
	if len(hosts) != 1 || hosts[0].machID != machID {
		t.Fatalf("eligible hosts = %+v", hosts)
	}

	// A concurrent worker claims it between the scan and the push.
	w.dcm.setHostFlags("SMTP", machID, func(sh *db.ServerHost) { sh.InProgress = true })

	res, err := gen.Mail(w.d)
	if err != nil {
		t.Fatal(err)
	}
	stats := &CycleStats{}
	if ok := w.dcm.updateHost(&snap, hosts[0], res, stats, nil); !ok {
		t.Error("lost claim reported as hard failure")
	}
	if stats.HostsSkippedBusy != 1 || stats.HostsUpdated != 0 {
		t.Errorf("skipped=%d updated=%d, want 1/0", stats.HostsSkippedBusy, stats.HostsUpdated)
	}
	if w.hub.Swaps() != 1 {
		t.Errorf("host pushed twice: swaps = %d", w.hub.Swaps())
	}

	// Release the stale claim; the next pass delivers the override.
	w.dcm.setHostFlags("SMTP", machID, func(sh *db.ServerHost) { sh.InProgress = false })
	stats = w.run()
	if stats.HostsUpdated != 1 || w.hub.Swaps() != 2 {
		t.Errorf("after release: updated=%d swaps=%d", stats.HostsUpdated, w.hub.Swaps())
	}
}

// TestClaimSkipsFreshlyUpdatedHost covers the claim's generation
// re-check: a host another pass finished updating (LastSuccess >=
// DFGen) after our scan must not be pushed again.
func TestClaimSkipsFreshlyUpdatedHost(t *testing.T) {
	w := newWorld(t, 40)
	w.run()

	w.d.LockExclusive()
	var snap serviceSnapshot
	svc, _ := w.d.ServerByName("SMTP")
	snap.Server = *svc
	w.d.UnlockExclusive()
	snap.DFGen = 0 // a stale snapshot from before the concurrent pass generated

	machID := machIDByName(w.d, "ATHENA.MIT.EDU")
	if w.dcm.claimHost(&snap, machID) {
		t.Error("claimed a host already updated for this generation")
	}
}

// TestConcurrentPassesUpdateOnce runs two full passes concurrently over
// the same database (the trigger-during-cron scenario) and checks no
// host is updated twice. Run under -race this also exercises the
// CycleStats and flag aggregation paths.
func TestConcurrentPassesUpdateOnce(t *testing.T) {
	w := newWorld(t, 60)
	second := New(w.dcm.cfg) // a second DCM instance over the same database

	var wg sync.WaitGroup
	results := make([]*CycleStats, 2)
	for i, m := range []*DCM{w.dcm, second} {
		i, m := i, m
		wg.Add(1)
		go func() {
			defer wg.Done()
			stats, err := m.RunOnce()
			if err != nil {
				t.Errorf("pass %d: %v", i, err)
				return
			}
			results[i] = stats
		}()
	}
	wg.Wait()

	totalUpdated := 0
	for _, stats := range results {
		if stats == nil {
			t.Fatal("missing pass results")
		}
		if stats.HostHardFails != 0 {
			t.Errorf("hard failures: %+v", stats)
		}
		totalUpdated += stats.HostsUpdated
	}
	if totalUpdated != len(w.agents) {
		t.Errorf("hosts updated across both passes = %d, want %d", totalUpdated, len(w.agents))
	}
	if w.hub.Swaps() != 1 {
		t.Errorf("mailhub swaps = %d, want exactly 1", w.hub.Swaps())
	}
	for name, host := range w.nfsHosts {
		if host.Installs() != 1 {
			t.Errorf("%s: installs = %d, want exactly 1", name, host.Installs())
		}
	}
}

// TestSequentialConfigStillWorks pins the MaxParallel*=1 path: the
// pass must behave identically, just serially.
func TestSequentialConfigStillWorks(t *testing.T) {
	w := newWorld(t, 60)
	w.reconfig(func(c *Config) {
		c.MaxParallelServices = 1
		c.MaxParallelHosts = 1
	})
	stats := w.run()
	if stats.HostsUpdated != len(w.agents) || stats.HostSoftFails != 0 || stats.HostHardFails != 0 {
		t.Errorf("sequential pass: %+v", stats)
	}
}
