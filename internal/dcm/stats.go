package dcm

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// LatencyBuckets are the upper bounds of the push-latency histogram;
// observations above the last bound land in an overflow bucket.
var LatencyBuckets = []time.Duration{
	time.Millisecond,
	5 * time.Millisecond,
	20 * time.Millisecond,
	50 * time.Millisecond,
	100 * time.Millisecond,
	500 * time.Millisecond,
	2 * time.Second,
}

// LatencyHistogram accumulates per-attempt host push durations (real
// wall-clock, independent of the injected logical clock) for one pass.
type LatencyHistogram struct {
	Counts   [8]int // one per LatencyBuckets entry, plus overflow
	N        int
	Sum      time.Duration
	Min, Max time.Duration
}

// Observe records one push attempt's duration.
func (h *LatencyHistogram) Observe(d time.Duration) {
	i := 0
	for i < len(LatencyBuckets) && d > LatencyBuckets[i] {
		i++
	}
	h.Counts[i]++
	h.N++
	h.Sum += d
	if h.N == 1 || d < h.Min {
		h.Min = d
	}
	if d > h.Max {
		h.Max = d
	}
}

// String renders the histogram for logs: count, min/avg/max, and the
// per-bucket tallies.
func (h *LatencyHistogram) String() string {
	if h.N == 0 {
		return "no pushes"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d min=%v avg=%v max=%v [",
		h.N, h.Min.Round(time.Microsecond),
		(h.Sum / time.Duration(h.N)).Round(time.Microsecond),
		h.Max.Round(time.Microsecond))
	for i, c := range h.Counts {
		if i > 0 {
			b.WriteByte(' ')
		}
		if i < len(LatencyBuckets) {
			fmt.Fprintf(&b, "≤%v:%d", LatencyBuckets[i], c)
		} else {
			fmt.Fprintf(&b, ">%v:%d", LatencyBuckets[len(LatencyBuckets)-1], c)
		}
	}
	b.WriteByte(']')
	return b.String()
}

// CycleStats summarizes one DCM pass; the Table G harness and the
// benchmarks read these. The fields are plain so existing readers keep
// working; during a pass the concurrent service and host workers
// mutate them only through add, which serializes on the internal
// mutex. Reading the fields after RunOnce returns is safe (the workers
// have been joined).
type CycleStats struct {
	ServicesScanned int
	ServicesDue     int
	Generated       int
	NoChange        int
	GenHardErrors   int

	HostsConsidered int
	HostsUpdated    int
	HostSoftFails   int
	HostHardFails   int

	// HostsSkippedBusy counts hosts that passed the eligibility scan
	// but lost the atomic claim to a concurrent worker (another pass or
	// DCM instance already had them InProgress or freshly updated).
	HostsSkippedBusy int

	// Retries counts soft-failure retry attempts across all hosts.
	Retries int

	FilesGenerated  int
	FilesPropagated int
	BytesGenerated  int
	BytesPropagated int

	// PushLatency is the distribution of individual push-attempt
	// durations for this pass.
	PushLatency LatencyHistogram

	mu sync.Mutex
}

// add applies a mutation under the stats lock.
func (s *CycleStats) add(fn func(*CycleStats)) {
	s.mu.Lock()
	fn(s)
	s.mu.Unlock()
}

// Summary formats the pass outcome on one line for logs.
func (s *CycleStats) Summary() string {
	return fmt.Sprintf(
		"services scanned=%d due=%d generated=%d nochange=%d genfail=%d; "+
			"hosts considered=%d updated=%d soft=%d hard=%d busy=%d retries=%d; "+
			"bytes gen=%d prop=%d; latency %s",
		s.ServicesScanned, s.ServicesDue, s.Generated, s.NoChange, s.GenHardErrors,
		s.HostsConsidered, s.HostsUpdated, s.HostSoftFails, s.HostHardFails,
		s.HostsSkippedBusy, s.Retries,
		s.BytesGenerated, s.BytesPropagated, s.PushLatency.String())
}
