package dcm

import (
	"fmt"
	"sync"
	"time"

	"moira/internal/stats"
)

// LatencyBuckets are the upper bounds of the push-latency histogram;
// observations above the last bound land in an overflow bucket. They are
// the tree-wide default buckets (the DCM's were adopted as the default
// when the histogram moved to the stats package).
var LatencyBuckets = stats.DefaultBuckets

// LatencyHistogram accumulates per-attempt host push durations (real
// wall-clock, independent of the injected logical clock) for one pass.
// It is the shared stats.Histogram; the name survives for the DCM's
// public API.
type LatencyHistogram = stats.Histogram

// CycleStats summarizes one DCM pass; the Table G harness and the
// benchmarks read these. The fields are plain so existing readers keep
// working; during a pass the concurrent service and host workers
// mutate them only through add, which serializes on the internal
// mutex. Reading the fields after RunOnce returns is safe (the workers
// have been joined).
type CycleStats struct {
	// Trace is the trace ID of the request that triggered this pass
	// ("" for scheduled passes), threaded through to push logs.
	Trace string

	ServicesScanned int
	ServicesDue     int
	Generated       int
	NoChange        int
	GenHardErrors   int

	HostsConsidered int
	HostsUpdated    int
	HostSoftFails   int
	HostHardFails   int

	// HostsSkippedBusy counts hosts that passed the eligibility scan
	// but lost the atomic claim to a concurrent worker (another pass or
	// DCM instance already had them InProgress or freshly updated).
	HostsSkippedBusy int

	// Retries counts soft-failure retry attempts across all hosts.
	Retries int

	FilesGenerated  int
	FilesPropagated int
	BytesGenerated  int
	BytesPropagated int

	// PushLatency is the distribution of individual push-attempt
	// durations for this pass.
	PushLatency LatencyHistogram

	mu sync.Mutex
}

// add applies a mutation under the stats lock.
func (s *CycleStats) add(fn func(*CycleStats)) {
	s.mu.Lock()
	fn(s)
	s.mu.Unlock()
}

// Summary formats the pass outcome on one line for logs.
func (s *CycleStats) Summary() string {
	return fmt.Sprintf(
		"services scanned=%d due=%d generated=%d nochange=%d genfail=%d; "+
			"hosts considered=%d updated=%d soft=%d hard=%d busy=%d retries=%d; "+
			"bytes gen=%d prop=%d; latency %s",
		s.ServicesScanned, s.ServicesDue, s.Generated, s.NoChange, s.GenHardErrors,
		s.HostsConsidered, s.HostsUpdated, s.HostSoftFails, s.HostHardFails,
		s.HostsSkippedBusy, s.Retries,
		s.BytesGenerated, s.BytesPropagated, s.PushLatency.String())
}

// publish folds the pass's results into the cumulative registry as
// dcm.* counters and the cumulative push-latency histogram.
func (s *CycleStats) publish(reg *stats.Registry, d time.Duration) {
	if reg == nil {
		return
	}
	reg.Counter("dcm.passes").Inc()
	for _, c := range []struct {
		name string
		v    int
	}{
		{"dcm.services.scanned", s.ServicesScanned},
		{"dcm.services.due", s.ServicesDue},
		{"dcm.services.generated", s.Generated},
		{"dcm.services.nochange", s.NoChange},
		{"dcm.services.genfail", s.GenHardErrors},
		{"dcm.hosts.considered", s.HostsConsidered},
		{"dcm.hosts.updated", s.HostsUpdated},
		{"dcm.hosts.softfail", s.HostSoftFails},
		{"dcm.hosts.hardfail", s.HostHardFails},
		{"dcm.hosts.busy", s.HostsSkippedBusy},
		{"dcm.hosts.retries", s.Retries},
		{"dcm.files.generated", s.FilesGenerated},
		{"dcm.files.propagated", s.FilesPropagated},
		{"dcm.bytes.generated", s.BytesGenerated},
		{"dcm.bytes.propagated", s.BytesPropagated},
	} {
		if c.v != 0 {
			reg.Counter(c.name).Add(int64(c.v))
		}
	}
	reg.Histogram("dcm.pass.duration").Observe(d)
	reg.Histogram("dcm.push.latency").Merge(s.PushLatency.Snapshot())
}
