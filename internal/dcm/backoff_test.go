package dcm

import (
	"math/rand"
	"testing"
	"time"

	"moira/internal/db"
)

func TestBackoffDelaySchedule(t *testing.T) {
	exp := BackoffPolicy{Base: 100 * time.Millisecond, Max: time.Second}
	tests := []struct {
		name    string
		policy  BackoffPolicy
		attempt int
		want    time.Duration
	}{
		{"first retry is base", exp, 1, 100 * time.Millisecond},
		{"second doubles", exp, 2, 200 * time.Millisecond},
		{"third doubles again", exp, 3, 400 * time.Millisecond},
		{"fourth doubles again", exp, 4, 800 * time.Millisecond},
		{"fifth hits the cap", exp, 5, time.Second},
		{"stays at the cap", exp, 9, time.Second},
		{"huge attempt does not overflow", exp, 500, time.Second},
		{"attempt zero clamps to one", exp, 0, 100 * time.Millisecond},
		{"negative attempt clamps to one", exp, -3, 100 * time.Millisecond},
		{"cap below base wins", BackoffPolicy{Base: time.Second, Max: 300 * time.Millisecond}, 1, 300 * time.Millisecond},
		{"no cap keeps doubling", BackoffPolicy{Base: time.Millisecond}, 11, 1024 * time.Millisecond},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.policy.Delay(tc.attempt, nil); got != tc.want {
				t.Errorf("Delay(%d) = %v, want %v", tc.attempt, got, tc.want)
			}
		})
	}
}

func TestBackoffJitterBounds(t *testing.T) {
	p := BackoffPolicy{Base: 100 * time.Millisecond, Max: time.Second, Jitter: 0.5}
	rnd := rand.New(rand.NewSource(1))
	for attempt := 1; attempt <= 6; attempt++ {
		full := BackoffPolicy{Base: p.Base, Max: p.Max}.Delay(attempt, nil)
		lo := full - time.Duration(p.Jitter*float64(full))
		seen := map[time.Duration]bool{}
		for i := 0; i < 500; i++ {
			d := p.Delay(attempt, rnd)
			if d < lo || d > full {
				t.Fatalf("attempt %d: jittered delay %v outside [%v, %v]", attempt, d, lo, full)
			}
			seen[d] = true
		}
		if len(seen) < 2 {
			t.Errorf("attempt %d: jitter produced a constant delay", attempt)
		}
	}
}

// TestBackoffResetOnSuccess drives a host through fail-retry-succeed-
// fail cycles and measures the virtual time spent sleeping: after a
// successful update the next failure's schedule must restart at Base,
// not continue doubling.
func TestBackoffResetOnSuccess(t *testing.T) {
	w := newWorld(t, 60)
	w.reconfig(func(c *Config) {
		c.MaxParallelServices = 1
		c.MaxParallelHosts = 1
		c.MaxRetries = 3
		c.Backoff = BackoffPolicy{Base: time.Second, Max: 4 * time.Second}
	})
	const wantSleep = 1*time.Second + 2*time.Second + 4*time.Second

	// Pass 1: the mailhub is unreachable; 3 retries back off 1s, 2s, 4s.
	addr := w.addrs["ATHENA.MIT.EDU"]
	delete(w.addrs, "ATHENA.MIT.EDU")
	stats := w.run()
	if stats.HostSoftFails != 1 || stats.Retries != 3 {
		t.Fatalf("soft=%d retries=%d, want 1/3", stats.HostSoftFails, stats.Retries)
	}
	if got := w.clk.Slept(); got != wantSleep {
		t.Errorf("first failure slept %v, want %v", got, wantSleep)
	}

	// The host recovers; the retry pass succeeds without sleeping.
	w.addrs["ATHENA.MIT.EDU"] = addr
	w.clk.Advance(15 * time.Minute)
	stats = w.run()
	if stats.HostsUpdated != 1 || stats.Retries != 0 {
		t.Fatalf("recovery pass: %+v", stats)
	}
	if got := w.clk.Slept(); got != wantSleep {
		t.Errorf("successful pass slept: total %v, want %v", got, wantSleep)
	}

	// It fails again: the schedule restarts at Base rather than
	// continuing from the cap.
	delete(w.addrs, "ATHENA.MIT.EDU")
	w.clk.Advance(15 * time.Minute)
	w.d.LockExclusive()
	sh, _ := w.d.ServerHost("SMTP", machIDByName(w.d, "ATHENA.MIT.EDU"))
	sh.Override = true
	w.d.NoteUpdate(db.TServerHosts)
	w.d.UnlockExclusive()
	stats = w.run()
	if stats.HostSoftFails != 1 {
		t.Fatalf("second failure pass: %+v", stats)
	}
	if got := w.clk.Slept(); got != 2*wantSleep {
		t.Errorf("second failure slept %v total, want %v (schedule did not reset)", got, 2*wantSleep)
	}
}
