package dcm

import (
	"strings"
	"sync"
	"testing"
	"time"

	"moira/internal/update"
	"moira/internal/workload"
)

// crashCounter is a thread-safe crash-point hook that kills the first n
// connections reaching the given stage.
type crashCounter struct {
	mu    sync.Mutex
	stage string
	left  int
	hits  int
}

func (c *crashCounter) hook(stage string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if stage != c.stage || c.left == 0 {
		return false
	}
	if c.left > 0 {
		c.left--
	}
	c.hits++
	return true
}

func (c *crashCounter) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits
}

// TestCrashMidXferRetriesAndRecovers kills an agent right after the
// data transfer for the first two connections: the parallel push must
// classify the drops as soft failures and recover via in-pass retries.
func TestCrashMidXferRetriesAndRecovers(t *testing.T) {
	cfg := workload.Scaled(120)
	cfg.NFSServers = 4
	w := newWorldCfg(t, cfg)
	crash := &crashCounter{stage: "after-xfer", left: 2}
	w.agents["FS-01.MIT.EDU"].SetCrashPoint(crash.hook)

	stats := w.run()
	if crash.count() != 2 {
		t.Fatalf("crash injected %d times, want 2", crash.count())
	}
	if stats.Retries != 2 {
		t.Errorf("retries = %d, want 2", stats.Retries)
	}
	if stats.HostSoftFails != 0 || stats.HostHardFails != 0 {
		t.Errorf("failures after recovery: %+v", stats)
	}
	if stats.HostsUpdated != len(w.agents) {
		t.Errorf("hosts updated = %d, want %d", stats.HostsUpdated, len(w.agents))
	}
	if w.nfsHosts["FS-01.MIT.EDU"].Installs() != 1 {
		t.Errorf("crashed host installs = %d, want 1", w.nfsHosts["FS-01.MIT.EDU"].Installs())
	}
	// The crash never became a recorded host error.
	w.d.LockShared()
	sh, _ := w.d.ServerHost("NFS", machIDByName(w.d, "FS-01.MIT.EDU"))
	if sh.HostError != 0 || !sh.Success {
		t.Errorf("host row after recovery: %+v", sh)
	}
	w.d.UnlockShared()
}

// TestCrashMidInstallSoftFails kills an agent at the first install
// instruction on every attempt: the pass exhausts its retries, records
// a soft failure (crashes are retried next pass, never hard), and the
// host recovers on the following pass once the fault clears.
func TestCrashMidInstallSoftFails(t *testing.T) {
	cfg := workload.Scaled(120)
	cfg.NFSServers = 4
	w := newWorldCfg(t, cfg)
	agent := w.agents["FS-02.MIT.EDU"]
	crash := &crashCounter{stage: "instr-0", left: -1} // every attempt
	agent.SetCrashPoint(crash.hook)

	stats := w.run()
	if stats.HostSoftFails != 1 {
		t.Fatalf("soft fails = %d (stats %+v)", stats.HostSoftFails, stats)
	}
	if stats.Retries != DefaultMaxRetries {
		t.Errorf("retries = %d, want %d", stats.Retries, DefaultMaxRetries)
	}
	if stats.HostHardFails != 0 {
		t.Errorf("mid-install crash recorded as hard failure: %+v", stats)
	}
	if crash.count() != DefaultMaxRetries+1 {
		t.Errorf("attempts = %d, want %d", crash.count(), DefaultMaxRetries+1)
	}
	w.d.LockShared()
	sh, _ := w.d.ServerHost("NFS", machIDByName(w.d, "FS-02.MIT.EDU"))
	if sh.HostError != 0 {
		t.Error("soft failure set a hard host error")
	}
	if sh.InProgress {
		t.Error("failed host left InProgress")
	}
	if sh.LastSuccess != 0 || sh.LastTry == 0 {
		t.Errorf("lastsuccess/lasttry = %d/%d", sh.LastSuccess, sh.LastTry)
	}
	w.d.UnlockShared()

	// The fault clears; the next pass retries the host and succeeds.
	agent.SetCrashPoint(nil)
	w.clk.Advance(15 * time.Minute)
	stats = w.run()
	if stats.HostsUpdated != 1 || stats.HostSoftFails != 0 {
		t.Errorf("recovery pass: %+v", stats)
	}
	if w.nfsHosts["FS-02.MIT.EDU"].Installs() != 1 {
		t.Errorf("recovered host installs = %d", w.nfsHosts["FS-02.MIT.EDU"].Installs())
	}
}

// TestReplicatedSoftFailureDoesNotAbort crashes one replicated-service
// host persistently: unlike a hard failure, a soft failure (even after
// all retries) must not stop the remaining hosts of the service.
func TestReplicatedSoftFailureDoesNotAbort(t *testing.T) {
	w := newWorld(t, 60)
	crash := &crashCounter{stage: "before-execute", left: -1}
	w.agents["Z-1.MIT.EDU"].SetCrashPoint(crash.hook)

	stats := w.run()
	if stats.HostSoftFails != 1 || stats.HostHardFails != 0 {
		t.Fatalf("failures: %+v", stats)
	}
	w.d.LockShared()
	svc, _ := w.d.ServerByName("ZEPHYR")
	if svc.HardError != 0 {
		t.Error("soft failure hard-errored the replicated service")
	}
	updated := 0
	for _, sh := range w.d.ServerHostsOf("ZEPHYR") {
		if sh.Success {
			updated++
		}
	}
	w.d.UnlockShared()
	if updated != 2 {
		t.Errorf("remaining replicated hosts updated = %d, want 2", updated)
	}
}

// TestReplicatedHardFailureStopsRemainingHosts re-checks the paper's
// ordered abort under the parallel DCM: replicated hosts are pushed in
// order even when the host pool is wide, and a hard failure on the
// first host stops the rest.
func TestReplicatedHardFailureStopsRemainingHosts(t *testing.T) {
	w := newWorld(t, 60)
	w.reconfig(func(c *Config) {
		c.MaxParallelServices = 8
		c.MaxParallelHosts = 16
	})
	// An agent with no registered commands: the install script's exec
	// step returns a script error, a hard failure.
	first := "Z-1.MIT.EDU"
	a := update.NewAgent(first, t.TempDir(), nil)
	addr, err := a.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	w.addrs[first] = addr.String()

	stats := w.run()
	if stats.HostHardFails != 1 {
		t.Fatalf("hard fails = %d (stats %+v)", stats.HostHardFails, stats)
	}
	if stats.Retries != 0 {
		t.Errorf("hard failure was retried %d times", stats.Retries)
	}
	w.d.LockShared()
	svc, _ := w.d.ServerByName("ZEPHYR")
	if svc.HardError == 0 {
		t.Error("replicated service not marked hard-errored")
	}
	failed := machIDByName(w.d, first)
	for _, sh := range w.d.ServerHostsOf("ZEPHYR") {
		if sh.MachID != failed && (sh.Success || sh.LastTry != 0) {
			t.Errorf("replicated host %d pushed after the hard failure", sh.MachID)
		}
	}
	w.d.UnlockShared()

	select {
	case n := <-w.notices.C:
		if !strings.Contains(n.Message, "ZEPHYR") {
			t.Errorf("notice = %q", n.Message)
		}
	default:
		t.Error("no zephyrgram on hard failure")
	}
	if w.numMails() == 0 {
		t.Error("no failure mail sent")
	}
}
