package dcm

import (
	"strings"
	"sync"
	"testing"
	"time"

	"moira/internal/clock"
	"moira/internal/db"
	"moira/internal/hesiod"
	"moira/internal/mailhub"
	"moira/internal/mrerr"
	"moira/internal/nfshost"
	"moira/internal/queries"
	"moira/internal/update"
	"moira/internal/workload"
	"moira/internal/zephyr"
)

// world wires a populated database to real update agents hosting the
// hesiod, NFS, mailhub, and zephyr service simulations.
type world struct {
	t   *testing.T
	d   *db.DB
	clk *clock.Fake

	agents map[string]*update.Agent
	addrs  map[string]string

	hes      *hesiod.Server
	nfsHosts map[string]*nfshost.Host
	hub      *mailhub.Hub
	broker   *zephyr.Broker
	notices  *zephyr.Subscription

	// mu guards mails: the Mail callback now fires from concurrent
	// host workers.
	mu    sync.Mutex
	mails []string

	dcm *DCM
}

func newWorld(t *testing.T, users int) *world {
	return newWorldCfg(t, workload.Scaled(users))
}

func newWorldCfg(t *testing.T, cfg workload.Config) *world {
	t.Helper()
	clk := clock.NewFake(time.Unix(600000000, 0))
	d := queries.NewBootstrappedDB(clk)
	_, hosts, err := workload.Populate(d, cfg)
	if err != nil {
		t.Fatal(err)
	}

	w := &world{
		t: t, d: d, clk: clk,
		agents:   make(map[string]*update.Agent),
		addrs:    make(map[string]string),
		nfsHosts: make(map[string]*nfshost.Host),
		hes:      hesiod.NewServer(),
		hub:      mailhub.NewHub(),
		broker:   zephyr.NewBroker(clk),
	}
	w.notices, err = w.broker.Subscribe("MOIRA", "DCM", "operator")
	if err != nil {
		t.Fatal(err)
	}

	newAgent := func(name string) *update.Agent {
		a := update.NewAgent(name, t.TempDir(), nil)
		addr, err := a.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { a.Close() })
		w.agents[name] = a
		w.addrs[name] = addr.String()
		return a
	}

	for _, h := range hosts.Hesiod {
		hesiod.AttachToAgent(newAgent(h), w.hes)
	}
	for _, h := range hosts.NFS {
		host := nfshost.NewHost(h)
		w.nfsHosts[h] = host
		nfshost.AttachToAgent(newAgent(h), host)
	}
	mailhub.AttachToAgent(newAgent(hosts.Mailhub), w.hub)
	for _, h := range hosts.Zephyr {
		zephyr.AttachToAgent(newAgent(h), w.broker)
	}

	w.dcm = New(Config{
		DB:    d,
		Clock: clk,
		Resolve: func(machine string) (string, bool) {
			addr, ok := w.addrs[machine]
			return addr, ok
		},
		Notify: func(class, instance, msg string) {
			w.broker.Send(class, instance, "dcm", msg)
		},
		Mail: func(subject, body string) {
			w.mu.Lock()
			w.mails = append(w.mails, subject)
			w.mu.Unlock()
		},
		PushTimeout: 5 * time.Second,
	})
	return w
}

// reconfig rebuilds the world's DCM with tweaks applied to its config
// (worker-pool sizes, retry counts, backoff schedules).
func (w *world) reconfig(fn func(*Config)) {
	cfg := w.dcm.cfg
	fn(&cfg)
	w.dcm = New(cfg)
}

// numMails reads the mail count under the lock.
func (w *world) numMails() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.mails)
}

func (w *world) run() *CycleStats {
	w.t.Helper()
	stats, err := w.dcm.RunOnce()
	if err != nil {
		w.t.Fatal(err)
	}
	return stats
}

func TestFirstPassPropagatesEverything(t *testing.T) {
	w := newWorld(t, 120)
	stats := w.run()

	if stats.Generated != 4 {
		t.Errorf("generated = %d services, want 4 (HESIOD NFS SMTP ZEPHYR)", stats.Generated)
	}
	wantHosts := len(w.agents)
	if stats.HostsUpdated != wantHosts {
		t.Errorf("hosts updated = %d, want %d", stats.HostsUpdated, wantHosts)
	}
	if stats.HostHardFails != 0 || stats.HostSoftFails != 0 {
		t.Errorf("failures: %+v", stats)
	}

	// The hesiod server is serving propagated data.
	if w.hes.NumRecords() == 0 {
		t.Fatal("hesiod server has no records")
	}
	w.d.LockShared()
	var anyUser *db.User
	w.d.EachUser(func(u *db.User) bool {
		if u.Status == db.UserActive && u.PoType == db.PoboxPOP {
			anyUser = u
			return false
		}
		return true
	})
	w.d.UnlockShared()
	vals, ok := w.hes.Resolve(anyUser.Login + ".passwd")
	if !ok || !strings.HasPrefix(vals[0], anyUser.Login+":*:") {
		t.Errorf("hesiod passwd lookup = %v, %v", vals, ok)
	}
	// uid CNAME chases to the passwd record.
	uidName := strings.Split(vals[0], ":")[2]
	if chased, ok := w.hes.Resolve(uidName + ".uid"); !ok || chased[0] != vals[0] {
		t.Errorf("uid CNAME chase = %v, %v", chased, ok)
	}

	// NFS hosts applied credentials, quotas, and created lockers.
	for name, host := range w.nfsHosts {
		if host.NumCredentials() == 0 {
			t.Errorf("%s: no credentials", name)
		}
		if host.NumLockers() == 0 {
			t.Errorf("%s: no lockers created", name)
		}
		if host.Installs() == 0 {
			t.Errorf("%s: installer never ran", name)
		}
	}
	if c, ok := w.nfsHosts["FS-01.MIT.EDU"].CredentialOf(anyUser.Login); !ok || c.UID != anyUser.UID {
		t.Errorf("credentials for %s = %+v, %v", anyUser.Login, c, ok)
	}

	// The mailhub performed the controlled aliases switchover.
	if w.hub.Swaps() != 1 {
		t.Errorf("aliases swaps = %d", w.hub.Swaps())
	}
	if !w.hub.SpoolUp() {
		t.Error("mail spool left down")
	}
	log := w.hub.SpoolLog()
	if len(log) < 3 || log[0] != "spool-down" || log[len(log)-1] != "spool-up" {
		t.Errorf("spool log = %v", log)
	}
	got := w.hub.Resolve(anyUser.Login)
	if len(got) != 1 || !strings.Contains(got[0], "@ATHENA-PO-") {
		t.Errorf("mailhub resolve(%s) = %v", anyUser.Login, got)
	}
	if _, ok := w.hub.Finger(anyUser.Login); !ok {
		t.Error("mailhub finger does not know the user")
	}

	// Zephyr ACLs are live: a zephyr-operators member may send, others
	// may not.
	w.d.LockShared()
	ops, _ := w.d.ListByName("zephyr-operators")
	var operator string
	for _, m := range w.d.MembersOf(ops.ListID) {
		if u, ok := w.d.UserByID(m.MemberID); ok {
			operator = u.Login
			break
		}
	}
	w.d.UnlockShared()
	if err := w.broker.Send("CLASS-2", "X", operator, "hello"); err != nil {
		t.Errorf("%s send on CLASS-2: %v", operator, err)
	}
	if err := w.broker.Send("CLASS-2", "X", "randomuser", "hello"); err != mrerr.MrPerm {
		t.Errorf("unauthorized zephyr send err = %v", err)
	}
}

func TestSecondPassIsIdle(t *testing.T) {
	w := newWorld(t, 60)
	w.run()
	// Within every interval: services not due, no host work.
	w.clk.Advance(10 * time.Minute)
	stats := w.run()
	if stats.Generated != 0 || stats.HostsUpdated != 0 || stats.NoChange != 0 {
		t.Errorf("idle pass did work: %+v", stats)
	}
}

func TestNoChangeCycle(t *testing.T) {
	w := newWorld(t, 60)
	w.run()
	// Past the hesiod interval with no data changes: the generator is
	// consulted but reports MR_NO_CHANGE, and no hosts are updated.
	w.clk.Advance(7 * time.Hour)
	stats := w.run()
	if stats.NoChange == 0 {
		t.Errorf("expected no-change generations: %+v", stats)
	}
	if stats.Generated != 0 || stats.HostsUpdated != 0 {
		t.Errorf("no-change pass still propagated: %+v", stats)
	}
	// dfcheck advanced: the next pass inside the interval does nothing.
	w.clk.Advance(10 * time.Minute)
	stats = w.run()
	if stats.NoChange != 0 && stats.Generated != 0 {
		t.Errorf("dfcheck not updated: %+v", stats)
	}
}

func TestChangePropagatesAfterInterval(t *testing.T) {
	w := newWorld(t, 60)
	w.run()

	// An administrative change lands in the database some time later.
	w.clk.Advance(time.Minute)
	priv := &queries.Context{DB: w.d, Privileged: true, App: "test"}
	if err := queries.Execute(priv, "add_user",
		[]string{"freshman", "-1", "/bin/csh", "Fresh", "Person", "", "1", "", "1992"},
		func([]string) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if _, ok := w.hes.Resolve("freshman.passwd"); ok {
		t.Fatal("change visible before propagation")
	}

	// The hesiod interval (6h) elapses; the DCM regenerates and pushes.
	w.clk.Advance(6*time.Hour + time.Minute)
	stats := w.run()
	if stats.Generated == 0 {
		t.Fatalf("nothing regenerated: %+v", stats)
	}
	if _, ok := w.hes.Resolve("freshman.passwd"); !ok {
		t.Error("change did not reach hesiod (the paper's 6-hour lag)")
	}
}

func TestOverrideSkipsInterval(t *testing.T) {
	w := newWorld(t, 60)
	w.run()
	// Mark one hesiod host for immediate update.
	w.d.LockExclusive()
	sh := w.d.ServerHostsOf("HESIOD")[0]
	sh.Override = true
	w.d.NoteUpdate(db.TServerHosts)
	w.d.UnlockExclusive()

	w.clk.Advance(time.Minute) // far inside the 6h interval
	stats := w.run()
	if stats.HostsUpdated != 1 {
		t.Errorf("override host not updated: %+v", stats)
	}
	// Override clears after the successful update.
	w.d.LockShared()
	if w.d.ServerHostsOf("HESIOD")[0].Override {
		t.Error("override flag not cleared")
	}
	w.d.UnlockShared()
}

func TestSoftFailureRetries(t *testing.T) {
	w := newWorld(t, 60)
	// Make the mailhub unreachable.
	delete(w.addrs, "ATHENA.MIT.EDU")
	stats := w.run()
	if stats.HostSoftFails != 1 {
		t.Fatalf("soft fails = %d", stats.HostSoftFails)
	}
	w.d.LockShared()
	sh, _ := w.d.ServerHost("SMTP", machIDByName(w.d, "ATHENA.MIT.EDU"))
	if sh.HostError != 0 {
		t.Error("soft failure set a hard error")
	}
	if sh.LastTry == 0 || sh.LastSuccess != 0 {
		t.Errorf("lasttry/lastsuccess = %d/%d", sh.LastTry, sh.LastSuccess)
	}
	w.d.UnlockShared()

	// The host comes back; the next pass (still before the interval —
	// lastsuccess < dfgen forces the retry) succeeds.
	a := w.agents["ATHENA.MIT.EDU"]
	w.addrs["ATHENA.MIT.EDU"] = a.Addr().String()
	w.clk.Advance(15 * time.Minute)
	stats = w.run()
	if stats.HostsUpdated != 1 {
		t.Errorf("retry pass: %+v", stats)
	}
	if w.hub.Swaps() != 1 {
		t.Errorf("mailhub swaps = %d", w.hub.Swaps())
	}
}

func TestHardFailureNotifiesAndStops(t *testing.T) {
	w := newWorld(t, 60)
	// Break the zephyr service's installation script on every host by
	// unregistering the reload command on the first server: pushing to
	// it hits an unknown exec command, a hard error. ZEPHYR is
	// replicated, so remaining hosts must be skipped and the service
	// marked hard-errored.
	first := "Z-1.MIT.EDU"
	a := update.NewAgent(first, t.TempDir(), nil) // no commands registered
	addr, err := a.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	w.addrs[first] = addr.String()

	stats := w.run()
	if stats.HostHardFails != 1 {
		t.Fatalf("hard fails = %d (stats %+v)", stats.HostHardFails, stats)
	}
	w.d.LockShared()
	svc, _ := w.d.ServerByName("ZEPHYR")
	if svc.HardError == 0 {
		t.Error("replicated service not marked hard-errored")
	}
	sh, _ := w.d.ServerHost("ZEPHYR", machIDByName(w.d, first))
	if sh.HostError == 0 {
		t.Error("host not marked hard-errored")
	}
	// The other zephyr hosts were skipped.
	for _, other := range w.d.ServerHostsOf("ZEPHYR") {
		if other.MachID != sh.MachID && other.Success {
			t.Error("replicated service continued after hard failure")
		}
	}
	w.d.UnlockShared()

	// Zephyrgram and mail were sent.
	select {
	case n := <-w.notices.C:
		if !strings.Contains(n.Message, "ZEPHYR") {
			t.Errorf("notice = %q", n.Message)
		}
	default:
		t.Error("no zephyrgram on hard failure")
	}
	if w.numMails() == 0 {
		t.Error("no failure mail sent")
	}

	// Hard-errored services are skipped until reset.
	w.clk.Advance(25 * time.Hour)
	stats = w.run()
	w.d.LockShared()
	svcAfter, _ := w.d.ServerByName("ZEPHYR")
	w.d.UnlockShared()
	if svcAfter.HardError == 0 {
		t.Error("hard error cleared without reset_server_error")
	}

	// reset_server_error re-enables the service.
	priv := &queries.Context{DB: w.d, Privileged: true, App: "test"}
	if err := queries.Execute(priv, "reset_server_error", []string{"ZEPHYR"},
		func([]string) error { return nil }); err != nil {
		t.Fatal(err)
	}
	// Fix the broken host.
	zephyr.AttachToAgent(a, w.broker)
	priv2 := &queries.Context{DB: w.d, Privileged: true, App: "test"}
	if err := queries.Execute(priv2, "reset_server_host_error", []string{"ZEPHYR", first},
		func([]string) error { return nil }); err != nil {
		t.Fatal(err)
	}
	w.clk.Advance(25 * time.Hour)
	stats = w.run()
	if stats.HostHardFails != 0 {
		t.Errorf("after reset: %+v", stats)
	}
}

func TestDCMDisable(t *testing.T) {
	w := newWorld(t, 30)
	// dcm_enable off.
	w.d.LockExclusive()
	w.d.SetValue("dcm_enable", 0)
	w.d.UnlockExclusive()
	if _, err := w.dcm.RunOnce(); err != mrerr.MrDCMDisabled {
		t.Errorf("dcm_enable=0 err = %v", err)
	}
	w.d.LockExclusive()
	w.d.SetValue("dcm_enable", 1)
	w.d.UnlockExclusive()
	if _, err := w.dcm.RunOnce(); err != nil {
		t.Errorf("re-enabled err = %v", err)
	}
}

func TestDisableFile(t *testing.T) {
	w := newWorld(t, 30)
	dir := t.TempDir()
	w.dcm.cfg.DisablePath = dir // any existing path disables
	if _, err := w.dcm.RunOnce(); err != mrerr.MrDCMDisabled {
		t.Errorf("nodcm file err = %v", err)
	}
	w.dcm.cfg.DisablePath = dir + "/nonexistent"
	if _, err := w.dcm.RunOnce(); err != nil {
		t.Errorf("no nodcm file err = %v", err)
	}
}

func machIDByName(d *db.DB, name string) int {
	m, ok := d.MachineByName(name)
	if !ok {
		return -1
	}
	return m.MachID
}

// TestInProgressServiceSkipped: a service another DCM instance is
// already generating (InProgress set) must be skipped, not raced.
func TestInProgressServiceSkipped(t *testing.T) {
	w := newWorld(t, 40)
	w.d.LockExclusive()
	svc, _ := w.d.ServerByName("HESIOD")
	svc.InProgress = true
	w.d.NoteUpdateInternal(db.TServers)
	w.d.UnlockExclusive()

	stats := w.run()
	// HESIOD skipped; the other three services still ran.
	if stats.Generated != 3 {
		t.Errorf("generated = %d, want 3 (HESIOD locked out)", stats.Generated)
	}
	if w.hes.NumRecords() != 0 {
		t.Error("locked service was generated anyway")
	}
	// Release the lock; the next pass picks it up.
	w.d.LockExclusive()
	svc.InProgress = false
	w.d.NoteUpdateInternal(db.TServers)
	w.d.UnlockExclusive()
	stats = w.run()
	if stats.Generated != 1 {
		t.Errorf("after unlock: generated = %d", stats.Generated)
	}
	if w.hes.NumRecords() == 0 {
		t.Error("unlocked service never propagated")
	}
}

// TestDisabledHostSkipped: hosts with enable=0 are never updated.
func TestDisabledHostSkipped(t *testing.T) {
	w := newWorld(t, 40)
	w.d.LockExclusive()
	sh := w.d.ServerHostsOf("ZEPHYR")[0]
	sh.Enable = false
	m, _ := w.d.MachineByID(sh.MachID)
	w.d.NoteUpdate(db.TServerHosts)
	w.d.UnlockExclusive()

	stats := w.run()
	if stats.HostHardFails+stats.HostSoftFails != 0 {
		t.Fatalf("failures: %+v", stats)
	}
	w.d.LockShared()
	defer w.d.UnlockShared()
	got, _ := w.d.ServerHost("ZEPHYR", m.MachID)
	if got.Success || got.LastTry != 0 {
		t.Errorf("disabled host was touched: %+v", got)
	}
}
