// Package dcm implements the Data Control Manager (section 5.7): the
// program responsible for distributing information to servers. Invoked
// regularly (cron in the original; a loop or trigger here), it scans the
// services table, regenerates server-specific files for services whose
// update interval has elapsed — skipping cheaply when nothing in the
// database changed — and pushes the files to each server host over the
// update protocol, tracking per-service and per-host success, soft
// failures (retried later), and hard failures (zephyrgram + mail, and
// for replicated services a stop on further host updates).
package dcm

import (
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"moira/internal/clock"
	"moira/internal/db"
	"moira/internal/extract"
	"moira/internal/gen"
	"moira/internal/kerberos"
	"moira/internal/mrerr"
	"moira/internal/stats"
	"moira/internal/trace"
	"moira/internal/update"
)

// ScriptBuilder produces the installation instruction sequence for one
// host of a service. destDir is the service record's script field, which
// this implementation uses as the installation directory on the host.
type ScriptBuilder func(s *db.Server, host string, data []byte) []string

// Config configures a DCM.
type Config struct {
	DB    *db.DB
	Clock clock.Clock

	// Generators maps service name to generator; defaults to
	// gen.Registry.
	Generators map[string]gen.Func

	// Tables maps service name to the relations its extract reads, for
	// the no-change sequence check that replaced the generators'
	// internal short-circuit; defaults to gen.Tables. Services absent
	// from the map regenerate on every due pass.
	Tables map[string][]string

	// Incremental turns on journal-delta extraction: per-service keyed
	// models patched from the durable journal instead of full rebuilds.
	// Services without an entry in Incrementals still rebuild fully.
	Incremental bool

	// Incrementals maps service name to its keyed generator; defaults
	// to gen.Incrementals. Only consulted when Incremental is set.
	Incrementals map[string]*gen.Incremental

	// Journal is the durable journal the delta planner reads; nil
	// degrades every incremental decision to the sequence check.
	Journal *db.JournalWriter

	// FullEvery forces a full rebuild every N generating passes per
	// service even when deltas would do, bounding drift; 0 disables.
	FullEvery int

	// WholeFilePush forces whole-file transfers, disabling the
	// content-chunked diff transport. The zero value pushes chunk diffs
	// (agents that do not speak the chunk ops downgrade per host).
	WholeFilePush bool

	// ExtractDB, when non-nil, is the database the generators read
	// from — typically a caught-up read replica, so extraction passes
	// stop competing with mutations for the primary's lock. All
	// bookkeeping (claiming, flags, genseq) stays on DB. The stored
	// genseq remains coherent because Result.Seq is computed against
	// the same database the generator read, and a lagging replica only
	// makes no-change detection conservative (regenerating data that
	// did change is harmless; skipping data that did is not possible,
	// since the seq the replica reports can only trail the primary's).
	ExtractDB *db.DB

	// Scripts maps service name to its install-script builder; defaults
	// to DefaultScripts.
	Scripts map[string]ScriptBuilder

	// Resolve returns the update-agent address for a canonical machine
	// name. Hosts that do not resolve get a soft failure.
	Resolve func(machine string) (string, bool)

	// Creds supplies credentials authenticating the DCM to the update
	// agents; it is called once per pass, since a cron-driven DCM gets a
	// fresh ticket each invocation rather than holding one across runs.
	// nil works only against agents without verifiers (tests).
	Creds func() *kerberos.Credentials

	// Notify sends a zephyrgram; hard errors go to class MOIRA instance
	// DCM. nil discards.
	Notify func(class, instance, message string)

	// Mail sends failure mail to the maintainers. nil discards.
	Mail func(subject, body string)

	// Logf logs progress. nil discards.
	Logf func(format string, args ...any)

	// DisablePath is the equivalent of /etc/nodcm: if the file exists,
	// the DCM exits quietly.
	DisablePath string

	// PushTimeout bounds each host update attempt.
	PushTimeout time.Duration

	// MaxParallelServices bounds how many service cycles run
	// concurrently in one pass; 0 means DefaultMaxParallelServices,
	// 1 runs the pass fully sequentially.
	MaxParallelServices int

	// MaxParallelHosts bounds concurrent host pushes within one
	// service. Replicated services ignore it: the paper's semantics —
	// hosts updated in order, a hard failure stops the remaining
	// hosts — require a sequential scan. 0 means
	// DefaultMaxParallelHosts.
	MaxParallelHosts int

	// MaxRetries is how many times a soft-failing host push is retried
	// within the same pass (with backoff) before being recorded as a
	// soft failure for the next pass. 0 means DefaultMaxRetries;
	// negative disables in-pass retries.
	MaxRetries int

	// Backoff is the retry delay schedule; the zero value means
	// DefaultBackoff.
	Backoff BackoffPolicy

	// BackoffSeed seeds the jitter source so tests can pin the
	// schedule; 0 means a fixed default seed.
	BackoffSeed int64

	// Stats, when set, receives cumulative dcm.* series (pass counts,
	// host outcomes, bytes, push latency) folded in at the end of every
	// pass; per-pass numbers stay in CycleStats.
	Stats *stats.Registry

	// Tracer, when set, records a span per pass (dcm.pass), per service
	// cycle (dcm.cycle), and per host push (dcm.push), all linked under
	// the triggering request's trace ID; the push span rides the update
	// protocol to the agent, so one trace reaches the installed host.
	Tracer *trace.Tracer
}

// Worker-pool and retry defaults, used when the Config fields are zero.
const (
	DefaultMaxParallelServices = 4
	DefaultMaxParallelHosts    = 8
	DefaultMaxRetries          = 2
)

// DCM is a data control manager instance.
type DCM struct {
	cfg     Config
	clk     clock.Clock
	rnd     *lockedRand
	planner *extract.Planner

	// scratchMu guards scratch; each service's bundle buffers are only
	// touched by that service's (serialized) cycles.
	scratchMu sync.Mutex
	scratch   map[string]*gen.Scratch
}

// New creates a DCM.
func New(cfg Config) *DCM {
	if cfg.Clock == nil {
		cfg.Clock = clock.System
	}
	if cfg.Generators == nil {
		cfg.Generators = gen.Registry
	}
	if cfg.Tables == nil {
		cfg.Tables = gen.Tables
	}
	if cfg.Incrementals == nil {
		cfg.Incrementals = gen.Incrementals
	}
	if cfg.Scripts == nil {
		cfg.Scripts = DefaultScripts
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.PushTimeout == 0 {
		cfg.PushTimeout = 30 * time.Second
	}
	if cfg.Backoff.zero() {
		cfg.Backoff = DefaultBackoff
	}
	m := &DCM{
		cfg: cfg, clk: cfg.Clock, rnd: newLockedRand(cfg.BackoffSeed),
		scratch: map[string]*gen.Scratch{},
	}
	if cfg.Incremental {
		d := cfg.DB
		if cfg.ExtractDB != nil {
			d = cfg.ExtractDB
		}
		m.planner = extract.NewPlanner(d, cfg.Journal, cfg.FullEvery)
	}
	return m
}

// Planner exposes the delta planner for monitoring; nil when the DCM is
// not running incrementally.
func (m *DCM) Planner() *extract.Planner { return m.planner }

// scratchFor returns the service's recycled bundle buffers. Safe
// because claimService serializes a service's cycles: the previous
// pass's bundles are fully pushed before the next render reuses them.
func (m *DCM) scratchFor(name string) *gen.Scratch {
	m.scratchMu.Lock()
	defer m.scratchMu.Unlock()
	s, ok := m.scratch[name]
	if !ok {
		s = gen.NewScratch()
		m.scratch[name] = s
	}
	return s
}

// extractDB is the database generation passes read.
func (m *DCM) extractDB() *db.DB {
	if m.cfg.ExtractDB != nil {
		return m.cfg.ExtractDB
	}
	return m.cfg.DB
}

// incrementalFor returns the keyed generator the planner should drive
// for a service, or nil when the service regenerates fully.
func (m *DCM) incrementalFor(name string) *gen.Incremental {
	if m.planner == nil {
		return nil
	}
	return m.cfg.Incrementals[name]
}

func (m *DCM) maxParallelServices() int {
	if m.cfg.MaxParallelServices <= 0 {
		return DefaultMaxParallelServices
	}
	return m.cfg.MaxParallelServices
}

func (m *DCM) maxParallelHosts() int {
	if m.cfg.MaxParallelHosts <= 0 {
		return DefaultMaxParallelHosts
	}
	return m.cfg.MaxParallelHosts
}

func (m *DCM) maxRetries() int {
	switch {
	case m.cfg.MaxRetries < 0:
		return 0
	case m.cfg.MaxRetries == 0:
		return DefaultMaxRetries
	default:
		return m.cfg.MaxRetries
	}
}

// DefaultScripts builds installation scripts for the standard services.
// The service record's script field names the installation directory on
// the target host.
var DefaultScripts = map[string]ScriptBuilder{
	"HESIOD": func(s *db.Server, host string, data []byte) []string {
		return gen.HesiodInstallScript(s.TargetFile, s.Script)
	},
	"NFS": func(s *db.Server, host string, data []byte) []string {
		parts := partitionsInBundle(data)
		return gen.NFSInstallScript(s.TargetFile, s.Script, parts)
	},
	"SMTP": func(s *db.Server, host string, data []byte) []string {
		return gen.MailInstallScript(s.TargetFile, s.Script)
	},
	"ZEPHYR": func(s *db.Server, host string, data []byte) []string {
		names, _ := update.ListTar(data)
		var acls []string
		for _, n := range names {
			if strings.HasSuffix(n, ".acl") {
				acls = append(acls, n)
			}
		}
		return gen.ZephyrInstallScript(s.TargetFile, s.Script, acls)
	},
}

// partitionsInBundle recovers the partition list from an NFS bundle's
// member names (<base>.quotas).
func partitionsInBundle(data []byte) []string {
	names, err := update.ListTar(data)
	if err != nil {
		return nil
	}
	var parts []string
	for _, n := range names {
		if base, ok := strings.CutSuffix(n, ".quotas"); ok {
			parts = append(parts, "/"+strings.ReplaceAll(base, "_", "/"))
		}
	}
	return parts
}

// serviceSnapshot is a copy of the service row taken under the lock.
type serviceSnapshot struct {
	db.Server
}

// RunOnce performs one complete DCM pass: the service scan and the host
// scan of section 5.7.1. Independent service cycles run concurrently on
// a bounded worker pool (the in-process analogue of the original's
// fork-per-server), so one slow or unreachable service cannot stall the
// whole distribution pass.
func (m *DCM) RunOnce() (*CycleStats, error) {
	return m.RunOnceTraced("")
}

// RunOnceTraced is RunOnce carrying the trace ID of the request that
// triggered the pass; it is threaded into the pass's log lines so a
// client-issued trace can be followed from query to host install.
func (m *DCM) RunOnceTraced(trace string) (*CycleStats, error) {
	// On startup the DCM first checks for the disable file.
	if m.cfg.DisablePath != "" {
		if _, err := os.Stat(m.cfg.DisablePath); err == nil {
			return nil, mrerr.MrDCMDisabled
		}
	}
	d := m.cfg.DB
	started := time.Now()

	// Then it retrieves dcm_enable from the values relation.
	d.LockShared()
	enable, err := d.GetValue("dcm_enable")
	d.UnlockShared()
	if err != nil || enable == 0 {
		m.cfg.Logf("dcm: dcm_enable is off; exiting")
		return nil, mrerr.MrDCMDisabled
	}

	// The pass span carries the triggering request's trace ID when there
	// is one; a cron-driven pass mints its own trace.
	sp := m.cfg.Tracer.Start(trace, "", "dcm.pass")
	defer sp.End()

	stats := &CycleStats{Trace: trace}

	// Snapshot the services table.
	var services []serviceSnapshot
	d.LockShared()
	d.EachServer(func(s *db.Server) bool {
		services = append(services, serviceSnapshot{*s})
		return true
	})
	d.UnlockShared()

	sem := make(chan struct{}, m.maxParallelServices())
	var wg sync.WaitGroup
	for _, snap := range services {
		stats.add(func(s *CycleStats) { s.ServicesScanned++ })
		// Initial filter: enabled, no hard errors, non-zero interval,
		// and a generator module exists.
		generator := m.cfg.Generators[snap.Name]
		if !snap.Enable || snap.HardError != 0 || snap.UpdateInt == 0 || generator == nil {
			continue
		}
		if snap.InProgress {
			m.cfg.Logf("dcm: %s: update already in progress, skipping", snap.Name)
			continue
		}
		stats.add(func(s *CycleStats) { s.ServicesDue++ })
		snap := snap
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			m.serviceCycle(&snap, generator, stats, sp)
		}()
	}
	wg.Wait()
	stats.publish(m.cfg.Stats, time.Since(started))
	m.publishDeltaGauges(services)
	m.cfg.Logf("dcm: pass complete:%s %s", traceSuffix(trace), stats.Summary())
	return stats, nil
}

// publishDeltaGauges exports the planner's per-service position and
// backlog after a pass, so moirastat can show where each service's
// extract stands relative to the journal head.
func (m *DCM) publishDeltaGauges(services []serviceSnapshot) {
	reg := m.cfg.Stats
	if reg == nil || m.planner == nil {
		return
	}
	for _, snap := range services {
		if m.incrementalFor(snap.Name) == nil {
			continue
		}
		st := m.planner.Status(snap.Name)
		reg.Gauge("dcm.delta.pos.seg." + snap.Name).Set(st.Pos.Seg)
		reg.Gauge("dcm.delta.pos.idx." + snap.Name).Set(st.Pos.Idx)
		reg.Gauge("dcm.delta.backlog." + snap.Name).Set(int64(st.Backlog))
		reg.Gauge("dcm.delta.lastmode." + snap.Name).Set(int64(st.Mode))
	}
}

// traceSuffix formats a trace ID for appending to a log line; empty
// traces render as nothing.
func traceSuffix(trace string) string {
	if trace == "" {
		return ""
	}
	return " trace=" + trace
}

// serviceCycle regenerates one service's files if due, then scans its
// hosts.
func (m *DCM) serviceCycle(snap *serviceSnapshot, generator gen.Func, stats *CycleStats, passSpan *trace.Span) {
	now := m.clk.Now().Unix()
	name := snap.Name

	csp := passSpan.Child("dcm.cycle")
	csp.SetDetail(name)
	defer csp.End()

	var result *gen.Result

	genDue := now >= snap.DFCheck+int64(snap.UpdateInt)*60
	if genDue {
		// Claim the service atomically: if a concurrent pass (or
		// another DCM instance) set InProgress since our snapshot, it
		// owns this cycle and we back off.
		if !m.claimService(name) {
			m.cfg.Logf("dcm: %s: claimed by a concurrent pass, skipping", name)
			return
		}
		res, plan, err := m.generate(name, generator, csp)
		switch {
		case err == nil && res != nil:
			result = res
			stats.add(func(s *CycleStats) {
				s.Generated++
				s.FilesGenerated += res.NumFiles
				s.BytesGenerated += res.TotalBytes
				if plan.Mode == extract.ModeDelta {
					s.DeltaBuilds++
				} else {
					s.FullBuilds++
					if fallbackReason(plan.Reason) {
						s.Fallbacks++
					}
				}
				s.DeltaRecords += plan.Records
				s.DeltaKeys += plan.Keys
			})
			m.finishGeneration(name, now, plan)
			snap.DFGen, snap.DFCheck = now, now
			if plan.Mode == extract.ModeDelta {
				m.cfg.Logf("dcm: %s: delta pass: %d journal records -> %d keys, %d files (%d bytes)",
					name, plan.Records, plan.Keys, res.NumFiles, res.TotalBytes)
			} else {
				m.cfg.Logf("dcm: %s: full build (%s): %d files (%d bytes)",
					name, fullReason(plan.Reason), res.NumFiles, res.TotalBytes)
			}
		case err == nil:
			// The planner (or the sequence check) proved nothing the
			// extract reads has changed: a no-op pass, zero generator
			// work. The position still advances past any consumed
			// records that proved irrelevant.
			stats.add(func(s *CycleStats) {
				s.NoChange++
				s.NoopPasses++
				s.DeltaRecords += plan.Records
			})
			m.setServiceFlags(name, func(s *db.Server) {
				s.DFCheck = now
				s.InProgress = false
			})
			m.commitPlan(name, plan)
			snap.DFCheck = now
			m.cfg.Logf("dcm: %s: no change", name)
		default:
			// Hard generation error: record and zephyr-notify.
			stats.add(func(s *CycleStats) { s.GenHardErrors++ })
			code := int(mrerr.CodeOf(err))
			msg := err.Error()
			m.setServiceFlags(name, func(s *db.Server) {
				s.HardError = code
				s.ErrMsg = msg
				s.InProgress = false
			})
			m.notify(fmt.Sprintf("service %s: file generation failed: %s", name, msg))
			return
		}
	}

	// Host scan: runs for every service that passed the initial check,
	// regardless of whether it was time to build data files.
	hosts := m.hostsNeedingUpdate(snap)
	if len(hosts) == 0 {
		return
	}
	// Updates are needed but this pass produced no files (the service
	// was not due, or nothing changed): regenerate unconditionally. The
	// data files are valid; extra generations are not harmful — and on
	// the incremental path this renders the planner's cached model
	// rather than rebuilding.
	if result == nil {
		res, err := m.regenForHosts(name, generator)
		if err != nil {
			m.cfg.Logf("dcm: %s: regeneration for host updates failed: %v", name, err)
			return
		}
		result = res
	}

	// Replicated services keep the paper's ordered scan: every host
	// carries the same data, and a hard failure must stop updates to the
	// remaining hosts at a well-defined point rather than leaving an
	// arbitrary subset updated. Unique services push their hosts
	// concurrently on a bounded pool — each host holds different data,
	// so failures are independent.
	if snap.Type == db.ServiceReplicated {
		for _, h := range hosts {
			if !m.updateHost(snap, h, result, stats, csp) {
				// A hard failure on a replicated service stops updates
				// to the service's remaining hosts.
				break
			}
		}
		return
	}

	sem := make(chan struct{}, m.maxParallelHosts())
	var wg sync.WaitGroup
	for _, h := range hosts {
		h := h
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			m.updateHost(snap, h, result, stats, csp)
		}()
	}
	wg.Wait()
}

type hostSnapshot struct {
	machID int
	name   string
}

// hostsNeedingUpdate lists the enabled hosts without hard errors that
// have not been updated since the data files were generated (or have
// override set).
func (m *DCM) hostsNeedingUpdate(snap *serviceSnapshot) []hostSnapshot {
	d := m.cfg.DB
	d.LockShared()
	defer d.UnlockShared()
	var out []hostSnapshot
	for _, sh := range d.ServerHostsOf(snap.Name) {
		if !sh.Enable || sh.HostError != 0 || sh.InProgress {
			continue
		}
		if sh.LastSuccess >= snap.DFGen && !sh.Override {
			continue
		}
		if mach, ok := d.MachineByID(sh.MachID); ok {
			out = append(out, hostSnapshot{machID: sh.MachID, name: mach.Name})
		}
	}
	return out
}

// updateHost pushes the service's files to one host, retrying soft
// failures within the pass under the backoff policy. It returns false
// on a hard failure (the replicated-service abort signal).
func (m *DCM) updateHost(snap *serviceSnapshot, h hostSnapshot, result *gen.Result, stats *CycleStats, csp *trace.Span) bool {
	name := snap.Name
	stats.add(func(s *CycleStats) { s.HostsConsidered++ })
	data := result.Common
	if data == nil {
		data = result.PerHost[h.name]
	}
	if data == nil {
		m.cfg.Logf("dcm: %s: no bundle for host %s", name, h.name)
		return true
	}

	if !m.claimHost(snap, h.machID) {
		// A concurrent worker claimed (or already finished) this host
		// between the eligibility scan and now; pushing again would
		// double-update it.
		stats.add(func(s *CycleStats) { s.HostsSkippedBusy++ })
		m.cfg.Logf("dcm: %s: %s claimed by a concurrent pass, skipping", name, h.name)
		return true
	}

	pushErr := m.pushOnce(snap, h, data, stats, csp)
	for attempt := 1; pushErr != nil && update.IsSoftError(pushErr) && attempt <= m.maxRetries(); attempt++ {
		delay := m.rnd.delay(m.cfg.Backoff, attempt)
		m.cfg.Logf("dcm: %s: soft failure on %s: %v (retry %d in %v)%s",
			name, h.name, pushErr, attempt, delay, traceSuffix(stats.Trace))
		stats.add(func(s *CycleStats) { s.Retries++ })
		clock.Sleep(m.clk, delay)
		pushErr = m.pushOnce(snap, h, data, stats, csp)
	}
	now := m.clk.Now().Unix()

	switch {
	case pushErr == nil:
		stats.add(func(s *CycleStats) {
			s.HostsUpdated++
			s.FilesPropagated += result.NumFiles
			s.BytesPropagated += len(data)
		})
		m.setHostFlags(name, h.machID, func(sh *db.ServerHost) {
			sh.Success = true
			sh.Override = false
			sh.InProgress = false
			sh.LastTry, sh.LastSuccess = now, now
			sh.HostError, sh.HostErrMsg = 0, ""
		})
		m.cfg.Logf("dcm: %s: updated %s%s", name, h.name, traceSuffix(stats.Trace))
		return true

	case update.IsSoftError(pushErr):
		stats.add(func(s *CycleStats) { s.HostSoftFails++ })
		msg := pushErr.Error()
		m.setHostFlags(name, h.machID, func(sh *db.ServerHost) {
			sh.InProgress = false
			sh.LastTry = now
			sh.HostErrMsg = msg
		})
		m.cfg.Logf("dcm: %s: soft failure on %s: %s (will retry next pass)%s", name, h.name, msg, traceSuffix(stats.Trace))
		return true

	default:
		stats.add(func(s *CycleStats) { s.HostHardFails++ })
		code := int(mrerr.CodeOf(pushErr))
		msg := pushErr.Error()
		m.setHostFlags(name, h.machID, func(sh *db.ServerHost) {
			sh.InProgress = false
			sh.Success = false
			sh.LastTry = now
			sh.HostError = code
			sh.HostErrMsg = msg
		})
		m.notify(fmt.Sprintf("service %s host %s: update failed: %s%s", name, h.name, msg, traceSuffix(stats.Trace)))
		if m.cfg.Mail != nil {
			m.cfg.Mail(
				fmt.Sprintf("DCM hard failure: %s on %s", name, h.name),
				fmt.Sprintf("updating %s on %s failed with: %s", name, h.name, msg))
		}
		if snap.Type == db.ServiceReplicated {
			m.setServiceFlags(name, func(s *db.Server) {
				s.HardError = code
				s.ErrMsg = msg
			})
		}
		return false
	}
}

// pushOnce performs a single update attempt against one host and
// records its wall-clock latency.
func (m *DCM) pushOnce(snap *serviceSnapshot, h hostSnapshot, data []byte, stats *CycleStats, csp *trace.Span) (err error) {
	start := time.Now()
	psp := csp.Child("dcm.push")
	psp.SetDetail(h.name)
	defer func() {
		d := time.Since(start)
		stats.add(func(s *CycleStats) { s.PushLatency.Observe(d) })
		psp.EndCode(int32(mrerr.CodeOf(err)))
	}()

	addr, ok := m.cfg.Resolve(h.name)
	if !ok {
		return mrerr.UpdUnreachable
	}
	script := m.cfg.Scripts[snap.Name]
	var lines []string
	if script != nil {
		lines = script(&snap.Server, h.name, data)
	}
	var creds *kerberos.Credentials
	if m.cfg.Creds != nil {
		creds = m.cfg.Creds()
	}
	// The wire trace field carries this push span's ID so the agent's
	// install span becomes its child across the process boundary.
	wireTrace := stats.Trace
	if id := psp.TraceID(); id != "" {
		wireTrace = trace.Wire(id, psp.SpanID())
	}
	p := &update.Push{
		Addr: addr, Target: snap.TargetFile, Data: data, Script: lines,
		Creds: creds, Clock: m.clk, Timeout: m.cfg.PushTimeout,
		Trace: wireTrace, Chunked: !m.cfg.WholeFilePush,
	}
	err = p.Run()
	if err == nil {
		stats.add(func(s *CycleStats) {
			s.BytesPushed += p.SentBytes
			s.BytesSkipped += p.ReusedBytes
			if p.Downgraded {
				s.ChunkDowngrades++
			}
		})
	}
	return err
}

// claimHost atomically transitions one serverhost row to InProgress,
// re-checking eligibility under the exclusive lock. This closes the
// TOCTOU window between hostsNeedingUpdate's shared-lock scan and the
// push: a host another worker marked InProgress (or finished updating)
// in the meantime is skipped instead of being pushed twice.
func (m *DCM) claimHost(snap *serviceSnapshot, machID int) bool {
	d := m.cfg.DB
	d.LockExclusive()
	defer d.UnlockExclusive()
	sh, ok := d.ServerHost(snap.Name, machID)
	if !ok || sh.InProgress || !sh.Enable || sh.HostError != 0 {
		return false
	}
	if sh.LastSuccess >= snap.DFGen && !sh.Override {
		return false // a concurrent pass already delivered this generation
	}
	sh.InProgress = true
	d.NoteUpdateInternal(db.TServerHosts)
	return true
}

// claimService atomically marks a service's generation in progress,
// failing if another worker holds it.
func (m *DCM) claimService(name string) bool {
	d := m.cfg.DB
	d.LockExclusive()
	defer d.UnlockExclusive()
	s, ok := d.ServerByName(name)
	if !ok || s.InProgress || s.HardError != 0 {
		return false
	}
	s.InProgress = true
	d.NoteUpdateInternal(db.TServers)
	return true
}

// generate runs one generation pass for a service. Services with a
// keyed generator go through the planner's journal-delta path; the rest
// take the legacy full path behind a driver-side sequence check (the
// check that used to live inside each generator as unchanged()). A nil
// Result with a nil error means "nothing changed, zero generator work".
func (m *DCM) generate(name string, generator gen.Func, csp *trace.Span) (*gen.Result, *extract.Plan, error) {
	psp := csp.Child("dcm.plan")
	defer psp.End()

	if inc := m.incrementalFor(name); inc != nil {
		model, plan, err := m.planner.Run(name, inc)
		psp.SetDetail(fmt.Sprintf("%s mode=%s reason=%q records=%d keys=%d",
			name, plan.Mode, plan.Reason, plan.Records, plan.Keys))
		if err != nil || plan.Mode == extract.ModeNoChange {
			return nil, plan, err
		}
		res, err := gen.FromModelInto(model, m.scratchFor(name))
		return res, plan, err
	}

	d := m.extractDB()
	tables, tracked := m.cfg.Tables[name]
	if !tracked {
		// No table list: regenerate every due pass.
		psp.SetDetail(name + " mode=full reason=\"untracked tables\"")
		res, err := generator(d)
		return res, &extract.Plan{Mode: extract.ModeFull, Reason: "untracked tables"}, err
	}
	d.LockShared()
	seq := d.SeqOf(tables...)
	d.UnlockShared()
	if stored := m.genSeq(name); stored > 0 && seq <= stored {
		psp.SetDetail(name + " mode=nochange")
		return nil, &extract.Plan{Mode: extract.ModeNoChange, Seq: seq}, nil
	}
	psp.SetDetail(name + " mode=full reason=\"sequence advanced\"")
	res, err := generator(d)
	return res, &extract.Plan{Mode: extract.ModeFull, Reason: "sequence advanced", Seq: seq}, err
}

// regenForHosts rebuilds a service's bundles for the host-update path
// when the due check produced none this pass. Incremental services
// render the planner's model (patched up to the journal head if
// records arrived since); legacy services regenerate fully.
func (m *DCM) regenForHosts(name string, generator gen.Func) (*gen.Result, error) {
	if inc := m.incrementalFor(name); inc != nil {
		model, plan, err := m.planner.Run(name, inc)
		if err != nil {
			return nil, err
		}
		if plan.Mode != extract.ModeNoChange {
			m.commitPlan(name, plan)
		}
		return gen.FromModelInto(model, m.scratchFor(name))
	}
	return generator(m.extractDB())
}

// commitPlan persists a planner-managed service's pass outcome (journal
// position, sequence, mode) under the planner database's exclusive
// lock. No-ops for legacy services and nil plans.
func (m *DCM) commitPlan(name string, plan *extract.Plan) {
	if plan == nil || m.incrementalFor(name) == nil {
		return
	}
	pd := m.planner.DB
	pd.LockExclusive()
	m.planner.Commit(name, plan)
	pd.UnlockExclusive()
}

// fallbackReason reports whether a full-build reason counts as a
// fallback — an incremental pass that could not proceed — rather than
// an expected full build (first pass, scheduled cadence, no journal).
func fallbackReason(reason string) bool {
	switch reason {
	case "", "cold start", "scheduled full", "no journal",
		"untracked tables", "sequence advanced":
		return false
	}
	return true
}

// fullReason renders a full-build reason for logs; empty means plain.
func fullReason(reason string) string {
	if reason == "" {
		return "full"
	}
	return reason
}

// genSeq reads the stored change sequence of the last successful
// generation for a service (kept in the values relation so it survives
// DCM restarts); zero means "never generated".
func (m *DCM) genSeq(service string) int64 {
	d := m.cfg.DB
	d.LockShared()
	defer d.UnlockShared()
	v, err := d.GetValue(db.GenSeqPrefix + service)
	if err != nil {
		return 0
	}
	return int64(v)
}

// finishGeneration releases the in-progress claim and records the
// generation's timestamps and observed change sequence under a single
// exclusive-lock acquisition. Doing these as two separate acquisitions
// opened a window where a concurrent pass could snapshot the service as
// idle but pair it with the previous generation's sequence and
// regenerate needlessly. Planner-managed services persist their journal
// position through the planner instead of a bare genseq value.
func (m *DCM) finishGeneration(name string, now int64, plan *extract.Plan) {
	d := m.cfg.DB
	d.LockExclusive()
	if s, ok := d.ServerByName(name); ok {
		s.DFGen, s.DFCheck = now, now
		s.InProgress = false
		d.NoteUpdateInternal(db.TServers)
	}
	if plan != nil && m.incrementalFor(name) == nil {
		d.SetValue(db.GenSeqPrefix+name, int(plan.Seq))
	}
	d.UnlockExclusive()
	m.commitPlan(name, plan)
}

// notify sends a zephyrgram to class MOIRA instance DCM.
func (m *DCM) notify(message string) {
	if m.cfg.Notify != nil {
		m.cfg.Notify("MOIRA", "DCM", message)
	}
	m.cfg.Logf("dcm: NOTICE: %s", message)
}

// setServiceFlags mutates a service row under the exclusive lock, the
// in-process equivalent of the set_server_internal_flags query.
func (m *DCM) setServiceFlags(name string, fn func(*db.Server)) {
	d := m.cfg.DB
	d.LockExclusive()
	defer d.UnlockExclusive()
	if s, ok := d.ServerByName(name); ok {
		fn(s)
		d.NoteUpdateInternal(db.TServers)
	}
}

// setHostFlags mutates a serverhost row under the exclusive lock, the
// in-process equivalent of the set_server_host_internal query.
func (m *DCM) setHostFlags(service string, machID int, fn func(*db.ServerHost)) {
	d := m.cfg.DB
	d.LockExclusive()
	defer d.UnlockExclusive()
	if sh, ok := d.ServerHost(service, machID); ok {
		fn(sh)
		d.NoteUpdateInternal(db.TServerHosts)
	}
}

// Loop runs the DCM at the given wall-clock interval (the cron line of
// the original: "invoked regularly by cron at intervals which become the
// minimum update time for any service"). It also runs immediately when
// trigger fires, and returns when stop closes.
func (m *DCM) Loop(interval time.Duration, trigger <-chan struct{}, stop <-chan struct{}) {
	tick := time.NewTicker(interval)
	defer tick.Stop()
	// An incremental DCM also wakes on journal appends, so a burst of
	// mutations propagates at the next due check instead of waiting out
	// the full tick.
	var journal <-chan struct{}
	if m.cfg.Journal != nil {
		journal = m.cfg.Journal.Subscribe()
	}
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
		case <-trigger:
		case <-journal:
		}
		if _, err := m.RunOnce(); err != nil && err != mrerr.MrDCMDisabled {
			m.cfg.Logf("dcm: pass failed: %v", err)
		}
	}
}
