package dcm

import (
	"math/rand"
	"sync"
	"time"
)

// BackoffPolicy is the retry schedule for soft host failures within one
// pass: exponential doubling from Base, capped at Max, with subtractive
// jitter. The delay before retry n (n >= 1) is drawn uniformly from
// [d*(1-Jitter), d] where d = min(Base << (n-1), Max), so retries to
// many failing hosts spread out instead of synchronizing. The attempt
// counter is per host-update: a successful push resets the next
// failure's schedule back to Base.
type BackoffPolicy struct {
	Base   time.Duration
	Max    time.Duration
	Jitter float64 // fraction of the delay randomized away, in [0, 1]
}

// DefaultBackoff waits 250ms, 500ms, 1s, ... capped at 5s, each
// shortened by up to half.
var DefaultBackoff = BackoffPolicy{
	Base:   250 * time.Millisecond,
	Max:    5 * time.Second,
	Jitter: 0.5,
}

// zero reports whether the policy is unset (use DefaultBackoff).
func (p BackoffPolicy) zero() bool {
	return p.Base == 0 && p.Max == 0 && p.Jitter == 0
}

// Delay computes the wait before retry attempt (1-based). rnd supplies
// the jitter; nil disables jitter.
func (p BackoffPolicy) Delay(attempt int, rnd *rand.Rand) time.Duration {
	if attempt < 1 {
		attempt = 1
	}
	d := p.Base
	for i := 1; i < attempt; i++ {
		if p.Max > 0 && d >= p.Max {
			break
		}
		d *= 2
	}
	if p.Max > 0 && d > p.Max {
		d = p.Max
	}
	if p.Jitter > 0 && rnd != nil {
		d -= time.Duration(p.Jitter * rnd.Float64() * float64(d))
	}
	return d
}

// lockedRand serializes a shared jitter source across the host workers;
// math/rand.Rand itself is not safe for concurrent use.
type lockedRand struct {
	mu  sync.Mutex
	rnd *rand.Rand
}

func newLockedRand(seed int64) *lockedRand {
	if seed == 0 {
		seed = 1
	}
	return &lockedRand{rnd: rand.New(rand.NewSource(seed))}
}

// delay draws one jittered backoff delay under the lock.
func (l *lockedRand) delay(p BackoffPolicy, attempt int) time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	return p.Delay(attempt, l.rnd)
}
