package update

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"moira/internal/clock"
	"moira/internal/kerberos"
	"moira/internal/mrerr"
	"moira/internal/protocol"
	"moira/internal/stats"
	"moira/internal/trace"
)

// Protocol opcodes for the update protocol (distinct from the Moira
// query protocol's range).
const (
	OpUAuth    uint16 = 20 // args: kerberos auth payload
	OpUXfer    uint16 = 21 // args: target path, sha256 hex, file data
	OpUScript  uint16 = 22 // args: instruction lines
	OpUExecute uint16 = 23 // no args; runs the staged script

	// Chunked diff transfer (the alternative to OpUXfer): the pusher
	// sends the new file's chunk manifest, the agent answers with the
	// indices it cannot reuse from the file it already holds, the pusher
	// ships only those, and the agent reassembles and stages the result.
	// Agents predating these ops answer MrUnknownProc, which the pusher
	// treats as "downgrade to whole-file OpUXfer".
	OpUManifest uint16 = 24 // args: target path, whole-file sha256 hex, manifest
	OpUChunks   uint16 = 25 // args: alternating chunk index, chunk data
	OpUAssemble uint16 = 26 // no args; reassemble, verify, stage
)

// Suffixes used by the atomic installation dance.
const (
	updateSuffix = ".moira_update"
	backupSuffix = ".moira_backup"
)

// CommandFunc is a registered handler for the "exec" instruction. The
// original ran shell commands on the target host; here target services
// (the NFS host simulation, the hesiod restart script) register Go
// handlers under command names.
type CommandFunc func(a *Agent, args []string) error

// Agent is the update daemon running on one managed host. Its Root
// directory is the host's private filesystem.
type Agent struct {
	Host string
	Root string

	// Verifier authenticates the DCM; nil accepts unauthenticated pushes
	// (used only in tests).
	Verifier *kerberos.Verifier

	// ReadTimeout bounds each frame read, so "network lossage and
	// machine crashes" cannot hang the agent (section 5.9, timeouts on
	// both sides). Zero means no limit.
	ReadTimeout time.Duration

	// WriteTimeout bounds each reply write. Zero means no limit.
	WriteTimeout time.Duration

	// DrainTimeout bounds how long Close waits for an in-flight update
	// before force-closing its connection; zero means
	// DefaultDrainTimeout.
	DrainTimeout time.Duration

	// BusyWait bounds how long an incoming update waits for a previous
	// update on this host to finish before being rejected with UpdBusy.
	BusyWait time.Duration

	// Clock drives the simulated service latency (SetLatency); nil means
	// the system clock. Fault-injection tests install a clock.Fake so
	// injected slowness elapses in virtual time.
	Clock clock.Clock

	// Signals records pids signalled by the "signal" instruction.
	mu         sync.Mutex
	signals    []int
	commands   map[string]CommandFunc
	crashPoint func(stage string) bool
	latency    time.Duration
	sem        chan struct{}
	conns      map[net.Conn]*connState
	closed     bool

	ln      net.Listener
	wg      sync.WaitGroup
	closing chan struct{}

	reg    *stats.Registry
	traces *stats.TraceLog
	tracer *trace.Tracer
}

// DefaultDrainTimeout is how long Close waits for an in-flight update
// when DrainTimeout is zero.
const DefaultDrainTimeout = 5 * time.Second

// connState tracks whether a connection is mid-request, so Close can
// distinguish idle connections (closed at once) from in-flight updates
// (drained up to DrainTimeout).
type connState struct {
	mu       sync.Mutex
	inflight bool
}

func (st *connState) set(v bool) {
	st.mu.Lock()
	st.inflight = v
	st.mu.Unlock()
}

func (st *connState) busy() bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.inflight
}

// NewAgent creates an update agent for a host rooted at dir.
func NewAgent(host, dir string, verifier *kerberos.Verifier) *Agent {
	return &Agent{
		Host: host, Root: dir, Verifier: verifier,
		ReadTimeout: 30 * time.Second,
		BusyWait:    5 * time.Second,
		commands:    make(map[string]CommandFunc),
		sem:         make(chan struct{}, 1),
		conns:       make(map[net.Conn]*connState),
		closing:     make(chan struct{}),
		reg:         stats.NewRegistry(),
		traces:      stats.NewTraceLog(0),
	}
}

// clk returns the agent's clock, defaulting to the system clock.
func (a *Agent) clk() clock.Clock {
	if a.Clock != nil {
		return a.Clock
	}
	return clock.System
}

// BindStats redirects the agent's update.* counters (xfers, installs,
// bytes) into reg, typically a system-wide registry shared with the
// Moira server. Call before Listen.
func (a *Agent) BindStats(reg *stats.Registry) { a.reg = reg }

// Registry returns the registry the agent counts into.
func (a *Agent) Registry() *stats.Registry { return a.reg }

// Traces returns the agent's recent installs, oldest first, each tagged
// with the trace ID the DCM's push carried.
func (a *Agent) Traces() []stats.TraceEntry { return a.traces.Entries() }

// SetTracer attaches a span tracer: each executed installation records
// an agent.install span, parented (via the wire trace field) under the
// DCM push span that delivered it. Call before Listen; nil disables.
func (a *Agent) SetTracer(t *trace.Tracer) { a.tracer = t }

// RegisterCommand installs a handler for "exec name ...".
func (a *Agent) RegisterCommand(name string, fn CommandFunc) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.commands[name] = fn
}

// ExecCommand invokes a registered command directly, as local tooling on
// the host (or a test) would; the update protocol's "exec" instruction
// goes through the same handlers.
func (a *Agent) ExecCommand(name string, args []string) error {
	a.mu.Lock()
	fn := a.commands[name]
	a.mu.Unlock()
	if fn == nil {
		return mrerr.UpdBadInstr
	}
	return fn(a, args)
}

// Signals returns the pids signalled so far.
func (a *Agent) Signals() []int {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]int, len(a.signals))
	copy(out, a.signals)
	return out
}

// Listen binds addr and serves update connections in the background.
func (a *Agent) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	a.ln = ln
	a.wg.Add(1)
	go func() {
		defer a.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			st := a.track(conn)
			if st == nil {
				conn.Close() // shutting down
				continue
			}
			a.wg.Add(1)
			go func() {
				defer a.wg.Done()
				a.serve(conn, st)
			}()
		}
	}()
	return ln.Addr(), nil
}

func (a *Agent) track(conn net.Conn) *connState {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return nil
	}
	st := &connState{}
	a.conns[conn] = st
	return st
}

func (a *Agent) untrack(conn net.Conn) {
	a.mu.Lock()
	delete(a.conns, conn)
	a.mu.Unlock()
}

// draining reports whether Close has begun.
func (a *Agent) draining() bool {
	if a.closing == nil {
		return false
	}
	select {
	case <-a.closing:
		return true
	default:
		return false
	}
}

// Addr returns the bound address.
func (a *Agent) Addr() net.Addr {
	if a.ln == nil {
		return nil
	}
	return a.ln.Addr()
}

// Close stops the agent: it stops accepting, closes idle connections at
// once, waits up to DrainTimeout for an in-flight update to finish, then
// force-closes whatever is left. Before conn tracking existed, a
// connected DCM sitting between frames (with ReadTimeout 0) hung Close
// forever.
func (a *Agent) Close() error {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		a.wg.Wait()
		return nil
	}
	a.closed = true
	if a.closing != nil {
		close(a.closing)
	}
	var err error
	if a.ln != nil {
		err = a.ln.Close()
	}
	for conn, st := range a.conns {
		if !st.busy() {
			conn.Close()
		}
	}
	a.mu.Unlock()

	done := make(chan struct{})
	go func() {
		a.wg.Wait()
		close(done)
	}()
	drain := a.DrainTimeout
	if drain <= 0 {
		drain = DefaultDrainTimeout
	}
	select {
	case <-done:
		return err
	case <-time.After(drain):
	}
	a.mu.Lock()
	for conn := range a.conns {
		conn.Close()
		a.reg.Counter("update.conns.forceclosed").Inc()
	}
	a.mu.Unlock()
	select {
	case <-done:
	case <-time.After(drain):
		// An instruction wedged off-network cannot hold Close hostage.
	}
	return err
}

// path resolves a target-relative path inside the agent root, rejecting
// escapes.
func (a *Agent) path(p string) (string, error) {
	clean := filepath.Join(a.Root, filepath.FromSlash(strings.TrimPrefix(p, "/")))
	if !strings.HasPrefix(clean, filepath.Clean(a.Root)+string(os.PathSeparator)) &&
		clean != filepath.Clean(a.Root) {
		return "", mrerr.UpdBadInstr
	}
	return clean, nil
}

// ReadHostFile reads a file from the host's private filesystem, for
// the services (and tests) running on this host.
func (a *Agent) ReadHostFile(p string) ([]byte, error) {
	fp, err := a.path(p)
	if err != nil {
		return nil, err
	}
	return os.ReadFile(fp)
}

// RenameHostFile atomically renames one host file to another, for
// registered commands that perform their own controlled switchover (the
// mailhub's aliases activation).
func (a *Agent) RenameHostFile(oldPath, newPath string) error {
	op, err := a.path(oldPath)
	if err != nil {
		return err
	}
	np, err := a.path(newPath)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(np), 0o755); err != nil {
		return err
	}
	return os.Rename(op, np)
}

// WriteHostFile writes a file into the host's private filesystem.
func (a *Agent) WriteHostFile(p string, data []byte) error {
	fp, err := a.path(p)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(fp), 0o755); err != nil {
		return err
	}
	return os.WriteFile(fp, data, 0o644)
}

type updateSession struct {
	agent  *Agent
	authed bool
	target string
	script []string
	staged bool
	trace  string // bare trace ID carried by the push's requests
	parent string // span ID of the DCM push span, from the wire field

	// Chunked-transfer state, alive between OpUManifest and OpUAssemble.
	manifest    []Chunk
	wholeSum    string
	chunkTarget string
	have        map[string][]byte // checksum -> chunk bytes (reused + received)

	// fields carries reply fields for the next reply (the manifest
	// response lists the needed chunk indices).
	fields [][]byte
}

// takeFields returns and clears the pending reply fields.
func (s *updateSession) takeFields() [][]byte {
	f := s.fields
	s.fields = nil
	return f
}

// SetCrashPoint installs (or clears, with nil) a crash-injection hook:
// it is consulted with a stage label, and returning true makes the agent
// drop the connection there, simulating a server crash mid-update for
// the recovery tests.
func (a *Agent) SetCrashPoint(fn func(stage string) bool) {
	a.mu.Lock()
	a.crashPoint = fn
	a.mu.Unlock()
}

// SetLatency sets a simulated service delay: each incoming update
// connection sleeps this long after acquiring the host lock, modeling
// the slow or distant servers whose updates section 5.7 forks children
// for so they cannot stall a whole distribution pass. The wait goes
// through the agent's clock — real by default (benchmarks measure
// wall-clock parallelism), virtual when a test installs a clock.Fake,
// so fault-injection runs need not sleep for real.
func (a *Agent) SetLatency(d time.Duration) {
	a.mu.Lock()
	a.latency = d
	a.mu.Unlock()
}

func (a *Agent) crash(conn net.Conn, stage string) bool {
	a.mu.Lock()
	fn := a.crashPoint
	a.mu.Unlock()
	if fn != nil && fn(stage) {
		conn.Close()
		return true
	}
	return false
}

// lock marks the host busy for the duration of one update, implementing
// the "only one update at a time per host" rule. It waits up to BusyWait
// for a previous update (or its connection teardown) to finish.
func (a *Agent) lock() bool {
	select {
	case a.sem <- struct{}{}:
		return true
	default:
	}
	if a.BusyWait <= 0 {
		return false
	}
	select {
	case a.sem <- struct{}{}:
		return true
	case <-time.After(a.BusyWait):
		return false
	}
}

func (a *Agent) unlock() {
	<-a.sem
}

func (a *Agent) serve(conn net.Conn, st *connState) {
	defer conn.Close()
	defer a.untrack(conn)
	if !a.lock() {
		a.reg.Counter("update.conns.busy").Inc()
		bw := bufio.NewWriter(conn)
		if a.WriteTimeout > 0 {
			conn.SetWriteDeadline(time.Now().Add(a.WriteTimeout))
		}
		protocol.WriteReply(bw, &protocol.Reply{Version: protocol.Version, Code: int32(mrerr.UpdBusy)})
		bw.Flush()
		return
	}
	defer a.unlock()

	a.mu.Lock()
	lat := a.latency
	a.mu.Unlock()
	if lat > 0 {
		clock.Sleep(a.clk(), lat)
	}

	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	ses := &updateSession{agent: a, authed: a.Verifier == nil}

	// Replies mirror the version the pusher spoke, like the Moira server.
	repVersion := protocol.Version
	reply := func(code mrerr.Code) error {
		if a.WriteTimeout > 0 {
			conn.SetWriteDeadline(time.Now().Add(a.WriteTimeout))
		}
		rep := &protocol.Reply{Version: repVersion, Code: int32(code), Fields: ses.takeFields()}
		if err := protocol.WriteReply(bw, rep); err != nil {
			return err
		}
		return bw.Flush()
	}

	for {
		if a.draining() {
			return
		}
		st.set(false)
		if a.ReadTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(a.ReadTimeout))
		}
		req, err := protocol.ReadRequest(br)
		if err != nil {
			return
		}
		st.set(true)
		repVersion = req.Version
		if req.Version < protocol.MinVersion || req.Version > protocol.Version {
			repVersion = protocol.Version
			if reply(mrerr.MrVersionMismatch) != nil {
				return
			}
			continue
		}
		if req.TraceID != "" {
			// The wire field may carry "traceID/spanID"; the install log
			// keeps the bare trace ID, the span links under the push span.
			ses.trace, ses.parent = trace.Split(req.TraceID)
		}
		code, fatal := a.dispatch(conn, ses, req)
		if fatal {
			return // crash injection dropped the connection
		}
		if reply(code) != nil {
			return
		}
	}
}

// dispatch executes one update-protocol request. Like the Moira server,
// the agent recovers from a panicking instruction or command handler —
// one bad installation script must not kill the daemon that every other
// service's updates flow through — replying MR_INTERNAL and counting
// update.panics.recovered.
func (a *Agent) dispatch(conn net.Conn, ses *updateSession, req *protocol.Request) (code mrerr.Code, fatal bool) {
	defer func() {
		if r := recover(); r != nil {
			a.reg.Counter("update.panics.recovered").Inc()
			code, fatal = mrerr.MrInternal, false
		}
	}()
	switch req.Op {
	case OpUAuth:
		code = ses.auth(req)
	case OpUXfer:
		if a.crash(conn, "before-xfer") {
			return code, true
		}
		code = ses.xfer(req)
		if a.crash(conn, "after-xfer") {
			return code, true
		}
	case OpUManifest:
		code = ses.chunkManifest(req)
	case OpUChunks:
		code = ses.chunkData(req)
	case OpUAssemble:
		// The assemble is the staging step of a chunked push, so the
		// xfer crash points fire here too — fault tests simulate the
		// same "server died around the data transfer" failures on both
		// transports.
		if a.crash(conn, "before-xfer") {
			return code, true
		}
		code = ses.chunkAssemble(req)
		if a.crash(conn, "after-xfer") {
			return code, true
		}
	case OpUScript:
		code = ses.loadScript(req)
	case OpUExecute:
		if a.crash(conn, "before-execute") {
			return code, true
		}
		start := time.Now()
		sp := a.tracer.Start(ses.trace, ses.parent, "agent.install")
		sp.SetDetail(ses.target)
		code = ses.execute(conn)
		if code == mrerr.Code(-1) {
			sp.EndCode(int32(mrerr.MrInternal))
			return code, true // crashed mid-execution
		}
		sp.EndCode(int32(code))
		if code == mrerr.Success {
			a.reg.Counter("update.installs").Inc()
		}
		a.traces.Add(stats.TraceEntry{
			Time:      time.Now().Unix(),
			Trace:     ses.trace,
			Op:        "install",
			Handle:    ses.target,
			Principal: a.Host,
			Code:      int32(code),
			Latency:   time.Since(start),
		})
	default:
		code = mrerr.MrUnknownProc
	}
	return code, false
}

func (s *updateSession) auth(req *protocol.Request) mrerr.Code {
	if s.agent.Verifier == nil {
		return mrerr.Success
	}
	if len(req.Args) != 1 {
		return mrerr.MrArgs
	}
	payload, err := kerberos.UnmarshalAuthPayload(req.Args[0])
	if err != nil {
		return mrerr.UpdAuthFailed
	}
	if _, _, err := s.agent.Verifier.Verify(payload); err != nil {
		return mrerr.UpdAuthFailed
	}
	s.authed = true
	return mrerr.Success
}

// xfer stages the transferred data file at the target path. The file
// transfer includes a checksum to insure data integrity; the data is
// flushed to disk before the reply ("flush all data on the server to
// disk").
func (s *updateSession) xfer(req *protocol.Request) mrerr.Code {
	if !s.authed {
		return mrerr.UpdAuthFailed
	}
	if len(req.Args) != 3 {
		return mrerr.MrArgs
	}
	target := string(req.Args[0])
	sum := string(req.Args[1])
	data := req.Args[2]
	got := sha256.Sum256(data)
	if hex.EncodeToString(got[:]) != sum {
		return mrerr.UpdChecksum
	}
	fp, err := s.agent.path(target)
	if err != nil {
		return mrerr.UpdBadInstr
	}
	if err := os.MkdirAll(filepath.Dir(fp), 0o755); err != nil {
		return mrerr.MrInternal
	}
	// A stale .moira_update from a crashed run "will be deleted (as it
	// may be incomplete) when the next update starts".
	matches, _ := filepath.Glob(fp + "*" + updateSuffix)
	for _, m := range matches {
		os.Remove(m)
	}
	f, err := os.Create(fp)
	if err != nil {
		return mrerr.MrInternal
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return mrerr.MrInternal
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return mrerr.MrInternal
	}
	if err := f.Close(); err != nil {
		return mrerr.MrInternal
	}
	s.target = target
	s.staged = true
	s.agent.reg.Counter("update.xfers").Inc()
	s.agent.reg.Counter("update.bytes").Add(int64(len(data)))
	return mrerr.Success
}

// chunkManifest starts a chunked transfer: parse the new file's
// manifest, chunk whatever currently sits at the target path, pre-fill
// the chunks the old file already supplies, and answer with the indices
// the pusher must still send.
func (s *updateSession) chunkManifest(req *protocol.Request) mrerr.Code {
	if !s.authed {
		return mrerr.UpdAuthFailed
	}
	if len(req.Args) != 3 {
		return mrerr.MrArgs
	}
	target := string(req.Args[0])
	wholeSum := string(req.Args[1])
	manifest, err := DecodeManifest(req.Args[2])
	if err != nil {
		return mrerr.MrArgs
	}
	if len(wholeSum) != 64 {
		return mrerr.MrArgs
	}
	if _, err := s.agent.path(target); err != nil {
		return mrerr.UpdBadInstr
	}

	wanted := map[string]bool{}
	for _, c := range manifest {
		wanted[c.Sum] = true
	}
	have := map[string][]byte{}
	reused, reusedBytes := 0, 0
	if old, err := s.agent.ReadHostFile(target); err == nil {
		for _, c := range SplitChunks(old) {
			if wanted[c.Sum] && have[c.Sum] == nil {
				have[c.Sum] = old[c.Off : c.Off+c.Len]
			}
		}
	}
	var needed [][]byte
	seen := map[string]bool{}
	for i, c := range manifest {
		if _, ok := have[c.Sum]; ok {
			reused++
			reusedBytes += c.Len
			continue
		}
		if seen[c.Sum] {
			continue // a duplicate chunk travels once
		}
		seen[c.Sum] = true
		needed = append(needed, []byte(strconv.Itoa(i)))
	}

	s.manifest = manifest
	s.wholeSum = wholeSum
	s.chunkTarget = target
	s.have = have
	s.fields = needed
	s.agent.reg.Counter("update.chunks.manifests").Inc()
	s.agent.reg.Counter("update.chunks.reused").Add(int64(reused))
	s.agent.reg.Counter("update.chunks.bytes.reused").Add(int64(reusedBytes))
	return mrerr.Success
}

// chunkData receives pushed chunks (alternating index and data args),
// verifying each against the manifest before keeping it.
func (s *updateSession) chunkData(req *protocol.Request) mrerr.Code {
	if !s.authed {
		return mrerr.UpdAuthFailed
	}
	if s.manifest == nil {
		return mrerr.UpdNoFile
	}
	if len(req.Args)%2 != 0 {
		return mrerr.MrArgs
	}
	pushed, pushedBytes := 0, 0
	for i := 0; i+1 < len(req.Args); i += 2 {
		idx, err := strconv.Atoi(string(req.Args[i]))
		if err != nil || idx < 0 || idx >= len(s.manifest) {
			return mrerr.MrArgs
		}
		c := s.manifest[idx]
		data := req.Args[i+1]
		if len(data) != c.Len {
			return mrerr.UpdChecksum
		}
		sum := sha256.Sum256(data)
		if hex.EncodeToString(sum[:]) != c.Sum {
			return mrerr.UpdChecksum
		}
		s.have[c.Sum] = data
		pushed++
		pushedBytes += len(data)
	}
	s.agent.reg.Counter("update.chunks.pushed").Add(int64(pushed))
	s.agent.reg.Counter("update.chunks.bytes.pushed").Add(int64(pushedBytes))
	return mrerr.Success
}

// chunkAssemble reassembles the file from reused and received chunks,
// verifies the whole-file checksum, and stages it exactly as a
// whole-file xfer would (fsynced before the reply).
func (s *updateSession) chunkAssemble(req *protocol.Request) mrerr.Code {
	if !s.authed {
		return mrerr.UpdAuthFailed
	}
	if s.manifest == nil {
		return mrerr.UpdNoFile
	}
	data, err := Reassemble(s.manifest, s.have, s.wholeSum)
	if err != nil {
		return mrerr.UpdChecksum
	}
	target := s.chunkTarget
	s.manifest, s.have, s.wholeSum, s.chunkTarget = nil, nil, "", ""

	fp, perr := s.agent.path(target)
	if perr != nil {
		return mrerr.UpdBadInstr
	}
	if err := os.MkdirAll(filepath.Dir(fp), 0o755); err != nil {
		return mrerr.MrInternal
	}
	matches, _ := filepath.Glob(fp + "*" + updateSuffix)
	for _, m := range matches {
		os.Remove(m)
	}
	f, err := os.Create(fp)
	if err != nil {
		return mrerr.MrInternal
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return mrerr.MrInternal
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return mrerr.MrInternal
	}
	if err := f.Close(); err != nil {
		return mrerr.MrInternal
	}
	s.target = target
	s.staged = true
	// The staged-file counters cover both transports; the chunk
	// counters above hold the wire-level story.
	s.agent.reg.Counter("update.xfers").Inc()
	s.agent.reg.Counter("update.bytes").Add(int64(len(data)))
	return mrerr.Success
}

func (s *updateSession) loadScript(req *protocol.Request) mrerr.Code {
	if !s.authed {
		return mrerr.UpdAuthFailed
	}
	s.script = req.StringArgs()
	return mrerr.Success
}

// execute runs the staged instruction sequence. A crash injected between
// instructions returns the sentinel -1 so serve drops the connection.
func (s *updateSession) execute(conn net.Conn) mrerr.Code {
	if !s.authed {
		return mrerr.UpdAuthFailed
	}
	if s.script == nil {
		return mrerr.UpdNoFile
	}
	for i, line := range s.script {
		if s.agent.crash(conn, fmt.Sprintf("instr-%d", i)) {
			return mrerr.Code(-1)
		}
		if code := s.runInstruction(line); code != mrerr.Success {
			return code
		}
	}
	return mrerr.Success
}

func (s *updateSession) runInstruction(line string) mrerr.Code {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return mrerr.Success
	}
	a := s.agent
	switch fields[0] {
	case "extract": // extract <member> <dest>
		if len(fields) != 3 || !s.staged {
			return mrerr.UpdBadInstr
		}
		archive, err := a.ReadHostFile(s.target)
		if err != nil {
			return mrerr.UpdNoFile
		}
		data, err := ExtractMember(archive, fields[1])
		if err != nil {
			return mrerr.UpdNoFile
		}
		if err := a.WriteHostFile(fields[2]+updateSuffix, data); err != nil {
			if code, ok := err.(mrerr.Code); ok {
				return code
			}
			return mrerr.MrInternal
		}
		return mrerr.Success

	case "install": // install <path>: atomic rename of <path>.moira_update
		if len(fields) != 2 {
			return mrerr.UpdBadInstr
		}
		fp, err := a.path(fields[1])
		if err != nil {
			return mrerr.UpdBadInstr
		}
		if _, err := os.Stat(fp + updateSuffix); err != nil {
			return mrerr.UpdNoFile
		}
		// Keep the old file for revert; both stay in the same directory
		// so the renames never cross a partition.
		if _, err := os.Stat(fp); err == nil {
			if err := os.Rename(fp, fp+backupSuffix); err != nil {
				return mrerr.UpdRename
			}
		}
		if err := os.Rename(fp+updateSuffix, fp); err != nil {
			return mrerr.UpdRename
		}
		return mrerr.Success

	case "revert": // revert <path>: put the old file back
		if len(fields) != 2 {
			return mrerr.UpdBadInstr
		}
		fp, err := a.path(fields[1])
		if err != nil {
			return mrerr.UpdBadInstr
		}
		if _, err := os.Stat(fp + backupSuffix); err != nil {
			return mrerr.UpdNoRevert
		}
		if err := os.Rename(fp+backupSuffix, fp); err != nil {
			return mrerr.UpdRename
		}
		return mrerr.Success

	case "signal": // signal <pidfile>
		if len(fields) != 2 {
			return mrerr.UpdBadInstr
		}
		data, err := a.ReadHostFile(fields[1])
		if err != nil {
			return mrerr.UpdNoFile
		}
		pid, err := strconv.Atoi(strings.TrimSpace(string(data)))
		if err != nil {
			return mrerr.UpdBadInstr
		}
		a.mu.Lock()
		a.signals = append(a.signals, pid)
		a.mu.Unlock()
		return mrerr.Success

	case "exec": // exec <command> [args...]
		if len(fields) < 2 {
			return mrerr.UpdBadInstr
		}
		a.mu.Lock()
		fn := a.commands[fields[1]]
		a.mu.Unlock()
		if fn == nil {
			return mrerr.UpdBadInstr
		}
		if err := fn(a, fields[2:]); err != nil {
			return mrerr.UpdScriptError
		}
		return mrerr.Success

	default:
		return mrerr.UpdBadInstr
	}
}
