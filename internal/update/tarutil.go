// Package update implements the Moira-to-server update protocol
// (section 5.9): the reliable, atomic mechanism by which the DCM
// delivers generated configuration files to managed hosts and runs the
// installation instruction sequence there.
//
// The protocol has two phases. The transfer phase authenticates, ships
// the data file (usually a tar bundle) with a checksum, and ships the
// installation script. The execution phase runs the script: extracting
// members from the tar, swapping files in with atomic renames, reverting
// erroneous installations, signalling daemons, and running registered
// commands. All steps are idempotent, so "extra installations are not
// harmful" and a crashed update is simply retried.
package update

import (
	"archive/tar"
	"bytes"
	"io"
	"sort"

	"moira/internal/mrerr"
)

// BuildTar packs the files (name -> content) into a tar archive with
// deterministic member order.
func BuildTar(files map[string][]byte) ([]byte, error) {
	return BuildTarInto(nil, files)
}

// BuildTarInto is BuildTar reusing prev's backing array when it is big
// enough — a DCM pass re-bundles tens of megabytes whose allocation
// (and collection) would otherwise dominate an incremental pass. The
// returned archive aliases prev; callers own the rotation and must be
// done with the previous archive before rebuilding into it.
func BuildTarInto(prev []byte, files map[string][]byte) ([]byte, error) {
	names := make([]string, 0, len(files))
	size := 1024 // the two terminating zero blocks
	for n := range files {
		names = append(names, n)
		// One 512-byte header plus the data rounded up to a block.
		size += 512 + (len(files[n])+511)&^511
	}
	sort.Strings(names)
	buf := bytes.NewBuffer(prev[:0])
	buf.Grow(size)
	tw := tar.NewWriter(buf)
	for _, n := range names {
		hdr := &tar.Header{Name: n, Mode: 0o644, Size: int64(len(files[n]))}
		if err := tw.WriteHeader(hdr); err != nil {
			return nil, err
		}
		if _, err := tw.Write(files[n]); err != nil {
			return nil, err
		}
	}
	if err := tw.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// ExtractMember pulls one member out of a tar archive. The instruction
// sequence extracts "only the ones that are needed ... one at a time".
func ExtractMember(archive []byte, name string) ([]byte, error) {
	tr := tar.NewReader(bytes.NewReader(archive))
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			return nil, mrerr.UpdNoFile
		}
		if err != nil {
			return nil, err
		}
		if hdr.Name == name {
			return io.ReadAll(tr)
		}
	}
}

// ListTar returns the member names of a tar archive in order.
func ListTar(archive []byte) ([]string, error) {
	tr := tar.NewReader(bytes.NewReader(archive))
	var names []string
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			return names, nil
		}
		if err != nil {
			return nil, err
		}
		names = append(names, hdr.Name)
	}
}
