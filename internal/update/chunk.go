package update

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"
)

// Content-defined chunking for the diff transport: instead of shipping a
// whole bundle on every push, the DCM sends a manifest of chunk hashes,
// the agent answers with the chunks it cannot reuse from the file it
// already holds, and only those travel. Boundaries are content-defined
// (a gear rolling hash), so an insertion early in the file shifts
// boundaries only locally and the unchanged tail still matches.

// Chunking parameters: ~8 KB average (the boundary mask), 2 KB minimum
// (no boundary test until min bytes), 64 KB maximum (forced cut).
const (
	chunkMin  = 2 << 10
	chunkMax  = 64 << 10
	chunkMask = (8 << 10) - 1 // boundary when hash&mask == 0: 1/8192 per byte
)

// gearTable is the 256-entry random table driving the rolling hash. It
// is generated deterministically (splitmix64 from a fixed seed) so every
// build of the DCM and every agent cut identical boundaries.
var gearTable = buildGearTable(0x6d6f697261636463) // "moiracdc"

func buildGearTable(seed uint64) [256]uint64 {
	var t [256]uint64
	s := seed
	for i := range t {
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		t[i] = z ^ (z >> 31)
	}
	return t
}

// Chunk is one content-defined piece of a file.
type Chunk struct {
	Off int
	Len int
	Sum string // sha256 hex of the chunk bytes
}

// SplitChunks cuts data into content-defined chunks. Every byte belongs
// to exactly one chunk; concatenating the chunks in order reproduces
// data exactly. Empty input yields no chunks.
func SplitChunks(data []byte) []Chunk {
	var out []Chunk
	for off := 0; off < len(data); {
		n := cutPoint(data[off:])
		sum := sha256.Sum256(data[off : off+n])
		out = append(out, Chunk{Off: off, Len: n, Sum: hex.EncodeToString(sum[:])})
		off += n
	}
	return out
}

// cutPoint returns the length of the next chunk starting at data[0].
func cutPoint(data []byte) int {
	if len(data) <= chunkMin {
		return len(data)
	}
	max := len(data)
	if max > chunkMax {
		max = chunkMax
	}
	var h uint64
	// The hash warms up over the minimum window so the boundary decision
	// always sees a full window of context.
	for i := 0; i < max; i++ {
		h = (h << 1) + gearTable[data[i]]
		if i >= chunkMin && h&chunkMask == 0 {
			return i + 1
		}
	}
	return max
}

// EncodeManifest renders a chunk list for the wire: one "len sum" line
// per chunk, index implied by order.
func EncodeManifest(chunks []Chunk) []byte {
	var b strings.Builder
	for _, c := range chunks {
		fmt.Fprintf(&b, "%d %s\n", c.Len, c.Sum)
	}
	return []byte(b.String())
}

// DecodeManifest parses a wire manifest, rejecting malformed or
// implausible entries (a corrupt manifest must fail cleanly, never
// panic or allocate absurd amounts).
func DecodeManifest(data []byte) ([]Chunk, error) {
	var out []Chunk
	off := 0
	for _, line := range strings.Split(string(data), "\n") {
		if line == "" {
			continue
		}
		lenStr, sum, ok := strings.Cut(line, " ")
		if !ok {
			return nil, fmt.Errorf("manifest: malformed line %q", line)
		}
		n, err := strconv.Atoi(lenStr)
		if err != nil || n <= 0 || n > chunkMax {
			return nil, fmt.Errorf("manifest: bad chunk length %q", lenStr)
		}
		if len(sum) != 64 {
			return nil, fmt.Errorf("manifest: bad checksum %q", sum)
		}
		if _, err := hex.DecodeString(sum); err != nil {
			return nil, fmt.Errorf("manifest: bad checksum %q", sum)
		}
		out = append(out, Chunk{Off: off, Len: n, Sum: sum})
		off += n
	}
	return out, nil
}

// Reassemble concatenates chunk data in manifest order, taking each
// chunk from have (keyed by checksum). It verifies every chunk's length
// and checksum and the whole file against wholeSum.
func Reassemble(manifest []Chunk, have map[string][]byte, wholeSum string) ([]byte, error) {
	var buf bytes.Buffer
	for i, c := range manifest {
		data, ok := have[c.Sum]
		if !ok {
			return nil, fmt.Errorf("chunk %d (%s) missing", i, c.Sum[:12])
		}
		if len(data) != c.Len {
			return nil, fmt.Errorf("chunk %d: length %d, manifest says %d", i, len(data), c.Len)
		}
		sum := sha256.Sum256(data)
		if hex.EncodeToString(sum[:]) != c.Sum {
			return nil, fmt.Errorf("chunk %d: checksum mismatch", i)
		}
		buf.Write(data)
	}
	sum := sha256.Sum256(buf.Bytes())
	if hex.EncodeToString(sum[:]) != wholeSum {
		return nil, fmt.Errorf("assembled file checksum mismatch")
	}
	return buf.Bytes(), nil
}
