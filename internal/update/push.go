package update

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"net"
	"strconv"
	"time"

	"moira/internal/clock"
	"moira/internal/kerberos"
	"moira/internal/mrerr"
	"moira/internal/protocol"
)

// Push is the DCM side of the update protocol: one complete update of a
// single host.
type Push struct {
	// Addr is the host's update agent address.
	Addr string
	// Target is where on the host to deposit the data file (the target
	// field of the service record).
	Target string
	// Data is the file contents (usually a tar bundle).
	Data []byte
	// Script is the installation instruction sequence (the script field
	// of the service record, resolved to its lines).
	Script []string
	// Creds authenticate the DCM to the agent; nil only for tests
	// against a verifier-less agent.
	Creds *kerberos.Credentials
	// Clock drives the authenticator timestamp; nil = system clock.
	Clock clock.Clock
	// Timeout bounds the whole update; "if any single operation takes
	// longer than a reasonable amount of time, the connection is closed,
	// and the installation assumed to have failed."
	Timeout time.Duration
	// Trace is the trace ID of the request that triggered this update
	// ("" for scheduled passes); stamped on every protocol request so
	// the agent can record it against the install.
	Trace string
	// Chunked transfers the data as a content-defined chunk diff
	// against whatever the host already holds, shipping only the chunks
	// the agent lacks. Agents that do not speak the chunk ops downgrade
	// transparently to a whole-file transfer.
	Chunked bool

	// Transfer accounting, filled in by Run: bytes that actually
	// traveled as chunk data, bytes the agent reused from its old file,
	// and whether the push fell back to a whole-file transfer.
	SentBytes   int
	ReusedBytes int
	Downgraded  bool
}

// Run performs the update: transfer phase (auth, data file with
// checksum, script), then execution phase, then confirmation. The error
// is nil on success, or a code the DCM classifies as soft
// (UpdUnreachable, UpdTimeout — retry later) or hard (everything else).
func (p *Push) Run() error {
	timeout := p.Timeout
	if timeout == 0 {
		timeout = 30 * time.Second
	}
	conn, err := net.DialTimeout("tcp", p.Addr, timeout)
	if err != nil {
		return mrerr.UpdUnreachable
	}
	defer conn.Close()
	deadline := time.Now().Add(timeout)
	conn.SetDeadline(deadline)

	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)

	callR := func(op uint16, args [][]byte) (*protocol.Reply, error) {
		if err := protocol.WriteRequest(bw, &protocol.Request{Version: protocol.Version, Op: op, TraceID: p.Trace, Args: args}); err != nil {
			return nil, ioErr(err)
		}
		if err := bw.Flush(); err != nil {
			return nil, ioErr(err)
		}
		rep, err := protocol.ReadReply(br)
		if err != nil {
			return nil, ioErr(err)
		}
		return rep, mrerr.Code(rep.Code).OrNil()
	}
	call := func(op uint16, args [][]byte) error {
		_, err := callR(op, args)
		return err
	}

	// A. Transfer phase.
	if p.Creds != nil {
		payload := kerberos.BuildAuth(p.Creds, "dcm", p.Clock)
		if err := call(OpUAuth, [][]byte{payload.Marshal()}); err != nil {
			return err
		}
	}
	sum := sha256.Sum256(p.Data)
	sumHex := hex.EncodeToString(sum[:])
	whole := !p.Chunked
	if p.Chunked {
		switch err := p.transferChunked(callR, sumHex); err {
		case nil:
		case mrerr.MrUnknownProc:
			// An agent predating the chunk ops: downgrade to the
			// whole-file transfer.
			p.Downgraded = true
			whole = true
		default:
			return err
		}
	}
	if whole {
		if err := call(OpUXfer, [][]byte{
			[]byte(p.Target), []byte(sumHex), p.Data,
		}); err != nil {
			return err
		}
		p.SentBytes = len(p.Data)
		p.ReusedBytes = 0
	}
	if err := call(OpUScript, protocol.BytesArgs(p.Script)); err != nil {
		return err
	}

	// B. Execution phase + C. confirmation.
	return call(OpUExecute, nil)
}

// chunkBatchBytes bounds how much chunk data rides in one OpUChunks
// request, so a large diff still flows in protocol-sized frames.
const chunkBatchBytes = 256 << 10

// transferChunked runs the manifest/chunks/assemble exchange. It
// returns MrUnknownProc untouched so Run can downgrade.
func (p *Push) transferChunked(callR func(uint16, [][]byte) (*protocol.Reply, error), sumHex string) error {
	chunks := SplitChunks(p.Data)
	rep, err := callR(OpUManifest, [][]byte{
		[]byte(p.Target), []byte(sumHex), EncodeManifest(chunks),
	})
	if err != nil {
		return err
	}

	sent := 0
	var batch [][]byte
	batchBytes := 0
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		_, err := callR(OpUChunks, batch)
		batch, batchBytes = nil, 0
		return err
	}
	for _, f := range rep.Fields {
		idx, aerr := strconv.Atoi(string(f))
		if aerr != nil || idx < 0 || idx >= len(chunks) {
			return mrerr.UpdBadInstr
		}
		c := chunks[idx]
		batch = append(batch, f, p.Data[c.Off:c.Off+c.Len])
		batchBytes += c.Len
		sent += c.Len
		if batchBytes >= chunkBatchBytes {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	if err := flush(); err != nil {
		return err
	}
	if _, err := callR(OpUAssemble, nil); err != nil {
		return err
	}
	p.SentBytes = sent
	p.ReusedBytes = len(p.Data) - sent
	return nil
}

// ioErr classifies a transport failure: deadline exceeded is a timeout,
// anything else (connection reset by a crashed agent) is unreachable.
// Both are soft errors to the DCM.
func ioErr(err error) error {
	if ne, ok := err.(net.Error); ok && ne.Timeout() {
		return mrerr.UpdTimeout
	}
	return mrerr.UpdUnreachable
}

// IsSoftError reports whether an update error should be retried later
// rather than recorded as a hard failure (section 5.9 trouble recovery:
// crashes and network loss are retried; script failures are hard).
func IsSoftError(err error) bool {
	return err == mrerr.UpdUnreachable || err == mrerr.UpdTimeout || err == mrerr.UpdBusy
}
