package update

import (
	"bufio"
	"net"
	"testing"
	"time"

	"moira/internal/clock"
	"moira/internal/mrerr"
	"moira/internal/protocol"
)

// authRoundTrip performs one OpUAuth exchange on a raw connection so
// the test knows the agent has accepted, tracked, and parked the
// connection in its read loop.
func authRoundTrip(t *testing.T, conn net.Conn) {
	t.Helper()
	bw := bufio.NewWriter(conn)
	err := protocol.WriteRequest(bw, &protocol.Request{Version: protocol.Version, Op: OpUAuth})
	if err == nil {
		err = bw.Flush()
	}
	if err != nil {
		t.Fatal(err)
	}
	rep, err := protocol.ReadReply(bufio.NewReader(conn))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Code != int32(mrerr.Success) {
		t.Fatalf("auth code = %d", rep.Code)
	}
}

// TestAgentCloseReturnsWithIdleConn is the regression test for the
// agent-side shutdown hang: with ReadTimeout zero a connected DCM that
// never sends another frame used to park serve() in ReadRequest
// forever, and Close blocked on the WaitGroup behind it.
func TestAgentCloseReturnsWithIdleConn(t *testing.T) {
	a := NewAgent("SUOMI.MIT.EDU", t.TempDir(), nil)
	a.ReadTimeout = 0
	addr, err := a.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	authRoundTrip(t, conn)

	done := make(chan struct{})
	go func() {
		a.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(3 * time.Second):
		t.Fatal("Agent.Close did not return with an idle connection held open")
	}
}

// TestAgentLatencyVirtualClock: SetLatency waits on the agent's clock,
// so under a fake clock an hour of injected service delay elapses
// virtually and the push completes in real milliseconds.
func TestAgentLatencyVirtualClock(t *testing.T) {
	a, push := rig(t)
	fake := clock.NewFake(time.Unix(600000000, 0))
	a.Clock = fake
	a.SetLatency(time.Hour)

	start := time.Now()
	err := push(map[string][]byte{"f": []byte("x")}, []string{"extract f /f", "install /f"})
	if err != nil {
		t.Fatal(err)
	}
	if wall := time.Since(start); wall > 2*time.Second {
		t.Errorf("push with virtual latency took %v of real time", wall)
	}
	if slept := fake.Slept(); slept < time.Hour {
		t.Errorf("virtual time slept = %v, want >= 1h", slept)
	}
}

// TestAgentPanicRecovery: a panicking exec handler answers MR_INTERNAL,
// is counted, and leaves the agent able to take the next update.
func TestAgentPanicRecovery(t *testing.T) {
	a, push := rig(t)
	a.RegisterCommand("boom", func(*Agent, []string) error {
		panic("deliberate test panic")
	})

	err := push(map[string][]byte{"f": []byte("x")}, []string{"exec boom"})
	if err != mrerr.MrInternal {
		t.Errorf("panicking script err = %v, want MR_INTERNAL", err)
	}
	// The agent survives and installs the next update normally.
	err = push(map[string][]byte{"f": []byte("ok")}, []string{"extract f /f", "install /f"})
	if err != nil {
		t.Errorf("push after panic: %v", err)
	}
	if got, err := a.ReadHostFile("/f"); err != nil || string(got) != "ok" {
		t.Errorf("installed after panic = %q, %v", got, err)
	}
	if n := a.Registry().Counter("update.panics.recovered").Value(); n != 1 {
		t.Errorf("update.panics.recovered = %d, want 1", n)
	}
}
