package update

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"math/rand"
	"net"
	"testing"
	"time"

	"moira/internal/mrerr"
	"moira/internal/protocol"
)

// randBytes is deterministic test data with enough entropy that the
// rolling hash finds boundaries.
func randBytes(seed int64, n int) []byte {
	r := rand.New(rand.NewSource(seed))
	out := make([]byte, n)
	r.Read(out)
	return out
}

func TestSplitChunksTilesInput(t *testing.T) {
	for _, n := range []int{0, 1, chunkMin - 1, chunkMin, chunkMin + 1, 100_000, 300_000} {
		data := randBytes(int64(n), n)
		chunks := SplitChunks(data)
		if n == 0 {
			if len(chunks) != 0 {
				t.Errorf("n=0: %d chunks", len(chunks))
			}
			continue
		}
		off := 0
		for i, c := range chunks {
			if c.Off != off {
				t.Fatalf("n=%d chunk %d: off %d, want %d", n, i, c.Off, off)
			}
			if c.Len <= 0 || c.Len > chunkMax {
				t.Fatalf("n=%d chunk %d: len %d out of bounds", n, i, c.Len)
			}
			sum := sha256.Sum256(data[c.Off : c.Off+c.Len])
			if c.Sum != hex.EncodeToString(sum[:]) {
				t.Fatalf("n=%d chunk %d: bad checksum", n, i)
			}
			off += c.Len
		}
		if off != n {
			t.Fatalf("n=%d: chunks cover %d bytes", n, off)
		}
	}
}

func TestSplitChunksBoundariesAreLocal(t *testing.T) {
	// A single-byte edit in the middle must leave the chunking of the
	// untouched regions alone: most chunk sums reappear unchanged.
	data := randBytes(1, 256<<10)
	before := SplitChunks(data)
	edited := append([]byte(nil), data...)
	edited[len(edited)/2] ^= 0xff
	after := SplitChunks(edited)

	sums := make(map[string]bool, len(before))
	for _, c := range before {
		sums[c.Sum] = true
	}
	reused := 0
	for _, c := range after {
		if sums[c.Sum] {
			reused++
		}
	}
	if len(after) < 8 {
		t.Fatalf("only %d chunks; data too small for the test", len(after))
	}
	// All but the chunk containing the edit (and at most a couple of
	// resync neighbors) must match.
	if reused < len(after)-3 {
		t.Errorf("reused %d of %d chunks after a 1-byte edit", reused, len(after))
	}
}

func TestManifestRoundTrip(t *testing.T) {
	data := randBytes(2, 100_000)
	chunks := SplitChunks(data)
	decoded, err := DecodeManifest(EncodeManifest(chunks))
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded) != len(chunks) {
		t.Fatalf("decoded %d chunks, want %d", len(decoded), len(chunks))
	}
	for i := range chunks {
		if decoded[i] != chunks[i] {
			t.Fatalf("chunk %d: %+v != %+v", i, decoded[i], chunks[i])
		}
	}
}

func TestDecodeManifestRejectsCorruption(t *testing.T) {
	good := string(EncodeManifest(SplitChunks(randBytes(3, 50_000))))
	sum64 := strings64()
	for name, m := range map[string]string{
		"no separator":   "4096" + sum64 + "\n",
		"bad length":     "zap " + sum64 + "\n",
		"zero length":    "0 " + sum64 + "\n",
		"negative":       "-5 " + sum64 + "\n",
		"oversized":      "9999999 " + sum64 + "\n",
		"short sum":      "4096 abcd\n",
		"non-hex sum":    "4096 " + "zz" + sum64[2:] + "\n",
		"tacked garbage": good + "4096 short\n",
	} {
		if _, err := DecodeManifest([]byte(m)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// Blank lines are tolerated (trailing newline framing).
	if _, err := DecodeManifest([]byte("\n" + good + "\n")); err != nil {
		t.Errorf("blank lines rejected: %v", err)
	}
}

func strings64() string {
	sum := sha256.Sum256([]byte("x"))
	return hex.EncodeToString(sum[:])
}

func TestReassembleVerifies(t *testing.T) {
	data := randBytes(4, 120_000)
	chunks := SplitChunks(data)
	whole := sha256.Sum256(data)
	wholeSum := hex.EncodeToString(whole[:])
	have := map[string][]byte{}
	for _, c := range chunks {
		have[c.Sum] = data[c.Off : c.Off+c.Len]
	}

	got, err := Reassemble(chunks, have, wholeSum)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("identity reassembly failed: %v", err)
	}

	// Missing chunk.
	missing := map[string][]byte{}
	for k, v := range have {
		missing[k] = v
	}
	delete(missing, chunks[1].Sum)
	if _, err := Reassemble(chunks, missing, wholeSum); err == nil {
		t.Error("missing chunk accepted")
	}

	// Corrupt chunk bytes (right length, wrong content).
	corrupt := map[string][]byte{}
	for k, v := range have {
		corrupt[k] = v
	}
	bad := append([]byte(nil), have[chunks[0].Sum]...)
	bad[0] ^= 1
	corrupt[chunks[0].Sum] = bad
	if _, err := Reassemble(chunks, corrupt, wholeSum); err == nil {
		t.Error("corrupt chunk accepted")
	}

	// Wrong whole-file checksum.
	if _, err := Reassemble(chunks, have, strings64()); err == nil {
		t.Error("wrong whole-file checksum accepted")
	}
}

// TestChunkedPushReusesUnchangedData drives the full manifest/chunks/
// assemble exchange against a real agent: the second push of a slightly
// edited bundle must travel mostly as reused chunks, and the installed
// file must be byte-identical to the new bundle.
func TestChunkedPushReusesUnchangedData(t *testing.T) {
	a := NewAgent("SUOMI.MIT.EDU", t.TempDir(), nil)
	addr, err := a.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })

	push := func(data []byte) *Push {
		p := &Push{Addr: addr.String(), Target: "/tmp/bundle", Data: data,
			// The transfer already deposits the data at the target; a
			// blank instruction keeps the execution phase a no-op.
			Script:  []string{""},
			Timeout: 5 * time.Second, Chunked: true}
		if err := p.Run(); err != nil {
			t.Fatalf("push: %v", err)
		}
		return p
	}

	v1 := randBytes(10, 200<<10)
	p1 := push(v1)
	if p1.Downgraded {
		t.Fatal("first push downgraded against a chunk-capable agent")
	}
	if p1.SentBytes != len(v1) || p1.ReusedBytes != 0 {
		t.Errorf("cold push sent=%d reused=%d, want %d/0", p1.SentBytes, p1.ReusedBytes, len(v1))
	}

	v2 := append([]byte(nil), v1...)
	v2[50<<10] ^= 0xaa // one-byte edit
	p2 := push(v2)
	if p2.SentBytes+p2.ReusedBytes != len(v2) {
		t.Errorf("accounting: sent %d + reused %d != %d", p2.SentBytes, p2.ReusedBytes, len(v2))
	}
	if p2.ReusedBytes < len(v2)/2 {
		t.Errorf("warm push reused only %d of %d bytes", p2.ReusedBytes, len(v2))
	}
	got, err := a.ReadHostFile("/tmp/bundle")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, v2) {
		t.Error("installed bundle differs from pushed data")
	}

	// An identical re-push ships zero chunk bytes.
	p3 := push(v2)
	if p3.SentBytes != 0 || p3.ReusedBytes != len(v2) {
		t.Errorf("identical push sent=%d reused=%d", p3.SentBytes, p3.ReusedBytes)
	}
}

// TestChunkedPushDowngradesToWholeFile runs a chunked push against a
// minimal legacy agent that answers MrUnknownProc to the chunk ops: the
// pusher must fall back to OpUXfer transparently.
func TestChunkedPushDowngradesToWholeFile(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })

	var gotData []byte
	done := make(chan struct{})
	go func() {
		defer close(done)
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		br := bufio.NewReader(conn)
		bw := bufio.NewWriter(conn)
		for {
			req, err := protocol.ReadRequest(br)
			if err != nil {
				return
			}
			code := mrerr.Success
			switch req.Op {
			case OpUXfer:
				gotData = append([]byte(nil), req.Args[2]...)
			case OpUScript, OpUExecute:
			default: // chunk ops and anything else this agent predates
				code = mrerr.MrUnknownProc
			}
			protocol.WriteReply(bw, &protocol.Reply{Version: protocol.Version, Code: int32(code)})
			bw.Flush()
			if req.Op == OpUExecute {
				return
			}
		}
	}()

	data := randBytes(11, 64<<10)
	p := &Push{Addr: ln.Addr().String(), Target: "/tmp/x", Data: data,
		Script: []string{"install /tmp/x"}, Timeout: 5 * time.Second, Chunked: true}
	if err := p.Run(); err != nil {
		t.Fatalf("push: %v", err)
	}
	<-done
	if !p.Downgraded {
		t.Error("push did not report the downgrade")
	}
	if p.SentBytes != len(data) || p.ReusedBytes != 0 {
		t.Errorf("downgraded push sent=%d reused=%d", p.SentBytes, p.ReusedBytes)
	}
	if !bytes.Equal(gotData, data) {
		t.Error("legacy agent received wrong data")
	}
}

// FuzzChunker fuzzes the chunking pipeline three ways at once:
// reassembly identity (split → reassemble reproduces the input),
// boundary stability (a single-byte edit still tiles the input), and
// corrupt-manifest rejection (DecodeManifest fails cleanly, and a
// manifest/have mismatch never reassembles into a wrong file).
func FuzzChunker(f *testing.F) {
	f.Add([]byte("hello world"), uint32(3), byte(0xff))
	f.Add(randBytes(1, 10_000), uint32(5000), byte(1))
	f.Add([]byte{}, uint32(0), byte(0))
	f.Fuzz(func(t *testing.T, data []byte, editPos uint32, editByte byte) {
		chunks := SplitChunks(data)
		tile := func(chunks []Chunk, n int) {
			off := 0
			for _, c := range chunks {
				if c.Off != off || c.Len <= 0 || c.Len > chunkMax {
					t.Fatalf("bad tiling: %+v at off %d", c, off)
				}
				off += c.Len
			}
			if off != n {
				t.Fatalf("chunks cover %d of %d bytes", off, n)
			}
		}
		if len(data) > 0 {
			tile(chunks, len(data))
		} else if len(chunks) != 0 {
			t.Fatal("empty input produced chunks")
		}

		// Identity: reassemble from our own chunks.
		have := map[string][]byte{}
		for _, c := range chunks {
			have[c.Sum] = data[c.Off : c.Off+c.Len]
		}
		whole := sha256.Sum256(data)
		got, err := Reassemble(chunks, have, hex.EncodeToString(whole[:]))
		if err != nil {
			t.Fatalf("identity reassembly: %v", err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("reassembly is not the identity")
		}

		// The wire round-trip preserves the chunk list.
		decoded, err := DecodeManifest(EncodeManifest(chunks))
		if err != nil {
			t.Fatalf("own manifest rejected: %v", err)
		}
		if len(decoded) != len(chunks) {
			t.Fatalf("round-trip %d != %d chunks", len(decoded), len(chunks))
		}

		// Boundary stability: a single-byte edit still tiles.
		if len(data) > 0 {
			edited := append([]byte(nil), data...)
			edited[int(editPos)%len(edited)] ^= editByte
			tile(SplitChunks(edited), len(edited))
		}

		// Corrupt manifest bytes either fail to decode or decode into
		// chunks that cannot assemble into a different file under the
		// original whole-file checksum.
		mbytes := EncodeManifest(chunks)
		if len(mbytes) > 0 {
			mbytes[int(editPos)%len(mbytes)] ^= editByte | 1
			if dec, err := DecodeManifest(mbytes); err == nil {
				if out, err := Reassemble(dec, have, hex.EncodeToString(whole[:])); err == nil {
					if !bytes.Equal(out, data) {
						t.Fatal("corrupted manifest reassembled into a different file that passed the whole-file checksum")
					}
				}
			}
		}
	})
}
