package update

import (
	"bufio"
	"bytes"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"moira/internal/clock"
	"moira/internal/kerberos"
	"moira/internal/mrerr"
	"moira/internal/protocol"
)

func TestTarRoundTrip(t *testing.T) {
	files := map[string][]byte{
		"passwd.db": []byte("babette.passwd HS UNSPECA ...\n"),
		"uid.db":    []byte("6530.uid HS CNAME babette.passwd\n"),
	}
	archive, err := BuildTar(files)
	if err != nil {
		t.Fatal(err)
	}
	names, err := ListTar(archive)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "passwd.db" { // sorted
		t.Errorf("names = %v", names)
	}
	data, err := ExtractMember(archive, "uid.db")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, files["uid.db"]) {
		t.Errorf("member = %q", data)
	}
	if _, err := ExtractMember(archive, "ghost.db"); err != mrerr.UpdNoFile {
		t.Errorf("missing member err = %v", err)
	}
}

// rig creates an agent on a temp root plus a Push preconfigured for it.
func rig(t *testing.T) (*Agent, func(files map[string][]byte, script []string) error) {
	t.Helper()
	a := NewAgent("SUOMI.MIT.EDU", t.TempDir(), nil)
	addr, err := a.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	push := func(files map[string][]byte, script []string) error {
		data, err := BuildTar(files)
		if err != nil {
			t.Fatal(err)
		}
		p := &Push{Addr: addr.String(), Target: "/tmp/hesiod.out", Data: data,
			Script: script, Timeout: 5 * time.Second}
		return p.Run()
	}
	return a, push
}

func TestFullUpdateFlow(t *testing.T) {
	a, push := rig(t)
	files := map[string][]byte{"passwd.db": []byte("v1\n")}
	script := []string{
		"extract passwd.db /etc/athena/passwd.db",
		"install /etc/athena/passwd.db",
	}
	if err := push(files, script); err != nil {
		t.Fatal(err)
	}
	got, err := a.ReadHostFile("/etc/athena/passwd.db")
	if err != nil || string(got) != "v1\n" {
		t.Fatalf("installed = %q, %v", got, err)
	}
	// Second update replaces atomically and keeps a backup.
	files["passwd.db"] = []byte("v2\n")
	if err := push(files, script); err != nil {
		t.Fatal(err)
	}
	got, _ = a.ReadHostFile("/etc/athena/passwd.db")
	if string(got) != "v2\n" {
		t.Errorf("after second install = %q", got)
	}
	bak, err := a.ReadHostFile("/etc/athena/passwd.db" + backupSuffix)
	if err != nil || string(bak) != "v1\n" {
		t.Errorf("backup = %q, %v", bak, err)
	}
}

func TestRevertInstruction(t *testing.T) {
	a, push := rig(t)
	script := []string{"extract f /f", "install /f"}
	if err := push(map[string][]byte{"f": []byte("old")}, script); err != nil {
		t.Fatal(err)
	}
	if err := push(map[string][]byte{"f": []byte("new")}, script); err != nil {
		t.Fatal(err)
	}
	// Erroneous installation: revert.
	if err := push(map[string][]byte{"f": []byte("unused")}, []string{"revert /f"}); err != nil {
		t.Fatal(err)
	}
	got, _ := a.ReadHostFile("/f")
	if string(got) != "old" {
		t.Errorf("after revert = %q", got)
	}
	// Nothing left to revert to.
	err := push(map[string][]byte{"f": []byte("unused")}, []string{"revert /f"})
	if err != mrerr.UpdNoRevert {
		t.Errorf("double revert err = %v", err)
	}
}

func TestSignalInstruction(t *testing.T) {
	a, push := rig(t)
	if err := a.WriteHostFile("/var/run/hesiod.pid", []byte("1234\n")); err != nil {
		t.Fatal(err)
	}
	if err := push(map[string][]byte{}, []string{"signal /var/run/hesiod.pid"}); err != nil {
		t.Fatal(err)
	}
	if sig := a.Signals(); len(sig) != 1 || sig[0] != 1234 {
		t.Errorf("signals = %v", sig)
	}
}

func TestExecInstruction(t *testing.T) {
	a, push := rig(t)
	var gotArgs []string
	a.RegisterCommand("restart_hesiod", func(ag *Agent, args []string) error {
		gotArgs = args
		return nil
	})
	if err := push(map[string][]byte{}, []string{"exec restart_hesiod fast"}); err != nil {
		t.Fatal(err)
	}
	if len(gotArgs) != 1 || gotArgs[0] != "fast" {
		t.Errorf("args = %v", gotArgs)
	}
	// Unregistered command is a hard script error.
	if err := push(map[string][]byte{}, []string{"exec nonsense"}); err != mrerr.UpdBadInstr {
		t.Errorf("unknown exec err = %v", err)
	}
	// A failing command reports a script error.
	a.RegisterCommand("fail", func(*Agent, []string) error { return mrerr.MrInternal })
	if err := push(map[string][]byte{}, []string{"exec fail"}); err != mrerr.UpdScriptError {
		t.Errorf("failing exec err = %v", err)
	}
}

func TestChecksumMismatch(t *testing.T) {
	a := NewAgent("H", t.TempDir(), nil)
	addr, _ := a.Listen("127.0.0.1:0")
	defer a.Close()
	// Hand-roll a push with a bad checksum by corrupting Data after
	// computing the sum — easiest is to call the agent directly with a
	// wrong sum via a custom Push: tweak by wrapping Run. Instead,
	// exercise it through the exported API by corrupting in transit:
	// build a Push whose Data changes between sum computation and send
	// is not possible, so test the agent path with a raw session.
	p := &Push{Addr: addr.String(), Target: "/t", Data: []byte("data"),
		Script: []string{}, Timeout: 2 * time.Second}
	if err := p.Run(); err != nil {
		t.Fatalf("control push failed: %v", err)
	}
	// Now the raw path: send a frame with a wrong checksum.
	if err := rawXferBadSum(addr.String()); err != mrerr.UpdChecksum {
		t.Errorf("bad checksum err = %v", err)
	}
}

func TestPathEscapeRejected(t *testing.T) {
	_, push := rig(t)
	err := push(map[string][]byte{"f": []byte("x")},
		[]string{"extract f ../../outside"})
	if err != mrerr.UpdBadInstr {
		t.Errorf("escape err = %v", err)
	}
}

func TestUnreachableHost(t *testing.T) {
	p := &Push{Addr: "127.0.0.1:1", Target: "/t", Data: nil, Timeout: time.Second}
	err := p.Run()
	if err != mrerr.UpdUnreachable {
		t.Errorf("err = %v", err)
	}
	if !IsSoftError(err) {
		t.Error("unreachable should be a soft error")
	}
	if IsSoftError(mrerr.UpdScriptError) {
		t.Error("script error should be hard")
	}
}

func TestCrashRecoveryIdempotence(t *testing.T) {
	a, push := rig(t)
	files := map[string][]byte{"f": []byte("payload")}
	script := []string{"extract f /etc/f", "install /etc/f"}

	// Crash after staging the tar, before execution.
	crashes := 1
	a.SetCrashPoint(func(stage string) bool {
		if stage == "before-execute" && crashes > 0 {
			crashes--
			return true
		}
		return false
	})
	err := push(files, script)
	if err == nil {
		t.Fatal("push against crashing agent succeeded")
	}
	if !IsSoftError(err) {
		t.Errorf("crash mid-update should classify soft, got %v", err)
	}
	// Retry succeeds and installs the same content (idempotent).
	a.SetCrashPoint(nil)
	if err := push(files, script); err != nil {
		t.Fatal(err)
	}
	got, _ := a.ReadHostFile("/etc/f")
	if string(got) != "payload" {
		t.Errorf("after recovery = %q", got)
	}

	// Crash mid-script after install: the file is already in place; the
	// retried update installs again harmlessly ("extra installations are
	// not harmful").
	crashed := false
	a.SetCrashPoint(func(stage string) bool {
		if stage == "instr-1" && !crashed {
			crashed = true
			return false // let install run, crash before... nothing after
		}
		return false
	})
	files["f"] = []byte("payload2")
	if err := push(files, script); err != nil {
		t.Fatal(err)
	}
	if err := push(files, script); err != nil {
		t.Fatal(err)
	}
	got, _ = a.ReadHostFile("/etc/f")
	if string(got) != "payload2" {
		t.Errorf("after repeated install = %q", got)
	}
}

func TestStaleUpdateFileCleaned(t *testing.T) {
	a, push := rig(t)
	// Simulate a crashed previous run leaving an incomplete staging file
	// next to the target.
	if err := a.WriteHostFile("/tmp/hesiod.out"+updateSuffix, []byte("partial")); err != nil {
		t.Fatal(err)
	}
	if err := push(map[string][]byte{"f": []byte("x")}, []string{}); err != nil {
		t.Fatal(err)
	}
	if _, err := a.ReadHostFile("/tmp/hesiod.out" + updateSuffix); !os.IsNotExist(err) {
		t.Errorf("stale staging file survived: %v", err)
	}
}

func TestAuthenticatedAgent(t *testing.T) {
	clk := clock.NewFake(time.Unix(600000000, 0))
	kdc := kerberos.NewKDC("ATHENA.MIT.EDU", clk)
	kdc.AddPrincipal("moira_update", "updpw")
	kdc.AddPrincipal("dcm", "dcmpw")
	key, _ := kdc.Srvtab("moira_update")

	a := NewAgent("H", t.TempDir(), kerberos.NewVerifier("moira_update", key, clk))
	addr, _ := a.Listen("127.0.0.1:0")
	defer a.Close()

	data, _ := BuildTar(map[string][]byte{"f": []byte("x")})
	// Without credentials: refused.
	p := &Push{Addr: addr.String(), Target: "/t", Data: data,
		Script: []string{"extract f /f", "install /f"}, Timeout: 2 * time.Second, Clock: clk}
	if err := p.Run(); err != mrerr.UpdAuthFailed {
		t.Errorf("unauthenticated err = %v", err)
	}
	// With credentials: accepted.
	creds, err := kdc.GetTicket("dcm", "dcmpw", "moira_update")
	if err != nil {
		t.Fatal(err)
	}
	p.Creds = creds
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	got, _ := a.ReadHostFile("/f")
	if string(got) != "x" {
		t.Errorf("installed = %q", got)
	}
}

func TestBusyAgentRejectsSecondUpdate(t *testing.T) {
	a := NewAgent("SUOMI.MIT.EDU", t.TempDir(), nil)
	a.BusyWait = 0 // reject immediately rather than waiting (set before Listen)
	if _, err := a.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	// Hold the agent busy by marking it directly.
	if !a.lock() {
		t.Fatal("could not take agent lock")
	}
	defer a.unlock()
	p := &Push{Addr: a.Addr().String(), Target: "/t", Data: []byte("d"), Timeout: time.Second}
	if err := p.Run(); err != mrerr.UpdBusy {
		t.Errorf("busy err = %v", err)
	}
}

// rawXferBadSum speaks just enough protocol to deliver a lying checksum.
func rawXferBadSum(addr string) error {
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		return err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(2 * time.Second))
	bw := bufio.NewWriter(conn)
	req := &protocol.Request{Version: protocol.Version, Op: OpUXfer,
		Args: [][]byte{[]byte("/t"), []byte("deadbeef"), []byte("data")}}
	if err := protocol.WriteRequest(bw, req); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	rep, err := protocol.ReadReply(bufio.NewReader(conn))
	if err != nil {
		return err
	}
	return mrerr.Code(rep.Code).OrNil()
}

func TestReadWriteHostFilePathSafety(t *testing.T) {
	a := NewAgent("H", t.TempDir(), nil)
	if err := a.WriteHostFile("/sub/dir/file", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := a.ReadHostFile("/../../etc/passwd"); err == nil {
		// The join may still land inside root after cleaning; verify the
		// resolved path is inside.
		fp, _ := a.path("/../../etc/passwd")
		if !filepath.HasPrefix(fp, a.Root) {
			t.Error("path escaped the agent root")
		}
	}
}

// Property: any file set survives the tar round trip intact.
func TestPropertyTarRoundTrip(t *testing.T) {
	f := func(names []string, bodies [][]byte) bool {
		files := map[string][]byte{}
		for i, n := range names {
			if n == "" || len(n) > 100 || strings.ContainsAny(n, "/\x00") {
				continue
			}
			var body []byte
			if i < len(bodies) {
				body = bodies[i]
			}
			files[n] = body
		}
		archive, err := BuildTar(files)
		if err != nil {
			return false
		}
		listed, err := ListTar(archive)
		if err != nil || len(listed) != len(files) {
			return false
		}
		for n, want := range files {
			got, err := ExtractMember(archive, n)
			if err != nil || !bytes.Equal(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
