package pop

import (
	"testing"
	"time"

	"moira/internal/clock"
)

func TestDeliverAndRetrieve(t *testing.T) {
	clk := clock.NewFake(time.Unix(600000000, 0))
	s := NewServer("ATHENA-PO-1.MIT.EDU", clk)
	s.Deliver("babette", Message{From: "paul", Subject: "hi"})
	s.Deliver("babette", Message{From: "paul", Subject: "again"})
	if s.Count("babette") != 2 || s.Boxes() != 1 {
		t.Errorf("count = %d, boxes = %d", s.Count("babette"), s.Boxes())
	}
	msgs := s.Retrieve("babette")
	if len(msgs) != 2 || msgs[0].Subject != "hi" || msgs[0].Time != 600000000 {
		t.Errorf("retrieved = %+v", msgs)
	}
	// inc drains the box.
	if s.Count("babette") != 0 || len(s.Retrieve("babette")) != 0 {
		t.Error("box not drained")
	}
}

func TestRegistryRouting(t *testing.T) {
	r := NewRegistry()
	po1 := NewServer("ATHENA-PO-1.MIT.EDU", nil)
	r.Add(po1)

	remote, err := r.Route("babette@ATHENA-PO-1.LOCAL", Message{From: "x"})
	if err != nil || remote {
		t.Fatalf("local route: %v %v", remote, err)
	}
	if po1.Count("babette") != 1 {
		t.Error("message not delivered")
	}
	// Off-site addresses are reported remote, not failed.
	remote, err = r.Route("rubin@media-lab.mit.edu", Message{})
	if err != nil || !remote {
		t.Errorf("remote route: %v %v", remote, err)
	}
	// Unknown post office and unroutable shapes fail.
	if _, err := r.Route("x@GHOST-PO.LOCAL", Message{}); err == nil {
		t.Error("unknown PO routed")
	}
	if _, err := r.Route("no-at-sign", Message{}); err == nil {
		t.Error("bare name routed")
	}
	if _, ok := r.ServerFor("ATHENA-PO-1.LOCAL"); !ok {
		t.Error("ServerFor missed")
	}
}
