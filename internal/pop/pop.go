// Package pop simulates the Athena post office servers: the machines
// (ATHENA-PO-1, ATHENA-PO-2, ...) that hold users' mailboxes. Moira's
// interest in them is indirect — pobox assignments route mail here, and
// the POP serverhost rows carry box counts (value1) against capacity
// (value2) for least-loaded placement — but having real boxes lets the
// mail pipeline be tested end to end: aliases file → hub resolution →
// delivery → retrieval, the `inc`/`movemail` flow of section 5.8.2.
package pop

import (
	"fmt"
	"strings"
	"sync"

	"moira/internal/clock"
)

// Message is one delivered piece of mail.
type Message struct {
	From    string
	To      string // the address the hub resolved to
	Subject string
	Body    string
	Time    int64
}

// Server is one post office machine's mailbox store.
type Server struct {
	Name string // canonical machine name, e.g. ATHENA-PO-1.MIT.EDU

	mu    sync.Mutex
	boxes map[string][]Message
	clk   clock.Clock
}

// NewServer creates an empty post office.
func NewServer(name string, clk clock.Clock) *Server {
	if clk == nil {
		clk = clock.System
	}
	return &Server{Name: name, boxes: make(map[string][]Message), clk: clk}
}

// Deliver appends a message to login's box.
func (s *Server) Deliver(login string, m Message) {
	m.Time = s.clk.Now().Unix()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.boxes[login] = append(s.boxes[login], m)
}

// Retrieve drains login's box, the `inc` operation.
func (s *Server) Retrieve(login string) []Message {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.boxes[login]
	delete(s.boxes, login)
	return out
}

// Count reports how many messages are waiting for login.
func (s *Server) Count(login string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.boxes[login])
}

// Boxes reports how many non-empty boxes the server holds.
func (s *Server) Boxes() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.boxes)
}

// Registry maps the ".LOCAL" post office names appearing in the aliases
// file (ATHENA-PO-1.LOCAL) to servers, for the hub's final delivery hop.
type Registry struct {
	mu      sync.RWMutex
	servers map[string]*Server
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{servers: make(map[string]*Server)}
}

// Add registers a post office under its machine name; it becomes
// addressable by its .LOCAL short form.
func (r *Registry) Add(s *Server) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.servers[localName(s.Name)] = s
}

// localName converts ATHENA-PO-1.MIT.EDU to ATHENA-PO-1.LOCAL.
func localName(machine string) string {
	if i := strings.IndexByte(machine, '.'); i >= 0 {
		machine = machine[:i]
	}
	return machine + ".LOCAL"
}

// Route delivers one resolved address of the form login@PO.LOCAL. Other
// address shapes (external mail) are reported as remote.
func (r *Registry) Route(addr string, m Message) (remote bool, err error) {
	login, host, ok := strings.Cut(addr, "@")
	if !ok {
		return false, fmt.Errorf("pop: unroutable address %q", addr)
	}
	if !strings.HasSuffix(host, ".LOCAL") {
		return true, nil // off-site; a real hub would hand it to SMTP
	}
	r.mu.RLock()
	s := r.servers[host]
	r.mu.RUnlock()
	if s == nil {
		return false, fmt.Errorf("pop: no post office %q", host)
	}
	m.To = addr
	s.Deliver(login, m)
	return false, nil
}

// ServerFor returns the post office registered under a .LOCAL name.
func (r *Registry) ServerFor(local string) (*Server, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s, ok := r.servers[local]
	return s, ok
}
