// Package clock abstracts time for the Moira system. The DCM's behaviour
// is entirely driven by stored Unix timestamps and update intervals
// (dfgen, dfcheck, lasttry, lastsuccess), so tests inject a fake clock to
// exercise 6-hour, 12-hour, and 24-hour schedules without sleeping.
package clock

import (
	"sync"
	"time"
)

// Clock supplies the current time.
type Clock interface {
	Now() time.Time
}

// Real is a Clock backed by the system clock.
type Real struct{}

// Now returns the current system time.
func (Real) Now() time.Time { return time.Now() }

// System is a shared real clock.
var System Clock = Real{}

// Fake is a settable clock for tests. The zero value starts at the Unix
// epoch; use NewFake to start elsewhere.
type Fake struct {
	mu  sync.Mutex
	now time.Time
}

// NewFake returns a Fake clock set to t.
func NewFake(t time.Time) *Fake { return &Fake{now: t} }

// Now returns the fake current time.
func (f *Fake) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

// Set moves the clock to t.
func (f *Fake) Set(t time.Time) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.now = t
}

// Advance moves the clock forward by d and returns the new time.
func (f *Fake) Advance(d time.Duration) time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.now = f.now.Add(d)
	return f.now
}
