// Package clock abstracts time for the Moira system. The DCM's behaviour
// is entirely driven by stored Unix timestamps and update intervals
// (dfgen, dfcheck, lasttry, lastsuccess), so tests inject a fake clock to
// exercise 6-hour, 12-hour, and 24-hour schedules without sleeping.
package clock

import (
	"sync"
	"time"
)

// Clock supplies the current time.
type Clock interface {
	Now() time.Time
}

// Sleeper is implemented by clocks that have their own notion of
// waiting. The DCM's retry backoff sleeps through this interface so a
// fake clock can satisfy the wait in virtual time and keep tests
// deterministic and instant.
type Sleeper interface {
	Sleep(d time.Duration)
}

// Sleep pauses for d according to clk: a clock implementing Sleeper
// waits in its own time (the Fake advances virtually and returns at
// once), anything else falls back to a real time.Sleep. d <= 0 returns
// immediately.
func Sleep(clk Clock, d time.Duration) {
	if d <= 0 {
		return
	}
	if s, ok := clk.(Sleeper); ok {
		s.Sleep(d)
		return
	}
	time.Sleep(d)
}

// Real is a Clock backed by the system clock.
type Real struct{}

// Now returns the current system time.
func (Real) Now() time.Time { return time.Now() }

// Sleep blocks for d of real time.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

// System is a shared real clock.
var System Clock = Real{}

// Fake is a settable clock for tests. The zero value starts at the Unix
// epoch; use NewFake to start elsewhere.
type Fake struct {
	mu    sync.Mutex
	now   time.Time
	slept time.Duration
}

// NewFake returns a Fake clock set to t.
func NewFake(t time.Time) *Fake { return &Fake{now: t} }

// Now returns the fake current time.
func (f *Fake) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

// Set moves the clock to t.
func (f *Fake) Set(t time.Time) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.now = t
}

// Advance moves the clock forward by d and returns the new time.
func (f *Fake) Advance(d time.Duration) time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.now = f.now.Add(d)
	return f.now
}

// Sleep satisfies the wait in virtual time: the clock jumps forward by
// d and the caller resumes immediately. Concurrent sleepers each
// advance the clock, so virtual waits accumulate rather than overlap —
// coarse, but deterministic, which is what the backoff tests need.
func (f *Fake) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.now = f.now.Add(d)
	f.slept += d
}

// Slept reports the total virtual time spent in Sleep, letting tests
// assert on accumulated backoff waits without caring how the schedule
// interleaved.
func (f *Fake) Slept() time.Duration {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.slept
}
