package clock

import (
	"testing"
	"time"
)

func TestRealClockAdvances(t *testing.T) {
	a := System.Now()
	b := System.Now()
	if b.Before(a) {
		t.Errorf("system clock went backwards: %v then %v", a, b)
	}
}

func TestFakeClock(t *testing.T) {
	start := time.Unix(600000000, 0)
	f := NewFake(start)
	if !f.Now().Equal(start) {
		t.Errorf("Now = %v", f.Now())
	}
	got := f.Advance(6 * time.Hour)
	want := start.Add(6 * time.Hour)
	if !got.Equal(want) || !f.Now().Equal(want) {
		t.Errorf("after advance: %v / %v", got, f.Now())
	}
	f.Set(start)
	if !f.Now().Equal(start) {
		t.Errorf("after set: %v", f.Now())
	}
}

func TestSleepOnFakeIsVirtual(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	start := time.Now()
	Sleep(f, time.Hour)
	if real := time.Since(start); real > time.Second {
		t.Errorf("fake sleep took %v of real time", real)
	}
	if f.Now().Unix() != 3600 {
		t.Errorf("clock after sleep = %d", f.Now().Unix())
	}
	if f.Slept() != time.Hour {
		t.Errorf("Slept() = %v", f.Slept())
	}
	// Advance is not counted as sleeping.
	f.Advance(time.Minute)
	if f.Slept() != time.Hour {
		t.Errorf("Slept() after Advance = %v", f.Slept())
	}
	// Non-positive waits are no-ops.
	Sleep(f, 0)
	Sleep(f, -time.Second)
	if f.Slept() != time.Hour {
		t.Errorf("Slept() after zero sleeps = %v", f.Slept())
	}
}

func TestSleepOnRealBlocks(t *testing.T) {
	start := time.Now()
	Sleep(System, 10*time.Millisecond)
	if real := time.Since(start); real < 10*time.Millisecond {
		t.Errorf("real sleep returned after %v", real)
	}
}

func TestFakeClockConcurrent(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	done := make(chan struct{})
	go func() {
		for i := 0; i < 1000; i++ {
			f.Advance(time.Second)
		}
		close(done)
	}()
	for i := 0; i < 1000; i++ {
		_ = f.Now()
	}
	<-done
	if f.Now().Unix() != 1000 {
		t.Errorf("final = %d", f.Now().Unix())
	}
}
