package clock

import (
	"testing"
	"time"
)

func TestRealClockAdvances(t *testing.T) {
	a := System.Now()
	b := System.Now()
	if b.Before(a) {
		t.Errorf("system clock went backwards: %v then %v", a, b)
	}
}

func TestFakeClock(t *testing.T) {
	start := time.Unix(600000000, 0)
	f := NewFake(start)
	if !f.Now().Equal(start) {
		t.Errorf("Now = %v", f.Now())
	}
	got := f.Advance(6 * time.Hour)
	want := start.Add(6 * time.Hour)
	if !got.Equal(want) || !f.Now().Equal(want) {
		t.Errorf("after advance: %v / %v", got, f.Now())
	}
	f.Set(start)
	if !f.Now().Equal(start) {
		t.Errorf("after set: %v", f.Now())
	}
}

func TestFakeClockConcurrent(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	done := make(chan struct{})
	go func() {
		for i := 0; i < 1000; i++ {
			f.Advance(time.Second)
		}
		close(done)
	}()
	for i := 0; i < 1000; i++ {
		_ = f.Now()
	}
	<-done
	if f.Now().Unix() != 1000 {
		t.Errorf("final = %d", f.Now().Unix())
	}
}
