// Package workload builds deterministic synthetic Athena populations:
// the stand-in for MIT's production data that the paper's deployment
// numbers describe (section 5.1: 10,000 active users, 20 NFS locker
// servers, one hesiod file set, one mail hub, a handful of zephyr
// classes). The same generator, scaled down, seeds the examples and
// integration tests.
package workload

import (
	"fmt"
	"math/rand"

	"moira/internal/db"
)

// Config sizes a population. The zero value is useless; start from
// Default10K or Scaled.
type Config struct {
	Seed int64

	Users          int // active users
	POServers      int // post office machines
	NFSServers     int // NFS locker servers
	PartsPerServer int // exported partitions per NFS server
	HesiodServers  int
	ZephyrServers  int
	ZephyrClasses  int
	Workstations   int
	Clusters       int
	Printers       int
	NetServices    int
	MailLists      int
	AvgListSize    int
}

// Default10K is the paper-scale deployment of section 5.1.
func Default10K() Config {
	return Scaled(10000)
}

// Scaled builds a configuration proportional to the user count, pinned
// to the paper's absolute server counts at 10k users.
func Scaled(users int) Config {
	frac := func(n int) int {
		v := n * users / 10000
		if v < 1 {
			v = 1
		}
		return v
	}
	return Config{
		Seed:           42,
		Users:          users,
		POServers:      2,
		NFSServers:     frac(20),
		PartsPerServer: 1,
		HesiodServers:  1,
		ZephyrServers:  3,
		ZephyrClasses:  6,
		Workstations:   frac(1000),
		Clusters:       frac(12),
		Printers:       frac(40),
		NetServices:    200,
		MailLists:      frac(1200),
		AvgListSize:    8,
	}
}

// Stats reports what Populate created.
type Stats struct {
	Users, Lists, Members, Machines, Clusters int
	Filesystems, Quotas, Printers, Services   int
	ServerHosts                               int
}

// Hosts returned by Populate for wiring up agents in tests and benches.
type Hosts struct {
	Hesiod  []string
	NFS     []string
	POs     []string
	Mailhub string
	Zephyr  []string
}

var syllables = []string{
	"ba", "be", "bi", "bo", "bu", "da", "de", "di", "do", "du",
	"ka", "ke", "ki", "ko", "ku", "la", "le", "li", "lo", "lu",
	"ma", "me", "mi", "mo", "mu", "na", "ne", "ni", "no", "nu",
	"ra", "re", "ri", "ro", "ru", "sa", "se", "si", "so", "su",
	"ta", "te", "ti", "to", "tu", "va", "ve", "vi", "vo", "vu",
	"za", "ze", "zi", "zo", "zu", "ga", "ge", "gi", "go", "gu",
}

var firstNames = []string{
	"Harmon", "Angela", "Gerhard", "Martin", "Peter", "Jean", "Mark",
	"Michael", "Bill", "Ken", "Laura", "Susan", "David", "Karen",
	"James", "Mary", "Robert", "Linda", "John", "Barbara",
}

var lastNames = []string{
	"Fowler", "Barba", "Messmer", "Zimmermann", "Delaney", "Levine",
	"Rosenstein", "Gretzinger", "Diaz", "Sommerfeld", "Raeburn",
	"Smith", "Jones", "Chen", "Garcia", "Miller", "Davis", "Wilson",
	"Anderson", "Taylor",
}

type namer struct {
	rng  *rand.Rand
	used map[string]bool
}

func (n *namer) login() string {
	for {
		k := 2 + n.rng.Intn(2)
		s := ""
		for i := 0; i < k; i++ {
			s += syllables[n.rng.Intn(len(syllables))]
		}
		if n.rng.Intn(3) == 0 {
			s += fmt.Sprintf("%d", n.rng.Intn(10))
		}
		if !n.used[s] {
			n.used[s] = true
			return s
		}
	}
}

// classes a synthetic student may be in; must match the bootstrap TYPE
// aliases.
var classes = []string{"1988", "1989", "1990", "1991", "1992", "1993", "G", "STAFF", "FACULTY"}

// Populate fills a bootstrapped database with the synthetic population
// and the DCM service/serverhost records for HESIOD, NFS, SMTP, and
// ZEPHYR. It performs direct inserts under one exclusive hold — the
// moral equivalent of the registrar-tape bulk load.
func Populate(d *db.DB, cfg Config) (*Stats, *Hosts, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	nm := &namer{rng: rng, used: map[string]bool{"root": true, "moira": true}}
	stats := &Stats{}
	hosts := &Hosts{}

	d.LockExclusive()
	defer d.UnlockExclusive()

	mod := db.ModInfo{Time: d.Now(), By: "root", With: "workload"}

	newMachine := func(name, typ string) (int, error) {
		id, err := d.AllocID("mach_id")
		if err != nil {
			return 0, err
		}
		if err := d.InsertMachine(&db.Machine{MachID: id, Name: name, Type: typ, Mod: mod}); err != nil {
			return 0, err
		}
		stats.Machines++
		return id, nil
	}

	// --- infrastructure machines ---
	var poIDs []int
	for i := 1; i <= cfg.POServers; i++ {
		name := fmt.Sprintf("ATHENA-PO-%d.MIT.EDU", i)
		id, err := newMachine(name, "VAX")
		if err != nil {
			return nil, nil, err
		}
		poIDs = append(poIDs, id)
		hosts.POs = append(hosts.POs, name)
	}
	var nfsSrvs []*nfsSrv
	for i := 1; i <= cfg.NFSServers; i++ {
		name := fmt.Sprintf("FS-%02d.MIT.EDU", i)
		id, err := newMachine(name, "VAX")
		if err != nil {
			return nil, nil, err
		}
		srv := &nfsSrv{machID: id, name: name}
		for p := 0; p < cfg.PartsPerServer; p++ {
			pid, err := d.AllocID("nfsphys_id")
			if err != nil {
				return nil, nil, err
			}
			part := &db.NFSPhys{
				NFSPhysID: pid, MachID: id,
				Dir:    fmt.Sprintf("/u%d", p+1),
				Device: fmt.Sprintf("ra%dc", p),
				Status: 1 | 2 | 4, // student+faculty+staff lockers
				Size:   400000,
				Mod:    mod,
			}
			if err := d.InsertNFSPhys(part); err != nil {
				return nil, nil, err
			}
			srv.parts = append(srv.parts, part)
		}
		nfsSrvs = append(nfsSrvs, srv)
		hosts.NFS = append(hosts.NFS, name)
	}
	var hesiodIDs []int
	for i := 1; i <= cfg.HesiodServers; i++ {
		name := fmt.Sprintf("HESIOD-%d.MIT.EDU", i)
		if i == 1 {
			name = "SUOMI.MIT.EDU" // the paper's target host
		}
		id, err := newMachine(name, "RT")
		if err != nil {
			return nil, nil, err
		}
		hesiodIDs = append(hesiodIDs, id)
		hosts.Hesiod = append(hosts.Hesiod, name)
	}
	mailhubID, err := newMachine("ATHENA.MIT.EDU", "VAX")
	if err != nil {
		return nil, nil, err
	}
	hosts.Mailhub = "ATHENA.MIT.EDU"
	var zephyrIDs []int
	for i := 1; i <= cfg.ZephyrServers; i++ {
		name := fmt.Sprintf("Z-%d.MIT.EDU", i)
		id, err := newMachine(name, "VAX")
		if err != nil {
			return nil, nil, err
		}
		zephyrIDs = append(zephyrIDs, id)
		hosts.Zephyr = append(hosts.Zephyr, name)
	}

	// --- clusters and workstations ---
	var cluIDs []int
	for i := 0; i < cfg.Clusters; i++ {
		cid, err := d.AllocID("clu_id")
		if err != nil {
			return nil, nil, err
		}
		name := fmt.Sprintf("bldg%d-vs", i+1)
		if err := d.InsertCluster(&db.Cluster{CluID: cid, Name: name,
			Desc:     fmt.Sprintf("building %d vaxstations", i+1),
			Location: fmt.Sprintf("Bldg %d", i+1), Mod: mod}); err != nil {
			return nil, nil, err
		}
		for _, svc := range []db.SvcData{
			{CluID: cid, ServLabel: "zephyr", ServCluster: fmt.Sprintf("z-%d.mit.edu", i%cfg.ZephyrServers+1)},
			{CluID: cid, ServLabel: "lpr", ServCluster: fmt.Sprintf("printer-%d", i+1)},
		} {
			if err := d.AddSvc(svc); err != nil {
				return nil, nil, err
			}
		}
		cluIDs = append(cluIDs, cid)
		stats.Clusters++
	}
	for i := 0; i < cfg.Workstations; i++ {
		name := fmt.Sprintf("W%04d.MIT.EDU", i+1)
		id, err := newMachine(name, []string{"VAX", "RT"}[rng.Intn(2)])
		if err != nil {
			return nil, nil, err
		}
		if len(cluIDs) > 0 {
			if err := d.AddMCMap(id, cluIDs[i%len(cluIDs)]); err != nil {
				return nil, nil, err
			}
			// A few machines sit in two clusters, exercising the
			// pseudo-cluster path in the hesiod generator.
			if i%97 == 0 && len(cluIDs) > 1 {
				if err := d.AddMCMap(id, cluIDs[(i+1)%len(cluIDs)]); err != nil {
					return nil, nil, err
				}
			}
		}
	}

	// --- users, their groups, home filesystems, quotas, poboxes ---
	defQuota, err := d.GetValue("def_quota")
	if err != nil {
		return nil, nil, err
	}
	poCount := make([]int, len(poIDs))
	var userIDs []int
	for i := 0; i < cfg.Users; i++ {
		login := nm.login()
		uid, err := d.AllocID("uid")
		if err != nil {
			return nil, nil, err
		}
		usersID, err := d.AllocID("users_id")
		if err != nil {
			return nil, nil, err
		}
		first := firstNames[rng.Intn(len(firstNames))]
		last := lastNames[rng.Intn(len(lastNames))]
		po := i % len(poIDs)
		poCount[po]++
		u := &db.User{
			UsersID: usersID, Login: login, UID: uid, Shell: "/bin/csh",
			Last: last, First: first, Status: db.UserActive,
			MITID:   fmt.Sprintf("xx%011d", rng.Int63n(1e11)),
			MITYear: classes[rng.Intn(len(classes))],
			Mod:     mod, Fullname: first + " " + last, FMod: mod,
			PoType: db.PoboxPOP, PopID: poIDs[po], PMod: mod,
		}
		if err := d.InsertUser(u); err != nil {
			return nil, nil, err
		}
		userIDs = append(userIDs, usersID)
		stats.Users++

		// Namesake group.
		gid, err := d.AllocID("gid")
		if err != nil {
			return nil, nil, err
		}
		lid, err := d.AllocID("list_id")
		if err != nil {
			return nil, nil, err
		}
		if err := d.InsertList(&db.List{ListID: lid, Name: login, Active: true,
			Group: true, GID: gid, Desc: "group of user " + login,
			ACLType: db.ACEUser, ACLID: usersID, Mod: mod}); err != nil {
			return nil, nil, err
		}
		if err := d.AddMember(lid, db.ACEUser, usersID); err != nil {
			return nil, nil, err
		}
		stats.Lists++
		stats.Members++

		// Home filesystem on a round-robin partition.
		srv := nfsSrvs[i%len(nfsSrvs)]
		part := srv.parts[(i/len(nfsSrvs))%len(srv.parts)]
		fid, err := d.AllocID("filsys_id")
		if err != nil {
			return nil, nil, err
		}
		if err := d.InsertFilesys(&db.Filesys{
			FilsysID: fid, Label: login, PhysID: part.NFSPhysID,
			Type: db.FSTypeNFS, MachID: srv.machID,
			Name: part.Dir + "/" + login, Mount: "/mit/" + login,
			Access: "w", Owner: usersID, Owners: lid, CreateFlg: true,
			LockerType: db.LockerHomedir, Mod: mod,
		}); err != nil {
			return nil, nil, err
		}
		if err := d.InsertQuota(&db.NFSQuota{UsersID: usersID, FilsysID: fid,
			PhysID: part.NFSPhysID, Quota: defQuota, Mod: mod}); err != nil {
			return nil, nil, err
		}
		part.Allocated += defQuota
		stats.Filesystems++
		stats.Quotas++
	}

	// --- mailing lists ---
	for i := 0; i < cfg.MailLists && len(userIDs) > 0; i++ {
		name := fmt.Sprintf("%s-%s", nm.login(), []string{"users", "discuss", "announce", "staff"}[rng.Intn(4)])
		lid, err := d.AllocID("list_id")
		if err != nil {
			return nil, nil, err
		}
		owner := userIDs[rng.Intn(len(userIDs))]
		l := &db.List{
			ListID: lid, Name: name, Active: true,
			Public:   rng.Intn(3) != 0,
			Hidden:   rng.Intn(20) == 0,
			Maillist: true,
			Group:    rng.Intn(10) == 0,
			GID:      -1,
			Desc:     "mailing list " + name,
			ACLType:  db.ACEUser, ACLID: owner, Mod: mod,
		}
		if l.Group {
			if l.GID, err = d.AllocID("gid"); err != nil {
				return nil, nil, err
			}
		}
		if err := d.InsertList(l); err != nil {
			return nil, nil, err
		}
		stats.Lists++
		n := 2 + rng.Intn(cfg.AvgListSize*2)
		for j := 0; j < n; j++ {
			uid := userIDs[rng.Intn(len(userIDs))]
			if err := d.AddMember(lid, db.ACEUser, uid); err == nil {
				stats.Members++
			}
		}
		// Occasional external (string) members, as in the paper's
		// video-users example.
		if rng.Intn(4) == 0 {
			sid, err := d.InternString(nm.login() + "@media-lab.mit.edu")
			if err != nil {
				return nil, nil, err
			}
			if err := d.AddMember(lid, db.ACEString, sid); err == nil {
				stats.Members++
			}
		}
	}

	// --- printers and network services ---
	for i := 0; i < cfg.Printers; i++ {
		name := fmt.Sprintf("ln03-%d", i+1)
		spool := zephyrIDs[0]
		if len(hesiodIDs) > 0 {
			spool = hesiodIDs[i%len(hesiodIDs)]
		}
		if err := d.InsertPrintcap(&db.Printcap{Name: name, MachID: spool,
			Dir: "/usr/spool/printer/" + name, RP: name, Mod: mod}); err != nil {
			return nil, nil, err
		}
		stats.Printers++
	}
	protos := []string{"TCP", "UDP"}
	for i := 0; i < cfg.NetServices; i++ {
		name := fmt.Sprintf("svc%03d", i+1)
		if err := d.InsertService(&db.Service{Name: name,
			Protocol: protos[rng.Intn(2)], Port: 1000 + i, Desc: "synthetic service", Mod: mod}); err != nil {
			return nil, nil, err
		}
		stats.Services++
	}
	for _, std := range []struct {
		name  string
		proto string
		port  int
	}{{"smtp", "TCP", 25}, {"qotd", "TCP", 17}, {"rpc_ns", "UDP", 32767}} {
		if err := d.InsertService(&db.Service{Name: std.name, Protocol: std.proto,
			Port: std.port, Desc: std.name, Mod: mod}); err != nil {
			return nil, nil, err
		}
		stats.Services++
	}

	// --- zephyr classes ---
	// Transmit control goes to a small operators list (roughly a dozen
	// principals, like the paper's ~100-byte ACL files).
	adminList, _ := d.ListByName("dbadmin")
	opsID, err := d.AllocID("list_id")
	if err != nil {
		return nil, nil, err
	}
	if err := d.InsertList(&db.List{ListID: opsID, Name: "zephyr-operators",
		Active: true, Desc: "zephyr class operators",
		ACLType: db.ACEList, ACLID: adminList.ListID, Mod: mod}); err != nil {
		return nil, nil, err
	}
	stats.Lists++
	for i := 0; i < 12 && i < len(userIDs); i++ {
		if err := d.AddMember(opsID, db.ACEUser, userIDs[i*37%len(userIDs)]); err == nil {
			stats.Members++
		}
	}
	for i := 0; i < cfg.ZephyrClasses; i++ {
		class := fmt.Sprintf("CLASS-%d", i+1)
		if i == 0 {
			class = "MOIRA"
		}
		z := &db.ZephyrClass{Class: class,
			XmtType: db.ACEList, XmtID: opsID,
			SubType: db.ACENone, IwsType: db.ACENone, IuiType: db.ACENone,
			Mod: mod}
		if err := d.InsertZephyr(z); err != nil {
			return nil, nil, err
		}
	}

	// --- DCM service records (section 5.1.G intervals) ---
	type svcDef struct {
		name     string
		interval int // minutes
		target   string
		dest     string
		typ      string
		hostIDs  []int
	}
	defs := []svcDef{
		{"HESIOD", 360, "/tmp/hesiod.out", "/etc/athena/hesiod", db.ServiceReplicated, hesiodIDs},
		{"NFS", 720, "/tmp/nfs.out", "/etc/athena/nfs", db.ServiceUnique, machIDsOf(nfsSrvs)},
		{"SMTP", 1440, "/tmp/mail.out", "/usr/lib", db.ServiceUnique, []int{mailhubID}},
		{"ZEPHYR", 1440, "/tmp/zephyr.out", "/etc/athena/zephyr", db.ServiceReplicated, zephyrIDs},
		{"POP", 720, "/tmp/po.out", "/etc/athena/po", db.ServiceUnique, poIDs},
		// Pseudo-services with no generator modules: they appear in the
		// hesiod sloc data (as ATHENA_MESSAGE, GMOTD, and LOCAL did) but
		// the DCM skips them.
		{"ATHENA_MESSAGE", 0, "", "", db.ServiceUnique, []int{mailhubID}},
		{"GMOTD", 0, "", "", db.ServiceUnique, []int{mailhubID}},
		{"LOCAL", 0, "", "", db.ServiceUnique, hesiodIDs},
		{"WRITE", 0, "", "", db.ServiceReplicated, zephyrIDs},
	}
	for _, def := range defs {
		if err := d.InsertServer(&db.Server{
			Name: def.name, UpdateInt: def.interval, TargetFile: def.target,
			Script: def.dest, Type: def.typ,
			Enable:  def.name != "POP" && def.interval > 0,
			ACLType: db.ACEList, ACLID: adminList.ListID, Mod: mod,
		}); err != nil {
			return nil, nil, err
		}
		for i, machID := range def.hostIDs {
			sh := &db.ServerHost{Service: def.name, MachID: machID, Enable: true, Mod: mod}
			if def.name == "POP" {
				sh.Value1 = poCount[i]
				sh.Value2 = cfg.Users
			}
			if err := d.InsertServerHost(sh); err != nil {
				return nil, nil, err
			}
			stats.ServerHosts++
		}
	}
	return stats, hosts, nil
}

func machIDsOf(srvs []*nfsSrv) []int {
	out := make([]int, len(srvs))
	for i, s := range srvs {
		out[i] = s.machID
	}
	return out
}

// nfsSrv must be package-scoped for machIDsOf's signature.
type nfsSrv struct {
	machID int
	name   string
	parts  []*db.NFSPhys
}
