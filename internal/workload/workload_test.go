package workload

import (
	"testing"
	"time"

	"moira/internal/clock"
	"moira/internal/db"
	"moira/internal/queries"
)

func TestPopulateDeterministic(t *testing.T) {
	cfg := Scaled(150)
	build := func() (*db.DB, *Stats) {
		d := queries.NewBootstrappedDB(clock.NewFake(time.Unix(600000000, 0)))
		stats, _, err := Populate(d, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return d, stats
	}
	d1, s1 := build()
	d2, s2 := build()
	if *s1 != *s2 {
		t.Errorf("stats differ: %+v vs %+v", s1, s2)
	}
	// Same logins in both.
	d1.LockShared()
	d2.LockShared()
	defer d1.UnlockShared()
	defer d2.UnlockShared()
	d1.EachUser(func(u *db.User) bool {
		if _, ok := d2.UserByLogin(u.Login); !ok {
			t.Errorf("login %q only in first population", u.Login)
			return false
		}
		return true
	})
}

func TestPopulateShape(t *testing.T) {
	cfg := Scaled(200)
	d := queries.NewBootstrappedDB(clock.NewFake(time.Unix(600000000, 0)))
	stats, hosts, err := Populate(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Users != 200 {
		t.Errorf("users = %d", stats.Users)
	}
	if stats.Lists < 200 {
		t.Errorf("lists = %d (every user gets a namesake group)", stats.Lists)
	}
	if len(hosts.NFS) != cfg.NFSServers || hosts.Mailhub == "" || len(hosts.Hesiod) != 1 {
		t.Errorf("hosts = %+v", hosts)
	}

	d.LockShared()
	defer d.UnlockShared()
	// Every user has an active account, a POP pobox, a namesake group,
	// a home filesystem, and a quota.
	checked := 0
	d.EachUser(func(u *db.User) bool {
		if u.Login == "root" || u.Login == "moira" {
			return true
		}
		checked++
		if u.Status != db.UserActive {
			t.Errorf("%s: status %d", u.Login, u.Status)
			return false
		}
		if u.PoType != db.PoboxPOP {
			t.Errorf("%s: pobox %s", u.Login, u.PoType)
			return false
		}
		if _, ok := d.ListByName(u.Login); !ok {
			t.Errorf("%s: no namesake group", u.Login)
			return false
		}
		if len(d.FilesysByLabel(u.Login)) != 1 {
			t.Errorf("%s: no home filesystem", u.Login)
			return false
		}
		return true
	})
	if checked != 200 {
		t.Errorf("checked %d users", checked)
	}
	// DCM service records exist with the paper's intervals.
	for name, interval := range map[string]int{"HESIOD": 360, "NFS": 720, "SMTP": 1440, "ZEPHYR": 1440} {
		s, ok := d.ServerByName(name)
		if !ok {
			t.Errorf("service %s missing", name)
			continue
		}
		if s.UpdateInt != interval {
			t.Errorf("%s interval = %d, want %d", name, s.UpdateInt, interval)
		}
		if len(d.ServerHostsOf(name)) == 0 {
			t.Errorf("%s has no hosts", name)
		}
	}
	// Partition allocation accounting is consistent with quotas.
	totalAlloc := 0
	d.EachNFSPhys(func(p *db.NFSPhys) bool {
		totalAlloc += p.Allocated
		return true
	})
	totalQuota := 0
	d.EachQuota(func(q *db.NFSQuota) bool {
		totalQuota += q.Quota
		return true
	})
	if totalAlloc != totalQuota {
		t.Errorf("allocated %d != quota sum %d", totalAlloc, totalQuota)
	}
}

func TestScaledProportions(t *testing.T) {
	full := Default10K()
	if full.Users != 10000 || full.NFSServers != 20 || full.POServers != 2 {
		t.Errorf("Default10K = %+v", full)
	}
	small := Scaled(500)
	if small.NFSServers != 1 {
		t.Errorf("Scaled(500).NFSServers = %d", small.NFSServers)
	}
}
