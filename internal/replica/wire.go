// Package replica implements journal-shipping replication for moirad
// (the availability gap of section 5.2: one centralized server whose
// outage stalls every consumer). A primary streams its durable journal
// — the listing of all successful changes — to any number of read-only
// replicas, each of which mirrors the segments on its own disk and
// applies the records through the recovery replay path. Replicas serve
// retrieval queries, refuse mutations with MR_READONLY, and can be
// promoted to primary.
//
// The wire protocol rides the existing framed counted-string codec:
// the replica opens a v3 Replicate request carrying its resume
// position, and the primary answers with a stream of MR_MORE_DATA
// reply frames until either side hangs up. Frame vocabulary (first
// field tags the frame):
//
//	snap-begin gen journalSeq   bootstrap snapshot follows
//	file name                   start of one snapshot file
//	chunk bytes                 snapshot file data (≤1 MB per frame)
//	file-end name               end of one snapshot file
//	snap-end                    snapshot complete; tail follows
//	rec seg idx line            one journal record (line idx of segment seg)
//	head seg idx off            primary's current head, sent when caught up
//
// Positions are (segment sequence, record index): record idx is the
// idx'th complete CRC-valid line of segment seg, counted from 0. A
// resume position names the next record wanted, so (0, 0) means "I
// have nothing". Replicas mirror the primary's segment numbering on
// their own disk, which makes the position recomputable from disk
// after any crash — no separate replication state file, and the
// mirrored directory is a valid durable data dir for ordinary
// boot-time recovery.
package replica

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// Frame tags.
const (
	tagSnapBegin = "snap-begin"
	tagFile      = "file"
	tagChunk     = "chunk"
	tagFileEnd   = "file-end"
	tagSnapEnd   = "snap-end"
	tagRec       = "rec"
	tagHead      = "head"

	// Cluster-mode frames (protocol v5 failover). The hello frame is
	// the primary's greeting, sent before anything else on an
	// epoch-aware stream:
	//
	//	hello epoch replAddr clientAddr
	//
	// lease frames are the primary's deadline-heartbeat, interleaved
	// with the stream (including mid-snapshot, so a long bootstrap
	// does not cost the primary its lease):
	//
	//	lease epoch seq
	//
	// The replica acknowledges both positions and lease sequence
	// numbers by writing OpElection "ack" requests back up the same
	// connection — the stream is full duplex in cluster mode, where a
	// legacy replica sends nothing after its handshake.
	tagHello = "hello"
	tagLease = "lease"
)

// Election subops: the first argument of an OpElection request.
const (
	// electAck rides the replication connection, replica → primary:
	//
	//	ack epoch seq seg idx
	//
	// epoch is the replica's current epoch (a higher one deposes the
	// primary on contact), seq echoes the newest lease frame seen (0
	// before any), and (seg, idx) is the next record the replica wants
	// — everything before it is mirrored durably and applied.
	electAck = "ack"

	// electInfo polls a node's identity; the final reply's fields are
	// [role, epoch, seg, idx, replAddr, clientAddr, held].
	electInfo = "info"

	// electClaim asks a node to accept the sender as primary for a new
	// epoch: [claim, epoch, seg, idx, replAddr, clientAddr, force].
	// Success grants; MR_PERM denies with a reason field.
	electClaim = "claim"
)

// epochFile is the election epoch persisted at the data-dir root. It
// is read at boot and rewritten (atomically, fsynced) on every epoch
// adoption — a node must never regress its epoch across a crash, or
// it could grant two primaries the same epoch.
const epochFile = "EPOCH"

// LoadEpoch reads the persisted election epoch; a missing file is
// epoch 0 (never participated in an election).
func LoadEpoch(root string) (int64, error) {
	data, err := os.ReadFile(filepath.Join(root, epochFile))
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	v, err := strconv.ParseInt(strings.TrimSpace(string(data)), 10, 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("replica: corrupt epoch file: %q", data)
	}
	return v, nil
}

// StoreEpoch durably persists the election epoch: write-temp, fsync,
// rename, fsync directory — the same discipline as every other
// durable file in the layout.
func StoreEpoch(root string, epoch int64) error {
	path := filepath.Join(root, epochFile)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	_, err = f.WriteString(strconv.FormatInt(epoch, 10) + "\n")
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	if dir, derr := os.Open(root); derr == nil {
		dir.Sync()
		dir.Close()
	}
	return nil
}

// snapChunkSize bounds one snapshot chunk frame, well under the
// protocol's MaxFrame.
const snapChunkSize = 1 << 20

// parseInt parses a decimal position field.
func parseInt(s string) (int64, error) {
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("replica: bad position field %q", s)
	}
	return v, nil
}

func itoa(v int64) string { return strconv.FormatInt(v, 10) }
