// Package replica implements journal-shipping replication for moirad
// (the availability gap of section 5.2: one centralized server whose
// outage stalls every consumer). A primary streams its durable journal
// — the listing of all successful changes — to any number of read-only
// replicas, each of which mirrors the segments on its own disk and
// applies the records through the recovery replay path. Replicas serve
// retrieval queries, refuse mutations with MR_READONLY, and can be
// promoted to primary.
//
// The wire protocol rides the existing framed counted-string codec:
// the replica opens a v3 Replicate request carrying its resume
// position, and the primary answers with a stream of MR_MORE_DATA
// reply frames until either side hangs up. Frame vocabulary (first
// field tags the frame):
//
//	snap-begin gen journalSeq   bootstrap snapshot follows
//	file name                   start of one snapshot file
//	chunk bytes                 snapshot file data (≤1 MB per frame)
//	file-end name               end of one snapshot file
//	snap-end                    snapshot complete; tail follows
//	rec seg idx line            one journal record (line idx of segment seg)
//	head seg idx off            primary's current head, sent when caught up
//
// Positions are (segment sequence, record index): record idx is the
// idx'th complete CRC-valid line of segment seg, counted from 0. A
// resume position names the next record wanted, so (0, 0) means "I
// have nothing". Replicas mirror the primary's segment numbering on
// their own disk, which makes the position recomputable from disk
// after any crash — no separate replication state file, and the
// mirrored directory is a valid durable data dir for ordinary
// boot-time recovery.
package replica

import (
	"fmt"
	"strconv"
)

// Frame tags.
const (
	tagSnapBegin = "snap-begin"
	tagFile      = "file"
	tagChunk     = "chunk"
	tagFileEnd   = "file-end"
	tagSnapEnd   = "snap-end"
	tagRec       = "rec"
	tagHead      = "head"
)

// snapChunkSize bounds one snapshot chunk frame, well under the
// protocol's MaxFrame.
const snapChunkSize = 1 << 20

// parseInt parses a decimal position field.
func parseInt(s string) (int64, error) {
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("replica: bad position field %q", s)
	}
	return v, nil
}

func itoa(v int64) string { return strconv.FormatInt(v, 10) }
