package replica

// Election RPCs: the tiny client side of the OpElection protocol.
// Nodes poll each other's identity ("info") to discover the primary
// and size up the electorate, and ask for votes ("claim") when a lease
// expiry or an operator starts an election. Both are one-shot
// request/reply exchanges on the replication port, served by the
// Cluster's listener.

import (
	"bufio"
	"fmt"
	"net"
	"time"

	"moira/internal/mrerr"
	"moira/internal/protocol"
)

// peerInfo is one node's identity as reported by an "info" poll.
type peerInfo struct {
	addr       string // the address we polled
	role       string // "primary", "replica", or "fenced"
	epoch      int64
	seg, idx   int64  // next journal record the node wants (its applied position)
	replAddr   string // the node's advertised replication address
	clientAddr string // the node's advertised client (query) address
	held       bool   // primary only: whether it believes its lease is held
}

// better orders election candidates: highest journal position wins, so
// no acknowledged commit can be lost to a failover; the advertised
// replication address breaks exact ties deterministically (lowest
// wins), so two equally-caught-up nodes never elect each other
// simultaneously.
func better(aSeg, aIdx int64, aAddr string, bSeg, bIdx int64, bAddr string) bool {
	if aSeg != bSeg {
		return aSeg > bSeg
	}
	if aIdx != bIdx {
		return aIdx > bIdx
	}
	return aAddr < bAddr
}

// electionRPC runs one request/final-reply exchange against a peer's
// replication port.
func electionRPC(addr string, timeout time.Duration, args []string) (mrerr.Code, []string, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return 0, nil, err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(timeout))
	bw := bufio.NewWriter(conn)
	err = protocol.WriteRequest(bw, &protocol.Request{
		Version: protocol.Version,
		Op:      protocol.OpElection,
		Args:    protocol.BytesArgs(args),
	})
	if err == nil {
		err = bw.Flush()
	}
	if err != nil {
		return 0, nil, err
	}
	rep, err := protocol.ReadReply(bufio.NewReader(conn))
	if err != nil {
		return 0, nil, err
	}
	return mrerr.Code(rep.Code), rep.StringFields(), nil
}

// pollPeer asks one node who it is.
func pollPeer(addr string, timeout time.Duration) (peerInfo, error) {
	code, fields, err := electionRPC(addr, timeout, []string{electInfo})
	if err != nil {
		return peerInfo{}, err
	}
	if code != mrerr.Success || len(fields) < 7 {
		return peerInfo{}, fmt.Errorf("replica: info from %s: code %d, %d fields", addr, code, len(fields))
	}
	epoch, e1 := parseInt(fields[1])
	seg, e2 := parseInt(fields[2])
	idx, e3 := parseInt(fields[3])
	if e1 != nil || e2 != nil || e3 != nil {
		return peerInfo{}, fmt.Errorf("replica: malformed info from %s", addr)
	}
	return peerInfo{
		addr:       addr,
		role:       fields[0],
		epoch:      epoch,
		seg:        seg,
		idx:        idx,
		replAddr:   fields[4],
		clientAddr: fields[5],
		held:       fields[6] == "1",
	}, nil
}

// claimResult is one peer's answer to a claim.
type claimResult struct {
	granted bool
	reason  string // denial reason
	epoch   int64  // the denier's epoch, to fast-forward a stale candidate
}

// sendClaim asks one node to accept the caller as primary for epoch.
func sendClaim(addr string, timeout time.Duration, epoch, seg, idx int64, replAddr, clientAddr string, force bool) (claimResult, error) {
	forceField := "0"
	if force {
		forceField = "1"
	}
	code, fields, err := electionRPC(addr, timeout, []string{
		electClaim, itoa(epoch), itoa(seg), itoa(idx), replAddr, clientAddr, forceField,
	})
	if err != nil {
		return claimResult{}, err
	}
	res := claimResult{granted: code == mrerr.Success}
	if len(fields) > 0 {
		res.reason = fields[0]
	}
	if len(fields) > 1 {
		if e, err := parseInt(fields[1]); err == nil {
			res.epoch = e
		}
	}
	if !res.granted && code != mrerr.MrPerm {
		return res, fmt.Errorf("replica: claim to %s failed: code %d (%v)", addr, code, code.OrNil())
	}
	return res, nil
}
