package replica

import (
	"testing"
	"time"

	"moira/internal/client"
	"moira/internal/kerberos"
	"moira/internal/queries"
	"moira/internal/server"
	"moira/internal/trace"
)

// TestSpansCrossProcessBoundaries is the tracing acceptance test: one
// client-chosen trace ID must show up in span stores on three sides of
// two process boundaries — the client's own tracer (client.call), the
// primary server's tracer (server.request and its phases, parented on
// the client's span via the wire field), and the replica's tracer
// (repl.apply, joined through the trace ID journaled with the
// mutation). Each side gets its OWN Tracer, so linkage can only come
// from the wire field and the journal record, never from shared state.
func TestSpansCrossProcessBoundaries(t *testing.T) {
	w := newPrimaryWorld(t)

	// Kerberos world so the client can authenticate a mutation.
	const serverPrincipal = "moira.server"
	kdc := kerberos.NewKDC("ATHENA.MIT.EDU", w.clk)
	if err := kdc.AddPrincipal(serverPrincipal, "server-pw"); err != nil {
		t.Fatal(err)
	}
	key, err := kdc.Srvtab(serverPrincipal)
	if err != nil {
		t.Fatal(err)
	}
	w.run("add_user", "admin", "-1", "/bin/csh", "Ad", "Min", "", "1", "x", "STAFF")
	w.run("add_member_to_list", queries.AdminList, "USER", "admin")
	if err := kdc.AddPrincipal("admin", "adminpw"); err != nil {
		t.Fatal(err)
	}

	serverTracer := trace.New(trace.Options{Process: "moirad", Slow: -1})
	srv := server.New(server.Config{
		DB:       w.d,
		Verifier: kerberos.NewVerifier(serverPrincipal, key, w.clk),
		Clock:    w.clk,
		Tracer:   serverTracer,
	})
	saddr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	replicaTracer := trace.New(trace.Options{Process: "replica", Slow: -1})
	rep, info, err := Open(Config{
		Root:       t.TempDir(),
		From:       w.addr,
		Clock:      staticClock{instant},
		RetryDelay: 10 * time.Millisecond,
		Tracer:     replicaTracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Fsck) != 0 {
		t.Fatalf("replica fsck: %v", info.Fsck)
	}
	rep.Start()
	defer rep.Close()

	clientTracer := trace.New(trace.Options{Process: "mrtest", Slow: -1})
	c, err := client.DialTimeout(saddr.String(), 5*time.Second, w.clk)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Disconnect()
	creds, err := kdc.GetTicket("admin", "adminpw", serverPrincipal)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Auth(creds, "span-test"); err != nil {
		t.Fatal(err)
	}
	c.SetTracer(clientTracer)
	const tid = "te2espan1-1"
	c.SetTraceID(tid)

	if err := c.Query("add_machine", []string{"spanhost.mit.edu", "VAX"}, nil); err != nil {
		t.Fatal(err)
	}

	// Client side: a client.call root carrying the chosen trace ID.
	var clientSpanID string
	for _, tr := range clientTracer.Find(tid) {
		root := tr.Root()
		if root.Name == "client.call" && root.Detail == "query add_machine" {
			clientSpanID = root.SpanID
		}
	}
	if clientSpanID == "" {
		t.Fatalf("no client.call span for %s in client tracer: %+v", tid, clientTracer.Traces())
	}

	// Server side: a server.request root parented on the client's span
	// (the wire field crossed the first process boundary), with the
	// phase children under it.
	var serverTrace *trace.TraceRecord
	for _, tr := range serverTracer.Find(tid) {
		if tr.Root().Name == "server.request" && tr.Root().Detail == "query add_machine" {
			serverTrace = tr
		}
	}
	if serverTrace == nil {
		t.Fatalf("no server.request trace for %s in server tracer", tid)
	}
	if got := serverTrace.Root().Parent; got != clientSpanID {
		t.Errorf("server root parent = %q, want client span %q", got, clientSpanID)
	}
	phases := map[string]bool{}
	for _, sp := range serverTrace.Spans {
		phases[sp.Name] = true
		if sp.TraceID != tid {
			t.Errorf("server span %s carries trace %q", sp.Name, sp.TraceID)
		}
	}
	for _, want := range []string{"server.read", "server.handler", "server.journal", "server.write"} {
		if !phases[want] {
			t.Errorf("server trace missing phase %s (have %v)", want, phases)
		}
	}

	// A read on the same pinned trace ID runs lock-free and records the
	// snapshot-acquire phase instead of the journal append.
	if err := c.Query("get_machine", []string{"SPANHOST.MIT.EDU"}, func([]string) error { return nil }); err != nil {
		t.Fatal(err)
	}
	readPhases := map[string]bool{}
	for _, tr := range serverTracer.Find(tid) {
		if tr.Root().Detail == "query get_machine" {
			for _, sp := range tr.Spans {
				readPhases[sp.Name] = true
			}
		}
	}
	for _, want := range []string{"server.snapshot", "server.handler"} {
		if !readPhases[want] {
			t.Errorf("read trace missing phase %s (have %v)", want, readPhases)
		}
	}

	// Replica side: the journal record shipped the trace ID across the
	// second process boundary; the apply span joins the same trace.
	deadline := time.Now().Add(15 * time.Second)
	for {
		var applied *trace.SpanRecord
		for _, tr := range replicaTracer.Find(tid) {
			root := tr.Root()
			if root.Name == "repl.apply" {
				applied = &root
			}
		}
		if applied != nil {
			if applied.Detail != "add_machine" {
				t.Errorf("repl.apply detail = %q, want add_machine", applied.Detail)
			}
			if applied.Code != 0 {
				t.Errorf("repl.apply code = %d", applied.Code)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica never recorded a repl.apply span for %s (kept: %d traces)",
				tid, len(replicaTracer.Traces()))
		}
		time.Sleep(5 * time.Millisecond)
	}
	waitConverged(t, w.d, rep.DB())
}

// TestReplicaLagSeconds drives the staleness gauge: caught-up replicas
// report zero, and the head-frame heartbeat timestamp refreshes the
// freshness point so an idle-but-connected replica stays at zero.
func TestReplicaLagSeconds(t *testing.T) {
	w := newPrimaryWorld(t)
	rep := w.openReplica(t.TempDir())
	rep.Start()
	defer rep.Close()

	for i := 0; i < 5; i++ {
		w.run("add_machine", "lag0"+string(rune('a'+i))+".mit.edu", "VAX")
	}
	waitConverged(t, w.d, rep.DB())

	deadline := time.Now().Add(10 * time.Second)
	for rep.LagSeconds() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("caught-up replica reports lag %d", rep.LagSeconds())
		}
		time.Sleep(5 * time.Millisecond)
	}
}
