package replica

// Chaos tests for the failover cluster: primary death, netsplits,
// deposed-primary rejoin, and read-your-writes, all in-process so the
// race detector sees every interleaving. The timing knobs are scaled
// way down (100ms leases) so a full failover fits in well under a
// second of wall clock.

import (
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"moira/internal/client"
	"moira/internal/db"
	"moira/internal/kerberos"
	"moira/internal/mrerr"
	"moira/internal/queries"
	"moira/internal/server"
)

const (
	testLeaseInterval = 100 * time.Millisecond
	testLeaseTimeout  = 400 * time.Millisecond

	foServer = "moira.server"
	foAdmin  = "fadmin"
	foPass   = "fadminpw"
)

// freeAddr reserves a loopback address: bind, read it back, release.
// The tiny window before the node rebinds it is acceptable in tests.
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	return ln.Addr().String()
}

// fenv is the shared Kerberos world for a failover test: one KDC and
// one verifier that every node's server trusts.
type fenv struct {
	kdc *kerberos.KDC
	ver *kerberos.Verifier
}

func newFenv(t *testing.T) *fenv {
	t.Helper()
	kdc := kerberos.NewKDC("ATHENA.MIT.EDU", staticClock{instant})
	if err := kdc.AddPrincipal(foServer, "server-password"); err != nil {
		t.Fatal(err)
	}
	if err := kdc.AddPrincipal(foAdmin, foPass); err != nil {
		t.Fatal(err)
	}
	key, err := kdc.Srvtab(foServer)
	if err != nil {
		t.Fatal(err)
	}
	return &fenv{kdc: kdc, ver: kerberos.NewVerifier(foServer, key, staticClock{instant})}
}

// seedAdmin creates the admin account on the elected primary; the
// mutations journal and replicate like any other write.
func (e *fenv) seedAdmin(t *testing.T, prim *fnode) {
	t.Helper()
	priv := &queries.Context{DB: prim.cl.DB(), Privileged: true, App: "seed"}
	nop := func([]string) error { return nil }
	if err := queries.Execute(priv, "add_user",
		[]string{foAdmin, "-1", "/bin/csh", "Admin", "Failover", "", "1", "x", "STAFF"}, nop); err != nil {
		t.Fatalf("seed admin user: %v", err)
	}
	if err := queries.Execute(priv, "add_member_to_list",
		[]string{queries.AdminList, "USER", foAdmin}, nop); err != nil {
		t.Fatalf("seed admin membership: %v", err)
	}
}

// dialAdmin connects to addr and authenticates as the admin.
func (e *fenv) dialAdmin(t *testing.T, addr string) *client.Client {
	t.Helper()
	c, err := client.DialTimeout(addr, 5*time.Second, staticClock{instant})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Disconnect() })
	e.auth(t, c)
	return c
}

// dialAdminFailover connects with the address-list dialer, then auths.
func (e *fenv) dialAdminFailover(t *testing.T, addrs []string) *client.Client {
	t.Helper()
	c, err := client.DialFailover(addrs, 5*time.Second, staticClock{instant})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Disconnect() })
	e.auth(t, c)
	return c
}

func (e *fenv) auth(t *testing.T, c *client.Client) {
	t.Helper()
	creds, err := e.kdc.GetTicket(foAdmin, foPass, foServer)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Auth(creds, "failover-test"); err != nil {
		t.Fatalf("auth: %v", err)
	}
}

// fnode is one in-process cluster node: a Cluster plus a query server
// wired to it through the Failover surface.
type fnode struct {
	root       string
	replAddr   string // the address this node listens for replication on
	clientAddr string
	cl         *Cluster
	srv        *server.Server
	closed     atomic.Bool
}

// startNode boots one cluster node. peers are the replication
// addresses this node polls and claims against — proxies included.
func startNode(t *testing.T, env *fenv, root, replAddr, clientAddr string, peers []string) *fnode {
	return startNodeAdv(t, env, root, replAddr, replAddr, clientAddr, peers)
}

// startNodeAdv is startNode with a distinct advertised replication
// address, so netsplit tests can route all inter-node traffic —
// including the follower's adopted primary address — through a
// cuttable proxy.
func startNodeAdv(t *testing.T, env *fenv, root, replAddr, advRepl, clientAddr string, peers []string) *fnode {
	t.Helper()
	n := &fnode{root: root, replAddr: replAddr, clientAddr: clientAddr}
	var roleCB atomic.Value // func(string, bool)
	cl, info, err := OpenCluster(ClusterConfig{
		Root:            root,
		ListenRepl:      replAddr,
		AdvertiseRepl:   advRepl,
		AdvertiseClient: clientAddr,
		Peers:           peers,
		LeaseInterval:   testLeaseInterval,
		LeaseTimeout:    testLeaseTimeout,
		Journal:         db.JournalOptions{Policy: db.SyncEveryCommit},
		Clock:           staticClock{instant},
		Logf: func(format string, args ...any) {
			if !n.closed.Load() {
				t.Logf("[%s] "+format, append([]any{replAddr}, args...)...)
			}
		},
		OnRole: func(role string, readonly bool) {
			if f := roleCB.Load(); f != nil {
				f.(func(string, bool))(role, readonly)
			}
		},
	})
	if err != nil {
		t.Fatalf("open cluster node: %v", err)
	}
	if len(info.Fsck) != 0 {
		t.Fatalf("cluster node fsck: %v", info.Fsck)
	}
	srv := server.New(server.Config{
		DB:       cl.DB(),
		Verifier: env.ver,
		Clock:    staticClock{instant},
		ReadOnly: true,
		Failover: cl,
	})
	if _, err := srv.Listen(clientAddr); err != nil {
		t.Fatalf("node client listen: %v", err)
	}
	roleCB.Store(func(role string, readonly bool) { srv.SetReadOnly(readonly) })
	n.cl, n.srv = cl, srv
	cl.Start()
	t.Cleanup(func() { n.stop() })
	return n
}

// stop tears the node down (idempotent).
func (n *fnode) stop() {
	if n.closed.CompareAndSwap(false, true) {
		n.srv.Close()
		n.cl.Close()
	}
}

// startPair boots a two-node cluster on fresh roots.
func startPair(t *testing.T, env *fenv) (a, b *fnode) {
	t.Helper()
	ra, rb := freeAddr(t), freeAddr(t)
	ca, cb := freeAddr(t), freeAddr(t)
	a = startNode(t, env, t.TempDir(), ra, ca, []string{rb})
	b = startNode(t, env, t.TempDir(), rb, cb, []string{ra})
	return a, b
}

// waitRole polls until the node settles into role.
func waitRole(t *testing.T, n *fnode, role string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		if n.cl.Role() == role {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("node %s role = %s, want %s (within %v)", n.replAddr, n.cl.Role(), role, timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// waitOnePrimary waits until exactly one node is primary and the other
// follows it, returning (primary, follower).
func waitOnePrimary(t *testing.T, a, b *fnode) (*fnode, *fnode) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		ra, rb := a.cl.Role(), b.cl.Role()
		if ra == RolePrimary && rb == RoleReplica {
			return a, b
		}
		if rb == RolePrimary && ra == RoleReplica {
			return b, a
		}
		if time.Now().After(deadline) {
			t.Fatalf("no settled primary/replica pair: %s=%s %s=%s", a.replAddr, ra, b.replAddr, rb)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// hasMachine reports whether the node's database holds the machine.
func (n *fnode) hasMachine(name string) bool {
	d := n.cl.DB()
	d.LockShared()
	defer d.UnlockShared()
	return len(d.MachinesMatchingName(strings.ToUpper(name))) == 1
}

// TestClusterBootElection: two empty nodes boot, exactly one wins the
// election, the other follows it, and _whois on both names the same
// primary.
func TestClusterBootElection(t *testing.T) {
	env := newFenv(t)
	a, b := startPair(t, env)
	prim, repl := waitOnePrimary(t, a, b)

	if prim.srv.ReadOnly() {
		t.Error("primary's server still read-only after promotion")
	}
	if !repl.srv.ReadOnly() {
		t.Error("follower's server is writable")
	}

	// _whois answers on both nodes (the follower is read-only) and
	// both name the primary's client address.
	for _, n := range []*fnode{prim, repl} {
		c, err := client.Dial(n.clientAddr)
		if err != nil {
			t.Fatal(err)
		}
		rows, err := c.QueryAll("_whois")
		c.Disconnect()
		if err != nil {
			t.Fatalf("_whois on %s: %v", n.replAddr, err)
		}
		if len(rows) != 1 || len(rows[0]) < 8 {
			t.Fatalf("_whois on %s = %v", n.replAddr, rows)
		}
		if got := rows[0][2]; got != prim.clientAddr {
			t.Errorf("_whois on %s names primary %q, want %q", n.replAddr, got, prim.clientAddr)
		}
	}
}

// TestFailoverOnPrimaryDeath is the acceptance core: kill the primary
// under concurrent writes; the follower self-promotes within two lease
// timeouts; no acknowledged commit is lost; the revived old primary
// refuses writes and rejoins as a follower.
func TestFailoverOnPrimaryDeath(t *testing.T) {
	env := newFenv(t)
	a, b := startPair(t, env)
	prim, repl := waitOnePrimary(t, a, b)
	env.seedAdmin(t, prim)

	c := env.dialAdminFailover(t, []string{prim.clientAddr, repl.clientAddr})

	// Write storm: every Success is an acknowledged (replica-acked)
	// commit that must survive the failover.
	var (
		mu    sync.Mutex
		acked []string
		stop  = make(chan struct{})
		done  = make(chan struct{})
	)
	go func() {
		defer close(done)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			name := fmt.Sprintf("storm%04d.mit.edu", i)
			if _, err := c.QueryAll("add_machine", name, "VAX"); err == nil {
				mu.Lock()
				acked = append(acked, name)
				mu.Unlock()
			}
			time.Sleep(time.Millisecond)
		}
	}()

	// Let some writes land, then kill the primary mid-storm.
	time.Sleep(300 * time.Millisecond)
	killedAt := time.Now()
	prim.stop()

	// Self-promotion within two lease timeouts (plus scheduling slack
	// for the race detector).
	waitRole(t, repl, RolePrimary, 2*testLeaseTimeout+2*time.Second)
	t.Logf("self-promotion after %v (2 lease timeouts = %v)", time.Since(killedAt), 2*testLeaseTimeout)

	// Writes must resume against the new primary (the client chases
	// the redirect transparently).
	resumed := false
	for i := 0; i < 200; i++ {
		if _, err := c.QueryAll("add_machine", fmt.Sprintf("resumed%03d.mit.edu", i), "VAX"); err == nil {
			resumed = true
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !resumed {
		t.Fatal("writes never resumed after failover")
	}
	close(stop)
	<-done

	// Zero lost acked commits: every Success lives on the new primary.
	mu.Lock()
	ledger := append([]string(nil), acked...)
	mu.Unlock()
	if len(ledger) == 0 {
		t.Fatal("write storm landed no acked commits; test proves nothing")
	}
	for _, name := range ledger {
		if !repl.hasMachine(name) {
			t.Errorf("acked commit %s lost in failover", name)
		}
	}
	t.Logf("%d acked commits all survived", len(ledger))

	// Revive the old primary on its old root: it must come back as a
	// read-only follower of the new primary and converge — including
	// discarding any unacked tail it journaled before dying.
	revived := startNode(t, env, prim.root, prim.replAddr, prim.clientAddr, []string{repl.replAddr})
	waitRole(t, revived, RoleReplica, 10*time.Second)
	if !revived.srv.ReadOnly() {
		t.Error("revived old primary is writable")
	}
	waitConverged(t, repl.cl.DB(), revived.cl.DB())
}

// TestDeposedPrimaryFencesAndRejoins: an operator force-promotes the
// follower while the primary is alive and healthy. The old primary
// must fence itself on first contact with the new epoch, refuse
// writes, and rejoin as a follower.
func TestDeposedPrimaryFencesAndRejoins(t *testing.T) {
	env := newFenv(t)
	a, b := startPair(t, env)
	prim, repl := waitOnePrimary(t, a, b)
	env.seedAdmin(t, prim)

	c := env.dialAdmin(t, prim.clientAddr)
	if _, err := c.QueryAll("add_machine", "before.mit.edu", "VAX"); err != nil {
		t.Fatalf("seed write: %v", err)
	}

	if err := repl.cl.ForcePromote("operator"); err != nil {
		t.Fatalf("force promote: %v", err)
	}
	waitRole(t, repl, RolePrimary, 5*time.Second)

	// The deposed primary must stop accepting writes and eventually
	// re-follow the new history.
	waitRole(t, prim, RoleReplica, 10*time.Second)
	if !prim.srv.ReadOnly() {
		t.Error("deposed primary still accepts writes")
	}

	// A write against the deposed node redirects to the new primary.
	dc := env.dialAdmin(t, prim.clientAddr)
	if _, err := dc.QueryAll("add_machine", "after.mit.edu", "VAX"); err != nil {
		t.Fatalf("write via deposed node (expect redirect): %v", err)
	}
	if dc.Redirects() == 0 {
		t.Error("client reached the new primary without a redirect?")
	}
	waitConverged(t, repl.cl.DB(), prim.cl.DB())
	if !prim.hasMachine("after.mit.edu") || !prim.hasMachine("before.mit.edu") {
		t.Error("rejoined follower missing state")
	}
}

// TestPrimaryKilledDuringElection: the primary dies while the
// follower's forced election is in flight (the claim may reach a dying
// or already-dead granter). The election must still converge on
// exactly one writable primary.
func TestPrimaryKilledDuringElection(t *testing.T) {
	env := newFenv(t)
	a, b := startPair(t, env)
	prim, repl := waitOnePrimary(t, a, b)
	env.seedAdmin(t, prim)
	// Make sure the pair exchanged a lease first, so the survivor is a
	// legitimate successor rather than a partitioned cold boot.
	waitConverged(t, prim.cl.DB(), repl.cl.DB())

	// Race the kill against the election. Whichever way it lands —
	// grant, denial from a half-dead node, or no answer at all — the
	// follower must end up primary within a few lease timeouts.
	killed := make(chan struct{})
	go func() {
		defer close(killed)
		prim.stop()
	}()
	if err := repl.cl.ForcePromote("operator"); err != nil {
		t.Logf("forced election during kill: %v (lease expiry will retry)", err)
	}
	<-killed
	waitRole(t, repl, RolePrimary, 3*testLeaseTimeout+5*time.Second)
	if repl.srv.ReadOnly() {
		t.Error("surviving primary still read-only")
	}
}

// TestReadYourWrites: a commit token from the primary makes a read on
// a (possibly lagging) follower either wait for coverage or refuse
// with MR_STALE and redirect; a malformed token is rejected outright.
func TestReadYourWrites(t *testing.T) {
	env := newFenv(t)
	a, b := startPair(t, env)
	prim, repl := waitOnePrimary(t, a, b)
	env.seedAdmin(t, prim)

	pc := env.dialAdmin(t, prim.clientAddr)
	if _, err := pc.QueryAll("add_machine", "ryw.mit.edu", "VAX"); err != nil {
		t.Fatalf("write: %v", err)
	}
	token := pc.LastToken()
	if token == "" {
		t.Fatal("gated commit minted no token")
	}

	// Present the token on the follower: the read must not answer
	// until the follower covers the commit — so when it answers
	// successfully, the row must be there.
	rc, err := client.Dial(repl.clientAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Disconnect()
	rc.SetMinPos(token)
	rows, err := rc.QueryAll("get_machine", "RYW.MIT.EDU")
	if err != nil {
		// The other legal outcome is MR_STALE with a redirect chase
		// that lands the row anyway; a bare stale answer is not.
		t.Fatalf("read-your-writes read: %v", err)
	}
	if len(rows) != 1 {
		t.Fatalf("read-your-writes returned %d rows, want 1", len(rows))
	}

	// A malformed token is refused outright.
	rc.SetMinPos("not-a-token")
	if _, err := rc.QueryAll("get_machine", "RYW.MIT.EDU"); err != mrerr.MrArgs {
		t.Errorf("malformed token read = %v, want MR_ARGS", err)
	}
	rc.SetMinPos("")
}

// ---- netsplit ----

// chaosProxy is a cuttable TCP proxy: while cut, existing conns die
// and new ones are refused (accepted and instantly closed), which is
// what a netsplit looks like to the dialer.
type chaosProxy struct {
	ln     net.Listener
	target string
	cut    atomic.Bool
	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
	closed atomic.Bool
}

func newChaosProxy(t *testing.T, target string) *chaosProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &chaosProxy{ln: ln, target: target, conns: make(map[net.Conn]struct{})}
	p.wg.Add(1)
	go p.accept()
	t.Cleanup(p.Close)
	return p
}

func (p *chaosProxy) Addr() string { return p.ln.Addr().String() }

func (p *chaosProxy) accept() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		if p.cut.Load() {
			conn.Close()
			continue
		}
		up, err := net.DialTimeout("tcp", p.target, time.Second)
		if err != nil {
			conn.Close()
			continue
		}
		p.mu.Lock()
		p.conns[conn] = struct{}{}
		p.conns[up] = struct{}{}
		p.mu.Unlock()
		p.wg.Add(2)
		go p.pipe(conn, up)
		go p.pipe(up, conn)
	}
}

func (p *chaosProxy) pipe(dst, src net.Conn) {
	defer p.wg.Done()
	io.Copy(dst, src)
	dst.Close()
	src.Close()
	p.mu.Lock()
	delete(p.conns, dst)
	delete(p.conns, src)
	p.mu.Unlock()
}

// Cut severs the proxy: every live connection dies now, new ones are
// refused until Heal.
func (p *chaosProxy) Cut() {
	p.cut.Store(true)
	p.mu.Lock()
	for conn := range p.conns {
		conn.Close()
	}
	p.mu.Unlock()
}

func (p *chaosProxy) Heal() { p.cut.Store(false) }

func (p *chaosProxy) Close() {
	if p.closed.CompareAndSwap(false, true) {
		p.ln.Close()
		p.Cut()
		p.wg.Wait()
	}
}

// TestNetsplitOneWritablePrimary is the split-brain acceptance test: a
// pair is partitioned mid-write-storm. At every sampled instant at
// most one node accepts writes; acked commits are never lost; after
// the heal the journals converge.
func TestNetsplitOneWritablePrimary(t *testing.T) {
	env := newFenv(t)
	// All inter-node traffic flows through cuttable proxies: every node
	// advertises its proxy address, so peers — and the follower's
	// adopted primary address — always route through the cut point.
	// Client traffic is never partitioned.
	ra, rb := freeAddr(t), freeAddr(t)
	ca, cb := freeAddr(t), freeAddr(t)
	pa := newChaosProxy(t, ra) // B's path to A
	pb := newChaosProxy(t, rb) // A's path to B
	a := startNodeAdv(t, env, t.TempDir(), ra, pa.Addr(), ca, []string{pb.Addr()})
	b := startNodeAdv(t, env, t.TempDir(), rb, pb.Addr(), cb, []string{pa.Addr()})
	prim, repl := waitOnePrimary(t, a, b)
	env.seedAdmin(t, prim)

	c := env.dialAdminFailover(t, []string{prim.clientAddr, repl.clientAddr})

	var (
		mu    sync.Mutex
		acked []string
		stop  = make(chan struct{})
		done  = make(chan struct{})
	)
	go func() {
		defer close(done)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			name := fmt.Sprintf("split%04d.mit.edu", i)
			if _, err := c.QueryAll("add_machine", name, "VAX"); err == nil {
				mu.Lock()
				acked = append(acked, name)
				mu.Unlock()
			}
			time.Sleep(time.Millisecond)
		}
	}()
	time.Sleep(300 * time.Millisecond)

	// Split the pair. The old primary must fence (its lease cannot
	// renew); the follower elects itself.
	pa.Cut()
	pb.Cut()

	// Sample the writable-primary count throughout the partition:
	// never more than one server accepting writes.
	sampleUntil := time.Now().Add(3 * testLeaseTimeout)
	for time.Now().Before(sampleUntil) {
		writable := 0
		for _, n := range []*fnode{a, b} {
			if !n.srv.ReadOnly() {
				writable++
			}
		}
		if writable > 1 {
			t.Fatalf("netsplit: %d writable primaries at once", writable)
		}
		time.Sleep(5 * time.Millisecond)
	}
	waitRole(t, repl, RolePrimary, 5*time.Second)
	waitRole(t, prim, RoleFenced, 5*time.Second)
	if !prim.srv.ReadOnly() {
		t.Error("fenced ex-primary still writable")
	}

	// Heal. The fenced node finds the new history and rejoins; the
	// write storm keeps running throughout.
	pa.Heal()
	pb.Heal()
	waitRole(t, prim, RoleReplica, 10*time.Second)
	time.Sleep(200 * time.Millisecond)
	close(stop)
	<-done

	// Convergence and the acked ledger.
	waitConverged(t, repl.cl.DB(), prim.cl.DB())
	mu.Lock()
	ledger := append([]string(nil), acked...)
	mu.Unlock()
	if len(ledger) == 0 {
		t.Fatal("write storm landed no acked commits; test proves nothing")
	}
	for _, name := range ledger {
		if !repl.hasMachine(name) {
			t.Errorf("acked commit %s lost in netsplit", name)
		}
	}
	t.Logf("netsplit: %d acked commits, all survived", len(ledger))
}

// TestLeaseExpiryFencesPrimary: with its only follower unreachable
// (connections severed, dials refused), the primary must fence itself
// within a lease timeout rather than keep accepting unreplicatable
// writes.
func TestLeaseExpiryFencesPrimary(t *testing.T) {
	env := newFenv(t)
	ra, rb := freeAddr(t), freeAddr(t)
	ca, cb := freeAddr(t), freeAddr(t)
	pa := newChaosProxy(t, ra) // all traffic toward A
	pb := newChaosProxy(t, rb) // all traffic toward B
	a := startNodeAdv(t, env, t.TempDir(), ra, pa.Addr(), ca, []string{pb.Addr()})
	b := startNodeAdv(t, env, t.TempDir(), rb, pb.Addr(), cb, []string{pa.Addr()})
	prim, repl := waitOnePrimary(t, a, b)

	// Engage the lease machinery before cutting: a freshly promoted
	// primary with no subscriber yet self-holds its lease (degraded
	// mode), so fencing only applies once the follower's replication
	// session is live. Replicated state proves it is.
	env.seedAdmin(t, prim)
	waitConverged(t, prim.cl.DB(), repl.cl.DB())

	// Sever only the primary's inbound path: its follower's lease acks
	// stop, but the follower can still reach (and later re-follow) the
	// other side. Whichever node won the boot election, its inbound
	// proxy is the cut point.
	if prim == a {
		pa.Cut()
	} else {
		pb.Cut()
	}
	waitRole(t, prim, RoleFenced, 3*testLeaseTimeout+2*time.Second)
	if !prim.srv.ReadOnly() {
		t.Error("primary kept accepting writes after its lease expired")
	}
}

// TestWhoisStandalone: a server with no Failover state reports the
// standalone role rather than failing.
func TestWhoisStandalone(t *testing.T) {
	d := queries.NewBootstrappedDB(staticClock{instant})
	srv := server.New(server.Config{DB: d})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := client.Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Disconnect()
	rows, err := c.QueryAll("_whois")
	if err != nil {
		t.Fatalf("_whois: %v", err)
	}
	if len(rows) != 1 || rows[0][0] != "standalone" {
		t.Fatalf("_whois = %v, want standalone", rows)
	}
}
