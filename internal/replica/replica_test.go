package replica

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"moira/internal/client"
	"moira/internal/clock"
	"moira/internal/db"
	"moira/internal/mrerr"
	"moira/internal/queries"
	"moira/internal/server"
)

// instant is the pinned wall-clock moment both sides of every test run
// at. Replay stamps mod-times at apply-time Now(), so byte-identical
// table comparison needs the primary's and the replica's clocks to
// read the same instant whenever a record lands.
var instant = time.Unix(600000000, 0)

// staticClock is pinned like clock.Fake but, unlike Fake, does not
// implement Sleeper: reconnect backoff sleeps real time instead of
// silently advancing the replica's virtual clock away from the
// primary's.
type staticClock struct{ t time.Time }

func (c staticClock) Now() time.Time { return c.t }

// primaryWorld is a live primary: a bootstrapped database journaling
// into a data directory, a checkpoint store over it, and a replication
// Primary listening on a loopback port.
type primaryWorld struct {
	t     *testing.T
	root  string
	clk   *clock.Fake
	d     *db.DB
	jw    *db.JournalWriter
	store *db.CheckpointStore
	prim  *Primary
	addr  string
}

func newPrimaryWorld(t *testing.T) *primaryWorld {
	t.Helper()
	root := t.TempDir()
	clk := clock.NewFake(instant)
	dd, err := db.OpenDataDir(root)
	if err != nil {
		t.Fatal(err)
	}
	jw, err := db.OpenJournalWriter(dd.JournalDir(), db.JournalOptions{Policy: db.SyncEveryCommit})
	if err != nil {
		t.Fatal(err)
	}
	d := queries.NewBootstrappedDB(clk)
	d.SetJournal(jw)
	store, err := db.NewCheckpointStore(dd.SnapshotsDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	w := &primaryWorld{t: t, root: root, clk: clk, d: d, jw: jw, store: store}
	w.prim = NewPrimary(PrimaryConfig{
		Journal:    jw,
		Store:      store,
		Checkpoint: w.checkpoint,
	})
	addr, err := w.prim.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	w.addr = addr.String()
	t.Cleanup(func() {
		w.prim.Close()
		jw.Close()
	})
	return w
}

// checkpoint snapshots the primary and prunes journal segments the
// snapshot has made redundant — the state that forces a lagging
// replica to bootstrap.
func (w *primaryWorld) checkpoint() (int64, error) {
	gen, err := w.store.Take(w.d, w.jw.Rotate)
	if err != nil {
		return 0, err
	}
	if keep := w.store.OldestKeptJournalSeq(); keep > 0 {
		if _, err := db.PruneSegments(w.jw.Dir(), keep); err != nil {
			return 0, err
		}
	}
	return gen, nil
}

func (w *primaryWorld) run(name string, args ...string) {
	w.t.Helper()
	cx := &queries.Context{DB: w.d, Principal: "ops", App: "test", Privileged: true}
	if err := queries.Execute(cx, name, args, func([]string) error { return nil }); err != nil {
		w.t.Errorf("%s %v: %v", name, args, err)
	}
}

// openReplica opens (or reopens) a replica over root tailing this
// primary, with fast reconnects for test latency.
func (w *primaryWorld) openReplica(root string) *Replica {
	w.t.Helper()
	r, info, err := Open(Config{
		Root:       root,
		From:       w.addr,
		Clock:      staticClock{instant},
		RetryDelay: 10 * time.Millisecond,
		Logf:       w.t.Logf,
	})
	if err != nil {
		w.t.Fatalf("replica open: %v", err)
	}
	if len(info.Fsck) != 0 {
		w.t.Fatalf("replica recovery fsck: %v", info.Fsck)
	}
	return r
}

// sameTables reports whether every relation dumps byte-identically.
func sameTables(want, got *db.DB) (bool, string) {
	want.LockShared()
	got.LockShared()
	defer want.UnlockShared()
	defer got.UnlockShared()
	for _, tbl := range db.AllTables {
		var a, b bytes.Buffer
		if err := want.DumpTable(tbl, &a); err != nil {
			return false, err.Error()
		}
		if err := got.DumpTable(tbl, &b); err != nil {
			return false, err.Error()
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			return false, fmt.Sprintf("table %s differs:\nprimary:\n%s\nreplica:\n%s", tbl, a.String(), b.String())
		}
	}
	return true, ""
}

// waitConverged polls until the replica's tables match the primary's
// byte-for-byte. Call only after all writers have finished.
func waitConverged(t *testing.T, want, got *db.DB) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		ok, diff := sameTables(want, got)
		if ok {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica never converged: %s", diff)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestReplicaConvergesUnderConcurrentWrites is the core acceptance
// test: an empty replica tails a primary that is mutating concurrently,
// is killed and restarted mid-stream, and still ends byte-identical
// per table.
func TestReplicaConvergesUnderConcurrentWrites(t *testing.T) {
	w := newPrimaryWorld(t)
	rroot := t.TempDir()

	rep := w.openReplica(rroot)
	rep.Start()

	// First wave lands while the replica is live.
	for i := 0; i < 20; i++ {
		w.run("add_machine", fmt.Sprintf("m%03d.mit.edu", i), "VAX")
	}

	// Kill the replica mid-stream; the primary keeps writing. Wait for
	// the stream to actually start first — "mid-stream" requires the
	// replica to have mirrored at least one record, and the connect
	// races the write loop above.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if seg, idx := rep.Position(); seg > 0 || idx > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("replica never started mirroring")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := rep.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 20; i < 40; i++ {
		w.run("add_machine", fmt.Sprintf("m%03d.mit.edu", i), "VAX")
	}

	// Restart from the same directory: it resumes from its mirrored
	// position, with more writes racing the catch-up.
	rep2 := w.openReplica(rroot)
	seg, idx := rep2.Position()
	if seg == 0 && idx == 0 {
		t.Fatal("restarted replica lost its position")
	}
	rep2.Start()
	defer rep2.Close()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 40; i < 60; i++ {
			w.run("add_machine", fmt.Sprintf("m%03d.mit.edu", i), "VAX")
		}
	}()
	wg.Wait()

	waitConverged(t, w.d, rep2.DB())
	if rep2.applied.Load() == 0 {
		t.Error("restarted replica applied no records")
	}
}

// TestReplicaBootstrapFromSnapshot covers the other arrival path: the
// records an empty replica would need were pruned by checkpointing, so
// the primary must ship a snapshot before tailing.
func TestReplicaBootstrapFromSnapshot(t *testing.T) {
	w := newPrimaryWorld(t)
	for i := 0; i < 10; i++ {
		w.run("add_machine", fmt.Sprintf("pre%02d.mit.edu", i), "VAX")
	}
	if _, err := w.checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	for i := 0; i < 10; i++ {
		w.run("add_machine", fmt.Sprintf("post%02d.mit.edu", i), "VAX")
	}

	rep := w.openReplica(t.TempDir())
	rep.Start()
	defer rep.Close()
	waitConverged(t, w.d, rep.DB())
	if got := rep.bootstraps.Load(); got != 1 {
		t.Errorf("bootstraps = %d, want 1", got)
	}
	seg, _ := rep.Position()
	if seg == 0 {
		t.Error("position still (0, *) after bootstrap")
	}
}

// TestReplicaServesReadsRejectsWrites serves the replica's database
// through a read-only server with the primary down: retrievals work,
// mutations get MR_READONLY.
func TestReplicaServesReadsRejectsWrites(t *testing.T) {
	w := newPrimaryWorld(t)
	w.run("add_machine", "only.mit.edu", "VAX")

	rep := w.openReplica(t.TempDir())
	rep.Start()
	defer rep.Close()
	waitConverged(t, w.d, rep.DB())

	// The primary dies; the replica keeps serving what it has.
	w.prim.Close()

	srv := server.New(server.Config{DB: rep.DB(), ReadOnly: true})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := client.Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Disconnect()

	rows, err := c.QueryAll("_list_queries")
	if err != nil {
		t.Fatalf("retrieval on replica: %v", err)
	}
	if len(rows) == 0 {
		t.Fatal("retrieval on replica returned nothing")
	}
	if _, err := c.QueryAll("add_machine", "write.mit.edu", "VAX"); err != mrerr.MrReadonly {
		t.Fatalf("mutation on replica = %v, want MR_READONLY", err)
	}
	if _, err := c.QueryAll("no_such_query"); err != mrerr.MrNoHandle {
		t.Fatalf("unknown handle on replica = %v, want MR_NO_HANDLE", err)
	}
}

// TestPromotion promotes a converged replica, writes through it, and
// proves the writes survive the promoted node's own crash-recovery.
func TestPromotion(t *testing.T) {
	w := newPrimaryWorld(t)
	for i := 0; i < 5; i++ {
		w.run("add_machine", fmt.Sprintf("m%d.mit.edu", i), "VAX")
	}

	rroot := t.TempDir()
	rep := w.openReplica(rroot)
	rep.Start()
	waitConverged(t, w.d, rep.DB())

	// Primary lost; operator promotes the replica.
	w.prim.Close()
	jw, err := rep.Promote(db.JournalOptions{Policy: db.SyncEveryCommit})
	if err != nil {
		t.Fatalf("promote: %v", err)
	}
	if _, err := rep.Promote(db.JournalOptions{}); err != ErrPromoted {
		t.Fatalf("second promote = %v, want ErrPromoted", err)
	}

	cx := &queries.Context{DB: rep.DB(), Principal: "ops", App: "test", Privileged: true}
	if err := queries.Execute(cx, "add_machine", []string{"promoted.mit.edu", "VAX"}, func([]string) error { return nil }); err != nil {
		t.Fatalf("write after promotion: %v", err)
	}

	// The promoted node crashes; ordinary recovery over its mirrored
	// directory (snapshotless: bootstrap + replayed segments + the
	// promotion segment) must reproduce its state, new write included.
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}
	recovered, info, err := queries.Recover(rroot, staticClock{instant}, t.Logf)
	if err != nil {
		t.Fatalf("recover promoted node: %v", err)
	}
	if len(info.Fsck) != 0 {
		t.Fatalf("promoted node recovery fsck: %v", info.Fsck)
	}
	if ok, diff := sameTables(rep.DB(), recovered); !ok {
		t.Fatalf("promoted node state lost in recovery: %s", diff)
	}

	// The promoted node's secondary indexes were rebuilt across replica
	// apply, AdoptFrom bootstrap, and promotion; index-backed wildcard
	// retrieval must see every machine, on both the promoted node and
	// its recovered twin, through live and snapshot reads alike.
	for _, node := range []*db.DB{rep.DB(), recovered} {
		node.LockShared()
		n := len(node.MachinesMatchingName("*.MIT.EDU"))
		node.UnlockShared()
		if n != 6 {
			t.Errorf("indexed wildcard match found %d machines, want 6", n)
		}
		if sn := len(node.Reader().MachinesMatchingName("*.MIT.EDU")); sn != 6 {
			t.Errorf("snapshot wildcard match found %d machines, want 6", sn)
		}
		if bad := node.Fsck(); len(bad) != 0 {
			t.Errorf("index consistency fsck: %v", bad)
		}
	}
	rep.Close()
}

// TestReplicationSoak runs the whole lifecycle under -race: one
// primary, two replicas, concurrent writers, a checkpoint mid-stream,
// a replica kill/restart, and a final promotion. CI runs this with the
// race detector as the replication soak.
func TestReplicationSoak(t *testing.T) {
	w := newPrimaryWorld(t)
	rootA, rootB := t.TempDir(), t.TempDir()
	repA := w.openReplica(rootA)
	repA.Start()
	repB := w.openReplica(rootB)
	repB.Start()

	const writers, per = 3, 30
	var wg sync.WaitGroup
	for wr := 0; wr < writers; wr++ {
		wg.Add(1)
		go func(wr int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				w.run("add_machine", fmt.Sprintf("w%d-%03d.mit.edu", wr, i), "VAX")
			}
		}(wr)
	}

	// Mid-stream: checkpoint (rotating the journal under the tailers)
	// and bounce replica B.
	time.Sleep(20 * time.Millisecond)
	if _, err := w.checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if err := repB.Close(); err != nil {
		t.Fatal(err)
	}
	repB = w.openReplica(rootB)
	repB.Start()
	wg.Wait()

	waitConverged(t, w.d, repA.DB())
	waitConverged(t, w.d, repB.DB())

	// Primary retires; A takes over and keeps accepting writes.
	w.prim.Close()
	repB.Close()
	jw, err := repA.Promote(db.JournalOptions{Policy: db.SyncEveryCommit})
	if err != nil {
		t.Fatalf("promote: %v", err)
	}
	defer jw.Close()
	cx := &queries.Context{DB: repA.DB(), Principal: "ops", App: "test", Privileged: true}
	if err := queries.Execute(cx, "add_machine", []string{"takeover.mit.edu", "VAX"}, func([]string) error { return nil }); err != nil {
		t.Fatalf("write after promotion: %v", err)
	}
	repA.Close()
}
