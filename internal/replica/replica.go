package replica

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"moira/internal/clock"
	"moira/internal/db"
	"moira/internal/mrerr"
	"moira/internal/protocol"
	"moira/internal/queries"
	"moira/internal/stats"
	"moira/internal/trace"
)

// Config configures a replica.
type Config struct {
	// Root is the replica's own durable data directory. It uses the
	// standard layout and mirrors the primary's segment numbering, so
	// it recovers with queries.Recover like any other data dir — and a
	// promoted (or plainly restarted) replica serves from it directly.
	Root string

	// From is the primary's replication address (its -repl-listen).
	From string

	// Clock drives timestamps and reconnect backoff; nil means the
	// system clock.
	Clock clock.Clock

	// Logf receives replication log lines; nil discards them.
	Logf func(format string, args ...any)

	// Stats, when non-nil, receives the repl.* series.
	Stats *stats.Registry

	// Tracer, when non-nil, records a span per applied record (linked
	// by the record's trace ID to the originating client call) and per
	// bootstrap. Nil disables tracing; instrumentation is unconditional.
	Tracer *trace.Tracer

	// DialTimeout bounds each connection attempt (default 10s).
	DialTimeout time.Duration

	// RetryDelay is the backoff between reconnect attempts (default 1s),
	// slept through Clock.
	RetryDelay time.Duration

	// Cluster, when non-nil, runs the replica in cluster mode: the
	// handshake carries the node's election epoch, the primary's hello
	// and lease frames are surfaced through the callbacks, and applied
	// positions are acknowledged up the connection for the primary's
	// lease and semi-synchronous commit gate.
	Cluster *ReplicaCluster
}

// ReplicaCluster wires a Replica into its Cluster.
type ReplicaCluster struct {
	// Epoch reports the node's current election epoch, sent in the
	// handshake and every acknowledgement.
	Epoch func() int64

	// OnHello receives the primary's greeting. Returning an error ends
	// the session (e.g. the primary's epoch is older than ours: a
	// deposed primary must not be followed).
	OnHello func(epoch int64, replAddr, clientAddr string) error

	// OnLease is called at each lease frame, at receive time — the
	// replica's election timer anchors here.
	OnLease func(epoch int64)

	// OnRedirect is called when the dialed node refuses the stream
	// read-only and names the primary it knows (a follower was asked
	// to act as one); the session ends and the caller retargets.
	OnRedirect func(replAddr string)
}

// Replica is a read-only copy of the primary, kept hot by tailing its
// journal. Open recovers the local mirror, Start begins tailing, and
// the DB serves retrieval queries throughout — during bootstrap, the
// old state keeps serving until the restored snapshot is adopted in
// one lock acquisition.
type Replica struct {
	cfg  Config
	clk  clock.Clock
	logf func(string, ...any)

	d  *db.DB
	dd *db.DataDir

	mu      sync.Mutex
	conn    net.Conn
	started bool

	closing  chan struct{}
	done     chan struct{}
	promoted atomic.Bool

	// forceBoot makes the next handshake request a full bootstrap
	// (position -1, -1): set on rejoin after this node was primary, so
	// a diverged journal tail is replaced, never appended to.
	forceBoot atomic.Bool

	// Mirror of the primary's journal, owned by the run goroutine.
	mf   *os.File
	mseg int64

	// Position and lag, published via BindStats. next* name the record
	// the replica wants next; head* echo the primary's last head frame.
	nextSeg    atomic.Int64
	nextIdx    atomic.Int64
	segBytes   atomic.Int64 // bytes mirrored into the current segment
	headSeg    atomic.Int64
	headIdx    atomic.Int64
	headOff    atomic.Int64
	applied    atomic.Int64
	skipped    atomic.Int64
	failed     atomic.Int64
	reconnects atomic.Int64
	bootstraps atomic.Int64
	connected  atomic.Bool

	// Freshness, for the repl.lag.seconds gauge. freshAsOf is the last
	// instant (primary's clock, Unix seconds) the replica is known to
	// have been current: the journal timestamp of the newest applied
	// record, refreshed by each head-frame heartbeat's timestamp while
	// caught up. caughtUp latches while the primary reports our position
	// at its head and clears on any new record or disconnect.
	freshAsOf atomic.Int64
	caughtUp  atomic.Bool
}

// ErrPromoted is returned by operations that no longer apply once a
// replica has been promoted to primary.
var ErrPromoted = errors.New("replica: already promoted")

// Open recovers the replica's local data directory (snapshot +
// mirrored segments, identical to primary recovery), truncates any
// torn tail its own crash left in the newest mirrored segment, and
// computes the resume position. It does not connect; call Start.
func Open(cfg Config) (*Replica, *queries.RecoverInfo, error) {
	if cfg.Root == "" || cfg.From == "" {
		return nil, nil, fmt.Errorf("replica: Root and From are required")
	}
	cfg, clk, logf := cfg.withDefaults()

	d, info, err := queries.Recover(cfg.Root, clk, logf)
	if err != nil {
		return nil, info, err
	}
	dd, err := db.OpenDataDir(cfg.Root)
	if err != nil {
		return nil, info, err
	}
	r, err := attach(cfg, d, dd, true)
	if err != nil {
		return nil, info, err
	}
	logf("repl: opened replica at position (%d, %d): %s", r.nextSeg.Load(), r.nextIdx.Load(), info.Summary())
	return r, info, nil
}

// OpenRejoin builds a Replica over an already-open live database — the
// cluster's boot-as-follower path and the fenced-primary rejoin path.
// No recovery runs (the state is live and keeps serving reads), and
// the caller must already have detached the database's journal writer.
// With force set, the first handshake requests a full bootstrap
// (position -1, -1): a node that journaled as primary may hold a tail
// this history never committed, which must be replaced, not appended
// to.
func OpenRejoin(cfg Config, d *db.DB, dd *db.DataDir, force bool) (*Replica, error) {
	if cfg.From == "" {
		return nil, fmt.Errorf("replica: From is required")
	}
	cfg, _, logf := cfg.withDefaults()
	r, err := attach(cfg, d, dd, !force)
	if err != nil {
		return nil, err
	}
	r.forceBoot.Store(force)
	logf("repl: rejoining %s at position (%d, %d), force-bootstrap=%v",
		cfg.From, r.nextSeg.Load(), r.nextIdx.Load(), force)
	return r, nil
}

func (cfg Config) withDefaults() (Config, clock.Clock, func(string, ...any)) {
	if cfg.Clock == nil {
		cfg.Clock = clock.System
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 10 * time.Second
	}
	if cfg.RetryDelay <= 0 {
		cfg.RetryDelay = time.Second
	}
	return cfg, cfg.Clock, cfg.Logf
}

// attach builds the Replica struct over an open database, computing
// the resume position from the mirrored journal. truncate cuts a torn
// tail off the newest mirrored segment — wanted whenever that segment
// will be appended to rather than replaced.
func attach(cfg Config, d *db.DB, dd *db.DataDir, truncate bool) (*Replica, error) {
	r := &Replica{
		cfg:     cfg,
		clk:     cfg.Clock,
		logf:    cfg.Logf,
		d:       d,
		dd:      dd,
		closing: make(chan struct{}),
		done:    make(chan struct{}),
	}
	seg, idx, off, err := scanPosition(dd.JournalDir())
	if err != nil {
		return nil, err
	}
	if seg > 0 && truncate {
		// A torn tail from the replica's own crash must be cut off:
		// the primary resends that record whole, and appending it after
		// the partial bytes would manufacture mid-file corruption.
		if err := truncateSegment(filepath.Join(dd.JournalDir(), db.SegmentName(seg)), off); err != nil {
			return nil, err
		}
	}
	r.nextSeg.Store(seg)
	r.nextIdx.Store(idx)
	r.segBytes.Store(off)
	if cfg.Stats != nil {
		r.BindStats(cfg.Stats)
	}
	return r, nil
}

// SetFrom retargets the replica at a different primary: the current
// session is cut and the reconnect loop dials the new address.
func (r *Replica) SetFrom(addr string) {
	r.mu.Lock()
	if addr == r.cfg.From {
		r.mu.Unlock()
		return
	}
	r.cfg.From = addr
	conn := r.conn
	r.mu.Unlock()
	r.logf("repl: retargeting to %s", addr)
	if conn != nil {
		conn.Close()
	}
}

// ForceBootstrap discards the local tail on the next session: the
// replica re-handshakes with the explicit bootstrap position, so the
// primary ships a full snapshot instead of a tail that might not share
// a prefix with this node's journal. The cluster uses it whenever the
// election epoch advances past the epoch this node's tail was written
// under.
func (r *Replica) ForceBootstrap() {
	r.forceBoot.Store(true)
	r.mu.Lock()
	conn := r.conn
	r.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
}

// From reports the primary address the replica currently targets.
func (r *Replica) From() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cfg.From
}

// DB returns the replica's database, live from the moment Open
// returns. Serve it read-only: nothing attaches a journal to it, so
// locally executed mutations would be silently undone by the next
// bootstrap — the server's MR_READONLY gate is what keeps them out.
func (r *Replica) DB() *db.DB { return r.d }

// Position returns the next (segment, record) the replica wants.
func (r *Replica) Position() (seg, idx int64) {
	return r.nextSeg.Load(), r.nextIdx.Load()
}

// Connected reports whether a replication session is currently live.
func (r *Replica) Connected() bool { return r.connected.Load() }

// BindStats publishes the replica's repl.* series into reg. Lag in
// records and bytes is exact while applier and head share a segment
// and a lower bound while the applier is segments behind.
func (r *Replica) BindStats(reg *stats.Registry) {
	reg.AddGroup(func(emit func(string, int64)) {
		role := int64(1)
		if r.promoted.Load() {
			role = 2
		}
		emit("repl.role", role)
		emit("repl.applied.seg", r.nextSeg.Load())
		emit("repl.applied.idx", r.nextIdx.Load())
		emit("repl.applied.records", r.applied.Load())
		if s := r.skipped.Load(); s > 0 {
			emit("repl.skipped.records", s)
		}
		if f := r.failed.Load(); f > 0 {
			emit("repl.failed.records", f)
		}
		hs, hi, ho := r.headSeg.Load(), r.headIdx.Load(), r.headOff.Load()
		if hs > 0 {
			emit("repl.head.seg", hs)
			emit("repl.head.idx", hi)
			lagSegs := hs - r.nextSeg.Load()
			if lagSegs < 0 {
				lagSegs = 0
			}
			emit("repl.lag.segments", lagSegs)
			lagRecs, lagBytes := hi, ho
			if lagSegs == 0 {
				lagRecs = hi - r.nextIdx.Load()
				lagBytes = ho - r.segBytes.Load()
			}
			if lagRecs < 0 {
				lagRecs = 0
			}
			if lagBytes < 0 {
				lagBytes = 0
			}
			emit("repl.lag.records", lagRecs)
			emit("repl.lag.bytes", lagBytes)
		}
		emit("repl.lag.seconds", r.LagSeconds())
		emit("repl.reconnects", r.reconnects.Load())
		if b := r.bootstraps.Load(); b > 0 {
			emit("repl.bootstraps", b)
		}
		if r.connected.Load() {
			emit("repl.connected", 1)
		} else {
			emit("repl.connected", 0)
		}
	})
}

// LagSeconds estimates how far behind the primary this replica is in
// time: zero while the primary's head-frame heartbeats report us caught
// up, otherwise the age of the last known-current instant (newest
// applied record's journal timestamp, refreshed by heartbeats while
// caught up). A replica that has applied nothing and never connected
// reports zero — there is nothing to be stale relative to.
func (r *Replica) LagSeconds() int64 {
	if r.caughtUp.Load() {
		return 0
	}
	fresh := r.freshAsOf.Load()
	if fresh == 0 {
		return 0
	}
	lag := r.clk.Now().Unix() - fresh
	if lag < 0 {
		lag = 0
	}
	return lag
}

// Start launches the tailing loop: connect, handshake, apply, and
// reconnect with backoff until Close or Promote.
func (r *Replica) Start() {
	r.mu.Lock()
	if r.started {
		r.mu.Unlock()
		return
	}
	r.started = true
	r.mu.Unlock()
	go r.run()
}

func (r *Replica) run() {
	defer close(r.done)
	defer r.closeMirror()
	first := true
	for {
		select {
		case <-r.closing:
			return
		default:
		}
		if !first {
			r.reconnects.Add(1)
			clock.Sleep(r.clk, r.cfg.RetryDelay)
		}
		first = false
		if err := r.session(); err != nil {
			select {
			case <-r.closing:
				return
			default:
			}
			r.logf("repl: session ended: %v", err)
		}
	}
}

// setConn records the live connection so Close/Promote can cut it.
func (r *Replica) setConn(conn net.Conn) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	select {
	case <-r.closing:
		return false
	default:
	}
	r.conn = conn
	return true
}

// session runs one connection to the primary to completion.
func (r *Replica) session() error {
	from := r.From()
	conn, err := net.DialTimeout("tcp", from, r.cfg.DialTimeout)
	if err != nil {
		return err
	}
	if !r.setConn(conn) {
		conn.Close()
		return nil
	}
	defer func() {
		conn.Close()
		r.connected.Store(false)
		// No heartbeats while disconnected: lag must grow from the last
		// known-current instant instead of sticking at zero.
		r.caughtUp.Store(false)
		r.mu.Lock()
		r.conn = nil
		r.mu.Unlock()
	}()

	cl := r.cfg.Cluster
	bw := bufio.NewWriter(conn)
	seg, idx := r.nextSeg.Load(), r.nextIdx.Load()
	args := []string{itoa(seg), itoa(idx)}
	if cl != nil {
		if r.forceBoot.Load() {
			args = []string{"-1", "-1"}
		}
		args = append(args, itoa(cl.Epoch()))
	}
	err = protocol.WriteRequest(bw, &protocol.Request{
		Version: protocol.Version,
		Op:      protocol.OpReplicate,
		Args:    protocol.BytesArgs(args),
	})
	if err == nil {
		err = bw.Flush()
	}
	if err != nil {
		return err
	}
	r.connected.Store(true)
	r.logf("repl: connected to %s at position (%d, %d)", from, seg, idx)

	// Cluster-mode acknowledgements: one OpElection "ack" request back
	// up the stream, carrying our epoch, the newest lease sequence
	// seen, and the next record we want (everything before it is
	// mirrored and applied). Sent at each lease frame and after each
	// drained burst of records.
	var lastLeaseSeq int64
	helloSeen := false
	ack := func() error {
		if cl == nil || !helloSeen {
			return nil
		}
		err := protocol.WriteRequest(bw, &protocol.Request{
			Version: protocol.Version,
			Op:      protocol.OpElection,
			Args: protocol.BytesArgs([]string{electAck, itoa(cl.Epoch()),
				itoa(lastLeaseSeq), itoa(r.nextSeg.Load()), itoa(r.nextIdx.Load())}),
		})
		if err == nil {
			err = bw.Flush()
		}
		return err
	}

	// leaseAck processes one lease frame wherever it arrives — in the
	// main stream or interleaved with snapshot chunks.
	leaseAck := func(epoch, seq int64) error {
		if seq > lastLeaseSeq {
			lastLeaseSeq = seq
		}
		if cl != nil && cl.OnLease != nil {
			cl.OnLease(epoch)
		}
		return ack()
	}

	br := bufio.NewReader(conn)
	dirty := false // positions advanced since the last ack
	for {
		rep, err := protocol.ReadReply(br)
		if err != nil {
			return err
		}
		if code := mrerr.Code(rep.Code); code != mrerr.MrMoreData {
			if code == mrerr.MrReadonly && cl != nil {
				// The dialed node is not (or no longer) the primary. If
				// it knows who is, chase that instead of redialing it.
				if f := rep.StringFields(); len(f) > 0 && f[0] != "" && cl.OnRedirect != nil {
					cl.OnRedirect(f[0])
				}
				return fmt.Errorf("%s is not the primary", from)
			}
			return fmt.Errorf("primary ended stream with code %d (%v)", rep.Code, code.OrNil())
		}
		if len(rep.Fields) == 0 {
			return fmt.Errorf("empty stream frame")
		}
		f := rep.StringFields()
		switch f[0] {
		case tagRec:
			if len(f) != 4 {
				return fmt.Errorf("malformed rec frame (%d fields)", len(f))
			}
			if err := r.applyRecord(f[1], f[2], f[3]); err != nil {
				return err
			}
			dirty = true
		case tagHello:
			if len(f) != 4 {
				return fmt.Errorf("malformed hello frame")
			}
			epoch, err := parseInt(f[1])
			if err != nil {
				return fmt.Errorf("malformed hello frame")
			}
			if cl != nil && cl.OnHello != nil {
				if err := cl.OnHello(epoch, f[2], f[3]); err != nil {
					return err
				}
			}
			helloSeen = true
		case tagLease:
			if len(f) != 3 {
				return fmt.Errorf("malformed lease frame")
			}
			epoch, e1 := parseInt(f[1])
			seq, e2 := parseInt(f[2])
			if e1 != nil || e2 != nil {
				return fmt.Errorf("malformed lease frame")
			}
			if err := leaseAck(epoch, seq); err != nil {
				return err
			}
			dirty = false
		case tagHead:
			// 4 fields from older primaries; 5 adds the primary's clock
			// (Unix seconds) so heartbeats keep freshness current.
			if len(f) != 4 && len(f) != 5 {
				return fmt.Errorf("malformed head frame (%d fields)", len(f))
			}
			hs, e1 := parseInt(f[1])
			hi, e2 := parseInt(f[2])
			ho, e3 := parseInt(f[3])
			if e1 != nil || e2 != nil || e3 != nil {
				return fmt.Errorf("malformed head frame")
			}
			r.headSeg.Store(hs)
			r.headIdx.Store(hi)
			r.headOff.Store(ho)
			// A head frame means the stream has delivered everything up
			// to the primary's head: this replica is caught up right now.
			r.caughtUp.Store(true)
			if len(f) == 5 {
				if ts, err := parseInt(f[4]); err == nil && ts > r.freshAsOf.Load() {
					r.freshAsOf.Store(ts)
				}
			}
		case tagSnapBegin:
			if len(f) != 3 {
				return fmt.Errorf("malformed snap-begin frame")
			}
			if err := r.receiveSnapshot(br, f[1], f[2], leaseAck); err != nil {
				return err
			}
			r.forceBoot.Store(false)
			dirty = true
		default:
			return fmt.Errorf("unknown stream frame %q", f[0])
		}
		// Acknowledge advanced positions once the read buffer drains: a
		// burst of records costs one ack, and the primary's commit gate
		// hears about the burst's last commit promptly.
		if dirty && br.Buffered() == 0 {
			if err := ack(); err != nil {
				return err
			}
			dirty = false
		}
	}
}

// applyRecord mirrors one journal line to disk and applies it through
// the replay path.
func (r *Replica) applyRecord(segField, idxField, line string) error {
	seg, e1 := parseInt(segField)
	idx, e2 := parseInt(idxField)
	if e1 != nil || e2 != nil {
		return fmt.Errorf("malformed rec position")
	}
	if _, st := db.SplitJournalCRC(line); st != db.CRCValid {
		return fmt.Errorf("record (%d, %d) fails CRC in flight", seg, idx)
	}
	wantSeg, wantIdx := r.nextSeg.Load(), r.nextIdx.Load()
	switch {
	case wantSeg == 0 && wantIdx == 0:
		// Empty replica streaming without bootstrap: adopt the
		// primary's numbering from the first record.
		if idx != 0 {
			return fmt.Errorf("first record (%d, %d) is mid-segment", seg, idx)
		}
	case seg == wantSeg && idx == wantIdx:
		// In sequence.
	case seg > wantSeg && idx == 0:
		// Primary advanced past our segment's (possibly torn) tail.
	default:
		return fmt.Errorf("record (%d, %d) does not follow position (%d, %d)", seg, idx, wantSeg, wantIdx)
	}

	if err := r.mirrorAppend(seg, line); err != nil {
		return err
	}
	// The record's own trace ID links this apply span to the client call
	// and server spans that produced the record, across both processes.
	var sp *trace.Span
	if rec, perr := db.ParseJournalLine(line); perr == nil {
		sp = r.cfg.Tracer.Start(rec.Trace, "", "repl.apply")
		sp.SetDetail(rec.Query)
		if rec.Time > r.freshAsOf.Load() {
			r.freshAsOf.Store(rec.Time)
		}
	}
	r.caughtUp.Store(false)
	outcome, err := queries.ApplyJournalLine(r.d, line)
	switch outcome {
	case queries.ApplyApplied:
		r.applied.Add(1)
		sp.End()
	case queries.ApplySkipped:
		r.skipped.Add(1)
		sp.End()
	default:
		// The record is mirrored — local recovery will classify it the
		// same way — so a failed apply is logged and counted, exactly
		// as replay treats it, rather than killing the stream.
		r.failed.Add(1)
		r.logf("repl: apply (%d, %d): %v", seg, idx, err)
		sp.EndCode(int32(mrerr.CodeOf(err)))
	}
	r.nextSeg.Store(seg)
	r.nextIdx.Store(idx + 1)
	return nil
}

// mirrorAppend writes one record line into the replica's own journal
// segment, rolling files as the primary's numbering advances. The
// mirror is synced at segment rolls and shutdown, not per record: a
// lost tail is re-fetched from the primary after the next handshake.
func (r *Replica) mirrorAppend(seg int64, line string) error {
	if r.mf == nil || seg != r.mseg {
		if err := r.closeMirror(); err != nil {
			return err
		}
		f, err := os.OpenFile(filepath.Join(r.dd.JournalDir(), db.SegmentName(seg)),
			os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			return err
		}
		r.mf = f
		r.mseg = seg
		r.segBytes.Store(0)
		if st, err := f.Stat(); err == nil {
			r.segBytes.Store(st.Size())
		}
	}
	n, err := r.mf.Write([]byte(line + "\n"))
	r.segBytes.Add(int64(n))
	if err != nil {
		return fmt.Errorf("mirror append: %w", err)
	}
	return nil
}

func (r *Replica) closeMirror() error {
	if r.mf == nil {
		return nil
	}
	err := r.mf.Sync()
	if cerr := r.mf.Close(); err == nil {
		err = cerr
	}
	r.mf = nil
	return err
}

// receiveSnapshot reassembles a bootstrap snapshot into the replica's
// own snapshots directory, verifies its manifest, restores it into a
// private database, and adopts the result in one lock acquisition —
// readers see the old state until the swap, never a half-loaded one.
// The stale mirror segments are removed; tailing resumes at the
// snapshot's journal sequence.
func (r *Replica) receiveSnapshot(br *bufio.Reader, genField, seqField string, leaseAck func(epoch, seq int64) error) (err error) {
	gen, e1 := parseInt(genField)
	jseq, e2 := parseInt(seqField)
	if e1 != nil || e2 != nil || gen <= 0 || jseq <= 0 {
		return fmt.Errorf("malformed snap-begin frame")
	}
	sp := r.cfg.Tracer.Start("", "", "repl.bootstrap")
	sp.SetDetail(fmt.Sprintf("generation %d", gen))
	defer func() {
		if err != nil {
			sp.EndCode(int32(mrerr.MrInternal))
		} else {
			sp.End()
		}
	}()
	r.logf("repl: receiving bootstrap snapshot generation %d (journal seq %d)", gen, jseq)

	store, err := db.NewCheckpointStore(r.dd.SnapshotsDir(), 0)
	if err != nil {
		return err
	}
	final := store.Path(gen)
	tmp := final + ".tmp"
	if err := os.RemoveAll(tmp); err != nil {
		return err
	}
	if err := os.MkdirAll(tmp, 0o755); err != nil {
		return err
	}
	cleanup := tmp
	defer func() {
		if cleanup != "" {
			os.RemoveAll(cleanup)
		}
	}()

	var cur *os.File
	closeCur := func() error {
		if cur == nil {
			return nil
		}
		err := cur.Sync()
		if cerr := cur.Close(); err == nil {
			err = cerr
		}
		cur = nil
		return err
	}
	defer closeCur()

receive:
	for {
		rep, err := protocol.ReadReply(br)
		if err != nil {
			return err
		}
		if mrerr.Code(rep.Code) != mrerr.MrMoreData || len(rep.Fields) == 0 {
			return fmt.Errorf("stream ended mid-snapshot")
		}
		tag := string(rep.Fields[0])
		switch tag {
		case tagFile:
			if len(rep.Fields) != 2 {
				return fmt.Errorf("malformed file frame")
			}
			name := string(rep.Fields[1])
			if name != filepath.Base(name) || strings.HasPrefix(name, ".") {
				return fmt.Errorf("unsafe snapshot file name %q", name)
			}
			if err := closeCur(); err != nil {
				return err
			}
			cur, err = os.OpenFile(filepath.Join(tmp, name),
				os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
			if err != nil {
				return err
			}
		case tagChunk:
			if cur == nil || len(rep.Fields) != 2 {
				return fmt.Errorf("chunk frame outside a file")
			}
			if _, err := cur.Write(rep.Fields[1]); err != nil {
				return err
			}
		case tagFileEnd:
			if err := closeCur(); err != nil {
				return err
			}
		case tagLease:
			// Lease heartbeats ride between chunks; acknowledging them
			// keeps the primary's lease alive through a long bootstrap.
			f := rep.StringFields()
			if len(f) != 3 {
				return fmt.Errorf("malformed lease frame")
			}
			epoch, e1 := parseInt(f[1])
			seq, e2 := parseInt(f[2])
			if e1 != nil || e2 != nil {
				return fmt.Errorf("malformed lease frame")
			}
			if err := leaseAck(epoch, seq); err != nil {
				return err
			}
		case tagSnapEnd:
			break receive
		default:
			return fmt.Errorf("unexpected frame %q inside snapshot", tag)
		}
	}
	if err := closeCur(); err != nil {
		return err
	}

	// Verify before adopting: a bit flipped in flight must not become
	// the replica's state.
	m, err := db.ReadManifest(tmp)
	if err == nil {
		err = m.Verify(tmp)
	}
	if err != nil {
		return fmt.Errorf("received snapshot fails verification: %w", err)
	}
	if m.JournalSeq != jseq || m.Generation != gen {
		return fmt.Errorf("received manifest (gen %d, seq %d) does not match announcement (gen %d, seq %d)",
			m.Generation, m.JournalSeq, gen, jseq)
	}

	if err := os.RemoveAll(final); err != nil {
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		return err
	}
	cleanup = ""

	fresh, err := db.Restore(final, r.clk)
	if err != nil {
		return err
	}

	// Drop the stale mirror: every retained record predates the
	// snapshot or belongs to a history this replica no longer follows.
	if err := r.closeMirror(); err != nil {
		return err
	}
	segs, err := db.ListSegments(r.dd.JournalDir())
	if err != nil {
		return err
	}
	for _, s := range segs {
		if err := os.Remove(s.Path); err != nil {
			return err
		}
	}

	r.d.AdoptFrom(fresh)
	r.nextSeg.Store(jseq)
	r.nextIdx.Store(0)
	r.segBytes.Store(0)
	r.bootstraps.Add(1)
	r.logf("repl: adopted snapshot generation %d; tailing from segment %d", gen, jseq)
	return nil
}

// Promote turns the replica into a primary: stop tailing, check
// integrity, open a fresh journal segment on the mirrored directory,
// and attach it so the database journals (and so accepts) mutations.
// The caller flips its server out of read-only mode on success. A
// non-empty fsck report refuses promotion — the replica keeps serving
// reads and the operator decides.
func (r *Replica) Promote(opts db.JournalOptions) (*db.JournalWriter, error) {
	if !r.promoted.CompareAndSwap(false, true) {
		return nil, ErrPromoted
	}
	r.stop()
	if issues := r.d.Fsck(); len(issues) > 0 {
		for _, in := range issues {
			r.logf("repl: promote fsck: %s", in)
		}
		r.promoted.Store(false)
		return nil, fmt.Errorf("replica: fsck found %d inconsistencies; refusing promotion", len(issues))
	}
	jw, err := db.OpenJournalWriter(r.dd.JournalDir(), opts)
	if err != nil {
		r.promoted.Store(false)
		return nil, err
	}
	r.d.SetJournal(jw)
	// Bump the persisted election epoch on a legacy (non-cluster)
	// promotion too: if this node or its deposed primary later joins
	// an elected cluster, the epochs must still order the promotion.
	// In cluster mode the Cluster persists the claimed epoch itself.
	if r.cfg.Cluster == nil && r.cfg.Root != "" {
		if epoch, err := LoadEpoch(r.cfg.Root); err == nil {
			if err := StoreEpoch(r.cfg.Root, epoch+1); err != nil {
				r.logf("repl: promote: persisting epoch: %v", err)
			}
		}
	}
	r.logf("repl: promoted to primary; journal segment %d", jw.Seq())
	return jw, nil
}

// stop ends the tailing loop and waits for it.
func (r *Replica) stop() {
	r.mu.Lock()
	select {
	case <-r.closing:
	default:
		close(r.closing)
	}
	if r.conn != nil {
		r.conn.Close()
	}
	started := r.started
	r.mu.Unlock()
	if started {
		<-r.done
	} else {
		r.closeMirror()
	}
}

// Close stops tailing and syncs the mirror. The database stays usable
// for reads.
func (r *Replica) Close() error {
	r.stop()
	return nil
}

// scanPosition derives the resume position from a mirrored journal
// directory: the highest segment, the count of complete CRC-valid
// lines in it, and the byte offset just past the last of them. An
// empty directory is (0, 0, 0).
func scanPosition(dir string) (seg, idx, off int64, err error) {
	segs, err := db.ListSegments(dir)
	if err != nil || len(segs) == 0 {
		return 0, 0, 0, err
	}
	last := segs[len(segs)-1]
	data, err := os.ReadFile(last.Path)
	if err != nil {
		return 0, 0, 0, err
	}
	idx, off = countValidLines(data)
	return last.Seq, idx, off, nil
}

// countValidLines counts the leading run of complete CRC-valid lines
// in a segment image and the byte offset past the last one. Anything
// after — a torn tail, or in the worst case mid-file damage recovery
// already refused — is not counted.
func countValidLines(data []byte) (idx, off int64) {
	for int(off) < len(data) {
		j := -1
		for k := int(off); k < len(data); k++ {
			if data[k] == '\n' {
				j = k
				break
			}
		}
		if j < 0 {
			break // incomplete final line
		}
		line := string(data[off:int64(j)])
		if line != "" {
			if _, st := db.SplitJournalCRC(line); st != db.CRCValid {
				break
			}
			idx++
		}
		off = int64(j) + 1
	}
	return idx, off
}

// truncateSegment cuts a mirrored segment back to its valid prefix.
func truncateSegment(path string, off int64) error {
	st, err := os.Stat(path)
	if err != nil {
		return err
	}
	if st.Size() == off {
		return nil
	}
	return os.Truncate(path, off)
}
