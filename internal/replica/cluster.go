package replica

// Cluster: self-driving failover over the replication port (no
// external coordinator). Every node runs one Cluster, which owns the
// node's replication listener and its role:
//
//   - The primary streams the journal to followers (Primary), renews
//     its deadline lease through the per-connection lease frames, and
//     fences itself — flips read-only and stops streaming — the moment
//     it can no longer prove the lease: fencing is anchored at the
//     SEND time of the last acknowledged lease frame, which strictly
//     precedes any follower's election timer (anchored at receive
//     time plus the timeout plus a full interval of margin plus a
//     randomized backoff), so under a clean partition the old primary
//     is read-only before a new one can be elected. A primary that
//     has never had an epoch-aware subscriber since its promotion — a
//     fresh failover winner whose peers are dead, or an operator
//     promotion — runs degraded instead: it self-holds the lease and
//     waives the commit gate, trading the replication guarantee for
//     availability until a follower arrives.
//
//   - A follower tails the primary and watches the lease from the
//     other side: when no hello or lease frame has arrived for a full
//     lease timeout, it starts an election — poll every peer, defer
//     to a live primary or a better-positioned replica (highest
//     journal position wins, lowest address breaks ties), otherwise
//     claim epoch max+1 from the electorate. A pair (n ≤ 2) elects by
//     self-grant — safety comes from the lease timing — while n ≥ 3
//     requires a majority including self.
//
//   - A fenced ex-primary polls for the new history and rejoins as a
//     follower with a forced bootstrap, replacing whatever tail it
//     journaled after its lease expired; if no new primary ever
//     appears (the outage was the follower's, not the network's), it
//     re-elects itself after another timeout.
//
// Epochs order promotions: persisted (fsynced) before any grant or
// announcement, carried in handshakes, hellos, leases, and acks, so a
// deposed primary is recognized — and fenced — on first contact.

import (
	"bufio"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"moira/internal/clock"
	"moira/internal/db"
	"moira/internal/health"
	"moira/internal/mrerr"
	"moira/internal/protocol"
	"moira/internal/queries"
	"moira/internal/stats"
	"moira/internal/trace"
)

// Role names, as reported by _whois and the info RPC.
const (
	RolePrimary = "primary"
	RoleReplica = "replica"
	RoleFenced  = "fenced"
)

// ClusterConfig configures one failover cluster node.
type ClusterConfig struct {
	// Root is the node's durable data directory (standard layout).
	Root string

	// ListenRepl is the replication listen address; AdvertiseRepl is
	// the address peers dial it at (defaults to the bound address).
	ListenRepl    string
	AdvertiseRepl string

	// AdvertiseClient is the node's client (query) address, handed to
	// clients chasing the primary.
	AdvertiseClient string

	// Peers are the other nodes' replication addresses (not self).
	Peers []string

	// LeaseInterval is the heartbeat period (default 2s); LeaseTimeout
	// is how long a lease holds without renewal (default 3×interval).
	LeaseInterval time.Duration
	LeaseTimeout  time.Duration

	// Journal configures the journal writer a promoted primary opens.
	Journal db.JournalOptions

	// CheckpointInterval starts periodic snapshots while primary; zero
	// means snapshots are taken only on demand (replica bootstraps).
	CheckpointInterval time.Duration
	// CheckpointKeep is the snapshot retention depth (default 3).
	CheckpointKeep int

	// Clock stamps journal records and head frames; nil means system.
	Clock clock.Clock
	// Logf receives cluster log lines; nil discards.
	Logf func(format string, args ...any)
	// Stats, when non-nil, receives the election.*, lease.*, and
	// repl.commit.* series.
	Stats *stats.Registry
	// Tracer, when non-nil, traces applied records and bootstraps.
	Tracer *trace.Tracer

	// OnRole is called on every role change (never concurrently): the
	// server flips its read-only gate here. readonly is false exactly
	// while the node is the primary.
	OnRole func(role string, readonly bool)
}

// Cluster is one node of a failover cluster.
type Cluster struct {
	cfg  ClusterConfig
	clk  clock.Clock
	logf func(string, ...any)

	d     *db.DB
	dd    *db.DataDir
	store *db.CheckpointStore
	info  *queries.RecoverInfo

	ln      net.Listener
	wg      sync.WaitGroup
	closing chan struct{}
	kick    chan struct{} // prods the run loop after a state change

	electMu sync.Mutex // serializes elections (run loop vs ForcePromote)
	ckptMu  sync.Mutex // serializes checkpoints
	inCkpt  atomic.Bool

	mu            sync.Mutex
	role          string
	epoch         int64
	jw            *db.JournalWriter // primary only
	primary       *Primary          // primary only
	rep           *Replica          // follower only
	primaryRepl   string            // current primary's addresses as this node knows them
	primaryClient string
	lastLease     time.Time // follower: last hello/lease receive instant
	fencedAt      time.Time
	promotedAt    time.Time
	lastCause     string
	pendingDepose int64 // epoch that deposed us, noticed mid-stream
	claimEpoch    int64 // epoch this node is currently claiming (0 none)
	claimSeg      int64
	claimIdx      int64
	posSeg        int64 // position while neither jw nor rep is live
	posIdx        int64
	needBoot      bool        // epoch advanced past our tail: next follow must bootstrap
	flaps         []time.Time // role-change instants, for the flapping probe
	everLease     bool        // a lease was ever observed (gates the boot cause)

	elections     atomic.Int64
	electionsWon  atomic.Int64
	electionsAbrt atomic.Int64
	leaseRenewals atomic.Int64
	leaseExpiries atomic.Int64
	gated         atomic.Int64
	gateFailed    atomic.Int64
	gateWaived    atomic.Int64
	lastCkpt      atomic.Int64
}

// OpenCluster recovers the node's data directory, binds the
// replication listener, and prepares (but does not start) the role
// machinery. Every node boots as a read-only follower; Start runs
// discovery and elections.
func OpenCluster(cfg ClusterConfig) (*Cluster, *queries.RecoverInfo, error) {
	if cfg.Root == "" || cfg.ListenRepl == "" {
		return nil, nil, fmt.Errorf("replica: cluster needs Root and ListenRepl")
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.System
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.LeaseInterval <= 0 {
		cfg.LeaseInterval = 2 * time.Second
	}
	if cfg.LeaseTimeout <= 0 {
		cfg.LeaseTimeout = 3 * cfg.LeaseInterval
	}

	d, info, err := queries.Recover(cfg.Root, cfg.Clock, cfg.Logf)
	if err != nil {
		return nil, info, err
	}
	dd, err := db.OpenDataDir(cfg.Root)
	if err != nil {
		return nil, info, err
	}
	store, err := db.NewCheckpointStore(dd.SnapshotsDir(), cfg.CheckpointKeep)
	if err != nil {
		return nil, info, err
	}
	epoch, err := LoadEpoch(cfg.Root)
	if err != nil {
		return nil, info, err
	}
	seg, idx, _, err := scanPosition(dd.JournalDir())
	if err != nil {
		return nil, info, err
	}

	ln, err := net.Listen("tcp", cfg.ListenRepl)
	if err != nil {
		return nil, info, err
	}
	if cfg.AdvertiseRepl == "" {
		cfg.AdvertiseRepl = ln.Addr().String()
	}

	c := &Cluster{
		cfg:     cfg,
		clk:     cfg.Clock,
		logf:    cfg.Logf,
		d:       d,
		dd:      dd,
		store:   store,
		info:    info,
		ln:      ln,
		closing: make(chan struct{}),
		kick:    make(chan struct{}, 1),
		role:    RoleReplica,
		epoch:   epoch,
		posSeg:  seg,
		posIdx:  idx,
	}
	if cfg.Stats != nil {
		c.BindStats(cfg.Stats)
	}
	c.logf("cluster: node %s (client %s) opened at epoch %d, position (%d, %d); peers %v",
		cfg.AdvertiseRepl, cfg.AdvertiseClient, epoch, seg, idx, cfg.Peers)
	return c, info, nil
}

// DB returns the node's database, serving reads from the moment
// OpenCluster returns.
func (c *Cluster) DB() *db.DB { return c.d }

// Addr returns the bound replication address.
func (c *Cluster) Addr() net.Addr { return c.ln.Addr() }

// Epoch reports the node's current election epoch.
func (c *Cluster) Epoch() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}

// Role reports the node's current role.
func (c *Cluster) Role() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.role
}

// Start launches the listener and the role loop.
func (c *Cluster) Start() {
	c.wg.Add(2)
	go c.acceptLoop()
	go c.run()
}

// Close shuts the node down: listener, stream, role loop.
func (c *Cluster) Close() error {
	select {
	case <-c.closing:
		return nil
	default:
	}
	close(c.closing)
	c.ln.Close()
	// Close the primary before waiting: its replication streams run on
	// serveConn goroutines counted in c.wg, and only Primary.Close
	// severs them. The run loop may still promote or rejoin while we
	// wait, so sweep twice — once to unblock, once after the loop is
	// provably gone.
	var errOut error
	for pass := 0; pass < 2; pass++ {
		c.mu.Lock()
		p, rep, jw := c.primary, c.rep, c.jw
		c.primary, c.rep, c.jw = nil, nil, nil
		c.mu.Unlock()
		if p != nil {
			p.Close()
		}
		if rep != nil {
			rep.Close()
		}
		if jw != nil {
			c.d.SetJournal(nil)
			errOut = jw.Close()
		}
		if pass == 0 {
			c.wg.Wait()
		}
	}
	return errOut
}

// ---- listener ----

func (c *Cluster) acceptLoop() {
	defer c.wg.Done()
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return
		}
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			c.serveConn(conn)
		}()
	}
}

func writeFinal(conn net.Conn, code mrerr.Code, fields ...string) {
	bw := bufio.NewWriter(conn)
	protocol.WriteReply(bw, &protocol.Reply{
		Version: protocol.Version,
		Code:    int32(code),
		Fields:  protocol.BytesArgs(fields),
	})
	bw.Flush()
}

func (c *Cluster) serveConn(conn net.Conn) {
	br := bufio.NewReader(conn)
	req, err := protocol.ReadRequest(br)
	if err != nil {
		conn.Close()
		return
	}
	if req.Version != protocol.Version {
		writeFinal(conn, mrerr.MrVersionMismatch)
		conn.Close()
		return
	}
	switch req.Op {
	case protocol.OpReplicate:
		c.mu.Lock()
		p, primaryRepl := c.primary, c.primaryRepl
		c.mu.Unlock()
		if p == nil {
			// Not the primary: refuse the stream and name the primary
			// we know, so a misdirected follower retargets in one hop.
			writeFinal(conn, mrerr.MrReadonly, primaryRepl)
			conn.Close()
			return
		}
		p.ServeReplicate(conn, br, req) // blocks; closes conn
	case protocol.OpElection:
		defer conn.Close()
		c.serveElection(conn, req)
	default:
		writeFinal(conn, mrerr.MrUnknownProc)
		conn.Close()
	}
}

func (c *Cluster) serveElection(conn net.Conn, req *protocol.Request) {
	args := req.StringArgs()
	if len(args) == 0 {
		writeFinal(conn, mrerr.MrArgs)
		return
	}
	switch args[0] {
	case electInfo:
		c.mu.Lock()
		role, epoch := c.role, c.epoch
		seg, idx := c.posLocked()
		held := role == RolePrimary && c.leaseHeldLocked()
		c.mu.Unlock()
		heldField := "0"
		if held {
			heldField = "1"
		}
		writeFinal(conn, mrerr.Success, role, itoa(epoch), itoa(seg), itoa(idx),
			c.cfg.AdvertiseRepl, c.cfg.AdvertiseClient, heldField)
	case electClaim:
		if len(args) != 7 {
			writeFinal(conn, mrerr.MrArgs)
			return
		}
		epoch, e1 := parseInt(args[1])
		seg, e2 := parseInt(args[2])
		idx, e3 := parseInt(args[3])
		if e1 != nil || e2 != nil || e3 != nil {
			writeFinal(conn, mrerr.MrArgs)
			return
		}
		granted, reason, myEpoch := c.evaluateClaim(epoch, seg, idx, args[4], args[5], args[6] == "1")
		if granted {
			writeFinal(conn, mrerr.Success, "granted")
		} else {
			writeFinal(conn, mrerr.MrPerm, reason, itoa(myEpoch))
		}
	default:
		writeFinal(conn, mrerr.MrArgs)
	}
}

// evaluateClaim is one node's vote on a candidate's claim to lead a
// new epoch.
func (c *Cluster) evaluateClaim(epoch, seg, idx int64, candRepl, candClient string, force bool) (bool, string, int64) {
	c.mu.Lock()
	myEpoch := c.epoch
	mySeg, myIdx := c.posLocked()
	var reason string
	switch {
	case epoch <= myEpoch:
		reason = "stale-epoch"
	case !force && c.role == RolePrimary && c.leaseHeldLocked():
		// The candidate jumped the gun: our lease is still provably
		// held, so no correct election can be due yet.
		reason = "lease-held"
	case !force && c.role != RoleFenced && better(mySeg, myIdx, c.cfg.AdvertiseRepl, seg, idx, candRepl):
		// Electing a candidate behind us would lose acknowledged
		// commits; the candidate must defer to us (or someone better).
		reason = "better-candidate"
	case !force && c.claimEpoch >= epoch && better(c.claimSeg, c.claimIdx, c.cfg.AdvertiseRepl, seg, idx, candRepl):
		reason = "competing-claim"
	}
	if reason != "" {
		c.mu.Unlock()
		c.logf("cluster: denied claim epoch %d from %s (%s)", epoch, candRepl, reason)
		return false, reason, myEpoch
	}
	// Granting adopts the epoch — persisted before the reply leaves,
	// so a crash cannot make this node grant the same epoch twice.
	if err := StoreEpoch(c.cfg.Root, epoch); err != nil {
		c.mu.Unlock()
		c.logf("cluster: persisting granted epoch %d: %v", epoch, err)
		return false, "epoch-persist-failed", myEpoch
	}
	c.epoch = epoch
	c.primaryRepl, c.primaryClient = candRepl, candClient
	c.lastLease = time.Now() // grace: give the new primary time to start streaming
	wasPrimary := c.role == RolePrimary
	if wasPrimary {
		c.pendingDepose = epoch
	}
	// Our journal is a verbatim prefix of the winner's only if the
	// claim covers us within our own segment; a winner ahead by a
	// whole segment may have rotated past records we still hold (and a
	// forced claim may be behind us outright), so the next follow must
	// bootstrap instead of tailing into divergence.
	needBoot := !(seg == mySeg && idx >= myIdx)
	if needBoot {
		c.needBoot = true
	}
	rep := c.rep
	c.mu.Unlock()
	c.logf("cluster: granted claim epoch %d to %s", epoch, candRepl)
	if rep != nil {
		if needBoot {
			rep.ForceBootstrap()
			c.mu.Lock()
			c.needBoot = false
			c.mu.Unlock()
		}
		rep.SetFrom(candRepl)
	}
	c.kickNow()
	return true, "", myEpoch
}

func (c *Cluster) kickNow() {
	select {
	case c.kick <- struct{}{}:
	default:
	}
}

// posLocked reports the node's journal position as (segment, next
// record index) — the primary's head, a follower's applied position,
// or the boot/fenced scan.
func (c *Cluster) posLocked() (int64, int64) {
	if c.jw != nil {
		return c.jw.Head()
	}
	if c.rep != nil {
		return c.rep.Position()
	}
	return c.posSeg, c.posIdx
}

// quorumNeed is how many peer grants (or acks) a decision needs: a
// pair decides alone (safety comes from the lease timing), three or
// more need a majority including self.
func (c *Cluster) quorumNeed() int {
	n := len(c.cfg.Peers) + 1
	if n <= 2 {
		return 0
	}
	return n / 2
}

// leaseHeldLocked is the primary's own view of its lease.
func (c *Cluster) leaseHeldLocked() bool {
	if len(c.cfg.Peers) == 0 {
		return true
	}
	if c.primary == nil {
		return false
	}
	// Degraded mode: no epoch-aware replica has subscribed since this
	// promotion. A fresh failover winner (or operator promotion) whose
	// peers are dead serves alone rather than flapping; the moment a
	// replica connects and then goes stale, the normal rule below
	// takes over and the lease can be lost.
	if !c.primary.HadEpochSub() {
		return true
	}
	need := c.quorumNeed()
	if need == 0 {
		need = 1
	}
	if _, fresh := c.primary.LeaseFresh(c.cfg.LeaseTimeout); fresh >= need {
		return true
	}
	// Grace after promotion: followers need a moment to find us before
	// the first acks can arrive.
	return time.Since(c.promotedAt) < c.cfg.LeaseTimeout
}

// ---- role loop ----

func (c *Cluster) run() {
	defer c.wg.Done()
	c.bootDiscover()
	tick := c.cfg.LeaseInterval / 2
	if tick < 20*time.Millisecond {
		tick = 20 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-c.closing:
			return
		case <-t.C:
		case <-c.kick:
		}
		c.step()
	}
}

// bootDiscover polls the peers once before choosing a role: a live
// primary with an epoch at least ours is followed; otherwise the
// normal election path runs from the role loop.
func (c *Cluster) bootDiscover() {
	if len(c.cfg.Peers) == 0 {
		// Standalone-degenerate cluster: a single node is its own
		// primary from boot.
		if err := c.promote(c.epochFloor()+1, "boot", nil); err != nil {
			c.logf("cluster: boot promotion: %v", err)
		}
		return
	}
	infos := c.pollPeers(c.cfg.LeaseInterval)
	for _, pi := range infos {
		if pi.role == RolePrimary && pi.epoch >= c.Epoch() {
			c.adoptPrimary(pi.epoch, pi.replAddr, pi.clientAddr)
			c.becomeFollower("boot", false)
			return
		}
	}
	// No primary found: leave lastLease at zero so the first step runs
	// an election (with the usual randomized backoff and re-poll).
}

func (c *Cluster) step() {
	c.mu.Lock()
	role := c.role
	pending := c.pendingDepose
	lease := c.lastLease
	fencedAt := c.fencedAt
	repNil := c.rep == nil
	target := c.primaryRepl
	everLease := c.everLease
	c.mu.Unlock()

	switch role {
	case RolePrimary:
		if pending > 0 {
			c.fence("deposed")
			return
		}
		c.mu.Lock()
		held := c.leaseHeldLocked()
		c.mu.Unlock()
		if !held {
			c.leaseExpiries.Add(1)
			c.fence("lease-expired")
			return
		}
		c.primaryMaintain()
	case RoleReplica:
		if repNil && target != "" {
			c.becomeFollower("boot", false)
			return
		}
		// The election threshold adds a full interval beyond the lease
		// timeout: the primary's own fence check runs on the step
		// ticker, so this margin guarantees the old primary is fenced
		// strictly before any follower can promote.
		if time.Since(lease) > c.cfg.LeaseTimeout+c.cfg.LeaseInterval {
			cause := "lease-expired"
			if !everLease && lease.IsZero() {
				cause = "boot"
			}
			c.elect(cause, false)
		}
	case RoleFenced:
		// Look for the new history to rejoin; failing that, after a
		// further timeout, stand for election ourselves (maybe nobody
		// else could be elected).
		infos := c.pollPeers(c.cfg.LeaseInterval)
		for _, pi := range infos {
			if pi.role == RolePrimary && pi.epoch >= c.Epoch() {
				c.adoptPrimary(pi.epoch, pi.replAddr, pi.clientAddr)
				c.becomeFollower("rejoin", true)
				return
			}
		}
		if time.Since(fencedAt) > c.cfg.LeaseTimeout {
			c.elect("lease-expired", false)
		}
	}
}

// primaryMaintain runs the primary's periodic duties: checkpoints,
// and watching for a rival primary (a healed boot-time split brain).
func (c *Cluster) primaryMaintain() {
	if iv := c.cfg.CheckpointInterval; iv > 0 {
		last := c.lastCkpt.Load()
		if time.Since(time.Unix(last, 0)) > iv && c.inCkpt.CompareAndSwap(false, true) {
			go func() {
				defer c.inCkpt.Store(false)
				if gen, err := c.Checkpoint(); err != nil {
					c.logf("cluster: checkpoint: %v", err)
				} else {
					c.logf("cluster: checkpoint: snapshot generation %d", gen)
				}
			}()
		}
	}
}

// adoptPrimary records a discovered primary (persisting its epoch if
// it advances ours). A primary discovered by polling — unlike one that
// granted us nothing and proved nothing about our position — may hold
// a history that does not extend our tail (we may have journaled
// records it never acknowledged), so advancing the epoch here marks
// the next follow as a forced bootstrap.
func (c *Cluster) adoptPrimary(epoch int64, replAddr, clientAddr string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if epoch > c.epoch {
		if err := StoreEpoch(c.cfg.Root, epoch); err != nil {
			c.logf("cluster: persisting adopted epoch %d: %v", epoch, err)
			return
		}
		c.epoch = epoch
		c.needBoot = true
	}
	c.primaryRepl, c.primaryClient = replAddr, clientAddr
	c.lastLease = time.Now()
}

func (c *Cluster) epochFloor() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}

// pollPeers polls every peer in parallel, returning whoever answered.
func (c *Cluster) pollPeers(timeout time.Duration) []peerInfo {
	var (
		mu    sync.Mutex
		infos []peerInfo
		wg    sync.WaitGroup
	)
	for _, addr := range c.cfg.Peers {
		wg.Add(1)
		go func(addr string) {
			defer wg.Done()
			pi, err := pollPeer(addr, timeout)
			if err != nil {
				return
			}
			mu.Lock()
			infos = append(infos, pi)
			mu.Unlock()
		}(addr)
	}
	wg.Wait()
	return infos
}

// ---- transitions ----

// becomeFollower attaches (or re-attaches) the tailing replica at the
// currently known primary. force requests a full bootstrap — required
// whenever this node's journal tail may diverge (it was primary).
func (c *Cluster) becomeFollower(cause string, force bool) {
	c.mu.Lock()
	target := c.primaryRepl
	if target == "" || c.rep != nil || c.role == RolePrimary {
		c.mu.Unlock()
		return
	}
	force = force || c.needBoot
	c.mu.Unlock()

	rep, err := OpenRejoin(Config{
		Root:        c.cfg.Root,
		From:        target,
		Clock:       c.clk,
		Logf:        c.logf,
		Tracer:      c.cfg.Tracer,
		RetryDelay:  c.cfg.LeaseInterval / 2,
		DialTimeout: c.cfg.LeaseTimeout,
		Cluster: &ReplicaCluster{
			Epoch:      c.Epoch,
			OnHello:    c.onHello,
			OnLease:    c.onLease,
			OnRedirect: c.onRedirect,
		},
	}, c.d, c.dd, force)
	if err != nil {
		c.logf("cluster: rejoin as follower: %v", err)
		return
	}

	c.mu.Lock()
	c.rep = rep
	c.needBoot = false
	c.setRoleLocked(RoleReplica, cause)
	c.lastLease = time.Now()
	c.mu.Unlock()
	rep.Start()
	c.notifyRole(RoleReplica)
}

// fence demotes the primary: read-only first, then tear the stream
// and the journal down. The node keeps serving reads and enters the
// rejoin loop.
func (c *Cluster) fence(cause string) {
	c.mu.Lock()
	if c.role != RolePrimary {
		c.mu.Unlock()
		return
	}
	p, jw := c.primary, c.jw
	if jw != nil {
		seg, recs := jw.Head()
		c.posSeg, c.posIdx = seg, recs
	}
	c.primary, c.jw = nil, nil
	c.pendingDepose = 0
	c.fencedAt = time.Now()
	c.setRoleLocked(RoleFenced, cause)
	c.mu.Unlock()

	c.logf("cluster: fencing (%s): writes off, stream down", cause)
	// Read-only before the journal detaches: no mutation may slip
	// through while the node still looks like a primary.
	c.notifyRole(RoleFenced)
	if p != nil {
		p.Close()
	}
	if jw != nil {
		jw.Close()
		c.d.SetJournal(nil)
	}
	c.kickNow()
}

// promote makes this node the primary for epoch. rep is the follower
// being promoted (nil at boot or from fenced).
func (c *Cluster) promote(epoch int64, cause string, rep *Replica) error {
	if err := StoreEpoch(c.cfg.Root, epoch); err != nil {
		return fmt.Errorf("persisting epoch %d: %w", epoch, err)
	}
	var (
		jw  *db.JournalWriter
		err error
	)
	if rep != nil {
		// The follower path: stop tailing, fsck, fresh segment.
		jw, err = rep.Promote(c.cfg.Journal)
	} else {
		jw, err = c.promoteInPlace()
	}
	if err != nil {
		// The follower is stopped either way; fall to fenced and let
		// the rejoin loop rebuild a clean one.
		c.mu.Lock()
		c.rep = nil
		c.fencedAt = time.Now()
		c.setRoleLocked(RoleFenced, cause)
		c.mu.Unlock()
		c.notifyRole(RoleFenced)
		return err
	}

	p := NewPrimary(PrimaryConfig{
		Journal:    jw,
		Store:      c.store,
		Checkpoint: func() (int64, error) { return c.Checkpoint() },
		Logf:       c.logf,
		Clock:      c.clk,
		Cluster: &PrimaryCluster{
			Epoch:         c.Epoch,
			ReplAddr:      c.cfg.AdvertiseRepl,
			ClientAddr:    c.cfg.AdvertiseClient,
			LeaseInterval: c.cfg.LeaseInterval,
			OnStaleSelf:   c.onStaleSelf,
		},
	})

	c.mu.Lock()
	c.epoch = epoch
	c.rep = nil
	c.jw = jw
	c.primary = p
	c.promotedAt = time.Now()
	c.primaryRepl, c.primaryClient = c.cfg.AdvertiseRepl, c.cfg.AdvertiseClient
	c.pendingDepose = 0
	c.needBoot = false // our journal IS the epoch's history now
	c.setRoleLocked(RolePrimary, cause)
	c.mu.Unlock()

	c.electionsWon.Add(1)
	c.logf("cluster: promoted to primary, epoch %d (%s)", epoch, cause)
	c.notifyRole(RolePrimary)
	return nil
}

// promoteInPlace opens a primary journal over the live database — the
// boot and fenced-node election paths, where no follower is running.
func (c *Cluster) promoteInPlace() (*db.JournalWriter, error) {
	if issues := c.d.Fsck(); len(issues) > 0 {
		for _, in := range issues {
			c.logf("cluster: promote fsck: %s", in)
		}
		return nil, fmt.Errorf("fsck found %d inconsistencies; refusing promotion", len(issues))
	}
	jw, err := db.OpenJournalWriter(c.dd.JournalDir(), c.cfg.Journal)
	if err != nil {
		return nil, err
	}
	c.d.SetJournal(jw)
	return jw, nil
}

// setRoleLocked records a role change (caller holds mu). The OnRole
// callback is NOT called here — callers invoke notifyRole outside mu.
func (c *Cluster) setRoleLocked(role, cause string) {
	if c.role == role {
		return
	}
	c.role = role
	c.lastCause = cause
	now := time.Now()
	c.flaps = append(c.flaps, now)
	// Keep a bounded window; the flapping probe looks back 5 minutes.
	for len(c.flaps) > 0 && now.Sub(c.flaps[0]) > 5*time.Minute {
		c.flaps = c.flaps[1:]
	}
}

func (c *Cluster) notifyRole(role string) {
	if c.cfg.OnRole != nil {
		c.cfg.OnRole(role, role != RolePrimary)
	}
}

// ---- elections ----

// elect runs one election round. force (operator promotion) skips the
// deference checks and backoff and claims regardless of denials.
func (c *Cluster) elect(cause string, force bool) bool {
	c.electMu.Lock()
	defer c.electMu.Unlock()

	// Re-check under the election lock: another round (or an inbound
	// claim grant) may have already resolved this.
	c.mu.Lock()
	if c.role == RolePrimary {
		c.mu.Unlock()
		return true
	}
	startRole := c.role
	lease := c.lastLease
	everLease := c.everLease
	c.mu.Unlock()
	if !force && !lease.IsZero() && time.Since(lease) < c.cfg.LeaseTimeout+c.cfg.LeaseInterval {
		return false
	}

	c.elections.Add(1)
	if !force {
		// Randomized backoff staggers simultaneous candidates; the
		// better-positioned one claims first and the rest defer.
		backoff := time.Duration(rand.Int63n(int64(c.cfg.LeaseInterval)))
		select {
		case <-time.After(backoff):
		case <-c.closing:
			return false
		}
	}

	infos := c.pollPeers(c.cfg.LeaseInterval)
	c.mu.Lock()
	myEpoch := c.epoch
	mySeg, myIdx := c.posLocked()
	myAddr := c.cfg.AdvertiseRepl
	c.mu.Unlock()

	maxEpoch := myEpoch
	for _, pi := range infos {
		if pi.epoch > maxEpoch {
			maxEpoch = pi.epoch
		}
		if force {
			continue
		}
		if pi.role == RolePrimary && pi.epoch >= myEpoch {
			// A primary exists after all — follow it.
			c.logf("cluster: election aborted: %s is primary at epoch %d", pi.replAddr, pi.epoch)
			c.electionsAbrt.Add(1)
			c.adoptPrimary(pi.epoch, pi.replAddr, pi.clientAddr)
			c.retargetOrFollow()
			return false
		}
		if pi.role == RoleReplica && better(pi.seg, pi.idx, pi.replAddr, mySeg, myIdx, myAddr) {
			// Defer to the better candidate; if it never claims, the
			// next timeout retries (and it will have failed the same
			// deference check only if it outranks us, so one of us
			// always eventually stands).
			c.logf("cluster: election deferred to better candidate %s at (%d, %d)", pi.replAddr, pi.seg, pi.idx)
			c.electionsAbrt.Add(1)
			return false
		}
	}

	if !force && len(infos) == 0 {
		// Nobody answered the poll. A fenced ex-primary stays fenced
		// rather than flapping promote/fence against a dead network,
		// and a node that has never heard any primary this incarnation
		// refuses to boot a solo history (a partitioned cold boot must
		// not create two primaries). Only a follower that personally
		// watched a live primary's lease lapse may self-promote.
		if startRole == RoleFenced {
			c.logf("cluster: election skipped: fenced with no reachable peers")
			c.electionsAbrt.Add(1)
			return false
		}
		if c.quorumNeed() == 0 && !everLease {
			c.logf("cluster: election skipped: no peers reachable and no primary ever heard")
			c.electionsAbrt.Add(1)
			return false
		}
	}

	newEpoch := maxEpoch + 1
	c.mu.Lock()
	c.claimEpoch, c.claimSeg, c.claimIdx = newEpoch, mySeg, myIdx
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		c.claimEpoch, c.claimSeg, c.claimIdx = 0, 0, 0
		c.mu.Unlock()
	}()

	c.logf("cluster: standing for election: epoch %d at (%d, %d), cause %s", newEpoch, mySeg, myIdx, cause)
	type vote struct {
		res claimResult
		err error
	}
	votes := make([]vote, len(c.cfg.Peers))
	var wg sync.WaitGroup
	for i, addr := range c.cfg.Peers {
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			res, err := sendClaim(addr, c.cfg.LeaseTimeout, newEpoch, mySeg, myIdx,
				c.cfg.AdvertiseRepl, c.cfg.AdvertiseClient, force)
			votes[i] = vote{res, err}
		}(i, addr)
	}
	wg.Wait()

	grants, denials := 0, 0
	for _, v := range votes {
		switch {
		case v.err != nil:
			// Unreachable: not a vote either way.
		case v.res.granted:
			grants++
		default:
			denials++
		}
	}
	need := c.quorumNeed()
	won := grants >= need
	if !force && need == 0 && denials > 0 {
		// A pair (or smaller) elects by self-grant only when the peer
		// is silent; an explicit denial means our view was wrong.
		won = false
	}
	if !won {
		c.logf("cluster: election lost: %d grants, %d denials (need %d)", grants, denials, need)
		c.electionsAbrt.Add(1)
		return false
	}

	c.mu.Lock()
	rep := c.rep
	c.rep = nil
	c.mu.Unlock()
	if err := c.promote(newEpoch, cause, rep); err != nil {
		c.logf("cluster: promotion failed: %v", err)
		return false
	}
	return true
}

// retargetOrFollow points the follower machinery at the currently
// known primary (used after an election discovers one).
func (c *Cluster) retargetOrFollow() {
	c.mu.Lock()
	rep, target, role := c.rep, c.primaryRepl, c.role
	needBoot := c.needBoot
	c.needBoot = false
	c.mu.Unlock()
	if target == "" {
		return
	}
	switch {
	case rep != nil:
		if needBoot {
			rep.ForceBootstrap()
		}
		rep.SetFrom(target)
	case role == RoleFenced:
		c.becomeFollower("rejoin", true)
	default:
		c.becomeFollower("rejoin", needBoot)
	}
}

// ForcePromote is the operator's promotion (SIGUSR1, -promote): seize
// the lease now, bumping the epoch past everything reachable. It
// fails only if this node cannot open a primary journal.
func (c *Cluster) ForcePromote(cause string) error {
	c.mu.Lock()
	if c.role == RolePrimary {
		c.mu.Unlock()
		return nil
	}
	rep := c.rep
	c.rep = nil
	c.mu.Unlock()

	c.electMu.Lock()
	defer c.electMu.Unlock()
	c.elections.Add(1)
	infos := c.pollPeers(c.cfg.LeaseInterval)
	maxEpoch := c.epochFloor()
	for _, pi := range infos {
		if pi.epoch > maxEpoch {
			maxEpoch = pi.epoch
		}
	}
	newEpoch := maxEpoch + 1
	// Tell the peers; their grants are advisory (force overrides), but
	// granting retargets them immediately instead of on first contact.
	var wg sync.WaitGroup
	c.mu.Lock()
	mySeg, myIdx := c.posLocked()
	if rep != nil {
		mySeg, myIdx = rep.Position()
	}
	c.mu.Unlock()
	for _, addr := range c.cfg.Peers {
		wg.Add(1)
		go func(addr string) {
			defer wg.Done()
			sendClaim(addr, c.cfg.LeaseTimeout, newEpoch, mySeg, myIdx,
				c.cfg.AdvertiseRepl, c.cfg.AdvertiseClient, true)
		}(addr)
	}
	wg.Wait()
	return c.promote(newEpoch, cause, rep)
}

// ---- follower callbacks ----

func (c *Cluster) onHello(epoch int64, replAddr, clientAddr string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if epoch < c.epoch {
		return fmt.Errorf("primary at epoch %d is stale (ours %d)", epoch, c.epoch)
	}
	if epoch > c.epoch {
		if err := StoreEpoch(c.cfg.Root, epoch); err != nil {
			return fmt.Errorf("persisting epoch %d: %w", epoch, err)
		}
		c.epoch = epoch
	}
	c.primaryRepl, c.primaryClient = replAddr, clientAddr
	c.lastLease = time.Now()
	c.everLease = true
	return nil
}

func (c *Cluster) onLease(epoch int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if epoch < c.epoch {
		return // a stale primary's lease must not delay our election
	}
	c.lastLease = time.Now()
	c.everLease = true
	c.leaseRenewals.Add(1)
}

func (c *Cluster) onRedirect(replAddr string) {
	c.mu.Lock()
	c.primaryRepl = replAddr
	rep := c.rep
	c.mu.Unlock()
	if rep != nil {
		rep.SetFrom(replAddr)
	}
}

func (c *Cluster) onStaleSelf(peerEpoch int64) {
	c.mu.Lock()
	if c.role == RolePrimary && peerEpoch > c.epoch {
		c.pendingDepose = peerEpoch
	}
	c.mu.Unlock()
	c.kickNow()
}

// ---- the server's failover surface ----

// Whois reports the node's failover identity for the _whois handle.
func (c *Cluster) Whois() queries.WhoisInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	seg, idx := c.posLocked()
	w := queries.WhoisInfo{
		Role:        c.role,
		Epoch:       c.epoch,
		Seg:         seg,
		Idx:         idx,
		Primary:     c.primaryClient,
		PrimaryRepl: c.primaryRepl,
		LastCause:   c.lastCause,
	}
	w.LeaseRemain = c.leaseRemainLocked()
	return w
}

func (c *Cluster) leaseRemainLocked() time.Duration {
	switch {
	case c.role == RolePrimary:
		if c.primary != nil && !c.primary.HadEpochSub() {
			// Degraded solo primary: the lease is self-held.
			return c.cfg.LeaseTimeout
		}
		anchor := c.promotedAt
		if c.primary != nil {
			if g := c.primary.NewestGrant(); g.After(anchor) {
				anchor = g
			}
		}
		return c.cfg.LeaseTimeout - time.Since(anchor)
	case c.lastLease.IsZero():
		return 0
	default:
		return c.cfg.LeaseTimeout - time.Since(c.lastLease)
	}
}

// CommitGate is the semi-synchronous replication gate: it blocks
// until the commit at (seg, idx) is acknowledged by the quorum (one
// replica in a pair, a majority including self otherwise). A timeout
// is MR_NOT_REPLICATED: the commit is journaled locally but was never
// acknowledged, so the client must not rely on it surviving failover.
func (c *Cluster) CommitGate(seg, idx int64) error {
	if len(c.cfg.Peers) == 0 {
		return nil
	}
	c.mu.Lock()
	p := c.primary
	c.mu.Unlock()
	if p == nil {
		return mrerr.MrReadonly
	}
	if !p.HadEpochSub() {
		// Degraded mode (see leaseHeldLocked): nobody to replicate to
		// yet, so the commit stands on local fsync alone.
		c.gateWaived.Add(1)
		return nil
	}
	need := c.quorumNeed()
	if need == 0 {
		need = 1
	}
	c.gated.Add(1)
	if err := p.WaitAcked(seg, idx, need, c.cfg.LeaseTimeout); err != nil {
		c.gateFailed.Add(1)
		c.logf("cluster: commit gate: %v", err)
		return mrerr.MrNotReplicated
	}
	return nil
}

// Token mints the v5 position token for a commit.
func (c *Cluster) Token(seg, idx int64) string {
	return protocol.Pos{Epoch: c.Epoch(), Seg: seg, Idx: idx}.String()
}

// WaitCovered blocks (bounded by one lease interval) until the node's
// applied position covers pos — the read-your-writes check for v5
// retrieves carrying a minimum-position token.
func (c *Cluster) WaitCovered(pos protocol.Pos) bool {
	if pos.IsZero() {
		return true
	}
	deadline := time.Now().Add(c.cfg.LeaseInterval)
	for {
		c.mu.Lock()
		seg, idx := c.posLocked()
		c.mu.Unlock()
		if pos.Covers(seg, idx) {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		select {
		case <-c.closing:
			return false
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// PrimaryClient names the current primary's client address, for
// MR_READONLY / MR_STALE redirects ("" when unknown).
func (c *Cluster) PrimaryClient() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.role == RolePrimary {
		return c.cfg.AdvertiseClient
	}
	return c.primaryClient
}

// Checkpoint takes a snapshot now (primary only): rotate, dump,
// prune — the same pipeline as core's durability checkpointer.
func (c *Cluster) Checkpoint() (int64, error) {
	c.ckptMu.Lock()
	defer c.ckptMu.Unlock()
	c.mu.Lock()
	jw := c.jw
	c.mu.Unlock()
	if jw == nil {
		return 0, fmt.Errorf("cluster: not the primary")
	}
	gen, err := c.store.Take(c.d, jw.Rotate)
	if err != nil {
		return 0, err
	}
	c.lastCkpt.Store(time.Now().Unix())
	if oldest := c.store.OldestKeptJournalSeq(); oldest > 0 {
		if n, err := db.PruneSegments(jw.Dir(), oldest); err != nil {
			c.logf("cluster: checkpoint: pruning journal segments: %v", err)
		} else if n > 0 {
			c.logf("cluster: checkpoint: pruned %d journal segments below %d", n, oldest)
		}
	}
	return gen, nil
}

// ---- observability ----

// BindStats publishes the election.*, lease.*, and repl.commit.*
// series into reg.
func (c *Cluster) BindStats(reg *stats.Registry) {
	reg.AddGroup(func(emit func(string, int64)) {
		c.mu.Lock()
		role := c.role
		epoch := c.epoch
		seg, idx := c.posLocked()
		held := role == RolePrimary && c.leaseHeldLocked()
		remain := c.leaseRemainLocked().Milliseconds()
		now := time.Now()
		flaps := 0
		for _, t := range c.flaps {
			if now.Sub(t) <= 5*time.Minute {
				flaps++
			}
		}
		p := c.primary
		c.mu.Unlock()

		roleCode := int64(1)
		switch role {
		case RolePrimary:
			roleCode = 2
		case RoleFenced:
			roleCode = 3
		}
		emit("repl.role", roleCode)
		emit("repl.applied.seg", seg)
		emit("repl.applied.idx", idx)
		emit("election.epoch", epoch)
		emit("election.count", c.elections.Load())
		emit("election.won", c.electionsWon.Load())
		emit("election.aborted", c.electionsAbrt.Load())
		emit("election.flaps", int64(flaps))
		if held {
			emit("lease.held", 1)
		} else {
			emit("lease.held", 0)
		}
		if remain < 0 {
			remain = 0
		}
		emit("lease.remaining.ms", remain)
		emit("lease.renewals", c.leaseRenewals.Load())
		emit("lease.expiries", c.leaseExpiries.Load())
		if p != nil {
			emit("lease.acks", p.acksRecv.Load())
			emit("lease.sent", p.leasesSent.Load())
		}
		emit("repl.commit.gated", c.gated.Load())
		emit("repl.commit.gatefail", c.gateFailed.Load())
		emit("repl.commit.waived", c.gateWaived.Load())
	})
}

// BindHealth registers the failover probes: no-primary (the node has
// not heard from any primary — or been one — within two lease
// timeouts) and election-flapping (more than three role changes in
// five minutes).
func (c *Cluster) BindHealth(h *health.Checker) {
	h.AddFunc("no-primary", func() (bool, string) {
		c.mu.Lock()
		defer c.mu.Unlock()
		if c.role == RolePrimary {
			return true, "primary"
		}
		if c.lastLease.IsZero() {
			return false, "no primary heard from since boot"
		}
		if age := time.Since(c.lastLease); age > 2*c.cfg.LeaseTimeout {
			return false, fmt.Sprintf("no primary heard from (last lease %v ago)", age.Round(time.Millisecond))
		}
		return true, "primary at " + c.primaryRepl
	})
	h.AddFunc("election-flapping", func() (bool, string) {
		c.mu.Lock()
		defer c.mu.Unlock()
		now := time.Now()
		flaps := 0
		for _, t := range c.flaps {
			if now.Sub(t) <= 5*time.Minute {
				flaps++
			}
		}
		if flaps > 3 {
			return false, fmt.Sprintf("%d role changes in the last 5m", flaps)
		}
		return true, fmt.Sprintf("%d role changes in the last 5m", flaps)
	})
}
