package replica

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"moira/internal/clock"
	"moira/internal/db"
	"moira/internal/mrerr"
	"moira/internal/protocol"
	"moira/internal/stats"
)

// PrimaryConfig configures a replication primary.
type PrimaryConfig struct {
	// Journal is the primary's live journal writer: the tailer follows
	// its segment files and parks on its append notifications.
	Journal *db.JournalWriter

	// Store is the primary's checkpoint store, the source of bootstrap
	// snapshots for replicas too far behind the retained segments.
	Store *db.CheckpointStore

	// Checkpoint, when non-nil, is invoked to take a snapshot on demand
	// when a replica needs bootstrapping and no manifest-valid snapshot
	// exists yet (typically core.Durability.Checkpoint).
	Checkpoint func() (int64, error)

	// Logf receives replication log lines; nil discards them.
	Logf func(format string, args ...any)

	// Stats, when non-nil, receives the repl.primary.* series.
	Stats *stats.Registry

	// Clock stamps head-frame heartbeats (replicas measure lag against
	// it, cancelling cross-host clock skew); nil means the system clock.
	Clock clock.Clock

	// Cluster, when non-nil, puts the primary in cluster mode: it
	// greets each epoch-aware replica with a hello frame, interleaves
	// lease heartbeats with the stream, and reads position/lease
	// acknowledgements back up the same connection. nil keeps the
	// legacy one-way stream.
	Cluster *PrimaryCluster
}

// PrimaryCluster wires a Primary into its Cluster: what to announce
// and who to tell when an acknowledgement reveals this primary has
// been deposed.
type PrimaryCluster struct {
	// Epoch reports the node's current election epoch, announced in
	// hello and lease frames and compared against replica handshakes.
	Epoch func() int64

	// ReplAddr and ClientAddr are the advertised replication and
	// client (query) addresses sent in the hello frame; clients
	// chasing the primary are redirected to ClientAddr.
	ReplAddr   string
	ClientAddr string

	// LeaseInterval is how often lease frames are sent per connection.
	LeaseInterval time.Duration

	// OnStaleSelf is called when a replica reports a higher epoch than
	// ours: the cluster has moved on and this primary must fence.
	OnStaleSelf func(peerEpoch int64)
}

// Primary serves the replication stream: it listens on its own port
// (separate from the query port), answers each connecting replica's
// Replicate handshake, bootstraps it from a snapshot if needed, and
// then tails the live journal to it with group-commit-aware flushing —
// records are written through a buffered writer that is flushed only
// when the tailer catches up to the journal head, so a burst of
// appends rides out in few network writes.
type Primary struct {
	cfg  PrimaryConfig
	clk  clock.Clock
	logf func(string, ...any)

	ln      net.Listener
	wg      sync.WaitGroup
	closing chan struct{}

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	tails  map[*subscriberPos]struct{}
	closed bool

	// ackWake is closed and replaced under mu on every inbound ack;
	// WaitAcked parks on it.
	ackWake chan struct{}

	leaseSeq     atomic.Int64 // lease frame sequence numbers, all conns
	leasesSent   atomic.Int64
	acksRecv     atomic.Int64
	everEpochSub atomic.Bool // an epoch-aware replica subscribed at least once

	active    atomic.Int64
	served    atomic.Int64
	snapshots atomic.Int64
	sentRecs  atomic.Int64
	sentBytes atomic.Int64
}

// subscriberPos is one tailing replica's ship position — the next
// (segment, record) the tailer will send it — updated lock-free as the
// stream advances and read by the ship-lag gauges. In cluster mode it
// also carries the replica's acknowledged position (what the commit
// gate waits on) and its lease grant.
type subscriberPos struct {
	seg atomic.Int64
	idx atomic.Int64

	epochAware bool
	ackSeg     atomic.Int64 // next record the replica wants, per its last ack
	ackIdx     atomic.Int64
	grant      atomic.Int64 // UnixNano send instant of the newest acked lease seq

	lmu  sync.Mutex
	sent map[int64]time.Time // outstanding lease seq → send instant
}

// leaseGrant records that the replica acknowledged lease seq: the
// grant anchors at the SEND time of that seq, so a delayed ack never
// extends the lease past what the replica actually heard — the fence
// deadline (send-anchored) always precedes the replica's election
// timer (receive-anchored).
func (s *subscriberPos) leaseGrant(seq int64) {
	if seq <= 0 {
		return
	}
	s.lmu.Lock()
	defer s.lmu.Unlock()
	t, ok := s.sent[seq]
	if !ok {
		return
	}
	if n := t.UnixNano(); n > s.grant.Load() {
		s.grant.Store(n)
	}
	for k := range s.sent {
		if k <= seq {
			delete(s.sent, k)
		}
	}
}

// leaseSent records a lease frame's send instant, pruning entries the
// replica never acknowledged once they are clearly dead.
func (s *subscriberPos) leaseSent(seq int64, at time.Time, horizon time.Duration) {
	s.lmu.Lock()
	defer s.lmu.Unlock()
	if s.sent == nil {
		s.sent = make(map[int64]time.Time)
	}
	for k, t := range s.sent {
		if at.Sub(t) > horizon {
			delete(s.sent, k)
		}
	}
	s.sent[seq] = at
}

// NewPrimary builds a replication primary over an open journal writer
// and checkpoint store.
func NewPrimary(cfg PrimaryConfig) *Primary {
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	clk := cfg.Clock
	if clk == nil {
		clk = clock.System
	}
	p := &Primary{
		cfg:     cfg,
		clk:     clk,
		logf:    logf,
		closing: make(chan struct{}),
		conns:   make(map[net.Conn]struct{}),
		tails:   make(map[*subscriberPos]struct{}),
		ackWake: make(chan struct{}),
	}
	if cfg.Stats != nil {
		p.BindStats(cfg.Stats)
	}
	return p
}

// BindStats publishes the primary's replication series into reg.
func (p *Primary) BindStats(reg *stats.Registry) {
	reg.AddGroup(func(emit func(string, int64)) {
		emit("repl.role", 2)
		emit("repl.primary.conns", p.active.Load())
		emit("repl.primary.served", p.served.Load())
		emit("repl.primary.snapshots", p.snapshots.Load())
		emit("repl.primary.sent.records", p.sentRecs.Load())
		emit("repl.primary.sent.bytes", p.sentBytes.Load())
		lags := p.SubscriberLags()
		emit("repl.primary.subscribers", int64(len(lags)))
		worst := int64(0)
		for _, l := range lags {
			if l > worst {
				worst = l
			}
		}
		emit("repl.primary.shiplag.records", worst)
	})
}

// SubscriberLags reports, for every currently tailing replica, how many
// records the journal head is ahead of what has been shipped to it.
// Exact while the subscriber shares the head segment; a lower bound
// (the head segment's record count) while it is segments behind.
func (p *Primary) SubscriberLags() []int64 {
	headSeg, headRecs := p.cfg.Journal.Head()
	p.mu.Lock()
	subs := make([]*subscriberPos, 0, len(p.tails))
	for s := range p.tails {
		subs = append(subs, s)
	}
	p.mu.Unlock()
	lags := make([]int64, 0, len(subs))
	for _, s := range subs {
		lag := headRecs
		if s.seg.Load() == headSeg {
			lag = headRecs - s.idx.Load()
		}
		if lag < 0 {
			lag = 0
		}
		lags = append(lags, lag)
	}
	return lags
}

// Listen binds the replication port and starts serving replicas.
func (p *Primary) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	p.ln = ln
	p.wg.Add(1)
	go p.acceptLoop()
	return ln.Addr(), nil
}

// Addr returns the bound replication address, or nil before Listen.
func (p *Primary) Addr() net.Addr {
	if p.ln == nil {
		return nil
	}
	return p.ln.Addr()
}

// Close stops accepting, drops every replica connection, and waits for
// the connection goroutines to drain. Replicas reconnect and resume
// from their on-disk position.
func (p *Primary) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.wg.Wait()
		return nil
	}
	p.closed = true
	close(p.closing)
	var err error
	if p.ln != nil {
		err = p.ln.Close()
	}
	for conn := range p.conns {
		conn.Close()
	}
	p.mu.Unlock()
	p.wg.Wait()
	return err
}

func (p *Primary) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			conn.Close()
			return
		}
		p.conns[conn] = struct{}{}
		p.mu.Unlock()
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			p.serveConn(conn)
		}()
	}
}

func (p *Primary) serveConn(conn net.Conn) {
	br := bufio.NewReader(conn)
	req, err := protocol.ReadRequest(br)
	if err != nil {
		conn.Close()
		p.mu.Lock()
		delete(p.conns, conn)
		p.mu.Unlock()
		return
	}
	p.ServeReplicate(conn, br, req)
}

// ServeReplicate serves one replication stream whose Replicate request
// has already been read from br — the entry point for a Cluster that
// owns the listener and dispatches by op. It adopts the connection
// (registers it for shutdown, closes it when the stream ends) and
// blocks until the stream is over.
func (p *Primary) ServeReplicate(conn net.Conn, br *bufio.Reader, req *protocol.Request) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		conn.Close()
		return
	}
	p.conns[conn] = struct{}{}
	p.mu.Unlock()
	defer func() {
		conn.Close()
		p.mu.Lock()
		delete(p.conns, conn)
		p.mu.Unlock()
		p.active.Add(-1)
	}()
	p.active.Add(1)
	p.served.Add(1)

	bw := bufio.NewWriter(conn)
	final := func(code mrerr.Code) {
		protocol.WriteReply(bw, &protocol.Reply{Version: protocol.Version, Code: int32(code)})
		bw.Flush()
	}

	if req.Version != protocol.Version {
		final(mrerr.MrVersionMismatch)
		return
	}
	if req.Op != protocol.OpReplicate {
		final(mrerr.MrUnknownProc)
		return
	}
	// Two-arg handshake: legacy one-way stream. Three args add the
	// replica's election epoch (cluster mode); position (-1, -1) is the
	// explicit "bootstrap me" of a rejoining node whose journal tail
	// may diverge from this history.
	if len(req.Args) != 2 && len(req.Args) != 3 {
		final(mrerr.MrArgs)
		return
	}
	args := req.StringArgs()
	seg, err1 := parseInt(args[0])
	idx, err2 := parseInt(args[1])
	if err1 != nil || err2 != nil || idx < 0 != (seg < 0) {
		final(mrerr.MrArgs)
		return
	}
	epochAware := len(args) == 3
	var replicaEpoch int64
	if epochAware {
		var err error
		if replicaEpoch, err = parseInt(args[2]); err != nil || replicaEpoch < 0 {
			final(mrerr.MrArgs)
			return
		}
	}
	if seg < 0 && !epochAware {
		final(mrerr.MrArgs)
		return
	}

	force := seg < 0
	if cl := p.cfg.Cluster; cl != nil && epochAware {
		myEpoch := cl.Epoch()
		if replicaEpoch > myEpoch {
			// Deposed on contact: the cluster elected a higher epoch
			// while we weren't looking. Fence instead of streaming a
			// dead history.
			p.logf("repl: %s reports epoch %d > ours %d: deposed", conn.RemoteAddr(), replicaEpoch, myEpoch)
			if cl.OnStaleSelf != nil {
				cl.OnStaleSelf(replicaEpoch)
			}
			final(mrerr.MrReadonly)
			return
		}
		if replicaEpoch < myEpoch {
			// The replica's journal tail may contain records a deposed
			// primary streamed that this history never committed; a
			// full bootstrap replaces it rather than appending to it.
			force = true
		}
	}
	if force {
		seg, idx = 0, 0
	}

	p.logf("repl: %s connected at position (%d, %d)", conn.RemoteAddr(), seg, idx)
	if err := p.stream(conn, br, bw, seg, idx, epochAware, force); err != nil {
		p.logf("repl: %s: %v", conn.RemoteAddr(), err)
		final(mrerr.MrInternal)
	}
}

// stream feeds one replica: bootstrap if its position predates the
// retained journal, then tail the segments from its position on.
func (p *Primary) stream(conn net.Conn, br *bufio.Reader, bw *bufio.Writer, seg, idx int64, epochAware, force bool) error {
	// Subscribe before examining any on-disk state so no append
	// notification can slip between the scan and the first park.
	notify := p.cfg.Journal.Subscribe()

	sub := &subscriberPos{epochAware: epochAware}
	sub.seg.Store(seg)
	sub.idx.Store(idx)
	// Registered before bootstrap: acknowledgements (and so the lease)
	// flow while the snapshot ships.
	p.mu.Lock()
	p.tails[sub] = struct{}{}
	p.mu.Unlock()
	if epochAware {
		p.everEpochSub.Store(true)
	}
	defer func() {
		p.mu.Lock()
		delete(p.tails, sub)
		p.mu.Unlock()
	}()

	// A legacy replica sends nothing after its handshake, so a read on
	// the connection blocks until it dies — exactly the dead-peer
	// signal a parked tailer needs. An epoch-aware replica instead
	// sends ack requests up the same connection; reading them serves
	// both purposes.
	connDead := make(chan struct{})
	if epochAware && p.cfg.Cluster != nil {
		go p.readAcks(br, sub, connDead)
	} else {
		go func() {
			var one [1]byte
			conn.Read(one[:])
			close(connDead)
		}()
	}

	send := func(fields ...[]byte) error {
		return protocol.WriteReply(bw, &protocol.Reply{
			Version: protocol.Version,
			Code:    int32(mrerr.MrMoreData),
			Fields:  fields,
		})
	}
	sendStrings := func(fields ...string) error {
		return send(protocol.BytesArgs(fields)...)
	}

	// maybeLease interleaves lease heartbeats with whatever else the
	// stream is doing. It never flushes on its own: the frame rides
	// the next flush, which every caller does promptly.
	var lastLease time.Time
	maybeLease := func() error {
		cl := p.cfg.Cluster
		if cl == nil || !epochAware {
			return nil
		}
		interval := cl.LeaseInterval
		if interval <= 0 {
			interval = time.Second
		}
		now := time.Now()
		if !lastLease.IsZero() && now.Sub(lastLease) < interval {
			return nil
		}
		lastLease = now
		seq := p.leaseSeq.Add(1)
		sub.leaseSent(seq, now, 10*interval)
		p.leasesSent.Add(1)
		return sendStrings(tagLease, itoa(cl.Epoch()), itoa(seq))
	}

	if cl := p.cfg.Cluster; cl != nil && epochAware {
		if err := sendStrings(tagHello, itoa(cl.Epoch()), cl.ReplAddr, cl.ClientAddr); err != nil {
			return err
		}
		if err := maybeLease(); err != nil {
			return err
		}
	}

	seg, idx, err := p.maybeBootstrap(bw, send, sendStrings, maybeLease, seg, idx, force)
	if err != nil {
		return err
	}
	sub.seg.Store(seg)
	sub.idx.Store(idx)

	return p.tail(bw, sendStrings, maybeLease, notify, connDead, sub, seg, idx)
}

// readAcks consumes the replica's acknowledgement requests for the
// life of the connection, feeding the subscriber's acked position and
// lease grant, and closes dead when the peer goes away.
func (p *Primary) readAcks(br *bufio.Reader, sub *subscriberPos, dead chan struct{}) {
	defer close(dead)
	cl := p.cfg.Cluster
	for {
		req, err := protocol.ReadRequest(br)
		if err != nil {
			return
		}
		if req.Op != protocol.OpElection {
			continue
		}
		a := req.StringArgs()
		if len(a) != 5 || a[0] != electAck {
			continue
		}
		epoch, e1 := parseInt(a[1])
		seq, e2 := parseInt(a[2])
		aseg, e3 := parseInt(a[3])
		aidx, e4 := parseInt(a[4])
		if e1 != nil || e2 != nil || e3 != nil || e4 != nil {
			return
		}
		if my := cl.Epoch(); epoch > my {
			p.logf("repl: ack reports epoch %d > ours %d: deposed", epoch, my)
			if cl.OnStaleSelf != nil {
				cl.OnStaleSelf(epoch)
			}
			return
		}
		sub.ackSeg.Store(aseg)
		sub.ackIdx.Store(aidx)
		sub.leaseGrant(seq)
		p.acksRecv.Add(1)
		p.mu.Lock()
		close(p.ackWake)
		p.ackWake = make(chan struct{})
		p.mu.Unlock()
	}
}

// WaitAcked blocks until at least need epoch-aware subscribers have
// acknowledged a position past (seg, idx) — the record is then applied
// and durably mirrored on that many replicas — or the timeout lapses.
// This is the semi-synchronous commit gate: a timeout means the commit
// is journaled locally but must not be acknowledged to the client as
// replicated.
func (p *Primary) WaitAcked(seg, idx int64, need int, timeout time.Duration) error {
	if need <= 0 {
		return nil
	}
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for {
		p.mu.Lock()
		got := 0
		for s := range p.tails {
			if !s.epochAware {
				continue
			}
			as, ai := s.ackSeg.Load(), s.ackIdx.Load()
			if as > seg || (as == seg && ai > idx) {
				got++
			}
		}
		wake := p.ackWake
		p.mu.Unlock()
		if got >= need {
			return nil
		}
		select {
		case <-wake:
		case <-deadline.C:
			return fmt.Errorf("replica: position (%d, %d) unacknowledged after %v (%d/%d)", seg, idx, timeout, got, need)
		case <-p.closing:
			return fmt.Errorf("replica: primary shut down before position (%d, %d) was acknowledged", seg, idx)
		}
	}
}

// LeaseFresh counts connected epoch-aware subscribers whose lease
// grant is newer than timeout ago — the primary's view of how many
// voters still honour its lease.
func (p *Primary) LeaseFresh(timeout time.Duration) (subs, fresh int) {
	cut := time.Now().Add(-timeout).UnixNano()
	p.mu.Lock()
	defer p.mu.Unlock()
	for s := range p.tails {
		if !s.epochAware {
			continue
		}
		subs++
		if s.grant.Load() > cut {
			fresh++
		}
	}
	return subs, fresh
}

// NewestGrant reports the most recent lease grant instant across all
// epoch-aware subscribers (zero when none have acked a lease).
func (p *Primary) NewestGrant() time.Time {
	p.mu.Lock()
	defer p.mu.Unlock()
	var newest int64
	for s := range p.tails {
		if s.epochAware {
			if g := s.grant.Load(); g > newest {
				newest = g
			}
		}
	}
	if newest == 0 {
		return time.Time{}
	}
	return time.Unix(0, newest)
}

// HadEpochSub reports whether any epoch-aware replica has subscribed
// since this primary started. Until one does, the primary is serving
// alone — a fresh failover winner or an operator promotion — and the
// cluster runs degraded: the lease is self-held and the commit gate is
// waived, because there is nobody to replicate to yet.
func (p *Primary) HadEpochSub() bool { return p.everEpochSub.Load() }

// maybeBootstrap decides bootstrap-vs-tail and, when the replica's
// position predates what the journal still holds, ships the newest
// manifest-valid snapshot. It returns the position tailing starts from.
func (p *Primary) maybeBootstrap(bw *bufio.Writer, send func(...[]byte) error, sendStrings func(...string) error, maybeLease func() error, seg, idx int64, force bool) (int64, int64, error) {
	segs, err := db.ListSegments(p.cfg.Journal.Dir())
	if err != nil {
		return 0, 0, err
	}
	oldest := int64(0)
	if len(segs) > 0 {
		oldest = segs[0].Seq
	}
	cur := p.cfg.Journal.Seq()
	if seg > cur {
		return 0, 0, fmt.Errorf("replica position (%d, %d) is ahead of journal head %d: diverged history", seg, idx, cur)
	}

	need := force
	switch {
	case need:
		// Epoch skew or an explicit bootstrap request: the replica's
		// history cannot be trusted to be a prefix of ours.
	case seg == 0:
		// Empty replica: bootstrap whenever a snapshot exists (the
		// journal alone may not reach back to the beginning of time);
		// otherwise the retained segments are the full history.
		gens, err := p.cfg.Store.Generations()
		if err != nil {
			return 0, 0, err
		}
		need = len(gens) > 0
		if !need {
			seg, idx = oldest, 0
			if seg == 0 {
				seg = cur
			}
		}
	case oldest == 0 || seg < oldest:
		// The records the replica needs were pruned by checkpointing.
		need = true
	}
	if !need {
		return seg, idx, nil
	}

	gen, m, err := p.newestValidSnapshot()
	if err != nil {
		return 0, 0, err
	}
	if gen == 0 {
		// No usable snapshot on disk: take one now if we can.
		if p.cfg.Checkpoint == nil {
			return 0, 0, fmt.Errorf("replica needs bootstrap but no snapshot exists and no checkpointer is wired")
		}
		if _, err := p.cfg.Checkpoint(); err != nil {
			return 0, 0, fmt.Errorf("on-demand bootstrap checkpoint: %w", err)
		}
		if gen, m, err = p.newestValidSnapshot(); err != nil {
			return 0, 0, err
		}
		if gen == 0 {
			return 0, 0, fmt.Errorf("on-demand checkpoint produced no verifiable snapshot")
		}
	}

	p.logf("repl: bootstrapping from snapshot generation %d (journal seq %d)", gen, m.JournalSeq)
	if err := p.sendSnapshot(send, sendStrings, maybeLease, gen, m); err != nil {
		return 0, 0, err
	}
	if err := bw.Flush(); err != nil {
		return 0, 0, err
	}
	p.snapshots.Add(1)
	return m.JournalSeq, 0, nil
}

// newestValidSnapshot returns the newest generation whose manifest
// verifies, or 0 when none does.
func (p *Primary) newestValidSnapshot() (int64, *db.Manifest, error) {
	gens, err := p.cfg.Store.Generations()
	if err != nil {
		return 0, nil, err
	}
	for i := len(gens) - 1; i >= 0; i-- {
		dir := p.cfg.Store.Path(gens[i])
		m, verr := db.ReadManifest(dir)
		if verr == nil {
			verr = m.Verify(dir)
		}
		if verr != nil {
			p.logf("repl: skipping snapshot generation %d: %v", gens[i], verr)
			continue
		}
		return gens[i], m, nil
	}
	return 0, nil, nil
}

// sendSnapshot ships every file of one snapshot generation, raw,
// manifest last. The replica verifies the manifest after reassembly,
// so a file damaged in flight is caught before it is adopted.
func (p *Primary) sendSnapshot(send func(...[]byte) error, sendStrings func(...string) error, maybeLease func() error, gen int64, m *db.Manifest) error {
	dir := p.cfg.Store.Path(gen)
	ents, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() && e.Name() != db.ManifestFile {
			names = append(names, e.Name())
		}
	}
	names = append(names, db.ManifestFile)

	if err := sendStrings(tagSnapBegin, itoa(gen), itoa(m.JournalSeq)); err != nil {
		return err
	}
	buf := make([]byte, snapChunkSize)
	for _, name := range names {
		if err := sendStrings(tagFile, name); err != nil {
			return err
		}
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		for {
			// Lease frames ride between chunks so a long bootstrap does
			// not silently expire the primary's lease; the receiving
			// replica acknowledges them mid-snapshot.
			if err := maybeLease(); err != nil {
				f.Close()
				return err
			}
			n, rerr := f.Read(buf)
			if n > 0 {
				if err := send([]byte(tagChunk), buf[:n]); err != nil {
					f.Close()
					return err
				}
				p.sentBytes.Add(int64(n))
			}
			if rerr == io.EOF {
				break
			}
			if rerr != nil {
				f.Close()
				return rerr
			}
		}
		f.Close()
		if err := sendStrings(tagFileEnd, name); err != nil {
			return err
		}
	}
	return sendStrings(tagSnapEnd)
}

// headHeartbeat is how often a caught-up tailer re-sends its head
// frame while parked: the heartbeat is what keeps an idle replica's
// freshness (and so its lag-seconds gauge) current.
const headHeartbeat = time.Second

// tail streams journal records from (seg, idx) on, advancing segment
// by segment and parking on the journal's append notification when
// caught up. A complete line that fails its CRC is mid-file corruption
// and kills the stream; an incomplete tail of a *rotated* segment is
// the torn-line crash signature and is skipped, exactly as recovery
// does.
func (p *Primary) tail(bw *bufio.Writer, sendStrings func(...string) error, maybeLease func() error, notify <-chan struct{}, connDead <-chan struct{}, sub *subscriberPos, seg, idx int64) error {
	jdir := p.cfg.Journal.Dir()
	wake := headHeartbeat
	if cl := p.cfg.Cluster; cl != nil && cl.LeaseInterval > 0 && cl.LeaseInterval < wake {
		// Park no longer than the lease interval, or a quiet journal
		// would starve the heartbeat that keeps the lease alive.
		wake = cl.LeaseInterval
	}
	var (
		f        *os.File
		rem      []byte // bytes read but not yet forming a complete line
		lineIdx  int64  // index of the next complete line in this segment
		consumed int64  // byte offset of the end of the last complete line
		sendFrom = idx  // skip lines the replica already has (first segment only)
		drained  bool   // one extra read after observing rotation
	)
	defer func() {
		if f != nil {
			f.Close()
		}
	}()

	park := func() error {
		if err := bw.Flush(); err != nil {
			return err
		}
		select {
		case <-notify:
			return nil
		case <-time.After(wake):
			// Wake to re-send the head frame: an idle replica's lag
			// gauge stays fresh only while heartbeats keep arriving.
			return nil
		case <-p.closing:
			return fmt.Errorf("primary shutting down")
		case <-connDead:
			return fmt.Errorf("replica hung up")
		}
	}

	buf := make([]byte, 64<<10)
	for {
		select {
		case <-p.closing:
			return fmt.Errorf("primary shutting down")
		case <-connDead:
			return fmt.Errorf("replica hung up")
		default:
		}
		if err := maybeLease(); err != nil {
			return err
		}

		if f == nil {
			var err error
			f, err = os.Open(filepath.Join(jdir, db.SegmentName(seg)))
			if os.IsNotExist(err) {
				if seg < p.cfg.Journal.Seq() {
					// Pruned under us: the replica must re-handshake and
					// get bootstrapped.
					return fmt.Errorf("segment %d no longer available", seg)
				}
				// Not created yet; wait for the rotation.
				if err := park(); err != nil {
					return err
				}
				continue
			}
			if err != nil {
				return err
			}
			rem, lineIdx, consumed, drained = rem[:0], 0, 0, false
		}

		n, rerr := f.Read(buf)
		progressed := false
		if n > 0 {
			drained = false
			rem = append(rem, buf[:n]...)
			for {
				j := bytes.IndexByte(rem, '\n')
				if j < 0 {
					break
				}
				line := string(rem[:j])
				rem = rem[j+1:]
				consumed += int64(j) + 1
				if line == "" {
					continue
				}
				if _, st := db.SplitJournalCRC(line); st != db.CRCValid {
					return fmt.Errorf("segment %d line %d fails CRC: journal corrupt", seg, lineIdx)
				}
				if lineIdx >= sendFrom {
					if err := sendStrings(tagRec, itoa(seg), itoa(lineIdx), line); err != nil {
						return err
					}
					p.sentRecs.Add(1)
					p.sentBytes.Add(int64(len(line)) + 1)
					progressed = true
				}
				lineIdx++
				if lineIdx >= sendFrom {
					// Below sendFrom the replica already holds the line,
					// so its ship position never moves backwards.
					sub.idx.Store(lineIdx)
				}
			}
		}
		if rerr != nil && rerr != io.EOF {
			return rerr
		}
		if progressed || n > 0 {
			continue
		}

		// EOF with nothing new.
		cur := p.cfg.Journal.Seq()
		if seg < cur {
			// Rotated away. One more read guards the race where records
			// landed between our EOF and the rotation; after a drained
			// re-read the file can no longer grow. Anything left in rem
			// is the segment's torn tail — skipped, as in recovery.
			if !drained {
				drained = true
				continue
			}
			if len(rem) > 0 {
				p.logf("repl: skipping torn tail of segment %d (%d bytes)", seg, len(rem))
			}
			f.Close()
			f = nil
			seg++
			sendFrom = 0
			sub.seg.Store(seg)
			sub.idx.Store(0)
			continue
		}

		// Caught up on the live segment: report head, flush, park. The
		// trailing field is the primary's clock, so the replica measures
		// its freshness against the same clock that stamped the records.
		if err := sendStrings(tagHead, itoa(seg), itoa(lineIdx), itoa(consumed),
			itoa(p.clk.Now().Unix())); err != nil {
			return err
		}
		if err := park(); err != nil {
			return err
		}
	}
}
