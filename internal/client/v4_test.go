package client

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"moira/internal/clock"
	"moira/internal/mrerr"
	"moira/internal/protocol"
)

// TestSetCallTimeoutZeroDisarmsDeadline: a timed call arms a deadline
// on the connection; SetCallTimeout(0) must disarm it, or the next
// untimed call dies with a spurious MR_CONN_TIMEOUT when the stale
// deadline expires mid-read. Regression test for exactly that bug: the
// server answers the second request only after the first call's
// deadline has long passed.
func TestSetCallTimeoutZeroDisarmsDeadline(t *testing.T) {
	var calls atomic.Int32
	addr := newFakeServer(t, func(req *protocol.Request, reply func(*protocol.Reply) error) bool {
		if calls.Add(1) > 1 {
			time.Sleep(200 * time.Millisecond) // well past the stale deadline
		}
		reply(&protocol.Reply{Version: req.Version, Tag: req.Tag, Code: 0})
		return true
	})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Disconnect()
	c.SetCallTimeout(80 * time.Millisecond)
	if err := c.Noop(); err != nil {
		t.Fatalf("timed noop: %v", err)
	}
	c.SetCallTimeout(0)
	if err := c.Noop(); err != nil {
		t.Fatalf("untimed noop after SetCallTimeout(0): %v (stale deadline not disarmed)", err)
	}
}

// TestReconnectReprobesVersion: a client downgraded to v1 by a legacy
// server must not pin that version across a transparent reconnect — the
// downgrade belonged to the dead peer. After the redial the first
// request goes out at protocol.Version again, so a replacement server
// that speaks v4 is not stuck being talked to in the v1 dialect.
func TestReconnectReprobesVersion(t *testing.T) {
	var (
		mu       sync.Mutex
		versions []uint16
	)
	var phase atomic.Int32 // 0: legacy v1 server, 1: die once, 2: modern server
	addr := newFakeServer(t, func(req *protocol.Request, reply func(*protocol.Reply) error) bool {
		mu.Lock()
		versions = append(versions, req.Version)
		mu.Unlock()
		switch {
		case phase.CompareAndSwap(1, 2):
			return false // hang up: the legacy box just went away
		case phase.Load() == 0:
			if req.Version != 1 {
				reply(&protocol.Reply{Version: 1, Code: int32(mrerr.MrVersionMismatch)})
				return true
			}
			reply(&protocol.Reply{Version: 1, Code: 0})
			return true
		default:
			reply(&protocol.Reply{Version: req.Version, Tag: req.Tag, Code: 0})
			return true
		}
	})
	fake := clock.NewFake(time.Unix(600000000, 0))
	c, err := DialTimeout(addr, time.Second, fake)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Disconnect()
	if err := c.Noop(); err != nil { // negotiates down to v1
		t.Fatalf("noop against legacy server: %v", err)
	}
	phase.Store(1)
	if err := c.Noop(); err != nil { // dies, reconnects, resends
		t.Fatalf("noop across reconnect: %v", err)
	}
	if n := c.Reconnects(); n != 1 {
		t.Fatalf("reconnects = %d, want 1", n)
	}
	mu.Lock()
	defer mu.Unlock()
	// Probe, downgraded resend, the request the dying conn swallowed,
	// then the re-probe on the fresh connection — at full version again.
	want := []uint16{protocol.Version, 1, 1, protocol.Version}
	if len(versions) != len(want) {
		t.Fatalf("server saw versions %v, want %v", versions, want)
	}
	for i := range want {
		if versions[i] != want[i] {
			t.Fatalf("server saw versions %v, want %v", versions, want)
		}
	}
}

// batchEchoHandler serves OpNoop and OpBatch at the peer's version,
// answering each batch item with MR_NOT_UNIQUE for names ending in
// "dup" and success otherwise.
func batchEchoHandler(batches *atomic.Int32) func(req *protocol.Request, reply func(*protocol.Reply) error) bool {
	return func(req *protocol.Request, reply func(*protocol.Reply) error) bool {
		switch req.Op {
		case protocol.OpBatch:
			batches.Add(1)
			items, err := protocol.DecodeBatch(req.Args)
			if err != nil {
				reply(&protocol.Reply{Version: req.Version, Tag: req.Tag, Code: int32(mrerr.MrArgs)})
				return true
			}
			codes := make([]int32, len(items))
			for i, it := range items {
				if len(it.Name) >= 3 && it.Name[len(it.Name)-3:] == "dup" {
					codes[i] = int32(mrerr.MrNotUnique)
				}
			}
			reply(&protocol.Reply{Version: req.Version, Tag: req.Tag,
				Code: int32(mrerr.MrMoreData), Fields: protocol.EncodeBatchCodes(codes)})
			reply(&protocol.Reply{Version: req.Version, Tag: req.Tag, Code: 0})
		default:
			reply(&protocol.Reply{Version: req.Version, Tag: req.Tag, Code: 0})
		}
		return true
	}
}

func TestClientBatchOverWire(t *testing.T) {
	var batches atomic.Int32
	addr := newFakeServer(t, batchEchoHandler(&batches))
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Disconnect()
	codes, err := c.Batch([]BatchItem{
		{Name: "add_machine", Args: []string{"A.MIT.EDU", "VAX"}},
		{Name: "add_dup", Args: []string{"A.MIT.EDU", "VAX"}},
		{Name: "add_machine", Args: []string{"B.MIT.EDU", "VAX"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []mrerr.Code{mrerr.Success, mrerr.MrNotUnique, mrerr.Success}
	if len(codes) != len(want) {
		t.Fatalf("codes = %v, want %v", codes, want)
	}
	for i := range want {
		if codes[i] != want[i] {
			t.Fatalf("codes = %v, want %v", codes, want)
		}
	}
	if n := batches.Load(); n != 1 {
		t.Errorf("server saw %d batch frames, want 1", n)
	}
}

// TestClientBatchFallsBackSequential: against a v1 server the batch
// degrades to one query round trip per item with the same per-item code
// contract.
func TestClientBatchFallsBackSequential(t *testing.T) {
	var queryNames []string
	addr := newFakeServer(t, func(req *protocol.Request, reply func(*protocol.Reply) error) bool {
		if req.Version != 1 {
			reply(&protocol.Reply{Version: 1, Code: int32(mrerr.MrVersionMismatch)})
			return true
		}
		if req.Op == protocol.OpBatch {
			// A v1 server has never heard of the batch op.
			reply(&protocol.Reply{Version: 1, Code: int32(mrerr.MrUnknownProc)})
			return true
		}
		if req.Op == protocol.OpQuery && len(req.Args) > 0 {
			name := string(req.Args[0])
			queryNames = append(queryNames, name)
			if name == "add_dup" {
				reply(&protocol.Reply{Version: 1, Code: int32(mrerr.MrNotUnique)})
				return true
			}
		}
		reply(&protocol.Reply{Version: 1, Code: 0})
		return true
	})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Disconnect()
	codes, err := c.Batch([]BatchItem{
		{Name: "add_machine", Args: []string{"A.MIT.EDU", "VAX"}},
		{Name: "add_dup"},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []mrerr.Code{mrerr.Success, mrerr.MrNotUnique}
	for i := range want {
		if codes[i] != want[i] {
			t.Fatalf("codes = %v, want %v", codes, want)
		}
	}
	if len(queryNames) != 2 {
		t.Errorf("server saw queries %v, want one per item", queryNames)
	}
}

// v4EchoServer answers every query with one tuple echoing the query's
// first argument, so pipeline tests can verify demux routing.
func v4EchoServer(t *testing.T) string {
	return newFakeServer(t, func(req *protocol.Request, reply func(*protocol.Reply) error) bool {
		if req.Op == protocol.OpQuery && len(req.Args) > 1 {
			reply(&protocol.Reply{Version: req.Version, Tag: req.Tag,
				Code: int32(mrerr.MrMoreData), Fields: [][]byte{req.Args[1]}})
		}
		reply(&protocol.Reply{Version: req.Version, Tag: req.Tag, Code: 0})
		return true
	})
}

func TestPipelineConcurrentCalls(t *testing.T) {
	p, err := DialPipeline(v4EchoServer(t), time.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	var wg sync.WaitGroup
	errs := make([]error, 32)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			arg := fmt.Sprintf("caller-%d", i)
			var got string
			err := p.Query("echo", []string{arg}, func(tuple []string) error {
				got = tuple[0]
				return nil
			})
			if err != nil {
				errs[i] = err
				return
			}
			if got != arg {
				errs[i] = fmt.Errorf("demux gave %q to caller of %q", got, arg)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("call %d: %v", i, err)
		}
	}
}

// TestPipelineRejectsLegacyServer: the handshake probe must fail fast
// against a pre-v4 peer so callers can fall back to the serial client.
func TestPipelineRejectsLegacyServer(t *testing.T) {
	addr := newFakeServer(t, func(req *protocol.Request, reply func(*protocol.Reply) error) bool {
		reply(&protocol.Reply{Version: 1, Code: int32(mrerr.MrVersionMismatch)})
		return true
	})
	if _, err := DialPipeline(addr, time.Second, nil); err != mrerr.MrVersionMismatch {
		t.Fatalf("DialPipeline against v1 server err = %v, want MR_VERSION_MISMATCH", err)
	}
}

func TestPipelineBatch(t *testing.T) {
	var batches atomic.Int32
	addr := newFakeServer(t, batchEchoHandler(&batches))
	p, err := DialPipeline(addr, time.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	codes, err := p.Batch([]BatchItem{{Name: "add_machine"}, {Name: "add_dup"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(codes) != 2 || codes[0] != mrerr.Success || codes[1] != mrerr.MrNotUnique {
		t.Fatalf("codes = %v", codes)
	}
}

// TestPipelineServerDies: a torn connection fails everything in flight
// and leaves the pipeline terminally dead.
func TestPipelineServerDies(t *testing.T) {
	var calls atomic.Int32
	addr := newFakeServer(t, func(req *protocol.Request, reply func(*protocol.Reply) error) bool {
		if calls.Add(1) > 1 {
			return false // hang up on everything after the probe
		}
		reply(&protocol.Reply{Version: req.Version, Tag: req.Tag, Code: 0})
		return true
	})
	p, err := DialPipeline(addr, time.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := p.Noop(); err == nil {
		t.Fatal("noop on torn pipeline succeeded")
	}
	if p.Err() == nil {
		t.Fatal("pipeline not marked dead after torn connection")
	}
	if err := p.Noop(); err == nil {
		t.Fatal("noop on dead pipeline succeeded")
	}
}

// TestClientPoolRedialsDeadPipe: a pool slot whose pipeline died is
// redialed on next use instead of poisoning the rotation forever.
func TestClientPoolRedialsDeadPipe(t *testing.T) {
	pool, err := NewClientPool(v4EchoServer(t), 2, time.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	// Tear one pipeline's connection and wait for its demux to notice.
	dead := pool.pipes[0]
	dead.conn.Close()
	for i := 0; dead.Err() == nil && i < 100; i++ {
		time.Sleep(5 * time.Millisecond)
	}
	if dead.Err() == nil {
		t.Fatal("closed pipeline never went dead")
	}
	// Every rotation slot must still serve, via redial where needed.
	for i := 0; i < 4; i++ {
		if err := pool.Noop(); err != nil {
			t.Fatalf("pool noop %d after dead pipe: %v", i, err)
		}
	}
	if pool.pipes[0] == dead {
		t.Error("dead pipeline was never replaced in its slot")
	}
}
