package client

import (
	"sync/atomic"
	"testing"
	"time"

	"moira/internal/clock"
	"moira/internal/mrerr"
	"moira/internal/protocol"
)

// TestClientTransparentReconnect: a server that hangs up after every
// reply tears the connection under an idle client; the next idempotent
// call redials transparently instead of surfacing MR_ABORTED.
func TestClientTransparentReconnect(t *testing.T) {
	addr := newFakeServer(t, func(req *protocol.Request, reply func(*protocol.Reply) error) bool {
		reply(&protocol.Reply{Version: req.Version, Code: int32(mrerr.Success)})
		return false // close after each reply
	})
	fake := clock.NewFake(time.Unix(600000000, 0))
	c, err := DialTimeout(addr, time.Second, fake)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Disconnect()

	if err := c.Noop(); err != nil {
		t.Fatal(err)
	}
	// The server has closed the connection; this call trips MR_ABORTED
	// internally and retries over a fresh dial.
	if err := c.Noop(); err != nil {
		t.Errorf("noop over torn connection = %v, want transparent retry", err)
	}
	if n := c.Reconnects(); n != 1 {
		t.Errorf("reconnects = %d, want 1", n)
	}
	// The backoff waited on the client's clock, not the wall clock.
	if fake.Slept() < ReconnectDelay {
		t.Errorf("backoff slept %v of virtual time, want >= %v", fake.Slept(), ReconnectDelay)
	}
}

// TestClientNoReconnectForUpdates: a mutating query must never be
// resent — the server may have applied it before the connection died.
func TestClientNoReconnectForUpdates(t *testing.T) {
	var calls atomic.Int32
	addr := newFakeServer(t, func(req *protocol.Request, reply func(*protocol.Reply) error) bool {
		if req.Op == protocol.OpQuery {
			calls.Add(1)
			return false // die without replying
		}
		reply(&protocol.Reply{Version: req.Version, Code: int32(mrerr.Success)})
		return true
	})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Disconnect()

	err = c.Query("add_machine", []string{"NEWHOST.MIT.EDU", "VAX"}, nil)
	if err != mrerr.MrAborted {
		t.Errorf("mutating query on dying server = %v, want MR_ABORTED", err)
	}
	if n := c.Reconnects(); n != 0 {
		t.Errorf("reconnects = %d, want 0 for a mutating query", n)
	}
	if n := calls.Load(); n != 1 {
		t.Errorf("server saw %d query attempts, want exactly 1", n)
	}
}

// TestClientNoReconnectWhenAuthed: redialing would silently drop the
// session's principal, so an authenticated client surfaces the abort.
func TestClientNoReconnectWhenAuthed(t *testing.T) {
	addr := newFakeServer(t, func(req *protocol.Request, reply func(*protocol.Reply) error) bool {
		reply(&protocol.Reply{Version: req.Version, Code: int32(mrerr.Success)})
		return false
	})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Disconnect()
	if err := c.Noop(); err != nil {
		t.Fatal(err)
	}
	c.mu.Lock()
	c.authed = true // as if Auth had succeeded on this connection
	c.mu.Unlock()

	if err := c.Noop(); err != mrerr.MrAborted {
		t.Errorf("noop on torn authed connection = %v, want MR_ABORTED", err)
	}
	if n := c.Reconnects(); n != 0 {
		t.Errorf("reconnects = %d, want 0 when authenticated", n)
	}
}

// TestClientCallTimeout: with a per-call timeout set, a stalled server
// surfaces MR_CONN_TIMEOUT quickly — and the call is NOT retried, since
// the server may still be processing it.
func TestClientCallTimeout(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	addr := newFakeServer(t, func(req *protocol.Request, reply func(*protocol.Reply) error) bool {
		<-release // stall: never reply while the test is measuring
		return false
	})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Disconnect()
	c.SetCallTimeout(150 * time.Millisecond)

	start := time.Now()
	err = c.Noop()
	elapsed := time.Since(start)
	if err != mrerr.MrConnTimeout {
		t.Errorf("stalled call err = %v, want MR_CONN_TIMEOUT", err)
	}
	if elapsed > 2*time.Second {
		t.Errorf("stalled call took %v, want ~150ms", elapsed)
	}
	if n := c.Reconnects(); n != 0 {
		t.Errorf("reconnects = %d, want 0 on timeout", n)
	}
}
