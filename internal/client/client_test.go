package client

import (
	"bufio"
	"net"
	"sync"
	"testing"
	"time"

	"moira/internal/mrerr"
	"moira/internal/protocol"
	"moira/internal/queries"
)

// fakeServer speaks raw protocol frames so client behaviour against
// malformed or skewed servers can be tested without the real server.
type fakeServer struct {
	ln      net.Listener
	wg      sync.WaitGroup
	handler func(req *protocol.Request, reply func(*protocol.Reply) error) bool
}

func newFakeServer(t *testing.T, handler func(req *protocol.Request, reply func(*protocol.Reply) error) bool) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fs := &fakeServer{ln: ln, handler: handler}
	fs.wg.Add(1)
	go func() {
		defer fs.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			fs.wg.Add(1)
			go func() {
				defer fs.wg.Done()
				defer conn.Close()
				br := bufio.NewReader(conn)
				bw := bufio.NewWriter(conn)
				for {
					req, err := protocol.ReadRequest(br)
					if err != nil {
						return
					}
					cont := fs.handler(req, func(rep *protocol.Reply) error {
						if err := protocol.WriteReply(bw, rep); err != nil {
							return err
						}
						return bw.Flush()
					})
					if !cont {
						return
					}
				}
			}()
		}
	}()
	t.Cleanup(func() { ln.Close(); fs.wg.Wait() })
	return ln.Addr().String()
}

func TestClientVersionSkew(t *testing.T) {
	addr := newFakeServer(t, func(req *protocol.Request, reply func(*protocol.Reply) error) bool {
		// A server from the future replies with a different version.
		reply(&protocol.Reply{Version: protocol.Version + 1, Code: 0})
		return true
	})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Disconnect()
	if err := c.Noop(); err != mrerr.MrVersionMismatch {
		t.Errorf("skewed noop err = %v", err)
	}
	// The connection was aborted; further calls report not-connected.
	if err := c.Noop(); err != mrerr.MrNotConnected {
		t.Errorf("post-skew noop err = %v", err)
	}
}

func TestClientServerDiesMidStream(t *testing.T) {
	addr := newFakeServer(t, func(req *protocol.Request, reply func(*protocol.Reply) error) bool {
		// One tuple, then hang up without the final code.
		reply(&protocol.Reply{Version: protocol.Version, Code: int32(mrerr.MrMoreData),
			Fields: [][]byte{[]byte("partial")}})
		return false
	})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Disconnect()
	got := 0
	err = c.Query("get_all_logins", nil, func([]string) error { got++; return nil })
	if err != mrerr.MrAborted {
		t.Errorf("mid-stream death err = %v", err)
	}
	if got != 1 {
		t.Errorf("tuples before death = %d", got)
	}
}

func TestQueryAllCopiesTuples(t *testing.T) {
	served := [][]byte{[]byte("one"), []byte("two")}
	addr := newFakeServer(t, func(req *protocol.Request, reply func(*protocol.Reply) error) bool {
		for _, v := range served {
			reply(&protocol.Reply{Version: protocol.Version, Code: int32(mrerr.MrMoreData),
				Fields: [][]byte{v}})
		}
		reply(&protocol.Reply{Version: protocol.Version, Code: 0})
		return true
	})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Disconnect()
	out, err := c.QueryAll("whatever")
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0][0] != "one" || out[1][0] != "two" {
		t.Errorf("out = %v", out)
	}
}

func TestDialErrors(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err != mrerr.MrConnRefused {
		t.Errorf("refused err = %v", err)
	}
}

func TestClientConcurrentCallsSerialized(t *testing.T) {
	addr := newFakeServer(t, func(req *protocol.Request, reply func(*protocol.Reply) error) bool {
		time.Sleep(time.Millisecond)
		reply(&protocol.Reply{Version: protocol.Version, Code: 0})
		return true
	})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Disconnect()
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = c.Noop()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("call %d: %v", i, err)
		}
	}
}

func TestDirectMatchesRPCSemantics(t *testing.T) {
	d := queries.NewBootstrappedDB(nil)
	dc := NewDirect(&queries.Context{DB: d, Privileged: true, App: "test"})

	// Unknown query maps to the same code as over the wire.
	if err := dc.Query("bogus", nil, nil); err != mrerr.MrNoHandle {
		t.Errorf("unknown query err = %v", err)
	}
	// MR_NO_MATCH propagates.
	if err := dc.Query("get_machine", []string{"GHOST"}, nil); err != mrerr.MrNoMatch {
		t.Errorf("no match err = %v", err)
	}
	// QueryAll gathers tuples.
	out, err := dc.QueryAll("get_value", "def_quota")
	if err != nil || len(out) != 1 || out[0][0] != "300" {
		t.Errorf("QueryAll = %v, %v", out, err)
	}
	// nil callback is fine for writes.
	if err := dc.Query("add_machine", []string{"x.mit.edu", "VAX"}, nil); err != nil {
		t.Errorf("nil callback write: %v", err)
	}
	if err := dc.Disconnect(); err != nil {
		t.Errorf("direct disconnect: %v", err)
	}
}

// TestClientDowngradesToLegacyServer drives the version negotiation: a
// server that only speaks protocol version 1 answers the client's
// version-2 probe with MR_VERSION_MISMATCH, and the client falls back
// to version 1 and resends on the same connection.
func TestClientDowngradesToLegacyServer(t *testing.T) {
	var gotVersions []uint16
	addr := newFakeServer(t, func(req *protocol.Request, reply func(*protocol.Reply) error) bool {
		gotVersions = append(gotVersions, req.Version)
		if req.Version != 1 {
			reply(&protocol.Reply{Version: 1, Code: int32(mrerr.MrVersionMismatch)})
			return true
		}
		reply(&protocol.Reply{Version: 1, Code: 0})
		return true
	})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Disconnect()
	if err := c.Noop(); err != nil {
		t.Fatalf("noop against legacy server: %v", err)
	}
	// Once downgraded, later requests go straight to version 1.
	if err := c.Noop(); err != nil {
		t.Fatalf("second noop: %v", err)
	}
	want := []uint16{protocol.Version, 1, 1}
	if len(gotVersions) != len(want) {
		t.Fatalf("server saw versions %v, want %v", gotVersions, want)
	}
	for i := range want {
		if gotVersions[i] != want[i] {
			t.Fatalf("server saw versions %v, want %v", gotVersions, want)
		}
	}
}

// TestClientStampsTraceIDs checks that every request carries a trace ID
// (fresh per request by default, pinned after SetTraceID) and that
// LastTraceID reports the stamped value.
func TestClientStampsTraceIDs(t *testing.T) {
	var traces []string
	addr := newFakeServer(t, func(req *protocol.Request, reply func(*protocol.Reply) error) bool {
		traces = append(traces, req.TraceID)
		reply(&protocol.Reply{Version: req.Version, Code: 0})
		return true
	})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Disconnect()
	if err := c.Noop(); err != nil {
		t.Fatal(err)
	}
	if err := c.Noop(); err != nil {
		t.Fatal(err)
	}
	if len(traces) != 2 || traces[0] == "" || traces[0] == traces[1] {
		t.Errorf("auto-stamped traces = %q", traces)
	}
	if c.LastTraceID() != traces[1] {
		t.Errorf("LastTraceID = %q, want %q", c.LastTraceID(), traces[1])
	}
	c.SetTraceID("pinned-1")
	if err := c.Noop(); err != nil {
		t.Fatal(err)
	}
	if traces[2] != "pinned-1" || c.LastTraceID() != "pinned-1" {
		t.Errorf("pinned trace = %q, last = %q", traces[2], c.LastTraceID())
	}
}
