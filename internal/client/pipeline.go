package client

import (
	"bufio"
	"net"
	"strconv"
	"sync"
	"time"

	"moira/internal/clock"
	"moira/internal/kerberos"
	"moira/internal/mrerr"
	"moira/internal/protocol"
)

// Pipeline is a v4 connection that keeps many requests in flight at
// once. Each call gets a connection-unique tag; a sender goroutine
// coalesces request writes and a demux goroutine matches every reply
// frame back to its call by the echoed tag, so N concurrent callers
// share one TCP connection and one server goroutine without waiting a
// round trip each.
//
// Pipelines require a v4 server: DialPipeline probes with a tagged Noop
// and fails with MR_VERSION_MISMATCH against older peers (callers fall
// back to the serial Client, which downgrades transparently).
//
// Tuple callbacks run on the demux goroutine: a slow callback delays
// every reply on the connection, exactly like a slow reader of the old
// serial client. Calls complete in server order, which is submission
// order per caller but interleaved across callers.
type Pipeline struct {
	conn net.Conn
	bw   *bufio.Writer
	clk  clock.Clock

	sendQ  chan *protocol.Request
	sendWG sync.WaitGroup // calls mid-enqueue; Close waits before closing sendQ

	mu       sync.Mutex
	cond     *sync.Cond // signalled when a tag frees or the pipeline dies
	inflight map[uint16]*pcall
	freeTags []uint16
	nextTag  uint32 // next never-used tag; tag 0 is the serial client's
	err      error  // terminal; set once
	closed   bool

	wg sync.WaitGroup // demux + sender
}

// pcall is one in-flight pipelined call.
type pcall struct {
	cb    TupleFunc
	cbErr error // callback failure; stream drains, then MR_CALLBACK_ERR
	done  chan error
}

// DefaultPipelineDepth bounds the send queue; writers beyond it block
// until the sender drains.
const DefaultPipelineDepth = 1024

// DialPipeline connects to addr and verifies the server speaks v4.
func DialPipeline(addr string, timeout time.Duration, clk clock.Clock) (*Pipeline, error) {
	if clk == nil {
		clk = clock.System
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		if ne, ok := err.(net.Error); ok && ne.Timeout() {
			return nil, mrerr.MrConnTimeout
		}
		return nil, mrerr.MrConnRefused
	}
	// Probe before spinning up the goroutines: one synchronous tagged
	// Noop. A pre-v4 server either answers MR_VERSION_MISMATCH or — if
	// it accepted the op without understanding tags — echoes a zero pad
	// where the tag belongs; both mean no pipelining here.
	br := bufio.NewReaderSize(conn, 32<<10)
	bw := bufio.NewWriterSize(conn, 32<<10)
	probe := &protocol.Request{
		Version: protocol.Version,
		Op:      protocol.OpNoop,
		Tag:     1,
		TraceID: protocol.NewTraceID(),
	}
	conn.SetDeadline(time.Now().Add(timeout))
	if err := protocol.WriteRequest(bw, probe); err == nil {
		err = bw.Flush()
	} else {
		conn.Close()
		return nil, ioFail(err)
	}
	rep, err := protocol.ReadReply(br)
	if err != nil {
		conn.Close()
		return nil, ioFail(err)
	}
	conn.SetDeadline(time.Time{})
	if code := mrerr.Code(rep.Code); code != mrerr.Success {
		conn.Close()
		return nil, code
	}
	if rep.Version < 4 || rep.Tag != probe.Tag {
		conn.Close()
		return nil, mrerr.MrVersionMismatch
	}

	p := &Pipeline{
		conn:     conn,
		bw:       bw,
		clk:      clk,
		sendQ:    make(chan *protocol.Request, DefaultPipelineDepth),
		inflight: make(map[uint16]*pcall),
		nextTag:  1,
	}
	p.cond = sync.NewCond(&p.mu)
	p.wg.Add(2)
	go p.sender()
	go p.demux(br)
	return p, nil
}

// sender drains the queue onto the wire, flushing whenever the queue
// goes momentarily empty: a burst of concurrent calls leaves in one
// syscall. After a terminal failure it keeps draining (the calls were
// already failed) so enqueuers never block on a dead pipeline.
func (p *Pipeline) sender() {
	defer p.wg.Done()
	for req := range p.sendQ {
		if p.Err() != nil {
			continue
		}
		if err := protocol.WriteRequest(p.bw, req); err != nil {
			p.fail(ioFail(err))
			continue
		}
		if len(p.sendQ) == 0 {
			if err := p.bw.Flush(); err != nil {
				p.fail(ioFail(err))
			}
		}
	}
}

// demux reads reply frames and routes them to in-flight calls by tag.
// Any transport or framing problem is terminal: replies can no longer
// be trusted to match calls, so everything in flight fails.
func (p *Pipeline) demux(br *bufio.Reader) {
	defer p.wg.Done()
	for {
		rep, err := protocol.ReadReply(br)
		if err != nil {
			p.fail(ioFail(err))
			return
		}
		if rep.Version < 4 {
			p.fail(mrerr.MrVersionMismatch)
			return
		}
		p.mu.Lock()
		pc := p.inflight[rep.Tag]
		p.mu.Unlock()
		code := mrerr.Code(rep.Code)
		if pc == nil {
			if rep.Tag == 0 && code != mrerr.Success && code != mrerr.MrMoreData {
				// A connection-scoped refusal (e.g. an MR_BUSY shed)
				// arrives before the server parsed any tag.
				p.fail(code)
			} else {
				p.fail(mrerr.MrAborted) // unknown tag: the stream is desynchronized
			}
			return
		}
		if code == mrerr.MrMoreData {
			if pc.cb != nil && pc.cbErr == nil {
				if err := pc.cb(rep.StringFields()); err != nil {
					pc.cbErr = err // keep draining this call's stream
				}
			}
			continue
		}
		p.mu.Lock()
		delete(p.inflight, rep.Tag)
		p.freeTags = append(p.freeTags, rep.Tag)
		p.cond.Signal()
		p.mu.Unlock()
		if pc.cbErr != nil {
			pc.done <- mrerr.MrCallbackErr
		} else {
			pc.done <- code.OrNil()
		}
	}
}

// fail marks the pipeline dead and completes everything in flight.
func (p *Pipeline) fail(err error) {
	p.mu.Lock()
	if p.err == nil {
		p.err = err
	}
	calls := p.inflight
	p.inflight = make(map[uint16]*pcall)
	p.cond.Broadcast()
	p.mu.Unlock()
	p.conn.Close()
	for _, pc := range calls {
		pc.done <- err
	}
}

// Err reports the pipeline's terminal error, or nil while it is usable.
func (p *Pipeline) Err() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}

// call runs one tagged round trip and waits for its final reply.
func (p *Pipeline) call(op uint16, args [][]byte, cb TupleFunc) error {
	pc := &pcall{cb: cb, done: make(chan error, 1)}
	p.mu.Lock()
	for {
		if p.err != nil {
			p.mu.Unlock()
			return p.err
		}
		if p.closed {
			p.mu.Unlock()
			return mrerr.MrNotConnected
		}
		if len(p.freeTags) > 0 || p.nextTag < (1<<16)-1 {
			break
		}
		p.cond.Wait() // every tag in flight; wait for a completion
	}
	var tag uint16
	if n := len(p.freeTags); n > 0 {
		tag = p.freeTags[n-1]
		p.freeTags = p.freeTags[:n-1]
	} else {
		p.nextTag++
		tag = uint16(p.nextTag)
	}
	p.inflight[tag] = pc
	p.sendWG.Add(1)
	p.mu.Unlock()

	p.sendQ <- &protocol.Request{
		Version: protocol.Version,
		Op:      op,
		Tag:     tag,
		TraceID: protocol.NewTraceID(),
		Args:    args,
	}
	p.sendWG.Done()
	return <-pc.done
}

// Noop does a tagged handshake round trip.
func (p *Pipeline) Noop() error { return p.call(protocol.OpNoop, nil, nil) }

// Query runs the named query; cb sees each tuple on the demux
// goroutine.
func (p *Pipeline) Query(name string, args []string, cb TupleFunc) error {
	all := append([]string{name}, args...)
	return p.call(protocol.OpQuery, protocol.BytesArgs(all), cb)
}

// Access checks access for the named query without running it.
func (p *Pipeline) Access(name string, args []string) error {
	all := append([]string{name}, args...)
	return p.call(protocol.OpAccess, protocol.BytesArgs(all), nil)
}

// Auth authenticates the connection. The server applies it in receive
// order: authenticate before issuing concurrent calls, or calls already
// in flight will still run unauthenticated.
func (p *Pipeline) Auth(creds *kerberos.Credentials, clientName string) error {
	payload := kerberos.BuildAuth(creds, clientName, p.clk)
	return p.call(protocol.OpAuth, [][]byte{payload.Marshal()}, nil)
}

// Batch submits items as one v4 Batch request over the pipeline; see
// Client.Batch for the semantics.
func (p *Pipeline) Batch(items []BatchItem) ([]mrerr.Code, error) {
	if len(items) == 0 {
		return nil, nil
	}
	var codes []mrerr.Code
	err := p.call(protocol.OpBatch, protocol.BytesArgs(protocol.EncodeBatch(items)),
		func(fields []string) error {
			codes = make([]mrerr.Code, len(fields))
			for i, f := range fields {
				v, err := strconv.ParseInt(f, 10, 32)
				if err != nil {
					return mrerr.MrInternal
				}
				codes[i] = mrerr.Code(v)
			}
			return nil
		})
	if err != nil {
		return nil, err
	}
	if len(codes) != len(items) {
		return nil, mrerr.MrInternal
	}
	return codes, nil
}

// Disconnect implements the Conn sense of close.
func (p *Pipeline) Disconnect() error { return p.Close() }

// Close shuts the pipeline down: new calls are refused, in-flight calls
// fail with MR_ABORTED when the closed connection kills the demux read.
func (p *Pipeline) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return mrerr.MrNotConnected
	}
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
	p.sendWG.Wait()
	close(p.sendQ)
	p.conn.Close()
	p.wg.Wait()
	return nil
}

var _ Conn = (*Pipeline)(nil)

// ClientPool fans concurrent callers out over a fixed set of pipelines,
// round robin. A pipeline that dies is redialed on the next use of its
// slot, so one torn connection degrades a pool instead of killing it.
type ClientPool struct {
	addr    string
	timeout time.Duration
	clk     clock.Clock

	mu    sync.Mutex
	pipes []*Pipeline
	next  int
}

// NewClientPool dials size pipelines to addr. It fails if the first
// dial fails (the server is unreachable or pre-v4); later slots that
// fail dial lazily on first use.
func NewClientPool(addr string, size int, timeout time.Duration, clk clock.Clock) (*ClientPool, error) {
	if size <= 0 {
		size = 1
	}
	p := &ClientPool{addr: addr, timeout: timeout, clk: clk, pipes: make([]*Pipeline, size)}
	first, err := DialPipeline(addr, timeout, clk)
	if err != nil {
		return nil, err
	}
	p.pipes[0] = first
	for i := 1; i < size; i++ {
		if pl, err := DialPipeline(addr, timeout, clk); err == nil {
			p.pipes[i] = pl
		}
	}
	return p, nil
}

// pipe picks the next pipeline, redialing a dead or missing slot.
func (p *ClientPool) pipe() (*Pipeline, error) {
	p.mu.Lock()
	i := p.next % len(p.pipes)
	p.next++
	pl := p.pipes[i]
	p.mu.Unlock()
	if pl != nil && pl.Err() == nil {
		return pl, nil
	}
	fresh, err := DialPipeline(p.addr, p.timeout, p.clk)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	if cur := p.pipes[i]; cur != pl && cur != nil && cur.Err() == nil {
		// Another caller already replaced the slot.
		p.mu.Unlock()
		fresh.Close()
		return cur, nil
	}
	p.pipes[i] = fresh
	p.mu.Unlock()
	if pl != nil {
		pl.Close()
	}
	return fresh, nil
}

// Noop runs a handshake on one pooled pipeline.
func (p *ClientPool) Noop() error {
	pl, err := p.pipe()
	if err != nil {
		return err
	}
	return pl.Noop()
}

// Query runs a query on one pooled pipeline.
func (p *ClientPool) Query(name string, args []string, cb TupleFunc) error {
	pl, err := p.pipe()
	if err != nil {
		return err
	}
	return pl.Query(name, args, cb)
}

// Batch runs a batch on one pooled pipeline.
func (p *ClientPool) Batch(items []BatchItem) ([]mrerr.Code, error) {
	pl, err := p.pipe()
	if err != nil {
		return nil, err
	}
	return pl.Batch(items)
}

// Close closes every pipeline in the pool.
func (p *ClientPool) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i, pl := range p.pipes {
		if pl != nil {
			pl.Close()
			p.pipes[i] = nil
		}
	}
	return nil
}
