// Package client is the Moira application library (section 5.6): the
// only supported way for an application to reach the database. It offers
// the documented calls — mr_connect, mr_auth, mr_disconnect, mr_noop,
// mr_access, mr_query — over the RPC protocol, and a "direct glue"
// variant (Direct) with the exact same interface that calls the query
// engine in-process for the DCM and other utilities running on the
// database host.
package client

import (
	"bufio"
	"net"
	"strconv"
	"sync"
	"time"

	"moira/internal/clock"
	"moira/internal/kerberos"
	"moira/internal/mrerr"
	"moira/internal/protocol"
	"moira/internal/queries"
	"moira/internal/trace"
)

// TupleFunc is the callback invoked for each returned tuple of a query
// (the callproc of mr_query).
type TupleFunc func(tuple []string) error

// Conn is the interface shared by the RPC client and the direct glue
// library; application code and the DCM are written against it.
type Conn interface {
	// Noop does a handshake with the server, for testing and performance
	// measurement.
	Noop() error
	// Access checks whether the named query with the given arguments
	// would be allowed, without running it.
	Access(name string, args []string) error
	// Query runs the named query, invoking cb once per returned tuple.
	Query(name string, args []string, cb TupleFunc) error
	// Disconnect drops the connection.
	Disconnect() error
}

// Client is an RPC connection to a Moira server.
type Client struct {
	mu          sync.Mutex
	conn        net.Conn
	br          *bufio.Reader
	bw          *bufio.Writer
	clk         clock.Clock
	version     uint16        // negotiated protocol version
	trace       string        // pinned trace ID; "" mints a fresh one per request
	last        string        // trace ID stamped on the most recent request
	addr        string        // dialed address, for transparent reconnect
	fallbacks   []string      // read-failover rotation tried after addr
	cur         int           // index into the rotation of the live connection
	dialTimeout time.Duration // timeout used for Dial and reconnects
	callTimeout time.Duration // per-round-trip I/O deadline; 0 = none
	authed      bool          // an Auth succeeded on this connection
	reconnects  int           // transparent reconnects performed
	failovers   int           // reconnects that landed on a fallback address
	tracer      *trace.Tracer // optional: records a client.call span per round trip

	// v5 failover state: the commit-position token of this client's
	// latest acknowledged write (attached to retrieval requests for
	// read-your-writes), the fields of the most recent final reply
	// (MR_READONLY / MR_STALE carry the primary's address there), a
	// bounded per-address circuit breaker for redirect dials, and the
	// credentials replayed after a redirect lands on a fresh primary.
	lastToken  string
	lastFields []string
	breaker    map[string]time.Time
	redirects  int
	creds      *kerberos.Credentials
	credsApp   string
}

// MaxRedirects bounds the primary-chase per call: a request refused
// with MR_READONLY or MR_STALE plus a primary address is re-sent there
// at most this many times before the refusal surfaces to the caller.
const MaxRedirects = 3

// BreakerCooldown is how long a redirect target that failed to accept
// a connection is skipped before being dialed again.
const BreakerCooldown = 3 * time.Second

// ReconnectDelay is the backoff slept (through the client's clock)
// before the one transparent reconnect attempt.
const ReconnectDelay = 100 * time.Millisecond

// Dial implements mr_connect: it connects to the Moira server at addr.
// It does not authenticate — for simple read-only queries the overhead
// of authentication can be comparable to that of the query itself.
func Dial(addr string) (*Client, error) {
	return DialTimeout(addr, 10*time.Second, nil)
}

// DialTimeout is Dial with an explicit timeout and clock.
func DialTimeout(addr string, timeout time.Duration, clk clock.Clock) (*Client, error) {
	if clk == nil {
		clk = clock.System
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		if ne, ok := err.(net.Error); ok && ne.Timeout() {
			return nil, mrerr.MrConnTimeout
		}
		return nil, mrerr.MrConnRefused
	}
	return &Client{
		conn:        conn,
		br:          bufio.NewReader(conn),
		bw:          bufio.NewWriter(conn),
		clk:         clk,
		version:     protocol.Version,
		addr:        addr,
		dialTimeout: timeout,
	}, nil
}

// SetReadFallbacks installs a read-failover address list: when an
// idempotent call dies on a torn connection, the transparent reconnect
// cycles through the primary address and then each fallback (typically
// read-only replicas) until one accepts. Mutating and authenticated
// calls never fail over — a replica would refuse them with MR_READONLY
// anyway, and the caller should hear that the primary is gone rather
// than have a write silently retried elsewhere.
func (c *Client) SetReadFallbacks(addrs ...string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.fallbacks = append([]string(nil), addrs...)
}

// DialFailover connects to the first reachable address in addrs and
// installs the rest of the list as read fallbacks. Retrieval-only tools
// (moirastat, DCM extraction) use it so a primary outage degrades to
// reading from a replica instead of an error. Against a failover
// cluster it also serves writers: a mutation that lands on a follower
// is refused with MR_READONLY plus the primary's address, and the
// client chases the redirect transparently (bounded by MaxRedirects,
// with a per-address circuit breaker), so callers need not know which
// node currently holds the lease.
func DialFailover(addrs []string, timeout time.Duration, clk clock.Clock) (*Client, error) {
	if len(addrs) == 0 {
		return nil, mrerr.MrNotConnected
	}
	var lastErr error
	for i, a := range addrs {
		c, err := DialTimeout(a, timeout, clk)
		if err != nil {
			lastErr = err
			continue
		}
		rest := append(append([]string(nil), addrs[:i]...), addrs[i+1:]...)
		c.SetReadFallbacks(rest...)
		if i > 0 {
			c.mu.Lock()
			c.failovers++
			c.mu.Unlock()
		}
		return c, nil
	}
	return nil, lastErr
}

// Failovers reports how many times this client has connected to a
// fallback address instead of the primary.
func (c *Client) Failovers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.failovers
}

// SetCallTimeout bounds each subsequent round trip: the whole
// request/reply exchange (including tuple streaming) must finish within
// d or the call fails with MR_CONN_TIMEOUT and the connection is
// dropped. Zero restores the default of no per-call limit.
func (c *Client) SetCallTimeout(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.callTimeout = d
}

// Reconnects reports how many transparent reconnects this client has
// performed on behalf of idempotent calls.
func (c *Client) Reconnects() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.reconnects
}

// SetTraceID pins a trace ID for all subsequent requests on this
// connection; the empty string restores the default of minting a fresh
// ID per request.
func (c *Client) SetTraceID(id string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.trace = id
}

// LastTraceID reports the trace ID stamped on the most recent request,
// so a caller can correlate its RPC with server-side logs.
func (c *Client) LastTraceID() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.last
}

// SetTracer installs a span tracer: every subsequent round trip records
// a client.call span whose span ID rides the wire field, so the
// server's request spans parent under it. nil disables span recording
// (the default); trace IDs flow either way.
func (c *Client) SetTracer(t *trace.Tracer) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tracer = t
}

// roundTrip sends one request and reads reply frames until the final
// (non-MR_MORE_DATA) frame, passing tuples to cb (which may be nil).
// Version skew is handled here: the client opens at protocol.Version
// and, if the server answers MR_VERSION_MISMATCH, falls back to
// protocol.MinVersion and resends once — the version-2 frame layout is
// parseable by version-1 servers, so the connection survives the probe.
//
// idempotent marks calls that are safe to repeat: when such a call dies
// on a torn connection before any tuple was delivered, the client
// redials once (after ReconnectDelay, through its clock) and resends
// transparently. Authenticated connections never reconnect — a redial
// would silently drop the principal.
func (c *Client) roundTrip(req *protocol.Request, cb TupleFunc, idempotent bool) (err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	// Decide the trace ID once per call (pinned, or minted fresh) and
	// put it — joined with this call's span ID when a tracer is wired —
	// on the request. sendRecv leaves a non-empty TraceID alone, so
	// retries and the version-downgrade resend reuse the same IDs.
	if req.TraceID == "" {
		tid := c.trace
		if tid == "" {
			tid = protocol.NewTraceID()
		}
		sp := c.tracer.Start(tid, "", "client.call")
		if req.Op == protocol.OpQuery && len(req.Args) > 0 {
			sp.SetDetailParts(protocol.OpName(req.Op), string(req.Args[0]))
		} else {
			sp.SetDetailParts(protocol.OpName(req.Op), "")
		}
		req.TraceID = trace.Wire(tid, sp.SpanID())
		defer func() { sp.EndCode(int32(mrerr.CodeOf(err))) }()
	}
	delivered := 0
	wcb := cb
	if cb != nil {
		wcb = func(tuple []string) error {
			delivered++
			return cb(tuple)
		}
	}
	// One transparent retry per address in the failover rotation: the
	// dialed address plus every read fallback.
	retries := 0
	redirects := 0
	for {
		err := c.sendRecv(req, wcb)
		if err == mrerr.MrVersionMismatch && c.conn != nil && c.version > protocol.MinVersion {
			c.version = protocol.MinVersion
			continue
		}
		// Primary chase: a refusal that names the primary (v5 final
		// fields on MR_READONLY / MR_STALE) means the request was never
		// executed here — re-sending it at the named address is safe,
		// mutations included.
		if (err == mrerr.MrReadonly || err == mrerr.MrStale) &&
			redirects < MaxRedirects && delivered == 0 {
			if addr := c.redirectAddrLocked(); addr != "" {
				redirects++
				if c.redialLocked(addr) == nil {
					continue
				}
			}
		}
		if err == mrerr.MrAborted && c.addr != "" && delivered == 0 &&
			(!c.authed || c.creds != nil) {
			if idempotent && retries <= len(c.fallbacks) {
				retries++
				if c.reconnectLocked() == nil && c.replayAuthLocked() == nil {
					continue
				}
			} else if !idempotent && len(c.fallbacks) > 0 && retries == 0 {
				// A torn mutation is never resent — the server may have
				// applied it — but a failover client restores the
				// connection (rotating to a live node, replaying auth)
				// so the caller's next write isn't doomed too.
				retries++
				if c.reconnectLocked() == nil {
					c.replayAuthLocked()
				}
				return mrerr.MrAborted
			}
		}
		return err
	}
}

// redirectAddrLocked extracts the primary address from the most recent
// final reply's fields, if it is anywhere worth going; callers hold
// c.mu.
func (c *Client) redirectAddrLocked() string {
	if len(c.lastFields) == 0 {
		return ""
	}
	addr := c.lastFields[0]
	if addr == "" || addr == c.addr {
		return ""
	}
	return addr
}

// redialLocked points the connection at a redirect target, honouring
// the per-address circuit breaker, and replays stored credentials so
// an authenticated caller stays authenticated across the hop; callers
// hold c.mu.
func (c *Client) redialLocked(addr string) error {
	if t, ok := c.breaker[addr]; ok && time.Since(t) < BreakerCooldown {
		return mrerr.MrConnRefused
	}
	conn, err := net.DialTimeout("tcp", addr, c.dialTimeout)
	if err != nil {
		if c.breaker == nil {
			c.breaker = make(map[string]time.Time)
		}
		c.breaker[addr] = time.Now()
		return mrerr.MrConnRefused
	}
	delete(c.breaker, addr)
	if c.conn != nil {
		c.conn.Close()
	}
	c.conn = conn
	c.br = bufio.NewReader(conn)
	c.bw = bufio.NewWriter(conn)
	c.version = protocol.Version
	c.addr = addr
	c.redirects++
	return c.replayAuthLocked()
}

// replayAuthLocked re-authenticates a fresh connection from stored
// credentials, so the principal moves with the session across redials
// and reconnects; a no-op for unauthenticated clients. Callers hold
// c.mu.
func (c *Client) replayAuthLocked() error {
	if !c.authed {
		return nil
	}
	// The principal must move with the connection or the redirected
	// request would run unauthenticated on the new primary.
	if c.creds == nil {
		c.authed = false
		return mrerr.MrAborted
	}
	payload := kerberos.BuildAuth(c.creds, c.credsApp, c.clk)
	areq := &protocol.Request{
		Op:      protocol.OpAuth,
		TraceID: protocol.NewTraceID(),
		Args:    [][]byte{payload.Marshal()},
	}
	if err := c.sendRecv(areq, nil); err != nil {
		c.authed = false
		return err
	}
	return nil
}

// Redirects reports how many times this client has chased a primary
// redirect.
func (c *Client) Redirects() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.redirects
}

// LastToken reports the commit-position token of this client's most
// recent acknowledged write ("" before any). It is attached to
// retrieval queries automatically; SetMinPos overrides it.
func (c *Client) LastToken() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastToken
}

// SetMinPos pins the read-your-writes floor attached to retrieval
// queries (a token from LastToken, possibly from another client). The
// empty string restores the default of the client's own latest write.
func (c *Client) SetMinPos(token string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lastToken = token
}

// reconnectLocked redials after a short backoff, starting at the
// address of the connection that just died and rotating through the
// read-fallback list until one accepts; callers hold c.mu. The
// negotiated version resets to protocol.Version on the fresh
// connection: the downgrade belonged to the old peer, and pinning it
// across a redial would leave the client talking the legacy dialect —
// losing trace IDs entirely at v1 — to a brand-new server that may
// speak v4. The first request re-probes; a still-old server answers
// MR_VERSION_MISMATCH and the downgrade machinery runs again.
func (c *Client) reconnectLocked() error {
	clock.Sleep(c.clk, ReconnectDelay)
	rotation := append([]string{c.addr}, c.fallbacks...)
	var lastErr error
	for i := 0; i < len(rotation); i++ {
		slot := (c.cur + i) % len(rotation)
		conn, err := net.DialTimeout("tcp", rotation[slot], c.dialTimeout)
		if err != nil {
			lastErr = err
			continue
		}
		c.conn = conn
		c.br = bufio.NewReader(conn)
		c.bw = bufio.NewWriter(conn)
		c.version = protocol.Version
		c.reconnects++
		if slot != 0 {
			c.failovers++
		}
		c.cur = slot
		return nil
	}
	return lastErr
}

// sendRecv does one request/reply exchange; callers hold c.mu.
func (c *Client) sendRecv(req *protocol.Request, cb TupleFunc) error {
	if c.conn == nil {
		return mrerr.MrNotConnected
	}
	if c.callTimeout > 0 {
		c.conn.SetDeadline(time.Now().Add(c.callTimeout))
	} else {
		// A previous timed call left its deadline armed on the conn;
		// without this reset an untimed call made after
		// SetCallTimeout(0) would die with a spurious MR_CONN_TIMEOUT
		// the moment the stale deadline expired.
		c.conn.SetDeadline(time.Time{})
	}
	req.Version = c.version
	if c.version >= 2 {
		// roundTrip stamped the (possibly span-joined) trace field; the
		// bare trace ID is what callers correlate on.
		c.last, _ = trace.Split(req.TraceID)
	}
	if err := protocol.WriteRequest(c.bw, req); err != nil {
		c.abort()
		return ioFail(err)
	}
	if err := c.bw.Flush(); err != nil {
		c.abort()
		return ioFail(err)
	}
	var cbErr error
	for {
		rep, err := protocol.ReadReply(c.br)
		if err != nil {
			c.abort()
			return ioFail(err)
		}
		if rep.Version < protocol.MinVersion || rep.Version > protocol.Version {
			c.abort()
			return mrerr.MrVersionMismatch
		}
		code := mrerr.Code(rep.Code)
		if code == mrerr.MrMoreData {
			if cb != nil && cbErr == nil {
				if err := cb(rep.StringFields()); err != nil {
					// Keep draining the stream; report after.
					cbErr = err
				}
			}
			continue
		}
		if cbErr != nil {
			return mrerr.MrCallbackErr
		}
		// Final-frame fields (v5): a commit token on success, the
		// primary's address on MR_READONLY / MR_STALE.
		c.lastFields = rep.StringFields()
		if code == mrerr.Success && len(c.lastFields) > 0 &&
			(req.Op == protocol.OpQuery || req.Op == protocol.OpBatch) {
			if _, ok := protocol.ParsePos(c.lastFields[0]); ok && c.lastFields[0] != "" {
				c.lastToken = c.lastFields[0]
			}
		}
		return code.OrNil()
	}
}

// abort closes the connection after an I/O failure; callers hold c.mu.
func (c *Client) abort() {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
}

// ioFail classifies a transport failure: a deadline hit (the per-call
// timeout) is MR_CONN_TIMEOUT, anything else MR_ABORTED. Timeouts are
// never transparently retried — the server may still be processing the
// request.
func ioFail(err error) error {
	if ne, ok := err.(net.Error); ok && ne.Timeout() {
		return mrerr.MrConnTimeout
	}
	return mrerr.MrAborted
}

// Noop implements mr_noop.
func (c *Client) Noop() error {
	return c.roundTrip(&protocol.Request{Op: protocol.OpNoop}, nil, true)
}

// Auth implements mr_auth: it presents Kerberos credentials, naming the
// program acting on behalf of the user. All later requests on this
// connection are performed as the authenticated principal.
func (c *Client) Auth(creds *kerberos.Credentials, clientName string) error {
	payload := kerberos.BuildAuth(creds, clientName, c.clk)
	req := &protocol.Request{Op: protocol.OpAuth, Args: [][]byte{payload.Marshal()}}
	err := c.roundTrip(req, nil, false)
	if err == nil {
		c.mu.Lock()
		c.authed = true
		c.creds = creds
		c.credsApp = clientName
		c.mu.Unlock()
	}
	return err
}

// Access implements mr_access. An access check never mutates, so it is
// retried transparently across a torn connection.
func (c *Client) Access(name string, args []string) error {
	all := append([]string{name}, args...)
	return c.roundTrip(&protocol.Request{Op: protocol.OpAccess, Args: protocol.BytesArgs(all)}, nil, true)
}

// Query implements mr_query. Retrieval handles are idempotent and get
// the transparent reconnect; anything that mutates (or that the client
// cannot classify) fails fast on a torn connection.
func (c *Client) Query(name string, args []string, cb TupleFunc) error {
	all := append([]string{name}, args...)
	idem := false
	req := &protocol.Request{Op: protocol.OpQuery, Args: protocol.BytesArgs(all)}
	if q, ok := queries.Lookup(name); ok && q.Kind == queries.Retrieve {
		idem = true
		// Read-your-writes: stamp the latest commit token so a lagging
		// replica waits or redirects instead of serving data older than
		// this client's own writes. Meta handles are exempt server-side.
		c.mu.Lock()
		req.MinPos = c.lastToken
		c.mu.Unlock()
	}
	return c.roundTrip(req, cb, idem)
}

// QueryAll runs a query and gathers all tuples.
func (c *Client) QueryAll(name string, args ...string) ([][]string, error) {
	var out [][]string
	err := c.Query(name, args, func(t []string) error {
		cp := make([]string, len(t))
		copy(cp, t)
		out = append(out, cp)
		return nil
	})
	return out, err
}

// BatchItem re-exports the wire batch item so callers of Batch need not
// import the protocol package.
type BatchItem = protocol.BatchItem

// Batch submits items — mutations only — as one v4 Batch request: the
// server runs them under a single lock acquisition and a single journal
// group commit and answers one code per item, in order. Against a
// pre-v4 server (or after a version downgrade) Batch degrades to one
// Query round trip per item, preserving the per-item code contract at
// the old cost.
//
// The error return is transport- or batch-level; when it is nil the
// per-item codes are authoritative (mrerr.Success for applied items).
func (c *Client) Batch(items []BatchItem) ([]mrerr.Code, error) {
	if len(items) == 0 {
		return nil, nil
	}
	c.mu.Lock()
	old := c.version < 4
	c.mu.Unlock()
	if old {
		return c.batchSequential(items)
	}
	var codes []mrerr.Code
	args := protocol.EncodeBatch(items)
	err := c.roundTrip(&protocol.Request{
		Op:   protocol.OpBatch,
		Args: protocol.BytesArgs(args),
	}, func(fields []string) error {
		codes = make([]mrerr.Code, len(fields))
		for i, f := range fields {
			v, err := strconv.ParseInt(f, 10, 32)
			if err != nil {
				return mrerr.MrInternal
			}
			codes[i] = mrerr.Code(v)
		}
		return nil
	}, false)
	if err == mrerr.MrUnknownProc || err == mrerr.MrVersionMismatch {
		// The server predates OpBatch (the downgrade resend already
		// happened inside roundTrip for the mismatch case).
		return c.batchSequential(items)
	}
	if err != nil {
		return nil, err
	}
	if len(codes) != len(items) {
		return nil, mrerr.MrInternal
	}
	return codes, nil
}

// batchSequential is the pre-v4 fallback: one Query per item.
func (c *Client) batchSequential(items []BatchItem) ([]mrerr.Code, error) {
	codes := make([]mrerr.Code, len(items))
	for i, it := range items {
		err := c.Query(it.Name, it.Args, nil)
		switch err {
		case mrerr.MrAborted, mrerr.MrNotConnected, mrerr.MrConnTimeout:
			// Transport death: the remaining items were never attempted,
			// so per-item codes would lie. Surface the transport error.
			return nil, err
		}
		codes[i] = mrerr.CodeOf(err)
	}
	return codes, nil
}

// TriggerDCM sends the Trigger_DCM request.
func (c *Client) TriggerDCM() error {
	return c.roundTrip(&protocol.Request{Op: protocol.OpTriggerDCM}, nil, false)
}

// Shutdown asks the server to exit (access-checked server side).
func (c *Client) Shutdown() error {
	return c.roundTrip(&protocol.Request{Op: protocol.OpShutdown}, nil, false)
}

// Disconnect implements mr_disconnect.
func (c *Client) Disconnect() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return mrerr.MrNotConnected
	}
	err := c.conn.Close()
	c.conn = nil
	if err != nil {
		return mrerr.MrAborted
	}
	return nil
}

var _ Conn = (*Client)(nil)

// Direct is the direct "glue" library: the same interface as Client but
// calling the query engine in-process, bypassing the RPC layer and
// Kerberos, for significantly higher throughput. It is used by the DCM
// and the backup utilities on the database host.
type Direct struct {
	cx *queries.Context
}

// NewDirect builds a direct connection for the given database. The
// context is privileged, exactly as the direct-Ingres library was: it is
// only available to code already running on the Moira machine.
func NewDirect(d *queries.Context) *Direct {
	return &Direct{cx: d}
}

// Noop does nothing, successfully.
func (dc *Direct) Noop() error { return nil }

// Access checks query access in-process.
func (dc *Direct) Access(name string, args []string) error {
	return queries.CheckAccess(dc.cx, name, args)
}

// Query runs the query in-process.
func (dc *Direct) Query(name string, args []string, cb TupleFunc) error {
	if cb == nil {
		cb = func([]string) error { return nil }
	}
	return queries.Execute(dc.cx, name, args, queries.EmitFunc(cb))
}

// QueryAll runs a query and gathers all tuples.
func (dc *Direct) QueryAll(name string, args ...string) ([][]string, error) {
	var out [][]string
	err := dc.Query(name, args, func(t []string) error {
		cp := make([]string, len(t))
		copy(cp, t)
		out = append(out, cp)
		return nil
	})
	return out, err
}

// Disconnect is a no-op for the direct library.
func (dc *Direct) Disconnect() error { return nil }

var _ Conn = (*Direct)(nil)
