// Package client is the Moira application library (section 5.6): the
// only supported way for an application to reach the database. It offers
// the documented calls — mr_connect, mr_auth, mr_disconnect, mr_noop,
// mr_access, mr_query — over the RPC protocol, and a "direct glue"
// variant (Direct) with the exact same interface that calls the query
// engine in-process for the DCM and other utilities running on the
// database host.
package client

import (
	"bufio"
	"net"
	"sync"
	"time"

	"moira/internal/clock"
	"moira/internal/kerberos"
	"moira/internal/mrerr"
	"moira/internal/protocol"
	"moira/internal/queries"
)

// TupleFunc is the callback invoked for each returned tuple of a query
// (the callproc of mr_query).
type TupleFunc func(tuple []string) error

// Conn is the interface shared by the RPC client and the direct glue
// library; application code and the DCM are written against it.
type Conn interface {
	// Noop does a handshake with the server, for testing and performance
	// measurement.
	Noop() error
	// Access checks whether the named query with the given arguments
	// would be allowed, without running it.
	Access(name string, args []string) error
	// Query runs the named query, invoking cb once per returned tuple.
	Query(name string, args []string, cb TupleFunc) error
	// Disconnect drops the connection.
	Disconnect() error
}

// Client is an RPC connection to a Moira server.
type Client struct {
	mu      sync.Mutex
	conn    net.Conn
	br      *bufio.Reader
	bw      *bufio.Writer
	clk     clock.Clock
	version uint16 // negotiated protocol version
	trace   string // pinned trace ID; "" mints a fresh one per request
	last    string // trace ID stamped on the most recent request
}

// Dial implements mr_connect: it connects to the Moira server at addr.
// It does not authenticate — for simple read-only queries the overhead
// of authentication can be comparable to that of the query itself.
func Dial(addr string) (*Client, error) {
	return DialTimeout(addr, 10*time.Second, nil)
}

// DialTimeout is Dial with an explicit timeout and clock.
func DialTimeout(addr string, timeout time.Duration, clk clock.Clock) (*Client, error) {
	if clk == nil {
		clk = clock.System
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		if ne, ok := err.(net.Error); ok && ne.Timeout() {
			return nil, mrerr.MrConnTimeout
		}
		return nil, mrerr.MrConnRefused
	}
	return &Client{
		conn:    conn,
		br:      bufio.NewReader(conn),
		bw:      bufio.NewWriter(conn),
		clk:     clk,
		version: protocol.Version,
	}, nil
}

// SetTraceID pins a trace ID for all subsequent requests on this
// connection; the empty string restores the default of minting a fresh
// ID per request.
func (c *Client) SetTraceID(id string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.trace = id
}

// LastTraceID reports the trace ID stamped on the most recent request,
// so a caller can correlate its RPC with server-side logs.
func (c *Client) LastTraceID() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.last
}

// roundTrip sends one request and reads reply frames until the final
// (non-MR_MORE_DATA) frame, passing tuples to cb (which may be nil).
// Version skew is handled here: the client opens at protocol.Version
// and, if the server answers MR_VERSION_MISMATCH, falls back to
// protocol.MinVersion and resends once — the version-2 frame layout is
// parseable by version-1 servers, so the connection survives the probe.
func (c *Client) roundTrip(req *protocol.Request, cb TupleFunc) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		err := c.sendRecv(req, cb)
		if err == mrerr.MrVersionMismatch && c.conn != nil && c.version > protocol.MinVersion {
			c.version = protocol.MinVersion
			continue
		}
		return err
	}
}

// sendRecv does one request/reply exchange; callers hold c.mu.
func (c *Client) sendRecv(req *protocol.Request, cb TupleFunc) error {
	if c.conn == nil {
		return mrerr.MrNotConnected
	}
	req.Version = c.version
	if c.version >= 2 {
		if req.TraceID == "" {
			if c.trace != "" {
				req.TraceID = c.trace
			} else {
				req.TraceID = protocol.NewTraceID()
			}
		}
		c.last = req.TraceID
	}
	if err := protocol.WriteRequest(c.bw, req); err != nil {
		c.abort()
		return mrerr.MrAborted
	}
	if err := c.bw.Flush(); err != nil {
		c.abort()
		return mrerr.MrAborted
	}
	var cbErr error
	for {
		rep, err := protocol.ReadReply(c.br)
		if err != nil {
			c.abort()
			return mrerr.MrAborted
		}
		if rep.Version < protocol.MinVersion || rep.Version > protocol.Version {
			c.abort()
			return mrerr.MrVersionMismatch
		}
		code := mrerr.Code(rep.Code)
		if code == mrerr.MrMoreData {
			if cb != nil && cbErr == nil {
				if err := cb(rep.StringFields()); err != nil {
					// Keep draining the stream; report after.
					cbErr = err
				}
			}
			continue
		}
		if cbErr != nil {
			return mrerr.MrCallbackErr
		}
		return code.OrNil()
	}
}

// abort closes the connection after an I/O failure; callers hold c.mu.
func (c *Client) abort() {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
}

// Noop implements mr_noop.
func (c *Client) Noop() error {
	return c.roundTrip(&protocol.Request{Op: protocol.OpNoop}, nil)
}

// Auth implements mr_auth: it presents Kerberos credentials, naming the
// program acting on behalf of the user. All later requests on this
// connection are performed as the authenticated principal.
func (c *Client) Auth(creds *kerberos.Credentials, clientName string) error {
	payload := kerberos.BuildAuth(creds, clientName, c.clk)
	req := &protocol.Request{Op: protocol.OpAuth, Args: [][]byte{payload.Marshal()}}
	return c.roundTrip(req, nil)
}

// Access implements mr_access.
func (c *Client) Access(name string, args []string) error {
	all := append([]string{name}, args...)
	return c.roundTrip(&protocol.Request{Op: protocol.OpAccess, Args: protocol.BytesArgs(all)}, nil)
}

// Query implements mr_query.
func (c *Client) Query(name string, args []string, cb TupleFunc) error {
	all := append([]string{name}, args...)
	return c.roundTrip(&protocol.Request{Op: protocol.OpQuery, Args: protocol.BytesArgs(all)}, cb)
}

// QueryAll runs a query and gathers all tuples.
func (c *Client) QueryAll(name string, args ...string) ([][]string, error) {
	var out [][]string
	err := c.Query(name, args, func(t []string) error {
		cp := make([]string, len(t))
		copy(cp, t)
		out = append(out, cp)
		return nil
	})
	return out, err
}

// TriggerDCM sends the Trigger_DCM request.
func (c *Client) TriggerDCM() error {
	return c.roundTrip(&protocol.Request{Op: protocol.OpTriggerDCM}, nil)
}

// Shutdown asks the server to exit (access-checked server side).
func (c *Client) Shutdown() error {
	return c.roundTrip(&protocol.Request{Op: protocol.OpShutdown}, nil)
}

// Disconnect implements mr_disconnect.
func (c *Client) Disconnect() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return mrerr.MrNotConnected
	}
	err := c.conn.Close()
	c.conn = nil
	if err != nil {
		return mrerr.MrAborted
	}
	return nil
}

var _ Conn = (*Client)(nil)

// Direct is the direct "glue" library: the same interface as Client but
// calling the query engine in-process, bypassing the RPC layer and
// Kerberos, for significantly higher throughput. It is used by the DCM
// and the backup utilities on the database host.
type Direct struct {
	cx *queries.Context
}

// NewDirect builds a direct connection for the given database. The
// context is privileged, exactly as the direct-Ingres library was: it is
// only available to code already running on the Moira machine.
func NewDirect(d *queries.Context) *Direct {
	return &Direct{cx: d}
}

// Noop does nothing, successfully.
func (dc *Direct) Noop() error { return nil }

// Access checks query access in-process.
func (dc *Direct) Access(name string, args []string) error {
	return queries.CheckAccess(dc.cx, name, args)
}

// Query runs the query in-process.
func (dc *Direct) Query(name string, args []string, cb TupleFunc) error {
	if cb == nil {
		cb = func([]string) error { return nil }
	}
	return queries.Execute(dc.cx, name, args, queries.EmitFunc(cb))
}

// QueryAll runs a query and gathers all tuples.
func (dc *Direct) QueryAll(name string, args ...string) ([][]string, error) {
	var out [][]string
	err := dc.Query(name, args, func(t []string) error {
		cp := make([]string, len(t))
		copy(cp, t)
		out = append(out, cp)
		return nil
	})
	return out, err
}

// Disconnect is a no-op for the direct library.
func (dc *Direct) Disconnect() error { return nil }

var _ Conn = (*Direct)(nil)
