package zephyr

import (
	"fmt"
	"path/filepath"
	"strings"

	"moira/internal/update"
)

// AttachToAgent registers the "reload_zephyr_acls <destDir>" command on a
// zephyr server's update agent: after the DCM installs the ACL files, the
// server reloads its access control state from them.
func AttachToAgent(a *update.Agent, b *Broker) {
	a.RegisterCommand("reload_zephyr_acls", func(ag *update.Agent, args []string) error {
		if len(args) != 1 {
			return fmt.Errorf("reload_zephyr_acls: want 1 arg, got %d", len(args))
		}
		dest := strings.TrimPrefix(args[0], "/")
		return b.LoadACLDir(filepath.Join(ag.Root, filepath.FromSlash(dest)))
	})
}
