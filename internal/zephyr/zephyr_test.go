package zephyr

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"moira/internal/clock"
	"moira/internal/mrerr"
)

func TestSendAndSubscribe(t *testing.T) {
	b := NewBroker(clock.NewFake(time.Unix(600000000, 0)))
	sub, err := b.Subscribe("MOIRA", "DCM", "operator")
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Send("MOIRA", "DCM", "dcm", "hesiod update failed"); err != nil {
		t.Fatal(err)
	}
	select {
	case n := <-sub.C:
		if n.Class != "MOIRA" || n.Instance != "DCM" || n.Message != "hesiod update failed" {
			t.Errorf("notice = %+v", n)
		}
		if n.Time != 600000000 {
			t.Errorf("time = %d", n.Time)
		}
	default:
		t.Fatal("no notice delivered")
	}
}

func TestWildcardInstance(t *testing.T) {
	b := NewBroker(nil)
	all, _ := b.Subscribe("MOIRA", "*", "op")
	one, _ := b.Subscribe("MOIRA", "NFS", "op")
	b.Send("MOIRA", "DCM", "dcm", "msg1")
	b.Send("MOIRA", "NFS", "dcm", "msg2")
	if len(all.C) != 2 {
		t.Errorf("wildcard got %d notices", len(all.C))
	}
	if len(one.C) != 1 {
		t.Errorf("specific got %d notices", len(one.C))
	}
}

func TestCancelStopsDelivery(t *testing.T) {
	b := NewBroker(nil)
	sub, _ := b.Subscribe("C", "I", "p")
	sub.Cancel()
	b.Send("C", "I", "p", "m")
	if len(sub.C) != 0 {
		t.Error("cancelled subscription received a notice")
	}
}

func TestACLEnforcement(t *testing.T) {
	b := NewBroker(nil)
	b.SetACL("RESTRICTED", &ACL{Xmt: []string{"dcm"}, Sub: []string{"operator"}})

	if err := b.Send("RESTRICTED", "I", "randal", "m"); err != mrerr.MrPerm {
		t.Errorf("unauthorized send err = %v", err)
	}
	if err := b.Send("RESTRICTED", "I", "dcm", "m"); err != nil {
		t.Errorf("authorized send err = %v", err)
	}
	if _, err := b.Subscribe("RESTRICTED", "*", "randal"); err != mrerr.MrPerm {
		t.Errorf("unauthorized sub err = %v", err)
	}
	if _, err := b.Subscribe("RESTRICTED", "*", "operator"); err != nil {
		t.Errorf("authorized sub err = %v", err)
	}
	// Wildcard entry opens the class.
	b.SetACL("OPEN", &ACL{Xmt: []string{"*.*@*"}, Sub: []string{"*.*@*"}})
	if err := b.Send("OPEN", "I", "anyone", "m"); err != nil {
		t.Errorf("wildcard send err = %v", err)
	}
	// Empty (non-nil) ACL denies everyone.
	b.SetACL("CLOSED", &ACL{Xmt: []string{}, Sub: []string{}})
	if err := b.Send("CLOSED", "I", "dcm", "m"); err != mrerr.MrPerm {
		t.Errorf("empty acl send err = %v", err)
	}
	// No ACL at all is unrestricted.
	if err := b.Send("UNKNOWN", "I", "anyone", "m"); err != nil {
		t.Errorf("no-acl send err = %v", err)
	}
}

func TestLoadACLDir(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("MOIRA.xmt.acl", "dcm\nmoira\n")
	write("MOIRA.sub.acl", "*.*@*\n")
	write("EMPTY.xmt.acl", "")
	write("MOIRA.iws.acl", "ignored\n") // accepted, not enforced
	write("notacl.txt", "junk")

	b := NewBroker(nil)
	if err := b.LoadACLDir(dir); err != nil {
		t.Fatal(err)
	}
	if err := b.Send("MOIRA", "DCM", "dcm", "ok"); err != nil {
		t.Errorf("dcm send err = %v", err)
	}
	if err := b.Send("MOIRA", "DCM", "stranger", "no"); err != mrerr.MrPerm {
		t.Errorf("stranger send err = %v", err)
	}
	if _, err := b.Subscribe("MOIRA", "*", "anyone"); err != nil {
		t.Errorf("open sub err = %v", err)
	}
	if err := b.Send("EMPTY", "I", "anyone", "m"); err != mrerr.MrPerm {
		t.Errorf("empty class send err = %v", err)
	}
}

func TestLogRecordsAcceptedNotices(t *testing.T) {
	b := NewBroker(nil)
	b.SetACL("X", &ACL{Xmt: []string{}})
	b.Send("X", "I", "p", "rejected")
	b.Send("Y", "I", "p", "accepted")
	log := b.Log()
	if len(log) != 1 || log[0].Message != "accepted" {
		t.Errorf("log = %v", log)
	}
}

func TestFullChannelDoesNotBlockSend(t *testing.T) {
	b := NewBroker(nil)
	sub, _ := b.Subscribe("C", "I", "p")
	for i := 0; i < 200; i++ {
		if err := b.Send("C", "I", "p", "flood"); err != nil {
			t.Fatal(err)
		}
	}
	if len(sub.C) != cap(sub.C) {
		t.Errorf("channel holds %d of %d", len(sub.C), cap(sub.C))
	}
}
