// Package zephyr is a from-scratch simulation of the Athena notification
// service, sufficient for the two ways Moira touches it: the DCM sends
// failure notices to class MOIRA instance DCM, and Moira propagates
// access control lists for restricted classes to the zephyr servers
// (section 5.8.2, service ZEPHYR).
//
// The broker delivers notices to subscribers by (class, instance), with
// "*" as the wildcard instance, and enforces per-class transmit and
// subscribe ACLs loaded from the same *.acl files the DCM installs.
package zephyr

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"moira/internal/clock"
	"moira/internal/mrerr"
)

// Notice is one zephyrgram.
type Notice struct {
	Class    string
	Instance string
	Sender   string
	Message  string
	Time     int64
}

// ACL is the access control state for one class. A nil entry list means
// the function is unrestricted (the class has no ACL installed); an
// entry "*.*@*" also matches everyone.
type ACL struct {
	Xmt []string // who may transmit
	Sub []string // who may subscribe
}

// aclAllows applies zephyr ACL matching: nil list = unrestricted;
// otherwise the principal must appear, or a wildcard entry must.
func aclAllows(entries []string, principal string) bool {
	if entries == nil {
		return true
	}
	for _, e := range entries {
		if e == principal || e == "*" || e == "*.*@*" {
			return true
		}
	}
	return false
}

// Subscription is a live subscription; receive from C.
type Subscription struct {
	C      chan Notice
	broker *Broker
	key    subKey
	idx    int
}

type subKey struct {
	class    string
	instance string
}

// Broker is the in-process zephyr server.
type Broker struct {
	clk clock.Clock

	mu   sync.Mutex
	subs map[subKey][]*Subscription
	acls map[string]*ACL
	// Log keeps every accepted notice, for inspection by tests and the
	// dcm's operators.
	log []Notice
}

// NewBroker creates a broker; clk may be nil for the system clock.
func NewBroker(clk clock.Clock) *Broker {
	if clk == nil {
		clk = clock.System
	}
	return &Broker{clk: clk, subs: make(map[subKey][]*Subscription), acls: make(map[string]*ACL)}
}

// SetACL installs the ACL for a class, replacing any previous one.
// Passing nil lists makes the corresponding function unrestricted.
func (b *Broker) SetACL(class string, acl *ACL) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if acl == nil {
		delete(b.acls, class)
		return
	}
	b.acls[class] = acl
}

// ACLOf returns the installed ACL for a class, or nil.
func (b *Broker) ACLOf(class string) *ACL {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.acls[class]
}

// LoadACLDir reads every <class>.<func>.acl file in dir, in the format
// the DCM installs (one entry per line), and installs the results.
// Recognized functions are "xmt" and "sub"; other ACL files (iws, iui)
// are accepted and ignored by the broker, as the original servers'
// instance controls are out of scope here.
func (b *Broker) LoadACLDir(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	byClass := map[string]*ACL{}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".acl") || e.IsDir() {
			continue
		}
		parts := strings.Split(strings.TrimSuffix(name, ".acl"), ".")
		if len(parts) < 2 {
			continue
		}
		class := strings.Join(parts[:len(parts)-1], ".")
		fn := parts[len(parts)-1]
		lines, err := readLines(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		a := byClass[class]
		if a == nil {
			a = &ACL{}
			byClass[class] = a
		}
		switch fn {
		case "xmt":
			a.Xmt = lines
		case "sub":
			a.Sub = lines
		}
	}
	for class, a := range byClass {
		b.SetACL(class, a)
	}
	return nil
}

func readLines(path string) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	lines := []string{} // non-nil even if empty: an empty ACL denies all
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line != "" {
			lines = append(lines, line)
		}
	}
	return lines, sc.Err()
}

// Subscribe registers interest in (class, instance); instance "*"
// receives every instance of the class. It fails with MR_PERM if the
// class's subscribe ACL excludes the principal.
func (b *Broker) Subscribe(class, instance, principal string) (*Subscription, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if a := b.acls[class]; a != nil && !aclAllows(a.Sub, principal) {
		return nil, mrerr.MrPerm
	}
	key := subKey{class, instance}
	sub := &Subscription{C: make(chan Notice, 64), broker: b, key: key}
	sub.idx = len(b.subs[key])
	b.subs[key] = append(b.subs[key], sub)
	return sub, nil
}

// Cancel removes the subscription.
func (s *Subscription) Cancel() {
	b := s.broker
	b.mu.Lock()
	defer b.mu.Unlock()
	list := b.subs[s.key]
	for i, sub := range list {
		if sub == s {
			b.subs[s.key] = append(list[:i], list[i+1:]...)
			return
		}
	}
}

// Send transmits a notice. It fails with MR_PERM if the class's transmit
// ACL excludes the sender. Delivery is best-effort: subscribers with
// full channels miss the notice, as UDP zephyr would drop it.
func (b *Broker) Send(class, instance, sender, message string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if a := b.acls[class]; a != nil && !aclAllows(a.Xmt, sender) {
		return mrerr.MrPerm
	}
	n := Notice{Class: class, Instance: instance, Sender: sender,
		Message: message, Time: b.clk.Now().Unix()}
	b.log = append(b.log, n)
	deliver := func(key subKey) {
		for _, sub := range b.subs[key] {
			select {
			case sub.C <- n:
			default:
			}
		}
	}
	deliver(subKey{class, instance})
	if instance != "*" {
		deliver(subKey{class, "*"})
	}
	return nil
}

// Log returns a copy of every accepted notice so far.
func (b *Broker) Log() []Notice {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]Notice, len(b.log))
	copy(out, b.log)
	return out
}

// String renders a notice for operator logs.
func (n Notice) String() string {
	return fmt.Sprintf("[%d] %s/%s from %s: %s", n.Time, n.Class, n.Instance, n.Sender, n.Message)
}
