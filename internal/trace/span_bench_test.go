package trace

import (
	"testing"
	"time"

	"moira/internal/stats"
)

// BenchmarkRequestShape exercises one server-request-shaped trace —
// root span, four recorded phases, end — with production options
// (default sampling, stats wired), isolating the tracer's own cost
// from the RPC path that TestTraceOverheadUnderFivePercent measures
// end to end.
func BenchmarkRequestShape(b *testing.B) {
	reg := stats.NewRegistry()
	tr := New(Options{Process: "bench", Stats: reg})
	start := time.Now()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		root := tr.Start("t1234-5", "parent-1", "server.request")
		root.Record("server.read", start, time.Microsecond, 0)
		root.Record("server.snapshot", start, time.Microsecond, 0)
		root.Record("server.handler", start, 2*time.Microsecond, 0)
		root.Record("server.write", start, time.Microsecond, 0)
		root.End()
	}
}

// BenchmarkRequestShapeChildren is the same shape with child spans
// (the mutation path's journal phase, auth) instead of flat records.
func BenchmarkRequestShapeChildren(b *testing.B) {
	reg := stats.NewRegistry()
	tr := New(Options{Process: "bench", Stats: reg})
	start := time.Now()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		root := tr.Start("t1234-5", "parent-1", "server.request")
		root.Record("server.read", start, time.Microsecond, 0)
		c1 := root.Child("server.handler")
		c1.End()
		c2 := root.Child("server.journal")
		c2.End()
		root.End()
	}
}
